package opt

import (
	"fmt"
	"testing"

	"multicastnet/internal/fault"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// TestKMBVsExactOnFaultyMeshes is the degraded-mode counterpart of
// TestKMBWithinBound: on small meshes with randomly failed links, the
// pooled KMB heuristic run over the masked graph must (a) cost at least
// the exact Dreyfus–Wagner Steiner length, (b) return only live masked
// edges, and (c) connect every terminal that is still reachable from the
// source — covering all reachable destinations, never routing through
// dead hardware.
func TestKMBVsExactOnFaultyMeshes(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 12
	}
	meshes := []topology.Topology{
		topology.NewMesh2D(3, 3),
		topology.NewMesh2D(4, 3),
		topology.NewMesh2D(4, 4),
	}
	for _, m := range meshes {
		nLinks := len(fault.EnumerateLinks(m))
		for trial := 0; trial < trials; trial++ {
			seed := stats.DeriveSeed(0xFA11, fmt.Sprintf("%s/%d", m.Name(), trial))
			rng := stats.NewRand(seed)
			mask := fault.NewPlan(m, fault.Spec{
				Links: rng.Intn(nLinks/3 + 1),
				Seed:  stats.DeriveSeed(seed, "plan"),
			}).FullMask()
			masked := mask.MaskTopology()

			// Source plus up to 5 destinations, keeping only the
			// terminals still connected to the source under the mask.
			ids := rng.Sample(m.Nodes(), 2+rng.Intn(5))
			source := topology.NodeID(ids[0])
			terminals := []int{int(source)}
			for _, v := range ids[1:] {
				if masked.Reachable(source, topology.NodeID(v)) {
					terminals = append(terminals, v)
				}
			}
			if len(terminals) < 2 {
				continue
			}

			g := heuristics.TopologyGraph(masked)
			exact := SteinerTreeLength(g, terminals)
			ws := heuristics.AcquireWorkspace()
			cost := ws.KMB(g, terminals)
			heuristics.ReleaseWorkspace(ws)
			edges := heuristics.KMB(g, terminals)
			if cost != len(edges) {
				t.Fatalf("%s trial %d: pooled KMB cost %d != %d edges",
					m.Name(), trial, cost, len(edges))
			}
			if cost < exact {
				t.Fatalf("%s trial %d: KMB cost %d below exact Steiner length %d (terminals %v, %d faults)",
					m.Name(), trial, cost, exact, terminals, mask.Events())
			}
			if exact < 1 {
				t.Fatalf("%s trial %d: exact Steiner length %d for %d distinct terminals",
					m.Name(), trial, exact, len(terminals))
			}

			// Every tree edge must be a live masked edge, and the tree
			// must span all reachable terminals.
			adj := make(map[int][]int)
			for _, e := range edges {
				if !hasEdge(masked, e[0], e[1]) {
					t.Fatalf("%s trial %d: KMB edge (%d,%d) not in the masked mesh",
						m.Name(), trial, e[0], e[1])
				}
				adj[e[0]] = append(adj[e[0]], e[1])
				adj[e[1]] = append(adj[e[1]], e[0])
			}
			seen := map[int]bool{terminals[0]: true}
			queue := []int{terminals[0]}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, w := range adj[v] {
					if !seen[w] {
						seen[w] = true
						queue = append(queue, w)
					}
				}
			}
			for _, term := range terminals {
				if !seen[term] {
					t.Fatalf("%s trial %d: KMB tree does not cover reachable terminal %d (terminals %v)",
						m.Name(), trial, term, terminals)
				}
			}
		}
	}
}

// hasEdge reports whether (u, v) is an edge of t.
func hasEdge(t topology.Topology, u, v int) bool {
	for _, w := range t.Neighbors(topology.NodeID(u), nil) {
		if int(w) == v {
			return true
		}
	}
	return false
}
