package topology

import (
	"testing"

	"multicastnet/internal/stats"
)

// churnStream drives a deterministic fault/repair interleaving over t:
// each step flips a seeded coin between failing a healthy link/node and
// repairing a dead one, and the live view is compared against a fresh
// NewMasked built from the same dead sets.
func churnEquivalence(t *testing.T, base Topology, steps int, seed uint64) {
	t.Helper()
	live := NewLiveMasked(base)
	links := enumerateLinksT(base)
	rng := stats.NewRand(seed)
	deadLinks := make(map[Link]bool)
	deadNodes := make(map[NodeID]bool)

	for step := 0; step < steps; step++ {
		var d GraphDelta
		switch rng.Intn(4) {
		case 0: // fail a link
			l := links[rng.Intn(len(links))]
			d.FailLinks = append(d.FailLinks, l)
			deadLinks[l] = true
		case 1: // repair a dead link, if any
			for l := range deadLinks {
				d.RepairLinks = append(d.RepairLinks, l)
				delete(deadLinks, l)
				break
			}
		case 2: // fail a node
			v := NodeID(rng.Intn(base.Nodes()))
			d.FailNodes = append(d.FailNodes, v)
			deadNodes[v] = true
		default: // repair a dead node, if any
			for v := range deadNodes {
				d.RepairNodes = append(d.RepairNodes, v)
				delete(deadNodes, v)
				break
			}
		}
		live.Apply(d)

		var dn []NodeID
		for v := range deadNodes {
			dn = append(dn, v)
		}
		var dl []Link
		for l := range deadLinks {
			dl = append(dl, l)
		}
		ref := NewMasked(base, dn, dl)

		for v := 0; v < base.Nodes(); v++ {
			lv := live.Neighbors(NodeID(v), nil)
			rv := ref.Neighbors(NodeID(v), nil)
			if len(lv) != len(rv) {
				t.Fatalf("step %d: node %d neighbor count: live %v ref %v", step, v, lv, rv)
			}
			for i := range lv {
				if lv[i] != rv[i] {
					t.Fatalf("step %d: node %d neighbor order: live %v ref %v", step, v, lv, rv)
				}
			}
			if live.NodeDead(NodeID(v)) != ref.NodeDead(NodeID(v)) {
				t.Fatalf("step %d: node %d dead state disagrees", step, v)
			}
		}
		// Distances and reachability on a seeded sample of pairs.
		for i := 0; i < 40; i++ {
			u := NodeID(rng.Intn(base.Nodes()))
			v := NodeID(rng.Intn(base.Nodes()))
			if lu, ru := live.Distance(u, v), ref.Distance(u, v); lu != ru {
				t.Fatalf("step %d: distance(%d,%d): live %d ref %d", step, u, v, lu, ru)
			}
			if live.Reachable(u, v) != ref.Reachable(u, v) {
				t.Fatalf("step %d: reachable(%d,%d) disagrees", step, u, v)
			}
			if live.Adjacent(u, v) != ref.Adjacent(u, v) {
				t.Fatalf("step %d: adjacent(%d,%d) disagrees", step, u, v)
			}
			if live.LinkDead(u, v) != ref.LinkDead(u, v) {
				t.Fatalf("step %d: linkdead(%d,%d) disagrees", step, u, v)
			}
		}
		if live.Diameter() != ref.Diameter() {
			t.Fatalf("step %d: diameter: live %d ref %d", step, live.Diameter(), ref.Diameter())
		}
	}
	if live.Epoch() != uint64(steps) {
		t.Fatalf("epoch %d after %d steps", live.Epoch(), steps)
	}
}

// enumerateLinksT lists undirected links in canonical order (test-local
// duplicate of fault.EnumerateLinks to avoid an import cycle).
func enumerateLinksT(t Topology) []Link {
	var links []Link
	var buf []NodeID
	for v := 0; v < t.Nodes(); v++ {
		buf = t.Neighbors(NodeID(v), buf[:0])
		for _, w := range buf {
			if NodeID(v) < w {
				links = append(links, Link{U: NodeID(v), V: w})
			}
		}
	}
	return links
}

func TestLiveMaskedEquivalence(t *testing.T) {
	t.Run("mesh", func(t *testing.T) {
		t.Parallel()
		churnEquivalence(t, NewMesh2D(5, 4), 60, 0xC0FFEE)
	})
	t.Run("cube", func(t *testing.T) {
		t.Parallel()
		churnEquivalence(t, NewHypercube(4), 60, 0xBEEF)
	})
}

// TestLiveMaskedNoOpDeltas: failing dead hardware and repairing healthy
// hardware must change nothing, including the changed-node report.
func TestLiveMaskedNoOpDeltas(t *testing.T) {
	base := NewMesh2D(3, 3)
	live := NewLiveMasked(base)
	if ch := live.Apply(GraphDelta{RepairNodes: []NodeID{4}, RepairLinks: []Link{{U: 0, V: 1}}}); len(ch) != 0 {
		t.Fatalf("repairing healthy hardware reported changes: %v", ch)
	}
	if ch := live.Apply(GraphDelta{FailLinks: []Link{{U: 0, V: 1}}}); len(ch) != 2 {
		t.Fatalf("link fault changed %v, want the two endpoints", ch)
	}
	if ch := live.Apply(GraphDelta{FailLinks: []Link{{U: 1, V: 0}}}); len(ch) != 0 {
		t.Fatalf("re-failing a dead link reported changes: %v", ch)
	}
	// Non-edges are ignored, as in NewMasked.
	if ch := live.Apply(GraphDelta{FailLinks: []Link{{U: 0, V: 8}}}); len(ch) != 0 {
		t.Fatalf("failing a non-edge reported changes: %v", ch)
	}
}

// TestLiveMaskedNodeRepairRestoresLinks: a repaired node regains exactly
// the incident links that are not themselves dead.
func TestLiveMaskedNodeRepairRestoresLinks(t *testing.T) {
	base := NewMesh2D(3, 3)
	live := NewLiveMasked(base)
	center := base.ID(1, 1)
	live.Apply(GraphDelta{FailLinks: []Link{NormLink(center, base.ID(0, 1))}})
	live.Apply(GraphDelta{FailNodes: []NodeID{center}})
	if got := live.Neighbors(center, nil); len(got) != 0 {
		t.Fatalf("dead node has neighbors %v", got)
	}
	live.Apply(GraphDelta{RepairNodes: []NodeID{center}})
	got := live.Neighbors(center, nil)
	if len(got) != 3 {
		t.Fatalf("repaired node neighbors %v, want 3 (one link still dead)", got)
	}
	for _, w := range got {
		if w == base.ID(0, 1) {
			t.Fatalf("separately dead link came back with the node repair")
		}
	}
}
