package dfr

import (
	"testing"
	"testing/quick"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// quickSet derives a valid multicast set from arbitrary quick-generated
// bytes: the first byte picks the source, the rest pick destinations
// (deduplicated, source excluded). It returns ok=false for degenerate
// inputs.
func quickSet(t topology.Topology, raw []byte) (src topology.NodeID, dests []topology.NodeID, ok bool) {
	if len(raw) < 2 {
		return 0, nil, false
	}
	n := t.Nodes()
	src = topology.NodeID(int(raw[0]) % n)
	seen := map[topology.NodeID]bool{src: true}
	for _, b := range raw[1:] {
		d := topology.NodeID(int(b) % n)
		if !seen[d] {
			seen[d] = true
			dests = append(dests, d)
		}
	}
	return src, dests, len(dests) > 0
}

// TestQuickDualPathInvariants property-checks dual-path routing over
// arbitrary multicast sets on mesh and cube: exactly-once delivery,
// host-graph channels only, label monotonicity, and the two-path bound.
func TestQuickDualPathInvariants(t *testing.T) {
	cases := []struct {
		topo topology.Topology
		l    labeling.Labeling
	}{
		{topology.NewMesh2D(7, 5), labeling.NewMeshBoustrophedon(topology.NewMesh2D(7, 5))},
		{topology.NewHypercube(5), labeling.NewHypercubeGray(topology.NewHypercube(5))},
		{topology.NewMesh3D(3, 3, 3), labeling.NewMesh3DBoustrophedon(topology.NewMesh3D(3, 3, 3))},
	}
	for _, tc := range cases {
		topo, l := tc.topo, tc.l
		f := func(raw []byte) bool {
			src, dests, ok := quickSet(topo, raw)
			if !ok {
				return true
			}
			k, err := coreSetFor(topo, src, dests)
			if err != nil {
				return false
			}
			s := DualPath(topo, l, k)
			if len(s.Paths) > 2 {
				return false
			}
			if s.Validate(topo, k) != nil {
				return false
			}
			for _, p := range s.Paths {
				up := l.Label(p.Nodes[len(p.Nodes)-1]) > l.Label(p.Nodes[0])
				for i := 1; i < len(p.Nodes); i++ {
					a, b := l.Label(p.Nodes[i-1]), l.Label(p.Nodes[i])
					if up && a >= b || !up && a <= b {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

// TestQuickFixedPathTrafficFormula property-checks the fixed-path cost
// identity: traffic equals (maxLabel - l(u0)) + (l(u0) - minLabel) over
// the destination labels.
func TestQuickFixedPathTrafficFormula(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	l := labeling.NewMeshBoustrophedon(m)
	f := func(raw []byte) bool {
		src, dests, ok := quickSet(m, raw)
		if !ok {
			return true
		}
		k, err := coreSetFor(m, src, dests)
		if err != nil {
			return false
		}
		s := FixedPath(m, l, k)
		l0 := l.Label(src)
		up, down := 0, 0
		for _, d := range dests {
			if ld := l.Label(d); ld > l0 {
				if ld-l0 > up {
					up = ld - l0
				}
			} else if l0-ld > down {
				down = l0 - ld
			}
		}
		return s.Traffic() == up+down
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickQuadrantPartitionIsExact property-checks the Section 6.2.1
// destination partition: every destination lands in exactly one
// subnetwork.
func TestQuickQuadrantPartitionIsExact(t *testing.T) {
	m := topology.NewMesh2D(9, 7)
	f := func(raw []byte) bool {
		src, dests, ok := quickSet(m, raw)
		if !ok {
			return true
		}
		k, err := coreSetFor(m, src, dests)
		if err != nil {
			return false
		}
		quads := PartitionQuadrants(m, k)
		count := 0
		seen := map[topology.NodeID]bool{}
		for _, q := range quads {
			for _, d := range q {
				if seen[d] {
					return false
				}
				seen[d] = true
				count++
			}
		}
		return count == len(dests)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// coreSetFor builds a validated multicast set (helper shared by the quick
// properties).
func coreSetFor(t topology.Topology, src topology.NodeID, dests []topology.NodeID) (core.MulticastSet, error) {
	return core.NewMulticastSet(t, src, dests)
}
