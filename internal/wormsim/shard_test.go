package wormsim

import (
	"fmt"
	"reflect"
	"testing"

	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// shardTestCounts are the shard counts every determinism test compares
// against the serial engine.
var shardTestCounts = []int{2, 4, 8}

// shardTopologies are the (topology, labeling) pairs the determinism
// matrix covers.
func shardTopologies() []struct {
	name string
	topo topology.Topology
	lab  labeling.Labeling
} {
	m := topology.NewMesh2D(8, 8)
	h := topology.NewHypercube(6)
	return []struct {
		name string
		topo topology.Topology
		lab  labeling.Labeling
	}{
		{"mesh8x8", m, labeling.NewMeshBoustrophedon(m)},
		{"hypercube64", h, labeling.NewHypercubeGray(h)},
	}
}

// shardFaults is a two-epoch fault plan: node 10's outgoing channels die
// early, node 27's die later. Routes are not recomputed, so traffic keeps
// hitting the dead hardware — the kill, loss and wake paths all run under
// the sharded engine.
func shardFaults() []ScheduledFault {
	return []ScheduledFault{
		{Cycle: 2_000, Dead: func(c dfr.Channel) bool { return c.From == 10 }},
		{Cycle: 6_000, Dead: func(c dfr.Channel) bool { return c.From == 27 }},
	}
}

// TestShardedRunMatchesSerial is the tentpole acceptance test: for every
// registry scheme buildable on each topology, with and without a mid-run
// fault plan, a Run at shard counts {2,4,8} must reproduce the serial
// Result field for field — latency means, CI half-widths (delivery-order
// sensitive), completion, loss and kill counts, cycle counts, everything.
// Check mode audits the full channel/queue/accounting invariants at every
// periodic boundary of every run.
func TestShardedRunMatchesSerial(t *testing.T) {
	for _, tc := range shardTopologies() {
		st := routing.NewStateWithLabeling(tc.topo, tc.lab)
		for _, name := range routing.Names() {
			r, err := routing.New(name, st)
			if err != nil {
				continue // scheme does not build on this topology
			}
			for _, faulty := range []bool{false, true} {
				cfg := Config{
					Topology:               tc.topo,
					MeanInterarrivalMicros: 120,
					AvgDests:               8,
					Seed:                   1234,
					WarmupDeliveries:       50,
					BatchSize:              50,
					MinBatches:             4,
					MaxCycles:              30_000,
					Check:                  true,
				}
				if lr, ok := r.(routing.LiveRouter); ok {
					cfg.LiveRoute = LiveRouteFuncOf(lr)
				} else {
					cfg.Route = RouteFuncOf(r)
				}
				if faulty {
					cfg.Faults = shardFaults()
				}
				label := fmt.Sprintf("%s/%s/faulty=%v", tc.name, name, faulty)
				want, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s serial: %v", label, err)
				}
				if want.Delivered == 0 && !want.Deadlocked {
					t.Fatalf("%s delivered nothing; comparison is vacuous", label)
				}
				for _, shards := range shardTestCounts {
					cfg.Shards = shards
					got, err := Run(cfg)
					if err != nil {
						t.Fatalf("%s shards=%d: %v", label, shards, err)
					}
					if got != want {
						t.Fatalf("%s shards=%d diverged:\nserial:  %+v\nsharded: %+v",
							label, shards, want, got)
					}
				}
				cfg.Shards = 0
			}
		}
	}
}

// eventTrace records the full observable event stream of a network — the
// exact order and payload of every delivery, completion and loss — plus
// per-cycle progress flags, for byte-level comparison between engines.
type eventTrace struct {
	events []string
}

func traceNetwork(net *Network) *eventTrace {
	tr := &eventTrace{}
	net.OnDelivery(func(d topology.NodeID, lat int64) {
		tr.events = append(tr.events, fmt.Sprintf("deliver %d @%d", d, lat))
	})
	net.OnDeliveryDetail(func(d topology.NodeID, lat int64, size int) {
		tr.events = append(tr.events, fmt.Sprintf("detail %d @%d size=%d", d, lat, size))
	})
	net.OnComplete(func(lat int64) {
		tr.events = append(tr.events, fmt.Sprintf("complete @%d", lat))
	})
	net.OnLost(func(d topology.NodeID, size int) {
		tr.events = append(tr.events, fmt.Sprintf("lost %d size=%d", d, size))
	})
	return tr
}

// TestShardedEventStreamIdentical drives serial and sharded networks
// through an identical injection/fault/step script and requires the
// complete callback streams — order included — to match, along with the
// invariant audit and deadlock view after every cycle. The script mixes
// path worms with lock-step tree worms whose frontiers span shard
// regions, and kills channels mid-run.
func TestShardedEventStreamIdentical(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	st := routing.NewStateWithLabeling(m, labeling.NewMeshBoustrophedon(m))
	dual, err := routing.New("dual-path", st)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.New("tree", st)
	if err != nil {
		t.Fatal(err)
	}

	type spawn struct {
		cycle int64
		r     routing.Router
		src   topology.NodeID
		dests []topology.NodeID
	}
	script := []spawn{
		{0, dual, 0, []topology.NodeID{9, 18, 27, 63}},
		{0, tree, 5, []topology.NodeID{12, 21, 30, 39, 60}},
		{1, tree, 36, []topology.NodeID{0, 7, 56, 63, 28}},
		{2, dual, 63, []topology.NodeID{0, 8, 16}},
		{3, dual, 32, []topology.NodeID{39, 47, 55}},
		{5, tree, 27, []topology.NodeID{3, 24, 45, 58}},
		{9, dual, 7, []topology.NodeID{56, 42}},
	}
	const (
		lengthFlits = 16
		cycles      = 400
		failAt      = 12
	)

	run := func(shards int) (*eventTrace, []string) {
		net := NewNetwork(m)
		if shards > 1 {
			net.SetShards(shards)
			defer net.Close()
		}
		tr := traceNetwork(net)
		var audit []string
		next := 0
		for c := int64(0); c < cycles; c++ {
			for next < len(script) && script[next].cycle <= c {
				s := script[next]
				p, err := s.r.Plan(s.src, s.dests)
				if err != nil {
					t.Fatal(err)
				}
				net.InjectMulticast(p.Paths, p.Trees, lengthFlits)
				next++
			}
			if c == failAt {
				killed := net.FailWhere(func(ch dfr.Channel) bool { return ch.From == 36 })
				audit = append(audit, fmt.Sprintf("cycle %d killed %d", c, killed))
			}
			moved := net.Step()
			audit = append(audit, fmt.Sprintf("cycle %d moved=%v inflight=%d deadlock=%v",
				c, moved, net.ActiveWorms(), net.DeadlockedWormIDs()))
			if err := net.CheckInvariants(); err != nil {
				t.Fatalf("shards=%d cycle %d: %v", shards, c, err)
			}
		}
		return tr, audit
	}

	wantTr, wantAudit := run(1)
	found := false
	for _, e := range wantTr.events {
		if len(e) >= 4 && e[:4] == "lost" {
			found = true
		}
	}
	if !found {
		t.Fatal("script killed no deliveries; fault coverage is vacuous")
	}
	for _, shards := range shardTestCounts {
		gotTr, gotAudit := run(shards)
		if !reflect.DeepEqual(gotTr.events, wantTr.events) {
			t.Fatalf("shards=%d event stream diverged:\nserial:  %v\nsharded: %v",
				shards, wantTr.events, gotTr.events)
		}
		if !reflect.DeepEqual(gotAudit, wantAudit) {
			t.Fatalf("shards=%d audit diverged:\nserial:  %v\nsharded: %v",
				shards, wantAudit, gotAudit)
		}
	}
}

// TestFlatInjectionMatchesRouteForm runs the same workload through the
// route-form injector and the dense CSR injector (InjectFlat), serial and
// sharded: identical Results prove the flattening preserves worm
// construction — channel order, delivery positions, tree frontiers — bit
// for bit.
func TestFlatInjectionMatchesRouteForm(t *testing.T) {
	for _, tc := range shardTopologies() {
		st := routing.NewStateWithLabeling(tc.topo, tc.lab)
		for _, name := range []string{"dual-path", "multi-path", "tree", "virtual-channel"} {
			r, err := routing.New(name, st)
			if err != nil {
				continue
			}
			cfg := Config{
				Topology:               tc.topo,
				Route:                  RouteFuncOf(r),
				MeanInterarrivalMicros: 150,
				AvgDests:               8,
				Seed:                   99,
				WarmupDeliveries:       50,
				BatchSize:              50,
				MinBatches:             4,
				MaxCycles:              25_000,
				Check:                  true,
			}
			want, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s route-form: %v", tc.name, name, err)
			}
			if want.Delivered == 0 {
				t.Fatalf("%s/%s delivered nothing", tc.name, name)
			}
			for _, shards := range []int{0, 4} {
				cfg.Route = FlatRouteFuncOf(routing.Flat(r, routing.NewPlanCache(0)))
				cfg.Shards = shards
				got, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s flat shards=%d: %v", tc.name, name, shards, err)
				}
				if got != want {
					t.Fatalf("%s/%s flat shards=%d diverged:\nroute: %+v\nflat:  %+v",
						tc.name, name, shards, want, got)
				}
			}
		}
	}
}

// TestSetShardsGuards pins the API contract: shards must be configured
// before any traffic, at most once, and Close is idempotent.
func TestSetShardsGuards(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	net := NewNetwork(m)
	net.SetShards(4)
	if got := net.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second SetShards did not panic")
			}
		}()
		net.SetShards(2)
	}()
	net.Close()
	net.Close()

	late := NewNetwork(m)
	late.InjectMulticast([]dfr.PathRoute{{Nodes: []topology.NodeID{0, 1}, Dests: []topology.NodeID{1}}}, nil, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetShards after injection did not panic")
			}
		}()
		late.SetShards(2)
	}()

	serial := NewNetwork(m)
	serial.SetShards(1)
	if got := serial.Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want 1 for serial", got)
	}
	serial.Close()
}
