package heuristics

import (
	"slices"

	"multicastnet/internal/core"
	"multicastnet/internal/graphx"
	"multicastnet/internal/topology"
)

// MultiUnicastTraffic returns the traffic of implementing the multicast as
// k separate one-to-one messages along deterministic shortest paths — the
// "multiple one-to-one" baseline of Figures 7.1–7.5. Each message over
// each link counts one unit, so shared links are paid once per message.
func MultiUnicastTraffic(t topology.Topology, k core.MulticastSet) int {
	total := 0
	for _, d := range k.Dests {
		total += t.Distance(k.Source, d)
	}
	return total
}

// BroadcastTraffic returns the traffic of delivering the message to every
// node over a network spanning tree — the "broadcast" baseline: N-1 links
// regardless of the destination count.
func BroadcastTraffic(t topology.Topology) int { return t.Nodes() - 1 }

// LEN runs the greedy multicast-tree heuristic of Lan, Esfahanian, and Ni
// [20] on a hypercube, the published baseline of Fig. 7.4. At each node
// the destinations are repeatedly assigned to the dimension that covers
// the most of them: the subset of destinations whose address differs in
// the chosen bit is forwarded to that neighbor. Every destination travels
// a shortest path, so the pattern is a multicast tree. Returns the link
// traffic; the pattern stays in the workspace run log.
func (ws *Workspace) LEN(h *topology.Hypercube, k core.MulticastSet) int {
	ws.begin(h, k)
	ws.arena = append(ws.arena[:0], k.Dests...)
	ws.msgs = append(ws.msgs[:0], stMsg{at: k.Source, off: 0, n: int32(len(ws.arena))})
	for head := 0; head < len(ws.msgs); head++ {
		msg := ws.msgs[head]
		u := msg.at
		rem := ws.lenA[:0]
		for _, d := range ws.arena[msg.off : msg.off+msg.n] {
			if d == u {
				ws.deliver(d, msg.depth)
				continue
			}
			rem = append(rem, d)
		}
		spare := ws.lenB[:0]
		for len(rem) > 0 {
			// Choose the dimension covering the most remaining
			// destinations (lowest dimension on ties).
			bestDim, bestCount := -1, 0
			for b := 0; b < h.Dim; b++ {
				count := 0
				for _, d := range rem {
					if (u^d)>>b&1 == 1 {
						count++
					}
				}
				if count > bestCount {
					bestDim, bestCount = b, count
				}
			}
			next := u ^ topology.NodeID(1<<bestDim)
			// The covered subset becomes the forwarded message's
			// destination list (a fresh arena segment); the rest stays
			// for another round at u.
			off := int32(len(ws.arena))
			spare = spare[:0]
			for _, d := range rem {
				if (u^d)>>bestDim&1 == 1 {
					ws.arena = append(ws.arena, d)
				} else {
					spare = append(spare, d)
				}
			}
			ws.send(u, next)
			ws.msgs = append(ws.msgs, stMsg{at: next, depth: msg.depth + 1, off: off, n: int32(len(ws.arena)) - off})
			rem, spare = spare, rem
		}
		ws.lenA, ws.lenB = rem, spare // keep grown capacity for reuse
	}
	return len(ws.edges)
}

// LEN runs the Lan–Esfahanian–Ni multicast-tree heuristic [20] on a
// hypercube and returns the delivered routing pattern. See Workspace.LEN
// for the allocation-free form.
func LEN(h *topology.Hypercube, k core.MulticastSet) *STResult {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.LEN(h, k)
	return ws.stResult()
}

// KMB computes a Steiner tree for terminals in g with the classic
// Kou–Markowsky–Berman heuristic [55] (2-approximation): build the metric
// closure over the terminals, take its minimum spanning tree, expand each
// closure edge into a shortest path, take a spanning tree of the expanded
// subgraph, and prune non-terminal leaves. Requires len(terminals) >= 2.
// Returns the pruned tree's edge count; the edges are left in
// ws.kmbPacked as (min<<32|max) pairs in ascending order.
//
// The computation is fully deterministic: the Prim step scans tree
// terminals in insertion order and candidates in input order with strict
// improvement, so ties resolve to the earliest pair (the map-based
// original left them to map iteration order).
func (ws *Workspace) KMB(g *graphx.Graph, terminals []int) int {
	if len(terminals) < 2 {
		ws.kmbPacked = ws.kmbPacked[:0]
		return 0
	}
	if ws.csrFor != g {
		ws.csr, ws.csrFor = graphx.NewCSR(g), g
	}
	csr := ws.csr
	n := csr.N()
	nt := len(terminals)

	// Metric closure: BFS distance row per terminal (stride n).
	if cap(ws.kdist) < nt*n {
		ws.kdist = make([]int32, nt*n)
	}
	ws.kdist = ws.kdist[:nt*n]
	if cap(ws.kqueue) < n {
		ws.kqueue = make([]int32, 0, n)
	}
	if cap(ws.kparent) < n {
		ws.kparent = make([]int32, n)
		ws.kdeg = make([]int32, n)
	}
	ws.kparent, ws.kdeg = ws.kparent[:n], ws.kdeg[:n]
	for ti, t := range terminals {
		row := ws.kdist[ti*n : (ti+1)*n]
		for i := range row {
			row[i] = -1
		}
		row[t] = 0
		q := ws.kqueue[:0]
		q = append(q, int32(t))
		for qh := 0; qh < len(q); qh++ {
			u := q[qh]
			du := row[u]
			for _, w := range csr.Row(u) {
				if row[w] < 0 {
					row[w] = du + 1
					q = append(q, w)
				}
			}
		}
		ws.kqueue = q
	}

	// Prim's MST over the terminal closure. ktList holds the terminal
	// indices already in the tree, in insertion order; ws.vis marks their
	// vertices.
	ws.ktList = append(ws.ktList[:0], 0)
	ws.vis.reset(n)
	ws.vis.mark(int32(terminals[0]))
	ws.kclosure = ws.kclosure[:0]
	for len(ws.ktList) < nt {
		bestU, bestV := int32(-1), int32(-1)
		bestD := int32(-1)
		for _, ti := range ws.ktList {
			row := ws.kdist[int(ti)*n : (int(ti)+1)*n]
			for si, s := range terminals {
				if ws.vis.has(int32(s)) {
					continue
				}
				if d := row[s]; d >= 0 && (bestD < 0 || d < bestD) {
					bestU, bestV, bestD = ti, int32(si), d
				}
			}
		}
		if bestU < 0 {
			panic("heuristics: KMB terminals not connected")
		}
		ws.kclosure = append(ws.kclosure, [2]int32{bestU, bestV})
		ws.vis.mark(int32(terminals[bestV]))
		ws.ktList = append(ws.ktList, bestV)
	}

	// Expand each closure edge into the deterministic shortest path
	// (backward walk from v choosing the first adjacency-order neighbor
	// one step closer, exactly as graphx.ShortestPath does), marking the
	// traversed arcs in the sorted-position space.
	ws.em.reset(csr.Arcs())
	for _, ce := range ws.kclosure {
		row := ws.kdist[int(ce[0])*n : (int(ce[0])+1)*n]
		cur := int32(terminals[ce[1]])
		for d := row[cur]; d > 0; d-- {
			for _, w := range csr.Row(cur) {
				if row[w] == d-1 {
					ws.em.mark(csr.SortedPos(cur, w))
					ws.em.mark(csr.SortedPos(w, cur))
					cur = w
					break
				}
			}
		}
	}

	// Spanning tree of the expanded subgraph: BFS from terminals[0] over
	// the marked arcs, neighbors in ascending vertex order (the original
	// sorted its subgraph adjacency lists).
	root := int32(terminals[0])
	ws.vis.reset(n)
	ws.vis.mark(root)
	ws.kparent[root] = -1
	bfs := ws.kqueue[:0]
	bfs = append(bfs, root)
	for qh := 0; qh < len(bfs); qh++ {
		u := bfs[qh]
		srow := csr.SortedRow(u)
		base := csr.RowStart[u]
		for i, w := range srow {
			if ws.em.has(base+int32(i)) && !ws.vis.has(w) {
				ws.vis.mark(w)
				ws.kparent[w] = u
				bfs = append(bfs, w)
			}
		}
	}
	ws.kqueue = bfs

	// Degrees of the spanning tree, then prune non-terminal leaves to the
	// (unique) fixpoint. Children follow parents in BFS order, so one
	// pass with upward cascading reaches it. ws.tmp marks terminals,
	// ws.dlv marks removed vertices.
	clear(ws.kdeg)
	for _, v := range bfs[1:] {
		ws.kdeg[v]++
		ws.kdeg[ws.kparent[v]]++
	}
	ws.tmp.reset(n)
	for _, t := range terminals {
		ws.tmp.mark(int32(t))
	}
	ws.dlv.reset(n)
	for _, v := range bfs[1:] {
		for u := v; u != root && ws.kdeg[u] == 1 && !ws.tmp.has(u) && !ws.dlv.has(u); {
			ws.dlv.mark(u)
			ws.kdeg[u]--
			p := ws.kparent[u]
			ws.kdeg[p]--
			u = p
		}
	}

	// Collect surviving edges as packed (min<<32 | max), ascending.
	ws.kmbPacked = ws.kmbPacked[:0]
	for _, v := range bfs[1:] {
		if ws.dlv.has(v) {
			continue
		}
		p := ws.kparent[v]
		if ws.dlv.has(p) {
			continue
		}
		a, b := v, p
		if a > b {
			a, b = b, a
		}
		ws.kmbPacked = append(ws.kmbPacked, int64(a)<<32|int64(b))
	}
	slices.Sort(ws.kmbPacked)
	return len(ws.kmbPacked)
}

// KMB computes a Steiner tree for terminals in g with the
// Kou–Markowsky–Berman heuristic [55]. It is the general-graph reference
// against which the topology-aware greedy ST is compared. The returned
// edges are undirected pairs (u < v) in ascending order. See
// Workspace.KMB for the allocation-free form.
func KMB(g *graphx.Graph, terminals []int) [][2]int {
	if len(terminals) == 0 {
		return nil
	}
	if len(terminals) == 1 {
		return [][2]int{}
	}
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.KMB(g, terminals)
	out := make([][2]int, len(ws.kmbPacked))
	for i, p := range ws.kmbPacked {
		out[i] = [2]int{int(p >> 32), int(p & 0xffffffff)}
	}
	return out
}

// TopologyGraph converts a Topology into a graphx.Graph (used to run the
// general-graph baselines on the paper's host graphs).
func TopologyGraph(t topology.Topology) *graphx.Graph {
	g := graphx.NewGraph(t.Nodes())
	var buf []topology.NodeID
	for v := topology.NodeID(0); int(v) < t.Nodes(); v++ {
		buf = t.Neighbors(v, buf[:0])
		for _, w := range buf {
			// Each undirected edge is seen from both endpoints; the v < w
			// guard admits it exactly once, so skip the duplicate scan.
			if v < w {
				g.AddEdgeUnchecked(int(v), int(w))
			}
		}
	}
	return g
}
