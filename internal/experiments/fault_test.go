package experiments

import (
	"strings"
	"testing"

	"multicastnet/internal/stats"
)

func renderFaultFigures(t *testing.T, o FaultOptions) string {
	t.Helper()
	delivery, latency := FaultFigures(o)
	var sb strings.Builder
	for _, fig := range []*stats.Figure{delivery, latency} {
		if err := fig.WriteTable(&sb); err != nil {
			t.Fatal(err)
		}
		if err := fig.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// TestFaultFiguresParallelDeterminism pins the mcfault acceptance
// criterion: the study's output is byte-identical at every worker count.
func TestFaultFiguresParallelDeterminism(t *testing.T) {
	o := FaultQuick()
	o.Check = true
	o.Parallel = 1
	seq := renderFaultFigures(t, o)
	for _, workers := range []int{3, 8} {
		o.Parallel = workers
		if par := renderFaultFigures(t, o); par != seq {
			t.Fatalf("fault figures at %d workers diverged from sequential", workers)
		}
	}
	if !strings.Contains(seq, "dual-path") || !strings.Contains(seq, "tree") {
		t.Fatalf("rendered output looks empty:\n%s", seq)
	}
}

// TestFaultFiguresZeroRateHealthy checks the zero-fault end of the
// curves: with no links failed, every scheme delivers every destination
// in one attempt, so the delivery-ratio series start at exactly 1.
func TestFaultFiguresZeroRateHealthy(t *testing.T) {
	o := FaultQuick()
	o.Check = true
	o.Rates = []float64{0}
	delivery, latency := FaultFigures(o)
	for _, s := range delivery.Series {
		if len(s.Y) != 1 || s.Y[0] != 1 {
			t.Fatalf("series %q zero-fault delivery ratio = %v, want exactly 1",
				s.Name, s.Y)
		}
	}
	for _, s := range latency.Series {
		if len(s.Y) != 1 || s.Y[0] <= 0 {
			t.Fatalf("series %q zero-fault latency = %v, want positive", s.Name, s.Y)
		}
	}
}

// TestFaultFiguresDegradeUnderFaults sanity-checks the curve shape: at a
// heavy fault rate the study records degraded behavior — the delivery
// ratio drops below 1 for at least one scheme (partitions appear well
// before 20% of links are gone on an 8x8 mesh).
func TestFaultFiguresDegradeUnderFaults(t *testing.T) {
	o := FaultQuick()
	o.Rates = []float64{0.20}
	delivery, _ := FaultFigures(o)
	for _, s := range delivery.Series {
		if len(s.Y) != 1 {
			t.Fatalf("series %q has %d points, want 1", s.Name, len(s.Y))
		}
		if y := s.Y[0]; y <= 0 || y > 1 {
			t.Fatalf("series %q delivery ratio = %v, want (0, 1]", s.Name, y)
		}
	}
	degraded := false
	for _, s := range delivery.Series {
		if s.Y[0] < 1 {
			degraded = true
		}
	}
	if !degraded {
		t.Fatalf("no scheme lost any destination at 20%% link faults")
	}
}
