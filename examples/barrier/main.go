// Barrier synchronization on a hypercube — the Section 1.2 motivation
// [17]: in iterative numerical algorithms every process must wait for all
// others at the end of each step. With multicast support, a barrier is a
// gather to a coordinator followed by ONE release multicast to the
// participants, instead of p-1 separate unicasts.
//
// This example compares the release phase implemented three ways on a
// 6-cube — multiple one-to-one, the LEN multicast tree, and the
// deadlock-free dual-path scheme — for barriers over nested subcubes, and
// then simulates repeated barrier rounds to measure the release latency
// under wormhole contention.
package main

import (
	"fmt"
	"log"

	"multicastnet"
)

func main() {
	const dim = 6
	sys, err := multicastnet.NewCubeSystem(dim)
	if err != nil {
		log.Fatal(err)
	}
	cube := sys.Topology().(*multicastnet.Hypercube)

	fmt.Printf("barrier release on a %s, coordinator node 0\n\n", cube.Name())
	fmt.Println("participants  one-to-one  LEN-tree  dual-path (ch / max hops)")

	// Barriers over subcubes of growing size: the release multicast goes
	// to every participant except the coordinator.
	for sub := 2; sub <= dim; sub++ {
		n := 1 << sub
		dests := make([]multicastnet.NodeID, 0, n-1)
		for v := 1; v < n; v++ {
			dests = append(dests, multicastnet.NodeID(v))
		}
		k, err := sys.Set(0, dests...)
		if err != nil {
			log.Fatal(err)
		}
		lenTree, err := sys.LEN(k)
		if err != nil {
			log.Fatal(err)
		}
		dual := sys.DualPath(k)
		fmt.Printf("%12d  %10d  %8d  %d / %d\n",
			n, sys.MultiUnicastTraffic(k), lenTree.Links, dual.Traffic(), dual.MaxDistance())
	}

	// The lock-step broadcast tree the nCUBE-2 used is NOT deadlock-free
	// (Fig. 6.1): two simultaneous full-cube barriers from adjacent
	// coordinators can block forever. The path-based release cannot.
	fmt.Println("\nsimulating concurrent barrier rounds (all nodes fire releases)...")
	res, err := multicastnet.Simulate(multicastnet.SimConfig{
		Topology:               cube,
		Route:                  sys.DualPathRouteFunc(),
		MeanInterarrivalMicros: 250,
		AvgDests:               16,
		MessageBytes:           16, // a release token is small
		Seed:                   11,
		WarmupDeliveries:       500,
		BatchSize:              500,
		MaxCycles:              400_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dual-path release: avg latency %.2f us (±%.2f), %d deliveries, deadlocked=%v\n",
		res.AvgLatencyMicros, res.CIHalfWidthMicros, res.Deliveries, res.Deadlocked)

	multiRoute, err := sys.MultiPathRouteFunc()
	if err != nil {
		log.Fatal(err)
	}
	res2, err := multicastnet.Simulate(multicastnet.SimConfig{
		Topology:               cube,
		Route:                  multiRoute,
		MeanInterarrivalMicros: 250,
		AvgDests:               16,
		MessageBytes:           16,
		Seed:                   11,
		WarmupDeliveries:       500,
		BatchSize:              500,
		MaxCycles:              400_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-path release: avg latency %.2f us (±%.2f), %d deliveries, deadlocked=%v\n",
		res2.AvgLatencyMicros, res2.CIHalfWidthMicros, res2.Deliveries, res2.Deadlocked)
}
