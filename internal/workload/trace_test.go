package workload

import (
	"bytes"
	"strings"
	"testing"

	"multicastnet/internal/topology"
)

// traceCases cover every model and both arrival processes.
func traceCases() []struct {
	name string
	spec Spec
} {
	return []struct {
		name string
		spec Spec
	}{
		{"uniform-poisson", Spec{Model: ModelUniform, Requests: 120, Groups: 8}},
		{"zipf-poisson", Spec{Model: ModelZipf, Requests: 120, Groups: 8}},
		{"zipf-onoff", Spec{Model: ModelZipf, Arrivals: ArrivalsOnOff, Requests: 120, Groups: 8}},
		{"hotspot-poisson", Spec{Model: ModelHotspot, Requests: 120}},
		{"hotspot-onoff", Spec{Model: ModelHotspot, Arrivals: ArrivalsOnOff, Requests: 120}},
		{"transpose-poisson", Spec{Model: ModelTranspose, Requests: 120}},
		{"transpose-onoff", Spec{Model: ModelTranspose, Arrivals: ArrivalsOnOff, Requests: 120}},
		{"collective-poisson", Spec{Model: ModelCollective, Requests: 120, Groups: 4, GroupSize: 4}},
		{"collective-onoff", Spec{Model: ModelCollective, Arrivals: ArrivalsOnOff, Requests: 120, Groups: 4, GroupSize: 4}},
	}
}

// TestTraceRoundTrip: record -> write -> parse -> replay reproduces the
// live generator exactly, and re-writing the parsed trace is
// byte-identical to the first serialization.
func TestTraceRoundTrip(t *testing.T) {
	topo := topology.NewMesh2D(8, 8)
	for _, c := range traceCases() {
		t.Run(c.name, func(t *testing.T) {
			const seed = 77
			tr, err := Record(topo, c.spec, seed)
			if err != nil {
				t.Fatalf("Record: %v", err)
			}
			if len(tr.Reqs) != c.spec.Requests {
				t.Fatalf("recorded %d requests, want %d", len(tr.Reqs), c.spec.Requests)
			}

			var buf bytes.Buffer
			if err := WriteTrace(&buf, tr); err != nil {
				t.Fatalf("WriteTrace: %v", err)
			}
			parsed, err := ParseTrace(buf.Bytes())
			if err != nil {
				t.Fatalf("ParseTrace: %v", err)
			}
			if parsed.Nodes != topo.Nodes() || parsed.Topo != topo.Name() || parsed.Seed != seed {
				t.Fatalf("provenance mismatch: %+v", parsed)
			}
			if parsed.Spec != tr.Spec {
				t.Fatalf("spec mismatch:\n got %+v\nwant %+v", parsed.Spec, tr.Spec)
			}

			// Replay against the live generator, request by request.
			live, err := New(topo, c.spec, seed)
			if err != nil {
				t.Fatal(err)
			}
			replay := parsed.Source()
			for i := 0; ; i++ {
				lr, lok := live.Next()
				rr, rok := replay.Next()
				if lok != rok {
					t.Fatalf("request %d: live ok=%v, replay ok=%v", i, lok, rok)
				}
				if !lok {
					break
				}
				if !requestsEqual(lr, rr) {
					t.Fatalf("request %d: live %v, replay %v", i, lr, rr)
				}
			}

			// Canonical form: write(parse(write(x))) == write(x).
			var buf2 bytes.Buffer
			if err := WriteTrace(&buf2, parsed); err != nil {
				t.Fatalf("re-WriteTrace: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatalf("re-serialization is not byte-identical")
			}
		})
	}
}

// validTraceBytes returns one known-good serialized trace.
func validTraceBytes(t *testing.T) []byte {
	t.Helper()
	tr, err := Record(topology.NewMesh2D(4, 4), Spec{Model: ModelUniform, Requests: 6, Groups: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceParseErrors feeds the strict parser structurally and
// semantically corrupt traces; every one must fail with an error (and
// never panic).
func TestTraceParseErrors(t *testing.T) {
	valid := string(validTraceBytes(t))
	lines := strings.Split(strings.TrimSuffix(valid, "\n"), "\n")
	mutate := func(i int, repl string) string {
		out := append([]string(nil), lines...)
		out[i] = repl
		return strings.Join(out, "\n") + "\n"
	}
	cases := map[string]string{
		"empty":             "",
		"bad version":       mutate(0, "mcworkload-trace v99"),
		"missing topo":      mutate(1, "seed 1"),
		"topo no name":      mutate(1, "topo 16"),
		"topo bad count":    mutate(1, "topo x 4x4 mesh"),
		"topo one node":     mutate(1, "topo 1 dot"),
		"bad seed":          mutate(2, "seed pi"),
		"spec not kv":       mutate(3, "spec model"),
		"spec unknown key":  mutate(3, lines[3]+" color=red"),
		"spec dup key":      mutate(3, lines[3]+" model=uniform"),
		"spec missing keys": mutate(3, "spec model=uniform"),
		"spec bad number":   mutate(3, strings.Replace(lines[3], "requests=6", "requests=six", 1)),
		"bad begin":         mutate(4, "begin lots"),
		"negative begin":    mutate(4, "begin -1"),
		"count mismatch":    mutate(4, "begin 7"),
		"end mismatch":      mutate(len(lines)-1, "end 99"),
		"missing end":       strings.Join(lines[:len(lines)-1], "\n") + "\n",
		"trailing data":     valid + "extra\n",
		"req too few":       mutate(5, "0 1"),
		"req bad time":      mutate(5, "x 1 2"),
		"req negative time": mutate(5, "-4 1 2"),
		"req bad src":       mutate(5, "0 99 2"),
		"req bad dest":      mutate(5, "0 1 99"),
		"req self dest":     mutate(5, "0 1 1"),
		"req dup dest":      mutate(5, "0 1 2 2"),
	}
	{
		// Time regression: raise the first request's time above the rest.
		out := append([]string(nil), lines...)
		out[5] = "1000000 1 2"
		out[6] = "0 1 2"
		cases["req time regresses"] = strings.Join(out, "\n") + "\n"
	}
	if _, err := ParseTrace([]byte(valid)); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	for name, in := range cases {
		if _, err := ParseTrace([]byte(in)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

// TestTraceOversizedLine: a line beyond the scanner cap errors cleanly.
func TestTraceOversizedLine(t *testing.T) {
	huge := traceVersion + "\ntopo 4 dot\nseed 1\n" + strings.Repeat("x", maxTraceLine+10) + "\n"
	if _, err := ParseTrace([]byte(huge)); err == nil {
		t.Fatal("oversized line accepted, want error")
	}
}

// FuzzTraceParse: the strict parser must never panic, and any input it
// accepts must re-serialize canonically (write(parse(x)) re-parses to
// the same trace, byte-identically).
func FuzzTraceParse(f *testing.F) {
	tr, err := Record(topology.NewMesh2D(4, 4), Spec{Model: ModelUniform, Requests: 4, Groups: 4}, 3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(traceVersion + "\n"))
	f.Add([]byte("topo 4 dot\n"))
	f.Add([]byte(traceVersion + "\ntopo 4 dot\nseed 0\nspec model=uniform\nbegin 0\nend 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseTrace(data)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		tr2, err := ParseTrace(out.Bytes())
		if err != nil {
			t.Fatalf("canonical serialization rejected: %v", err)
		}
		var out2 bytes.Buffer
		if err := WriteTrace(&out2, tr2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("canonical form is not a fixed point")
		}
	})
}
