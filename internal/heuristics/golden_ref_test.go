package heuristics

// This file pins the workspace-based kernels to the pre-workspace
// implementations: every ref* function below is the original map/slice
// implementation preserved verbatim (modulo renames), and the tests
// compare outputs on the worked examples of Chapter 5 plus randomized
// multicast sets per topology. The one intentional difference is KMB's
// Prim step: the original iterated a Go map (nondeterministic tie-breaks
// among equal-weight closure edges), so refKMB determinizes it to
// insertion-order scanning with strict improvement — exactly the order
// Workspace.KMB uses.

import (
	"reflect"
	"sort"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/graphx"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// ---- sorted MP/MC reference ----

func refSortedMPPrepare(c *labeling.HamiltonCycle, k core.MulticastSet) []topology.NodeID {
	d := make([]topology.NodeID, len(k.Dests))
	copy(d, k.Dests)
	sort.Slice(d, func(i, j int) bool {
		return c.SortKey(k.Source, d[i]) < c.SortKey(k.Source, d[j])
	})
	return d
}

func refSortedMPStep(t topology.Topology, c *labeling.HamiltonCycle, u0 topology.NodeID,
	w topology.NodeID, dests []topology.NodeID) (next topology.NodeID, rest []topology.NodeID, done bool) {

	rest = dests
	if len(rest) > 0 && rest[0] == w {
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return 0, nil, true
	}
	fd := c.SortKey(u0, rest[0])
	var (
		best  topology.NodeID
		bestF = -1
	)
	var buf [32]topology.NodeID
	for _, p := range t.Neighbors(w, buf[:0]) {
		if fp := c.SortKey(u0, p); fp <= fd && fp > bestF {
			best, bestF = p, fp
		}
	}
	if bestF < 0 {
		panic("heuristics: sorted MP routing stuck")
	}
	return best, rest, false
}

func refSortedMP(t topology.Topology, c *labeling.HamiltonCycle, k core.MulticastSet) core.Path {
	dests := refSortedMPPrepare(c, k)
	w := k.Source
	path := core.Path{Nodes: []topology.NodeID{w}}
	for {
		next, rest, done := refSortedMPStep(t, c, k.Source, w, dests)
		if done {
			return path
		}
		dests = rest
		w = next
		path.Nodes = append(path.Nodes, w)
	}
}

func refSortedMC(t topology.Topology, c *labeling.HamiltonCycle, k core.MulticastSet) core.Cycle {
	p := refSortedMP(t, c, k)
	m := c.Len()
	u0 := k.Source
	keyBound := m + c.H(u0)
	key := func(x topology.NodeID) int {
		if x == u0 {
			return keyBound
		}
		return c.SortKey(u0, x)
	}
	w := p.Nodes[len(p.Nodes)-1]
	nodes := p.Nodes
	guard := 0
	for w != u0 {
		var (
			best  topology.NodeID
			bestF = -1
		)
		var buf [32]topology.NodeID
		for _, q := range t.Neighbors(w, buf[:0]) {
			if fq := key(q); fq <= keyBound && fq > bestF {
				best, bestF = q, fq
			}
		}
		w = best
		if w != u0 {
			nodes = append(nodes, w)
		}
		if guard++; guard > m+1 {
			panic("heuristics: sorted MC failed to close")
		}
	}
	return core.Cycle{Nodes: nodes}
}

// ---- greedy ST reference ----

type refSTTree struct {
	edges [][2]topology.NodeID
	nodes map[topology.NodeID]bool
}

func (tr *refSTTree) addEdge(a, b topology.NodeID) {
	if tr.nodes == nil {
		tr.nodes = make(map[topology.NodeID]bool)
	}
	tr.edges = append(tr.edges, [2]topology.NodeID{a, b})
	tr.nodes[a] = true
	tr.nodes[b] = true
}

func (tr *refSTTree) contains(v topology.NodeID) bool { return tr.nodes[v] }

func (tr *refSTTree) adjacency(v topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	for _, e := range tr.edges {
		if e[0] == v {
			out = append(out, e[1])
		} else if e[1] == v {
			out = append(out, e[0])
		}
	}
	return out
}

func (tr *refSTTree) subtreeNodes(start, parent topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	var rec func(v, from topology.NodeID)
	rec = func(v, from topology.NodeID) {
		out = append(out, v)
		for _, w := range tr.adjacency(v) {
			if w != from {
				rec(w, v)
			}
		}
	}
	rec(start, parent)
	return out
}

func refGreedySTPrepare(t topology.Topology, k core.MulticastSet) []topology.NodeID {
	d := make([]topology.NodeID, len(k.Dests))
	copy(d, k.Dests)
	sort.SliceStable(d, func(i, j int) bool {
		di := t.Distance(k.Source, d[i])
		dj := t.Distance(k.Source, d[j])
		if di != dj {
			return di < dj
		}
		return d[i] < d[j]
	})
	return d
}

func refGreedyBuild(t RegionTopology, tr *refSTTree, u topology.NodeID, dests []topology.NodeID) {
	tr.addEdge(u, dests[0])
	for i := 1; i < len(dests); i++ {
		ui := dests[i]
		if tr.contains(ui) {
			continue
		}
		var (
			bestV    topology.NodeID
			bestEdge int
			bestD    = -1
		)
		for ei, e := range tr.edges {
			v := t.NearestOnShortestPaths(e[0], e[1], ui)
			if d := t.Distance(ui, v); bestD < 0 || d < bestD {
				bestV, bestEdge, bestD = v, ei, d
			}
		}
		e := tr.edges[bestEdge]
		if bestV != e[0] && bestV != e[1] {
			tr.edges[bestEdge] = [2]topology.NodeID{e[0], bestV}
			tr.addEdge(bestV, e[1])
		}
		if ui != bestV {
			tr.addEdge(bestV, ui)
		}
	}
}

func refGreedySTSplit(t RegionTopology, u topology.NodeID, dests []topology.NodeID) [][]topology.NodeID {
	tr := &refSTTree{}
	refGreedyBuild(t, tr, u, dests)
	var out [][]topology.NodeID
	for _, r := range tr.adjacency(u) {
		sub := tr.subtreeNodes(r, u)
		list := []topology.NodeID{r}
		inSub := make(map[topology.NodeID]bool, len(sub))
		for _, v := range sub {
			inSub[v] = true
		}
		for _, d := range dests {
			if d != r && inSub[d] {
				list = append(list, d)
			}
		}
		out = append(out, list)
	}
	return out
}

func refGreedySTCarried(t RegionTopology, k core.MulticastSet) *STResult {
	res := newSTResult()
	dests := refGreedySTPrepare(t, k)
	destSet := k.DestSet()

	tr := &refSTTree{}
	refGreedyBuild(t, tr, k.Source, dests)

	if destSet[k.Source] {
		res.Delivered[k.Source] = 0
	}
	type visit struct {
		node   topology.NodeID
		parent topology.NodeID
		depth  int
	}
	router, err := core.RouterFor(t)
	if err != nil {
		panic(err)
	}
	stack := []visit{{node: k.Source, parent: k.Source, depth: 0}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if destSet[cur.node] {
			if _, seen := res.Delivered[cur.node]; !seen {
				res.Delivered[cur.node] = cur.depth
			}
		}
		for _, next := range tr.adjacency(cur.node) {
			if next == cur.parent {
				continue
			}
			p := core.UnicastPath(router, cur.node, next)
			for i := 1; i < len(p); i++ {
				res.send(p[i-1], p[i])
			}
			stack = append(stack, visit{node: next, parent: cur.node, depth: cur.depth + len(p) - 1})
		}
	}
	return res
}

func refGreedyST(t RegionTopology, k core.MulticastSet) *STResult {
	router, err := core.RouterFor(t)
	if err != nil {
		panic(err)
	}
	res := newSTResult()
	destSet := k.DestSet()

	type message struct {
		at    topology.NodeID
		depth int
		list  []topology.NodeID
	}
	queue := []message{{at: k.Source, depth: 0, list: append([]topology.NodeID{k.Source}, refGreedySTPrepare(t, k)...)}}
	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		u := msg.list[0]
		if msg.at != u {
			next := router.NextHopUnicast(msg.at, u)
			res.send(msg.at, next)
			queue = append(queue, message{at: next, depth: msg.depth + 1, list: msg.list})
			continue
		}
		if destSet[u] {
			if _, seen := res.Delivered[u]; !seen {
				res.Delivered[u] = msg.depth
			}
		}
		rest := msg.list[1:]
		if len(rest) == 0 {
			continue
		}
		for _, sub := range refGreedySTSplit(t, u, rest) {
			r := sub[0]
			next := router.NextHopUnicast(u, r)
			res.send(u, next)
			queue = append(queue, message{at: next, depth: msg.depth + 1, list: sub})
		}
	}
	return res
}

// ---- MT references ----

func refXFirstMT(m *topology.Mesh2D, k core.MulticastSet) *STResult {
	res := newSTResult()
	destSet := k.DestSet()

	type message struct {
		at    topology.NodeID
		depth int
		dests []topology.NodeID
	}
	queue := []message{{at: k.Source, depth: 0, dests: k.Dests}}
	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		x0, y0 := m.XY(msg.at)
		var dPlusX, dMinusX, dPlusY, dMinusY []topology.NodeID
		for _, d := range msg.dests {
			x, y := m.XY(d)
			switch {
			case x > x0:
				dPlusX = append(dPlusX, d)
			case x < x0:
				dMinusX = append(dMinusX, d)
			case y > y0:
				dPlusY = append(dPlusY, d)
			case y < y0:
				dMinusY = append(dMinusY, d)
			default:
				if destSet[d] {
					if _, seen := res.Delivered[d]; !seen {
						res.Delivered[d] = msg.depth
					}
				}
			}
		}
		forward := func(dests []topology.NodeID, nx, ny int) {
			if len(dests) == 0 {
				return
			}
			next := m.ID(nx, ny)
			res.send(msg.at, next)
			queue = append(queue, message{at: next, depth: msg.depth + 1, dests: dests})
		}
		forward(dPlusX, x0+1, y0)
		forward(dMinusX, x0-1, y0)
		forward(dPlusY, x0, y0+1)
		forward(dMinusY, x0, y0-1)
	}
	return res
}

func refDividedGreedyMT(m *topology.Mesh2D, k core.MulticastSet) *STResult {
	res := newSTResult()
	destSet := k.DestSet()

	type message struct {
		at    topology.NodeID
		depth int
		axis  trunkAxis
		dests []topology.NodeID
	}
	var queue []message

	deliver := func(d topology.NodeID, depth int) {
		if destSet[d] {
			if _, seen := res.Delivered[d]; !seen {
				res.Delivered[d] = depth
			}
		}
	}
	forward := func(from topology.NodeID, depth int, axis trunkAxis, dests []topology.NodeID, nx, ny int) {
		if len(dests) == 0 {
			return
		}
		next := m.ID(nx, ny)
		res.send(from, next)
		queue = append(queue, message{at: next, depth: depth + 1, axis: axis, dests: dests})
	}

	x0, y0 := m.XY(k.Source)
	var dPlusX, dMinusX, dPlusY, dMinusY []topology.NodeID
	var sx, sy [4][]topology.NodeID
	for _, d := range k.Dests {
		x, y := m.XY(d)
		dx, dy := x-x0, y-y0
		switch {
		case dx == 0 && dy == 0:
			deliver(d, 0)
		case dy == 0 && dx > 0:
			dPlusX = append(dPlusX, d)
		case dy == 0 && dx < 0:
			dMinusX = append(dMinusX, d)
		case dx == 0 && dy > 0:
			dPlusY = append(dPlusY, d)
		case dx == 0 && dy < 0:
			dMinusY = append(dMinusY, d)
		default:
			var q int
			switch {
			case dx > 0 && dy > 0:
				q = 0
			case dx < 0 && dy > 0:
				q = 1
			case dx < 0 && dy < 0:
				q = 2
			default:
				q = 3
			}
			if abs(dx) >= abs(dy) {
				sx[q] = append(sx[q], d)
			} else {
				sy[q] = append(sy[q], d)
			}
		}
	}
	pairX := func(a, b int) []topology.NodeID {
		switch {
		case len(sx[a]) > 0 && len(sx[b]) > 0:
			return append(append([]topology.NodeID{}, sx[a]...), sx[b]...)
		case len(sx[a]) > 0:
			sy[a] = append(sy[a], sx[a]...)
			return nil
		case len(sx[b]) > 0:
			sy[b] = append(sy[b], sx[b]...)
			return nil
		default:
			return nil
		}
	}
	dPlusX = append(dPlusX, pairX(0, 3)...)
	dMinusX = append(dMinusX, pairX(1, 2)...)
	dPlusY = append(append(dPlusY, sy[0]...), sy[1]...)
	dMinusY = append(append(dMinusY, sy[2]...), sy[3]...)
	forward(k.Source, 0, trunkX, dPlusX, x0+1, y0)
	forward(k.Source, 0, trunkX, dMinusX, x0-1, y0)
	forward(k.Source, 0, trunkY, dPlusY, x0, y0+1)
	forward(k.Source, 0, trunkY, dMinusY, x0, y0-1)

	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		cx, cy := m.XY(msg.at)
		var onward, crossPlus, crossMinus []topology.NodeID
		for _, d := range msg.dests {
			x, y := m.XY(d)
			if msg.axis == trunkX {
				switch {
				case x == cx && y == cy:
					deliver(d, msg.depth)
				case x == cx && y > cy:
					crossPlus = append(crossPlus, d)
				case x == cx && y < cy:
					crossMinus = append(crossMinus, d)
				default:
					onward = append(onward, d)
				}
			} else {
				switch {
				case x == cx && y == cy:
					deliver(d, msg.depth)
				case y == cy && x > cx:
					crossPlus = append(crossPlus, d)
				case y == cy && x < cx:
					crossMinus = append(crossMinus, d)
				default:
					onward = append(onward, d)
				}
			}
		}
		if msg.axis == trunkX {
			forward(msg.at, msg.depth, trunkY, crossPlus, cx, cy+1)
			forward(msg.at, msg.depth, trunkY, crossMinus, cx, cy-1)
			if len(onward) > 0 {
				ox, _ := m.XY(onward[0])
				if ox > cx {
					forward(msg.at, msg.depth, trunkX, onward, cx+1, cy)
				} else {
					forward(msg.at, msg.depth, trunkX, onward, cx-1, cy)
				}
			}
		} else {
			forward(msg.at, msg.depth, trunkX, crossPlus, cx+1, cy)
			forward(msg.at, msg.depth, trunkX, crossMinus, cx-1, cy)
			if len(onward) > 0 {
				_, oy := m.XY(onward[0])
				if oy > cy {
					forward(msg.at, msg.depth, trunkY, onward, cx, cy+1)
				} else {
					forward(msg.at, msg.depth, trunkY, onward, cx, cy-1)
				}
			}
		}
	}
	return res
}

func refXYZFirstMT(m *topology.Mesh3D, k core.MulticastSet) *STResult {
	res := newSTResult()
	destSet := k.DestSet()

	type message struct {
		at    topology.NodeID
		depth int
		dests []topology.NodeID
	}
	queue := []message{{at: k.Source, depth: 0, dests: k.Dests}}
	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		x0, y0, z0 := m.XYZ(msg.at)
		var buckets [6][]topology.NodeID
		for _, d := range msg.dests {
			x, y, z := m.XYZ(d)
			switch {
			case x > x0:
				buckets[0] = append(buckets[0], d)
			case x < x0:
				buckets[1] = append(buckets[1], d)
			case y > y0:
				buckets[2] = append(buckets[2], d)
			case y < y0:
				buckets[3] = append(buckets[3], d)
			case z > z0:
				buckets[4] = append(buckets[4], d)
			case z < z0:
				buckets[5] = append(buckets[5], d)
			default:
				if destSet[d] {
					if _, seen := res.Delivered[d]; !seen {
						res.Delivered[d] = msg.depth
					}
				}
			}
		}
		hops := [6]topology.NodeID{}
		if x0 < m.Width-1 {
			hops[0] = m.ID(x0+1, y0, z0)
		}
		if x0 > 0 {
			hops[1] = m.ID(x0-1, y0, z0)
		}
		if y0 < m.Height-1 {
			hops[2] = m.ID(x0, y0+1, z0)
		}
		if y0 > 0 {
			hops[3] = m.ID(x0, y0-1, z0)
		}
		if z0 < m.Depth-1 {
			hops[4] = m.ID(x0, y0, z0+1)
		}
		if z0 > 0 {
			hops[5] = m.ID(x0, y0, z0-1)
		}
		for i, dests := range buckets {
			if len(dests) == 0 {
				continue
			}
			res.send(msg.at, hops[i])
			queue = append(queue, message{at: hops[i], depth: msg.depth + 1, dests: dests})
		}
	}
	return res
}

// ---- LEN reference ----

func refLEN(h *topology.Hypercube, k core.MulticastSet) *STResult {
	res := newSTResult()
	destSet := k.DestSet()

	type message struct {
		at    topology.NodeID
		depth int
		dests []topology.NodeID
	}
	queue := []message{{at: k.Source, depth: 0, dests: k.Dests}}
	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		u := msg.at
		remaining := make([]topology.NodeID, 0, len(msg.dests))
		for _, d := range msg.dests {
			if d == u {
				if destSet[d] {
					if _, seen := res.Delivered[d]; !seen {
						res.Delivered[d] = msg.depth
					}
				}
				continue
			}
			remaining = append(remaining, d)
		}
		for len(remaining) > 0 {
			bestDim, bestCount := -1, 0
			for b := 0; b < h.Dim; b++ {
				count := 0
				for _, d := range remaining {
					if (u^d)>>b&1 == 1 {
						count++
					}
				}
				if count > bestCount {
					bestDim, bestCount = b, count
				}
			}
			next := u ^ topology.NodeID(1<<bestDim)
			var sub, rest []topology.NodeID
			for _, d := range remaining {
				if (u^d)>>bestDim&1 == 1 {
					sub = append(sub, d)
				} else {
					rest = append(rest, d)
				}
			}
			res.send(u, next)
			queue = append(queue, message{at: next, depth: msg.depth + 1, dests: sub})
			remaining = rest
		}
	}
	return res
}

// ---- KMB reference (Prim step determinized, rest verbatim) ----

func refKMB(g *graphx.Graph, terminals []int) [][2]int {
	if len(terminals) == 0 {
		return nil
	}
	if len(terminals) == 1 {
		return [][2]int{}
	}
	dist := make(map[int][]int, len(terminals))
	for _, t := range terminals {
		dist[t] = g.BFSDistances(t)
	}
	type cedge struct{ u, v int }
	inTree := map[int]bool{terminals[0]: true}
	inOrder := []int{terminals[0]} // insertion order, replacing map iteration
	var closure []cedge
	for len(inTree) < len(terminals) {
		best := cedge{-1, -1}
		bestD := -1
		for _, t := range inOrder {
			for _, s := range terminals {
				if inTree[s] {
					continue
				}
				if d := dist[t][s]; d >= 0 && (bestD < 0 || d < bestD) {
					best, bestD = cedge{t, s}, d
				}
			}
		}
		if best.u < 0 {
			panic("heuristics: KMB terminals not connected")
		}
		closure = append(closure, best)
		inTree[best.v] = true
		inOrder = append(inOrder, best.v)
	}
	type uedge [2]int
	sub := make(map[uedge]bool)
	for _, ce := range closure {
		p := g.ShortestPath(ce.u, ce.v)
		for i := 1; i < len(p); i++ {
			a, b := p[i-1], p[i]
			if a > b {
				a, b = b, a
			}
			sub[uedge{a, b}] = true
		}
	}
	adj := make(map[int][]int)
	for e := range sub {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for _, l := range adj {
		sort.Ints(l)
	}
	parent := map[int]int{terminals[0]: -1}
	queue := []int{terminals[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if _, seen := parent[v]; !seen {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	tree := make(map[uedge]bool)
	deg := make(map[int]int)
	for v, p := range parent {
		if p < 0 {
			continue
		}
		a, b := v, p
		if a > b {
			a, b = b, a
		}
		tree[uedge{a, b}] = true
		deg[a]++
		deg[b]++
	}
	isTerminal := make(map[int]bool, len(terminals))
	for _, t := range terminals {
		isTerminal[t] = true
	}
	for {
		removed := false
		for e := range tree {
			for _, end := range []int{e[0], e[1]} {
				if deg[end] == 1 && !isTerminal[end] {
					delete(tree, e)
					deg[e[0]]--
					deg[e[1]]--
					removed = true
					break
				}
			}
			if removed {
				break
			}
		}
		if !removed {
			break
		}
	}
	out := make([][2]int, 0, len(tree))
	for e := range tree {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ---- comparison helpers and tests ----

func sameST(t *testing.T, name string, got, want *STResult) {
	t.Helper()
	if got.Links != want.Links {
		t.Fatalf("%s: links %d, want %d", name, got.Links, want.Links)
	}
	if !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatalf("%s: edge multiset diverged\n got %v\nwant %v", name, got.Edges, want.Edges)
	}
	if !reflect.DeepEqual(got.Delivered, want.Delivered) {
		t.Fatalf("%s: delivery depths diverged\n got %v\nwant %v", name, got.Delivered, want.Delivered)
	}
}

func randomGolden(tb testing.TB, rng *stats.Rand, t topology.Topology, maxK int) core.MulticastSet {
	k := 1 + rng.Intn(maxK)
	src := topology.NodeID(rng.Intn(t.Nodes()))
	raw := rng.Sample(t.Nodes(), k, int(src))
	dests := make([]topology.NodeID, k)
	for i, v := range raw {
		dests[i] = topology.NodeID(v)
	}
	set, err := core.NewMulticastSet(t, src, dests)
	if err != nil {
		tb.Fatal(err)
	}
	return set
}

func goldenTrials(t *testing.T) int {
	if testing.Short() {
		return 100
	}
	return 1000
}

// TestGoldenWorkedExamples pins the Chapter 5 worked examples (the sets
// of Figs. 5.7–5.12) to the reference implementations.
func TestGoldenWorkedExamples(t *testing.T) {
	m44 := topology.NewMesh2D(4, 4)
	c44, err := labeling.MeshHamiltonCycle(m44)
	if err != nil {
		t.Fatal(err)
	}
	k57 := core.MustMulticastSet(m44, 9, []topology.NodeID{0, 1, 6, 12})
	if got, want := SortedMP(m44, c44, k57), refSortedMP(m44, c44, k57); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig 5.7 sorted MP: %v, want %v", got.Nodes, want.Nodes)
	}
	if got, want := SortedMC(m44, c44, k57), refSortedMC(m44, c44, k57); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig 5.7 sorted MC: %v, want %v", got.Nodes, want.Nodes)
	}

	m88 := topology.NewMesh2D(8, 8)
	k59 := core.MustMulticastSet(m88, m88.ID(2, 7), []topology.NodeID{
		m88.ID(0, 5), m88.ID(2, 3), m88.ID(4, 1), m88.ID(6, 3), m88.ID(7, 4)})
	sameST(t, "Fig 5.9 greedy ST", GreedyST(m88, k59), refGreedyST(m88, k59))
	sameST(t, "Fig 5.9 greedy ST carried", GreedySTCarried(m88, k59), refGreedySTCarried(m88, k59))

	h6 := topology.NewHypercube(6)
	k510 := core.MustMulticastSet(h6, 0b000110,
		[]topology.NodeID{0b010101, 0b000001, 0b001101, 0b101001, 0b110001})
	sameST(t, "Fig 5.10 greedy ST", GreedyST(h6, k510), refGreedyST(h6, k510))
	sameST(t, "Fig 5.10 LEN", LEN(h6, k510), refLEN(h6, k510))

	m66 := topology.NewMesh2D(6, 6)
	kmt := core.MustMulticastSet(m66, m66.ID(3, 2), []topology.NodeID{
		m66.ID(2, 0), m66.ID(3, 0), m66.ID(4, 0), m66.ID(1, 1), m66.ID(5, 1),
		m66.ID(0, 2), m66.ID(1, 3), m66.ID(2, 5), m66.ID(3, 5), m66.ID(5, 5)})
	sameST(t, "Fig 5.11 X-first", XFirstMT(m66, kmt), refXFirstMT(m66, kmt))
	sameST(t, "Fig 5.12 divided greedy", DividedGreedyMT(m66, kmt), refDividedGreedyMT(m66, kmt))
}

// TestGoldenRandomMesh compares every mesh kernel against its reference
// on randomized sets, driving the workspace methods through one reused
// workspace (the exported wrappers pool-share anyway; reusing one
// instance across differing calls is the harsher test).
func TestGoldenRandomMesh(t *testing.T) {
	m := topology.NewMesh2D(16, 16)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(7)
	ws := NewWorkspace()
	for trial := 0; trial < goldenTrials(t); trial++ {
		set := randomGolden(t, rng, m, 40)

		wantP := refSortedMP(m, c, set)
		if got := ws.SortedMP(m, c, set); got != wantP.Traffic() {
			t.Fatalf("trial %d: sorted MP traffic %d, want %d", trial, got, wantP.Traffic())
		}
		if gotP := SortedMP(m, c, set); !reflect.DeepEqual(gotP, wantP) {
			t.Fatalf("trial %d: sorted MP path %v, want %v", trial, gotP.Nodes, wantP.Nodes)
		}
		if gotC, wantC := SortedMC(m, c, set), refSortedMC(m, c, set); !reflect.DeepEqual(gotC, wantC) {
			t.Fatalf("trial %d: sorted MC %v, want %v", trial, gotC.Nodes, wantC.Nodes)
		}
		if got, want := SortedMPPrepare(c, set), refSortedMPPrepare(c, set); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MP prepare %v, want %v", trial, got, want)
		}
		if got, want := GreedySTPrepare(m, set), refGreedySTPrepare(m, set); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ST prepare %v, want %v", trial, got, want)
		}

		want := refGreedyST(m, set)
		if got := ws.GreedyST(m, set); got != want.Links {
			t.Fatalf("trial %d: greedy ST links %d, want %d", trial, got, want.Links)
		}
		sameST(t, "greedy ST", ws.stResult(), want)
		sameST(t, "greedy ST carried", GreedySTCarried(m, set), refGreedySTCarried(m, set))
		sameST(t, "X-first", XFirstMT(m, set), refXFirstMT(m, set))
		sameST(t, "divided greedy", DividedGreedyMT(m, set), refDividedGreedyMT(m, set))
	}
}

// TestGoldenRandomCube covers the hypercube kernels, including LEN.
func TestGoldenRandomCube(t *testing.T) {
	h := topology.NewHypercube(10)
	c, err := labeling.CubeHamiltonCycle(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(11)
	ws := NewWorkspace()
	for trial := 0; trial < goldenTrials(t); trial++ {
		set := randomGolden(t, rng, h, 50)

		if gotP, wantP := SortedMP(h, c, set), refSortedMP(h, c, set); !reflect.DeepEqual(gotP, wantP) {
			t.Fatalf("trial %d: sorted MP %v, want %v", trial, gotP.Nodes, wantP.Nodes)
		}
		if gotC, wantC := SortedMC(h, c, set), refSortedMC(h, c, set); !reflect.DeepEqual(gotC, wantC) {
			t.Fatalf("trial %d: sorted MC %v, want %v", trial, gotC.Nodes, wantC.Nodes)
		}

		want := refLEN(h, set)
		if got := ws.LEN(h, set); got != want.Links {
			t.Fatalf("trial %d: LEN links %d, want %d", trial, got, want.Links)
		}
		sameST(t, "LEN", ws.stResult(), want)
		sameST(t, "greedy ST", GreedyST(h, set), refGreedyST(h, set))
		sameST(t, "greedy ST carried", GreedySTCarried(h, set), refGreedySTCarried(h, set))
	}
}

// TestGoldenRandomMesh3D covers the XYZ-first kernel.
func TestGoldenRandomMesh3D(t *testing.T) {
	m := topology.NewMesh3D(4, 4, 4)
	rng := stats.NewRand(13)
	for trial := 0; trial < goldenTrials(t); trial++ {
		set := randomGolden(t, rng, m, 20)
		sameST(t, "XYZ-first", XYZFirstMT(m, set), refXYZFirstMT(m, set))
	}
}

// TestGoldenKMB compares the dense KMB against the determinized
// reference on random terminal sets over mesh and hypercube host graphs.
func TestGoldenKMB(t *testing.T) {
	hosts := []struct {
		name string
		t    topology.Topology
	}{
		{"mesh8x8", topology.NewMesh2D(8, 8)},
		{"cube6", topology.NewHypercube(6)},
	}
	trials := goldenTrials(t) / 4
	for _, host := range hosts {
		g := TopologyGraph(host.t)
		rng := stats.NewRand(17)
		ws := NewWorkspace()
		for trial := 0; trial < trials; trial++ {
			terminals := rng.Sample(host.t.Nodes(), 2+rng.Intn(12))
			want := refKMB(g, terminals)
			got := KMB(g, terminals)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d: KMB %v, want %v", host.name, trial, got, want)
			}
			if n := ws.KMB(g, terminals); n != len(want) {
				t.Fatalf("%s trial %d: ws.KMB %d edges, want %d", host.name, trial, n, len(want))
			}
		}
	}
}

// TestWorkspaceReuse runs mixed kernels across different topologies on a
// single workspace twice over and checks the second pass reproduces the
// first — stale state from any call must not leak into the next.
func TestWorkspaceReuse(t *testing.T) {
	m := topology.NewMesh2D(16, 16)
	h := topology.NewHypercube(8)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	g := TopologyGraph(topology.NewMesh2D(8, 8))
	rng := stats.NewRand(23)
	sets := make([]core.MulticastSet, 32)
	cubeSets := make([]core.MulticastSet, 32)
	terms := make([][]int, 32)
	for i := range sets {
		sets[i] = randomGolden(t, rng, m, 30)
		cubeSets[i] = randomGolden(t, rng, h, 30)
		terms[i] = rng.Sample(64, 2+rng.Intn(10))
	}
	ws := NewWorkspace()
	run := func() []int {
		var out []int
		for i := range sets {
			out = append(out,
				ws.SortedMP(m, c, sets[i]),
				ws.GreedyST(m, sets[i]),
				ws.GreedySTCarried(m, sets[i]),
				ws.XFirstMT(m, sets[i]),
				ws.DividedGreedyMT(m, sets[i]),
				ws.LEN(h, cubeSets[i]),
				ws.GreedyST(h, cubeSets[i]),
				ws.KMB(g, terms[i]),
			)
		}
		return out
	}
	first := run()
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("workspace reuse diverged:\n first %v\nsecond %v", first, second)
	}
}
