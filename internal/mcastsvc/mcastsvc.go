// Package mcastsvc implements the "System Supported Multicast Service"
// the dissertation's Section 8.2 calls for: a set of multicast primitive
// operations — multicast, broadcast, barrier synchronization, and
// reduction — mapped onto the deadlock-free routing layer of Chapter 6,
// with per-operation cost accounting and protocol-level execution on the
// wormhole simulator.
//
// The service hides routing entirely: an application names a process
// group and a payload size; the service routes the underlying wormhole
// messages with a deadlock-free scheme, reports the channel traffic and
// contention-free latency of the operation, and can replay the protocol
// on a simulated network to measure its real completion time under the
// wormhole pipeline.
package mcastsvc

import (
	"fmt"
	"sort"

	"multicastnet/internal/core"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// Scheme selects the deadlock-free routing used by the service.
//
// Deprecated: Scheme is a legacy enum kept as an alias layer over the
// routing registry; new code should set Config.SchemeName to a
// routing.Names() entry instead. Migration path: replace
//
//	mcastsvc.New(mcastsvc.Config{Topology: t, Scheme: mcastsvc.MultiPathScheme})
//
// with
//
//	mcastsvc.New(mcastsvc.Config{Topology: t, SchemeName: "multi-path"})
//
// Each constant's registry name is its Name() (equivalently String())
// value: DualPathScheme -> "dual-path", MultiPathScheme -> "multi-path",
// FixedPathScheme -> "fixed-path". The two selectors are interchangeable
// — Config.SchemeName takes precedence when both are set, and a Service
// built from either reports the registry name via SchemeName() and
// produces identical plans. The enum will not grow: registry-only
// schemes (e.g. "tree", "virtual-channel") are reachable only through
// SchemeName.
type Scheme int

// Available routing schemes (deprecated aliases for registry names).
const (
	// DualPathScheme routes every multicast as at most two paths
	// (Section 6.2.2) — the dissertation's recommended default.
	DualPathScheme Scheme = iota
	// MultiPathScheme uses up to degree-many paths; lower latency at
	// moderate load, hot-spot prone for very large groups.
	MultiPathScheme
	// FixedPathScheme follows the Hamiltonian path; simplest hardware.
	FixedPathScheme
)

// String implements fmt.Stringer. For the defined constants it returns
// the scheme's routing-registry name, so String() round-trips through
// routing.Lookup.
func (s Scheme) String() string {
	if name, err := s.Name(); err == nil {
		return name
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Name maps the deprecated enum value to its routing-registry name.
func (s Scheme) Name() (string, error) {
	switch s {
	case DualPathScheme:
		return "dual-path", nil
	case MultiPathScheme:
		return "multi-path", nil
	case FixedPathScheme:
		return "fixed-path", nil
	default:
		return "", fmt.Errorf("mcastsvc: unknown scheme Scheme(%d)", int(s))
	}
}

// planCacheSize bounds the per-service plan cache. Group communication
// is highly repetitive (the same barrier or allreduce routes recur every
// iteration), so even a small cache removes nearly all route derivation
// from the steady state.
const planCacheSize = 4096

// Config parameterizes a Service.
type Config struct {
	Topology topology.Topology
	// Scheme is the legacy enum selector, honored when SchemeName is
	// empty.
	//
	// Deprecated: set SchemeName to a routing registry name instead.
	Scheme Scheme
	// SchemeName selects the routing scheme by registry name (see
	// routing.Names()). It must name a deadlock-free scheme. Empty falls
	// back to Scheme, whose zero value is dual-path — the dissertation's
	// recommended default.
	SchemeName string
	// MessageBytes is the default payload size; BandwidthMBps and
	// FlitBytes fix the time base (defaults: 128 bytes, 20 MB/s, 1 byte).
	MessageBytes  int
	BandwidthMBps float64
	FlitBytes     int
}

// schemeName resolves the configured scheme to a registry name.
func (c Config) schemeName() (string, error) {
	if c.SchemeName != "" {
		return c.SchemeName, nil
	}
	return c.Scheme.Name()
}

// Service provides multicast primitives over one machine.
type Service struct {
	cfg    Config
	router routing.Router
	cache  *routing.PlanCache
}

// New validates the configuration and returns a Service. The routing
// scheme is resolved through the routing registry over shared
// precomputed topology state, and plans are memoized in a bounded
// concurrency-safe cache.
func New(cfg Config) (*Service, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("mcastsvc: config needs a topology")
	}
	if cfg.MessageBytes <= 0 {
		cfg.MessageBytes = 128
	}
	if cfg.BandwidthMBps <= 0 {
		cfg.BandwidthMBps = 20
	}
	if cfg.FlitBytes <= 0 {
		cfg.FlitBytes = 1
	}
	name, err := cfg.schemeName()
	if err != nil {
		return nil, err
	}
	info, err := routing.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("mcastsvc: %w", err)
	}
	if !info.DeadlockFree {
		return nil, fmt.Errorf("mcastsvc: scheme %q is not deadlock-free", name)
	}
	st, err := routing.SharedState(cfg.Topology)
	if err != nil {
		return nil, err
	}
	r, err := routing.New(name, st)
	if err != nil {
		return nil, fmt.Errorf("mcastsvc: %w", err)
	}
	cache := routing.NewPlanCache(planCacheSize)
	return &Service{cfg: cfg, router: routing.Cached(r, cache), cache: cache}, nil
}

// SchemeName returns the registry name of the service's routing scheme.
func (s *Service) SchemeName() string { return s.router.Scheme() }

// CacheStats returns the cumulative plan-cache counters of the service's
// router (hits, misses, evictions, invalidations).
func (s *Service) CacheStats() routing.CacheStats { return s.cache.Stats() }

// Group is a process group; one process per node (Section 1.1's
// assumption that each process resides in a separate node).
type Group struct {
	members []topology.NodeID
}

// NewGroup validates and returns a group over the service's machine.
// Members must be distinct, in range, and at least two.
func (s *Service) NewGroup(members []topology.NodeID) (Group, error) {
	if len(members) < 2 {
		return Group{}, fmt.Errorf("mcastsvc: a group needs at least two members")
	}
	seen := make(map[topology.NodeID]bool, len(members))
	out := make([]topology.NodeID, len(members))
	for i, m := range members {
		if m < 0 || int(m) >= s.cfg.Topology.Nodes() {
			return Group{}, fmt.Errorf("mcastsvc: member %d out of range", m)
		}
		if seen[m] {
			return Group{}, fmt.Errorf("mcastsvc: duplicate member %d", m)
		}
		seen[m] = true
		out[i] = m
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return Group{members: out}, nil
}

// Members returns the group membership (sorted, caller must not modify).
func (g Group) Members() []topology.NodeID { return g.members }

// Size returns the number of members.
func (g Group) Size() int { return len(g.members) }

// Contains reports group membership.
func (g Group) Contains(v topology.NodeID) bool {
	for _, m := range g.members {
		if m == v {
			return true
		}
	}
	return false
}

// Cost is the routing-level cost of one primitive operation.
type Cost struct {
	// TrafficChannels is the total number of channel transmissions.
	TrafficChannels int
	// MaxDistance is the worst source-to-destination hop count.
	MaxDistance int
	// LatencyMicros is the contention-free completion latency under the
	// wormhole pipeline (last destination's last flit).
	LatencyMicros float64
	// Messages is the number of wormhole messages the protocol sends.
	Messages int
}

// flitMicros is the duration of one flit cycle.
func (s *Service) flitMicros() float64 {
	return float64(s.cfg.FlitBytes) / s.cfg.BandwidthMBps
}

// wormLatency is the contention-free wormhole latency for a route of the
// given hop count carrying bytes of payload.
func (s *Service) wormLatency(hops, bytes int) float64 {
	flits := bytes / s.cfg.FlitBytes
	if flits < 1 {
		flits = 1
	}
	return float64(hops+flits-1) * s.flitMicros()
}

// route plans k through the service's (cached) router.
func (s *Service) route(k core.MulticastSet) routing.Plan {
	return s.router.PlanSet(k)
}

// Multicast routes one source-to-group message and returns its cost. The
// source need not be a group member; members other than the source
// receive the payload.
func (s *Service) Multicast(source topology.NodeID, g Group, bytes int) (Cost, error) {
	if bytes <= 0 {
		bytes = s.cfg.MessageBytes
	}
	dests := make([]topology.NodeID, 0, g.Size())
	for _, m := range g.members {
		if m != source {
			dests = append(dests, m)
		}
	}
	k, err := core.NewMulticastSet(s.cfg.Topology, source, dests)
	if err != nil {
		return Cost{}, err
	}
	plan := s.route(k)
	return Cost{
		TrafficChannels: plan.Traffic(),
		MaxDistance:     plan.MaxDistance(),
		LatencyMicros:   s.wormLatency(plan.MaxDistance(), bytes),
		Messages:        plan.Messages(),
	}, nil
}

// Broadcast routes a message from source to every other node.
func (s *Service) Broadcast(source topology.NodeID, bytes int) (Cost, error) {
	all := make([]topology.NodeID, 0, s.cfg.Topology.Nodes())
	for v := topology.NodeID(0); int(v) < s.cfg.Topology.Nodes(); v++ {
		all = append(all, v)
	}
	g, err := s.NewGroup(all)
	if err != nil {
		return Cost{}, err
	}
	return s.Multicast(source, g, bytes)
}

// Barrier estimates the gather-release barrier of Section 1.2 [17]: every
// member sends a token to the coordinator (gather, unicasts), then the
// coordinator multicasts the release. The returned cost aggregates both
// phases; the latency is gather (slowest token) plus release.
func (s *Service) Barrier(coordinator topology.NodeID, g Group, tokenBytes int) (Cost, error) {
	if !g.Contains(coordinator) {
		return Cost{}, fmt.Errorf("mcastsvc: coordinator %d not in group", coordinator)
	}
	if tokenBytes <= 0 {
		tokenBytes = 8
	}
	var cost Cost
	worstGather := 0
	for _, m := range g.members {
		if m == coordinator {
			continue
		}
		d := s.cfg.Topology.Distance(m, coordinator)
		cost.TrafficChannels += d
		cost.Messages++
		if d > worstGather {
			worstGather = d
		}
	}
	release, err := s.Multicast(coordinator, g, tokenBytes)
	if err != nil {
		return Cost{}, err
	}
	cost.TrafficChannels += release.TrafficChannels
	cost.Messages += release.Messages
	cost.MaxDistance = release.MaxDistance
	cost.LatencyMicros = s.wormLatency(worstGather, tokenBytes) + release.LatencyMicros
	return cost, nil
}

// Reduce estimates a combining reduction to the root along a gather tree:
// members send values toward the root over shortest paths; distinct
// unicast messages model the absence of combining hardware. Use
// ReduceBroadcast for the allreduce pattern of iterative solvers.
func (s *Service) Reduce(root topology.NodeID, g Group, bytes int) (Cost, error) {
	if !g.Contains(root) {
		return Cost{}, fmt.Errorf("mcastsvc: root %d not in group", root)
	}
	if bytes <= 0 {
		bytes = s.cfg.MessageBytes
	}
	var cost Cost
	worst := 0
	for _, m := range g.members {
		if m == root {
			continue
		}
		d := s.cfg.Topology.Distance(m, root)
		cost.TrafficChannels += d
		cost.Messages++
		if d > worst {
			worst = d
		}
	}
	cost.MaxDistance = worst
	cost.LatencyMicros = s.wormLatency(worst, bytes)
	return cost, nil
}

// ReduceBroadcast estimates the allreduce of the Section 1.2 numerical
// scenarios: Reduce to the root followed by a multicast of the result.
func (s *Service) ReduceBroadcast(root topology.NodeID, g Group, bytes int) (Cost, error) {
	red, err := s.Reduce(root, g, bytes)
	if err != nil {
		return Cost{}, err
	}
	bc, err := s.Multicast(root, g, bytes)
	if err != nil {
		return Cost{}, err
	}
	return Cost{
		TrafficChannels: red.TrafficChannels + bc.TrafficChannels,
		MaxDistance:     maxInt(red.MaxDistance, bc.MaxDistance),
		LatencyMicros:   red.LatencyMicros + bc.LatencyMicros,
		Messages:        red.Messages + bc.Messages,
	}, nil
}

// SteinerEstimate returns the channel traffic of routing one message from
// source to the group over the greedy Steiner tree of Section 5.2 — the
// near-optimal (but not deadlock-free) lower reference against which the
// service's path-based Multicast cost can be compared. The topology must
// support shortest-path regions (the paper's meshes and hypercubes all
// do). Each call borrows a pooled heuristics workspace, so concurrent
// requests are safe and steady-state calls allocate only the destination
// list.
func (s *Service) SteinerEstimate(source topology.NodeID, g Group) (int, error) {
	rt, ok := s.cfg.Topology.(heuristics.RegionTopology)
	if !ok {
		return 0, fmt.Errorf("mcastsvc: topology %T does not support Steiner estimates", s.cfg.Topology)
	}
	dests := make([]topology.NodeID, 0, g.Size())
	for _, m := range g.members {
		if m != source {
			dests = append(dests, m)
		}
	}
	k, err := core.NewMulticastSet(s.cfg.Topology, source, dests)
	if err != nil {
		return 0, err
	}
	ws := heuristics.AcquireWorkspace()
	defer heuristics.ReleaseWorkspace(ws)
	return ws.GreedySTCarried(rt, k), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
