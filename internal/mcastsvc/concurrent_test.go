package mcastsvc

import (
	"sync"
	"testing"

	"multicastnet/internal/topology"
)

// TestConcurrentRequests drives Multicast and SteinerEstimate from many
// goroutines against one Service. SteinerEstimate borrows heuristics
// workspaces from the shared sync.Pool, so under -race this doubles as
// the pool-safety check for the service path; results are compared
// against serially computed answers.
func TestConcurrentRequests(t *testing.T) {
	s := newMeshService(t, DualPathScheme)
	groups := make([]Group, 8)
	wantTraffic := make([]int, len(groups))
	wantEst := make([]int, len(groups))
	for i := range groups {
		members := []topology.NodeID{
			topology.NodeID(i), topology.NodeID(63 - i),
			topology.NodeID(8*i + 7), topology.NodeID(3*i + 20),
		}
		g, err := s.NewGroup(members)
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
		c, err := s.Multicast(members[0], g, 64)
		if err != nil {
			t.Fatal(err)
		}
		wantTraffic[i] = c.TrafficChannels
		if wantEst[i], err = s.SteinerEstimate(members[0], g); err != nil {
			t.Fatal(err)
		}
		if wantEst[i] <= 0 || wantEst[i] > wantTraffic[i] {
			t.Fatalf("group %d: Steiner estimate %d vs path traffic %d", i, wantEst[i], wantTraffic[i])
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 32; rep++ {
				i := (w + rep) % len(groups)
				src := groups[i].Members()[0]
				c, err := s.Multicast(src, groups[i], 64)
				if err != nil {
					t.Errorf("worker %d: Multicast: %v", w, err)
					return
				}
				if c.TrafficChannels != wantTraffic[i] {
					t.Errorf("worker %d group %d: traffic %d, want %d", w, i, c.TrafficChannels, wantTraffic[i])
					return
				}
				est, err := s.SteinerEstimate(src, groups[i])
				if err != nil {
					t.Errorf("worker %d: SteinerEstimate: %v", w, err)
					return
				}
				if est != wantEst[i] {
					t.Errorf("worker %d group %d: estimate %d, want %d", w, i, est, wantEst[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
