package dfr

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// fig613Set is the running example of Section 6.2: a 6x6 mesh with source
// (3,2) and nine destinations.
func fig613Set(m *topology.Mesh2D) core.MulticastSet {
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	return core.MustMulticastSet(m, id(3, 2), []topology.NodeID{
		id(0, 0), id(0, 2), id(0, 5), id(1, 3), id(4, 5),
		id(5, 0), id(5, 1), id(5, 3), id(5, 4),
	})
}

// TestFig613DualPathExample reproduces Fig. 6.13: dual-path routing uses
// 33 channels (18 high, 15 low) with maximum source-destination distance
// 18 hops.
func TestFig613DualPathExample(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	l := labeling.NewMeshBoustrophedon(m)
	k := fig613Set(m)
	dh, dl := HighLowPartition(l, k)
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	wantH := []topology.NodeID{id(5, 3), id(1, 3), id(5, 4), id(4, 5), id(0, 5)}
	wantL := []topology.NodeID{id(0, 2), id(5, 1), id(5, 0), id(0, 0)}
	for i, v := range wantH {
		if dh[i] != v {
			t.Fatalf("D_H = %v, want %v", dh, wantH)
		}
	}
	for i, v := range wantL {
		if dl[i] != v {
			t.Fatalf("D_L = %v, want %v", dl, wantL)
		}
	}
	s := DualPath(m, l, k)
	if err := s.Validate(m, k); err != nil {
		t.Fatal(err)
	}
	if len(s.Paths) != 2 {
		t.Fatalf("dual-path produced %d paths", len(s.Paths))
	}
	if got := len(s.Paths[0].Nodes) - 1; got != 18 {
		t.Errorf("high path uses %d channels, want 18", got)
	}
	if got := len(s.Paths[1].Nodes) - 1; got != 15 {
		t.Errorf("low path uses %d channels, want 15", got)
	}
	if s.Traffic() != 33 {
		t.Errorf("total traffic %d, want 33", s.Traffic())
	}
	if s.MaxDistance() != 18 {
		t.Errorf("max distance %d, want 18", s.MaxDistance())
	}
}

// TestFig616MultiPathExample reproduces Fig. 6.16: multi-path routing
// splits the example into four paths (D_H1 = {(5,3),(5,4),(4,5)}, D_H2 =
// {(1,3),(0,5)}, D_L1 = {(5,1),(5,0)}, D_L2 = {(0,2),(0,0)}) with maximum
// distance 6. Every leg of every path is a shortest path, which sums to
// 21 channels; the text's stated total of 20 appears to be a one-unit
// slip (see EXPERIMENTS.md).
func TestFig616MultiPathExample(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	l := labeling.NewMeshBoustrophedon(m)
	k := fig613Set(m)
	s := MultiPathMesh(m, l, k)
	if err := s.Validate(m, k); err != nil {
		t.Fatal(err)
	}
	if len(s.Paths) != 4 {
		t.Fatalf("multi-path produced %d paths, want 4", len(s.Paths))
	}
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	// Same four groups as the text (D_H1, D_H2, and the two low groups;
	// we emit the low group on the horizontal neighbor's side first).
	wantGroups := [][]topology.NodeID{
		{id(5, 3), id(5, 4), id(4, 5)},
		{id(1, 3), id(0, 5)},
		{id(0, 2), id(0, 0)},
		{id(5, 1), id(5, 0)},
	}
	for i, want := range wantGroups {
		got := s.Paths[i].Dests
		if len(got) != len(want) {
			t.Fatalf("path %d dests %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("path %d dests %v, want %v", i, got, want)
			}
		}
	}
	if s.Traffic() != 21 {
		t.Errorf("total traffic %d, want 21", s.Traffic())
	}
	if s.MaxDistance() != 6 {
		t.Errorf("max distance %d, want 6", s.MaxDistance())
	}
}

// TestFig617FixedPathExample reproduces Fig. 6.17: fixed-path routing
// uses 35 channels (20 high, 15 low) with maximum distance 20.
func TestFig617FixedPathExample(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	l := labeling.NewMeshBoustrophedon(m)
	k := fig613Set(m)
	s := FixedPath(m, l, k)
	if err := s.Validate(m, k); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Paths[0].Nodes) - 1; got != 20 {
		t.Errorf("high fixed path uses %d channels, want 20", got)
	}
	if got := len(s.Paths[1].Nodes) - 1; got != 15 {
		t.Errorf("low fixed path uses %d channels, want 15", got)
	}
	if s.Traffic() != 35 {
		t.Errorf("total traffic %d, want 35", s.Traffic())
	}
	if s.MaxDistance() != 20 {
		t.Errorf("max distance %d, want 20", s.MaxDistance())
	}
}

// TestFig619DualPathCube reproduces the 4-cube dual-path example of
// Fig. 6.19: source 1100, D_H = (1111, 1000), D_L = (0100, 0111, 0011),
// and the high path routed 1100 -> 1101 -> 1111 -> ... -> 1000.
func TestFig619DualPathCube(t *testing.T) {
	h := topology.NewHypercube(4)
	l := labeling.NewHypercubeGray(h)
	k := core.MustMulticastSet(h, 0b1100,
		[]topology.NodeID{0b0100, 0b0011, 0b0111, 0b1000, 0b1111})
	dh, dl := HighLowPartition(l, k)
	wantH := []topology.NodeID{0b1111, 0b1000}
	wantL := []topology.NodeID{0b0100, 0b0111, 0b0011}
	for i, v := range wantH {
		if dh[i] != v {
			t.Fatalf("D_H = %v, want %v", dh, wantH)
		}
	}
	for i, v := range wantL {
		if dl[i] != v {
			t.Fatalf("D_L = %v, want %v", dl, wantL)
		}
	}
	s := DualPath(h, l, k)
	if err := s.Validate(h, k); err != nil {
		t.Fatal(err)
	}
	// High path: the text walks 1100 -> 1101 (selected by R) -> 1111.
	high := s.Paths[0].Nodes
	if high[1] != 0b1101 || high[2] != 0b1111 {
		t.Errorf("high path %v should start 1100,1101,1111", high)
	}
	if high[len(high)-1] != 0b1000 {
		t.Errorf("high path should end at 1000")
	}
}

// TestFig621MultiPathCube reproduces the 4-cube multi-path example of
// Fig. 6.21: three paths (1111 via 1101, 1000 directly, and the low path)
// totalling 7 channels.
func TestFig621MultiPathCube(t *testing.T) {
	h := topology.NewHypercube(4)
	l := labeling.NewHypercubeGray(h)
	k := core.MustMulticastSet(h, 0b1100,
		[]topology.NodeID{0b0100, 0b0011, 0b0111, 0b1000, 0b1111})
	s := MultiPathCube(h, l, k)
	if err := s.Validate(h, k); err != nil {
		t.Fatal(err)
	}
	if len(s.Paths) != 3 {
		t.Fatalf("multi-path produced %d paths, want 3", len(s.Paths))
	}
	if s.Traffic() != 7 {
		t.Errorf("total traffic %d, want 7", s.Traffic())
	}
	if s.MaxDistance() != 4 {
		t.Errorf("max distance %d, want 4", s.MaxDistance())
	}
}

// randomSet draws a uniform multicast set.
func randomSet(t topology.Topology, rng *stats.Rand, k int) core.MulticastSet {
	src := topology.NodeID(rng.Intn(t.Nodes()))
	raw := rng.Sample(t.Nodes(), k, int(src))
	dests := make([]topology.NodeID, k)
	for i, v := range raw {
		dests[i] = topology.NodeID(v)
	}
	return core.MustMulticastSet(t, src, dests)
}

// TestPathSchemesPropertyMesh checks on random mesh workloads: valid
// delivery, label monotonicity per path, and the traffic ordering
// multi <= dual <= fixed.
func TestPathSchemesPropertyMesh(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	rng := stats.NewRand(97)
	var multiT, dualT, fixedT int
	for trial := 0; trial < 300; trial++ {
		k := randomSet(m, rng, 1+rng.Intn(15))
		for _, s := range []Star{DualPath(m, l, k), MultiPathMesh(m, l, k), FixedPath(m, l, k)} {
			if err := s.Validate(m, k); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for _, p := range s.Paths {
				up := l.Label(p.Nodes[len(p.Nodes)-1]) > l.Label(p.Nodes[0])
				for i := 1; i < len(p.Nodes); i++ {
					a, b := l.Label(p.Nodes[i-1]), l.Label(p.Nodes[i])
					if up && a >= b || !up && a <= b {
						t.Fatalf("trial %d: path labels not monotone: %v", trial, p.Nodes)
					}
				}
			}
		}
		multiT += MultiPathMesh(m, l, k).Traffic()
		dualT += DualPath(m, l, k).Traffic()
		fixedT += FixedPath(m, l, k).Traffic()
	}
	if !(multiT <= dualT && dualT <= fixedT) {
		t.Errorf("average traffic ordering violated: multi %d, dual %d, fixed %d", multiT, dualT, fixedT)
	}
}

// TestPathSchemesPropertyCube checks the same properties on a hypercube.
func TestPathSchemesPropertyCube(t *testing.T) {
	h := topology.NewHypercube(6)
	l := labeling.NewHypercubeGray(h)
	rng := stats.NewRand(101)
	var multiDist, dualDist, dualT, fixedT int
	for trial := 0; trial < 300; trial++ {
		k := randomSet(h, rng, 1+rng.Intn(15))
		for _, s := range []Star{DualPath(h, l, k), MultiPathCube(h, l, k), FixedPath(h, l, k)} {
			if err := s.Validate(h, k); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		// Splitting across more neighbors shortens the worst
		// source-to-destination path; on the hypercube the paper makes
		// no per-topology traffic claim for multi vs dual, so we check
		// the distance benefit and the dual <= fixed traffic ordering.
		multiDist += MultiPathCube(h, l, k).MaxDistance()
		dualDist += DualPath(h, l, k).MaxDistance()
		dualT += DualPath(h, l, k).Traffic()
		fixedT += FixedPath(h, l, k).Traffic()
	}
	if multiDist > dualDist {
		t.Errorf("multi-path average max distance %d exceeds dual-path %d", multiDist, dualDist)
	}
	if dualT > fixedT {
		t.Errorf("dual-path average traffic %d exceeds fixed-path %d", dualT, fixedT)
	}
}

// TestDoubleChannelXFirst checks the tree scheme: valid trees, X-first
// shortest delivery, and channel-disjoint subnetworks.
func TestDoubleChannelXFirst(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	k := fig613Set(m)
	trees := DoubleChannelXFirst(m, k)
	if len(trees) != 4 {
		t.Fatalf("expected 4 subnetwork trees, got %d", len(trees))
	}
	seen := make(map[Channel]bool)
	delivered := make(map[topology.NodeID]bool)
	for _, tr := range trees {
		if err := tr.Validate(m, k); err == nil {
			t.Fatal("per-subnetwork tree should not satisfy the full set validation (covers a subset)")
		}
		if tr.Root != k.Source {
			t.Error("tree not rooted at source")
		}
		depths := tr.Depths()
		for _, d := range tr.Dests {
			if depths[d] != m.Distance(k.Source, d) {
				t.Errorf("destination %d at depth %d, distance %d", d, depths[d], m.Distance(k.Source, d))
			}
			delivered[d] = true
		}
		for _, e := range tr.Edges {
			if seen[e] {
				t.Errorf("channel %v used by two subnetworks", e)
			}
			seen[e] = true
		}
	}
	for _, d := range k.Dests {
		if !delivered[d] {
			t.Errorf("destination %d not delivered", d)
		}
	}
}

// TestDoubleChannelXFirstProperty checks the tree scheme on random
// workloads: all destinations delivered at shortest distance, edges form
// valid trees.
func TestDoubleChannelXFirstProperty(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	rng := stats.NewRand(111)
	for trial := 0; trial < 300; trial++ {
		k := randomSet(m, rng, 1+rng.Intn(20))
		delivered := make(map[topology.NodeID]bool)
		for _, tr := range DoubleChannelXFirst(m, k) {
			inTree := map[topology.NodeID]bool{tr.Root: true}
			for _, e := range tr.Edges {
				if !inTree[e.From] || inTree[e.To] {
					t.Fatalf("trial %d: malformed tree", trial)
				}
				if !m.Adjacent(e.From, e.To) {
					t.Fatalf("trial %d: non-edge in tree", trial)
				}
				inTree[e.To] = true
			}
			depths := tr.Depths()
			for _, d := range tr.Dests {
				if depths[d] != m.Distance(k.Source, d) {
					t.Fatalf("trial %d: non-shortest delivery", trial)
				}
				delivered[d] = true
			}
		}
		if len(delivered) != k.K() {
			t.Fatalf("trial %d: delivered %d of %d", trial, len(delivered), k.K())
		}
	}
}

// TestUnicastCDGAcyclic verifies Assertions 2/3 and Corollaries 6.1/6.2
// at the unicast level: the complete channel dependency graph of the
// routing function R is acyclic for the paper's labelings.
func TestUnicastCDGAcyclic(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	if cyc := UnicastCDG(m, labeling.NewMeshBoustrophedon(m)).FindCycle(); cyc != nil {
		t.Errorf("mesh R CDG has cycle %v", cyc)
	}
	h := topology.NewHypercube(5)
	if cyc := UnicastCDG(h, labeling.NewHypercubeGray(h)).FindCycle(); cyc != nil {
		t.Errorf("cube R CDG has cycle %v", cyc)
	}
	// Even a poor Hamilton path stays deadlock-free.
	m2 := topology.NewMesh2D(4, 4)
	c, err := labeling.MeshHamiltonCycle(m2)
	if err != nil {
		t.Fatal(err)
	}
	if cyc := UnicastCDG(m2, labeling.PathLabeling{Cycle: c}).FindCycle(); cyc != nil {
		t.Errorf("comb-labeling CDG has cycle %v", cyc)
	}
}

// TestXYUnicastCDGAcyclic pins the Fig. 2.5 classical result.
func TestXYUnicastCDGAcyclic(t *testing.T) {
	m := topology.NewMesh2D(5, 5)
	if cyc := XYUnicastCDG(m).FindCycle(); cyc != nil {
		t.Errorf("XY routing CDG has cycle %v", cyc)
	}
}

// TestMulticastCDGAcyclic accumulates the dependencies of many concurrent
// multicasts under each deadlock-free scheme into one dependency graph
// and verifies it stays acyclic — the Assertion 1/2/3 statements.
func TestMulticastCDGAcyclic(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	h := topology.NewHypercube(5)
	lh := labeling.NewHypercubeGray(h)
	rng := stats.NewRand(131)

	pathRec := NewDependencyRecorder()
	cubeRec := NewDependencyRecorder()
	treeRec := NewDependencyRecorder()
	for trial := 0; trial < 200; trial++ {
		km := randomSet(m, rng, 1+rng.Intn(12))
		pathRec.AddStar(DualPath(m, l, km))
		pathRec.AddStar(MultiPathMesh(m, l, km))
		pathRec.AddStar(FixedPath(m, l, km))
		kh := randomSet(h, rng, 1+rng.Intn(12))
		cubeRec.AddStar(DualPath(h, lh, kh))
		cubeRec.AddStar(MultiPathCube(h, lh, kh))
		for _, tr := range DoubleChannelXFirst(m, km) {
			treeRec.AddTree(tr)
		}
	}
	if cyc := pathRec.FindCycle(); cyc != nil {
		t.Errorf("mesh path-based CDG has cycle %v", cyc)
	}
	if cyc := cubeRec.FindCycle(); cyc != nil {
		t.Errorf("cube path-based CDG has cycle %v", cyc)
	}
	if cyc := treeRec.FindCycle(); cyc != nil {
		t.Errorf("double-channel tree CDG has cycle %v", cyc)
	}
}

// TestFig64NaiveTreeDeadlock reproduces the Fig. 6.4 deadlock: the two
// opposing X-first tree multicasts on a 3x4 mesh create a channel
// dependency cycle.
func TestFig64NaiveTreeDeadlock(t *testing.T) {
	m := topology.NewMesh2D(4, 3) // width 4, height 3 as in Fig. 6.4
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	m0 := core.MustMulticastSet(m, id(1, 1), []topology.NodeID{id(0, 2), id(3, 1)})
	m1 := core.MustMulticastSet(m, id(2, 1), []topology.NodeID{id(0, 1), id(3, 0)})
	rec := NaiveTreeCDG(m, []core.MulticastSet{m0, m1})
	if cyc := rec.FindCycle(); cyc == nil {
		t.Error("expected a dependency cycle between the two multicasts (Fig. 6.4)")
	}
	// A single multicast alone is fine.
	solo := NaiveTreeCDG(m, []core.MulticastSet{m0})
	if cyc := solo.FindCycle(); cyc != nil {
		t.Errorf("single multicast should not self-deadlock, got %v", cyc)
	}
}

// TestFig61BroadcastDeadlock reproduces the Fig. 6.1 deadlock: the nCUBE-2
// style broadcast trees from nodes 000 and 001 of a 3-cube form a
// dependency cycle.
func TestFig61BroadcastDeadlock(t *testing.T) {
	h := topology.NewHypercube(3)
	rec := NewDependencyRecorder()
	rec.AddTree(ECubeBroadcastTree(h, 0b000))
	rec.AddTree(ECubeBroadcastTree(h, 0b001))
	if cyc := rec.FindCycle(); cyc == nil {
		t.Error("expected the Fig. 6.1 dependency cycle between the two broadcasts")
	}
	solo := NewDependencyRecorder()
	solo.AddTree(ECubeBroadcastTree(h, 0b000))
	if cyc := solo.FindCycle(); cyc != nil {
		t.Errorf("single broadcast should not self-deadlock, got %v", cyc)
	}
}

// TestBroadcastTreeCoversCube sanity-checks the binomial broadcast tree.
func TestBroadcastTreeCoversCube(t *testing.T) {
	h := topology.NewHypercube(4)
	tr := ECubeBroadcastTree(h, 5)
	if len(tr.Edges) != h.Nodes()-1 {
		t.Fatalf("broadcast tree has %d edges, want %d", len(tr.Edges), h.Nodes()-1)
	}
	if err := tr.Validate(h, core.MustMulticastSet(h, 5, tr.Dests)); err != nil {
		t.Fatal(err)
	}
	depths := tr.Depths()
	for v := topology.NodeID(0); int(v) < h.Nodes(); v++ {
		if depths[v] != h.Distance(5, v) {
			t.Errorf("node %d at depth %d, distance %d", v, depths[v], h.Distance(5, v))
		}
	}
}

// TestChannelIndexer checks the dense channel indexing.
func TestChannelIndexer(t *testing.T) {
	x := NewChannelIndexer()
	a := Channel{From: 1, To: 2}
	b := Channel{From: 1, To: 2, Class: 1}
	if x.ID(a) != 0 || x.ID(b) != 1 || x.ID(a) != 0 {
		t.Error("indexer ids unstable")
	}
	if x.Len() != 2 || x.Channel(1) != b {
		t.Error("indexer lookup broken")
	}
	if a.String() != "[1,2]" || b.String() != "[1,2]#1" {
		t.Errorf("channel strings %q %q", a.String(), b.String())
	}
}
