package experiments

import (
	"time"

	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// SimThroughput measures raw simulator-core speed: one dual-path run on
// an 8x8 mesh under the Fig. 7.11 high-load workload (300 us
// inter-arrival, 10 average destinations), capped at maxCycles. It
// returns the simulated cycle count and the wall-clock seconds spent,
// from which callers derive cycles/sec. Used by `mcfigures -bench` and
// BenchmarkWormsimCyclesPerSec so both report the same workload.
func SimThroughput(seed uint64, maxCycles int64) (cycles int64, secs float64) {
	m := topology.NewMesh2D(8, 8)
	route := wormsim.RouteFuncOf(mustRouter("dual-path", mustState(m), routing.Options{}))
	start := time.Now()
	res, err := wormsim.Run(wormsim.Config{
		Topology:               m,
		Route:                  route,
		MeanInterarrivalMicros: 300,
		AvgDests:               10,
		Seed:                   seed,
		WarmupDeliveries:       100,
		BatchSize:              100,
		MinBatches:             1 << 30, // never converge: run the full cycle budget
		MaxCycles:              maxCycles,
	})
	if err != nil {
		panic(err)
	}
	return res.Cycles, time.Since(start).Seconds()
}
