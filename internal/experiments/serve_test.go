package experiments

import (
	"bytes"
	"testing"
)

// serveTestOptions is a reduced serving study: fewer requests, two load
// points, one window point. Everything the committed study pins is still
// exercised — both policies over paired streams, the load and window
// sweeps, and the per-point table.
func serveTestOptions() ServeOptions {
	o := ServeQuick()
	o.Seed = 7
	o.Requests = 200
	o.Groups = 64
	o.Loads = []float64{4, 1}
	o.Windows = []int64{128}
	o.MaxCycles = 1_000_000
	return o
}

// TestServeStudySmall runs the full serving-study machinery reduced and
// pins its invariants: every offered request completes under both
// policies, the congestion budget actually defers under load, and every
// output is byte-identical across sweep workers, planner workers, and
// simulator shards.
func TestServeStudySmall(t *testing.T) {
	o := serveTestOptions()
	o.Parallel = 1
	serial := ServeStudy(o)

	for _, f := range []struct {
		name   string
		series int
	}{
		{"throughput", len(serial.Throughput.Series)},
		{"p99", len(serial.P99.Series)},
		{"window throughput", len(serial.WindowThroughput.Series)},
		{"window p99", len(serial.WindowP99.Series)},
	} {
		if f.series != 2 {
			t.Errorf("%s figure has %d series, want 2 (fifo+sched)", f.name, f.series)
		}
	}
	if got, want := len(serial.Points), 2*(len(o.Loads)+len(o.Windows)); got != want {
		t.Fatalf("points = %d, want %d", got, want)
	}
	sawDefer, sawHits := false, false
	for _, p := range serial.Points {
		if p.Completed != p.Requests {
			t.Errorf("%s ia=%g w=%d: completed %d of %d", p.Policy,
				p.MeanInterarrival, p.WindowCycles, p.Completed, p.Requests)
		}
		if p.Deadlocked {
			t.Errorf("%s ia=%g: deadlocked", p.Policy, p.MeanInterarrival)
		}
		if p.CacheLookups == 0 {
			t.Errorf("%s ia=%g: no cache lookups", p.Policy, p.MeanInterarrival)
		}
		// At high load a whole run can fit in one window, where in-window
		// dedup leaves zero cache hits; only multi-window runs must hit.
		if p.CacheHitRate > 0 {
			sawHits = true
		}
		switch p.Policy {
		case "fifo":
			if p.Deferrals != 0 || p.ForceAdmits != 0 {
				t.Errorf("fifo ia=%g deferred: %+v", p.MeanInterarrival, p)
			}
		case "sched":
			if p.Deferrals > 0 {
				sawDefer = true
			}
		default:
			t.Errorf("unknown policy %q", p.Policy)
		}
	}
	if !sawDefer {
		t.Error("sched policy never deferred a request at any load")
	}
	if !sawHits {
		t.Errorf("no point had any cache hits over a %d-group pool", o.Groups)
	}

	// Same study under the sweep worker pool, parallel planners, and the
	// sharded simulator: figures and points must be byte-identical.
	o.Parallel = 4
	o.Shards = 2
	par := ServeStudy(o)
	for _, f := range []struct {
		name string
		a, b []byte
	}{
		{"throughput", figCSV(t, serial.Throughput), figCSV(t, par.Throughput)},
		{"p99", figCSV(t, serial.P99), figCSV(t, par.P99)},
		{"window throughput", figCSV(t, serial.WindowThroughput), figCSV(t, par.WindowThroughput)},
		{"window p99", figCSV(t, serial.WindowP99), figCSV(t, par.WindowP99)},
	} {
		if !bytes.Equal(f.a, f.b) {
			t.Errorf("%s figure diverges between parallel=1 and parallel=4 shards=2:\n%s\n---\n%s",
				f.name, f.a, f.b)
		}
	}
	for i := range serial.Points {
		if serial.Points[i] != par.Points[i] {
			t.Errorf("point %d diverges:\nserial %+v\npar    %+v",
				i, serial.Points[i], par.Points[i])
		}
	}
}
