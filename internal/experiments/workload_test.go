package experiments

import (
	"bytes"
	"testing"

	"multicastnet/internal/topology"
)

// workloadTestOptions is a reduced workload study: short streams, three
// models, one small topology. The committed study's full machinery —
// paired streams, both sweeps, rankings — still runs.
func workloadTestOptions() WorkloadOptions {
	o := WorkloadQuick()
	o.Seed = 7
	o.Requests = 150
	o.Groups = 16
	o.MeanGap = 2
	o.Budget = 40
	o.MaxCycles = 1_000_000
	o.Models = []string{"uniform", "zipf", "bursty"}
	o.Topos = []WorkloadTopo{{
		Name:    "mesh",
		Build:   func() topology.Topology { return topology.NewMesh2D(8, 8) },
		Schemes: []string{"dual-path", "multi-path"},
	}}
	return o
}

// TestWorkloadStudySmall runs the reduced workload study and pins its
// invariants: every stream drains under every scheme, the packer sweep
// serves every request, and every output is byte-identical across sweep
// workers, planner workers, and simulator shards.
func TestWorkloadStudySmall(t *testing.T) {
	o := workloadTestOptions()
	o.Parallel = 1
	serial := WorkloadStudy(o)

	if got, want := len(serial.SchemeFigs), 1; got != want {
		t.Fatalf("%d scheme figures, want %d", got, want)
	}
	if got := len(serial.SchemeFigs[0].Series); got != 2 {
		t.Errorf("scheme figure has %d series, want 2", got)
	}
	if got, want := len(serial.Points), 2*len(o.Models); got != want {
		t.Fatalf("%d scheme points, want %d", got, want)
	}
	if got, want := len(serial.PackerPoints), 2*len(o.Models); got != want {
		t.Fatalf("%d packer points, want %d", got, want)
	}
	for _, p := range serial.Points {
		if p.Deadlocked {
			t.Errorf("%s/%s/%s deadlocked", p.Topo, p.Model, p.Scheme)
		}
		if p.Delivered == 0 {
			t.Errorf("%s/%s/%s delivered nothing", p.Topo, p.Model, p.Scheme)
		}
		if p.Cycles >= o.MaxCycles {
			t.Errorf("%s/%s/%s hit MaxCycles: stream did not drain", p.Topo, p.Model, p.Scheme)
		}
	}
	for _, p := range serial.PackerPoints {
		if p.Completed != p.Requests {
			t.Errorf("packer %s/%s completed %d of %d", p.Model, p.Policy, p.Completed, p.Requests)
		}
	}
	// Paired streams: both schemes see the identical request count per
	// (topo, model), so Delivered matches between them.
	byModel := map[string][]WorkloadPoint{}
	for _, p := range serial.Points {
		byModel[p.Model] = append(byModel[p.Model], p)
	}
	for model, ps := range byModel {
		for _, p := range ps[1:] {
			if p.Delivered != ps[0].Delivered {
				t.Errorf("%s: schemes %s and %s delivered %d vs %d — streams not paired",
					model, p.Scheme, ps[0].Scheme, p.Delivered, ps[0].Delivered)
			}
		}
	}
	if r := serial.SchemeRanking("mesh", "uniform"); len(r) != 2 {
		t.Errorf("uniform ranking %v, want 2 schemes", r)
	}

	// Byte-identity across sweep workers, planner workers, and shards.
	o.Parallel = 4
	o.Shards = 2
	par := WorkloadStudy(o)
	figs := [][2][]byte{
		{figCSV(t, serial.SchemeFigs[0]), figCSV(t, par.SchemeFigs[0])},
		{figCSV(t, serial.PackerThroughput), figCSV(t, par.PackerThroughput)},
		{figCSV(t, serial.PackerP99), figCSV(t, par.PackerP99)},
	}
	for i, f := range figs {
		if !bytes.Equal(f[0], f[1]) {
			t.Errorf("figure %d diverges between parallel=1 and parallel=4 shards=2:\n%s\n---\n%s",
				i, f[0], f[1])
		}
	}
	for i := range serial.Points {
		if serial.Points[i] != par.Points[i] {
			t.Errorf("scheme point %d diverges:\nserial %+v\npar    %+v",
				i, serial.Points[i], par.Points[i])
		}
	}
	for i := range serial.PackerPoints {
		if serial.PackerPoints[i] != par.PackerPoints[i] {
			t.Errorf("packer point %d diverges:\nserial %+v\npar    %+v",
				i, serial.PackerPoints[i], par.PackerPoints[i])
		}
	}
}

// TestServeStudyWorkloadOption: the serving study accepts a workload
// profile in place of its built-in pool and stays deterministic.
func TestServeStudyWorkloadOption(t *testing.T) {
	o := serveTestOptions()
	o.Workload = "zipf"
	o.Parallel = 1
	serial := ServeStudy(o)
	for _, p := range serial.Points {
		if p.Completed == 0 || p.Completed != p.Requests {
			t.Errorf("%s ia=%g: completed %d of %d", p.Policy, p.MeanInterarrival, p.Completed, p.Requests)
		}
	}
	o.Parallel = 3
	o.Shards = 2
	par := ServeStudy(o)
	for i := range serial.Points {
		if serial.Points[i] != par.Points[i] {
			t.Errorf("point %d diverges under workers/shards:\nserial %+v\npar    %+v",
				i, serial.Points[i], par.Points[i])
		}
	}
}

// TestWorkloadStudySpecErrors: unknown model names error instead of
// silently falling back to uniform.
func TestWorkloadStudySpecErrors(t *testing.T) {
	if _, err := workloadStudySpec("warp", 10, 4, 2, 1, 1.2); err == nil {
		t.Error("unknown model accepted")
	}
	for _, m := range WorkloadModelNames() {
		if _, err := workloadStudySpec(m, 10, 4, 2, 1, 1.2); err != nil {
			t.Errorf("%s rejected: %v", m, err)
		}
	}
}

// TestRecordWorkload: the CLI's record path produces the stream the
// study runs.
func TestRecordWorkload(t *testing.T) {
	o := workloadTestOptions()
	tr, err := RecordWorkload("bursty", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Reqs) != o.Requests {
		t.Fatalf("recorded %d requests, want %d", len(tr.Reqs), o.Requests)
	}
	if _, err := RecordWorkload("warp", o); err == nil {
		t.Error("unknown model accepted")
	}
}
