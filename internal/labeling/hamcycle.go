package labeling

import (
	"fmt"

	"multicastnet/internal/topology"
)

// HamiltonCycle is a cyclic node ordering C = (v_1, ..., v_m, v_1) of a
// topology, together with the position mapping h of Section 5.1:
// h(v_i) = i, with positions 1-based as in Tables 5.1 and 5.3.
type HamiltonCycle struct {
	seq []topology.NodeID // v_1 ... v_m (the closing edge back to v_1 is implicit)
	pos []int             // pos[node] = 1-based position in seq
}

// NewHamiltonCycle wraps a node sequence as a HamiltonCycle, validating
// that it visits each node exactly once and that consecutive nodes
// (including v_m back to v_1) are adjacent in t.
func NewHamiltonCycle(t topology.Topology, seq []topology.NodeID) (*HamiltonCycle, error) {
	if len(seq) != t.Nodes() {
		return nil, fmt.Errorf("labeling: cycle visits %d nodes, topology has %d", len(seq), t.Nodes())
	}
	pos := make([]int, t.Nodes())
	for i, v := range seq {
		if v < 0 || int(v) >= t.Nodes() {
			return nil, fmt.Errorf("labeling: cycle node %d out of range", v)
		}
		if pos[v] != 0 {
			return nil, fmt.Errorf("labeling: cycle visits node %d twice", v)
		}
		pos[v] = i + 1
	}
	for i := range seq {
		next := seq[(i+1)%len(seq)]
		if !t.Adjacent(seq[i], next) {
			return nil, fmt.Errorf("labeling: cycle nodes %d,%d not adjacent", seq[i], next)
		}
	}
	return &HamiltonCycle{seq: seq, pos: pos}, nil
}

// Len returns the number of nodes on the cycle.
func (c *HamiltonCycle) Len() int { return len(c.seq) }

// H returns h(v), the 1-based position of v on the cycle.
func (c *HamiltonCycle) H(v topology.NodeID) int { return c.pos[v] }

// At returns the node at 1-based position h.
func (c *HamiltonCycle) At(h int) topology.NodeID {
	if h < 1 || h > len(c.seq) {
		panic(fmt.Sprintf("labeling: cycle position %d out of range [1,%d]", h, len(c.seq)))
	}
	return c.seq[h-1]
}

// Seq returns a copy of the cycle's node sequence v_1 ... v_m.
func (c *HamiltonCycle) Seq() []topology.NodeID {
	out := make([]topology.NodeID, len(c.seq))
	copy(out, c.seq)
	return out
}

// SortKey returns the sorting key f of the sorted MP algorithm
// (Fig. 5.1): distances are measured around the cycle starting from the
// source u0, so nodes "behind" the source wrap around:
//
//	f(x) = h(x)             if h(x) >= h(u0)
//	f(x) = h(x) + m         otherwise
func (c *HamiltonCycle) SortKey(u0, x topology.NodeID) int {
	if c.pos[x] < c.pos[u0] {
		return c.pos[x] + len(c.seq)
	}
	return c.pos[x]
}

// MeshHamiltonCycle constructs a Hamilton cycle of a 2D mesh with at least
// one even dimension (fact F1 of Section 5.1). For an even number of rows
// the construction matches Table 5.1 on the 4x4 mesh: row 0 left-to-right,
// rows 1..H-2 serpentine within columns 1..W-1, row H-1 right-to-left, and
// column 0 climbing back to the origin. When only the width is even, the
// transposed construction is used. It returns an error when both
// dimensions are odd (no Hamilton cycle exists: the mesh is bipartite with
// unequal part sizes) or when either dimension is 1.
func MeshHamiltonCycle(m *topology.Mesh2D) (*HamiltonCycle, error) {
	if m.Width < 2 || m.Height < 2 {
		return nil, fmt.Errorf("labeling: %s has no Hamilton cycle", m.Name())
	}
	var seq []topology.NodeID
	switch {
	case m.Height%2 == 0:
		seq = meshCombCycle(m.Width, m.Height, m.ID)
	case m.Width%2 == 0:
		seq = meshCombCycle(m.Height, m.Width, func(x, y int) topology.NodeID { return m.ID(y, x) })
	default:
		return nil, fmt.Errorf("labeling: %s (both dimensions odd) has no Hamilton cycle", m.Name())
	}
	return NewHamiltonCycle(m, seq)
}

// meshCombCycle builds the comb-shaped cycle for a w x h grid with h even,
// using id to map (x, y) to nodes.
func meshCombCycle(w, h int, id func(x, y int) topology.NodeID) []topology.NodeID {
	seq := make([]topology.NodeID, 0, w*h)
	// Row 0, left to right.
	for x := 0; x < w; x++ {
		seq = append(seq, id(x, 0))
	}
	// Rows 1..h-2 serpentine within columns 1..w-1. Row 1 runs right to
	// left (we arrive at x = w-1), row 2 left to right, and so on; since
	// h is even there are an even number of such rows, so the serpentine
	// exits at x = w-1 ready to descend into the last row.
	for y := 1; y <= h-2; y++ {
		if y%2 == 1 {
			for x := w - 1; x >= 1; x-- {
				seq = append(seq, id(x, y))
			}
		} else {
			for x := 1; x <= w-1; x++ {
				seq = append(seq, id(x, y))
			}
		}
	}
	// Last row, right to left, reaching column 0.
	for x := w - 1; x >= 0; x-- {
		seq = append(seq, id(x, h-1))
	}
	// Climb column 0 back toward the origin.
	for y := h - 2; y >= 1; y-- {
		seq = append(seq, id(0, y))
	}
	return seq
}

// PathLabeling exposes a Hamilton cycle, opened at its first node, as a
// Labeling: node v_1 gets label 0, v_2 label 1, and so on. It lets any
// Hamilton cycle serve as the network partitioning of Section 6.2.2 —
// including deliberately poor ones, which is the Fig. 6.10 ablation (the
// comb-shaped cycle of MeshHamiltonCycle routes (0,3) to (0,0) on a 4x4
// mesh in 5 hops instead of 3).
type PathLabeling struct {
	Cycle *HamiltonCycle
}

// N implements Labeling.
func (l PathLabeling) N() int { return l.Cycle.Len() }

// Label implements Labeling.
func (l PathLabeling) Label(v topology.NodeID) int { return l.Cycle.H(v) - 1 }

// At implements Labeling.
func (l PathLabeling) At(label int) topology.NodeID { return l.Cycle.At(label + 1) }

// CubeHamiltonCycle constructs the Gray-code Hamilton cycle of an n-cube,
// matching Table 5.3 on the 4-cube: node at position i is the i-th
// binary-reflected Gray codeword. The Gray sequence is cyclic (the last
// codeword differs from the first in one bit), so it is a Hamilton cycle.
func CubeHamiltonCycle(h *topology.Hypercube) (*HamiltonCycle, error) {
	seq := make([]topology.NodeID, h.Nodes())
	for i := range seq {
		seq[i] = topology.NodeID(GrayEncode(uint(i)))
	}
	return NewHamiltonCycle(h, seq)
}
