package graphx

import (
	"fmt"
	"sort"
)

// Point is a vertex of the infinite integer lattice G-infinity of
// Section 4.1.
type Point struct {
	X, Y int
}

// GridGraph is a finite node-induced subgraph of the integer lattice: two
// vertices are adjacent iff their Euclidean distance is 1. Grid graphs are
// the source problems of every Chapter 4 reduction (Hamilton cycle/path in
// grid graphs is NP-complete, results G1-G4 of [51]).
type GridGraph struct {
	points []Point       // sorted, deduplicated
	index  map[Point]int // point -> vertex index
}

// NewGridGraph builds the node-induced grid graph on the given points.
// Duplicates are rejected with a panic.
func NewGridGraph(points []Point) *GridGraph {
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Y != ps[j].Y {
			return ps[i].Y < ps[j].Y
		}
		return ps[i].X < ps[j].X
	})
	index := make(map[Point]int, len(ps))
	for i, p := range ps {
		if _, dup := index[p]; dup {
			panic(fmt.Sprintf("graphx: duplicate grid point %v", p))
		}
		index[p] = i
	}
	return &GridGraph{points: ps, index: index}
}

// N returns the number of vertices.
func (g *GridGraph) N() int { return len(g.points) }

// Point returns the lattice coordinates of vertex i.
func (g *GridGraph) Point(i int) Point { return g.points[i] }

// Points returns a copy of the vertex set in canonical order.
func (g *GridGraph) Points() []Point {
	ps := make([]Point, len(g.points))
	copy(ps, g.points)
	return ps
}

// Index returns the vertex index of p and whether p is a vertex.
func (g *GridGraph) Index(p Point) (int, bool) {
	i, ok := g.index[p]
	return i, ok
}

// Contains reports whether p is a vertex.
func (g *GridGraph) Contains(p Point) bool {
	_, ok := g.index[p]
	return ok
}

// Graph converts the grid graph to a generic Graph with the induced
// lattice edges.
func (g *GridGraph) Graph() *Graph {
	gr := NewGraph(g.N())
	for i, p := range g.points {
		// Each lattice edge is enumerated exactly once (from its lower
		// endpoint), so the duplicate scan of AddEdge is unnecessary.
		for _, q := range []Point{{p.X + 1, p.Y}, {p.X, p.Y + 1}} {
			if j, ok := g.index[q]; ok {
				gr.AddEdgeUnchecked(i, j)
			}
		}
	}
	return gr
}

// Neighbors returns the indices of the (up to four) lattice neighbors of
// vertex i that are vertices of the grid graph.
func (g *GridGraph) Neighbors(i int) []int {
	p := g.points[i]
	var out []int
	for _, q := range []Point{{p.X - 1, p.Y}, {p.X + 1, p.Y}, {p.X, p.Y - 1}, {p.X, p.Y + 1}} {
		if j, ok := g.index[q]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Bounds returns the inclusive bounding rectangle of the vertex set.
func (g *GridGraph) Bounds() (minX, minY, maxX, maxY int) {
	if g.N() == 0 {
		return 0, 0, -1, -1
	}
	minX, maxX = g.points[0].X, g.points[0].X
	minY, maxY = g.points[0].Y, g.points[0].Y
	for _, p := range g.points {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return
}

// CornerVertex returns the vertex u selected by Lemma 4.1: the vertex with
// minimum x-coordinate, and among those, minimum y-coordinate. It panics
// on an empty graph.
func (g *GridGraph) CornerVertex() int {
	if g.N() == 0 {
		panic("graphx: corner vertex of empty grid graph")
	}
	best := 0
	for i, p := range g.points {
		bp := g.points[best]
		if p.X < bp.X || (p.X == bp.X && p.Y < bp.Y) {
			best = i
		}
	}
	return best
}
