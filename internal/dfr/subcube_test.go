package dfr

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/topology"
)

// TestSubcubeTreeStructure checks the nCUBE-2 subcube multicast: the tree
// spans exactly the subcube, traffic-optimally (2^|mask| - 1 channels),
// with every destination at its shortest distance.
func TestSubcubeTreeStructure(t *testing.T) {
	h := topology.NewHypercube(5)
	src := topology.NodeID(0b10110)
	mask := topology.NodeID(0b01101) // 3 free dimensions: 8-node subcube
	tr := SubcubeTree(h, src, mask)
	if len(tr.Dests) != 7 {
		t.Fatalf("subcube has %d destinations, want 7", len(tr.Dests))
	}
	if tr.Traffic() != 7 {
		t.Errorf("traffic %d, want 7 (spanning tree of the subcube)", tr.Traffic())
	}
	k := core.MustMulticastSet(h, src, tr.Dests)
	if err := tr.Validate(h, k); err != nil {
		t.Fatal(err)
	}
	depths := tr.Depths()
	for _, d := range tr.Dests {
		if d&^mask != src&^mask {
			t.Errorf("destination %05b outside the subcube", d)
		}
		if depths[d] != h.Distance(src, d) {
			t.Errorf("destination %05b at depth %d, distance %d", d, depths[d], h.Distance(src, d))
		}
	}
}

// TestSubcubeTreeFullMaskIsBroadcast checks that the full mask reproduces
// the broadcast tree.
func TestSubcubeTreeFullMaskIsBroadcast(t *testing.T) {
	h := topology.NewHypercube(4)
	sub := SubcubeTree(h, 5, topology.NodeID(h.Nodes()-1))
	bc := ECubeBroadcastTree(h, 5)
	if sub.Traffic() != bc.Traffic() || len(sub.Dests) != len(bc.Dests) {
		t.Errorf("full-mask subcube differs from broadcast: %d/%d vs %d/%d",
			sub.Traffic(), len(sub.Dests), bc.Traffic(), len(bc.Dests))
	}
}

// TestSubcubeTreesDeadlock shows the Section 6.1 problem persists for
// subcube multicast: two overlapping subcube multicasts from adjacent
// roots form a dependency cycle under lock-step semantics.
func TestSubcubeTreesDeadlock(t *testing.T) {
	h := topology.NewHypercube(3)
	rec := NewDependencyRecorder()
	rec.AddTree(SubcubeTree(h, 0b000, 0b111))
	rec.AddTree(SubcubeTree(h, 0b001, 0b111))
	if rec.FindCycle() == nil {
		t.Error("expected a dependency cycle between overlapping subcube multicasts")
	}
	// Disjoint subcubes cannot interfere.
	solo := NewDependencyRecorder()
	solo.AddTree(SubcubeTree(h, 0b000, 0b011)) // lower face
	solo.AddTree(SubcubeTree(h, 0b100, 0b011)) // upper face
	if cyc := solo.FindCycle(); cyc != nil {
		t.Errorf("disjoint subcubes should not cycle, got %v", cyc)
	}
}

func TestSubcubeTreeMaskValidation(t *testing.T) {
	h := topology.NewHypercube(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for oversized mask")
		}
	}()
	SubcubeTree(h, 0, 0b11111)
}
