package experiments

// SimThroughput measures raw simulator-core speed: one dual-path run on
// an 8x8 mesh under the Fig. 7.11 high-load workload (300 us
// inter-arrival, 10 average destinations), capped at maxCycles. It
// returns the simulated cycle count and the wall-clock seconds spent,
// from which callers derive cycles/sec. Used by `mcfigures -bench` and
// BenchmarkWormsimCyclesPerSec so both report the same workload. The
// sharded-engine variant of the same workload is SimThroughputSharded.
func SimThroughput(seed uint64, maxCycles int64) (cycles int64, secs float64) {
	return SimThroughputSharded(seed, maxCycles, 0)
}
