package graphx

import "fmt"

// Digraph is a simple directed graph over vertices 0..N-1, used to model
// channel dependency graphs (Section 2.3.4): vertices are channels and an
// edge (c_i, c_j) means the routing function can forward a message holding
// c_i onto c_j. A routing algorithm is deadlock-free iff this graph is
// acyclic (Dally & Seitz, cited as [44]).
type Digraph struct {
	adj  [][]int
	seen []map[int]bool
}

// NewDigraph returns an empty directed graph with n vertices.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic("graphx: negative vertex count")
	}
	return &Digraph{adj: make([][]int, n), seen: make([]map[int]bool, n)}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return len(g.adj) }

// AddEdge inserts the directed edge (u, v); duplicates are ignored so that
// dependency enumeration can blindly add every observed pair.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if g.seen[u] == nil {
		g.seen[u] = make(map[int]bool)
	}
	if g.seen[u][v] {
		return
	}
	g.seen[u][v] = true
	g.adj[u] = append(g.adj[u], v)
}

// Edges returns the number of directed edges.
func (g *Digraph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total
}

// Successors returns the out-neighbors of v (owned by the graph).
func (g *Digraph) Successors(v int) []int {
	g.check(v)
	return g.adj[v]
}

func (g *Digraph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graphx: vertex %d out of range [0,%d)", v, len(g.adj)))
	}
}

// FindCycle returns one directed cycle as a vertex sequence (first vertex
// repeated at the end), or nil if the graph is acyclic. It is the checker
// behind every deadlock-freedom assertion in package dfr.
func (g *Digraph) FindCycle() []int {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS stack
		black = 2 // finished
	)
	color := make([]int, g.N())
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}

	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range g.adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Back edge u -> v closes a cycle v ... u v. Walk
				// parents from u back to v, then reverse that
				// segment into forward order.
				var rev []int
				for w := u; w != v; w = parent[w] {
					rev = append(rev, w)
				}
				cycle = append(cycle, v)
				for i := len(rev) - 1; i >= 0; i-- {
					cycle = append(cycle, rev[i])
				}
				cycle = append(cycle, v)
				return true
			}
		}
		color[u] = black
		return false
	}

	for v := 0; v < g.N(); v++ {
		if color[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// Acyclic reports whether the graph has no directed cycle.
func (g *Digraph) Acyclic() bool { return g.FindCycle() == nil }

// TopoOrder returns a topological order of the vertices, or nil when the
// graph has a cycle.
func (g *Digraph) TopoOrder() []int {
	indeg := make([]int, g.N())
	for _, a := range g.adj {
		for _, v := range a {
			indeg[v]++
		}
	}
	var queue, order []int
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != g.N() {
		return nil
	}
	return order
}
