package topology

import "fmt"

// Mesh3D is the non-wraparound three-dimensional mesh mentioned in
// Sections 2.1.3 and 4.3 (MIT J-machine, Caltech MOSAIC). Node (x, y, z)
// has NodeID (z*Height + y)*Width + x.
type Mesh3D struct {
	Width  int // x dimension
	Height int // y dimension
	Depth  int // z dimension
}

// NewMesh3D returns a Width x Height x Depth mesh. It panics when a
// dimension is not positive.
func NewMesh3D(width, height, depth int) *Mesh3D {
	if width <= 0 || height <= 0 || depth <= 0 {
		panic(fmt.Sprintf("topology: invalid 3D mesh dimensions %dx%dx%d", width, height, depth))
	}
	return &Mesh3D{Width: width, Height: height, Depth: depth}
}

// Name implements Topology.
func (m *Mesh3D) Name() string {
	return fmt.Sprintf("%dx%dx%d mesh", m.Width, m.Height, m.Depth)
}

// Nodes implements Topology.
func (m *Mesh3D) Nodes() int { return m.Width * m.Height * m.Depth }

// MaxDegree implements Topology.
func (m *Mesh3D) MaxDegree() int {
	d := 0
	for _, n := range []int{m.Width, m.Height, m.Depth} {
		if n > 1 {
			d += 2
		}
	}
	if d == 0 {
		d = 1
	}
	return d
}

// ID converts (x, y, z) coordinates to a NodeID.
func (m *Mesh3D) ID(x, y, z int) NodeID {
	if x < 0 || x >= m.Width || y < 0 || y >= m.Height || z < 0 || z >= m.Depth {
		panic(fmt.Sprintf("topology: coordinates (%d,%d,%d) out of range for %s", x, y, z, m.Name()))
	}
	return NodeID((z*m.Height+y)*m.Width + x)
}

// XYZ converts a NodeID to (x, y, z) coordinates.
func (m *Mesh3D) XYZ(v NodeID) (x, y, z int) {
	checkNode(v, m.Nodes(), m)
	x = int(v) % m.Width
	y = (int(v) / m.Width) % m.Height
	z = int(v) / (m.Width * m.Height)
	return
}

// Neighbors implements Topology.
func (m *Mesh3D) Neighbors(v NodeID, buf []NodeID) []NodeID {
	x, y, z := m.XYZ(v)
	if x > 0 {
		buf = append(buf, v-1)
	}
	if x < m.Width-1 {
		buf = append(buf, v+1)
	}
	if y > 0 {
		buf = append(buf, v-NodeID(m.Width))
	}
	if y < m.Height-1 {
		buf = append(buf, v+NodeID(m.Width))
	}
	plane := NodeID(m.Width * m.Height)
	if z > 0 {
		buf = append(buf, v-plane)
	}
	if z < m.Depth-1 {
		buf = append(buf, v+plane)
	}
	return buf
}

// Adjacent implements Topology.
func (m *Mesh3D) Adjacent(u, v NodeID) bool { return m.Distance(u, v) == 1 }

// Distance implements Topology: the L1 distance.
func (m *Mesh3D) Distance(u, v NodeID) int {
	ux, uy, uz := m.XYZ(u)
	vx, vy, vz := m.XYZ(v)
	return abs(ux-vx) + abs(uy-vy) + abs(uz-vz)
}

// Diameter implements Topology.
func (m *Mesh3D) Diameter() int { return m.Width + m.Height + m.Depth - 3 }

// NearestOnShortestPaths implements ShortestRegion by per-axis clamping,
// the 3D extension of the 2D mesh rule of Section 5.2.
func (m *Mesh3D) NearestOnShortestPaths(s, t, u NodeID) NodeID {
	sx, sy, sz := m.XYZ(s)
	tx, ty, tz := m.XYZ(t)
	ux, uy, uz := m.XYZ(u)
	return m.ID(
		clamp(ux, min(sx, tx), max(sx, tx)),
		clamp(uy, min(sy, ty), max(sy, ty)),
		clamp(uz, min(sz, tz), max(sz, tz)),
	)
}
