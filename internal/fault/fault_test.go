package fault

import (
	"errors"
	"reflect"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// TestPlanDeterministic checks plan generation is a pure function of
// (topology, spec) and actually responds to the seed.
func TestPlanDeterministic(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	spec := Spec{Links: 5, Nodes: 2, VCs: 3, Horizon: 10_000, Seed: 42}
	a := NewPlan(m, spec)
	b := NewPlan(m, spec)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("equal specs produced different plans:\n%v\n%v", a.Events(), b.Events())
	}
	spec.Seed = 43
	c := NewPlan(m, spec)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatalf("different seeds produced identical plans")
	}
	if got := len(a.Events()); got != 10 {
		t.Fatalf("event count: got %d, want 10", got)
	}
	// Events sorted by cycle; epochs ascending and distinct.
	ep := a.Epochs()
	for i := 1; i < len(ep); i++ {
		if ep[i] <= ep[i-1] {
			t.Fatalf("epochs not strictly ascending: %v", ep)
		}
	}
}

// TestPlanCapsAtHardware checks fault counts are capped by the hardware
// present.
func TestPlanCapsAtHardware(t *testing.T) {
	m := topology.NewMesh2D(2, 2) // 4 links
	p := NewPlan(m, Spec{Links: 100, Nodes: 100, Seed: 1})
	links, nodes := 0, 0
	for _, e := range p.Events() {
		switch e.Kind {
		case LinkFault:
			links++
		case NodeFault:
			nodes++
		}
	}
	if links != 4 || nodes != 4 {
		t.Fatalf("got %d links, %d nodes; want 4, 4", links, nodes)
	}
}

// TestMaskSemantics checks the three fault kinds map to the right
// channel-liveness answers.
func TestMaskSemantics(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	mask := NewMask(m)
	if !mask.Empty() {
		t.Fatalf("fresh mask not empty")
	}
	mask.Apply(Event{Kind: LinkFault, A: 1, B: 2})
	mask.Apply(Event{Kind: NodeFault, A: 5})
	mask.Apply(Event{Kind: VCFault, A: 8, B: 9, Class: 1})
	if mask.Empty() {
		t.Fatalf("mask with events reports empty")
	}
	// Link fault: both directions, every class.
	for _, c := range []dfr.Channel{{From: 1, To: 2}, {From: 2, To: 1}, {From: 1, To: 2, Class: 3}} {
		if !mask.ChannelDead(c) {
			t.Fatalf("link-fault channel %v alive", c)
		}
	}
	// Node fault: every incident channel.
	if !mask.ChannelDead(dfr.Channel{From: 5, To: 6}) || !mask.ChannelDead(dfr.Channel{From: 4, To: 5}) {
		t.Fatalf("node-fault incident channel alive")
	}
	// VC fault: only the one copy and direction.
	if !mask.ChannelDead(dfr.Channel{From: 8, To: 9, Class: 1}) {
		t.Fatalf("vc-fault channel alive")
	}
	for _, c := range []dfr.Channel{{From: 8, To: 9, Class: 0}, {From: 9, To: 8, Class: 1}} {
		if mask.ChannelDead(c) {
			t.Fatalf("vc fault killed unrelated copy %v", c)
		}
	}
	// Masked topology: link and node faults visible, VC faults not.
	mt := mask.MaskTopology()
	if mt.Adjacent(1, 2) || mt.Adjacent(5, 6) {
		t.Fatalf("masked topology kept dead hardware")
	}
	if !mt.Adjacent(8, 9) {
		t.Fatalf("vc fault removed the physical link")
	}
}

// mustSet builds a multicast set over t.
func mustSet(t *testing.T, topo topology.Topology, src topology.NodeID, dests []topology.NodeID) core.MulticastSet {
	t.Helper()
	k, err := core.NewMulticastSet(topo, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestHealthyMaskIdentity checks that a degraded router over an empty
// mask produces byte-identical plans to the plain registry scheme.
func TestHealthyMaskIdentity(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	st, err := routing.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	k := mustSet(t, m, 27, []topology.NodeID{0, 5, 14, 40, 63})
	for _, name := range routing.Names() {
		plain, err := routing.New(name, st)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := NewRouter(name, st, NewMask(m))
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := dr.PlanDegraded(k)
		if err != nil {
			t.Fatalf("%s: healthy plan errored: %v", name, err)
		}
		if stats.Degraded() {
			t.Fatalf("%s: healthy plan marked degraded: %+v", name, stats)
		}
		if !reflect.DeepEqual(got, plain.PlanSet(k)) {
			t.Fatalf("%s: healthy degraded plan differs from plain plan", name)
		}
		if dr.ID() != plain.ID() {
			t.Fatalf("%s: healthy degraded ID %q differs from plain %q", name, dr.ID(), plain.ID())
		}
	}
}

// TestDegradedRoutesAroundLinkFaults kills links on the dual-path route
// and checks every scheme still delivers everything.
func TestDegradedRoutesAroundLinkFaults(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	st, err := routing.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	mask := NewMask(m)
	mask.Apply(Event{Kind: LinkFault, A: 5, B: 6})
	mask.Apply(Event{Kind: LinkFault, A: 9, B: 10})
	k := mustSet(t, m, 5, []topology.NodeID{0, 6, 10, 15})
	masked := mask.MaskTopology()
	for _, name := range routing.Names() {
		dr, err := NewRouter(name, st, mask)
		if err != nil {
			t.Fatal(err)
		}
		plan, _, err := dr.PlanDegraded(k)
		if err != nil {
			t.Fatalf("%s: %v (mesh still connected)", name, err)
		}
		if err := plan.Validate(masked, k); err != nil {
			t.Fatalf("%s: degraded plan invalid: %v", name, err)
		}
		forEachChannel(plan, func(c dfr.Channel) {
			if mask.ChannelDead(c) {
				t.Fatalf("%s: plan uses dead channel %v", name, c)
			}
		})
	}
}

// TestPartitionError cuts off a corner node and checks the typed error
// plus a valid plan for the surviving destinations.
func TestPartitionError(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	st, err := routing.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	mask := NewMask(m)
	// Node 15 is the corner (3,3): links to 14 and 11.
	mask.Apply(Event{Kind: LinkFault, A: 14, B: 15})
	mask.Apply(Event{Kind: LinkFault, A: 11, B: 15})
	k := mustSet(t, m, 0, []topology.NodeID{3, 12, 15})
	for _, name := range routing.Names() {
		dr, err := NewRouter(name, st, mask)
		if err != nil {
			t.Fatal(err)
		}
		plan, stats, err := dr.PlanDegraded(k)
		if !errors.Is(err, ErrPartitioned) {
			t.Fatalf("%s: want ErrPartitioned, got %v", name, err)
		}
		var pe *PartitionError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: error is not a *PartitionError: %v", name, err)
		}
		if len(pe.Unreachable) != 1 || pe.Unreachable[0] != 15 {
			t.Fatalf("%s: unreachable = %v, want [15]", name, pe.Unreachable)
		}
		if stats.Unreachable != 1 {
			t.Fatalf("%s: stats.Unreachable = %d", name, stats.Unreachable)
		}
		live := mustSet(t, m, 0, []topology.NodeID{3, 12})
		if err := plan.Validate(mask.MaskTopology(), live); err != nil {
			t.Fatalf("%s: surviving plan invalid: %v", name, err)
		}
	}
}

// TestSourceDead checks a dead source yields a full partition error and
// an empty plan.
func TestSourceDead(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	st, err := routing.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	mask := NewMask(m)
	mask.Apply(Event{Kind: NodeFault, A: 5})
	dr, err := NewRouter("dual-path", st, mask)
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := dr.PlanDegraded(mustSet(t, m, 5, []topology.NodeID{1, 2}))
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned for dead source, got %v", err)
	}
	if plan.Messages() != 0 || stats.Unreachable != 2 {
		t.Fatalf("dead source produced a plan: %+v stats %+v", plan, stats)
	}
}

// TestVCFaultAvoided checks a virtual-channel fault reroutes that copy
// without touching the physical graph.
func TestVCFaultAvoided(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	st, err := routing.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	k := mustSet(t, m, 0, []topology.NodeID{3})
	// Find a class-0 channel the healthy dual-path plan uses and kill it.
	plain, _ := routing.New("dual-path", st)
	healthy := plain.PlanSet(k)
	ch := healthy.Paths[0].Channels()[0]
	mask := NewMask(m)
	mask.Apply(Event{Kind: VCFault, A: ch.From, B: ch.To, Class: ch.Class})
	dr, err := NewRouter("dual-path", st, mask)
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := dr.PlanDegraded(k)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded() {
		t.Fatalf("vc fault on the route did not degrade the plan")
	}
	forEachChannel(plan, func(c dfr.Channel) {
		if mask.ChannelDead(c) {
			t.Fatalf("plan uses dead channel copy %v", c)
		}
	})
	if err := plan.Validate(m, k); err != nil {
		t.Fatalf("plan invalid over the (physically intact) mesh: %v", err)
	}
}

// forEachChannel visits every channel of a plan with per-hop classes
// resolved.
func forEachChannel(p routing.Plan, fn func(dfr.Channel)) {
	for _, pr := range p.Paths {
		for i := 1; i < len(pr.Nodes); i++ {
			fn(dfr.Channel{From: pr.Nodes[i-1], To: pr.Nodes[i], Class: pr.HopClass(i - 1)})
		}
	}
	for _, tr := range p.Trees {
		for _, e := range tr.Edges {
			fn(e)
		}
	}
}
