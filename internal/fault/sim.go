package fault

import (
	"errors"
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/wormsim"
)

// TimedDelta is one epoch boundary of a delta stream: the batch of
// events to absorb when the simulation clock reaches Cycle.
type TimedDelta struct {
	Cycle int64
	Delta Delta
}

// PlanDeltas lowers a timed fault plan into its delta stream: events are
// grouped by activation cycle, one fail-only delta per epoch boundary.
// It is the canonical input for SimSchedule.
func PlanDeltas(fp *Plan) []TimedDelta {
	var out []TimedDelta
	for _, e := range fp.Events() {
		if len(out) == 0 || out[len(out)-1].Cycle != e.Cycle {
			out = append(out, TimedDelta{Cycle: e.Cycle})
		}
		last := &out[len(out)-1]
		last.Delta.Fail = append(last.Delta.Fail, e)
	}
	return out
}

// SimSchedule lowers a fail-only timed delta stream onto wormsim's
// mid-run fault activation, routed through ONE live router: each
// scheduled epoch kills the delta's channels inside the engine, and the
// re-plan closure advances lr by the same delta — in O(|delta|), never a
// rebuild — before planning the still-pending traffic. Deltas apply
// lazily as the driver activates epochs, so lr must start at the stream's
// beginning and must not be advanced elsewhere during the run.
//
// Repair deltas are rejected: the wormhole engine's faults are permanent
// (FailWhere has no inverse), matching the paper's static-fault model.
// Use LiveRouter.ApplyDelta directly for repair churn outside the
// simulator.
func SimSchedule(lr *LiveRouter, deltas []TimedDelta) ([]wormsim.ScheduledFault, error) {
	for i, td := range deltas {
		if len(td.Delta.Repair) > 0 {
			return nil, fmt.Errorf("fault: SimSchedule delta %d at cycle %d carries %d repair events; the simulator cannot resurrect channels",
				i, td.Cycle, len(td.Delta.Repair))
		}
		if i > 0 && td.Cycle < deltas[i-1].Cycle {
			return nil, fmt.Errorf("fault: SimSchedule deltas out of order at %d (cycle %d after %d)",
				i, td.Cycle, deltas[i-1].Cycle)
		}
	}
	// The driver activates epochs in order but only calls the CURRENT
	// route closure; a shared cursor lets each closure fold in every
	// delta up to its own epoch, so zero-traffic epochs are never lost.
	applied := 0
	out := make([]wormsim.ScheduledFault, 0, len(deltas))
	for i, td := range deltas {
		i, td := i, td
		out = append(out, wormsim.ScheduledFault{
			Cycle: td.Cycle,
			Dead:  deadPredicate(td.Delta.Fail),
			Route: func(k core.MulticastSet) wormsim.Injection {
				for applied <= i {
					lr.ApplyDelta(deltas[applied].Delta)
					applied++
				}
				return liveInjection(lr, k)
			},
		})
	}
	return out, nil
}

// SimInitialRoute is the epoch-0 route for a wormsim Config driven by
// SimSchedule: it plans through the same live router at its starting
// epoch (before any scheduled delta fires).
func SimInitialRoute(lr *LiveRouter) wormsim.RouteFunc {
	return func(k core.MulticastSet) wormsim.Injection {
		return liveInjection(lr, k)
	}
}

// liveInjection plans k over the router's current epoch and lowers the
// plan for the engine. Severed destinations are simply not injected —
// the caller's delivery accounting reports them undelivered; any other
// planning error injects nothing.
func liveInjection(lr *LiveRouter, k core.MulticastSet) wormsim.Injection {
	if lr.Mask().NodeDead(k.Source) {
		return wormsim.Injection{}
	}
	plan, _, err := lr.PlanDegraded(k)
	if err != nil && !errors.Is(err, ErrPartitioned) {
		return wormsim.Injection{}
	}
	return wormsim.Injection{Paths: plan.Paths, Trees: plan.Trees}
}

// deadPredicate ORs the fail events' channel matches.
func deadPredicate(fails []Event) func(dfr.Channel) bool {
	if len(fails) == 0 {
		return nil
	}
	return func(c dfr.Channel) bool {
		for _, e := range fails {
			if e.Matches(c) {
				return true
			}
		}
		return false
	}
}
