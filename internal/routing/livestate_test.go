package routing

import (
	"reflect"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// TestLiveStatePlanEquivalence churns a LiveState through a seeded
// fault/repair stream and, at every epoch, requires each registry scheme
// to plan identically over the live state and over a full
// NewStateWithLabeling(NewMasked(...)) rebuild with the same dead sets.
// This is the routing-layer half of the churn-equivalence guarantee (the
// fault package pins the degraded-router half).
func TestLiveStatePlanEquivalence(t *testing.T) {
	topos := []topology.Topology{topology.NewMesh2D(5, 4), topology.NewHypercube(4)}
	for _, base := range topos {
		base := base
		t.Run(base.Name(), func(t *testing.T) {
			t.Parallel()
			healthy, err := NewState(base)
			if err != nil {
				t.Fatal(err)
			}
			ls := NewLiveState(healthy)
			if ls.Baseline() != healthy || ls.Epoch() != 0 {
				t.Fatal("fresh live state is not at epoch 0 over its baseline")
			}

			links := enumerateLinksTest(base)
			rng := stats.NewRand(0xD317A)
			deadLinks := make(map[topology.Link]bool)
			var schemes []string
			for _, name := range Names() {
				// Tree schemes require a healthy mesh shape only; they
				// plan over s.topo like the rest, so include everything
				// the topology supports.
				if _, buildErr := New(name, healthy); buildErr == nil {
					schemes = append(schemes, name)
				}
			}
			if len(schemes) == 0 {
				t.Fatal("no schemes build on the healthy state")
			}

			for step := 0; step < 12; step++ {
				var d topology.GraphDelta
				if rng.Intn(3) != 0 || len(deadLinks) == 0 {
					l := links[rng.Intn(len(links))]
					if !deadLinks[l] {
						d.FailLinks = append(d.FailLinks, l)
						deadLinks[l] = true
					}
				} else {
					for l := range deadLinks {
						d.RepairLinks = append(d.RepairLinks, l)
						delete(deadLinks, l)
						break
					}
				}
				ls.Apply(d)

				var dl []topology.Link
				for l := range deadLinks {
					dl = append(dl, l)
				}
				rebuilt := NewStateWithLabeling(topology.NewMasked(base, nil, dl), healthy.Labeling())

				k := randomSet(base, rng, 4)
				// Keep the set plannable: skip sets whose members got cut
				// off (schemes assume reachability; the fault layer owns
				// severed traffic).
				reachable := true
				for _, dst := range k.Dests {
					if !ls.Live().Reachable(k.Source, dst) {
						reachable = false
						break
					}
				}
				if !reachable {
					continue
				}
				for _, name := range schemes {
					liveR, err := New(name, ls.State())
					if err != nil {
						t.Fatalf("step %d: %s over live state: %v", step, name, err)
					}
					fullR, err := New(name, rebuilt)
					if err != nil {
						t.Fatalf("step %d: %s over rebuilt state: %v", step, name, err)
					}
					pl, okLive := planOrPanic(liveR, k)
					pf, okFull := planOrPanic(fullR, k)
					if okLive != okFull {
						t.Fatalf("step %d (epoch %d): scheme %s panic status diverged (live ok=%v, full ok=%v)",
							step, ls.Epoch(), name, okLive, okFull)
					}
					if okLive && !reflect.DeepEqual(pl, pf) {
						t.Fatalf("step %d (epoch %d): scheme %s diverged from full rebuild\nlive: %+v\nfull: %+v",
							step, ls.Epoch(), name, pl, pf)
					}
				}
			}
		})
	}
}

// TestLiveStateRouterSurvivesEpochs: a router built once over the live
// state must observe deltas applied after its construction.
func TestLiveStateRouterSurvivesEpochs(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	healthy, err := NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLiveState(healthy)
	r, err := New("dual-path", ls.State())
	if err != nil {
		t.Fatal(err)
	}
	k := core.MustMulticastSet(m, 0, []topology.NodeID{35})
	before := r.PlanSet(k)

	// Cut a link on the healthy route; the same router must now detour.
	var cut topology.Link
	found := false
	for _, p := range before.Paths {
		if len(p.Nodes) >= 2 {
			cut = topology.NormLink(p.Nodes[0], p.Nodes[1])
			found = true
			break
		}
	}
	if !found {
		t.Fatal("healthy plan has no path edges to cut")
	}
	ls.Apply(topology.GraphDelta{FailLinks: []topology.Link{cut}})
	after := r.PlanSet(k)
	for _, p := range after.Paths {
		for i := 1; i < len(p.Nodes); i++ {
			if topology.NormLink(p.Nodes[i-1], p.Nodes[i]) == cut {
				t.Fatalf("router built before the delta still routes over the dead link %v", cut)
			}
		}
	}
	// Repair restores the original plan exactly.
	ls.Apply(topology.GraphDelta{RepairLinks: []topology.Link{cut}})
	if !reflect.DeepEqual(r.PlanSet(k), before) {
		t.Fatal("plan after fail+repair differs from the healthy plan")
	}
}

// planOrPanic plans k, converting a panic (some schemes reject faulted
// topologies that violate their healthy-path preconditions) into ok=false.
// Equivalence then requires the live and rebuilt states to agree on
// whether the scheme panics, and on the plan when it does not.
func planOrPanic(r Router, k core.MulticastSet) (p Plan, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return r.PlanSet(k), true
}

// enumerateLinksTest lists undirected links in canonical order.
func enumerateLinksTest(tp topology.Topology) []topology.Link {
	var links []topology.Link
	var buf []topology.NodeID
	for v := 0; v < tp.Nodes(); v++ {
		buf = tp.Neighbors(topology.NodeID(v), buf[:0])
		for _, w := range buf {
			if topology.NodeID(v) < w {
				links = append(links, topology.Link{U: topology.NodeID(v), V: w})
			}
		}
	}
	return links
}

// TestPlanCacheTargetedInvalidation: a delta evicts exactly the entries
// whose plans traverse a dead channel; repairs evict nothing.
func TestPlanCacheTargetedInvalidation(t *testing.T) {
	r, _, m := testRouter(t, "dual-path")
	c := NewPlanCache(256)
	cr := Cached(r, c)

	k1 := core.MustMulticastSet(m, 0, []topology.NodeID{1})   // hugs the top-left corner
	k2 := core.MustMulticastSet(m, 30, []topology.NodeID{35}) // far corner, disjoint
	p1 := cr.PlanSet(k1)
	cr.PlanSet(k2)
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}

	// Kill a directed pair on p1's route: only k1's entry goes.
	var pairs []uint64
	for _, p := range p1.Paths {
		if len(p.Nodes) >= 2 {
			pairs = append(pairs,
				ChannelPair(p.Nodes[0], p.Nodes[1]),
				ChannelPair(p.Nodes[1], p.Nodes[0]))
			break
		}
	}
	if len(pairs) == 0 {
		t.Fatal("plan for k1 has no path edges")
	}
	if n := c.Invalidate(pairs); n != 1 {
		t.Fatalf("Invalidate evicted %d entries, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len() after targeted invalidation = %d, want 1", c.Len())
	}
	if _, ok := c.GetPlan(r.ID(), k2); !ok {
		t.Fatal("unaffected entry was evicted")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}

	// An irrelevant channel evicts nothing.
	if n := c.Invalidate([]uint64{ChannelPair(2, 8)}); n != 0 {
		t.Fatalf("irrelevant channel evicted %d entries", n)
	}

	// Nuke-everything baseline.
	cr.PlanSet(k1)
	if n := c.InvalidateAll(); n != 2 {
		t.Fatalf("InvalidateAll evicted %d, want 2", n)
	}
	if c.Len() != 0 {
		t.Fatalf("Len() after InvalidateAll = %d", c.Len())
	}
}

// TestPlanCacheEvictionCounter: FIFO capacity evictions are counted and
// the FIFO survives interleaved invalidations without double-frees.
func TestPlanCacheEvictionCounter(t *testing.T) {
	r, _, m := testRouter(t, "dual-path")
	c := NewPlanCache(32)
	cr := Cached(r, c)
	rng := stats.NewRand(7)
	for i := 0; i < 400; i++ {
		cr.PlanSet(randomSet(m, rng, 1+rng.Intn(6)))
		if i%37 == 0 {
			c.Invalidate([]uint64{ChannelPair(topology.NodeID(rng.Intn(36)), topology.NodeID(rng.Intn(36)))})
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("overfull cache recorded no FIFO evictions")
	}
	if c.Len() > 32 {
		t.Fatalf("cache grew to %d entries past capacity", c.Len())
	}
}
