package dfr_test

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// ExampleDualPath reproduces the Fig. 6.13 routing: two label-monotone
// paths through the high- and low-channel networks.
func ExampleDualPath() {
	m := topology.NewMesh2D(6, 6)
	l := labeling.NewMeshBoustrophedon(m)
	k := core.MustMulticastSet(m, m.ID(3, 2), []topology.NodeID{
		m.ID(0, 0), m.ID(0, 2), m.ID(0, 5), m.ID(1, 3), m.ID(4, 5),
		m.ID(5, 0), m.ID(5, 1), m.ID(5, 3), m.ID(5, 4)})
	s := dfr.DualPath(m, l, k)
	fmt.Printf("high path: %d channels, low path: %d channels\n",
		len(s.Paths[0].Nodes)-1, len(s.Paths[1].Nodes)-1)
	// Output: high path: 18 channels, low path: 15 channels
}

// ExampleDependencyRecorder shows deadlock detection on the Fig. 6.1
// configuration: two lock-step broadcast trees with a channel dependency
// cycle.
func ExampleDependencyRecorder() {
	h := topology.NewHypercube(3)
	rec := dfr.NewDependencyRecorder()
	rec.AddTree(dfr.ECubeBroadcastTree(h, 0b000))
	rec.AddTree(dfr.ECubeBroadcastTree(h, 0b001))
	fmt.Println("deadlock:", rec.FindCycle() != nil)

	safe := dfr.NewDependencyRecorder()
	m := topology.NewMesh2D(4, 4)
	l := labeling.NewMeshBoustrophedon(m)
	for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
		var dests []topology.NodeID
		for v := topology.NodeID(0); int(v) < m.Nodes(); v++ {
			if v != src {
				dests = append(dests, v)
			}
		}
		safe.AddStar(dfr.DualPath(m, l, core.MustMulticastSet(m, src, dests)))
	}
	fmt.Println("dual-path deadlock:", safe.FindCycle() != nil)
	// Output:
	// deadlock: true
	// dual-path deadlock: false
}
