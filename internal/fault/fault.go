// Package fault is the fault-injection subsystem: deterministic, seeded
// fault plans (link, node, and virtual-channel failures with activation
// times), cumulative fault masks over a topology, and a degraded-mode
// router that keeps every registry scheme routing — and provably
// deadlock-free — around dead hardware.
//
// The fault model follows the dissertation's hardware assumptions: links
// are bidirectional physical channels, so a link fault removes both
// directed channels in every class; a node fault removes the node's
// router and hence all its incident links; a virtual-channel fault
// removes a single directed channel copy (one dfr.Channel) while the
// physical link keeps carrying its other classes.
//
// Degraded-mode routing (see Router) masks the routing.State adjacency
// with the fault mask, re-runs the original scheme over the masked
// graph, falls back through the path-based schemes, and as a last resort
// repairs plans with label-monotone escape segments on escalating
// channel classes. Every produced plan keeps the channel dependency
// graph acyclic (re-verifiable via internal/dfr); destinations severed
// from the source are reported with a typed partition error
// (ErrPartitioned) rather than routed through dead hardware.
package fault

import (
	"encoding/binary"
	"fmt"
	"sort"

	"multicastnet/internal/dfr"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// Kind is the fault category of an Event.
type Kind int

// The three fault categories of the model.
const (
	// LinkFault kills one undirected link: both directions, all classes.
	LinkFault Kind = iota
	// NodeFault kills one node and every link incident to it.
	NodeFault
	// VCFault kills one directed virtual-channel copy (a single
	// dfr.Channel); other classes of the same link stay alive.
	VCFault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LinkFault:
		return "link"
	case NodeFault:
		return "node"
	case VCFault:
		return "vc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timed hardware failure. The fault activates at the start
// of simulation cycle Cycle; within a static Plan it is permanent, while
// the delta path (Delta, Mask.Unapply) models repair as the exact
// reversal of an active event.
type Event struct {
	Kind  Kind
	Cycle int64
	// A, B are the endpoints: the link (A, B) for LinkFault, the node A
	// for NodeFault (B unused), the directed channel A -> B for VCFault.
	A, B topology.NodeID
	// Class is the failed channel copy of a VCFault.
	Class int
}

// Matches reports whether the event's failure covers the directed
// channel c — the per-event form of Mask.ChannelDead, used to fail
// channels in a running simulation as each event activates.
func (e Event) Matches(c dfr.Channel) bool {
	switch e.Kind {
	case LinkFault:
		return (c.From == e.A && c.To == e.B) || (c.From == e.B && c.To == e.A)
	case NodeFault:
		return c.From == e.A || c.To == e.A
	case VCFault:
		return c.From == e.A && c.To == e.B && c.Class == e.Class
	default:
		return false
	}
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case LinkFault:
		return fmt.Sprintf("@%d link(%d,%d)", e.Cycle, e.A, e.B)
	case NodeFault:
		return fmt.Sprintf("@%d node(%d)", e.Cycle, e.A)
	default:
		return fmt.Sprintf("@%d vc[%d,%d]#%d", e.Cycle, e.A, e.B, e.Class)
	}
}

// Spec parameterizes a seeded fault plan.
type Spec struct {
	// Links, Nodes, VCs are the counts of each fault kind to draw
	// (capped by the hardware actually present).
	Links, Nodes, VCs int
	// MaxClass bounds the channel classes VC faults target: classes are
	// drawn from [0, MaxClass). Zero selects 2, the double-channel case.
	MaxClass int
	// Horizon spreads activation cycles uniformly over [0, Horizon);
	// zero activates every fault at cycle 0 (a static fault scenario).
	Horizon int64
	// Seed makes the plan reproducible.
	Seed uint64
}

// Plan is a deterministic, seeded schedule of fault events over one
// topology, sorted by activation cycle. Plans are immutable and safe for
// concurrent use.
type Plan struct {
	topo   topology.Topology
	events []Event
}

// NewPlan draws a fault plan for t from spec. The draw is a pure
// function of (topology, spec): links are enumerated in canonical order
// and sampled with a SplitMix64 stream derived from the seed, so equal
// inputs give byte-identical plans on every platform.
func NewPlan(t topology.Topology, spec Spec) *Plan {
	if spec.MaxClass <= 0 {
		spec.MaxClass = 2
	}
	links := EnumerateLinks(t)
	rng := stats.NewRand(stats.DeriveSeed(spec.Seed, "fault/plan"))
	var events []Event

	nLinks := spec.Links
	if nLinks > len(links) {
		nLinks = len(links)
	}
	if nLinks > 0 {
		for _, i := range rng.Sample(len(links), nLinks) {
			events = append(events, Event{Kind: LinkFault, A: links[i].U, B: links[i].V})
		}
	}
	nNodes := spec.Nodes
	if nNodes > t.Nodes() {
		nNodes = t.Nodes()
	}
	if nNodes > 0 {
		for _, v := range rng.Sample(t.Nodes(), nNodes) {
			events = append(events, Event{Kind: NodeFault, A: topology.NodeID(v)})
		}
	}
	// VC faults target directed channel copies: 2 directions per link
	// times MaxClass classes.
	vcSpace := 2 * len(links) * spec.MaxClass
	nVCs := spec.VCs
	if nVCs > vcSpace {
		nVCs = vcSpace
	}
	if nVCs > 0 {
		for _, i := range rng.Sample(vcSpace, nVCs) {
			link := links[i/(2*spec.MaxClass)]
			rest := i % (2 * spec.MaxClass)
			a, b := link.U, link.V
			if rest%2 == 1 {
				a, b = b, a
			}
			events = append(events, Event{Kind: VCFault, A: a, B: b, Class: rest / 2})
		}
	}
	// Activation times are drawn after the membership draw, in event
	// order, so the schedule shape does not disturb which hardware fails.
	if spec.Horizon > 0 {
		for i := range events {
			events[i].Cycle = int64(rng.Float64() * float64(spec.Horizon))
		}
	}
	sortEvents(events)
	return &Plan{topo: t, events: events}
}

// NewStaticPlan wraps explicit events (all fields caller-chosen) as a
// plan; used by tests and by callers with externally computed scenarios.
func NewStaticPlan(t topology.Topology, events []Event) *Plan {
	own := append([]Event(nil), events...)
	sortEvents(own)
	return &Plan{topo: t, events: own}
}

// sortEvents orders events by (cycle, kind, endpoints, class) so epoch
// iteration is deterministic.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.Class < b.Class
	})
}

// EnumerateLinks lists the undirected links of t in canonical (low,
// high) endpoint order — the sample space of link faults.
func EnumerateLinks(t topology.Topology) []topology.Link {
	var links []topology.Link
	var buf []topology.NodeID
	for v := 0; v < t.Nodes(); v++ {
		buf = t.Neighbors(topology.NodeID(v), buf[:0])
		for _, w := range buf {
			if topology.NodeID(v) < w {
				links = append(links, topology.Link{U: topology.NodeID(v), V: w})
			}
		}
	}
	return links
}

// Topology returns the topology the plan was drawn over.
func (p *Plan) Topology() topology.Topology { return p.topo }

// Events returns the plan's events sorted by activation cycle. Callers
// must not modify the slice.
func (p *Plan) Events() []Event { return p.events }

// Epochs returns the distinct activation cycles, ascending. Each epoch
// boundary is a point where the cumulative mask — and hence degraded
// routing — changes.
func (p *Plan) Epochs() []int64 {
	var out []int64
	for _, e := range p.events {
		if len(out) == 0 || out[len(out)-1] != e.Cycle {
			out = append(out, e.Cycle)
		}
	}
	return out
}

// MaskAt returns the cumulative fault mask of every event with
// activation cycle <= cycle.
func (p *Plan) MaskAt(cycle int64) *Mask {
	m := NewMask(p.topo)
	for _, e := range p.events {
		if e.Cycle > cycle {
			break
		}
		m.Apply(e)
	}
	return m
}

// FullMask returns the mask with every event applied.
func (p *Plan) FullMask() *Mask {
	m := NewMask(p.topo)
	for _, e := range p.events {
		m.Apply(e)
	}
	return m
}

// Mask is the cumulative dead-hardware set of a fault plan at one point
// in time. A Mask is mutable while events are applied or unapplied;
// routing wrappers treat it as immutable afterwards (the live delta path
// synchronizes mutation externally via the epoch protocol).
type Mask struct {
	topo     topology.Topology
	nodeDead []bool
	linkDead map[topology.Link]bool
	vcDead   map[dfr.Channel]bool
	events   int
}

// NewMask returns the empty (healthy) mask over t.
func NewMask(t topology.Topology) *Mask {
	return &Mask{
		topo:     t,
		nodeDead: make([]bool, t.Nodes()),
		linkDead: make(map[topology.Link]bool),
		vcDead:   make(map[dfr.Channel]bool),
	}
}

// Apply adds one fault event to the mask. Re-failing already-dead
// hardware is a no-op, so the event count stays the exact number of
// active faults (Empty is reliable under fault/repair interleavings).
func (m *Mask) Apply(e Event) {
	switch e.Kind {
	case LinkFault:
		l := topology.NormLink(e.A, e.B)
		if m.linkDead[l] {
			return
		}
		m.linkDead[l] = true
	case NodeFault:
		if m.nodeDead[e.A] {
			return
		}
		m.nodeDead[e.A] = true
	case VCFault:
		c := dfr.Channel{From: e.A, To: e.B, Class: e.Class}
		if m.vcDead[c] {
			return
		}
		m.vcDead[c] = true
	default:
		panic(fmt.Sprintf("fault: unknown event kind %d", e.Kind))
	}
	m.events++
}

// Unapply removes one fault event from the mask — the repair of exactly
// that hardware. Repairing healthy hardware is a no-op. Note the model is
// per-fault-site: repairing a node restores the node, not any separately
// failed incident links.
func (m *Mask) Unapply(e Event) {
	switch e.Kind {
	case LinkFault:
		l := topology.NormLink(e.A, e.B)
		if !m.linkDead[l] {
			return
		}
		delete(m.linkDead, l)
	case NodeFault:
		if !m.nodeDead[e.A] {
			return
		}
		m.nodeDead[e.A] = false
	case VCFault:
		c := dfr.Channel{From: e.A, To: e.B, Class: e.Class}
		if !m.vcDead[c] {
			return
		}
		delete(m.vcDead, c)
	default:
		panic(fmt.Sprintf("fault: unknown event kind %d", e.Kind))
	}
	m.events--
}

// Empty reports a healthy mask (no faults currently active).
func (m *Mask) Empty() bool { return m.events == 0 }

// Events returns the number of currently active faults.
func (m *Mask) Events() int { return m.events }

// NodeDead reports whether v failed.
func (m *Mask) NodeDead(v topology.NodeID) bool { return m.nodeDead[v] }

// LinkDead reports whether the undirected link (u, v) is unusable in
// every class — failed directly or via a dead endpoint.
func (m *Mask) LinkDead(u, v topology.NodeID) bool {
	return m.nodeDead[u] || m.nodeDead[v] || m.linkDead[topology.NormLink(u, v)]
}

// VCDead reports whether the specific directed channel copy failed (VC
// faults only; use ChannelDead for the full liveness check).
func (m *Mask) VCDead(c dfr.Channel) bool { return m.vcDead[c] }

// ChannelDead reports whether the directed channel c is unusable: its
// copy failed, its link failed, or either endpoint failed.
func (m *Mask) ChannelDead(c dfr.Channel) bool {
	return m.nodeDead[c.From] || m.nodeDead[c.To] ||
		m.linkDead[topology.NormLink(c.From, c.To)] || m.vcDead[c]
}

// DeadNodes returns the failed nodes, ascending.
func (m *Mask) DeadNodes() []topology.NodeID {
	var out []topology.NodeID
	for v, dead := range m.nodeDead {
		if dead {
			out = append(out, topology.NodeID(v))
		}
	}
	return out
}

// DeadLinks returns the directly failed links in canonical order
// (dead-node-induced link loss is not materialized here; topology.Masked
// handles dead nodes separately).
func (m *Mask) DeadLinks() []topology.Link {
	out := make([]topology.Link, 0, len(m.linkDead))
	for l := range m.linkDead {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// deadSetKey encodes the physical dead sets (nodes + links, not VCs,
// which don't shape the masked graph) canonically — the memo key for
// masked-state reuse across identical masks.
func (m *Mask) deadSetKey() string {
	var b []byte
	b = append(b, 'n')
	for _, v := range m.DeadNodes() {
		b = binary.AppendUvarint(b, uint64(v))
	}
	b = append(b, 'l')
	for _, l := range m.DeadLinks() {
		b = binary.AppendUvarint(b, uint64(l.U))
		b = binary.AppendUvarint(b, uint64(l.V))
	}
	return string(b)
}

// MaskTopology returns the masked view of the mask's topology: dead
// nodes isolated, dead links removed. VC faults do not affect the
// physical graph (the link's other classes still carry flits), so they
// are excluded here and enforced per-channel by the degraded router.
func (m *Mask) MaskTopology() *topology.Masked {
	return topology.NewMasked(m.topo, m.DeadNodes(), m.DeadLinks())
}
