package wormsim

import (
	"testing"

	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// arenaWorkload precomputes a mixed path/tree injection workload on an
// 8x8 mesh so the measurement loop exercises only the simulator — no
// routing, no cache keys, no workload generation.
func arenaWorkload(t testing.TB) (*topology.Mesh2D, []routing.Plan) {
	t.Helper()
	m := topology.NewMesh2D(8, 8)
	st, err := routing.SharedState(m)
	if err != nil {
		t.Fatal(err)
	}
	var plans []routing.Plan
	for _, w := range []struct {
		scheme string
		src    topology.NodeID
		dests  []topology.NodeID
	}{
		{"dual-path", 0, []topology.NodeID{9, 18, 27, 36, 63}},
		{"tree", 5, []topology.NodeID{12, 21, 30, 39, 60}},
		{"multi-path", 63, []topology.NodeID{0, 7, 28, 56}},
		{"tree", 36, []topology.NodeID{0, 7, 56, 63}},
		{"dual-path", 28, []topology.NodeID{1, 34, 62}},
	} {
		r, err := routing.New(w.scheme, st)
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.Plan(w.src, w.dests)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	return m, plans
}

// TestSteadyStateAllocationFree pins the arena contract: once slice
// capacities, the intern table and the worm freelist have warmed up, an
// inject-and-drain round allocates nothing — worms, multicast records,
// tree levels and wake lists are all recycled.
func TestSteadyStateAllocationFree(t *testing.T) {
	m, plans := arenaWorkload(t)
	for _, shards := range []int{0, 4} {
		net := NewNetwork(m)
		if shards > 1 {
			net.SetShards(shards)
			defer net.Close()
		}
		round := func() {
			for _, p := range plans {
				net.InjectMulticast(p.Paths, p.Trees, 16)
			}
			for net.ActiveWorms() > 0 {
				net.Step()
			}
		}
		for i := 0; i < 4; i++ {
			round() // warm capacities and the freelist
		}
		if avg := testing.AllocsPerRun(20, round); avg > 0 {
			t.Errorf("shards=%d: steady-state round allocates %.1f objects, want 0", shards, avg)
		}
	}
}
