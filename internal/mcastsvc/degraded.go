package mcastsvc

import (
	"errors"
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/fault"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// RetryPolicy controls multicast retries under faults. Zero values
// select the defaults noted on each field.
type RetryPolicy struct {
	// MaxAttempts bounds delivery attempts per operation (default 3).
	MaxAttempts int
	// BackoffMicros is the fixed delay between attempts (default 50) —
	// the service-level analogue of a NACK/timeout turnaround.
	BackoffMicros float64
	// TimeoutMicros bounds one attempt's simulated execution (default
	// 20000); an attempt whose worms outlive it is abandoned and its
	// undelivered destinations are retried.
	TimeoutMicros float64
	// Check runs the wormsim invariant checker (flit conservation,
	// channel ownership, delivery accounting) throughout every attempt —
	// a testing aid; violations abort the operation with an error.
	Check bool
	// Shards steps each attempt's network with the sharded parallel
	// engine (wormsim.Network.SetShards); 0 or 1 selects the serial
	// engine. Outcomes are byte-identical at any shard count.
	Shards int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BackoffMicros <= 0 {
		p.BackoffMicros = 50
	}
	if p.TimeoutMicros <= 0 {
		p.TimeoutMicros = 20_000
	}
	return p
}

// DegradedOutcome is the per-operation accounting of one multicast
// executed under a fault plan.
type DegradedOutcome struct {
	// Attempts is the number of delivery attempts made (>= 1).
	Attempts int
	// Delivered, Lost, Unreachable partition the destination set:
	// delivered to the application, reachable but undelivered after all
	// retries, and severed from the source by the fault mask.
	Delivered, Lost, Unreachable int
	// FellBack and Repaired report degraded routing treatment on any
	// attempt (see fault.PlanStats).
	FellBack, Repaired bool
	// Partitioned reports that some attempt saw a typed partition error.
	Partitioned bool
	// WormsKilled counts worms dropped by mid-run fault activations
	// across all attempts.
	WormsKilled int
	// CompletionMicros is the operation's total wall time on the
	// operation clock: simulated attempt time plus retry backoffs.
	CompletionMicros float64
}

// Degraded reports whether the operation needed any degraded-mode
// treatment at all.
func (o DegradedOutcome) Degraded() bool {
	return o.FellBack || o.Repaired || o.Partitioned ||
		o.Lost > 0 || o.Unreachable > 0 || o.WormsKilled > 0 || o.Attempts > 1
}

// DeliveryRatio returns delivered / (delivered + lost + unreachable).
func (o DegradedOutcome) DeliveryRatio() float64 {
	total := o.Delivered + o.Lost + o.Unreachable
	if total == 0 {
		return 1
	}
	return float64(o.Delivered) / float64(total)
}

// MulticastUnderFaults executes one source-to-group multicast against a
// timed fault plan: one delta-driven live router (fault.LiveRouter) is
// built for the whole operation and advanced — in O(|new events|) per
// attempt, never a full rebuild — to the fault mask at the current
// operation time; each attempt routes the still-undelivered members over
// it, replays the plan on a wormhole network whose failed channels kill
// in-flight worms, and activates further fault events mid-flight as the
// operation clock crosses them. Destinations lost to mid-run kills or
// attempt timeouts are retried after a backoff until the policy's
// attempt budget runs out; destinations the mask has severed from the
// source are dropped immediately as unreachable. The fault plan's cycle
// 0 is the operation's start.
func (s *Service) MulticastUnderFaults(source topology.NodeID, g Group, bytes int,
	fp *fault.Plan, pol RetryPolicy) (DegradedOutcome, error) {
	if bytes <= 0 {
		bytes = s.cfg.MessageBytes
	}
	pol = pol.withDefaults()
	if fp == nil {
		fp = fault.NewStaticPlan(s.cfg.Topology, nil)
	}
	pending := make([]topology.NodeID, 0, g.Size())
	for _, m := range g.members {
		if m != source {
			pending = append(pending, m)
		}
	}
	if len(pending) == 0 {
		return DegradedOutcome{Attempts: 1}, fmt.Errorf("mcastsvc: source %d is the only member", source)
	}
	st, err := routing.SharedState(s.cfg.Topology)
	if err != nil {
		return DegradedOutcome{}, err
	}
	flitUs := s.flitMicros()
	flits := bytes / s.cfg.FlitBytes
	if flits < 1 {
		flits = 1
	}
	timeoutCycles := int64(pol.TimeoutMicros / flitUs)
	backoffCycles := int64(pol.BackoffMicros / flitUs)
	events := fp.Events()

	// One live router serves every attempt: each retry advances it by the
	// delta of newly activated events instead of rebuilding masked state
	// from scratch. The service plan cache is attached, so an attempt
	// whose pending set was already planned — and whose plan survived
	// targeted invalidation — is served without re-planning; only requests
	// the deltas actually touched re-plan.
	lr, err := fault.NewLiveRouter(s.router.Scheme(), st, routing.Options{})
	if err != nil {
		return DegradedOutcome{}, err
	}
	lr.AttachCache(s.cache)
	applied := 0 // events folded into the live mask so far

	var out DegradedOutcome
	clock := int64(0) // operation clock in flit cycles
	for attempt := 1; attempt <= pol.MaxAttempts && len(pending) > 0; attempt++ {
		out.Attempts = attempt
		var d fault.Delta
		for applied < len(events) && events[applied].Cycle <= clock {
			d.Fail = append(d.Fail, events[applied])
			applied++
		}
		if !d.Empty() {
			lr.ApplyDelta(d)
		}
		k, err := core.NewMulticastSet(s.cfg.Topology, source, pending)
		if err != nil {
			return out, err
		}
		plan, stats, _, perr := lr.PlanDegradedCached(k)
		out.FellBack = out.FellBack || stats.FellBack
		out.Repaired = out.Repaired || stats.Repaired
		severed := make(map[topology.NodeID]bool)
		if perr != nil {
			var pe *fault.PartitionError
			if !errors.As(perr, &pe) {
				return out, perr
			}
			out.Partitioned = true
			for _, d := range pe.Unreachable {
				severed[d] = true
			}
		}

		// Replay the attempt: failed hardware is dead from the start,
		// later events activate as the operation clock crosses them.
		net := wormsim.NewNetwork(s.cfg.Topology)
		if pol.Shards > 1 {
			net.SetShards(pol.Shards)
			defer net.Close()
		}
		net.FailWhere(lr.Mask().ChannelDead)
		delivered := make(map[topology.NodeID]bool)
		net.OnDelivery(func(d topology.NodeID, _ int64) { delivered[d] = true })
		net.InjectMulticast(plan.Paths, plan.Trees, flits)
		next := applied // events beyond the live mask activate mid-flight
		base := clock
		steps := 0
		for net.ActiveWorms() > 0 && net.Cycle() < timeoutCycles {
			for next < len(events) && events[next].Cycle <= base+net.Cycle() {
				e := events[next]
				next++
				net.FailWhere(e.Matches)
			}
			if !net.Step() && net.DetectDeadlock() != nil {
				// Cannot happen for the service's deadlock-free schemes;
				// abandon the attempt rather than spin to the timeout.
				break
			}
			if steps++; pol.Check && steps%128 == 0 {
				if cerr := net.CheckInvariants(); cerr != nil {
					return out, cerr
				}
			}
		}
		if pol.Check {
			if cerr := net.CheckInvariants(); cerr != nil {
				return out, cerr
			}
		}
		out.WormsKilled += net.KilledWorms()
		clock = base + net.Cycle()

		var still []topology.NodeID
		for _, d := range pending {
			switch {
			case delivered[d]:
				out.Delivered++
			case severed[d]:
				out.Unreachable++
			default:
				still = append(still, d)
			}
		}
		pending = still
		if len(pending) > 0 && attempt < pol.MaxAttempts {
			clock += backoffCycles
		}
	}
	out.Lost = len(pending)
	out.CompletionMicros = float64(clock) * flitUs
	return out, nil
}
