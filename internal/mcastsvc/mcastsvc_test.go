package mcastsvc

import (
	"testing"

	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

func newMeshService(t *testing.T, scheme Scheme) *Service {
	t.Helper()
	s, err := New(Config{Topology: topology.NewMesh2D(8, 8), Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
	// Rings are k-ary 1-cubes with a serpentine labeling: accepted.
	if _, err := New(Config{Topology: topology.Ring(5)}); err != nil {
		t.Errorf("ring rejected: %v", err)
	}
	if _, err := New(Config{Topology: topology.NewMesh2D(4, 4), Scheme: Scheme(9)}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := New(Config{Topology: topology.NewMesh3D(3, 3, 3), Scheme: MultiPathScheme}); err == nil {
		t.Error("multi-path on 3D mesh accepted")
	}
	if _, err := New(Config{Topology: topology.NewMesh3D(3, 3, 3), Scheme: DualPathScheme}); err != nil {
		t.Errorf("dual-path on 3D mesh rejected: %v", err)
	}
}

func TestGroupValidation(t *testing.T) {
	s := newMeshService(t, DualPathScheme)
	if _, err := s.NewGroup([]topology.NodeID{5}); err == nil {
		t.Error("single-member group accepted")
	}
	if _, err := s.NewGroup([]topology.NodeID{5, 5}); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := s.NewGroup([]topology.NodeID{5, 99}); err == nil {
		t.Error("out-of-range member accepted")
	}
	g, err := s.NewGroup([]topology.NodeID{9, 3, 27})
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 || !g.Contains(27) || g.Contains(4) {
		t.Error("group membership wrong")
	}
	// Members come back sorted.
	m := g.Members()
	if m[0] != 3 || m[1] != 9 || m[2] != 27 {
		t.Errorf("members not sorted: %v", m)
	}
}

func TestMulticastCost(t *testing.T) {
	for _, scheme := range []Scheme{DualPathScheme, MultiPathScheme, FixedPathScheme} {
		s := newMeshService(t, scheme)
		g, err := s.NewGroup([]topology.NodeID{3, 12, 45, 60})
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Multicast(27, g, 128)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if c.TrafficChannels <= 0 || c.MaxDistance <= 0 || c.Messages <= 0 {
			t.Errorf("%v: degenerate cost %+v", scheme, c)
		}
		// Contention-free wormhole latency: (hops + flits - 1) cycles.
		want := float64(c.MaxDistance+128-1) * (1.0 / 20)
		if c.LatencyMicros != want {
			t.Errorf("%v: latency %.3f, want %.3f", scheme, c.LatencyMicros, want)
		}
	}
}

func TestMulticastFromGroupMember(t *testing.T) {
	s := newMeshService(t, DualPathScheme)
	g, err := s.NewGroup([]topology.NodeID{3, 12, 45})
	if err != nil {
		t.Fatal(err)
	}
	// Source inside the group: it must not be treated as a destination.
	c, err := s.Multicast(12, g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.TrafficChannels <= 0 {
		t.Error("no traffic for in-group multicast")
	}
}

func TestBroadcastCost(t *testing.T) {
	s := newMeshService(t, FixedPathScheme)
	c, err := s.Broadcast(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-path broadcast from label 0 walks the whole Hamiltonian
	// path: exactly N-1 channels — matching the broadcast baseline.
	if c.TrafficChannels != 63 {
		t.Errorf("fixed-path broadcast traffic %d, want 63", c.TrafficChannels)
	}
}

func TestBarrierCostAndSchemeOrdering(t *testing.T) {
	s := newMeshService(t, DualPathScheme)
	var members []topology.NodeID
	for v := topology.NodeID(0); v < 16; v++ {
		members = append(members, v*4)
	}
	g, err := s.NewGroup(members)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Barrier(0, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 15 gather tokens plus 1-2 release paths.
	if c.Messages < 16 || c.Messages > 17 {
		t.Errorf("barrier message count %d, want 16 or 17", c.Messages)
	}
	if c.LatencyMicros <= 0 {
		t.Error("zero barrier latency")
	}
	release, err := s.Multicast(0, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.TrafficChannels <= release.TrafficChannels {
		t.Error("barrier traffic should include the gather phase")
	}
	if _, err := s.Barrier(1, g, 8); err == nil {
		t.Error("coordinator outside group accepted")
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	s := newMeshService(t, DualPathScheme)
	g, err := s.NewGroup([]topology.NodeID{0, 7, 56, 63})
	if err != nil {
		t.Fatal(err)
	}
	red, err := s.Reduce(0, g, 128)
	if err != nil {
		t.Fatal(err)
	}
	if red.TrafficChannels != 7+7+14 {
		t.Errorf("reduce traffic %d, want 28", red.TrafficChannels)
	}
	all, err := s.ReduceBroadcast(0, g, 128)
	if err != nil {
		t.Fatal(err)
	}
	if all.TrafficChannels <= red.TrafficChannels {
		t.Error("allreduce should cost more than reduce")
	}
	if all.LatencyMicros <= red.LatencyMicros {
		t.Error("allreduce latency should exceed reduce latency")
	}
	if _, err := s.Reduce(1, g, 0); err == nil {
		t.Error("root outside group accepted")
	}
}

func TestSimulatedPrimitivesDrain(t *testing.T) {
	rng := stats.NewRand(5)
	for _, scheme := range []Scheme{DualPathScheme, MultiPathScheme} {
		s := newMeshService(t, scheme)
		raw := rng.Sample(64, 12)
		members := make([]topology.NodeID, len(raw))
		for i, v := range raw {
			members[i] = topology.NodeID(v)
		}
		g, err := s.NewGroup(members)
		if err != nil {
			t.Fatal(err)
		}
		coord := g.Members()[0]

		mc, err := s.SimulateMulticast(coord, g, 128)
		if err != nil {
			t.Fatal(err)
		}
		if mc.Deadlocked || mc.CompletionMicros <= 0 {
			t.Fatalf("%v: multicast simulation failed: %+v", scheme, mc)
		}
		// The contention-free estimate is a lower bound; for dual-path the
		// two paths occupy disjoint channel directions, so on an idle
		// network it is tight. Multi-path routes can contend with each
		// other near the source (the hot-spot effect in miniature), so
		// only the bound holds there.
		est, err := s.Multicast(coord, g, 128)
		if err != nil {
			t.Fatal(err)
		}
		if mc.CompletionMicros < est.LatencyMicros*0.99 {
			t.Errorf("%v: simulated %.2f us below contention-free bound %.2f us",
				scheme, mc.CompletionMicros, est.LatencyMicros)
		}
		if scheme == DualPathScheme && mc.CompletionMicros > est.LatencyMicros*1.01 {
			t.Errorf("dual-path: simulated %.2f us vs tight estimate %.2f us",
				mc.CompletionMicros, est.LatencyMicros)
		}

		bar, err := s.SimulateBarrier(coord, g, 8)
		if err != nil {
			t.Fatal(err)
		}
		if bar.Deadlocked || len(bar.Phases) != 2 {
			t.Fatalf("%v: barrier simulation failed: %+v", scheme, bar)
		}
		// The simulated gather sees convergecast contention, so it can
		// only be at least the closed-form estimate.
		estBar, err := s.Barrier(coord, g, 8)
		if err != nil {
			t.Fatal(err)
		}
		if bar.CompletionMicros < estBar.LatencyMicros*0.9 {
			t.Errorf("%v: simulated barrier %.2f us below estimate %.2f us",
				scheme, bar.CompletionMicros, estBar.LatencyMicros)
		}

		ar, err := s.SimulateAllReduce(coord, g, 64)
		if err != nil {
			t.Fatal(err)
		}
		if ar.Deadlocked || len(ar.Phases) != 2 {
			t.Fatalf("%v: allreduce simulation failed: %+v", scheme, ar)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	s := newMeshService(t, DualPathScheme)
	g, err := s.NewGroup([]topology.NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SimulateBarrier(9, g, 8); err == nil {
		t.Error("coordinator outside group accepted")
	}
	if _, err := s.SimulateAllReduce(9, g, 8); err == nil {
		t.Error("root outside group accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if DualPathScheme.String() != "dual-path" || Scheme(9).String() == "" {
		t.Error("scheme strings wrong")
	}
}
