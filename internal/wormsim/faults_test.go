package wormsim

import (
	"testing"

	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// TestFailWhereKillsHolder fails a channel under an in-flight worm:
// the worm dies, its held channels come free, the lost destination is
// reported, and the audited state stays consistent.
func TestFailWhereKillsHolder(t *testing.T) {
	m := topology.NewMesh2D(5, 1)
	net := NewNetwork(m)
	route := dfr.PathRoute{Nodes: []topology.NodeID{0, 1, 2, 3, 4}, Dests: []topology.NodeID{4}}
	var lost []topology.NodeID
	net.OnLost(func(d topology.NodeID, size int) {
		lost = append(lost, d)
		if size != 1 {
			t.Fatalf("mcast size = %d, want 1", size)
		}
	})
	delivered := false
	net.OnDelivery(func(topology.NodeID, int64) { delivered = true })
	net.InjectMulticast([]dfr.PathRoute{route}, nil, 8)
	net.Step() // header takes (0,1)
	net.Step() // header takes (1,2)
	killed := net.FailWhere(func(c dfr.Channel) bool {
		return c.From == 1 && c.To == 2
	})
	if killed != 1 {
		t.Fatalf("killed = %d, want 1", killed)
	}
	if got := net.KilledWorms(); got != 1 {
		t.Fatalf("KilledWorms = %d, want 1", got)
	}
	if len(lost) != 1 || lost[0] != 4 {
		t.Fatalf("lost = %v, want [4]", lost)
	}
	if net.ActiveWorms() != 0 {
		t.Fatalf("killed worm still in flight")
	}
	if net.Busy(dfr.Channel{From: 0, To: 1}) {
		t.Fatalf("killed worm left channel (0,1) held")
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after kill: %v", err)
	}
	if delivered {
		t.Fatalf("dropped worm delivered")
	}
}

// TestFailWhereKillsWaiter fails the channel a parked worm is queued on;
// the waiter dies and the owner continues to full delivery.
func TestFailWhereKillsWaiter(t *testing.T) {
	m := topology.NewMesh2D(5, 1)
	net := NewNetwork(m)
	a := dfr.PathRoute{Nodes: []topology.NodeID{0, 1, 2, 3, 4}, Dests: []topology.NodeID{4}}
	b := dfr.PathRoute{Nodes: []topology.NodeID{1, 2, 3}, Dests: []topology.NodeID{3}}
	deliveredTo := map[topology.NodeID]bool{}
	net.OnDelivery(func(d topology.NodeID, _ int64) { deliveredTo[d] = true })
	net.InjectMulticast([]dfr.PathRoute{a}, nil, 8)
	net.Step() // A takes (0,1)
	net.Step() // A takes (1,2)
	net.InjectMulticast([]dfr.PathRoute{b}, nil, 8)
	net.Step() // B blocks on (1,2), parks
	// Fail channel (2,3): A holds nothing there yet but needs it next; B
	// waits behind A on (1,2). Fail (1,2) instead to hit B's wait.
	if killed := net.FailWhere(func(c dfr.Channel) bool {
		return c.From == 1 && c.To == 2 && c.Class == 0
	}); killed != 2 {
		// Both A (owner) and B (queued) die on that channel.
		t.Fatalf("killed = %d, want 2", killed)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after kill: %v", err)
	}
	if net.ActiveWorms() != 0 {
		t.Fatalf("worms still in flight after both died")
	}
	if len(deliveredTo) != 0 {
		t.Fatalf("unexpected deliveries %v", deliveredTo)
	}
}

// TestInjectionOntoDeadChannel checks a route injected after the fault
// dies at the point of contact, not at injection (the header runs until
// it reaches the failed hardware).
func TestInjectionOntoDeadChannel(t *testing.T) {
	m := topology.NewMesh2D(5, 1)
	net := NewNetwork(m)
	net.FailWhere(func(c dfr.Channel) bool { return c.From == 2 && c.To == 3 })
	var lost int
	net.OnLost(func(topology.NodeID, int) { lost++ })
	route := dfr.PathRoute{Nodes: []topology.NodeID{0, 1, 2, 3, 4}, Dests: []topology.NodeID{4}}
	net.InjectMulticast([]dfr.PathRoute{route}, nil, 4)
	for i := 0; i < 10 && net.ActiveWorms() > 0; i++ {
		net.Step()
	}
	if net.ActiveWorms() != 0 || lost != 1 {
		t.Fatalf("worm not dropped on dead channel: active %d lost %d", net.ActiveWorms(), lost)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTreeWormDiesOnDeadFrontier checks the lock-step drop rule: one
// dead channel anywhere in the next frontier kills the whole tree worm.
func TestTreeWormDiesOnDeadFrontier(t *testing.T) {
	m := topology.NewMesh2D(3, 3)
	net := NewNetwork(m)
	// Root 4 (center) branches to 3 and 5; depth 2 reaches 0 via 3.
	tree := dfr.TreeRoute{
		Root:  4,
		Dests: []topology.NodeID{5, 0},
		Edges: []dfr.Channel{{From: 4, To: 3}, {From: 4, To: 5}, {From: 3, To: 0}},
	}
	var lost []topology.NodeID
	net.OnLost(func(d topology.NodeID, _ int) { lost = append(lost, d) })
	net.FailWhere(func(c dfr.Channel) bool { return c.From == 3 && c.To == 0 })
	net.InjectMulticast(nil, []dfr.TreeRoute{tree}, 4)
	for i := 0; i < 10 && net.ActiveWorms() > 0; i++ {
		net.Step()
	}
	if net.ActiveWorms() != 0 {
		t.Fatalf("tree worm survived dead frontier channel")
	}
	// Both destinations are lost: lock-step trees cannot partially
	// deliver once dropped.
	if len(lost) != 2 {
		t.Fatalf("lost = %v, want both destinations", lost)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithFaultsDeterministic drives full dynamic runs with a
// mid-run fault schedule and the invariant audit on: results must be
// reproducible field for field, and the delivery accounting must add
// up.
func TestRunWithFaultsDeterministic(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	dead := func(c dfr.Channel) bool {
		// An asymmetric cut through the mesh interior.
		return (c.From == 27 && c.To == 28) || (c.From == 28 && c.To == 27) ||
			(c.From == 35 && c.To == 36) || (c.From == 36 && c.To == 35)
	}
	cfg := Config{
		Topology:               m,
		Route:                  DualPathScheme(m, l),
		MeanInterarrivalMicros: 300,
		AvgDests:               10,
		Seed:                   11,
		WarmupDeliveries:       100,
		BatchSize:              100,
		MinBatches:             5,
		MaxCycles:              60_000,
		Check:                  true,
		Faults: []ScheduledFault{
			{Cycle: 5_000, Dead: dead},
		},
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("faulty runs diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if first.Lost == 0 {
		t.Fatalf("fault epoch lost nothing; the schedule did not bite: %+v", first)
	}
	if first.WormsKilled == 0 {
		t.Fatalf("no worms killed despite losses")
	}
	if first.Delivered == 0 {
		t.Fatalf("nothing delivered under faults")
	}
	if first.Deadlocked {
		t.Fatalf("fault handling deadlocked the network: %+v", first)
	}
}
