package experiments

import (
	"fmt"
	"io"
	"sort"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// WriteTable51 renders Table 5.1: the Hamilton cycle and h mapping of the
// 4x4 mesh.
func WriteTable51(w io.Writer) error {
	m := topology.NewMesh2D(4, 4)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 5.1 — Hamilton cycle and mapping h of a 4x4 mesh")
	fmt.Fprintln(w, "h(x)  x")
	for h := 1; h <= c.Len(); h++ {
		fmt.Fprintf(w, "%4d  %d\n", h, c.At(h))
	}
	return nil
}

// WriteTable52 renders Table 5.2: sorting keys f for source node 9 on the
// 4x4 mesh.
func WriteTable52(w io.Writer) error {
	m := topology.NewMesh2D(4, 4)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		return err
	}
	u0 := topology.NodeID(9)
	fmt.Fprintln(w, "Table 5.2 — sorting key f(x) and mapping h(x), 4x4 mesh, u0 = 9")
	fmt.Fprintln(w, "   x  h(x)  f(x)")
	for x := topology.NodeID(0); int(x) < m.Nodes(); x++ {
		fmt.Fprintf(w, "%4d  %4d  %4d\n", x, c.H(x), c.SortKey(u0, x))
	}
	return nil
}

// WriteTable53 renders Table 5.3: the Gray-code Hamilton cycle of the
// 4-cube.
func WriteTable53(w io.Writer) error {
	h := topology.NewHypercube(4)
	c, err := labeling.CubeHamiltonCycle(h)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 5.3 — Hamilton cycle and mapping h of a 4-cube")
	fmt.Fprintln(w, "h(x)  x")
	for pos := 1; pos <= c.Len(); pos++ {
		fmt.Fprintf(w, "%4d  %04b\n", pos, c.At(pos))
	}
	return nil
}

// WriteTable54 renders Table 5.4: sorting keys on the 4-cube with source
// 0011.
func WriteTable54(w io.Writer) error {
	h := topology.NewHypercube(4)
	c, err := labeling.CubeHamiltonCycle(h)
	if err != nil {
		return err
	}
	u0 := topology.NodeID(0b0011)
	fmt.Fprintln(w, "Table 5.4 — sorting key f(x) and mapping h(x), 4-cube, u0 = 0011")
	fmt.Fprintln(w, "   x  h(x)  f(x)")
	for x := topology.NodeID(0); int(x) < h.Nodes(); x++ {
		fmt.Fprintf(w, "%04b  %4d  %4d\n", x, c.H(x), c.SortKey(u0, x))
	}
	return nil
}

// textSection is one independent block of a rendered text report: Run
// produces the block on a worker goroutine, Commit (sequential, in
// declaration order) writes it, so the report bytes are independent of
// the worker count. After the first error nothing further is written,
// matching the sequential early-return behavior.
type textOut struct {
	s   string
	err error
}

func textSections(w io.Writer, workers int, sections ...func() (string, error)) error {
	var firstErr error
	points := make([]SweepPoint, len(sections))
	for i, sec := range sections {
		points[i] = SweepPoint{
			Run: func() any {
				s, err := sec()
				return textOut{s: s, err: err}
			},
			Commit: func(v any) {
				o := v.(textOut)
				if firstErr != nil {
					return
				}
				if o.err != nil {
					firstErr = o.err
					return
				}
				io.WriteString(w, o.s)
			},
		}
	}
	RunSweep(points, workers)
	return firstErr
}

// ExampleRoutes computes every worked route example of Chapters 5 and 6
// and renders it with its traffic, for cmd/mcfigures and the examples
// index of EXPERIMENTS.md. The examples are independent, so they are
// evaluated over a worker pool of the given size (<= 0 selects
// GOMAXPROCS) and written in figure order.
func ExampleRoutes(w io.Writer, workers int) error {
	return textSections(w, workers,
		func() (string, error) {
			// Fig. 5.7: sorted MP on the 4x4 mesh.
			m44 := topology.NewMesh2D(4, 4)
			c44, err := labeling.MeshHamiltonCycle(m44)
			if err != nil {
				return "", err
			}
			k57 := core.MustMulticastSet(m44, 9, []topology.NodeID{0, 1, 6, 12})
			p57 := heuristics.SortedMP(m44, c44, k57)
			return fmt.Sprintf("Fig 5.7  sorted MP, 4x4 mesh, src 9: path %v, traffic %d\n", p57.Nodes, p57.Traffic()), nil
		},
		func() (string, error) {
			// Fig. 5.8: sorted MP on the 4-cube.
			h4 := topology.NewHypercube(4)
			ch4, err := labeling.CubeHamiltonCycle(h4)
			if err != nil {
				return "", err
			}
			k58 := core.MustMulticastSet(h4, 0b0011,
				[]topology.NodeID{0b0100, 0b0111, 0b1100, 0b1010, 0b1111})
			p58 := heuristics.SortedMP(h4, ch4, k58)
			return fmt.Sprintf("Fig 5.8  sorted MP, 4-cube, src 0011: path %v, traffic %d\n", p58.Nodes, p58.Traffic()), nil
		},
		func() (string, error) {
			// Fig. 5.9: greedy ST on an 8x8 mesh.
			m88 := topology.NewMesh2D(8, 8)
			k59 := core.MustMulticastSet(m88, m88.ID(2, 7), []topology.NodeID{
				m88.ID(0, 5), m88.ID(2, 3), m88.ID(4, 1), m88.ID(6, 3), m88.ID(7, 4)})
			r59 := heuristics.GreedyST(m88, k59)
			return fmt.Sprintf("Fig 5.9  greedy ST, 8x8 mesh, src [2,7]: traffic %d, tree %v\n", r59.Links, r59.IsTreePattern()), nil
		},
		func() (string, error) {
			// Fig. 5.10: greedy ST on a 6-cube.
			h6 := topology.NewHypercube(6)
			k510 := core.MustMulticastSet(h6, 0b000110,
				[]topology.NodeID{0b010101, 0b000001, 0b001101, 0b101001, 0b110001})
			r510 := heuristics.GreedyST(h6, k510)
			return fmt.Sprintf("Fig 5.10 greedy ST, 6-cube, src 000110: traffic %d, tree %v\n", r510.Links, r510.IsTreePattern()), nil
		},
		func() (string, error) {
			// Figs. 5.11/5.12: X-first and divided greedy on a 6x6 mesh.
			m66 := topology.NewMesh2D(6, 6)
			kmt := core.MustMulticastSet(m66, m66.ID(3, 2), []topology.NodeID{
				m66.ID(2, 0), m66.ID(3, 0), m66.ID(4, 0), m66.ID(1, 1), m66.ID(5, 1),
				m66.ID(0, 2), m66.ID(1, 3), m66.ID(2, 5), m66.ID(3, 5), m66.ID(5, 5)})
			return fmt.Sprintf("Fig 5.11 X-first MT, 6x6 mesh, src (3,2): traffic %d\n", heuristics.XFirstMT(m66, kmt).Links) +
				fmt.Sprintf("Fig 5.12 divided greedy MT, same example: traffic %d\n", heuristics.DividedGreedyMT(m66, kmt).Links), nil
		},
		func() (string, error) {
			// Figs. 6.13/6.16/6.17: the path schemes on the 6x6 example.
			m66 := topology.NewMesh2D(6, 6)
			l66 := labeling.NewMeshBoustrophedon(m66)
			k6 := core.MustMulticastSet(m66, m66.ID(3, 2), []topology.NodeID{
				m66.ID(0, 0), m66.ID(0, 2), m66.ID(0, 5), m66.ID(1, 3), m66.ID(4, 5),
				m66.ID(5, 0), m66.ID(5, 1), m66.ID(5, 3), m66.ID(5, 4)})
			dual := dfr.DualPath(m66, l66, k6)
			multi := dfr.MultiPathMesh(m66, l66, k6)
			fixed := dfr.FixedPath(m66, l66, k6)
			return fmt.Sprintf("Fig 6.13 dual-path, 6x6 mesh: traffic %d, max distance %d\n", dual.Traffic(), dual.MaxDistance()) +
				fmt.Sprintf("Fig 6.16 multi-path, 6x6 mesh: traffic %d, max distance %d\n", multi.Traffic(), multi.MaxDistance()) +
				fmt.Sprintf("Fig 6.17 fixed-path, 6x6 mesh: traffic %d, max distance %d\n", fixed.Traffic(), fixed.MaxDistance()), nil
		},
		func() (string, error) {
			// Figs. 6.19/6.21: dual- and multi-path on the 4-cube.
			h4 := topology.NewHypercube(4)
			lh4 := labeling.NewHypercubeGray(h4)
			k619 := core.MustMulticastSet(h4, 0b1100,
				[]topology.NodeID{0b0100, 0b0011, 0b0111, 0b1000, 0b1111})
			d619 := dfr.DualPath(h4, lh4, k619)
			m621 := dfr.MultiPathCube(h4, lh4, k619)
			return fmt.Sprintf("Fig 6.19 dual-path, 4-cube, src 1100: traffic %d, max distance %d\n", d619.Traffic(), d619.MaxDistance()) +
				fmt.Sprintf("Fig 6.21 multi-path, 4-cube, src 1100: traffic %d, max distance %d\n", m621.Traffic(), m621.MaxDistance()), nil
		},
	)
}

// DeadlockDemos verifies and renders the Chapter 6 deadlock
// constructions: the naive schemes produce channel dependency cycles, the
// safe schemes do not. The three constructions are independent, so they
// run over a worker pool of the given size (<= 0 selects GOMAXPROCS) and
// are written in figure order.
func DeadlockDemos(w io.Writer, workers int) error {
	return textSections(w, workers,
		func() (string, error) {
			h3 := topology.NewHypercube(3)
			rec := dfr.NewDependencyRecorder()
			rec.AddTree(dfr.ECubeBroadcastTree(h3, 0))
			rec.AddTree(dfr.ECubeBroadcastTree(h3, 1))
			return fmt.Sprintf("Fig 6.1  two 3-cube broadcast trees: dependency cycle %v\n", rec.FindCycle()), nil
		},
		func() (string, error) {
			m := topology.NewMesh2D(4, 3)
			m0 := core.MustMulticastSet(m, m.ID(1, 1), []topology.NodeID{m.ID(0, 2), m.ID(3, 1)})
			m1 := core.MustMulticastSet(m, m.ID(2, 1), []topology.NodeID{m.ID(0, 1), m.ID(3, 0)})
			naive := dfr.NaiveTreeCDG(m, []core.MulticastSet{m0, m1})
			return fmt.Sprintf("Fig 6.4  two X-first tree multicasts: dependency cycle %v\n", naive.FindCycle()), nil
		},
		func() (string, error) {
			// The safe schemes on aggressively many multicast sets: acyclic.
			// Path schemes share one network (all label-monotone on the same
			// single channels); the double-channel tree scheme runs on its own
			// network, so it gets its own dependency graph.
			m := topology.NewMesh2D(4, 3)
			l := labeling.NewMeshBoustrophedon(m)
			pathRec := dfr.NewDependencyRecorder()
			treeRec := dfr.NewDependencyRecorder()
			var sets []core.MulticastSet
			for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
				var dests []topology.NodeID
				for v := topology.NodeID(0); int(v) < m.Nodes(); v++ {
					if v != src {
						dests = append(dests, v)
					}
				}
				sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
				sets = append(sets, core.MustMulticastSet(m, src, dests))
			}
			for _, k := range sets {
				pathRec.AddStar(dfr.DualPath(m, l, k))
				pathRec.AddStar(dfr.MultiPathMesh(m, l, k))
				pathRec.AddStar(dfr.FixedPath(m, l, k))
				for _, tr := range dfr.DoubleChannelXFirst(m, k) {
					treeRec.AddTree(tr)
				}
			}
			if cyc := pathRec.FindCycle(); cyc != nil {
				return "", fmt.Errorf("experiments: path schemes produced a cycle %v", cyc)
			}
			if cyc := treeRec.FindCycle(); cyc != nil {
				return "", fmt.Errorf("experiments: double-channel tree scheme produced a cycle %v", cyc)
			}
			return "Ch 6     all deadlock-free schemes, all-source broadcast workload: CDG acyclic\n", nil
		},
	)
}
