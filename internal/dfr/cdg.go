package dfr

import (
	"multicastnet/internal/core"
	"multicastnet/internal/graphx"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// ChannelIndexer assigns dense integer ids to channels so channel
// dependency graphs can be built over them.
type ChannelIndexer struct {
	ids  map[Channel]int
	list []Channel
}

// NewChannelIndexer returns an empty indexer.
func NewChannelIndexer() *ChannelIndexer {
	return &ChannelIndexer{ids: make(map[Channel]int)}
}

// ID returns the dense id for c, allocating one on first use.
func (x *ChannelIndexer) ID(c Channel) int {
	if id, ok := x.ids[c]; ok {
		return id
	}
	id := len(x.list)
	x.ids[c] = id
	x.list = append(x.list, c)
	return id
}

// Len returns the number of channels indexed so far.
func (x *ChannelIndexer) Len() int { return len(x.list) }

// Channel returns the channel with dense id i.
func (x *ChannelIndexer) Channel(i int) Channel { return x.list[i] }

// DependencyRecorder accumulates channel dependency edges observed along
// routes; Graph() materializes the channel dependency graph of
// Section 2.3.4 for acyclicity checking.
type DependencyRecorder struct {
	idx   *ChannelIndexer
	edges [][2]int
}

// NewDependencyRecorder returns an empty recorder.
func NewDependencyRecorder() *DependencyRecorder {
	return &DependencyRecorder{idx: NewChannelIndexer()}
}

// AddPath records the dependencies along one wormhole path: each channel
// depends on the next channel the header requests while holding it.
func (r *DependencyRecorder) AddPath(p PathRoute) {
	chans := p.Channels()
	for i := 1; i < len(chans); i++ {
		r.edges = append(r.edges, [2]int{r.idx.ID(chans[i-1]), r.idx.ID(chans[i])})
	}
}

// AddStar records all paths of a star.
func (r *DependencyRecorder) AddStar(s Star) {
	for _, p := range s.Paths {
		r.AddPath(p)
	}
}

// AddTree records the dependencies of a lock-step tree. Because all
// branches of a tree-routed multicast advance together (Section 6.1:
// "all of the required channels must be available before transmission on
// any of them may take place"), a message holding any tree channel waits
// on every not-yet-acquired channel of the whole tree — not only its own
// branch. Channels are acquired level by level, so every channel at depth
// i depends on every tree channel at depth j > i, across branches. This
// is what turns the two broadcasts of Fig. 6.1 (and the two X-first
// multicasts of Fig. 6.4) into a dependency cycle.
func (r *DependencyRecorder) AddTree(t TreeRoute) {
	depth := t.Depths()
	for _, c1 := range t.Edges {
		for _, c2 := range t.Edges {
			if depth[c1.To] < depth[c2.To] {
				r.edges = append(r.edges, [2]int{r.idx.ID(c1), r.idx.ID(c2)})
			}
		}
	}
}

// Graph materializes the accumulated channel dependency graph.
func (r *DependencyRecorder) Graph() *graphx.Digraph {
	g := graphx.NewDigraph(r.idx.Len())
	for _, e := range r.edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// FindCycle returns a channel cycle in the recorded dependencies, or nil
// when the dependency graph is acyclic (deadlock-free).
func (r *DependencyRecorder) FindCycle() []Channel {
	cyc := r.Graph().FindCycle()
	if cyc == nil {
		return nil
	}
	out := make([]Channel, len(cyc))
	for i, id := range cyc {
		out[i] = r.idx.Channel(id)
	}
	return out
}

// UnicastCDG builds the complete channel dependency graph of the routing
// function R over all source/destination pairs of a labeled topology.
// Because R is label-monotone, the graph is acyclic for every valid
// Hamiltonian labeling; the tests verify this exhaustively.
func UnicastCDG(t topology.Topology, l labeling.Labeling) *DependencyRecorder {
	r := NewDependencyRecorder()
	for u := topology.NodeID(0); int(u) < t.Nodes(); u++ {
		for v := topology.NodeID(0); int(v) < t.Nodes(); v++ {
			if u == v {
				continue
			}
			r.AddPath(PathRoute{Nodes: core.RoutePath(t, l, u, v)})
		}
	}
	return r
}

// XYUnicastCDG builds the channel dependency graph of X-first unicast
// routing on a mesh (Fig. 2.5) — acyclic, the classical result the
// chapter builds on.
func XYUnicastCDG(m *topology.Mesh2D) *DependencyRecorder {
	r := NewDependencyRecorder()
	router := core.XYRouter{Mesh: m}
	for u := topology.NodeID(0); int(u) < m.Nodes(); u++ {
		for v := topology.NodeID(0); int(v) < m.Nodes(); v++ {
			if u == v {
				continue
			}
			r.AddPath(PathRoute{Nodes: core.UnicastPath(router, u, v)})
		}
	}
	return r
}

// NaiveTreeCDG builds the dependency graph of single-channel X-first
// multicast trees over the given multicast sets, using the lock-step
// dependency rule. This is the unsafe extension of Section 6.1: with
// opposing multicasts the graph develops cycles (Fig. 6.4), which is how
// the tests demonstrate that the naive tree scheme is not deadlock-free.
func NaiveTreeCDG(m *topology.Mesh2D, sets []core.MulticastSet) *DependencyRecorder {
	r := NewDependencyRecorder()
	for _, k := range sets {
		for _, t := range XFirstTrees(m, k) {
			r.AddTree(t)
		}
	}
	return r
}

// XFirstTrees builds the X-first multicast tree of Fig. 6.3 on single
// channels (class 0 everywhere): the deadlock-prone extension of unicast
// XY routing to multicast, kept for demonstrating the Section 6.1
// deadlock in the simulator.
func XFirstTrees(m *topology.Mesh2D, k core.MulticastSet) []TreeRoute {
	tr := TreeRoute{Root: k.Source, Dests: k.Dests}
	type msg struct {
		at    topology.NodeID
		dests []topology.NodeID
	}
	queue := []msg{{at: k.Source, dests: k.Dests}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		x0, y0 := m.XY(cur.at)
		var px, mx, py, my []topology.NodeID
		for _, d := range cur.dests {
			x, y := m.XY(d)
			switch {
			case x > x0:
				px = append(px, d)
			case x < x0:
				mx = append(mx, d)
			case y > y0:
				py = append(py, d)
			case y < y0:
				my = append(my, d)
			}
		}
		forward := func(ds []topology.NodeID, nx, ny int) {
			if len(ds) == 0 {
				return
			}
			next := m.ID(nx, ny)
			tr.Edges = append(tr.Edges, Channel{From: cur.at, To: next})
			queue = append(queue, msg{at: next, dests: ds})
		}
		forward(px, x0+1, y0)
		forward(mx, x0-1, y0)
		forward(py, x0, y0+1)
		forward(my, x0, y0-1)
	}
	return []TreeRoute{tr}
}

// SubcubeTree builds the nCUBE-2's "special form of multicast in which
// the destination nodes form a subcube" (Section 6.1): the destinations
// are every node reachable from source by flipping bits inside mask, and
// the delivery tree is the binomial tree over the mask's dimensions. Like
// the full broadcast it is traffic-optimal for its destination set (a
// spanning tree of the subcube, 2^|mask| - 1 channels) — and, also like
// the full broadcast, not deadlock-free under lock-step wormhole
// semantics when subcubes of concurrent multicasts overlap.
func SubcubeTree(h *topology.Hypercube, source topology.NodeID, mask topology.NodeID) TreeRoute {
	if int64(mask) >= int64(h.Nodes()) {
		panic("dfr: subcube mask exceeds cube dimensions")
	}
	var dests []topology.NodeID
	// Enumerate the subcube: all subsets of mask applied to source.
	for sub := mask; ; sub = (sub - 1) & mask {
		if v := source ^ sub; v != source {
			dests = append(dests, v)
		}
		if sub == 0 {
			break
		}
	}
	tr := TreeRoute{Root: source, Dests: dests}
	type msg struct {
		at      topology.NodeID
		fromDim int
	}
	queue := []msg{{at: source, fromDim: -1}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for dim := cur.fromDim + 1; dim < h.Dim; dim++ {
			if mask>>dim&1 == 0 {
				continue
			}
			next := cur.at ^ topology.NodeID(1<<dim)
			tr.Edges = append(tr.Edges, Channel{From: cur.at, To: next})
			queue = append(queue, msg{at: next, fromDim: dim})
		}
	}
	return tr
}

// ECubeBroadcastTree builds the nCUBE-2 style broadcast tree of
// Section 6.1 on an n-cube: each path from the source to a node follows
// E-cube (lowest differing dimension first) routing, realized as the
// spanning binomial tree in which node u forwards along every dimension
// above its arrival dimension. Two such trees from adjacent sources
// produce the Fig. 6.1 deadlock cycle under lock-step dependencies.
func ECubeBroadcastTree(h *topology.Hypercube, source topology.NodeID) TreeRoute {
	var dests []topology.NodeID
	for v := topology.NodeID(0); int(v) < h.Nodes(); v++ {
		if v != source {
			dests = append(dests, v)
		}
	}
	tr := TreeRoute{Root: source, Dests: dests}
	type msg struct {
		at      topology.NodeID
		fromDim int
	}
	queue := []msg{{at: source, fromDim: -1}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for dim := cur.fromDim + 1; dim < h.Dim; dim++ {
			next := cur.at ^ topology.NodeID(1<<dim)
			tr.Edges = append(tr.Edges, Channel{From: cur.at, To: next})
			queue = append(queue, msg{at: next, fromDim: dim})
		}
	}
	return tr
}
