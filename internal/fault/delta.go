package fault

import (
	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// Delta is one batch of fault-model changes: events that fire and events
// that are repaired. It is the unit the live routing path consumes — a
// LiveRouter absorbs a Delta in O(|delta|) where the static path rebuilds
// in O(topology).
//
// A Delta carries Events rather than raw graph changes because the fault
// model is richer than the physical graph: a VCFault kills one directed
// channel copy without touching adjacency. GraphDelta lowers the physical
// part for topology.LiveMasked; DeadChannelPairs lowers the killed
// channels for targeted PlanCache invalidation.
type Delta struct {
	Fail, Repair []Event
}

// Empty reports a delta with no changes.
func (d Delta) Empty() bool { return len(d.Fail) == 0 && len(d.Repair) == 0 }

// GraphDelta lowers the physical-graph part of the delta: link and node
// events map to graph changes, VC events do not (the link's other classes
// still carry flits; the degraded router enforces VC death per channel).
func (d Delta) GraphDelta() topology.GraphDelta {
	var g topology.GraphDelta
	for _, e := range d.Fail {
		switch e.Kind {
		case LinkFault:
			g.FailLinks = append(g.FailLinks, topology.NormLink(e.A, e.B))
		case NodeFault:
			g.FailNodes = append(g.FailNodes, e.A)
		}
	}
	for _, e := range d.Repair {
		switch e.Kind {
		case LinkFault:
			g.RepairLinks = append(g.RepairLinks, topology.NormLink(e.A, e.B))
		case NodeFault:
			g.RepairNodes = append(g.RepairNodes, e.A)
		}
	}
	return g
}

// DeadChannelPairs returns the directed links the delta's Fail events
// kill, as routing.ChannelPair values over t — the argument to
// PlanCache.Invalidate. Repairs contribute nothing: a cached plan that
// avoided a link stays valid when the link returns. A VC fault maps to
// its directed link, over-invalidating the sibling classes of that
// direction — conservative, never unsafe.
func (d Delta) DeadChannelPairs(t topology.Topology) []uint64 {
	var pairs []uint64
	var buf []topology.NodeID
	for _, e := range d.Fail {
		switch e.Kind {
		case LinkFault:
			pairs = append(pairs,
				routing.ChannelPair(e.A, e.B), routing.ChannelPair(e.B, e.A))
		case NodeFault:
			buf = t.Neighbors(e.A, buf[:0])
			for _, w := range buf {
				pairs = append(pairs,
					routing.ChannelPair(e.A, w), routing.ChannelPair(w, e.A))
			}
		case VCFault:
			pairs = append(pairs, routing.ChannelPair(e.A, e.B))
		}
	}
	return pairs
}

// ApplyDelta folds a whole delta into the mask, Fail events first and
// Repair events second: for hardware both failed and repaired in one
// batch, the repair wins — the same order topology.LiveMasked.Apply uses,
// so the mask and the live graph can never disagree on a batch.
func (m *Mask) ApplyDelta(d Delta) {
	for _, e := range d.Fail {
		m.Apply(e)
	}
	for _, e := range d.Repair {
		m.Unapply(e)
	}
}

// DeadChannels enumerates the dfr channels of classes [0, maxClass) the
// delta's Fail events kill — the frontier for incremental CDG work.
func (d Delta) DeadChannels(t topology.Topology, maxClass int) []dfr.Channel {
	var out []dfr.Channel
	var buf []topology.NodeID
	addBoth := func(a, b topology.NodeID) {
		for cl := 0; cl < maxClass; cl++ {
			out = append(out,
				dfr.Channel{From: a, To: b, Class: cl},
				dfr.Channel{From: b, To: a, Class: cl})
		}
	}
	for _, e := range d.Fail {
		switch e.Kind {
		case LinkFault:
			addBoth(e.A, e.B)
		case NodeFault:
			buf = t.Neighbors(e.A, buf[:0])
			for _, w := range buf {
				addBoth(e.A, w)
			}
		case VCFault:
			out = append(out, dfr.Channel{From: e.A, To: e.B, Class: e.Class})
		}
	}
	return out
}
