package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one curve of a figure: a named sequence of (x, y) points.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	YError []float64 // optional 95% CI half-widths, nil when not tracked
}

// Add appends a point (without an error bar).
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// AddWithError appends a point with a confidence half-width.
func (s *Series) AddWithError(x, y, e float64) {
	if s.YError == nil {
		s.YError = make([]float64, len(s.X))
	}
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.YError = append(s.YError, e)
}

// At returns the y value at the given x, or NaN-free (0, false) when x is
// not a sample point.
func (s *Series) At(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Figure is a reproduced table or figure: a set of series over a shared
// x-axis, with captions matching the paper's.
type Figure struct {
	ID     string // e.g. "Fig 7.1"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries creates, registers, and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WriteTable renders the figure as an aligned text table: one row per
// distinct x, one column per series.
func (f *Figure) WriteTable(w io.Writer) error {
	xs := f.xValues()
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.At(x); ok {
				row = append(row, fmt.Sprintf("%.2f", y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the figure as CSV with an x column followed by one
// column per series.
func (f *Figure) WriteCSV(w io.Writer) error {
	xs := f.xValues()
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.At(x); ok {
				row = append(row, fmt.Sprintf("%g", y))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func (f *Figure) xValues() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
