package mcastsvc

import (
	"reflect"
	"testing"

	"multicastnet/internal/topology"
)

// TestBatchPlanDedup pins the batch dedup contract: a batch naming three
// distinct sets across ten requests (duplicates in permuted destination
// order) costs exactly three cache lookups — all misses on a cold cache,
// all hits on the next batch — and every request gets the plan of its
// canonical set, in input order.
func TestBatchPlanDedup(t *testing.T) {
	svc, err := New(Config{Topology: topology.NewMesh2D(8, 8), SchemeName: "dual-path"})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{Source: 0, Dests: []topology.NodeID{5, 9, 22}},
		{Source: 7, Dests: []topology.NodeID{1, 60}},
		{Source: 0, Dests: []topology.NodeID{22, 5, 9}}, // dup of 0, permuted
		{Source: 30, Dests: []topology.NodeID{31, 38, 29}},
		{Source: 0, Dests: []topology.NodeID{9, 22, 5}}, // dup of 0, permuted
		{Source: 7, Dests: []topology.NodeID{60, 1}},    // dup of 1, permuted
		{Source: 0, Dests: []topology.NodeID{5, 9, 22}}, // dup of 0, verbatim
		{Source: 30, Dests: []topology.NodeID{29, 31, 38}},
		{Source: 7, Dests: []topology.NodeID{1, 60}},
		{Source: 0, Dests: []topology.NodeID{22, 9, 5}},
	}
	const distinct = 3

	before := svc.CacheStats()
	plans, err := svc.BatchPlan(reqs)
	if err != nil {
		t.Fatal(err)
	}
	after := svc.CacheStats()
	if len(plans) != len(reqs) {
		t.Fatalf("got %d plans for %d requests", len(plans), len(reqs))
	}
	if miss := after.Misses - before.Misses; miss != distinct {
		t.Errorf("cold batch missed %d times, want %d (one per distinct set)", miss, distinct)
	}
	if hit := after.Hits - before.Hits; hit != 0 {
		t.Errorf("cold batch hit %d times, want 0", hit)
	}

	// Duplicates share their representative's plan; distinct sets differ.
	if !reflect.DeepEqual(plans[0], plans[2]) || !reflect.DeepEqual(plans[0], plans[6]) {
		t.Error("permuted duplicates did not share one plan")
	}
	if !reflect.DeepEqual(plans[1], plans[5]) || !reflect.DeepEqual(plans[3], plans[7]) {
		t.Error("duplicates of sets 1/3 did not share one plan")
	}
	if reflect.DeepEqual(plans[0], plans[1]) {
		t.Error("distinct sets returned equal plans")
	}
	// Each plan serves its own request's destinations.
	for i, p := range plans {
		if p.MaxDistance() <= 0 {
			t.Errorf("plan %d has no routes", i)
		}
	}

	// A repeat batch is pure cache hits — still one lookup per distinct set.
	mid := svc.CacheStats()
	again, err := svc.BatchPlan(reqs)
	if err != nil {
		t.Fatal(err)
	}
	end := svc.CacheStats()
	if hit := end.Hits - mid.Hits; hit != distinct {
		t.Errorf("warm batch hit %d times, want %d", hit, distinct)
	}
	if miss := end.Misses - mid.Misses; miss != 0 {
		t.Errorf("warm batch missed %d times, want 0", miss)
	}
	if !reflect.DeepEqual(plans, again) {
		t.Error("warm batch plans diverged from cold batch")
	}
}

// TestBatchPlanValidation pins whole-batch failure on any invalid request.
func TestBatchPlanValidation(t *testing.T) {
	svc, err := New(Config{Topology: topology.NewMesh2D(4, 4), SchemeName: "dual-path"})
	if err != nil {
		t.Fatal(err)
	}
	for _, reqs := range [][]Request{
		{{Source: 0, Dests: []topology.NodeID{99}}},   // out of range
		{{Source: 3, Dests: []topology.NodeID{3}}},    // source as dest
		{{Source: 0, Dests: []topology.NodeID{1, 1}}}, // duplicate dest
		{{Source: 0, Dests: nil}},                     // empty
		{{Source: 0, Dests: []topology.NodeID{1}}, {Source: -1, Dests: []topology.NodeID{1}}},
	} {
		if _, err := svc.BatchPlan(reqs); err == nil {
			t.Errorf("BatchPlan(%v) accepted an invalid batch", reqs)
		}
	}
	if plans, err := svc.BatchPlan(nil); err != nil || plans != nil {
		t.Errorf("empty batch: got %v, %v", plans, err)
	}
}
