package sched

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"multicastnet/internal/labeling"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

var (
	updateServeBench = flag.Bool("update-serve-bench", false,
		"rewrite ../../BENCH_serve.json from this machine's measurements")
	serveBenchCompare = flag.Bool("serve-bench-compare", false,
		"re-measure the serve window benchmark and warn (never fail) if it regressed >15% against the committed BENCH_serve.json")
)

const (
	benchWindowRequests = 256
	benchGroups         = 128
	benchMesh           = 64
)

// benchService builds a warm 64x64-mesh service and a request feeder for
// one steady-state window: every pool set already cached, arena and
// scratch grown.
func benchService(tb testing.TB) (*Service, func()) {
	m := topology.NewMesh2D(benchMesh, benchMesh)
	st := routing.NewStateWithLabeling(m, labeling.NewMeshBoustrophedon(m))
	r, err := routing.New("dual-path", st)
	if err != nil {
		tb.Fatal(err)
	}
	// Dual-path dilation on the 64x64 mesh runs ~150 cycles, so the
	// budget leaves ~70 of congestion headroom: most requests admit, a
	// tail defers, and MaxDefer=1 drains it next window so the backlog
	// holds a fixed point across benchmark iterations.
	s := New(Config{
		Router:   routing.Flat(r, routing.NewPlanCache(0)),
		Budget:   220,
		MaxDefer: 1,
	})
	poolRng := stats.NewRand(2)
	srcs := make([]topology.NodeID, benchGroups)
	dests := make([][]topology.NodeID, benchGroups)
	for g := range srcs {
		src := topology.NodeID(poolRng.Intn(m.Nodes()))
		raw := poolRng.Sample(m.Nodes(), 1+poolRng.Intn(9), int(src))
		ds := make([]topology.NodeID, len(raw))
		for i, v := range raw {
			ds[i] = topology.NodeID(v)
		}
		srcs[g], dests[g] = src, ds
	}
	window := func() {
		rng := stats.NewRand(23)
		for i := 0; i < benchWindowRequests; i++ {
			g := rng.Intn(benchGroups)
			if err := s.Submit(uint64(i), srcs[g], dests[g]); err != nil {
				tb.Fatal(err)
			}
		}
		s.CloseWindow()
	}
	for i := 0; i < 3; i++ {
		window() // warm the cache, arena, and load arrays
	}
	return s, window
}

// BenchmarkServeWindow measures one steady-state admission window:
// submit, dedup, plan (all cache hits), and congestion-pack 256 requests
// on the 64x64 mesh.
func BenchmarkServeWindow(b *testing.B) {
	_, window := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		window()
	}
}

type serveBaseline struct {
	Gomaxprocs     int     `json:"gomaxprocs"`
	WindowNsPerOp  float64 `json:"window_ns_per_op"`
	NsPerRequest   float64 `json:"ns_per_request"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	WindowRequests int     `json:"window_requests"`
	Groups         int     `json:"groups"`
	WorkloadMesh   string  `json:"workload_mesh"`
}

const serveBaselinePath = "../../BENCH_serve.json"

func measureServeWindow() serveBaseline {
	r := testing.Benchmark(BenchmarkServeWindow)
	return serveBaseline{
		Gomaxprocs:     runtime.GOMAXPROCS(0),
		WindowNsPerOp:  float64(r.NsPerOp()),
		NsPerRequest:   float64(r.NsPerOp()) / benchWindowRequests,
		AllocsPerOp:    r.AllocsPerOp(),
		WindowRequests: benchWindowRequests,
		Groups:         benchGroups,
		WorkloadMesh:   fmt.Sprintf("%dx%d", benchMesh, benchMesh),
	}
}

// TestWriteServeBenchBaseline regenerates the committed BENCH_serve.json
// when run with -update-serve-bench (see the Makefile's
// bench-serve-baseline target). Without the flag it only checks that the
// committed baseline parses.
func TestWriteServeBenchBaseline(t *testing.T) {
	if !*updateServeBench {
		data, err := os.ReadFile(serveBaselinePath)
		if err != nil {
			t.Fatalf("missing baseline (run make bench-serve-baseline): %v", err)
		}
		var b serveBaseline
		if err := json.Unmarshal(data, &b); err != nil {
			t.Fatalf("baseline does not parse: %v", err)
		}
		if b.WindowNsPerOp <= 0 || b.WindowRequests != benchWindowRequests {
			t.Fatalf("baseline implausible: %+v", b)
		}
		return
	}
	b := measureServeWindow()
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(serveBaselinePath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %+v", serveBaselinePath, b)
}

// TestServeBenchRegression is the warn-only gate: with
// -serve-bench-compare it re-measures the window benchmark and prints a
// warning — never a failure, since CI hosts are noisy — when the result
// is >15% slower than the committed baseline or allocates.
func TestServeBenchRegression(t *testing.T) {
	if !*serveBenchCompare {
		t.Skip("run with -serve-bench-compare (make bench-regression)")
	}
	data, err := os.ReadFile(serveBaselinePath)
	if err != nil {
		t.Skipf("no baseline: %v", err)
	}
	var base serveBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("baseline does not parse: %v", err)
	}
	got := measureServeWindow()
	fmt.Printf("serve-bench-compare: %.0f ns/window vs baseline %.0f (%.2fx), %d allocs/op\n",
		got.WindowNsPerOp, base.WindowNsPerOp, got.WindowNsPerOp/base.WindowNsPerOp, got.AllocsPerOp)
	if got.WindowNsPerOp > base.WindowNsPerOp*1.15 {
		fmt.Printf("serve-bench-compare: WARNING window slowed >15%% against baseline\n")
	}
	if got.AllocsPerOp > 0 {
		fmt.Printf("serve-bench-compare: WARNING steady-state window allocates (%d allocs/op)\n", got.AllocsPerOp)
	}
}
