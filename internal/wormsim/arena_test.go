package wormsim

import (
	"testing"

	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// arenaWorkload precomputes a mixed path/tree injection workload on an
// 8x8 mesh so the measurement loop exercises only the simulator — no
// routing, no cache keys, no workload generation.
func arenaWorkload(t testing.TB) (*topology.Mesh2D, []routing.Plan) {
	t.Helper()
	m := topology.NewMesh2D(8, 8)
	st, err := routing.SharedState(m)
	if err != nil {
		t.Fatal(err)
	}
	var plans []routing.Plan
	for _, w := range []struct {
		scheme string
		src    topology.NodeID
		dests  []topology.NodeID
	}{
		{"dual-path", 0, []topology.NodeID{9, 18, 27, 36, 63}},
		{"tree", 5, []topology.NodeID{12, 21, 30, 39, 60}},
		{"multi-path", 63, []topology.NodeID{0, 7, 28, 56}},
		{"tree", 36, []topology.NodeID{0, 7, 56, 63}},
		{"dual-path", 28, []topology.NodeID{1, 34, 62}},
	} {
		r, err := routing.New(w.scheme, st)
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.Plan(w.src, w.dests)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	return m, plans
}

// TestSteadyStateAllocationFree pins the arena contract on both
// engines: once slice capacities, the intern table, the worm freelist
// and the epoch-stamped scratch have warmed up, an inject-and-drain
// round allocates nothing — worms, multicast records, tree levels and
// wake lists are all recycled. The round includes a mid-drain FailWhere
// activation (fault-killing worms on first contact in later rounds) and
// an invariant check after every cycle, so the fault path's victim
// scratch and the checker's slice-indexed scratch are held to the same
// zero-alloc bar as the hot loop.
func TestSteadyStateAllocationFree(t *testing.T) {
	m, plans := arenaWorkload(t)
	// A channel held by in-flight worms three cycles into the drain (on
	// every virtual-channel class). The pred never captures, so
	// activating it allocates nothing.
	crossFault := func(c dfr.Channel) bool { return c.From == 36 && c.To == 37 }
	for _, shards := range []int{0, 4} {
		net := NewNetwork(m)
		if shards > 1 {
			net.SetShards(shards)
			defer net.Close()
		}
		// Each activation appends its pred to the standing fault list;
		// that bounded, amortized growth is driver state, not round
		// state, so pre-size it to keep the measurement on the scratch.
		net.deadPreds = make([]func(dfr.Channel) bool, 0, 64)
		lost := 0
		net.OnLost(func(topology.NodeID, int) { lost++ })
		round := func() {
			for _, p := range plans {
				net.InjectMulticast(p.Paths, p.Trees, 16)
			}
			for i := 0; net.ActiveWorms() > 0; i++ {
				if i == 3 {
					net.FailWhere(crossFault)
				}
				net.Step()
				if err := net.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 4; i++ {
			round() // warm capacities, the freelist and the scratch
		}
		if avg := testing.AllocsPerRun(20, round); avg > 0 {
			t.Errorf("shards=%d: steady-state round allocates %.1f objects, want 0", shards, avg)
		}
		if lost == 0 {
			t.Errorf("shards=%d: fault never killed a delivery; the round is not exercising the fault path", shards)
		}
	}
}
