package topology

import (
	"sort"
	"testing"
	"testing/quick"
)

// allTopologies returns a representative set of small topologies for
// generic interface tests.
func allTopologies() []Topology {
	return []Topology{
		NewMesh2D(4, 4),
		NewMesh2D(6, 3),
		NewMesh2D(1, 5),
		NewMesh3D(3, 3, 3),
		NewMesh3D(2, 4, 3),
		NewHypercube(3),
		NewHypercube(5),
		NewKAryNCube(4, 2),
		NewKAryNCube(3, 3),
		Ring(7),
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	for _, topo := range allTopologies() {
		var buf []NodeID
		for v := NodeID(0); int(v) < topo.Nodes(); v++ {
			buf = topo.Neighbors(v, buf[:0])
			for _, w := range buf {
				if w == v {
					t.Errorf("%s: node %d is its own neighbor", topo.Name(), v)
				}
				if !topo.Adjacent(v, w) {
					t.Errorf("%s: Neighbors(%d) includes %d but Adjacent is false", topo.Name(), v, w)
				}
				back := topo.Neighbors(w, nil)
				found := false
				for _, u := range back {
					if u == v {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: adjacency not symmetric between %d and %d", topo.Name(), v, w)
				}
			}
		}
	}
}

func TestNeighborsDistinct(t *testing.T) {
	for _, topo := range allTopologies() {
		for v := NodeID(0); int(v) < topo.Nodes(); v++ {
			ns := topo.Neighbors(v, nil)
			if len(ns) > topo.MaxDegree() {
				t.Errorf("%s: node %d has %d neighbors, max degree %d",
					topo.Name(), v, len(ns), topo.MaxDegree())
			}
			sorted := append([]NodeID(nil), ns...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for i := 1; i < len(sorted); i++ {
				if sorted[i] == sorted[i-1] {
					t.Errorf("%s: node %d has duplicate neighbor %d", topo.Name(), v, sorted[i])
				}
			}
		}
	}
}

// bfsDistance computes the true graph distance for validation.
func bfsDistance(topo Topology, src NodeID) []int {
	dist := make([]int, topo.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	var buf []NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		buf = topo.Neighbors(u, buf[:0])
		for _, v := range buf {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func TestDistanceMatchesBFS(t *testing.T) {
	for _, topo := range allTopologies() {
		for src := NodeID(0); int(src) < topo.Nodes(); src += NodeID(topo.Nodes()/7 + 1) {
			dist := bfsDistance(topo, src)
			for v := NodeID(0); int(v) < topo.Nodes(); v++ {
				if got := topo.Distance(src, v); got != dist[v] {
					t.Fatalf("%s: Distance(%d,%d)=%d, BFS says %d", topo.Name(), src, v, got, dist[v])
				}
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	for _, topo := range allTopologies() {
		want := 0
		for src := NodeID(0); int(src) < topo.Nodes(); src++ {
			for _, d := range bfsDistance(topo, src) {
				if d > want {
					want = d
				}
			}
		}
		if got := topo.Diameter(); got != want {
			t.Errorf("%s: Diameter()=%d, exhaustive says %d", topo.Name(), got, want)
		}
	}
}

func TestMesh2DCoordinates(t *testing.T) {
	m := NewMesh2D(5, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 5; x++ {
			id := m.ID(x, y)
			gx, gy := m.XY(id)
			if gx != x || gy != y {
				t.Fatalf("roundtrip (%d,%d) -> %d -> (%d,%d)", x, y, id, gx, gy)
			}
		}
	}
	if m.ID(4, 2) != NodeID(14) {
		t.Errorf("ID(4,2)=%d, want 14", m.ID(4, 2))
	}
}

func TestMesh3DCoordinates(t *testing.T) {
	m := NewMesh3D(3, 4, 2)
	for z := 0; z < 2; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 3; x++ {
				id := m.ID(x, y, z)
				gx, gy, gz := m.XYZ(id)
				if gx != x || gy != y || gz != z {
					t.Fatalf("roundtrip (%d,%d,%d) -> %d -> (%d,%d,%d)", x, y, z, id, gx, gy, gz)
				}
			}
		}
	}
}

func TestHypercubeDistanceIsHamming(t *testing.T) {
	h := NewHypercube(4)
	if d := h.Distance(0b0011, 0b1100); d != 4 {
		t.Errorf("Distance(0011,1100)=%d, want 4", d)
	}
	if d := h.Distance(0b1010, 0b1000); d != 1 {
		t.Errorf("Distance(1010,1000)=%d, want 1", d)
	}
}

func TestKAryNCubeDigits(t *testing.T) {
	c := NewKAryNCube(4, 3)
	for v := NodeID(0); int(v) < c.Nodes(); v++ {
		d := c.Digits(v)
		if got := c.FromDigits(d); got != v {
			t.Fatalf("digit roundtrip %d -> %v -> %d", v, d, got)
		}
	}
}

func TestKAryNCubeIsHypercubeWhenK2(t *testing.T) {
	c := NewKAryNCube(2, 4)
	h := NewHypercube(4)
	if c.Nodes() != h.Nodes() {
		t.Fatalf("node counts differ")
	}
	for u := NodeID(0); int(u) < c.Nodes(); u++ {
		for v := NodeID(0); int(v) < c.Nodes(); v++ {
			if c.Distance(u, v) != h.Distance(u, v) {
				t.Fatalf("distance mismatch at (%d,%d)", u, v)
			}
		}
	}
}

// nearestRegionBrute exhaustively finds the node on a shortest s-t path
// nearest to u.
func nearestRegionBrute(topo Topology, s, t, u NodeID) int {
	dS := bfsDistance(topo, s)
	dT := bfsDistance(topo, t)
	dU := bfsDistance(topo, u)
	best := -1
	for v := 0; v < topo.Nodes(); v++ {
		if dS[v]+dT[v] == dS[t] {
			if best < 0 || dU[v] < best {
				best = dU[v]
			}
		}
	}
	return best
}

func TestNearestOnShortestPaths(t *testing.T) {
	cases := []Topology{NewMesh2D(5, 4), NewHypercube(4), NewMesh3D(3, 3, 2)}
	for _, topo := range cases {
		region := topo.(ShortestRegion)
		n := topo.Nodes()
		step := n/11 + 1
		for s := NodeID(0); int(s) < n; s += NodeID(step) {
			for d := NodeID(0); int(d) < n; d += NodeID(step + 1) {
				for u := NodeID(0); int(u) < n; u += NodeID(step + 2) {
					v := region.NearestOnShortestPaths(s, d, u)
					// v must lie on a shortest s-d path.
					if topo.Distance(s, v)+topo.Distance(v, d) != topo.Distance(s, d) {
						t.Fatalf("%s: NearestOnShortestPaths(%d,%d,%d)=%d not on a shortest path",
							topo.Name(), s, d, u, v)
					}
					// and be the closest such node to u.
					want := nearestRegionBrute(topo, s, d, u)
					if got := topo.Distance(u, v); got != want {
						t.Fatalf("%s: NearestOnShortestPaths(%d,%d,%d) at distance %d, optimum %d",
							topo.Name(), s, d, u, got, want)
					}
				}
			}
		}
	}
}

func TestHypercubeRegionProperty(t *testing.T) {
	h := NewHypercube(6)
	f := func(s, d, u uint8) bool {
		sn := NodeID(s) % NodeID(h.Nodes())
		dn := NodeID(d) % NodeID(h.Nodes())
		un := NodeID(u) % NodeID(h.Nodes())
		v := h.NearestOnShortestPaths(sn, dn, un)
		return h.Distance(sn, v)+h.Distance(v, dn) == h.Distance(sn, dn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { NewMesh2D(0, 3) },
		func() { NewMesh3D(2, 0, 2) },
		func() { NewHypercube(0) },
		func() { NewKAryNCube(1, 3) },
		func() { NewMesh2D(3, 3).ID(3, 0) },
		func() { NewMesh2D(3, 3).XY(9) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRingWraparound(t *testing.T) {
	r := Ring(5)
	if !r.Adjacent(0, 4) {
		t.Error("ring ends should be adjacent")
	}
	if d := r.Distance(0, 3); d != 2 {
		t.Errorf("ring distance 0-3 = %d, want 2 (wraparound)", d)
	}
	if got := len(r.Neighbors(0, nil)); got != 2 {
		t.Errorf("ring node has %d neighbors, want 2", got)
	}
}

func TestKAryNCubeK2NoDuplicateNeighbors(t *testing.T) {
	// With k=2, +1 and -1 coincide; Neighbors must not list them twice.
	c := NewKAryNCube(2, 3)
	for v := NodeID(0); int(v) < c.Nodes(); v++ {
		if got := len(c.Neighbors(v, nil)); got != 3 {
			t.Fatalf("node %d has %d neighbors, want 3", v, got)
		}
	}
}
