package experiments

import (
	"strings"
	"sync/atomic"
	"testing"

	"multicastnet/internal/stats"
)

// TestRunSweepCommitOrder checks the determinism contract directly:
// Run stages may finish in any order, but Commit always executes
// sequentially in declaration order.
func TestRunSweepCommitOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var running atomic.Int32
		var order []int
		var points []SweepPoint
		for i := 0; i < 20; i++ {
			i := i
			points = append(points, SweepPoint{
				Run: func() any {
					running.Add(1)
					defer running.Add(-1)
					return i * i
				},
				Commit: func(v any) {
					if got := running.Load(); got != 0 {
						t.Errorf("workers=%d: commit ran with %d Run stages active", workers, got)
					}
					if v.(int) != i*i {
						t.Errorf("workers=%d: point %d got result %v", workers, i, v)
					}
					order = append(order, i)
				},
			})
		}
		RunSweep(points, workers)
		for i, got := range order {
			if got != i {
				t.Fatalf("workers=%d: commit order %v", workers, order)
			}
		}
	}
}

// TestSweepParallelDeterminism is the figure-level regression test: a
// dynamic figure rendered with one worker and with four workers must be
// byte-identical, since every point's simulation seeds its own RNG from
// the same derived seed regardless of which goroutine runs it.
func TestSweepParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		o := DynamicOptions{
			Seed: 7, MaxCycles: 30_000, Warmup: 100, BatchSize: 100,
			Parallel: workers,
			Loads:    []float64{1000, 400},
			Dests:    []int{5, 20},
		}
		var sb strings.Builder
		for _, fig := range []*stats.Figure{
			Fig710LatencyVsLoadSingle(o),
			Fig711LatencyVsDestsSingle(o),
			ExtUnicastMix(o),
		} {
			if err := fig.WriteTable(&sb); err != nil {
				t.Fatal(err)
			}
		}
		return sb.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("parallel sweep diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "dual-path") {
		t.Fatalf("rendered figure looks empty:\n%s", seq)
	}
}
