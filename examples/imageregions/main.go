// Image-region broadcast: the image-processing scenario of Section 1.2.
//
// A 256x256 image is block-partitioned over a 16x16 mesh multicomputer,
// one 16x16 tile per node. A parallel connected-component labeling pass
// runs locally in each tile; whenever a component touches a tile
// boundary, the owning node must tell every other node holding part of
// that component about the label merge — a multicast whose destination
// set is the component's tile footprint.
//
// The example synthesizes an image of rectangular blobs, derives the
// per-blob multicast sets, routes them with dual-path, multi-path, and
// the X-first tree, and compares total traffic and worst-case delivery
// distance; it finishes with a dynamic simulation of the merge phase.
package main

import (
	"fmt"
	"log"

	"multicastnet"
)

const (
	meshSide = 16
	tile     = 16 // pixels per tile side
	imgSide  = meshSide * tile
)

// blob is a rectangular image feature in pixel coordinates.
type blob struct {
	x0, y0, x1, y1 int
}

// tiles returns the mesh nodes whose tiles the blob overlaps.
func (b blob) tiles(m *multicastnet.Mesh2D) []multicastnet.NodeID {
	var out []multicastnet.NodeID
	for ty := b.y0 / tile; ty <= (b.y1-1)/tile; ty++ {
		for tx := b.x0 / tile; tx <= (b.x1-1)/tile; tx++ {
			out = append(out, m.ID(tx, ty))
		}
	}
	return out
}

func main() {
	sys, err := multicastnet.NewMeshSystem(meshSide, meshSide)
	if err != nil {
		log.Fatal(err)
	}
	mesh := sys.Topology().(*multicastnet.Mesh2D)

	// Synthetic features: a few large structures spanning many tiles and
	// a scatter of small ones, as a segmented sensor image would give.
	blobs := []blob{
		{10, 10, 250, 40},    // wide horizontal band
		{30, 60, 60, 240},    // tall vertical band
		{100, 100, 180, 180}, // central square
		{200, 150, 255, 255}, // corner region
		{70, 20, 90, 50},
		{140, 30, 170, 70},
		{20, 130, 50, 160},
		{190, 60, 230, 90},
		{120, 200, 160, 230},
		{60, 190, 90, 220},
	}

	fmt.Printf("image %dx%d on a %s, %d features\n\n", imgSide, imgSide, mesh.Name(), len(blobs))
	fmt.Println("feature  tiles  dual-path       multi-path      x-first-tree    one-to-one")

	var totDual, totMulti, totTree, totUni int
	for i, b := range blobs {
		footprint := b.tiles(mesh)
		if len(footprint) < 2 {
			continue // single-tile feature: no merge traffic
		}
		// The owner is the tile containing the feature's top-left pixel;
		// it multicasts the merge record to the rest of the footprint.
		src := footprint[0]
		dests := footprint[1:]
		k, err := sys.Set(src, dests...)
		if err != nil {
			log.Fatal(err)
		}
		dual := sys.DualPath(k)
		multi, err := sys.MultiPath(k)
		if err != nil {
			log.Fatal(err)
		}
		xf, err := sys.XFirstMT(k)
		if err != nil {
			log.Fatal(err)
		}
		uni := sys.MultiUnicastTraffic(k)
		fmt.Printf("%7d  %5d  %3d ch %3d hops  %3d ch %3d hops  %3d ch %3d hops  %3d ch\n",
			i, len(footprint),
			dual.Traffic(), dual.MaxDistance(),
			multi.Traffic(), multi.MaxDistance(),
			xf.Links, xf.MaxDepth(), uni)
		totDual += dual.Traffic()
		totMulti += multi.Traffic()
		totTree += xf.Links
		totUni += uni
	}
	fmt.Printf("\ntotals: dual-path %d, multi-path %d, x-first tree %d, one-to-one %d channels\n",
		totDual, totMulti, totTree, totUni)

	// Dynamic merge phase: nodes fire merge multicasts concurrently.
	// Dual-path keeps the phase deadlock-free under contention.
	res, err := multicastnet.Simulate(multicastnet.SimConfig{
		Topology:               mesh,
		Route:                  sys.DualPathRouteFunc(),
		MeanInterarrivalMicros: 200,
		AvgDests:               6, // typical footprint size above
		MessageBytes:           32,
		Seed:                   7,
		WarmupDeliveries:       500,
		BatchSize:              500,
		MaxCycles:              400_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merge-phase simulation: avg merge-record latency %.1f us over %d deliveries, deadlocked=%v\n",
		res.AvgLatencyMicros, res.Deliveries, res.Deadlocked)
}
