package routing

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

func testRouter(t *testing.T, name string) (Router, *State, topology.Topology) {
	t.Helper()
	m := topology.NewMesh2D(6, 6)
	st, err := NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(name, st)
	if err != nil {
		t.Fatal(err)
	}
	return r, st, m
}

func TestCacheHitsAndEquality(t *testing.T) {
	r, _, m := testRouter(t, "dual-path")
	c := NewPlanCache(64)
	cr := Cached(r, c)
	k := core.MustMulticastSet(m, 3, []topology.NodeID{10, 20, 30})
	first := cr.PlanSet(k)
	second := cr.PlanSet(k)
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("Stats() = (%d hits, %d misses), want (1, 1)", st.Hits, st.Misses)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached plan differs from computed plan")
	}
	if !reflect.DeepEqual(first, r.PlanSet(k)) {
		t.Fatal("cached plan differs from the uncached router's plan")
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
}

func TestCacheCanonicalizesDestOrder(t *testing.T) {
	r, _, m := testRouter(t, "dual-path")
	c := NewPlanCache(64)
	cr := Cached(r, c)
	a := core.MustMulticastSet(m, 3, []topology.NodeID{10, 20, 30})
	b := core.MustMulticastSet(m, 3, []topology.NodeID{30, 10, 20})
	cr.PlanSet(a)
	cr.PlanSet(b)
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("reordered destinations missed the cache (hits = %d)", st.Hits)
	}
}

func TestCacheNamespacesByRouterID(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	st, err := NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	c := NewPlanCache(64)
	dual, _ := New("dual-path", st)
	fixed, _ := New("fixed-path", st)
	k := core.MustMulticastSet(m, 3, []topology.NodeID{10, 20, 30})
	p1 := Cached(dual, c).PlanSet(k)
	p2 := Cached(fixed, c).PlanSet(k)
	if reflect.DeepEqual(p1, p2) {
		t.Fatal("dual-path and fixed-path returned identical plans — ID namespacing untestable")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("expected 2 misses for 2 schemes, got %d", st.Misses)
	}
	if !reflect.DeepEqual(Cached(fixed, c).PlanSet(k), p2) {
		t.Fatal("fixed-path plan corrupted by dual-path entry")
	}
}

func TestCacheBounded(t *testing.T) {
	r, _, m := testRouter(t, "dual-path")
	capacity := 32
	c := NewPlanCache(capacity)
	cr := Cached(r, c)
	rng := stats.NewRand(11)
	for i := 0; i < 500; i++ {
		cr.PlanSet(randomSet(m, rng, 1+rng.Intn(8)))
	}
	if c.Len() > capacity {
		t.Fatalf("cache grew to %d entries, capacity %d", c.Len(), capacity)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewPlanCache(0)
	if c.perShard*cacheShards < 4096 {
		t.Fatalf("default capacity %d < 4096", c.perShard*cacheShards)
	}
}

func TestCachedPlanValidatesSet(t *testing.T) {
	r, _, _ := testRouter(t, "dual-path")
	cr := Cached(r, NewPlanCache(8))
	if _, err := cr.Plan(0, []topology.NodeID{0}); err == nil {
		t.Error("cached Plan accepted the source as a destination")
	}
	if _, err := cr.Plan(0, []topology.NodeID{4, 8}); err != nil {
		t.Error(err)
	}
}

func TestCachedLiveRouterBypassesCache(t *testing.T) {
	r, _, m := testRouter(t, "adaptive-dual-path")
	c := NewPlanCache(64)
	cr := Cached(r, c)
	lr, ok := cr.(LiveRouter)
	if !ok {
		t.Fatal("Cached dropped the LiveRouter interface")
	}
	k := core.MustMulticastSet(m, 3, []topology.NodeID{10, 20, 30})
	lr.PlanLive(k, dfr.IdleOracle())
	lr.PlanLive(k, dfr.IdleOracle())
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("PlanLive touched the cache: (%d hits, %d misses)", st.Hits, st.Misses)
	}
	cr.PlanSet(k)
	cr.PlanSet(k)
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("deterministic PlanSet not cached: (%d hits, %d misses)", st.Hits, st.Misses)
	}
}

func TestCachedRouterNotLiveForDeterministicSchemes(t *testing.T) {
	r, _, _ := testRouter(t, "dual-path")
	if _, ok := Cached(r, NewPlanCache(8)).(LiveRouter); ok {
		t.Fatal("Cached invented a LiveRouter from a deterministic scheme")
	}
}

func TestCacheConcurrent(t *testing.T) {
	r, _, m := testRouter(t, "dual-path")
	c := NewPlanCache(128)
	cr := Cached(r, c)
	sets := make([]core.MulticastSet, 64)
	rng := stats.NewRand(23)
	for i := range sets {
		sets[i] = randomSet(m, rng, 1+rng.Intn(8))
	}
	want := make([]Plan, len(sets))
	for i, k := range sets {
		want[i] = r.PlanSet(k)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := (g*31 + i) % len(sets)
				got := cr.PlanSet(sets[idx])
				if !reflect.DeepEqual(got, want[idx]) {
					t.Errorf("concurrent plan %d diverged", idx)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 {
		t.Error("concurrent workload produced no cache hits")
	}
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}

// TestPlanCacheStatsConcurrent hammers one cache from three directions at
// once — planners, targeted (and full) invalidation, and Stats readers —
// and checks that every Stats snapshot is consistent: counters only grow,
// and after the dust settles hits+misses equals exactly the number of
// lookups issued. Run under -race this also proves the snapshot path
// takes no lock the mutators miss.
func TestPlanCacheStatsConcurrent(t *testing.T) {
	r, _, m := testRouter(t, "dual-path")
	c := NewPlanCache(128)
	cr := Cached(r, c)
	sets := make([]core.MulticastSet, 64)
	rng := stats.NewRand(41)
	for i := range sets {
		sets[i] = randomSet(m, rng, 1+rng.Intn(8))
	}

	const planners, iters = 6, 500
	var done atomic.Bool
	var wg, aux sync.WaitGroup
	for g := 0; g < planners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cr.PlanSet(sets[(g*17+i)%len(sets)])
			}
		}(g)
	}
	aux.Add(1)
	go func() { // invalidator: the fault-delta path racing the planners
		defer aux.Done()
		irng := stats.NewRand(7)
		for i := 0; !done.Load(); i++ {
			if i%8 == 7 {
				c.InvalidateAll()
				continue
			}
			pairs := make([]uint64, 0, 4)
			for j := 0; j < 4; j++ {
				u := topology.NodeID(irng.Intn(m.Nodes() - 1))
				pairs = append(pairs, ChannelPair(u, u+1), ChannelPair(u+1, u))
			}
			c.Invalidate(pairs)
		}
	}()
	aux.Add(1)
	go func() { // stats reader: snapshots must be monotone
		defer aux.Done()
		var prev CacheStats
		for !done.Load() {
			s := c.Stats()
			if s.Hits < prev.Hits || s.Misses < prev.Misses ||
				s.Evictions < prev.Evictions || s.Invalidations < prev.Invalidations {
				t.Errorf("stats went backwards: %+v after %+v", s, prev)
				return
			}
			prev = s
		}
	}()
	wg.Wait()
	done.Store(true)
	aux.Wait()

	st := c.Stats()
	if got, want := st.Hits+st.Misses, uint64(planners*iters); got != want {
		t.Errorf("hits+misses = %d, want %d lookups", got, want)
	}
	// On a single-core scheduler the racing invalidator may never catch a
	// live entry; pin the eviction accounting deterministically instead.
	c.PutPlan("hammer", sets[0], r.PlanSet(sets[0]))
	if c.InvalidateAll() == 0 {
		t.Error("InvalidateAll evicted nothing despite a cached plan")
	}
	if got := c.Stats().Invalidations; got == 0 {
		t.Error("invalidations counter did not advance")
	}
}
