// Package experiments regenerates every table and figure of the
// dissertation's evaluation (Chapter 7, plus the worked tables of
// Chapter 5 and the switching comparison of Fig. 2.3). Each runner
// returns a stats.Figure whose series carry the same curves the paper
// plots; cmd/mcfigures renders them, and the root bench_test.go exposes
// one benchmark per figure.
package experiments

import (
	"multicastnet/internal/core"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/labeling"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// Options scales experiment cost: Reps is the number of random multicast
// sets per destination count (the paper uses 1000); Seed fixes the
// workload.
type Options struct {
	Reps int
	Seed uint64
}

// Defaults returns the paper's parameters.
func Defaults() Options { return Options{Reps: 1000, Seed: 1990} }

// Quick returns reduced-cost options for benchmarks and smoke tests.
func Quick() Options { return Options{Reps: 25, Seed: 1990} }

func (o Options) reps() int {
	if o.Reps <= 0 {
		return 1000
	}
	return o.Reps
}

// KValuesMesh1024 is the destination-count sweep of Figures 7.1/7.3
// (1 to 900 destinations on 1024 nodes).
var KValuesMesh1024 = []int{1, 2, 5, 10, 20, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900}

// KValuesSmall is the sweep used on the 256- and 64-node topologies.
var KValuesSmall = []int{1, 2, 5, 10, 15, 20, 30, 40, 50, 60}

// randomSet draws a uniform multicast set with k destinations, mapping
// integers to node addresses exactly as Section 7.1 describes.
func randomSet(t topology.Topology, rng *stats.Rand, k int) core.MulticastSet {
	src := topology.NodeID(rng.Intn(t.Nodes()))
	raw := rng.Sample(t.Nodes(), k, int(src))
	dests := make([]topology.NodeID, k)
	for i, v := range raw {
		dests[i] = topology.NodeID(v)
	}
	return core.MustMulticastSet(t, src, dests)
}

// additionalTraffic is the paper's metric: total traffic minus the k
// units any 1-to-k multicast must spend.
func additionalTraffic(total, k int) float64 { return float64(total - k) }

// staticSweep runs reps random sets per k for each named algorithm and
// fills one series per algorithm with the mean additional traffic.
func staticSweep(fig *stats.Figure, t topology.Topology, ks []int, opts Options,
	algos map[string]func(core.MulticastSet) int, order []string) {
	series := make(map[string]*stats.Series, len(order))
	for _, name := range order {
		series[name] = fig.AddSeries(name)
	}
	rng := stats.NewRand(opts.Seed)
	for _, k := range ks {
		if k > t.Nodes()-1 {
			continue
		}
		sums := make(map[string]float64, len(order))
		for rep := 0; rep < opts.reps(); rep++ {
			set := randomSet(t, rng, k)
			for _, name := range order {
				sums[name] += additionalTraffic(algos[name](set), k)
			}
		}
		for _, name := range order {
			series[name].Add(float64(k), sums[name]/float64(opts.reps()))
		}
	}
}

// Fig71SortedMPMesh reproduces Fig. 7.1: sorted MP vs multiple one-to-one
// and broadcast on a 32x32 mesh.
func Fig71SortedMPMesh(opts Options) *stats.Figure {
	m := topology.NewMesh2D(32, 32)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		panic(err)
	}
	fig := &stats.Figure{ID: "Fig 7.1", Title: "Sorted MP algorithm on a 32x32 mesh",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, m, KValuesMesh1024, opts, map[string]func(core.MulticastSet) int{
		"one-to-one": func(k core.MulticastSet) int { return heuristics.MultiUnicastTraffic(m, k) },
		"broadcast":  func(k core.MulticastSet) int { return heuristics.BroadcastTraffic(m) },
		"sorted MP":  func(k core.MulticastSet) int { return heuristics.SortedMP(m, c, k).Traffic() },
	}, []string{"one-to-one", "broadcast", "sorted MP"})
	return fig
}

// Fig72SortedMPCube reproduces Fig. 7.2: sorted MP on a 10-cube.
func Fig72SortedMPCube(opts Options) *stats.Figure {
	h := topology.NewHypercube(10)
	c, err := labeling.CubeHamiltonCycle(h)
	if err != nil {
		panic(err)
	}
	fig := &stats.Figure{ID: "Fig 7.2", Title: "Sorted MP algorithm on a 10-cube",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, h, KValuesMesh1024, opts, map[string]func(core.MulticastSet) int{
		"one-to-one": func(k core.MulticastSet) int { return heuristics.MultiUnicastTraffic(h, k) },
		"broadcast":  func(k core.MulticastSet) int { return heuristics.BroadcastTraffic(h) },
		"sorted MP":  func(k core.MulticastSet) int { return heuristics.SortedMP(h, c, k).Traffic() },
	}, []string{"one-to-one", "broadcast", "sorted MP"})
	return fig
}

// Fig73GreedySTMesh reproduces Fig. 7.3: greedy ST on a 32x32 mesh.
func Fig73GreedySTMesh(opts Options) *stats.Figure {
	m := topology.NewMesh2D(32, 32)
	fig := &stats.Figure{ID: "Fig 7.3", Title: "Greedy ST algorithm on a 32x32 mesh",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, m, KValuesMesh1024, opts, map[string]func(core.MulticastSet) int{
		"one-to-one": func(k core.MulticastSet) int { return heuristics.MultiUnicastTraffic(m, k) },
		"broadcast":  func(k core.MulticastSet) int { return heuristics.BroadcastTraffic(m) },
		"greedy ST":  func(k core.MulticastSet) int { return heuristics.GreedySTCarried(m, k).Links },
	}, []string{"one-to-one", "broadcast", "greedy ST"})
	return fig
}

// Fig74GreedySTCube reproduces Fig. 7.4: greedy ST vs the LEN heuristic
// [20] on a 10-cube.
func Fig74GreedySTCube(opts Options) *stats.Figure {
	h := topology.NewHypercube(10)
	fig := &stats.Figure{ID: "Fig 7.4", Title: "Greedy ST algorithm vs LEN on a 10-cube",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, h, KValuesMesh1024, opts, map[string]func(core.MulticastSet) int{
		"LEN":       func(k core.MulticastSet) int { return heuristics.LEN(h, k).Links },
		"greedy ST": func(k core.MulticastSet) int { return heuristics.GreedySTCarried(h, k).Links },
	}, []string{"LEN", "greedy ST"})
	return fig
}

// Fig75MTMesh reproduces Fig. 7.5: X-first vs divided greedy on a 16x16
// mesh, with the one-to-one and broadcast baselines of the text.
func Fig75MTMesh(opts Options) *stats.Figure {
	m := topology.NewMesh2D(16, 16)
	fig := &stats.Figure{ID: "Fig 7.5", Title: "X-first and divided greedy algorithms on a 16x16 mesh",
		XLabel: "destinations", YLabel: "additional traffic"}
	ks := []int{1, 2, 5, 10, 20, 40, 60, 80, 100, 140, 180, 220}
	staticSweep(fig, m, ks, opts, map[string]func(core.MulticastSet) int{
		"one-to-one":     func(k core.MulticastSet) int { return heuristics.MultiUnicastTraffic(m, k) },
		"broadcast":      func(k core.MulticastSet) int { return heuristics.BroadcastTraffic(m) },
		"X-first":        func(k core.MulticastSet) int { return heuristics.XFirstMT(m, k).Links },
		"divided greedy": func(k core.MulticastSet) int { return heuristics.DividedGreedyMT(m, k).Links },
	}, []string{"one-to-one", "broadcast", "X-first", "divided greedy"})
	return fig
}

// Fig76PathTrafficCube reproduces Fig. 7.6: additional traffic of the
// deadlock-free path schemes on a 6-cube.
func Fig76PathTrafficCube(opts Options) *stats.Figure {
	h := topology.NewHypercube(6)
	fig := &stats.Figure{ID: "Fig 7.6", Title: "Multicast methods on a 6-cube",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, h, KValuesSmall, opts, registryTraffic(mustState(h),
		"dual-path", "multi-path", "fixed-path"),
		[]string{"dual-path", "multi-path", "fixed-path"})
	return fig
}

// Fig77PathTrafficMesh reproduces Fig. 7.7: additional traffic of the
// path schemes on an 8x8 mesh.
func Fig77PathTrafficMesh(opts Options) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	fig := &stats.Figure{ID: "Fig 7.7", Title: "Multicast methods on an 8x8 mesh",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, m, KValuesSmall, opts, registryTraffic(mustState(m),
		"dual-path", "multi-path", "fixed-path"),
		[]string{"dual-path", "multi-path", "fixed-path"})
	return fig
}

// registryTraffic builds one traffic-counting closure per registry
// scheme name, all sharing one precomputed topology state.
func registryTraffic(st *routing.State, names ...string) map[string]func(core.MulticastSet) int {
	out := make(map[string]func(core.MulticastSet) int, len(names))
	for _, name := range names {
		r := mustRouter(name, st, routing.Options{})
		out[name] = func(k core.MulticastSet) int { return r.PlanSet(k).Traffic() }
	}
	return out
}

// AblationLabeling compares the average dual-path traffic on a 16x16 mesh
// under three Hamiltonian labelings — the paper's boustrophedon, the
// transposed serpentine, and the comb cycle of Table 5.1 used as a path —
// quantifying the Fig. 6.10 observation that Hamilton-path selection
// matters.
func AblationLabeling(opts Options) *stats.Figure {
	m := topology.NewMesh2D(16, 16)
	comb, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		panic(err)
	}
	labelings := []struct {
		name string
		l    labeling.Labeling
	}{
		{"boustrophedon", labeling.NewMeshBoustrophedon(m)},
		{"column-major", labeling.NewMeshColumnMajor(m)},
		{"comb cycle", labeling.PathLabeling{Cycle: comb}},
	}
	fig := &stats.Figure{ID: "Ablation A", Title: "Dual-path traffic under different Hamilton labelings (16x16 mesh)",
		XLabel: "destinations", YLabel: "additional traffic"}
	algos := make(map[string]func(core.MulticastSet) int, len(labelings))
	var order []string
	for _, entry := range labelings {
		r := mustRouter("dual-path", routing.NewStateWithLabeling(m, entry.l), routing.Options{})
		algos[entry.name] = func(k core.MulticastSet) int { return r.PlanSet(k).Traffic() }
		order = append(order, entry.name)
	}
	staticSweep(fig, m, KValuesSmall, opts, algos, order)
	return fig
}

// AblationDestinationOrder compares sorted-by-label visiting against the
// unsorted (arrival-order) path on a 16x16 mesh: the ordering is what
// keeps the multicast path short (and label-monotone, hence
// deadlock-free).
func AblationDestinationOrder(opts Options) *stats.Figure {
	m := topology.NewMesh2D(16, 16)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		panic(err)
	}
	router := core.XYRouter{Mesh: m}
	unsorted := func(k core.MulticastSet) int {
		total := 0
		at := k.Source
		for _, d := range k.Dests {
			total += len(core.UnicastPath(router, at, d)) - 1
			at = d
		}
		return total
	}
	fig := &stats.Figure{ID: "Ablation B", Title: "Sorted vs unsorted multicast path (16x16 mesh)",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, m, KValuesSmall, opts, map[string]func(core.MulticastSet) int{
		"sorted MP":     func(k core.MulticastSet) int { return heuristics.SortedMP(m, c, k).Traffic() },
		"unsorted path": unsorted,
	}, []string{"sorted MP", "unsorted path"})
	return fig
}
