package sched

import (
	"sort"

	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
	"multicastnet/internal/workload"
	"multicastnet/internal/wormsim"
)

// ServeConfig drives one end-to-end serving run: a Poisson stream of
// requests drawn from a finite pool of multicast groups (a few hot
// groups receiving most traffic — the production profile), batched into
// admission windows and simulated to completion in wormsim.
type ServeConfig struct {
	Service Config

	Requests int // total requests offered
	Groups   int // distinct (source, destinations) groups in the pool
	AvgDests int // destination count is uniform in [1, 2*AvgDests-1]

	// MeanInterarrival is the mean cycle gap between request arrivals
	// (global Poisson process); smaller = higher offered load.
	MeanInterarrival float64

	WindowCycles int64 // admission window length
	Flits        int   // message length
	Shards       int   // simulator shard count (any value: identical output)
	Seed         uint64
	// PoolSeed, when nonzero, draws the group pool from its own stream so
	// sweeps can hold the pool fixed while Seed varies the arrivals.
	PoolSeed  uint64
	MaxCycles int64

	// Workload, when set, supplies the request stream — arrival cycles,
	// sources, and destination sets — in place of the built-in uniform
	// group pool with Poisson arrivals; Groups, AvgDests,
	// MeanInterarrival, Seed, and PoolSeed are then ignored. At most
	// Requests requests are read from the source.
	Workload workload.Source

	// Cache, when set, is the PlanCache backing Service.Router; Serve
	// reports its hit rate over the run.
	Cache *routing.PlanCache
}

// ServeResult aggregates one serving run. Latencies are full
// request-to-completion cycles, queueing included.
type ServeResult struct {
	Requests  int
	Completed int
	Cycles    int64

	ThroughputPerKCycle float64 // completed multicasts per 1000 cycles
	MeanLatency         float64
	P50Latency          float64
	P99Latency          float64
	MaxInFlight         int // peak submitted-but-incomplete requests

	Windows      uint64
	Deferrals    uint64
	ForceAdmits  uint64
	PeakLoad     int32
	PeakDilation int32

	CacheLookups uint64
	CacheHitRate float64

	Deadlocked bool
}

// Serve runs one configuration to completion (or MaxCycles) and returns
// the aggregate result. Output is a pure function of the config: the
// request stream, window schedule, and simulation are all deterministic,
// at any Shards or Service.Workers value.
func Serve(cfg ServeConfig) ServeResult {
	topo := cfg.Service.Router.State().Topology()
	svc := New(cfg.Service)
	rng := stats.NewRand(cfg.Seed)

	// Group pool: destination sets generated once, reused by many
	// requests — the dedup and cache locality the service exploits. A
	// configured workload source replaces the pool entirely.
	var srcs []topology.NodeID
	var dests [][]topology.NodeID
	var wlReq workload.Request
	var wlOK bool
	if cfg.Workload != nil {
		wlReq, wlOK = cfg.Workload.Next()
	} else {
		poolRng := rng
		if cfg.PoolSeed != 0 {
			poolRng = stats.NewRand(cfg.PoolSeed)
		}
		srcs = make([]topology.NodeID, cfg.Groups)
		dests = make([][]topology.NodeID, cfg.Groups)
		for g := range srcs {
			src := topology.NodeID(poolRng.Intn(topo.Nodes()))
			maxK := 2*cfg.AvgDests - 1
			if maxK > topo.Nodes()-1 {
				maxK = topo.Nodes() - 1
			}
			k := 1
			if maxK > 1 {
				k = 1 + poolRng.Intn(maxK)
			}
			raw := poolRng.Sample(topo.Nodes(), k, int(src))
			ds := make([]topology.NodeID, k)
			for i, v := range raw {
				ds[i] = topology.NodeID(v)
			}
			srcs[g], dests[g] = src, ds
		}
	}

	net := wormsim.NewNetwork(topo)
	if cfg.Shards > 1 {
		net.SetShards(cfg.Shards)
		defer net.Close()
	}

	arrival := make([]int64, cfg.Requests)
	latencies := make([]float64, 0, cfg.Requests)
	completed := 0
	inFlight, maxInFlight := 0, 0
	net.OnCompleteTag(func(tag uint64, _ int64) {
		latencies = append(latencies, float64(net.Cycle()-arrival[tag]))
		completed++
		inFlight--
	})

	var before routing.CacheStats
	if cfg.Cache != nil {
		before = cfg.Cache.Stats()
	}

	var now int64
	clock := 0.0 // fractional arrival cursor
	if cfg.Workload == nil {
		clock += rng.ExpFloat64(cfg.MeanInterarrival)
	}
	issued := 0
	// done reports that every offered request completed. With a workload
	// source the offer ends when the stream is exhausted (or Requests is
	// reached); the built-in generator always offers exactly Requests.
	done := func() bool {
		if cfg.Workload != nil {
			return (!wlOK || issued >= cfg.Requests) && completed >= issued
		}
		return completed >= cfg.Requests
	}
	submit := func(at int64, src topology.NodeID, ds []topology.NodeID) {
		if err := svc.Submit(uint64(issued), src, ds); err != nil {
			panic(err) // generated sets are valid by construction
		}
		arrival[issued] = at
		issued++
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
	}
	nextWindow := cfg.WindowCycles
	for !done() && now < cfg.MaxCycles {
		if cfg.Workload != nil {
			for wlOK && issued < cfg.Requests && wlReq.At <= now {
				submit(wlReq.At, wlReq.Src, wlReq.Dests)
				wlReq, wlOK = cfg.Workload.Next()
			}
		} else {
			for issued < cfg.Requests && int64(clock) <= now {
				g := rng.Intn(cfg.Groups)
				submit(int64(clock), srcs[g], dests[g])
				clock += rng.ExpFloat64(cfg.MeanInterarrival)
			}
		}
		for nextWindow <= now {
			for _, a := range svc.CloseWindow() {
				net.InjectFlatTag(a.Flat, cfg.Flits, a.ID)
			}
			nextWindow += cfg.WindowCycles
		}
		if done() {
			break
		}
		if net.Idle() {
			// Nothing can move: jump to the next arrival or window close.
			target := nextWindow
			if cfg.Workload != nil {
				if wlOK && issued < cfg.Requests && wlReq.At < target {
					target = wlReq.At
				}
			} else if issued < cfg.Requests && int64(clock) < target {
				target = int64(clock)
			}
			if target <= now {
				target = now + 1
			}
			net.FastForward(target)
		} else {
			net.Step()
		}
		now = net.Cycle()
	}

	offered := cfg.Requests
	if cfg.Workload != nil {
		offered = issued
	}
	res := ServeResult{
		Requests:     offered,
		Completed:    completed,
		Cycles:       now,
		MaxInFlight:  maxInFlight,
		Windows:      svc.Stats().Windows,
		Deferrals:    svc.Stats().Deferred,
		ForceAdmits:  svc.Stats().ForceAdmits,
		PeakLoad:     svc.Stats().PeakLoad,
		PeakDilation: svc.Stats().PeakDilation,
		CacheLookups: svc.Stats().Planned,
		Deadlocked:   net.Idle() && net.ActiveWorms() > 0,
	}
	if now > 0 {
		res.ThroughputPerKCycle = float64(completed) / float64(now) * 1000
	}
	if len(latencies) > 0 {
		sum := 0.0
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = sum / float64(len(latencies))
		sort.Float64s(latencies)
		res.P50Latency = stats.Percentile(latencies, 0.50)
		res.P99Latency = stats.Percentile(latencies, 0.99)
	}
	if cfg.Cache != nil {
		after := cfg.Cache.Stats()
		hits := after.Hits - before.Hits
		misses := after.Misses - before.Misses
		if hits+misses > 0 {
			res.CacheHitRate = float64(hits) / float64(hits+misses)
		}
	}
	return res
}
