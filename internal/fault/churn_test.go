package fault

import (
	"errors"
	"reflect"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// churnStep is one draw of the seeded churn stream: fail fresh hardware
// or repair an active fault, spanning all three event kinds.
func drawDelta(rng *stats.Rand, topo topology.Topology, links []topology.Link, active []Event) (Delta, []Event) {
	var d Delta
	if len(active) > 0 && rng.Intn(3) == 0 {
		i := rng.Intn(len(active))
		d.Repair = append(d.Repair, active[i])
		active = append(active[:i], active[i+1:]...)
		return d, active
	}
	var e Event
	switch rng.Intn(4) {
	case 0:
		v := topology.NodeID(rng.Intn(topo.Nodes()))
		e = Event{Kind: NodeFault, A: v}
	case 1:
		l := links[rng.Intn(len(links))]
		e = Event{Kind: VCFault, A: l.U, B: l.V, Class: rng.Intn(2)}
	default:
		l := links[rng.Intn(len(links))]
		e = Event{Kind: LinkFault, A: l.U, B: l.V}
	}
	d.Fail = append(d.Fail, e)
	// Re-failing active hardware is a valid no-op delta but must not be
	// double-counted in the reference active set.
	for _, a := range active {
		if a == e {
			return d, active
		}
	}
	active = append(active, e)
	return d, active
}

// maskOf rebuilds a fresh cumulative mask from the active event set.
func maskOf(topo topology.Topology, active []Event) *Mask {
	m := NewMask(topo)
	for _, e := range active {
		m.Apply(e)
	}
	return m
}

// TestChurnEquivalence is the tentpole invariant: a LiveRouter driven by
// an arbitrary interleaving of fault and repair deltas plans
// byte-identically, at every intermediate step, to a static degraded
// Router rebuilt from scratch with the same active mask — for every
// registry scheme on both the mesh and the hypercube. A second LiveRouter
// with an attached plan cache must agree too, whether a plan comes fresh
// or from cache (targeted invalidation must never serve a stale plan).
func TestChurnEquivalence(t *testing.T) {
	cases := []struct {
		topo topology.Topology
		seed uint64
	}{
		{topology.NewMesh2D(5, 4), 0xC0DE01},
		{topology.NewHypercube(4), 0xC0DE02},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.topo.Name(), func(t *testing.T) {
			t.Parallel()
			st, err := routing.NewState(tc.topo)
			if err != nil {
				t.Fatal(err)
			}
			for _, scheme := range routing.Names() {
				scheme := scheme
				t.Run(scheme, func(t *testing.T) {
					t.Parallel()
					churnScheme(t, tc.topo, st, scheme, stats.DeriveSeed(tc.seed, scheme))
				})
			}
		})
	}
}

func churnScheme(t *testing.T, topo topology.Topology, st *routing.State, scheme string, seed uint64) {
	if _, err := routing.New(scheme, st); err != nil {
		t.Skipf("%s does not build on %s: %v", scheme, topo.Name(), err)
	}
	lr, err := NewLiveRouter(scheme, st, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewLiveRouter(scheme, st, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached.AttachCache(routing.NewPlanCache(512))
	// The union-CDG audit only holds for deadlock-free schemes:
	// naive-tree is the paper's deliberate counterexample, cyclic across
	// concurrent multicasts by design.
	if info, err := routing.Lookup(scheme); err == nil && info.DeadlockFree {
		cached.EnableCDGAudit(8)
	}

	links := EnumerateLinks(topo)
	rng := stats.NewRand(seed)
	// A fixed working set of multicasts, re-planned every epoch — the
	// realistic churn shape (steady traffic, moving faults) and the one
	// that exercises cache survival across deltas.
	working := randomSets(topo, NewMask(topo), rng, 6)
	var active []Event
	for step := 0; step < 18; step++ {
		var d Delta
		d, active = drawDelta(rng, topo, links, active)
		rep := lr.ApplyDelta(d)
		cached.ApplyDelta(d)
		if rep.ActiveFaults != len(active) {
			t.Fatalf("step %d: live mask counts %d active faults, stream has %d",
				step, rep.ActiveFaults, len(active))
		}

		mask := maskOf(topo, active)
		static, err := NewRouter(scheme, st, mask)
		if err != nil {
			t.Fatalf("step %d: static rebuild: %v", step, err)
		}
		for _, k := range working {
			if mask.NodeDead(k.Source) {
				continue // dead sources are covered by TestSourceDead
			}
			lp, lst, lerr := planNoPanic(t, &lr.Router, k)
			sp, sst, serr := planNoPanic(t, static, k)
			if !reflect.DeepEqual(lp, sp) {
				t.Fatalf("step %d (epoch %d): live plan diverged from full rebuild for %v\nlive:   %+v\nstatic: %+v",
					step, lr.Epoch(), k, lp, sp)
			}
			if lst != sst {
				t.Fatalf("step %d: stats diverged: live %+v static %+v", step, lst, sst)
			}
			if (lerr == nil) != (serr == nil) || (lerr != nil && !errors.Is(lerr, ErrPartitioned)) {
				t.Fatalf("step %d: errors diverged: live %v static %v", step, lerr, serr)
			}
			cp, _, served, cerr := cached.PlanDegradedCached(k)
			if served {
				// A surviving cache entry may predate this epoch; the
				// policy contract is that it is still fully valid over
				// the CURRENT mask (fresh re-optimization is lazy). A
				// cached entry is only ever a fully-served plan, so every
				// destination must still be reachable and delivered.
				if cerr != nil {
					t.Fatalf("step %d: cache hit returned error %v", step, cerr)
				}
				// (On a fully healed mask the static router has no masked
				// view; every channel is trivially alive.)
				if !mask.Empty() && !static.planValid(cp, k) {
					t.Fatalf("step %d: cache served a plan invalid under the current mask for %v", step, k)
				}
			} else {
				if (cerr == nil) != (serr == nil) {
					t.Fatalf("step %d: cached-path error diverged: %v vs %v", step, cerr, serr)
				}
				if !reflect.DeepEqual(cp, sp) {
					t.Fatalf("step %d: cached live router miss-path plan diverged for %v", step, k)
				}
			}
		}
	}

	// Drain every remaining fault: the live router must plan exactly like
	// the plain healthy scheme again (empty-mask bypass).
	lr.ApplyDelta(Delta{Repair: active})
	cached.ApplyDelta(Delta{Repair: active})
	if !lr.Mask().Empty() {
		t.Fatalf("mask not empty after repairing all %d faults", len(active))
	}
	hr, err := routing.New(scheme, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range randomSets(topo, NewMask(topo), rng, 3) {
		lp, lst, lerr := planNoPanic(t, &lr.Router, k)
		if lerr != nil || lst.Degraded() {
			t.Fatalf("healed router still degraded: %+v %v", lst, lerr)
		}
		if hp := hr.PlanSet(k); !reflect.DeepEqual(lp, hp) {
			t.Fatalf("healed live plan differs from the healthy scheme for %v", k)
		}
	}
	if cached.CachedServes() == 0 {
		t.Error("churn workload never hit the plan cache")
	}
}

// TestLiveRouterTargetedInvalidation: a delta must evict cached plans
// touching the dead hardware and preserve the rest; repairs evict
// nothing.
func TestLiveRouterTargetedInvalidation(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	st, err := routing.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := NewLiveRouter("dual-path", st, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := routing.NewPlanCache(0)
	lr.AttachCache(cache)

	k1 := core.MustMulticastSet(m, 0, []topology.NodeID{1})
	k2 := core.MustMulticastSet(m, 30, []topology.NodeID{35})
	p1, _, _, _ := lr.PlanDegradedCached(k1)
	lr.PlanDegradedCached(k2)
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d plans, want 2", cache.Len())
	}

	// Fail a link on k1's route.
	var link topology.Link
	found := false
	for _, pr := range p1.Paths {
		if len(pr.Nodes) >= 2 {
			link = topology.NormLink(pr.Nodes[0], pr.Nodes[1])
			found = true
			break
		}
	}
	if !found {
		t.Fatal("healthy plan has no edges")
	}
	rep := lr.ApplyDelta(Delta{Fail: []Event{{Kind: LinkFault, A: link.U, B: link.V}}})
	if rep.Invalidated != 1 {
		t.Fatalf("delta evicted %d plans, want exactly k1's", rep.Invalidated)
	}
	if _, ok := cache.GetPlan(lr.ID(), k2); !ok {
		t.Fatal("unaffected plan was evicted")
	}
	// The re-plan must detour and is cached again (fully served).
	p1b, _, served, _ := lr.PlanDegradedCached(k1)
	if served {
		t.Fatal("evicted plan reported as cache-served")
	}
	if reflect.DeepEqual(p1, p1b) {
		t.Fatal("re-plan over the dead link did not change")
	}

	// Repair: nothing is evicted; the detour plan keeps serving (lazily
	// re-optimized only when it ages out).
	rep = lr.ApplyDelta(Delta{Repair: []Event{{Kind: LinkFault, A: link.U, B: link.V}}})
	if rep.Invalidated != 0 {
		t.Fatalf("repair evicted %d plans, want 0", rep.Invalidated)
	}
	if _, _, served, _ := lr.PlanDegradedCached(k1); !served {
		t.Fatal("repair evicted the detour plan")
	}
}

// TestMaskedStateMemo: rebuilding a static router over an identical mask
// reuses the memoized masked state instead of recomputing it.
func TestMaskedStateMemo(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	st, err := routing.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	mask := NewMask(m)
	mask.Apply(Event{Kind: LinkFault, A: 0, B: 1})
	mask.Apply(Event{Kind: NodeFault, A: 14})

	r1, err := NewRouter("dual-path", st, mask)
	if err != nil {
		t.Fatal(err)
	}
	// Identical mask contents in a fresh Mask value — and even a different
	// scheme — must hit the same memo entry.
	mask2 := NewMask(m)
	mask2.Apply(Event{Kind: NodeFault, A: 14})
	mask2.Apply(Event{Kind: LinkFault, A: 0, B: 1})
	r2, err := NewRouter("multi-path", st, mask2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.State() != r2.State() {
		t.Fatal("identical masks rebuilt the masked state instead of memoizing")
	}
	if r1.Masked() != r2.Masked() {
		t.Fatal("identical masks rebuilt the masked topology instead of memoizing")
	}

	// A different mask must not collide.
	mask3 := NewMask(m)
	mask3.Apply(Event{Kind: LinkFault, A: 0, B: 1})
	r3, err := NewRouter("dual-path", st, mask3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.State() == r1.State() {
		t.Fatal("different masks shared a memoized state")
	}
}
