package experiments

import (
	"bytes"
	"testing"

	"multicastnet/internal/topology"
)

// churnTestOptions is a reduced study: small topologies, short streams,
// tiny cycle budgets. Everything the committed study pins is still
// exercised — both invalidation policies, the timing comparison, and the
// delta-driven simulator runs.
func churnTestOptions() ChurnOptions {
	o := ChurnQuick()
	o.Seed = 7
	o.SimCycles = 4_000
	o.Workloads = []ChurnWorkload{
		{
			Name:       "mesh16x16",
			Build:      func() topology.Topology { return topology.NewMesh2D(16, 16) },
			Scheme:     "dual-path",
			Steps:      24,
			WorkingSet: 12,
			Dests:      6,
			SimFaults:  6,
		},
		{
			Name:       "hypercube256",
			Build:      func() topology.Topology { return topology.NewHypercube(8) },
			Scheme:     "multi-path",
			Steps:      24,
			WorkingSet: 12,
			Dests:      6,
			SimFaults:  6,
		},
	}
	o.Check = true
	return o
}

// TestChurnStudySmall runs the full churn study machinery on a reduced
// workload set and pins its invariants: the deterministic figures are
// byte-identical at any worker count, the simulator accounting is
// byte-identical at any shard count, and targeted invalidation beats the
// nuke-everything baseline on cache hit rate.
func TestChurnStudySmall(t *testing.T) {
	o := churnTestOptions()
	o.Parallel = 1
	serial := ChurnStudy(o)

	if got, want := len(serial.HitRate.Series), 4; got != want {
		t.Fatalf("hit-rate series = %d, want %d", got, want)
	}
	if got, want := len(serial.Evictions.Series), 4; got != want {
		t.Fatalf("eviction series = %d, want %d", got, want)
	}
	if got, want := len(serial.Timings), 2; got != want {
		t.Fatalf("timings = %d, want %d", got, want)
	}
	for _, tm := range serial.Timings {
		if tm.IncrementalMs <= 0 || tm.RebuildMs <= 0 {
			t.Errorf("%s: degenerate timing %+v", tm.Workload, tm)
		}
		if tm.TargetedHitRate <= tm.NukeHitRate {
			t.Errorf("%s: targeted hit rate %.3f not above nuke-all %.3f",
				tm.Workload, tm.TargetedHitRate, tm.NukeHitRate)
		}
	}
	if got, want := len(serial.Sims), 2; got != want {
		t.Fatalf("sims = %d, want %d", got, want)
	}
	for _, s := range serial.Sims {
		if s.Epochs == 0 {
			t.Errorf("%s: no fault epochs scheduled", s.Workload)
		}
		if s.Delivered == 0 {
			t.Errorf("%s: nothing delivered", s.Workload)
		}
		if s.Deadlocked {
			t.Errorf("%s: deadlocked", s.Workload)
		}
	}

	// Same study under the worker pool and the sharded simulator: the
	// figures and the sims' accounting must be byte-identical.
	o.Parallel = 4
	o.Shards = 2
	par := ChurnStudy(o)
	if a, b := figCSV(t, serial.HitRate), figCSV(t, par.HitRate); !bytes.Equal(a, b) {
		t.Errorf("hit-rate figure diverges between parallel=1 and parallel=4:\n%s\n---\n%s", a, b)
	}
	if a, b := figCSV(t, serial.Evictions), figCSV(t, par.Evictions); !bytes.Equal(a, b) {
		t.Errorf("eviction figure diverges between parallel=1 and parallel=4:\n%s\n---\n%s", a, b)
	}
	for i := range serial.Sims {
		a, b := serial.Sims[i], par.Sims[i]
		if a != b {
			t.Errorf("sim %s diverges between serial and shards=2:\na=%+v\nb=%+v",
				a.Workload, a, b)
		}
	}
}
