package heuristics

import (
	"multicastnet/internal/core"
	"multicastnet/internal/topology"
)

// XFirstMT runs the X-first multicast algorithm of Fig. 5.5 on a 2D mesh:
// the natural multicast extension of XY unicast routing. Every
// destination is reached along its X-first shortest path; paths sharing a
// prefix share channels, so the pattern is a multicast tree (Theorem 5.3).
func XFirstMT(m *topology.Mesh2D, k core.MulticastSet) *STResult {
	res := newSTResult()
	destSet := k.DestSet()

	type message struct {
		at    topology.NodeID
		depth int
		dests []topology.NodeID
	}
	queue := []message{{at: k.Source, depth: 0, dests: k.Dests}}
	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		x0, y0 := m.XY(msg.at)
		var dPlusX, dMinusX, dPlusY, dMinusY []topology.NodeID
		for _, d := range msg.dests {
			x, y := m.XY(d)
			switch {
			case x > x0:
				dPlusX = append(dPlusX, d)
			case x < x0:
				dMinusX = append(dMinusX, d)
			case y > y0:
				dPlusY = append(dPlusY, d)
			case y < y0:
				dMinusY = append(dMinusY, d)
			default:
				if destSet[d] {
					if _, seen := res.Delivered[d]; !seen {
						res.Delivered[d] = msg.depth
					}
				}
			}
		}
		forward := func(dests []topology.NodeID, nx, ny int) {
			if len(dests) == 0 {
				return
			}
			next := m.ID(nx, ny)
			res.send(msg.at, next)
			queue = append(queue, message{at: next, depth: msg.depth + 1, dests: dests})
		}
		forward(dPlusX, x0+1, y0)
		forward(dMinusX, x0-1, y0)
		forward(dPlusY, x0, y0+1)
		forward(dMinusY, x0, y0-1)
	}
	return res
}

// trunkAxis is the one-bit routing control field a divided-greedy message
// carries: which dimension its group travels first.
type trunkAxis uint8

const (
	trunkX trunkAxis = iota // advance along X; peel same-column destinations off as Y groups
	trunkY                  // advance along Y; peel same-row destinations off as X groups
)

// DividedGreedyMT runs the divided greedy multicast algorithm of Fig. 5.6
// on a 2D mesh. The source divides the destinations into the four axis
// directions and four quadrant sets P_0 (NE), P_1 (NW), P_2 (SW), P_3
// (SE); each quadrant set is divided into an x-leaning subset S_ix and a
// y-leaning subset S_iy by which axis has the larger remaining distance,
// and subsets are paired onto the outgoing directions (S_0x and S_3x feed
// +X, S_0y and S_1y feed +Y, and so on). When one of the two candidate
// subsets of an X direction is empty, its partner is rerouted through its
// quadrant's Y direction instead of opening an extra branch — the
// behaviour of the Section 5.4 worked example. Each dispatched group then
// routes dimension-ordered with its assigned trunk dimension first (the
// one-bit routing control field of the hybrid scheme), so groups share a
// trunk and peel off one destination set per crossing row/column; every
// delivery is via a shortest path, giving the multicast tree of
// Theorem 5.4.
func DividedGreedyMT(m *topology.Mesh2D, k core.MulticastSet) *STResult {
	res := newSTResult()
	destSet := k.DestSet()

	type message struct {
		at    topology.NodeID
		depth int
		axis  trunkAxis
		dests []topology.NodeID
	}
	var queue []message

	deliver := func(d topology.NodeID, depth int) {
		if destSet[d] {
			if _, seen := res.Delivered[d]; !seen {
				res.Delivered[d] = depth
			}
		}
	}
	// forward dispatches a group one hop and enqueues the remainder.
	forward := func(from topology.NodeID, depth int, axis trunkAxis, dests []topology.NodeID, nx, ny int) {
		if len(dests) == 0 {
			return
		}
		next := m.ID(nx, ny)
		res.send(from, next)
		queue = append(queue, message{at: next, depth: depth + 1, axis: axis, dests: dests})
	}

	// Source-node division (Steps 3-5 of Fig. 5.6).
	x0, y0 := m.XY(k.Source)
	var dPlusX, dMinusX, dPlusY, dMinusY []topology.NodeID
	var sx, sy [4][]topology.NodeID // quadrant subsets, 0=NE 1=NW 2=SW 3=SE
	for _, d := range k.Dests {
		x, y := m.XY(d)
		dx, dy := x-x0, y-y0
		switch {
		case dx == 0 && dy == 0:
			deliver(d, 0)
		case dy == 0 && dx > 0:
			dPlusX = append(dPlusX, d)
		case dy == 0 && dx < 0:
			dMinusX = append(dMinusX, d)
		case dx == 0 && dy > 0:
			dPlusY = append(dPlusY, d)
		case dx == 0 && dy < 0:
			dMinusY = append(dMinusY, d)
		default:
			var q int
			switch {
			case dx > 0 && dy > 0:
				q = 0
			case dx < 0 && dy > 0:
				q = 1
			case dx < 0 && dy < 0:
				q = 2
			default:
				q = 3
			}
			if abs(dx) >= abs(dy) {
				sx[q] = append(sx[q], d)
			} else {
				sy[q] = append(sy[q], d)
			}
		}
	}
	pairX := func(a, b int) []topology.NodeID {
		switch {
		case len(sx[a]) > 0 && len(sx[b]) > 0:
			return append(append([]topology.NodeID{}, sx[a]...), sx[b]...)
		case len(sx[a]) > 0:
			sy[a] = append(sy[a], sx[a]...)
			return nil
		case len(sx[b]) > 0:
			sy[b] = append(sy[b], sx[b]...)
			return nil
		default:
			return nil
		}
	}
	dPlusX = append(dPlusX, pairX(0, 3)...)
	dMinusX = append(dMinusX, pairX(1, 2)...)
	dPlusY = append(append(dPlusY, sy[0]...), sy[1]...)
	dMinusY = append(append(dMinusY, sy[2]...), sy[3]...)
	forward(k.Source, 0, trunkX, dPlusX, x0+1, y0)
	forward(k.Source, 0, trunkX, dMinusX, x0-1, y0)
	forward(k.Source, 0, trunkY, dPlusY, x0, y0+1)
	forward(k.Source, 0, trunkY, dMinusY, x0, y0-1)

	// Trunk routing at forward nodes: advance the trunk dimension, peel
	// destinations whose trunk coordinate matches into cross groups.
	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		cx, cy := m.XY(msg.at)
		var onward, crossPlus, crossMinus []topology.NodeID
		for _, d := range msg.dests {
			x, y := m.XY(d)
			if msg.axis == trunkX {
				switch {
				case x == cx && y == cy:
					deliver(d, msg.depth)
				case x == cx && y > cy:
					crossPlus = append(crossPlus, d)
				case x == cx && y < cy:
					crossMinus = append(crossMinus, d)
				default:
					onward = append(onward, d)
				}
			} else {
				switch {
				case x == cx && y == cy:
					deliver(d, msg.depth)
				case y == cy && x > cx:
					crossPlus = append(crossPlus, d)
				case y == cy && x < cx:
					crossMinus = append(crossMinus, d)
				default:
					onward = append(onward, d)
				}
			}
		}
		if msg.axis == trunkX {
			forward(msg.at, msg.depth, trunkY, crossPlus, cx, cy+1)
			forward(msg.at, msg.depth, trunkY, crossMinus, cx, cy-1)
			if len(onward) > 0 {
				// All onward destinations lie strictly on one side of
				// this column: the trunk was dispatched toward them.
				ox, _ := m.XY(onward[0])
				if ox > cx {
					forward(msg.at, msg.depth, trunkX, onward, cx+1, cy)
				} else {
					forward(msg.at, msg.depth, trunkX, onward, cx-1, cy)
				}
			}
		} else {
			forward(msg.at, msg.depth, trunkX, crossPlus, cx+1, cy)
			forward(msg.at, msg.depth, trunkX, crossMinus, cx-1, cy)
			if len(onward) > 0 {
				_, oy := m.XY(onward[0])
				if oy > cy {
					forward(msg.at, msg.depth, trunkY, onward, cx, cy+1)
				} else {
					forward(msg.at, msg.depth, trunkY, onward, cx, cy-1)
				}
			}
		}
	}
	return res
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// XYZFirstMT extends the X-first multicast tree to the 3D mesh of
// Section 4.3: destinations are resolved dimension by dimension (X, then
// Y, then Z), sharing channel prefixes, so every destination is reached
// along its dimension-ordered shortest path.
func XYZFirstMT(m *topology.Mesh3D, k core.MulticastSet) *STResult {
	res := newSTResult()
	destSet := k.DestSet()

	type message struct {
		at    topology.NodeID
		depth int
		dests []topology.NodeID
	}
	queue := []message{{at: k.Source, depth: 0, dests: k.Dests}}
	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		x0, y0, z0 := m.XYZ(msg.at)
		// Six direction buckets, resolved in fixed X, Y, Z order for
		// deterministic patterns.
		var buckets [6][]topology.NodeID
		for _, d := range msg.dests {
			x, y, z := m.XYZ(d)
			switch {
			case x > x0:
				buckets[0] = append(buckets[0], d)
			case x < x0:
				buckets[1] = append(buckets[1], d)
			case y > y0:
				buckets[2] = append(buckets[2], d)
			case y < y0:
				buckets[3] = append(buckets[3], d)
			case z > z0:
				buckets[4] = append(buckets[4], d)
			case z < z0:
				buckets[5] = append(buckets[5], d)
			default:
				if destSet[d] {
					if _, seen := res.Delivered[d]; !seen {
						res.Delivered[d] = msg.depth
					}
				}
			}
		}
		hops := [6]topology.NodeID{}
		if x0 < m.Width-1 {
			hops[0] = m.ID(x0+1, y0, z0)
		}
		if x0 > 0 {
			hops[1] = m.ID(x0-1, y0, z0)
		}
		if y0 < m.Height-1 {
			hops[2] = m.ID(x0, y0+1, z0)
		}
		if y0 > 0 {
			hops[3] = m.ID(x0, y0-1, z0)
		}
		if z0 < m.Depth-1 {
			hops[4] = m.ID(x0, y0, z0+1)
		}
		if z0 > 0 {
			hops[5] = m.ID(x0, y0, z0-1)
		}
		for i, dests := range buckets {
			if len(dests) == 0 {
				continue
			}
			res.send(msg.at, hops[i])
			queue = append(queue, message{at: hops[i], depth: msg.depth + 1, dests: dests})
		}
	}
	return res
}
