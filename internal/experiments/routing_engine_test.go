package experiments

import (
	"bytes"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// tinyDyn keeps the sweeps in this file cheap.
func tinyDyn(parallel int) DynamicOptions {
	return DynamicOptions{
		Seed: 1990, MaxCycles: 30_000, Warmup: 100, BatchSize: 100,
		Loads:    []float64{1000, 400},
		Dests:    []int{5, 20},
		Parallel: parallel,
	}
}

func figureCSV(t *testing.T, fig *stats.Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenFigureCSVAgainstLegacyRouting regenerates Fig. 7.10 through
// the routing engine and through an inline legacy pipeline that calls
// internal/dfr directly (the pre-refactor wiring), and requires
// byte-identical CSV output.
func TestGoldenFigureCSVAgainstLegacyRouting(t *testing.T) {
	o := tinyDyn(1)
	engine := figureCSV(t, Fig710LatencyVsLoadSingle(o))

	// Legacy pipeline: same figure ID and series names (the point seeds
	// derive from them), routes built straight from dfr.
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	legacy := []namedScheme{
		{"dual-path", func(k core.MulticastSet) wormsim.Injection {
			return wormsim.Injection{Paths: dfr.DualPath(m, l, k).Paths}
		}},
		{"multi-path", func(k core.MulticastSet) wormsim.Injection {
			return wormsim.Injection{Paths: dfr.MultiPathMesh(m, l, k).Paths}
		}},
	}
	fig := &stats.Figure{ID: "Fig 7.10", Title: "Latency under load, single-channel 8x8 mesh",
		XLabel: "load (multicasts/ms/node)", YLabel: "latency (us)"}
	RunSweep(loadSweep(fig, m, legacy, 10, o), o.Parallel)

	if !bytes.Equal(engine, figureCSV(t, fig)) {
		t.Fatal("routing-engine Fig 7.10 CSV differs from the legacy dfr pipeline")
	}
}

// TestFigureCSVIdenticalAcrossWorkers pins the RunSweep determinism
// contract through the shared plan cache: the same figure is
// byte-identical whether the sweep runs sequentially or with concurrent
// workers hitting the cache (run under -race, this is also the
// concurrency check for the engine's figure wiring).
func TestFigureCSVIdenticalAcrossWorkers(t *testing.T) {
	sequential := figureCSV(t, Fig711LatencyVsDestsSingle(tinyDyn(1)))
	parallel := figureCSV(t, Fig711LatencyVsDestsSingle(tinyDyn(4)))
	if !bytes.Equal(sequential, parallel) {
		t.Fatal("Fig 7.11 CSV depends on the sweep worker count")
	}
}

// TestSweepSharesPlanCache runs a parallel sweep whose points share one
// plan cache, then replays one point sequentially and requires cache
// hits — proving the sweep populated the cache the replay reads.
func TestSweepSharesPlanCache(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	st := mustState(m)
	cache := routing.NewPlanCache(0)
	route := cachedScheme("dual-path", st, cache, routing.Options{})
	o := tinyDyn(4)
	fig := &stats.Figure{ID: "cache-test", XLabel: "load", YLabel: "latency"}
	schemes := []namedScheme{{"dual-path", route}}
	RunSweep(loadSweep(fig, m, schemes, 10, o), o.Parallel)
	missesBefore := cache.Stats().Misses
	if missesBefore == 0 {
		t.Fatal("sweep never consulted the plan cache")
	}
	// Replaying the first point re-issues the exact same multicast sets.
	seed := pointSeed(o, fig.ID, "dual-path", 0)
	if _, ok := dynamicPoint(m, route, o.loads()[0], 10, seed, o); !ok {
		t.Fatal("replay point failed")
	}
	cs := cache.Stats()
	hits, misses := cs.Hits, cs.Misses
	if hits == 0 {
		t.Fatalf("no cache hits after replay (misses = %d)", misses)
	}
}
