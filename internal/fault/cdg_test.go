package fault

import (
	"errors"
	"fmt"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// TestMaskedCDGAcyclic is the fault-tolerance acceptance test: for every
// scheme in the registry and a large population of seeded random fault
// masks per topology, degraded planning must produce either plans whose
// channel dependency graph stays acyclic (re-verified through
// internal/dfr) or a typed partition error — never a cyclic dependency
// and never a panic.
//
// The CDG is accumulated per (topology, scheme) across ALL masks and
// multicast sets, which is strictly stronger than per-mask acyclicity:
// worms from different fault epochs can coexist in a network while an
// epoch turns over, so their dependencies must compose too. naive-tree
// is the registry's documented deadlock-prone scheme; for it only
// per-plan validity is asserted.
func TestMaskedCDGAcyclic(t *testing.T) {
	masks := 1000
	if testing.Short() {
		masks = 100
	}
	topos := []topology.Topology{
		topology.NewMesh2D(4, 4),
		topology.NewMesh2D(5, 4),
		topology.NewHypercube(3),
		topology.NewHypercube(4),
	}
	for _, topo := range topos {
		topo := topo
		t.Run(topo.Name(), func(t *testing.T) {
			t.Parallel()
			st, err := routing.NewState(topo)
			if err != nil {
				t.Fatal(err)
			}
			recorders := make(map[string]*dfr.DependencyRecorder)
			for _, name := range routing.Names() {
				recorders[name] = dfr.NewDependencyRecorder()
			}
			nLinks := len(EnumerateLinks(topo))
			for trial := 0; trial < masks; trial++ {
				seed := stats.DeriveSeed(0xFA017, fmt.Sprintf("%s/%d", topo.Name(), trial))
				rng := stats.NewRand(seed)
				spec := Spec{
					Links:    rng.Intn(nLinks/3 + 1),
					Nodes:    rng.Intn(3),
					VCs:      rng.Intn(5),
					MaxClass: 2,
					Seed:     seed,
				}
				mask := NewPlan(topo, spec).FullMask()
				masked := mask.MaskTopology()
				sets := randomSets(topo, mask, rng, 3)
				for _, name := range routing.Names() {
					dr, err := NewRouter(name, st, mask)
					if err != nil {
						continue // scheme unsupported on this topology
					}
					for _, k := range sets {
						plan, _, err := planNoPanic(t, dr, k)
						if err != nil {
							if !errors.Is(err, ErrPartitioned) {
								t.Fatalf("%s trial %d: untyped error: %v", name, trial, err)
							}
							var pe *PartitionError
							if !errors.As(err, &pe) {
								t.Fatalf("%s trial %d: partition error lacks detail: %v", name, trial, err)
							}
							for _, d := range pe.Unreachable {
								if masked.Reachable(k.Source, d) {
									t.Fatalf("%s trial %d: %d reported unreachable but isn't", name, trial, d)
								}
							}
						}
						if live, ok := liveSubset(topo, masked, k); ok {
							if err := plan.Validate(masked, live); err != nil {
								t.Fatalf("%s trial %d: degraded plan invalid: %v\nmask: %dL %dN", name, trial, err, spec.Links, spec.Nodes)
							}
						} else if plan.Messages() > 0 {
							t.Fatalf("%s trial %d: non-empty plan with no reachable destinations", name, trial)
						}
						if name == "naive-tree" {
							perPlanAcyclic(t, name, trial, plan)
							continue
						}
						rec := recorders[name]
						for _, p := range plan.Paths {
							rec.AddPath(p)
						}
						for _, tr := range plan.Trees {
							rec.AddTree(tr)
						}
					}
				}
			}
			for name, rec := range recorders {
				if name == "naive-tree" {
					continue
				}
				if cyc := rec.FindCycle(); cyc != nil {
					t.Errorf("%s: degraded plans produced a channel dependency cycle: %v", name, cyc)
				}
			}
		})
	}
}

// planNoPanic converts a degraded-planning panic into a test failure
// with the scheme attached (the acceptance criterion says "never a
// panic").
func planNoPanic(t *testing.T, dr *Router, k core.MulticastSet) (plan routing.Plan, st PlanStats, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: PlanDegraded panicked: %v", dr.Scheme(), r)
		}
	}()
	return dr.PlanDegraded(k)
}

// randomSets draws n multicast sets over the healthy topology with a
// live source, mirroring what a fault-epoch workload looks like.
func randomSets(topo topology.Topology, mask *Mask, rng *stats.Rand, n int) []core.MulticastSet {
	var out []core.MulticastSet
	for len(out) < n {
		src := topology.NodeID(rng.Intn(topo.Nodes()))
		if mask.NodeDead(src) {
			continue // dead sources are covered by TestSourceDead
		}
		var dests []topology.NodeID
		for _, d := range rng.Sample(topo.Nodes(), 1+rng.Intn(5), int(src)) {
			dests = append(dests, topology.NodeID(d))
		}
		k, err := core.NewMulticastSet(topo, src, dests)
		if err != nil {
			continue
		}
		out = append(out, k)
	}
	return out
}

// liveSubset restricts k to the destinations reachable over the masked
// graph; ok is false when none survive.
func liveSubset(topo topology.Topology, masked *topology.Masked, k core.MulticastSet) (core.MulticastSet, bool) {
	var live []topology.NodeID
	for _, d := range k.Dests {
		if masked.Reachable(k.Source, d) {
			live = append(live, d)
		}
	}
	if len(live) == 0 {
		return core.MulticastSet{}, false
	}
	out, err := core.NewMulticastSet(topo, k.Source, live)
	return out, err == nil
}

// perPlanAcyclic checks a single plan's CDG in isolation (used for
// naive-tree, which is only safe one multicast at a time).
func perPlanAcyclic(t *testing.T, name string, trial int, plan routing.Plan) {
	t.Helper()
	rec := dfr.NewDependencyRecorder()
	for _, p := range plan.Paths {
		rec.AddPath(p)
	}
	for _, tr := range plan.Trees {
		rec.AddTree(tr)
	}
	if cyc := rec.FindCycle(); cyc != nil {
		t.Fatalf("%s trial %d: single-plan dependency cycle: %v", name, trial, cyc)
	}
}
