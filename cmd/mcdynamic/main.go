// Command mcdynamic regenerates the dynamic wormhole simulations of
// Section 7.2 (Figures 7.8–7.11): average network latency under load for
// the deadlock-free multicast schemes on an 8x8 mesh with 128-byte
// messages and 20 Mbyte/s channels.
//
// Usage:
//
//	mcdynamic                      # all four figures at full fidelity
//	mcdynamic -quick               # reduced sweeps for a fast look
//	mcdynamic -fig 7.10 -csv       # one figure as CSV
//	mcdynamic -scheme fixed-path   # latency-vs-load for one registry scheme
//	mcdynamic -list-schemes        # print the routing-engine registry
package main

import (
	"flag"
	"fmt"
	"os"

	"multicastnet/internal/experiments"
	"multicastnet/internal/profiling"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps and cycle budgets")
	seed := flag.Uint64("seed", 1990, "workload seed")
	maxCycles := flag.Int64("maxcycles", 0, "override cycle budget per point")
	figID := flag.String("fig", "", "only this figure (7.8, 7.9, 7.10, 7.11)")
	scheme := flag.String("scheme", "", "simulate one routing-engine scheme by name (see -list-schemes)")
	listSchemes := flag.Bool("list-schemes", false, "list the routing-engine schemes and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	parallel := flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = sequential)")
	shards := flag.Int("shards", 0, "step each simulation with the sharded engine (0/1 = serial; figures are byte-identical)")
	simcheck := flag.Bool("simcheck", false, "run wormsim invariant checks inside every simulation")
	prof := profiling.AddFlags()
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdynamic:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *listSchemes {
		for _, info := range routing.Schemes() {
			safety := "deadlock-free"
			if !info.DeadlockFree {
				safety = "NOT deadlock-free"
			}
			fmt.Printf("%-18s %-18s %s\n", info.Name, safety, info.Description)
		}
		return
	}

	opts := experiments.DynamicDefaults()
	if *quick {
		opts = experiments.DynamicQuick()
	}
	opts.Seed = *seed
	if *maxCycles > 0 {
		opts.MaxCycles = *maxCycles
	}
	opts.Parallel = *parallel
	opts.Shards = *shards
	opts.Check = *simcheck

	// Surface each figure sweep's plan-cache accounting. The counts
	// depend on sweep scheduling (parallel workers racing to plan the
	// same multicast both miss), so they accompany the output rather
	// than being part of any committed figure.
	type cacheLine struct {
		figure string
		stats  routing.CacheStats
	}
	var cacheLines []cacheLine
	experiments.FigureCacheStats = func(figure string, s routing.CacheStats) {
		cacheLines = append(cacheLines, cacheLine{figure, s})
	}
	printCacheLines := func() {
		if *csv || len(cacheLines) == 0 {
			return
		}
		fmt.Printf("plan cache per figure sweep:\n")
		fmt.Printf("%-14s %8s %8s %10s %9s\n", "figure", "hits", "misses", "evictions", "hit_rate")
		for _, l := range cacheLines {
			fmt.Printf("%-14s %8d %8d %10d %9.3f\n",
				l.figure, l.stats.Hits, l.stats.Misses, l.stats.Evictions, l.stats.HitRate())
		}
	}

	figs := map[string]func(experiments.DynamicOptions) *stats.Figure{
		"7.8":  experiments.Fig78LatencyVsLoadDouble,
		"7.9":  experiments.Fig79LatencyVsDestsDouble,
		"7.10": experiments.Fig710LatencyVsLoadSingle,
		"7.11": experiments.Fig711LatencyVsDestsSingle,
	}
	order := []string{"7.8", "7.9", "7.10", "7.11"}

	emit := func(fig *stats.Figure) {
		var err error
		if *csv {
			err = fig.WriteCSV(os.Stdout)
		} else {
			err = fig.WriteTable(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcdynamic:", err)
			os.Exit(1)
		}
	}

	run := func(id string) {
		fn, ok := figs[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "mcdynamic: unknown figure %q\n", id)
			os.Exit(1)
		}
		emit(fn(opts))
	}

	if *scheme != "" {
		fig, err := experiments.FigSchemeLoad(*scheme, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcdynamic:", err)
			os.Exit(1)
		}
		emit(fig)
		printCacheLines()
		return
	}

	if *figID != "" {
		run(*figID)
		printCacheLines()
		return
	}
	for _, id := range order {
		run(id)
	}
	printCacheLines()
}
