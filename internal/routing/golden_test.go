package routing

import (
	"reflect"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// The golden-equivalence tests pin the refactor's core promise: every
// registry scheme produces byte-identical routes to the legacy direct
// calls into internal/dfr it replaced.

// legacyDouble is the pre-refactor double-channel class assignment
// (wormsim's classify), restated here so the registry's classifyDouble
// is checked against an independent copy.
func legacyDouble(s dfr.Star) []dfr.PathRoute {
	out := make([]dfr.PathRoute, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = p
		out[i].Class = (int(s.Source) + i) % 2
	}
	return out
}

func goldenCompare(t *testing.T, topo topology.Topology, name string, opts Options,
	legacy func(core.MulticastSet) Plan) {
	t.Helper()
	st, err := NewState(topo)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewWithOptions(name, st, opts)
	if err != nil {
		t.Fatalf("%s on %s: %v", name, topo.Name(), err)
	}
	rng := stats.NewRand(1990)
	for rep := 0; rep < 50; rep++ {
		k := randomSet(topo, rng, 1+rng.Intn(12))
		got := r.PlanSet(k)
		want := legacy(k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s on %s diverges from legacy for src %d dests %v:\n got %+v\nwant %+v",
				name, topo.Name(), k.Source, k.Dests, got, want)
		}
	}
}

func TestGoldenMesh(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	st, err := NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	l := st.Labeling() // identical labels to labeling.NewMeshBoustrophedon(m)
	goldenCompare(t, m, "dual-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.DualPath(m, l, k).Paths}
	})
	goldenCompare(t, m, "dual-path-double", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: legacyDouble(dfr.DualPath(m, l, k))}
	})
	goldenCompare(t, m, "multi-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.MultiPathMesh(m, l, k).Paths}
	})
	goldenCompare(t, m, "multi-path-double", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: legacyDouble(dfr.MultiPathMesh(m, l, k))}
	})
	goldenCompare(t, m, "fixed-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.FixedPath(m, l, k).Paths}
	})
	goldenCompare(t, m, "tree", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Trees: dfr.DoubleChannelXFirst(m, k)}
	})
	goldenCompare(t, m, "naive-tree", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Trees: dfr.XFirstTrees(m, k)}
	})
	goldenCompare(t, m, "adaptive-dual-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.AdaptiveDualPath(m, l, k, dfr.IdleOracle()).Paths}
	})
	for _, v := range []int{1, 2, 4} {
		v := v
		goldenCompare(t, m, "virtual-channel", Options{VirtualChannels: v},
			func(k core.MulticastSet) Plan {
				return Plan{Paths: dfr.VirtualChannelPath(m, l, k, v).Paths}
			})
	}
}

func TestGoldenCube(t *testing.T) {
	h := topology.NewHypercube(6)
	st, err := NewState(h)
	if err != nil {
		t.Fatal(err)
	}
	l := st.Labeling()
	goldenCompare(t, h, "dual-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.DualPath(h, l, k).Paths}
	})
	goldenCompare(t, h, "multi-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.MultiPathCube(h, l, k).Paths}
	})
	goldenCompare(t, h, "fixed-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.FixedPath(h, l, k).Paths}
	})
	goldenCompare(t, h, "virtual-channel", Options{VirtualChannels: 2},
		func(k core.MulticastSet) Plan {
			return Plan{Paths: dfr.VirtualChannelPath(h, l, k, 2).Paths}
		})
}

func TestGoldenMesh3D(t *testing.T) {
	m := topology.NewMesh3D(4, 4, 4)
	st, err := NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	l := st.Labeling()
	goldenCompare(t, m, "dual-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.DualPath(m, l, k).Paths}
	})
	goldenCompare(t, m, "fixed-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.FixedPath(m, l, k).Paths}
	})
}

// TestGoldenAgainstFreshLabelings re-runs a spot check with the original
// labeling constructors (not the table-flattened ones), proving the
// flattening step itself changes nothing.
func TestGoldenAgainstFreshLabelings(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	goldenCompare(t, m, "dual-path", Options{}, func(k core.MulticastSet) Plan {
		return Plan{Paths: dfr.DualPath(m, l, k).Paths}
	})
}
