package core

import (
	"testing"

	"multicastnet/internal/topology"
)

func TestNodeSetBasics(t *testing.T) {
	var s NodeSet
	s.Reset(130) // spans three words, one partially used
	if s.Cap() != 130 || s.Len() != 0 {
		t.Fatalf("fresh set: cap %d len %d", s.Cap(), s.Len())
	}
	for _, v := range []topology.NodeID{0, 63, 64, 129} {
		s.Add(v)
	}
	if s.Len() != 4 {
		t.Errorf("len = %d, want 4", s.Len())
	}
	if !s.Has(63) || !s.Has(64) || s.Has(1) || s.Has(128) {
		t.Error("membership wrong around word boundary")
	}
	// Out-of-range queries are absent, not panics.
	if s.Has(-1) || s.Has(130) || s.Has(1000) {
		t.Error("out-of-range ID reported present")
	}
	s.Remove(63)
	s.Remove(129)
	if s.Has(63) || s.Has(129) || s.Len() != 2 {
		t.Error("removal wrong")
	}
	// Double-add and double-remove are idempotent.
	s.Add(64)
	s.Remove(63)
	if s.Len() != 2 {
		t.Errorf("idempotence broken: len %d", s.Len())
	}
}

func TestNodeSetResetReuses(t *testing.T) {
	var s NodeSet
	s.Reset(256)
	s.Add(200)
	// Shrinking reset reuses the backing array and clears old members.
	s.Reset(64)
	if s.Cap() != 64 || s.Len() != 0 || s.Has(200) {
		t.Error("shrinking Reset leaked state")
	}
	s.Add(5)
	// Growing back within the original capacity must not resurrect bits.
	s.Reset(256)
	if s.Len() != 0 || s.Has(5) || s.Has(200) {
		t.Error("growing Reset leaked state")
	}
}

func TestDestBits(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	k := MustMulticastSet(m, 9, []topology.NodeID{0, 1, 6, 12})
	var s NodeSet
	k.DestBits(m.Nodes(), &s)
	want := k.DestSet()
	for v := 0; v < m.Nodes(); v++ {
		id := topology.NodeID(v)
		if s.Has(id) != want[id] {
			t.Errorf("node %d: bitset %v, map %v", v, s.Has(id), want[id])
		}
	}
	if s.Len() != len(k.Dests) {
		t.Errorf("len = %d, want %d", s.Len(), len(k.Dests))
	}
}
