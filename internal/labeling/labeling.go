// Package labeling implements the Hamiltonian-path node labelings and
// Hamilton-cycle constructions at the heart of the dissertation's
// path-based multicast routing (Sections 5.1, 6.2.2, 6.3).
//
// A Labeling assigns to every node a distinct integer label in [0, N)
// such that consecutive labels are adjacent nodes: the label order is a
// Hamiltonian path of the topology. The labeling splits the (directed)
// channels into the high-channel network (toward higher labels) and the
// low-channel network (toward lower labels); each is acyclic, which is
// what makes the dual-path, multi-path, and fixed-path schemes
// deadlock-free.
package labeling

import (
	"fmt"

	"multicastnet/internal/topology"
)

// Labeling maps nodes to Hamiltonian-path positions and back.
type Labeling interface {
	// N returns the number of nodes labeled.
	N() int
	// Label returns the position of v along the Hamiltonian path, in
	// [0, N).
	Label(v topology.NodeID) int
	// At returns the node at the given position.
	At(label int) topology.NodeID
}

// Path returns the Hamiltonian path induced by the labeling, as a node
// sequence ordered by label.
func Path(l Labeling) []topology.NodeID {
	seq := make([]topology.NodeID, l.N())
	for i := range seq {
		seq[i] = l.At(i)
	}
	return seq
}

// Verify checks that l is a bijection onto [0, N) and that the label order
// is a Hamiltonian path of t. It returns a descriptive error on the first
// violation.
func Verify(l Labeling, t topology.Topology) error {
	if l.N() != t.Nodes() {
		return fmt.Errorf("labeling: labels %d nodes, topology has %d", l.N(), t.Nodes())
	}
	seen := make([]bool, l.N())
	for v := topology.NodeID(0); int(v) < t.Nodes(); v++ {
		lab := l.Label(v)
		if lab < 0 || lab >= l.N() {
			return fmt.Errorf("labeling: node %d has out-of-range label %d", v, lab)
		}
		if seen[lab] {
			return fmt.Errorf("labeling: duplicate label %d", lab)
		}
		seen[lab] = true
		if l.At(lab) != v {
			return fmt.Errorf("labeling: At(Label(%d)) = %d", v, l.At(lab))
		}
	}
	for i := 1; i < l.N(); i++ {
		if !t.Adjacent(l.At(i-1), l.At(i)) {
			return fmt.Errorf("labeling: consecutive labels %d,%d map to non-adjacent nodes %d,%d",
				i-1, i, l.At(i-1), l.At(i))
		}
	}
	return nil
}

// MeshBoustrophedon is the 2D-mesh label assignment of Section 6.2.2:
//
//	l(x, y) = y*n + x         if y is even
//	l(x, y) = y*n + n - x - 1 if y is odd
//
// where n is the mesh width. Rows are traversed left-to-right and
// right-to-left alternately, so the label order snakes through the mesh.
type MeshBoustrophedon struct {
	Mesh *topology.Mesh2D
}

// NewMeshBoustrophedon returns the boustrophedon labeling of m.
func NewMeshBoustrophedon(m *topology.Mesh2D) *MeshBoustrophedon {
	return &MeshBoustrophedon{Mesh: m}
}

// N implements Labeling.
func (l *MeshBoustrophedon) N() int { return l.Mesh.Nodes() }

// Label implements Labeling.
func (l *MeshBoustrophedon) Label(v topology.NodeID) int {
	x, y := l.Mesh.XY(v)
	if y%2 == 0 {
		return y*l.Mesh.Width + x
	}
	return y*l.Mesh.Width + l.Mesh.Width - x - 1
}

// At implements Labeling.
func (l *MeshBoustrophedon) At(label int) topology.NodeID {
	if label < 0 || label >= l.N() {
		panic(fmt.Sprintf("labeling: label %d out of range [0,%d)", label, l.N()))
	}
	y := label / l.Mesh.Width
	r := label % l.Mesh.Width
	if y%2 == 0 {
		return l.Mesh.ID(r, y)
	}
	return l.Mesh.ID(l.Mesh.Width-r-1, y)
}

// MeshColumnMajor is the alternative ("poor") label assignment of
// Fig. 6.10: a boustrophedon over columns instead of rows. It is a valid
// Hamiltonian labeling — and therefore still deadlock-free — but the
// routing function R no longer always finds shortest paths on wide meshes,
// which is the ablation the paper uses to argue that Hamilton-path
// selection matters.
type MeshColumnMajor struct {
	Mesh *topology.Mesh2D
}

// NewMeshColumnMajor returns the column-major serpentine labeling of m.
func NewMeshColumnMajor(m *topology.Mesh2D) *MeshColumnMajor {
	return &MeshColumnMajor{Mesh: m}
}

// N implements Labeling.
func (l *MeshColumnMajor) N() int { return l.Mesh.Nodes() }

// Label implements Labeling.
func (l *MeshColumnMajor) Label(v topology.NodeID) int {
	x, y := l.Mesh.XY(v)
	if x%2 == 0 {
		return x*l.Mesh.Height + y
	}
	return x*l.Mesh.Height + l.Mesh.Height - y - 1
}

// At implements Labeling.
func (l *MeshColumnMajor) At(label int) topology.NodeID {
	if label < 0 || label >= l.N() {
		panic(fmt.Sprintf("labeling: label %d out of range [0,%d)", label, l.N()))
	}
	x := label / l.Mesh.Height
	r := label % l.Mesh.Height
	if x%2 == 0 {
		return l.Mesh.ID(x, r)
	}
	return l.Mesh.ID(x, l.Mesh.Height-r-1)
}

// HypercubeGray is the n-cube label assignment of Section 6.3:
//
//	l(d_{n-1} ... d_0) = sum_i (c_i XOR d_i) 2^i
//
// with c_{n-1} = 0 and c_i the parity of the bits above position i. This
// is exactly the binary-reflected Gray-code decode: the node whose address
// is the i-th Gray codeword receives label i, so the label order is the
// Gray-code Hamiltonian path.
type HypercubeGray struct {
	Cube *topology.Hypercube
}

// NewHypercubeGray returns the Gray-code labeling of h.
func NewHypercubeGray(h *topology.Hypercube) *HypercubeGray {
	return &HypercubeGray{Cube: h}
}

// N implements Labeling.
func (l *HypercubeGray) N() int { return l.Cube.Nodes() }

// Label implements Labeling.
func (l *HypercubeGray) Label(v topology.NodeID) int {
	if v < 0 || int(v) >= l.N() {
		panic(fmt.Sprintf("labeling: node %d out of range [0,%d)", v, l.N()))
	}
	return int(GrayDecode(uint(v)))
}

// At implements Labeling.
func (l *HypercubeGray) At(label int) topology.NodeID {
	if label < 0 || label >= l.N() {
		panic(fmt.Sprintf("labeling: label %d out of range [0,%d)", label, l.N()))
	}
	return topology.NodeID(GrayEncode(uint(label)))
}

// GrayEncode returns the i-th binary-reflected Gray codeword.
func GrayEncode(i uint) uint { return i ^ (i >> 1) }

// GrayDecode returns the index of the Gray codeword g: bit i of the result
// is the XOR of bits n-1..i of g, matching the paper's label formula for
// the n-cube.
func GrayDecode(g uint) uint {
	var out uint
	for g != 0 {
		out ^= g
		g >>= 1
	}
	return out
}
