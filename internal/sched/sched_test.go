package sched

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

func newRouter(t testing.TB, m *topology.Mesh2D, cache *routing.PlanCache) *routing.FlatRouter {
	t.Helper()
	st := routing.NewStateWithLabeling(m, labeling.NewMeshBoustrophedon(m))
	r, err := routing.New("dual-path", st)
	if err != nil {
		t.Fatal(err)
	}
	return routing.Flat(r, cache)
}

// TestSubmitValidation pins request validation and canonicalization:
// invalid requests are rejected without queueing, and destinations are
// sorted into canonical order on ingestion.
func TestSubmitValidation(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	s := New(Config{Router: newRouter(t, m, routing.NewPlanCache(0))})
	cases := []struct {
		src   topology.NodeID
		dests []topology.NodeID
	}{
		{-1, []topology.NodeID{1}},
		{16, []topology.NodeID{1}},
		{0, nil},
		{0, []topology.NodeID{16}},
		{0, []topology.NodeID{0}},
		{0, []topology.NodeID{5, 5}},
	}
	for i, c := range cases {
		if err := s.Submit(uint64(i), c.src, c.dests); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("%d requests queued after rejections", s.Pending())
	}
	if err := s.Submit(9, 0, []topology.NodeID{9, 3, 6}); err != nil {
		t.Fatal(err)
	}
	if got := s.queue[0].dests; got[0] != 3 || got[1] != 6 || got[2] != 9 {
		t.Fatalf("dests not canonicalized: %v", got)
	}
}

// TestFIFOWindowAdmitsAll pins the naive baseline: with no budget, every
// pending request is admitted in arrival order.
func TestFIFOWindowAdmitsAll(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	s := New(Config{Router: newRouter(t, m, routing.NewPlanCache(0))})
	for i := 0; i < 10; i++ {
		if err := s.Submit(uint64(100+i), topology.NodeID(i), []topology.NodeID{topology.NodeID(20 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	adm := s.CloseWindow()
	if len(adm) != 10 || s.Pending() != 0 {
		t.Fatalf("admitted %d pending %d, want 10 and 0", len(adm), s.Pending())
	}
	for i, a := range adm {
		if a.ID != uint64(100+i) {
			t.Fatalf("admission %d has id %d, want %d (FIFO order)", i, a.ID, 100+i)
		}
		if a.Flat == nil {
			t.Fatalf("admission %d has no plan", i)
		}
	}
}

// TestBudgetDefersConflicts pins the packer: identical requests pile
// load on the same channels, so a tight budget admits the first and
// defers the rest, carrying them ahead of new arrivals, until MaxDefer
// force-admits survivors.
func TestBudgetDefersConflicts(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	fr := newRouter(t, m, routing.NewPlanCache(0))
	// Budget admits one copy of the 0->63 plan (load 1) but not two: the
	// packer bounds load + dilation, so add the plan's own dilation.
	dil := dilationOf(fr.FlatSet(core.MustMulticastSet(m, 0, []topology.NodeID{63})))
	s := New(Config{
		Router:   newRouter(t, m, routing.NewPlanCache(0)),
		Budget:   dil + 1,
		MaxDefer: 2,
	})
	for i := 0; i < 3; i++ {
		if err := s.Submit(uint64(i), 0, []topology.NodeID{63}); err != nil {
			t.Fatal(err)
		}
	}
	adm := s.CloseWindow()
	if len(adm) != 1 || adm[0].ID != 0 {
		t.Fatalf("window 1 admitted %v, want exactly id 0", adm)
	}
	if s.Pending() != 2 {
		t.Fatalf("pending %d after window 1, want 2", s.Pending())
	}
	// New arrival with a disjoint plan must not overtake the deferred
	// requests in admission order bookkeeping, and fits the budget.
	if err := s.Submit(7, 5, []topology.NodeID{6}); err != nil {
		t.Fatal(err)
	}
	adm = s.CloseWindow()
	if len(adm) != 2 || adm[0].ID != 1 || adm[1].ID != 7 {
		t.Fatalf("window 2 admitted %v, want deferred id 1 then id 7", adm)
	}
	// Request 2 has now been deferred twice: force-admitted.
	adm = s.CloseWindow()
	if len(adm) != 1 || adm[0].ID != 2 {
		t.Fatalf("window 3 admitted %v, want force-admitted id 2", adm)
	}
	st := s.Stats()
	if st.ForceAdmits != 0 {
		// id 2 was first in its window, admitted unconditionally — adjust
		// expectation: force-admit only fires when the window already has
		// admissions.
		t.Fatalf("ForceAdmits = %d, want 0 (window-leading requests admit unconditionally)", st.ForceAdmits)
	}
	if st.Deferred != 3 {
		t.Fatalf("Deferred = %d, want 3 (id 1 once, id 2 twice)", st.Deferred)
	}
	if st.Admitted != 4 || s.Pending() != 0 {
		t.Fatalf("Admitted=%d Pending=%d, want 4 and 0", st.Admitted, s.Pending())
	}
}

// TestForceAdmitFires pins MaxDefer: a request that keeps losing to an
// endless stream of fresh conflicting arrivals is force-admitted rather
// than starved.
func TestForceAdmitFires(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	fr := newRouter(t, m, routing.NewPlanCache(0))
	dil := dilationOf(fr.FlatSet(core.MustMulticastSet(m, 0, []topology.NodeID{63})))
	s := New(Config{
		Router:   newRouter(t, m, routing.NewPlanCache(0)),
		Budget:   dil + 1, // one copy per window fits
		MaxDefer: 2,
	})
	// Four identical requests: each window admits its leader; the last
	// request would wait three windows, but MaxDefer=2 force-admits it
	// alongside window 3's leader.
	for i := 0; i < 4; i++ {
		if err := s.Submit(uint64(i), 0, []topology.NodeID{63}); err != nil {
			t.Fatal(err)
		}
	}
	var total int
	for w := 0; w < 3; w++ {
		total += len(s.CloseWindow())
	}
	if total != 4 || s.Pending() != 0 {
		t.Fatalf("admitted %d pending %d after 3 windows, want 4 and 0", total, s.Pending())
	}
	if got := s.Stats().ForceAdmits; got != 1 {
		t.Fatalf("ForceAdmits = %d, want 1", got)
	}
}

// TestDedupSharesPlans pins per-window dedup: duplicate destination sets
// cost one cache lookup and share one plan pointer.
func TestDedupSharesPlans(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	cache := routing.NewPlanCache(0)
	s := New(Config{Router: newRouter(t, m, cache)})
	// Three copies of set A (one with permuted dests), two of set B.
	a := []topology.NodeID{10, 20, 30}
	aPerm := []topology.NodeID{30, 10, 20}
	b := []topology.NodeID{40, 50}
	for i, d := range [][]topology.NodeID{a, b, aPerm, b, a} {
		if err := s.Submit(uint64(i), 0, d); err != nil {
			t.Fatal(err)
		}
	}
	adm := s.CloseWindow()
	if len(adm) != 5 {
		t.Fatalf("admitted %d, want 5", len(adm))
	}
	if s.Stats().Planned != 2 {
		t.Fatalf("Planned = %d lookups, want 2 (distinct sets)", s.Stats().Planned)
	}
	cs := cache.Stats()
	if cs.Misses != 2 || cs.Hits != 0 {
		t.Fatalf("cache stats %+v, want exactly 2 misses", cs)
	}
	if adm[0].Flat != adm[2].Flat || adm[0].Flat != adm[4].Flat {
		t.Fatal("duplicate requests did not share set A's plan")
	}
	if adm[1].Flat != adm[3].Flat || adm[1].Flat == adm[0].Flat {
		t.Fatal("set B plan sharing wrong")
	}
	// Next window with the same sets: all hits.
	for i, d := range [][]topology.NodeID{a, b} {
		if err := s.Submit(uint64(10+i), 0, d); err != nil {
			t.Fatal(err)
		}
	}
	s.CloseWindow()
	cs = cache.Stats()
	if cs.Misses != 2 || cs.Hits != 2 {
		t.Fatalf("warm window cache stats %+v, want 2 misses 2 hits", cs)
	}
}

// TestWorkerCountInvariance pins the determinism protocol: any Workers
// value yields the identical admitted stream, service counters, and
// PlanCache counters.
func TestWorkerCountInvariance(t *testing.T) {
	type snapshot struct {
		ids   []uint64
		stats Stats
		cache routing.CacheStats
	}
	run := func(workers int) snapshot {
		m := topology.NewMesh2D(16, 16)
		cache := routing.NewPlanCache(0)
		s := New(Config{
			Router:  newRouter(t, m, cache),
			Budget:  24,
			Workers: workers,
		})
		rng := stats.NewRand(11)
		var snap snapshot
		id := uint64(0)
		for w := 0; w < 6; w++ {
			for i := 0; i < 40; i++ {
				src := topology.NodeID(rng.Intn(m.Nodes()))
				raw := rng.Sample(m.Nodes(), 1+rng.Intn(6), int(src))
				dests := make([]topology.NodeID, len(raw))
				for j, v := range raw {
					dests[j] = topology.NodeID(v)
				}
				if err := s.Submit(id, src, dests); err != nil {
					t.Fatal(err)
				}
				id++
			}
			for _, a := range s.CloseWindow() {
				snap.ids = append(snap.ids, a.ID)
			}
		}
		snap.stats = s.Stats()
		snap.cache = cache.Stats()
		return snap
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got.ids) != len(want.ids) {
			t.Fatalf("workers=%d admitted %d, want %d", workers, len(got.ids), len(want.ids))
		}
		for i := range want.ids {
			if got.ids[i] != want.ids[i] {
				t.Fatalf("workers=%d admission %d is id %d, want %d", workers, i, got.ids[i], want.ids[i])
			}
		}
		if got.stats != want.stats {
			t.Fatalf("workers=%d stats %+v, want %+v", workers, got.stats, want.stats)
		}
		if got.cache != want.cache {
			t.Fatalf("workers=%d cache %+v, want %+v", workers, got.cache, want.cache)
		}
	}
}

// TestSteadyStateWindowAllocationFree is the scheduling analogue of
// wormsim's TestSteadyStateAllocationFree: once the group pool is warm
// (plans cached, arena and scratch grown), a full submit + close-window
// round allocates nothing — even with a worker pool configured, since
// all-hit windows never reach it.
func TestSteadyStateWindowAllocationFree(t *testing.T) {
	m := topology.NewMesh2D(16, 16)
	cache := routing.NewPlanCache(0)
	s := New(Config{
		Router:   newRouter(t, m, cache),
		Budget:   30, // tight enough to exercise the defer/revert path
		MaxDefer: 1,  // deferrals drain next window: backlog reaches a fixed point
		Workers:  4,
	})
	poolRng := stats.NewRand(5)
	const groups = 32
	srcs := make([]topology.NodeID, groups)
	dests := make([][]topology.NodeID, groups)
	for g := range srcs {
		src := topology.NodeID(poolRng.Intn(m.Nodes()))
		raw := poolRng.Sample(m.Nodes(), 1+poolRng.Intn(6), int(src))
		ds := make([]topology.NodeID, len(raw))
		for i, v := range raw {
			ds[i] = topology.NodeID(v)
		}
		srcs[g], dests[g] = src, ds
	}
	// Every round submits the identical request mix (fresh rng per
	// round), so after warmup the queue, arena, and deferral backlog sit
	// at an exact fixed point and any allocation is a real regression.
	round := func() {
		rng := stats.NewRand(17)
		for i := 0; i < 64; i++ {
			g := rng.Intn(groups)
			if err := s.Submit(uint64(i), srcs[g], dests[g]); err != nil {
				t.Fatal(err)
			}
		}
		s.CloseWindow()
	}
	for i := 0; i < 4; i++ {
		round()
	}
	if s.Stats().Deferred == 0 {
		t.Fatal("warmup produced no deferrals; budget no longer exercises the packer")
	}
	if avg := testing.AllocsPerRun(20, round); avg > 0 {
		t.Errorf("steady-state window round allocates %.1f objects, want 0", avg)
	}
	if misses := cache.Stats().Misses; misses > groups {
		t.Fatalf("pool of %d groups produced %d misses", groups, misses)
	}
}
