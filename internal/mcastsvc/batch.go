package mcastsvc

import (
	"encoding/binary"
	"sort"

	"multicastnet/internal/core"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// Request names one multicast to plan: a source and its destination
// processes. Destination order is irrelevant — requests that name the
// same set in any order are deduplicated.
type Request struct {
	Source topology.NodeID
	Dests  []topology.NodeID
}

// BatchPlan plans a batch of multicasts through the service's cached
// router and returns one plan per request, in input order. Before
// planning, requests are sorted by their canonicalized destination-set
// key (source plus sorted destinations), so duplicates land adjacently
// and each distinct set is planned — and looked up in the plan cache —
// exactly once; duplicate requests share the representative's plan.
// Group communication batches are highly repetitive (the same barrier
// and allreduce groups recur every iteration), so the dedup converts
// most of a batch into zero-lookup copies and the remainder into at most
// one cache probe per distinct set.
//
// Any invalid request fails the whole batch.
func (s *Service) BatchPlan(reqs []Request) ([]routing.Plan, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	sets := make([]core.MulticastSet, len(reqs))
	keys := make([]string, len(reqs))
	var kb []byte
	for i, r := range reqs {
		dests := make([]topology.NodeID, len(r.Dests))
		copy(dests, r.Dests)
		sort.Slice(dests, func(a, b int) bool { return dests[a] < dests[b] })
		k, err := core.NewMulticastSet(s.cfg.Topology, r.Source, dests)
		if err != nil {
			return nil, err
		}
		sets[i] = k
		kb = kb[:0]
		kb = binary.AppendUvarint(kb, uint64(k.Source))
		for _, d := range k.Dests {
			kb = binary.AppendUvarint(kb, uint64(d))
		}
		keys[i] = string(kb)
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	plans := make([]routing.Plan, len(reqs))
	for i := 0; i < len(order); {
		rep := order[i]
		p := s.route(sets[rep])
		j := i
		for ; j < len(order) && keys[order[j]] == keys[rep]; j++ {
			plans[order[j]] = p
		}
		i = j
	}
	return plans, nil
}
