package experiments

import (
	"fmt"

	"multicastnet/internal/fault"
	"multicastnet/internal/mcastsvc"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// FaultOptions scale the fault-injection study: delivery ratio and
// operation latency as a function of the fraction of failed links on an
// 8x8 mesh, per deadlock-free multicast scheme.
type FaultOptions struct {
	Seed uint64
	// Trials is the number of independent seeded fault plans per figure
	// point; Ops is the number of multicasts executed against each plan.
	Trials, Ops int
	// Dests is the destination count of every multicast.
	Dests int
	// Horizon spreads fault activations over [0, Horizon) flit cycles, so
	// a share of the faults strikes while worms are in flight.
	Horizon int64
	// Parallel is the sweep worker count (see RunSweep); figures are
	// byte-identical for every value.
	Parallel int
	// Check runs the wormsim invariant checker inside every attempt — a
	// testing aid, slower.
	Check bool
	// Shards steps every attempt with the sharded parallel engine; 0 or 1
	// selects the serial engine. Figures are byte-identical either way.
	Shards int
	// Rates overrides the link fault-rate sweep (fractions of the mesh's
	// links); nil selects FaultRates.
	Rates []float64
	// Schemes overrides the scheme series; nil selects the deadlock-free
	// defaults (dual-path, multi-path, tree).
	Schemes []string
}

func (o FaultOptions) rates() []float64 {
	if o.Rates != nil {
		return o.Rates
	}
	return FaultRates
}

func (o FaultOptions) schemes() []string {
	if o.Schemes != nil {
		return o.Schemes
	}
	return []string{"dual-path", "multi-path", "tree"}
}

// FaultRates is the default link fault-rate sweep: the fraction of the
// mesh's bidirectional links killed by each plan.
var FaultRates = []float64{0, 0.02, 0.05, 0.10, 0.15, 0.20}

// FaultDefaults are full-fidelity settings for the committed figures.
func FaultDefaults() FaultOptions {
	return FaultOptions{Seed: 1990, Trials: 40, Ops: 10, Dests: 10, Horizon: 600}
}

// FaultQuick keeps the study short for tests and smoke runs.
func FaultQuick() FaultOptions {
	return FaultOptions{
		Seed: 1990, Trials: 3, Ops: 3, Dests: 8, Horizon: 600,
		Rates: []float64{0, 0.05, 0.10, 0.20},
	}
}

// faultResult aggregates one figure point: the delivery ratio across all
// destinations of all operations, and the mean operation completion time
// (retries and backoffs included).
type faultResult struct {
	ratio   float64
	latency float64
	ops     int
	// cache is the point's final service plan-cache accounting: the
	// retry path serves surviving cached plans across attempts and
	// operations, evicting only what each fault delta touched.
	cache routing.CacheStats
}

// SchemeCacheStats pairs a scheme with its plan-cache counters summed
// over every figure point. The sums are deterministic: each point owns
// its service (and cache) and runs its operations sequentially, so the
// sweep worker count never changes the totals.
type SchemeCacheStats struct {
	Scheme string
	Stats  routing.CacheStats
}

// faultPoint executes Trials fault plans x Ops multicasts for one
// (scheme, fault-count) coordinate. Every random draw derives from the
// point seed, so the result is independent of sweep scheduling.
func faultPoint(m topology.Topology, schemeName string, links int, seed uint64,
	o FaultOptions) faultResult {
	svc, err := mcastsvc.New(mcastsvc.Config{Topology: m, SchemeName: schemeName})
	if err != nil {
		panic(err)
	}
	pol := mcastsvc.RetryPolicy{Check: o.Check, Shards: o.Shards}
	var delivered, lost, unreachable int
	var sumUs float64
	res := faultResult{}
	for trial := 0; trial < o.Trials; trial++ {
		fp := fault.NewPlan(m, fault.Spec{
			Links:   links,
			Horizon: o.Horizon,
			Seed:    stats.DeriveSeed(seed, fmt.Sprintf("plan/%d", trial)),
		})
		rng := stats.NewRand(stats.DeriveSeed(seed, fmt.Sprintf("ops/%d", trial)))
		for op := 0; op < o.Ops; op++ {
			ids := rng.Sample(m.Nodes(), o.Dests+1)
			members := make([]topology.NodeID, len(ids))
			for j, v := range ids {
				members[j] = topology.NodeID(v)
			}
			g, err := svc.NewGroup(members)
			if err != nil {
				panic(err)
			}
			out, err := svc.MulticastUnderFaults(members[0], g, 0, fp, pol)
			if err != nil {
				panic(err)
			}
			delivered += out.Delivered
			lost += out.Lost
			unreachable += out.Unreachable
			sumUs += out.CompletionMicros
			res.ops++
		}
	}
	if total := delivered + lost + unreachable; total > 0 {
		res.ratio = float64(delivered) / float64(total)
	} else {
		res.ratio = 1
	}
	if res.ops > 0 {
		res.latency = sumUs / float64(res.ops)
	}
	res.cache = svc.CacheStats()
	return res
}

// FaultFigures builds the two fault-injection figures over an 8x8 mesh:
// delivery ratio vs link fault rate and mean operation latency vs link
// fault rate, one series per deadlock-free scheme. Each operation runs
// under mcastsvc.MulticastUnderFaults — degraded routing over the fault
// mask, mid-flight fault activation killing in-flight worms, and
// retry/backoff until the attempt budget runs out — so the curves
// measure the whole degraded-mode stack, not just routing.
func FaultFigures(o FaultOptions) (delivery, latency *stats.Figure) {
	delivery, latency, _ = FaultFiguresStats(o)
	return delivery, latency
}

// FaultFiguresStats is FaultFigures plus the per-scheme plan-cache
// accounting (hits/misses/evictions/invalidations summed over every
// figure point) — the counters `mcfault` prints alongside the figures.
func FaultFiguresStats(o FaultOptions) (delivery, latency *stats.Figure, cacheStats []SchemeCacheStats) {
	m := topology.NewMesh2D(8, 8)
	nLinks := len(fault.EnumerateLinks(m))
	delivery = &stats.Figure{ID: "Fault delivery",
		Title:  "Delivery ratio vs link fault rate, 8x8 mesh",
		XLabel: "failed links (%)", YLabel: "delivery ratio"}
	latency = &stats.Figure{ID: "Fault latency",
		Title:  "Operation latency vs link fault rate, 8x8 mesh",
		XLabel: "failed links (%)", YLabel: "latency (us)"}
	var points []SweepPoint
	totals := make([]routing.CacheStats, len(o.schemes()))
	for si, scheme := range o.schemes() {
		ds := delivery.AddSeries(scheme)
		ls := latency.AddSeries(scheme)
		for i, rate := range o.rates() {
			links := int(rate*float64(nLinks) + 0.5)
			x := rate * 100
			seed := stats.DeriveSeed(o.Seed, fmt.Sprintf("fault/%s/%d", scheme, i))
			scheme, si := scheme, si
			points = append(points, SweepPoint{
				Run: func() any { return faultPoint(m, scheme, links, seed, o) },
				Commit: func(v any) {
					r := v.(faultResult)
					ds.Add(x, r.ratio)
					if r.ops > 0 {
						ls.Add(x, r.latency)
					}
					t := &totals[si]
					t.Hits += r.cache.Hits
					t.Misses += r.cache.Misses
					t.Evictions += r.cache.Evictions
					t.Invalidations += r.cache.Invalidations
				},
			})
		}
	}
	RunSweep(points, o.Parallel)
	for si, scheme := range o.schemes() {
		cacheStats = append(cacheStats, SchemeCacheStats{Scheme: scheme, Stats: totals[si]})
	}
	return delivery, latency, cacheStats
}
