package labeling

import (
	"fmt"

	"multicastnet/internal/topology"
)

// Mesh3DBoustrophedon extends the Section 6.2.2 labeling to the 3D mesh
// of Section 4.3 (J-machine/MOSAIC style networks): planes are traversed
// in alternating serpentine order, and alternate planes reverse the whole
// 2D serpentine, so consecutive labels remain adjacent — a Hamiltonian
// path of the 3D mesh. The induced high-/low-channel networks are acyclic
// exactly as in 2D, so dual-path and fixed-path routing carry over
// unchanged.
type Mesh3DBoustrophedon struct {
	Mesh *topology.Mesh3D
}

// NewMesh3DBoustrophedon returns the plane-serpentine labeling of m.
func NewMesh3DBoustrophedon(m *topology.Mesh3D) *Mesh3DBoustrophedon {
	return &Mesh3DBoustrophedon{Mesh: m}
}

// N implements Labeling.
func (l *Mesh3DBoustrophedon) N() int { return l.Mesh.Nodes() }

// planeLabel is the 2D boustrophedon position of (x, y) in a
// Width x Height plane.
func (l *Mesh3DBoustrophedon) planeLabel(x, y int) int {
	if y%2 == 0 {
		return y*l.Mesh.Width + x
	}
	return y*l.Mesh.Width + l.Mesh.Width - x - 1
}

// planeAt inverts planeLabel.
func (l *Mesh3DBoustrophedon) planeAt(label int) (x, y int) {
	y = label / l.Mesh.Width
	r := label % l.Mesh.Width
	if y%2 == 0 {
		return r, y
	}
	return l.Mesh.Width - r - 1, y
}

// Label implements Labeling.
func (l *Mesh3DBoustrophedon) Label(v topology.NodeID) int {
	x, y, z := l.Mesh.XYZ(v)
	plane := l.Mesh.Width * l.Mesh.Height
	p := l.planeLabel(x, y)
	if z%2 == 1 {
		p = plane - p - 1 // odd planes walk the serpentine backwards
	}
	return z*plane + p
}

// At implements Labeling.
func (l *Mesh3DBoustrophedon) At(label int) topology.NodeID {
	if label < 0 || label >= l.N() {
		panic(fmt.Sprintf("labeling: label %d out of range [0,%d)", label, l.N()))
	}
	plane := l.Mesh.Width * l.Mesh.Height
	z := label / plane
	p := label % plane
	if z%2 == 1 {
		p = plane - p - 1
	}
	x, y := l.planeAt(p)
	return l.Mesh.ID(x, y, z)
}
