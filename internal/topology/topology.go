// Package topology provides the host-graph models of multicomputer
// interconnection networks studied in the dissertation: 2D mesh, 3D mesh,
// hypercube (n-cube), the general k-ary n-cube, and the ring.
//
// Each node of a topology is identified by a dense integer NodeID in
// [0, Nodes()). Concrete topologies expose coordinate conversions so that
// algorithms can be written against the paper's addressing conventions
// ((x, y) pairs for meshes, n-bit binary addresses for hypercubes).
package topology

import "fmt"

// NodeID identifies a node (processor) of a topology. IDs are dense
// integers in [0, Nodes()).
type NodeID int

// Topology is the interface every host graph implements. It corresponds to
// the host graph G(V, E) of Chapter 3: nodes are processors, edges are
// bidirectional communication links.
type Topology interface {
	// Name returns a short human-readable description, e.g. "8x8 mesh".
	Name() string
	// Nodes returns |V(G)|.
	Nodes() int
	// MaxDegree returns the maximum node degree.
	MaxDegree() int
	// Neighbors appends the neighbors of v to buf and returns the
	// extended slice. Callers reuse buf across calls in hot loops.
	Neighbors(v NodeID, buf []NodeID) []NodeID
	// Adjacent reports whether (u, v) is an edge.
	Adjacent(u, v NodeID) bool
	// Distance returns d_G(u, v), the length of a shortest path.
	Distance(u, v NodeID) int
	// Diameter returns the maximum distance over all node pairs.
	Diameter() int
}

// ShortestRegion is implemented by topologies that can locate, in constant
// time, the node nearest to u among all nodes lying on shortest paths
// between s and t. This is the primitive required by the greedy ST
// algorithm (Section 5.2): for 2D mesh it is coordinate clamping, for the
// hypercube it is the bitwise merge d_j = a_j if b_j != c_j else b_j.
type ShortestRegion interface {
	// NearestOnShortestPaths returns the node v minimizing d(u, v) over
	// all v on some shortest path from s to t.
	NearestOnShortestPaths(s, t, u NodeID) NodeID
}

// NeighborsOf is a convenience wrapper allocating a fresh neighbor slice.
func NeighborsOf(t Topology, v NodeID) []NodeID {
	return t.Neighbors(v, nil)
}

// checkNode panics when v is out of range for a topology of n nodes. The
// topologies are used by randomized simulations; failing loudly on a bad
// address catches workload-generation bugs immediately. It takes the
// topology rather than its name so the Name() Sprintf is only paid on the
// panic path — checkNode guards every coordinate conversion in the
// simulator's inner loop.
func checkNode(v NodeID, n int, t Topology) {
	if v < 0 || int(v) >= n {
		panic(fmt.Sprintf("topology: node %d out of range for %s with %d nodes", v, t.Name(), n))
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
