// Collectives: the system-supported multicast service of Section 8.2.
//
// An application allocates a process group on a 16x16 mesh machine and
// runs the primitives an iterative solver needs — barrier, broadcast, and
// allreduce — first as closed-form cost estimates, then executed on the
// wormhole simulator to expose the contention the estimates cannot see
// (the convergecast pile-up at a barrier coordinator).
package main

import (
	"fmt"
	"log"

	"multicastnet"
)

func main() {
	mesh := multicastnet.NewMesh2D(16, 16)
	svc, err := multicastnet.NewService(multicastnet.ServiceConfig{
		Topology: mesh,
		Scheme:   multicastnet.ServiceDualPath,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 32-process group spread over the machine (every 8th node).
	var members []multicastnet.NodeID
	for v := multicastnet.NodeID(0); int(v) < mesh.Nodes(); v += 8 {
		members = append(members, v)
	}
	g, err := svc.NewGroup(members)
	if err != nil {
		log.Fatal(err)
	}
	coord := g.Members()[0]
	fmt.Printf("group of %d processes on a %s, coordinator node %d\n\n", g.Size(), mesh.Name(), coord)

	// Closed-form costs (contention-free wormhole pipeline).
	mc, err := svc.Multicast(coord, g, 128)
	if err != nil {
		log.Fatal(err)
	}
	bar, err := svc.Barrier(coord, g, 8)
	if err != nil {
		log.Fatal(err)
	}
	ar, err := svc.ReduceBroadcast(coord, g, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("primitive    traffic  messages  est. latency")
	fmt.Printf("multicast    %7d  %8d  %9.2f us\n", mc.TrafficChannels, mc.Messages, mc.LatencyMicros)
	fmt.Printf("barrier      %7d  %8d  %9.2f us\n", bar.TrafficChannels, bar.Messages, bar.LatencyMicros)
	fmt.Printf("allreduce    %7d  %8d  %9.2f us\n", ar.TrafficChannels, ar.Messages, ar.LatencyMicros)

	// The same protocols executed on the simulated network: the gather
	// phase of the barrier piles 31 tokens onto the coordinator's
	// incoming channels, which the estimate cannot see.
	simMC, err := svc.SimulateMulticast(coord, g, 128)
	if err != nil {
		log.Fatal(err)
	}
	simBar, err := svc.SimulateBarrier(coord, g, 8)
	if err != nil {
		log.Fatal(err)
	}
	simAR, err := svc.SimulateAllReduce(coord, g, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprimitive    simulated (phases)")
	fmt.Printf("multicast    %6.2f us\n", simMC.CompletionMicros)
	fmt.Printf("barrier      %6.2f us (gather %.2f + release %.2f)\n",
		simBar.CompletionMicros, simBar.Phases[0], simBar.Phases[1])
	fmt.Printf("allreduce    %6.2f us (reduce %.2f + broadcast %.2f)\n",
		simAR.CompletionMicros, simAR.Phases[0], simAR.Phases[1])

	fmt.Printf("\nconvergecast contention: simulated barrier runs %.1fx the contention-free estimate\n",
		simBar.CompletionMicros/bar.LatencyMicros)
}
