package topology

import "fmt"

// KAryNCube is the general k-ary n-cube of Section 2.1.3: n dimensions
// with k nodes per dimension connected as a ring (wraparound). The binary
// hypercube is the 2-ary n-cube; the torus is the k-ary 2-cube. A node is
// addressed by n digits (d_0, ..., d_{n-1}), each in [0, k); its NodeID is
// the radix-k value with d_0 least significant.
type KAryNCube struct {
	K int // radix: nodes per dimension
	N int // number of dimensions
}

// NewKAryNCube returns a k-ary n-cube. It panics for k < 2, n < 1, or a
// node count exceeding 2^30.
func NewKAryNCube(k, n int) *KAryNCube {
	if k < 2 || n < 1 {
		panic(fmt.Sprintf("topology: invalid k-ary n-cube parameters k=%d n=%d", k, n))
	}
	nodes := 1
	for i := 0; i < n; i++ {
		if nodes > (1<<30)/k {
			panic(fmt.Sprintf("topology: k-ary n-cube %d^%d too large", k, n))
		}
		nodes *= k
	}
	return &KAryNCube{K: k, N: n}
}

// Name implements Topology.
func (c *KAryNCube) Name() string { return fmt.Sprintf("%d-ary %d-cube", c.K, c.N) }

// Nodes implements Topology.
func (c *KAryNCube) Nodes() int {
	nodes := 1
	for i := 0; i < c.N; i++ {
		nodes *= c.K
	}
	return nodes
}

// MaxDegree implements Topology. Each dimension contributes two ring
// neighbors, except when k == 2, where +1 and -1 coincide.
func (c *KAryNCube) MaxDegree() int {
	if c.K == 2 {
		return c.N
	}
	return 2 * c.N
}

// Digits decomposes a NodeID into its n radix-k digits, least significant
// first.
func (c *KAryNCube) Digits(v NodeID) []int {
	checkNode(v, c.Nodes(), c)
	d := make([]int, c.N)
	x := int(v)
	for i := 0; i < c.N; i++ {
		d[i] = x % c.K
		x /= c.K
	}
	return d
}

// FromDigits composes a NodeID from n radix-k digits, least significant
// first.
func (c *KAryNCube) FromDigits(d []int) NodeID {
	if len(d) != c.N {
		panic(fmt.Sprintf("topology: expected %d digits, got %d", c.N, len(d)))
	}
	v := 0
	for i := c.N - 1; i >= 0; i-- {
		if d[i] < 0 || d[i] >= c.K {
			panic(fmt.Sprintf("topology: digit %d out of range for radix %d", d[i], c.K))
		}
		v = v*c.K + d[i]
	}
	return NodeID(v)
}

// Neighbors implements Topology.
func (c *KAryNCube) Neighbors(v NodeID, buf []NodeID) []NodeID {
	checkNode(v, c.Nodes(), c)
	stride := 1
	x := int(v)
	for i := 0; i < c.N; i++ {
		digit := (x / stride) % c.K
		up := (digit + 1) % c.K
		down := (digit - 1 + c.K) % c.K
		buf = append(buf, NodeID(x+(up-digit)*stride))
		if c.K > 2 {
			buf = append(buf, NodeID(x+(down-digit)*stride))
		}
		stride *= c.K
	}
	return buf
}

// Adjacent implements Topology.
func (c *KAryNCube) Adjacent(u, v NodeID) bool { return c.Distance(u, v) == 1 }

// Distance implements Topology: the sum over dimensions of ring distances
// min(|a-b|, k-|a-b|).
func (c *KAryNCube) Distance(u, v NodeID) int {
	du := c.Digits(u)
	dv := c.Digits(v)
	total := 0
	for i := 0; i < c.N; i++ {
		d := abs(du[i] - dv[i])
		total += min(d, c.K-d)
	}
	return total
}

// Diameter implements Topology.
func (c *KAryNCube) Diameter() int { return c.N * (c.K / 2) }

// Ring is the 1-dimensional k-ary cube, provided as a named convenience
// constructor for the ring topology of Section 2.1.3.
func Ring(k int) *KAryNCube { return NewKAryNCube(k, 1) }
