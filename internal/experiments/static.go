// Package experiments regenerates every table and figure of the
// dissertation's evaluation (Chapter 7, plus the worked tables of
// Chapter 5 and the switching comparison of Fig. 2.3). Each runner
// returns a stats.Figure whose series carry the same curves the paper
// plots; cmd/mcfigures renders them, and the root bench_test.go exposes
// one benchmark per figure.
package experiments

import (
	"multicastnet/internal/core"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/labeling"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// Options scales experiment cost: Reps is the number of random multicast
// sets per destination count (the paper uses 1000); Seed fixes the
// workload.
type Options struct {
	Reps int
	Seed uint64
	// Parallel is the static-sweep worker count (<= 0 selects
	// GOMAXPROCS). The workloads are always drawn serially from one RNG
	// stream and the per-point means folded serially in rep order, so the
	// figure bytes are identical at every worker count.
	Parallel int
}

// Defaults returns the paper's parameters.
func Defaults() Options { return Options{Reps: 1000, Seed: 1990} }

// Quick returns reduced-cost options for benchmarks and smoke tests.
func Quick() Options { return Options{Reps: 25, Seed: 1990} }

func (o Options) reps() int {
	if o.Reps <= 0 {
		return 1000
	}
	return o.Reps
}

// KValuesMesh1024 is the destination-count sweep of Figures 7.1/7.3
// (1 to 900 destinations on 1024 nodes).
var KValuesMesh1024 = []int{1, 2, 5, 10, 20, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900}

// KValuesSmall is the sweep used on the 256- and 64-node topologies.
var KValuesSmall = []int{1, 2, 5, 10, 15, 20, 30, 40, 50, 60}

// randomSet draws a uniform multicast set with k destinations, mapping
// integers to node addresses exactly as Section 7.1 describes.
func randomSet(t topology.Topology, rng *stats.Rand, k int) core.MulticastSet {
	src := topology.NodeID(rng.Intn(t.Nodes()))
	raw := rng.Sample(t.Nodes(), k, int(src))
	dests := make([]topology.NodeID, k)
	for i, v := range raw {
		dests[i] = topology.NodeID(v)
	}
	return core.MustMulticastSet(t, src, dests)
}

// additionalTraffic is the paper's metric: total traffic minus the k
// units any 1-to-k multicast must spend.
func additionalTraffic(total, k int) float64 { return float64(total - k) }

// staticAlgo is one measured algorithm of a static sweep: it returns the
// total traffic of routing set k, using ws for scratch space. The
// closure must be pure apart from ws (it runs on a worker goroutine).
type staticAlgo func(ws *heuristics.Workspace, k core.MulticastSet) int

// staticChunk is the sweep grain: one point evaluates one algorithm on
// one run of consecutive reps, large enough to amortize scheduling and
// keep a worker's workspace cache-warm.
const staticChunk = 64

// staticSweep runs reps random sets per k for each named algorithm and
// fills one series per algorithm with the mean additional traffic.
//
// The sweep is split into the three stages of the determinism contract
// (see SweepPoint): the workloads are drawn serially from the single
// sequential RNG stream, the integer traffic counts are evaluated in
// parallel into disjoint slices, and the float means are folded serially
// in rep order — reproducing the sequential implementation's
// float-addition order bit for bit, so the figure bytes never depend on
// opts.Parallel.
func staticSweep(fig *stats.Figure, t topology.Topology, ks []int, opts Options,
	algos map[string]staticAlgo, order []string) {
	series := make(map[string]*stats.Series, len(order))
	for _, name := range order {
		series[name] = fig.AddSeries(name)
	}
	reps := opts.reps()

	type block struct {
		k    int
		sets []core.MulticastSet
	}
	rng := stats.NewRand(opts.Seed)
	var blocks []block
	for _, k := range ks {
		if k > t.Nodes()-1 {
			continue
		}
		b := block{k: k, sets: make([]core.MulticastSet, reps)}
		for rep := range b.sets {
			b.sets[rep] = randomSet(t, rng, k)
		}
		blocks = append(blocks, b)
	}

	raw := make([][][]int, len(blocks))
	var points []SweepPoint
	for bi := range blocks {
		raw[bi] = make([][]int, len(order))
		sets := blocks[bi].sets
		for ai, name := range order {
			out := make([]int, reps)
			raw[bi][ai] = out
			algo := algos[name]
			for lo := 0; lo < reps; lo += staticChunk {
				lo, hi := lo, min(lo+staticChunk, reps)
				points = append(points, SweepPoint{
					Run: func() any {
						ws := heuristics.AcquireWorkspace()
						defer heuristics.ReleaseWorkspace(ws)
						for rep := lo; rep < hi; rep++ {
							out[rep] = algo(ws, sets[rep])
						}
						return nil
					},
					Commit: func(any) {},
				})
			}
		}
	}
	RunSweep(points, opts.Parallel)

	for bi, b := range blocks {
		for ai, name := range order {
			sum := 0.0
			for _, total := range raw[bi][ai] {
				sum += additionalTraffic(total, b.k)
			}
			series[name].Add(float64(b.k), sum/float64(reps))
		}
	}
}

// Fig71SortedMPMesh reproduces Fig. 7.1: sorted MP vs multiple one-to-one
// and broadcast on a 32x32 mesh.
func Fig71SortedMPMesh(opts Options) *stats.Figure {
	m := topology.NewMesh2D(32, 32)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		panic(err)
	}
	fig := &stats.Figure{ID: "Fig 7.1", Title: "Sorted MP algorithm on a 32x32 mesh",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, m, KValuesMesh1024, opts, map[string]staticAlgo{
		"one-to-one": func(_ *heuristics.Workspace, k core.MulticastSet) int { return heuristics.MultiUnicastTraffic(m, k) },
		"broadcast":  func(_ *heuristics.Workspace, k core.MulticastSet) int { return heuristics.BroadcastTraffic(m) },
		"sorted MP":  func(ws *heuristics.Workspace, k core.MulticastSet) int { return ws.SortedMP(m, c, k) },
	}, []string{"one-to-one", "broadcast", "sorted MP"})
	return fig
}

// Fig72SortedMPCube reproduces Fig. 7.2: sorted MP on a 10-cube.
func Fig72SortedMPCube(opts Options) *stats.Figure {
	h := topology.NewHypercube(10)
	c, err := labeling.CubeHamiltonCycle(h)
	if err != nil {
		panic(err)
	}
	fig := &stats.Figure{ID: "Fig 7.2", Title: "Sorted MP algorithm on a 10-cube",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, h, KValuesMesh1024, opts, map[string]staticAlgo{
		"one-to-one": func(_ *heuristics.Workspace, k core.MulticastSet) int { return heuristics.MultiUnicastTraffic(h, k) },
		"broadcast":  func(_ *heuristics.Workspace, k core.MulticastSet) int { return heuristics.BroadcastTraffic(h) },
		"sorted MP":  func(ws *heuristics.Workspace, k core.MulticastSet) int { return ws.SortedMP(h, c, k) },
	}, []string{"one-to-one", "broadcast", "sorted MP"})
	return fig
}

// Fig73GreedySTMesh reproduces Fig. 7.3: greedy ST on a 32x32 mesh.
func Fig73GreedySTMesh(opts Options) *stats.Figure {
	m := topology.NewMesh2D(32, 32)
	fig := &stats.Figure{ID: "Fig 7.3", Title: "Greedy ST algorithm on a 32x32 mesh",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, m, KValuesMesh1024, opts, map[string]staticAlgo{
		"one-to-one": func(_ *heuristics.Workspace, k core.MulticastSet) int { return heuristics.MultiUnicastTraffic(m, k) },
		"broadcast":  func(_ *heuristics.Workspace, k core.MulticastSet) int { return heuristics.BroadcastTraffic(m) },
		"greedy ST":  func(ws *heuristics.Workspace, k core.MulticastSet) int { return ws.GreedySTCarried(m, k) },
	}, []string{"one-to-one", "broadcast", "greedy ST"})
	return fig
}

// Fig74GreedySTCube reproduces Fig. 7.4: greedy ST vs the LEN heuristic
// [20] on a 10-cube.
func Fig74GreedySTCube(opts Options) *stats.Figure {
	h := topology.NewHypercube(10)
	fig := &stats.Figure{ID: "Fig 7.4", Title: "Greedy ST algorithm vs LEN on a 10-cube",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, h, KValuesMesh1024, opts, map[string]staticAlgo{
		"LEN":       func(ws *heuristics.Workspace, k core.MulticastSet) int { return ws.LEN(h, k) },
		"greedy ST": func(ws *heuristics.Workspace, k core.MulticastSet) int { return ws.GreedySTCarried(h, k) },
	}, []string{"LEN", "greedy ST"})
	return fig
}

// Fig75MTMesh reproduces Fig. 7.5: X-first vs divided greedy on a 16x16
// mesh, with the one-to-one and broadcast baselines of the text.
func Fig75MTMesh(opts Options) *stats.Figure {
	m := topology.NewMesh2D(16, 16)
	fig := &stats.Figure{ID: "Fig 7.5", Title: "X-first and divided greedy algorithms on a 16x16 mesh",
		XLabel: "destinations", YLabel: "additional traffic"}
	ks := []int{1, 2, 5, 10, 20, 40, 60, 80, 100, 140, 180, 220}
	staticSweep(fig, m, ks, opts, map[string]staticAlgo{
		"one-to-one":     func(_ *heuristics.Workspace, k core.MulticastSet) int { return heuristics.MultiUnicastTraffic(m, k) },
		"broadcast":      func(_ *heuristics.Workspace, k core.MulticastSet) int { return heuristics.BroadcastTraffic(m) },
		"X-first":        func(ws *heuristics.Workspace, k core.MulticastSet) int { return ws.XFirstMT(m, k) },
		"divided greedy": func(ws *heuristics.Workspace, k core.MulticastSet) int { return ws.DividedGreedyMT(m, k) },
	}, []string{"one-to-one", "broadcast", "X-first", "divided greedy"})
	return fig
}

// Fig76PathTrafficCube reproduces Fig. 7.6: additional traffic of the
// deadlock-free path schemes on a 6-cube.
func Fig76PathTrafficCube(opts Options) *stats.Figure {
	h := topology.NewHypercube(6)
	fig := &stats.Figure{ID: "Fig 7.6", Title: "Multicast methods on a 6-cube",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, h, KValuesSmall, opts, registryTraffic(mustState(h),
		"dual-path", "multi-path", "fixed-path"),
		[]string{"dual-path", "multi-path", "fixed-path"})
	return fig
}

// Fig77PathTrafficMesh reproduces Fig. 7.7: additional traffic of the
// path schemes on an 8x8 mesh.
func Fig77PathTrafficMesh(opts Options) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	fig := &stats.Figure{ID: "Fig 7.7", Title: "Multicast methods on an 8x8 mesh",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, m, KValuesSmall, opts, registryTraffic(mustState(m),
		"dual-path", "multi-path", "fixed-path"),
		[]string{"dual-path", "multi-path", "fixed-path"})
	return fig
}

// registryTraffic builds one traffic-counting closure per registry
// scheme name, all sharing one precomputed topology state. Registry
// routers plan from immutable state, so the closures are safe on worker
// goroutines.
func registryTraffic(st *routing.State, names ...string) map[string]staticAlgo {
	out := make(map[string]staticAlgo, len(names))
	for _, name := range names {
		r := mustRouter(name, st, routing.Options{})
		out[name] = func(_ *heuristics.Workspace, k core.MulticastSet) int { return r.PlanSet(k).Traffic() }
	}
	return out
}

// AblationLabeling compares the average dual-path traffic on a 16x16 mesh
// under three Hamiltonian labelings — the paper's boustrophedon, the
// transposed serpentine, and the comb cycle of Table 5.1 used as a path —
// quantifying the Fig. 6.10 observation that Hamilton-path selection
// matters.
func AblationLabeling(opts Options) *stats.Figure {
	m := topology.NewMesh2D(16, 16)
	comb, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		panic(err)
	}
	labelings := []struct {
		name string
		l    labeling.Labeling
	}{
		{"boustrophedon", labeling.NewMeshBoustrophedon(m)},
		{"column-major", labeling.NewMeshColumnMajor(m)},
		{"comb cycle", labeling.PathLabeling{Cycle: comb}},
	}
	fig := &stats.Figure{ID: "Ablation A", Title: "Dual-path traffic under different Hamilton labelings (16x16 mesh)",
		XLabel: "destinations", YLabel: "additional traffic"}
	algos := make(map[string]staticAlgo, len(labelings))
	var order []string
	for _, entry := range labelings {
		r := mustRouter("dual-path", routing.NewStateWithLabeling(m, entry.l), routing.Options{})
		algos[entry.name] = func(_ *heuristics.Workspace, k core.MulticastSet) int { return r.PlanSet(k).Traffic() }
		order = append(order, entry.name)
	}
	staticSweep(fig, m, KValuesSmall, opts, algos, order)
	return fig
}

// AblationDestinationOrder compares sorted-by-label visiting against the
// unsorted (arrival-order) path on a 16x16 mesh: the ordering is what
// keeps the multicast path short (and label-monotone, hence
// deadlock-free).
func AblationDestinationOrder(opts Options) *stats.Figure {
	m := topology.NewMesh2D(16, 16)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		panic(err)
	}
	router := core.XYRouter{Mesh: m}
	unsorted := func(_ *heuristics.Workspace, k core.MulticastSet) int {
		total := 0
		at := k.Source
		for _, d := range k.Dests {
			total += len(core.UnicastPath(router, at, d)) - 1
			at = d
		}
		return total
	}
	fig := &stats.Figure{ID: "Ablation B", Title: "Sorted vs unsorted multicast path (16x16 mesh)",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, m, KValuesSmall, opts, map[string]staticAlgo{
		"sorted MP":     func(ws *heuristics.Workspace, k core.MulticastSet) int { return ws.SortedMP(m, c, k) },
		"unsorted path": unsorted,
	}, []string{"sorted MP", "unsorted path"})
	return fig
}
