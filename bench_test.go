// Benchmarks regenerating every table and figure of the dissertation's
// evaluation, one per artifact (see the experiment index in DESIGN.md).
// Each benchmark iteration regenerates the artifact at reduced workload
// scale; cmd/mcfigures produces the full-fidelity versions.
package multicastnet_test

import (
	"io"
	"testing"

	"multicastnet"
	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/experiments"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// benchOpts keeps the static figures cheap per iteration.
func benchOpts() experiments.Options { return experiments.Options{Reps: 10, Seed: 1990} }

// benchDyn keeps the dynamic figures cheap per iteration.
func benchDyn() experiments.DynamicOptions {
	return experiments.DynamicOptions{
		Seed: 1990, MaxCycles: 30_000, Warmup: 100, BatchSize: 100,
		Loads: []float64{1000, 300},
		Dests: []int{5, 25},
	}
}

func sinkFigure(b *testing.B, fig interface {
	WriteTable(w io.Writer) error
}) {
	b.Helper()
	if err := fig.WriteTable(io.Discard); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTable51_MeshHamiltonCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteTable51(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable52_MeshSortKeys(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteTable52(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable53_CubeHamiltonCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteTable53(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable54_CubeSortKeys(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteTable54(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig57_SortedMPExample(b *testing.B) {
	m := topology.NewMesh2D(4, 4)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		b.Fatal(err)
	}
	k := core.MustMulticastSet(m, 9, []topology.NodeID{0, 1, 6, 12})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if heuristics.SortedMP(m, c, k).Traffic() != 8 {
			b.Fatal("unexpected route")
		}
	}
}

func BenchmarkFig58_SortedMPCubeExample(b *testing.B) {
	h := topology.NewHypercube(4)
	c, err := labeling.CubeHamiltonCycle(h)
	if err != nil {
		b.Fatal(err)
	}
	k := core.MustMulticastSet(h, 0b0011,
		[]topology.NodeID{0b0100, 0b0111, 0b1100, 0b1010, 0b1111})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if heuristics.SortedMP(h, c, k).Traffic() != 8 {
			b.Fatal("unexpected route")
		}
	}
}

func BenchmarkFig59_GreedySTExamples(b *testing.B) {
	m := topology.NewMesh2D(8, 8)
	kMesh := core.MustMulticastSet(m, m.ID(2, 7), []topology.NodeID{
		m.ID(0, 5), m.ID(2, 3), m.ID(4, 1), m.ID(6, 3), m.ID(7, 4)})
	h := topology.NewHypercube(6)
	kCube := core.MustMulticastSet(h, 0b000110,
		[]topology.NodeID{0b010101, 0b000001, 0b001101, 0b101001, 0b110001})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if heuristics.GreedyST(m, kMesh).Links != 14 {
			b.Fatal("unexpected mesh tree")
		}
		heuristics.GreedyST(h, kCube)
	}
}

func BenchmarkFig511_XFirstExample(b *testing.B) {
	m := topology.NewMesh2D(6, 6)
	k := core.MustMulticastSet(m, m.ID(3, 2), []topology.NodeID{
		m.ID(2, 0), m.ID(3, 0), m.ID(4, 0), m.ID(1, 1), m.ID(5, 1),
		m.ID(0, 2), m.ID(1, 3), m.ID(2, 5), m.ID(3, 5), m.ID(5, 5)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if heuristics.XFirstMT(m, k).Links != 23 {
			b.Fatal("unexpected X-first traffic")
		}
		heuristics.DividedGreedyMT(m, k)
	}
}

func BenchmarkFig613_PathRoutingExamples(b *testing.B) {
	m := topology.NewMesh2D(6, 6)
	l := labeling.NewMeshBoustrophedon(m)
	k := core.MustMulticastSet(m, m.ID(3, 2), []topology.NodeID{
		m.ID(0, 0), m.ID(0, 2), m.ID(0, 5), m.ID(1, 3), m.ID(4, 5),
		m.ID(5, 0), m.ID(5, 1), m.ID(5, 3), m.ID(5, 4)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dfr.DualPath(m, l, k).Traffic() != 33 {
			b.Fatal("unexpected dual-path traffic")
		}
		if dfr.MultiPathMesh(m, l, k).Traffic() != 21 {
			b.Fatal("unexpected multi-path traffic")
		}
		if dfr.FixedPath(m, l, k).Traffic() != 35 {
			b.Fatal("unexpected fixed-path traffic")
		}
	}
}

func BenchmarkFig619_CubePathExamples(b *testing.B) {
	h := topology.NewHypercube(4)
	l := labeling.NewHypercubeGray(h)
	k := core.MustMulticastSet(h, 0b1100,
		[]topology.NodeID{0b0100, 0b0011, 0b0111, 0b1000, 0b1111})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dfr.DualPath(h, l, k)
		if dfr.MultiPathCube(h, l, k).Traffic() != 7 {
			b.Fatal("unexpected multi-path traffic")
		}
	}
}

func BenchmarkFig23_SwitchingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig23Switching())
	}
}

func BenchmarkFig61_TreeDeadlock(b *testing.B) {
	h := topology.NewHypercube(3)
	for i := 0; i < b.N; i++ {
		rec := dfr.NewDependencyRecorder()
		rec.AddTree(dfr.ECubeBroadcastTree(h, 0))
		rec.AddTree(dfr.ECubeBroadcastTree(h, 1))
		if rec.FindCycle() == nil {
			b.Fatal("expected the Fig 6.1 cycle")
		}
	}
}

func BenchmarkFig71_SortedMPMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig71SortedMPMesh(benchOpts()))
	}
}

func BenchmarkFig72_SortedMPCube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig72SortedMPCube(benchOpts()))
	}
}

func BenchmarkFig73_GreedySTMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig73GreedySTMesh(benchOpts()))
	}
}

func BenchmarkFig74_GreedySTCube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig74GreedySTCube(benchOpts()))
	}
}

func BenchmarkFig75_MTMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig75MTMesh(benchOpts()))
	}
}

func BenchmarkFig76_PathTrafficCube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig76PathTrafficCube(benchOpts()))
	}
}

func BenchmarkFig77_PathTrafficMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig77PathTrafficMesh(benchOpts()))
	}
}

func BenchmarkFig78_LatencyVsLoadDouble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig78LatencyVsLoadDouble(benchDyn()))
	}
}

func BenchmarkFig79_LatencyVsDestsDouble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig79LatencyVsDestsDouble(benchDyn()))
	}
}

func BenchmarkFig710_LatencyVsLoadSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig710LatencyVsLoadSingle(benchDyn()))
	}
}

func BenchmarkFig711_LatencyVsDestsSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig711LatencyVsDestsSingle(benchDyn()))
	}
}

func BenchmarkExt_VirtualChannelsStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.ExtVirtualChannelsStatic(benchOpts()))
	}
}

func BenchmarkExt_VirtualChannelsDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.ExtVirtualChannelsDynamic(benchDyn()))
	}
}

func BenchmarkExt_UnicastMix(b *testing.B) {
	d := benchDyn()
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.ExtUnicastMix(d))
	}
}

func BenchmarkExt_AdaptiveRouting(b *testing.B) {
	d := benchDyn()
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.ExtAdaptive(d))
	}
}

func BenchmarkExt_DualPath3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.ExtDualPath3D(benchOpts()))
	}
}

func BenchmarkAblation_LabelingChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.AblationLabeling(benchOpts()))
	}
}

func BenchmarkAblation_UnsortedPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.AblationDestinationOrder(benchOpts()))
	}
}

// BenchmarkRouting_* measure the per-multicast routing cost of each
// scheme on a 16x16 mesh with 10 destinations — the decision latency a
// router implementation would pay.
func benchmarkRouting(b *testing.B, route func(core.MulticastSet) int) {
	m := topology.NewMesh2D(16, 16)
	rng := stats.NewRand(1)
	sets := make([]core.MulticastSet, 64)
	for i := range sets {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		raw := rng.Sample(m.Nodes(), 10, int(src))
		dests := make([]topology.NodeID, len(raw))
		for j, v := range raw {
			dests[j] = topology.NodeID(v)
		}
		sets[i] = core.MustMulticastSet(m, src, dests)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += route(sets[i%len(sets)])
	}
	_ = total
}

func BenchmarkRouting_SortedMP(b *testing.B) {
	m := topology.NewMesh2D(16, 16)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkRouting(b, func(k core.MulticastSet) int { return heuristics.SortedMP(m, c, k).Traffic() })
}

func BenchmarkRouting_GreedyST(b *testing.B) {
	m := topology.NewMesh2D(16, 16)
	benchmarkRouting(b, func(k core.MulticastSet) int { return heuristics.GreedyST(m, k).Links })
}

func BenchmarkRouting_DualPath(b *testing.B) {
	m := topology.NewMesh2D(16, 16)
	l := labeling.NewMeshBoustrophedon(m)
	benchmarkRouting(b, func(k core.MulticastSet) int { return dfr.DualPath(m, l, k).Traffic() })
}

func BenchmarkRouting_MultiPath(b *testing.B) {
	m := topology.NewMesh2D(16, 16)
	l := labeling.NewMeshBoustrophedon(m)
	benchmarkRouting(b, func(k core.MulticastSet) int { return dfr.MultiPathMesh(m, l, k).Traffic() })
}

// BenchmarkSimulator measures raw simulator throughput: cycles per second
// under a steady dual-path workload.
func BenchmarkSimulator(b *testing.B) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	cfg := wormsim.Config{
		Topology:               m,
		Route:                  wormsim.DualPathScheme(m, l),
		MeanInterarrivalMicros: 400,
		AvgDests:               10,
		Seed:                   5,
		BatchSize:              1 << 30, // never converge; run the full budget
		MinBatches:             1 << 30,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.MaxCycles = 20_000
		if _, err := wormsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWormsimCyclesPerSec reports the simulator core's cycle
// throughput on the same workload as `mcfigures -bench`, so the
// committed BENCH_wormsim.json baseline and this benchmark are directly
// comparable.
func BenchmarkWormsimCyclesPerSec(b *testing.B) {
	var cycles int64
	var secs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, s := experiments.SimThroughput(1990, 200_000)
		cycles += c
		secs += s
	}
	b.ReportMetric(float64(cycles)/secs, "cycles/sec")
}

// BenchmarkDynamicFigures regenerates all four Section 7.2 figures per
// iteration — the end-to-end cost the figure pipeline pays.
func BenchmarkDynamicFigures(b *testing.B) {
	d := benchDyn()
	for i := 0; i < b.N; i++ {
		sinkFigure(b, experiments.Fig78LatencyVsLoadDouble(d))
		sinkFigure(b, experiments.Fig79LatencyVsDestsDouble(d))
		sinkFigure(b, experiments.Fig710LatencyVsLoadSingle(d))
		sinkFigure(b, experiments.Fig711LatencyVsDestsSingle(d))
	}
}

// BenchmarkPublicAPI exercises the facade end to end.
func BenchmarkPublicAPI(b *testing.B) {
	sys, err := multicastnet.NewMeshSystem(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	k, err := sys.Set(27, 4, 18, 35, 49, 62)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.DualPath(k).Traffic() == 0 {
			b.Fatal("empty route")
		}
	}
}
