package wormsim

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// TestInjectFlatTagCompletions pins the tagged-completion contract: every
// tagged injection reports exactly one completion carrying its tag, with
// the same latency as the untagged OnComplete observer, and the stream is
// identical under sharded stepping.
func TestInjectFlatTagCompletions(t *testing.T) {
	type completion struct {
		tag uint64
		lat int64
	}
	run := func(shards int) []completion {
		m := topology.NewMesh2D(8, 8)
		st := routing.NewStateWithLabeling(m, labeling.NewMeshBoustrophedon(m))
		r, err := routing.New("dual-path", st)
		if err != nil {
			t.Fatal(err)
		}
		fr := routing.Flat(r, routing.NewPlanCache(0))
		n := NewNetwork(m)
		if shards > 1 {
			n.SetShards(shards)
			defer n.Close()
		}
		var got []completion
		var untagged []int64
		n.OnCompleteTag(func(tag uint64, lat int64) { got = append(got, completion{tag, lat}) })
		n.OnComplete(func(lat int64) { untagged = append(untagged, lat) })
		rng := stats.NewRand(7)
		for tag := uint64(1); tag <= 24; tag++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			raw := rng.Sample(m.Nodes(), 4, int(src))
			dests := make([]topology.NodeID, len(raw))
			for i, v := range raw {
				dests[i] = topology.NodeID(v)
			}
			k := core.MustMulticastSet(m, src, dests)
			n.InjectFlatTag(fr.FlatSet(k), 8, tag)
		}
		if !runUntilQuiet(n, 10_000) {
			t.Fatalf("shards=%d did not drain", shards)
		}
		if len(got) != 24 {
			t.Fatalf("shards=%d: %d tagged completions, want 24", shards, len(got))
		}
		seen := map[uint64]bool{}
		for i, c := range got {
			if c.tag < 1 || c.tag > 24 || seen[c.tag] {
				t.Fatalf("shards=%d: bad or duplicate tag %d", shards, c.tag)
			}
			seen[c.tag] = true
			if c.lat != untagged[i] {
				t.Fatalf("shards=%d: tagged latency %d != untagged %d at %d", shards, c.lat, untagged[i], i)
			}
		}
		return got
	}
	serial := run(0)
	sharded := run(4)
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("completion %d diverged: serial %+v sharded %+v", i, serial[i], sharded[i])
		}
	}
}

// TestIdleFastForward pins the exported idle fast-forward: jumping the
// clock of a frozen network is exact (a worm injected after the jump sees
// the advanced cycle), and FastForward refuses to move a network with
// movable worms or to run backwards.
func TestIdleFastForward(t *testing.T) {
	m := topology.NewMesh2D(8, 1)
	n := NewNetwork(m)
	if !n.Idle() {
		t.Fatal("fresh network not idle")
	}
	n.FastForward(100)
	if n.Cycle() != 100 {
		t.Fatalf("cycle %d after idle fast-forward, want 100", n.Cycle())
	}
	n.FastForward(50) // backwards: no-op
	if n.Cycle() != 100 {
		t.Fatalf("cycle %d after backwards fast-forward, want 100", n.Cycle())
	}

	var completed int64 = -1
	n.OnComplete(func(c int64) { completed = c })
	const L = 8
	n.InjectMulticast([]dfr.PathRoute{pathTo(0, 1, 2, 3)}, nil, L)
	if n.Idle() {
		t.Fatal("network with a movable worm reports idle")
	}
	before := n.Cycle()
	n.FastForward(before + 1000) // movable: no-op
	if n.Cycle() != before {
		t.Fatalf("fast-forward moved a busy network: %d -> %d", before, n.Cycle())
	}
	if !runUntilQuiet(n, 1000) {
		t.Fatal("did not drain")
	}
	if completed != 3+L-1 {
		t.Fatalf("completion latency %d, want %d (fast-forward must not distort)", completed, 3+L-1)
	}
}
