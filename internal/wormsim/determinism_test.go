package wormsim

import (
	"testing"

	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// TestRunDeterministic is the simulator-level regression test for the
// event-driven core: two back-to-back runs of the same Config must
// produce identical Results field for field — nothing in the spawn
// heap, wakeup lists, or idle fast-forward may depend on anything but
// the seed.
func TestRunDeterministic(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	for _, cfg := range []Config{
		{
			Topology:               m,
			Route:                  DualPathScheme(m, l),
			MeanInterarrivalMicros: 300,
			AvgDests:               10,
			Seed:                   42,
			WarmupDeliveries:       100,
			BatchSize:              100,
			MinBatches:             5,
			MaxCycles:              60_000,
			Check:                  true,
		},
		{
			Topology:               m,
			Route:                  MultiPathMeshScheme(m, l),
			MeanInterarrivalMicros: 400,
			AvgDests:               15,
			UnicastFraction:        0.5,
			Seed:                   7,
			WarmupDeliveries:       50,
			BatchSize:              50,
			MinBatches:             5,
			MaxCycles:              40_000,
			Check:                  true,
		},
	} {
		first, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		second, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Fatalf("identical configs diverged:\nfirst:  %+v\nsecond: %+v", first, second)
		}
		if first.Deliveries == 0 {
			t.Fatal("run delivered nothing; determinism check is vacuous")
		}
	}
}
