// Package dfr implements the deadlock-free multicast wormhole routing
// schemes of Chapter 6: the tree-like double-channel X-first algorithm
// (Section 6.2.1) and the path-like dual-path, multi-path, and fixed-path
// algorithms (Sections 6.2.2 and 6.3), for both 2D mesh and hypercube
// topologies, together with channel dependency graph construction for
// verifying deadlock freedom (Section 2.3.4).
package dfr

import (
	"fmt"
	"sort"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// Channel identifies a unidirectional physical channel. Class
// distinguishes the replicated copies of a physical link in
// double-channel networks (Section 6.2.1); single-channel schemes use
// class 0.
type Channel struct {
	From, To topology.NodeID
	Class    int
}

// String implements fmt.Stringer.
func (c Channel) String() string {
	if c.Class == 0 {
		return fmt.Sprintf("[%d,%d]", c.From, c.To)
	}
	return fmt.Sprintf("[%d,%d]#%d", c.From, c.To, c.Class)
}

// PathRoute is one wormhole multicast path: the node visiting sequence, a
// channel class, and the set of destinations consumed along it. It is the
// unit of the multicast star model under wormhole switching: the message
// is never replicated once in the network.
type PathRoute struct {
	Nodes []topology.NodeID
	Class int
	Dests []topology.NodeID
	// Classes, when non-nil, assigns a channel class per hop
	// (len(Nodes)-1 entries) and overrides Class. Degraded-mode repair
	// paths use it to escalate the class at each direction reversal so a
	// single worm can cross subnetwork boundaries without creating
	// channel-dependency cycles (see internal/fault).
	Classes []int
}

// HopClass returns the channel class of hop i (the channel from Nodes[i]
// to Nodes[i+1]).
func (p PathRoute) HopClass(i int) int {
	if p.Classes != nil {
		return p.Classes[i]
	}
	return p.Class
}

// Channels returns the channel sequence of the path.
func (p PathRoute) Channels() []Channel {
	out := make([]Channel, 0, len(p.Nodes)-1)
	for i := 1; i < len(p.Nodes); i++ {
		out = append(out, Channel{From: p.Nodes[i-1], To: p.Nodes[i], Class: p.HopClass(i - 1)})
	}
	return out
}

// Star is a complete path-based multicast route: one PathRoute per
// submulticast.
type Star struct {
	Source topology.NodeID
	Paths  []PathRoute
}

// Traffic returns the total number of channels used.
func (s Star) Traffic() int {
	total := 0
	for _, p := range s.Paths {
		total += len(p.Nodes) - 1
	}
	return total
}

// MaxDistance returns the largest hop count from the source to any
// destination.
func (s Star) MaxDistance() int {
	maxd := 0
	for _, p := range s.Paths {
		pos := make(map[topology.NodeID]int, len(p.Nodes))
		for i, n := range p.Nodes {
			if _, ok := pos[n]; !ok {
				pos[n] = i
			}
		}
		for _, d := range p.Dests {
			if h, ok := pos[d]; ok && h > maxd {
				maxd = h
			}
		}
	}
	return maxd
}

// CoreStar converts to the core model representation for validation.
func (s Star) CoreStar() core.Star {
	out := core.Star{}
	for _, p := range s.Paths {
		out.Paths = append(out.Paths, core.Path{Nodes: p.Nodes})
	}
	return out
}

// Validate checks that the star delivers every destination exactly once
// over host-graph channels, each path starting at the source.
func (s Star) Validate(t topology.Topology, k core.MulticastSet) error {
	delivered := make(map[topology.NodeID]int)
	for i, p := range s.Paths {
		if len(p.Nodes) == 0 || p.Nodes[0] != s.Source {
			return fmt.Errorf("dfr: path %d does not start at source", i)
		}
		for j := 1; j < len(p.Nodes); j++ {
			if !t.Adjacent(p.Nodes[j-1], p.Nodes[j]) {
				return fmt.Errorf("dfr: path %d uses non-edge (%d,%d)", i, p.Nodes[j-1], p.Nodes[j])
			}
		}
		onPath := make(map[topology.NodeID]bool, len(p.Nodes))
		for _, n := range p.Nodes {
			onPath[n] = true
		}
		for _, d := range p.Dests {
			if !onPath[d] {
				return fmt.Errorf("dfr: path %d does not visit its destination %d", i, d)
			}
			delivered[d]++
		}
	}
	for _, d := range k.Dests {
		if delivered[d] != 1 {
			return fmt.Errorf("dfr: destination %d delivered %d times", d, delivered[d])
		}
	}
	return nil
}

// HighLowPartition is the message preparation of the dual-path algorithm
// (Fig. 6.11): split the destinations into D_H (labels above the source,
// ascending) and D_L (labels below, descending).
func HighLowPartition(l labeling.Labeling, k core.MulticastSet) (dh, dl []topology.NodeID) {
	l0 := l.Label(k.Source)
	for _, d := range k.Dests {
		if l.Label(d) > l0 {
			dh = append(dh, d)
		} else {
			dl = append(dl, d)
		}
	}
	sort.Slice(dh, func(i, j int) bool { return l.Label(dh[i]) < l.Label(dh[j]) })
	sort.Slice(dl, func(i, j int) bool { return l.Label(dl[i]) > l.Label(dl[j]) })
	return dh, dl
}

// routeThrough extends a path from its last node through every
// destination in order using the routing function R (the message routing
// of Fig. 6.12 run to completion).
func routeThrough(t topology.Topology, l labeling.Labeling, start topology.NodeID,
	dests []topology.NodeID) []topology.NodeID {
	nodes := []topology.NodeID{start}
	cur := start
	for _, d := range dests {
		if cur == d {
			continue
		}
		nodes = core.AppendRoute(t, l, cur, d, nodes)
		cur = d
	}
	return nodes
}

// DualPath runs the dual-path multicast routing algorithm (Figs. 6.11 and
// 6.12): at most two label-monotone paths, one through the high-channel
// network and one through the low-channel network. Each subnetwork is
// acyclic, so the scheme is deadlock-free (Assertion 2, Corollary 6.1).
func DualPath(t topology.Topology, l labeling.Labeling, k core.MulticastSet) Star {
	dh, dl := HighLowPartition(l, k)
	s := Star{Source: k.Source}
	if len(dh) > 0 {
		s.Paths = append(s.Paths, PathRoute{
			Nodes: routeThrough(t, l, k.Source, dh),
			Dests: dh,
		})
	}
	if len(dl) > 0 {
		s.Paths = append(s.Paths, PathRoute{
			Nodes: routeThrough(t, l, k.Source, dl),
			Dests: dl,
		})
	}
	return s
}

// FixedPath runs the fixed-path routing of Section 6.2.2 [49]: the upper
// path follows the Hamiltonian path node by node up to the
// highest-labeled destination; the lower path walks down to the
// lowest-labeled one. Trivial to implement in hardware, at the cost of
// visiting every intermediate label.
func FixedPath(t topology.Topology, l labeling.Labeling, k core.MulticastSet) Star {
	dh, dl := HighLowPartition(l, k)
	s := Star{Source: k.Source}
	l0 := l.Label(k.Source)
	if len(dh) > 0 {
		top := l.Label(dh[len(dh)-1])
		nodes := make([]topology.NodeID, 0, top-l0+1)
		for lab := l0; lab <= top; lab++ {
			nodes = append(nodes, l.At(lab))
		}
		s.Paths = append(s.Paths, PathRoute{Nodes: nodes, Dests: dh})
	}
	if len(dl) > 0 {
		bottom := l.Label(dl[len(dl)-1])
		nodes := make([]topology.NodeID, 0, l0-bottom+1)
		for lab := l0; lab >= bottom; lab-- {
			nodes = append(nodes, l.At(lab))
		}
		s.Paths = append(s.Paths, PathRoute{Nodes: nodes, Dests: dl})
	}
	return s
}

// MultiPathMesh runs the multi-path routing algorithm for the 2D mesh
// (Fig. 6.14): D_H is further split between the (up to) two
// higher-labeled neighbors of the source by x-coordinate — the neighbor
// in the source's row serves the destinations on its side of the source
// column, the neighbor in the next row serves the rest — and D_L
// symmetrically, giving up to four label-monotone paths.
func MultiPathMesh(m *topology.Mesh2D, l labeling.Labeling, k core.MulticastSet) Star {
	return MultiPathMeshOn(m, m, l, k)
}

// MultiPathMeshOn is MultiPathMesh with the routed topology decoupled
// from the coordinate mesh: t supplies adjacency and distances (it may be
// a topology.Masked view of m, so degraded-mode routing can run the
// multi-path split over a faulty mesh), m supplies the (x, y) geometry of
// the split rule.
func MultiPathMeshOn(t topology.Topology, m *topology.Mesh2D, l labeling.Labeling, k core.MulticastSet) Star {
	dh, dl := HighLowPartition(l, k)
	s := Star{Source: k.Source}
	x0, _ := m.XY(k.Source)
	split := func(group []topology.NodeID, higher bool) [][]topology.NodeID {
		if len(group) == 0 {
			return nil
		}
		// Find the horizontal neighbor on the relevant side of the
		// labeling, if any.
		var horiz topology.NodeID
		hasHoriz := false
		var buf [4]topology.NodeID
		_, y0 := m.XY(k.Source)
		for _, p := range t.Neighbors(k.Source, buf[:0]) {
			_, py := m.XY(p)
			if py != y0 {
				continue
			}
			if higher == (l.Label(p) > l.Label(k.Source)) {
				horiz, hasHoriz = p, true
			}
		}
		if !hasHoriz {
			return [][]topology.NodeID{group}
		}
		hx, _ := m.XY(horiz)
		var side, rest []topology.NodeID
		for _, d := range group {
			dx, _ := m.XY(d)
			if (hx > x0 && dx >= hx) || (hx < x0 && dx <= hx) {
				side = append(side, d)
			} else {
				rest = append(rest, d)
			}
		}
		var out [][]topology.NodeID
		if len(side) > 0 {
			out = append(out, side)
		}
		if len(rest) > 0 {
			out = append(out, rest)
		}
		return out
	}
	for _, g := range split(dh, true) {
		s.Paths = append(s.Paths, PathRoute{Nodes: routeThrough(t, l, k.Source, g), Dests: g})
	}
	for _, g := range split(dl, false) {
		s.Paths = append(s.Paths, PathRoute{Nodes: routeThrough(t, l, k.Source, g), Dests: g})
	}
	return s
}

// MultiPathCube runs the multi-path routing algorithm for the hypercube
// (Fig. 6.20): the high destinations are split among the source's d
// higher-labeled neighbors v_1 < ... < v_d by label interval
// D_Hi = {w : l(v_i) <= l(w) < l(v_{i+1})}, each submulticast taking its
// first hop to v_i; D_L symmetrically among the lower-labeled neighbors.
func MultiPathCube(h *topology.Hypercube, l labeling.Labeling, k core.MulticastSet) Star {
	return MultiPathCubeOn(h, h, l, k)
}

// MultiPathCubeOn is MultiPathCube with the routed topology decoupled
// from the cube: t supplies adjacency and distances (it may be a
// topology.Masked view of h for degraded-mode routing); h is only
// documentation of the underlying geometry.
func MultiPathCubeOn(t topology.Topology, h *topology.Hypercube, l labeling.Labeling, k core.MulticastSet) Star {
	dh, dl := HighLowPartition(l, k)
	s := Star{Source: k.Source}
	l0 := l.Label(k.Source)
	var buf [32]topology.NodeID
	var hi, lo []topology.NodeID
	for _, p := range t.Neighbors(k.Source, buf[:0]) {
		if l.Label(p) > l0 {
			hi = append(hi, p)
		} else {
			lo = append(lo, p)
		}
	}
	sort.Slice(hi, func(i, j int) bool { return l.Label(hi[i]) < l.Label(hi[j]) })
	sort.Slice(lo, func(i, j int) bool { return l.Label(lo[i]) > l.Label(lo[j]) })

	// Assign each high destination to the interval [l(v_i), l(v_{i+1})).
	// Destinations below l(v_1) cannot exist: v_1 is the Hamilton-path
	// successor with label l0+1.
	assign := func(group, vs []topology.NodeID, higher bool) map[topology.NodeID][]topology.NodeID {
		out := make(map[topology.NodeID][]topology.NodeID)
		for _, d := range group {
			ld := l.Label(d)
			chosen := vs[0]
			for _, v := range vs {
				lv := l.Label(v)
				if higher && lv <= ld {
					chosen = v
				}
				if !higher && lv >= ld {
					chosen = v
				}
			}
			out[chosen] = append(out[chosen], d)
		}
		return out
	}
	emit := func(vs []topology.NodeID, groups map[topology.NodeID][]topology.NodeID) {
		for _, v := range vs {
			g := groups[v]
			if len(g) == 0 {
				continue
			}
			nodes := append([]topology.NodeID{k.Source}, routeThrough(t, l, v, g)...)
			s.Paths = append(s.Paths, PathRoute{Nodes: nodes, Dests: g})
		}
	}
	if len(dh) > 0 {
		if len(hi) == 0 {
			// Every up-link of the source is masked out; a single direct
			// path is the best this scheme can offer (the degraded router
			// validates or repairs it).
			s.Paths = append(s.Paths, PathRoute{Nodes: routeThrough(t, l, k.Source, dh), Dests: dh})
		} else {
			emit(hi, assign(dh, hi, true))
		}
	}
	if len(dl) > 0 {
		if len(lo) == 0 {
			s.Paths = append(s.Paths, PathRoute{Nodes: routeThrough(t, l, k.Source, dl), Dests: dl})
		} else {
			emit(lo, assign(dl, lo, false))
		}
	}
	return s
}
