package wormsim

import (
	"fmt"
	"math"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// Injection is the routed form of one multicast, as produced by a routing
// scheme: any mix of path routes and tree routes, or their dense CSR form
// (Flat takes precedence when set — see InjectFlat).
type Injection struct {
	Paths []dfr.PathRoute
	Trees []dfr.TreeRoute
	Flat  *routing.FlatPlan
}

// RouteFunc routes a multicast set into worms. It is how the Chapter 6
// schemes plug into the simulator.
type RouteFunc func(k core.MulticastSet) Injection

// LiveRouteFunc routes with sight of the live network state (the
// Section 8.2 adaptive extension): the oracle reports current channel
// occupancy at injection time.
type LiveRouteFunc func(k core.MulticastSet, oracle dfr.ChannelOracle) Injection

// WorkloadFunc supplies an externally generated request stream: each
// call returns the next multicast and its injection cycle, in
// nondecreasing cycle order; ok == false ends the stream. It is how the
// workload layer (internal/workload) plugs into the simulator in place
// of the paper's per-node exponential generators.
type WorkloadFunc func() (at int64, k core.MulticastSet, ok bool)

// Config drives one dynamic simulation (Section 7.2).
type Config struct {
	Topology topology.Topology
	Route    RouteFunc
	// LiveRoute, when set, overrides Route with congestion-aware routing.
	LiveRoute LiveRouteFunc

	// MessageBytes is the message length L (the paper uses 128).
	MessageBytes int
	// FlitBytes sets the flit size (1 byte); one cycle moves one flit.
	FlitBytes int
	// BandwidthMBps is the channel speed in Mbytes/s (the paper uses
	// 20), fixing the real-time value of a cycle.
	BandwidthMBps float64

	// MeanInterarrivalMicros is the mean of the exponential
	// inter-message time at each node (the paper's base case is 300 us).
	// Ignored when Workload is set.
	MeanInterarrivalMicros float64
	// AvgDests is the average number of destinations per multicast;
	// destination counts are drawn uniformly from [1, 2*AvgDests-1].
	AvgDests int
	// UnicastFraction is the probability that a generated message is a
	// plain unicast (one destination) instead of a multicast — the mixed
	// unicast/multicast workload of the Section 8.2 interaction study.
	// Zero gives the paper's pure multicast workload.
	UnicastFraction float64

	// Seed makes the run reproducible.
	Seed uint64
	// WarmupDeliveries are discarded before statistics collection.
	WarmupDeliveries int
	// BatchSize and MinBatches parameterize the batch-means stopping
	// rule; the run stops when the 95% CI half-width is below CIFrac of
	// the mean (the paper uses 0.05), or at MaxCycles.
	BatchSize  int
	MinBatches int
	CIFrac     float64
	MaxCycles  int64

	// StallLimit is the no-progress cycle count after which the run is
	// declared deadlocked. Zero selects a safe default.
	StallLimit int64

	// Shards splits in-run stepping across worker goroutines — the
	// region-partitioned parallel engine (shard.go). 0 or 1 selects the
	// serial engine; results are byte-identical at any shard count.
	Shards int

	// Workload, when set, replaces the per-node exponential generators
	// (Section 7.2) with an externally supplied time-ordered request
	// stream: MeanInterarrivalMicros, AvgDests, and UnicastFraction are
	// ignored, and the run ends when the stream is exhausted and the
	// network has drained (or at MaxCycles / on deadlock). Workload
	// cycles are flit cycles, the simulator's native clock.
	Workload WorkloadFunc

	// Faults schedules mid-run hardware failures, sorted by Cycle. Each
	// activation fails the matching channels (killing the worms caught on
	// them) and can swap the routing function for the new fault epoch.
	Faults []ScheduledFault
	// Check runs the full invariant audit (CheckInvariants) at every
	// periodic deadlock-check boundary and at run end — the -simcheck
	// mode. Violations abort the run with an error.
	Check bool
}

// ScheduledFault is one fault-epoch activation inside a dynamic run.
type ScheduledFault struct {
	// Cycle is the activation time; due faults apply before injections.
	Cycle int64
	// Dead reports the channels failing at this epoch (nil fails none —
	// e.g. an epoch that only swaps routing).
	Dead func(c dfr.Channel) bool
	// Route, when non-nil, replaces the routing function from this epoch
	// on — how degraded-mode routing follows the fault schedule.
	Route RouteFunc
}

// validate fills defaults and checks consistency.
func (c *Config) validate() error {
	if c.Topology == nil || (c.Route == nil && c.LiveRoute == nil) {
		return fmt.Errorf("wormsim: config needs Topology and Route (or LiveRoute)")
	}
	if c.MessageBytes <= 0 {
		c.MessageBytes = 128
	}
	if c.FlitBytes <= 0 {
		c.FlitBytes = 1
	}
	if c.BandwidthMBps <= 0 {
		c.BandwidthMBps = 20
	}
	if c.MeanInterarrivalMicros <= 0 && c.Workload == nil {
		return fmt.Errorf("wormsim: MeanInterarrivalMicros must be positive")
	}
	if c.AvgDests <= 0 {
		c.AvgDests = 10
	}
	if c.WarmupDeliveries < 0 {
		return fmt.Errorf("wormsim: negative warmup")
	}
	if c.UnicastFraction < 0 || c.UnicastFraction > 1 {
		return fmt.Errorf("wormsim: UnicastFraction must be in [0,1]")
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 500
	}
	if c.MinBatches <= 0 {
		c.MinBatches = 10
	}
	if c.CIFrac <= 0 {
		c.CIFrac = 0.05
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 5_000_000
	}
	if c.StallLimit <= 0 {
		// Far beyond any legitimate stall: several maximal messages
		// back to back.
		c.StallLimit = int64(20 * (c.MessageBytes/c.FlitBytes + c.Topology.Nodes()))
	}
	return nil
}

// flitMicros returns the real-time duration of one cycle.
func (c *Config) flitMicros() float64 {
	return float64(c.FlitBytes) / c.BandwidthMBps
}

// Result summarizes one dynamic run.
type Result struct {
	// AvgLatencyMicros is the mean per-destination network latency.
	AvgLatencyMicros float64
	// CIHalfWidthMicros is the 95% batch-means confidence half-width.
	CIHalfWidthMicros float64
	// AvgCompletionMicros is the mean whole-multicast latency (last
	// destination delivered).
	AvgCompletionMicros float64
	// Deliveries counts destination deliveries measured (after warmup).
	Deliveries int
	// AvgUnicastLatencyMicros is the mean latency over deliveries of
	// single-destination messages (0 when there were none). Only
	// populated when UnicastFraction > 0.
	AvgUnicastLatencyMicros float64
	// AvgMulticastLatencyMicros is the mean latency over deliveries of
	// multi-destination messages (0 when there were none). Only
	// populated when UnicastFraction > 0.
	AvgMulticastLatencyMicros float64
	// ThroughputPerMs is the measured delivery rate (destination
	// deliveries per millisecond, network-wide) — the throughput metric
	// of Section 2.1. It is computed over the measurement window only:
	// post-warmup deliveries divided by post-warmup time, consistent
	// with Deliveries.
	ThroughputPerMs float64
	// MulticastsSent counts injected multicasts.
	MulticastsSent int
	// Delivered counts every destination delivery, warmup included
	// (Deliveries is the post-warmup measurement subset).
	Delivered int
	// Lost counts destination deliveries dropped by fault-killed worms.
	Lost int
	// WormsKilled counts worms dropped by channel failures.
	WormsKilled int
	// Cycles is the simulated cycle count.
	Cycles int64
	// Deadlocked reports that the network stopped making progress with
	// worms still in flight.
	Deadlocked bool
	// Converged reports that the CI stopping rule was met.
	Converged bool
}

// Run executes a dynamic simulation: every node runs a multicast
// generator with exponential inter-arrival times and uniformly random
// destination sets, the configured scheme routes each multicast, and the
// flit-clock network carries the worms. It returns batch-means latency
// statistics.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	topo := cfg.Topology
	rng := stats.NewRand(cfg.Seed)
	net := NewNetwork(topo)
	if cfg.Shards > 1 {
		net.SetShards(cfg.Shards)
		defer net.Close()
	}
	lengthFlits := cfg.MessageBytes / cfg.FlitBytes
	if lengthFlits < 1 {
		lengthFlits = 1
	}
	flitUs := cfg.flitMicros()

	latency := stats.NewBatchMeans(cfg.BatchSize)
	var completion, uniLatency, mcastLatency stats.Mean
	seen := 0
	var warmupEndCycle int64 // cycle at which the warmup window closed
	net.OnDeliveryDetail(func(_ topology.NodeID, cycles int64, size int) {
		seen++
		if seen > cfg.WarmupDeliveries {
			if seen == cfg.WarmupDeliveries+1 {
				warmupEndCycle = net.Cycle()
			}
			us := float64(cycles) * flitUs
			latency.Add(us)
			if size == 1 {
				uniLatency.Add(us)
			} else {
				mcastLatency.Add(us)
			}
		}
	})
	net.OnComplete(func(cycles int64) {
		completion.Add(float64(cycles) * flitUs)
	})

	res := Result{}
	net.OnLost(func(_ topology.NodeID, _ int) {
		res.Lost++
	})

	// Next-spawn events, one per node, on a min-heap ordered by
	// (cycle, node). Spawn times are strictly increasing per node and the
	// node id breaks ties, so events pop in exactly the order the
	// original per-cycle all-nodes scan visited them — the RNG stream,
	// and hence every result, is bit-identical. Workload mode replaces
	// the generators with a one-request lookahead on the stream.
	var interCycles float64
	var spawns spawnHeap
	var wlAt int64
	var wlSet core.MulticastSet
	var wlOK bool
	if cfg.Workload != nil {
		wlAt, wlSet, wlOK = cfg.Workload()
	} else {
		interCycles = cfg.MeanInterarrivalMicros / flitUs
		spawns = make(spawnHeap, 0, topo.Nodes())
		for i := 0; i < topo.Nodes(); i++ {
			spawns.push(spawnEvent{at: int64(rng.ExpFloat64(interCycles)), node: int32(i)})
		}
	}

	route := cfg.Route
	nextFault := 0
	var lastProgress int64
	checkedBatches := -1 // batch count at the last convergence test
	for net.Cycle() < cfg.MaxCycles {
		now := net.Cycle()
		// Activate due fault epochs before injections: a message spawned
		// at an epoch boundary is already routed by the new epoch.
		for nextFault < len(cfg.Faults) && cfg.Faults[nextFault].Cycle <= now {
			f := cfg.Faults[nextFault]
			if f.Dead != nil {
				net.FailWhere(f.Dead)
			}
			if f.Route != nil {
				route = f.Route
			}
			nextFault++
		}
		if cfg.Workload != nil {
			for wlOK && wlAt <= now {
				inject(net, cfg, route, wlSet, lengthFlits)
				res.MulticastsSent++
				wlAt, wlSet, wlOK = cfg.Workload()
			}
			if !wlOK && net.ActiveWorms() == 0 {
				// Stream exhausted and network drained: the run is done.
				break
			}
		} else {
			for spawns[0].at <= now {
				ev := spawns.pop()
				ev.at += int64(rng.ExpFloat64(interCycles)) + 1
				avg := cfg.AvgDests
				if cfg.UnicastFraction > 0 && rng.Float64() < cfg.UnicastFraction {
					avg = -1 // sentinel: exactly one destination
				}
				inject(net, cfg, route, randomMulticast(topo, rng, topology.NodeID(ev.node), avg), lengthFlits)
				res.MulticastsSent++
				spawns.push(ev)
			}
		}
		if net.Step() {
			lastProgress = net.Cycle()
		} else if net.ActiveWorms() > 0 && net.Cycle()-lastProgress > cfg.StallLimit {
			res.Deadlocked = true
			break
		}
		// A wait-for cycle is a permanent deadlock even while other
		// worms still progress elsewhere; check periodically.
		if net.Cycle()%64 == 0 {
			if net.ActiveWorms() > 1 && net.DetectDeadlock() != nil {
				res.Deadlocked = true
				break
			}
			if cfg.Check {
				if err := net.CheckInvariants(); err != nil {
					return res, fmt.Errorf("cycle %d: %w", net.Cycle(), err)
				}
			}
		}
		// Converged only changes when a batch completes; testing it per
		// batch instead of per cycle skips the t-interval arithmetic on
		// the millions of cycles in between.
		if nb := latency.Batches(); nb != checkedBatches {
			checkedBatches = nb
			if latency.Converged(cfg.CIFrac, cfg.MinBatches) {
				res.Converged = true
				break
			}
		}
		// Event-driven fast-forward: with no movable worm, the network
		// state is frozen until the next injection, so the intervening
		// cycles are no-ops. Jump the clock to the next event the loop
		// would react to — a spawn, a periodic deadlock check (all-blocked
		// worms are a wait-for cycle the %64 check will report), or the
		// stall limit — keeping cycle counts identical to stepping.
		if !net.movable() {
			if cfg.Workload != nil && !wlOK && net.ActiveWorms() == 0 {
				// Stream exhausted and network drained: don't fast-forward
				// to MaxCycles, the run ends at the drain cycle.
				break
			}
			target := cfg.MaxCycles
			if cfg.Workload != nil {
				if wlOK {
					target = wlAt
				}
			} else {
				target = spawns[0].at
			}
			if nextFault < len(cfg.Faults) && cfg.Faults[nextFault].Cycle < target {
				target = cfg.Faults[nextFault].Cycle
			}
			if net.ActiveWorms() > 0 {
				if b := (net.Cycle()/64+1)*64 - 1; b < target {
					target = b
				}
				if s := lastProgress + cfg.StallLimit; s < target {
					target = s
				}
			}
			if target > cfg.MaxCycles {
				target = cfg.MaxCycles
			}
			if target > net.Cycle() {
				net.cycle = target
			}
		}
	}
	if cfg.Check {
		if err := net.CheckInvariants(); err != nil {
			return res, fmt.Errorf("cycle %d (end): %w", net.Cycle(), err)
		}
	}
	res.AvgLatencyMicros = latency.Mean()
	res.CIHalfWidthMicros = latency.HalfWidth()
	if math.IsInf(res.CIHalfWidthMicros, 1) {
		res.CIHalfWidthMicros = 0
	}
	res.AvgCompletionMicros = completion.Value()
	res.AvgUnicastLatencyMicros = uniLatency.Value()
	res.AvgMulticastLatencyMicros = mcastLatency.Value()
	res.Deliveries = latency.Observations()
	res.Delivered = seen
	res.WormsKilled = net.KilledWorms()
	res.Cycles = net.Cycle()
	if cycles := res.Cycles - warmupEndCycle; cycles > 0 {
		elapsedMs := float64(cycles) * flitUs / 1000
		res.ThroughputPerMs = float64(latency.Observations()) / elapsedMs
	}
	return res, nil
}

// inject routes one multicast (live routing when configured) and puts
// its worms on the network.
func inject(net *Network, cfg Config, route RouteFunc, k core.MulticastSet, lengthFlits int) {
	var inj Injection
	if cfg.LiveRoute != nil {
		inj = cfg.LiveRoute(k, net)
	} else {
		inj = route(k)
	}
	if inj.Flat != nil {
		net.InjectFlat(inj.Flat, lengthFlits)
	} else {
		net.InjectMulticast(inj.Paths, inj.Trees, lengthFlits)
	}
}

// spawnEvent is one pending multicast generation: node fires at cycle at.
type spawnEvent struct {
	at   int64
	node int32
}

// spawnHeap is a binary min-heap of spawn events ordered by (at, node).
type spawnHeap []spawnEvent

func (h *spawnHeap) push(e spawnEvent) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p].at < s[i].at || (s[p].at == s[i].at && s[p].node < s[i].node) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *spawnHeap) pop() spawnEvent {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && (s[l].at < s[min].at || (s[l].at == s[min].at && s[l].node < s[min].node)) {
			min = l
		}
		if r < len(s) && (s[r].at < s[min].at || (s[r].at == s[min].at && s[r].node < s[min].node)) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// randomMulticast draws a multicast set with a uniform destination count
// in [1, 2*avg-1] and uniform distinct destinations, as in the paper's
// simulation ("destinations determined by a uniform random number
// generator"). avg = -1 forces a unicast (exactly one destination).
func randomMulticast(t topology.Topology, rng *stats.Rand, src topology.NodeID, avg int) core.MulticastSet {
	if avg < 0 {
		raw := rng.Sample(t.Nodes(), 1, int(src))
		return core.MustMulticastSet(t, src, []topology.NodeID{topology.NodeID(raw[0])})
	}
	maxK := 2*avg - 1
	if maxK > t.Nodes()-1 {
		maxK = t.Nodes() - 1
	}
	k := 1
	if maxK > 1 {
		k = 1 + rng.Intn(maxK)
	}
	raw := rng.Sample(t.Nodes(), k, int(src))
	dests := make([]topology.NodeID, k)
	for i, v := range raw {
		dests[i] = topology.NodeID(v)
	}
	return core.MustMulticastSet(t, src, dests)
}
