// Package profiling is the shared -cpuprofile/-memprofile plumbing for
// the simulator CLIs. Every command registers the same two flags through
// AddFlags, so any study — figures, faults, scale, churn, serving — can
// be profiled under its real workload without a dedicated harness:
//
//	mcdynamic -quick -cpuprofile dyn.cpu.pprof -memprofile dyn.mem.pprof
//	go tool pprof dyn.cpu.pprof
//
// `make profile-wormsim` profiles the canonical serial core benchmark
// (BenchmarkWormsimCyclesPerSec) the same way.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile holds the flag values registered by AddFlags.
type Profile struct {
	cpu string
	mem string
	f   *os.File
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set;
// call it before flag.Parse.
func AddFlags() *Profile {
	p := &Profile{}
	flag.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&p.mem, "memprofile", "", "write an allocation profile to this file at exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. It returns a
// stop function to defer in main: it stops the CPU profile and, when
// -memprofile was given, writes the heap profile (after a GC, so the
// numbers reflect live steady-state memory plus cumulative allocations).
func (p *Profile) Start() (stop func(), err error) {
	if p.cpu != "" {
		p.f, err = os.Create(p.cpu)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(p.f); err != nil {
			p.f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return p.stopAll, nil
}

func (p *Profile) stopAll() {
	if p.f != nil {
		pprof.StopCPUProfile()
		p.f.Close()
		p.f = nil
	}
	if p.mem != "" {
		f, err := os.Create(p.mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
		}
	}
}
