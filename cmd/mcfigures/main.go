// Command mcfigures regenerates every table and figure of the
// dissertation into a results directory: Tables 5.1–5.4, the worked route
// examples of Chapters 5 and 6, the deadlock demonstrations, Fig. 2.3,
// the static figures 7.1–7.7 (plus ablations), and the dynamic figures
// 7.8–7.11. Each artifact is written both as an aligned text table and as
// CSV.
//
// Usage:
//
//	mcfigures -out results          # full fidelity (minutes)
//	mcfigures -out results -quick   # reduced workloads (seconds)
//	mcfigures -bench -out .         # write BENCH_wormsim.json only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"multicastnet/internal/experiments"
	"multicastnet/internal/profiling"
	"multicastnet/internal/stats"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced workloads")
	parallel := flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = sequential)")
	bench := flag.Bool("bench", false, "measure simulator throughput and figure wall times, write BENCH_wormsim.json, and exit")
	benchCompare := flag.String("bench-compare", "", "measure throughput against this committed BENCH_wormsim.json: exit 1 if the serial core regressed >25%, warn from 15% (sharded figures warn-only)")
	prof := profiling.AddFlags()
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *benchCompare != "" {
		runBenchCompare(*benchCompare)
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	sopts := experiments.Defaults()
	dopts := experiments.DynamicDefaults()
	if *quick {
		sopts = experiments.Quick()
		dopts = experiments.DynamicQuick()
	}
	sopts.Parallel = *parallel
	dopts.Parallel = *parallel

	if *bench {
		runBench(*out, dopts)
		return
	}

	// Chapter 5 tables and worked examples.
	writeText(*out, "table_5_1.txt", experiments.WriteTable51)
	writeText(*out, "table_5_2.txt", experiments.WriteTable52)
	writeText(*out, "table_5_3.txt", experiments.WriteTable53)
	writeText(*out, "table_5_4.txt", experiments.WriteTable54)
	writeText(*out, "examples.txt", func(w io.Writer) error { return experiments.ExampleRoutes(w, *parallel) })
	writeText(*out, "deadlocks.txt", func(w io.Writer) error { return experiments.DeadlockDemos(w, *parallel) })

	// Figures.
	figures := []*stats.Figure{
		experiments.Fig23Switching(),
		experiments.Fig71SortedMPMesh(sopts),
		experiments.Fig72SortedMPCube(sopts),
		experiments.Fig73GreedySTMesh(sopts),
		experiments.Fig74GreedySTCube(sopts),
		experiments.Fig75MTMesh(sopts),
		experiments.Fig76PathTrafficCube(sopts),
		experiments.Fig77PathTrafficMesh(sopts),
		experiments.AblationLabeling(sopts),
		experiments.AblationDestinationOrder(sopts),
		experiments.ExtVirtualChannelsStatic(sopts),
		experiments.ExtDualPath3D(sopts),
		experiments.Fig78LatencyVsLoadDouble(dopts),
		experiments.Fig79LatencyVsDestsDouble(dopts),
		experiments.Fig710LatencyVsLoadSingle(dopts),
		experiments.Fig711LatencyVsDestsSingle(dopts),
		experiments.ExtVirtualChannelsDynamic(dopts),
		experiments.ExtUnicastMix(dopts),
		experiments.ExtAdaptive(dopts),
	}
	for _, fig := range figures {
		base := figBase(fig.ID)
		writeFigure(*out, base+".txt", fig, false)
		writeFigure(*out, base+".csv", fig, true)
		fmt.Printf("wrote %s\n", base)
	}
}

// benchReport is the schema of BENCH_wormsim.json: simulator core
// throughput (serial and per shard count) plus the wall time of each
// dynamic figure at the selected fidelity and worker count. The whole
// report is produced in one deterministic pass — every measured run uses
// the same seed and workload, so only the wall times vary between hosts.
type benchReport struct {
	Quick      bool `json:"quick"`
	Parallel   int  `json:"parallel"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	// CyclesPerSec is the serial core throughput, the regression-gate
	// field. SoACyclesPerSec records the same measurement since the
	// struct-of-arrays core rewrite landed, so the before/after is
	// legible in the committed file: cycles_per_sec values predating the
	// rewrite were measured on the pointer-based core.
	CyclesPerSec    float64       `json:"cycles_per_sec"`
	SoACyclesPerSec float64       `json:"soa_cycles_per_sec"`
	Sharded         []shardBench  `json:"sharded"`
	Figures         []figureBench `json:"figures"`
}

// shardBench is the sharded engine's throughput on the identical
// workload: the simulated cycle count matches the serial run exactly
// (the engines are byte-identical), so cycles_per_sec isolates the
// stepping engine's speed.
type shardBench struct {
	Shards       int     `json:"shards"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

type figureBench struct {
	ID     string  `json:"id"`
	WallMs float64 `json:"wall_ms"`
}

func runBench(out string, dopts experiments.DynamicOptions) {
	cycles, secs := experiments.SimThroughput(dopts.Seed, 200_000)
	report := benchReport{
		Quick:           dopts.Loads != nil,
		Parallel:        dopts.Parallel,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		CyclesPerSec:    float64(cycles) / secs,
		SoACyclesPerSec: float64(cycles) / secs,
	}
	for _, shards := range []int{2, 4, 8} {
		scycles, ssecs := experiments.SimThroughputSharded(dopts.Seed, 200_000, shards)
		if scycles != cycles {
			fatal(fmt.Errorf("sharded bench run diverged: %d cycles at shards=%d, serial %d",
				scycles, shards, cycles))
		}
		report.Sharded = append(report.Sharded, shardBench{
			Shards: shards, CyclesPerSec: float64(scycles) / ssecs,
		})
	}
	figs := []struct {
		id string
		fn func(experiments.DynamicOptions) *stats.Figure
	}{
		{"Fig 7.8", experiments.Fig78LatencyVsLoadDouble},
		{"Fig 7.9", experiments.Fig79LatencyVsDestsDouble},
		{"Fig 7.10", experiments.Fig710LatencyVsLoadSingle},
		{"Fig 7.11", experiments.Fig711LatencyVsDestsSingle},
	}
	for _, f := range figs {
		start := time.Now()
		f.fn(dopts)
		report.Figures = append(report.Figures, figureBench{
			ID: f.id, WallMs: float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	path := filepath.Join(out, "BENCH_wormsim.json")
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%.0f cycles/sec)\n", path, report.CyclesPerSec)
}

// runBenchCompare is the CI bench-regression gate. The serial core
// throughput FAILS the build (exit 1) on a >25% drop against the
// committed baseline — large enough that shared-runner noise does not
// trip it, small enough to catch a real hot-loop regression — and warns
// from 15%. The sharded figures stay warn-only: on the 1-core CI host
// they measure coordination overhead, which is far noisier than the
// serial loop.
func runBenchCompare(path string) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var baseline benchReport
	if err := json.Unmarshal(buf, &baseline); err != nil {
		fatal(err)
	}
	if baseline.CyclesPerSec <= 0 {
		fatal(fmt.Errorf("baseline %s has no cycles_per_sec", path))
	}
	seed := experiments.DynamicDefaults().Seed
	cycles, secs := experiments.SimThroughput(seed, 200_000)
	got := float64(cycles) / secs
	ratio := got / baseline.CyclesPerSec
	fmt.Printf("bench-compare: %.0f cycles/sec vs baseline %.0f (%.2fx)\n",
		got, baseline.CyclesPerSec, ratio)
	failed := false
	switch {
	case ratio < 0.75:
		fmt.Printf("FAIL: simulator throughput regressed >25%% against %s\n", path)
		failed = true
	case ratio < 0.85:
		fmt.Printf("WARN: simulator throughput regressed >15%% against %s\n", path)
	}
	for _, sb := range baseline.Sharded {
		scycles, ssecs := experiments.SimThroughputSharded(seed, 200_000, sb.Shards)
		sgot := float64(scycles) / ssecs
		sratio := sgot / sb.CyclesPerSec
		fmt.Printf("bench-compare: shards=%d %.0f cycles/sec vs baseline %.0f (%.2fx)\n",
			sb.Shards, sgot, sb.CyclesPerSec, sratio)
		if sratio < 0.85 {
			fmt.Printf("WARN: sharded (%d) throughput regressed >15%% against %s\n", sb.Shards, path)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func figBase(id string) string {
	s := strings.ToLower(id)
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, ".", "_")
	return s
}

func writeFigure(dir, name string, fig *stats.Figure, csv bool) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if csv {
		err = fig.WriteCSV(f)
	} else {
		err = fig.WriteTable(f)
	}
	if err != nil {
		fatal(err)
	}
}

func writeText(dir, name string, fn func(w io.Writer) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfigures:", err)
	os.Exit(1)
}
