package graphx

import (
	"testing"
)

func TestAddEdgeUnchecked(t *testing.T) {
	g := NewGraph(4)
	g.AddEdgeUnchecked(0, 1)
	g.AddEdgeUnchecked(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 1) || g.HasEdge(0, 2) {
		t.Error("unchecked edges not recorded")
	}
	if g.Edges() != 2 {
		t.Errorf("edges = %d, want 2", g.Edges())
	}
	// AddEdge still rejects a duplicate of an unchecked insertion.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate AddEdge after AddEdgeUnchecked did not panic")
			}
		}()
		g.AddEdge(1, 0)
	}()
	// The unchecked path skips only the duplicate scan, not validation.
	for _, bad := range [][2]int{{2, 2}, {0, 4}, {-1, 0}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdgeUnchecked(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			g.AddEdgeUnchecked(bad[0], bad[1])
		}()
	}
}

func TestScratchBFSMatchesBFSDistances(t *testing.T) {
	g := gridRect(5, 4).Graph()
	var s Scratch
	for src := 0; src < g.N(); src++ {
		s.BFS(g, src)
		want := g.BFSDistances(src)
		for v := 0; v < g.N(); v++ {
			if s.Dist(v) != want[v] {
				t.Fatalf("src %d: Dist(%d) = %d, want %d", src, v, s.Dist(v), want[v])
			}
		}
		if s.Reached() != g.N() {
			t.Fatalf("src %d: reached %d of %d", src, s.Reached(), g.N())
		}
	}
	// Disconnected graph: unreached vertices report -1 and Connected is
	// false through the same scratch.
	h := NewGraph(5)
	h.AddEdge(0, 1)
	h.AddEdge(3, 4)
	s.BFS(h, 0)
	if s.Dist(3) != -1 || s.Dist(1) != 1 {
		t.Errorf("disconnected dists: Dist(3)=%d Dist(1)=%d", s.Dist(3), s.Dist(1))
	}
	if s.Connected(h) {
		t.Error("disconnected graph reported connected")
	}
	if !s.Connected(g) {
		t.Error("grid graph reported disconnected")
	}
}

func TestScratchEpochWrap(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	var s Scratch
	s.BFS(g, 0)
	s.epoch = ^uint32(0) // force the wrap path on the next traversal
	s.BFS(g, 1)
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	if s.Dist(0) != 1 || s.Dist(2) != -1 {
		t.Errorf("post-wrap dists: Dist(0)=%d Dist(2)=%d", s.Dist(0), s.Dist(2))
	}
}

func TestCSRSnapshot(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(2, 1)
	g.AddEdge(0, 1)
	c := NewCSR(g)
	if c.N() != 4 || c.Arcs() != 8 {
		t.Fatalf("N=%d Arcs=%d", c.N(), c.Arcs())
	}
	// Row preserves insertion order; SortedRow is ascending.
	if row := c.Row(2); row[0] != 0 || row[1] != 3 || row[2] != 1 {
		t.Errorf("Row(2) = %v, want [0 3 1]", row)
	}
	if srow := c.SortedRow(2); srow[0] != 0 || srow[1] != 1 || srow[2] != 3 {
		t.Errorf("SortedRow(2) = %v, want [0 1 3]", srow)
	}
	// SortedPos addresses arcs in sorted-row space, symmetric per
	// direction, -1 for non-edges.
	if p := c.SortedPos(2, 3); c.SortedCol[p] != 3 || p < c.RowStart[2] || p >= c.RowStart[3] {
		t.Errorf("SortedPos(2,3) = %d out of row", p)
	}
	if c.SortedPos(0, 3) != -1 {
		t.Error("SortedPos(0,3) should be -1")
	}
	seen := make(map[int32]bool)
	for v := int32(0); v < 4; v++ {
		for _, w := range c.SortedRow(v) {
			p := c.SortedPos(v, w)
			if seen[p] {
				t.Fatalf("arc position %d reused", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != c.Arcs() {
		t.Errorf("distinct arc positions %d, want %d", len(seen), c.Arcs())
	}
}
