GO ?= go

.PHONY: check fmt vet build test race bench bench-baseline bench-wormsim-baseline bench-routing-baseline bench-heuristics-baseline bench-serve-baseline bench-regression profile-wormsim results fuzz check-fault check-scale check-churn check-serve check-workload

## check: everything CI runs — format, vet, build, race tests, quick benchmarks
check: fmt vet build race bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: quick performance smoke — core throughput, figure pipeline, routing engine, heuristic kernels, static sweep scaling
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkWormsimCyclesPerSec|BenchmarkDynamicFigures|BenchmarkSimulator' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkRoutingPlan' -benchtime 100x ./internal/routing
	$(GO) test -run '^$$' -bench 'BenchmarkGreedyST|BenchmarkKMB|BenchmarkSortedMP' -benchmem -benchtime 100x ./internal/heuristics
	$(GO) test -run '^$$' -bench 'BenchmarkStaticTable' -benchmem -benchtime 1x ./internal/experiments

## bench-wormsim-baseline: regenerate the committed BENCH_wormsim.json in
## one deterministic pass — serial and per-shard-count core throughput,
## gomaxprocs, and every dynamic figure's wall time
bench-wormsim-baseline:
	$(GO) run ./cmd/mcfigures -bench -quick -parallel 1 -out .

## bench-baseline: legacy alias of bench-wormsim-baseline
bench-baseline: bench-wormsim-baseline

## bench-regression: throughput gate — re-measures the serial and sharded
## core workloads plus the scheduling-service window path against the
## committed baselines. A >25% serial wormsim cycles_per_sec regression
## FAILS (exit 1); everything else (sharded figures on the 1-core host,
## the serve path) stays warn-only, and all paths warn from 15%
bench-regression:
	$(GO) run ./cmd/mcfigures -bench-compare BENCH_wormsim.json
	$(GO) test ./internal/sched -run TestServeBenchRegression -serve-bench-compare

## profile-wormsim: CPU+alloc profile of the canonical serial core
## benchmark; inspect with `go tool pprof wormsim.test wormsim.cpu.pprof`
profile-wormsim:
	$(GO) test -run '^$$' -bench BenchmarkWormsimCyclesPerSec -benchtime 20x \
		-cpuprofile wormsim.cpu.pprof -memprofile wormsim.mem.pprof -o wormsim.test .

## bench-serve-baseline: regenerate the committed BENCH_serve.json (one
## steady-state 256-request admission window on the 64x64 mesh)
bench-serve-baseline:
	$(GO) test ./internal/sched -run TestWriteServeBenchBaseline -update-serve-bench

## bench-routing-baseline: regenerate the committed BENCH_routing.json
bench-routing-baseline:
	$(GO) test ./internal/routing -run TestWriteRoutingBenchBaseline -update-routing-bench

## bench-heuristics-baseline: regenerate the committed BENCH_heuristics.json (before/after kernel comparison)
bench-heuristics-baseline:
	$(GO) test ./internal/heuristics -run TestWriteHeuristicsBenchBaseline -update-heuristics-bench

## fuzz: 30-second smoke of every fuzz target (healthy routing invariants + fault-mask CDG acyclicity + trace-parser round-trip)
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzPlan -fuzztime 30s ./internal/routing
	$(GO) test -run '^$$' -fuzz FuzzFaultMaskCDG -fuzztime 30s ./internal/fault
	$(GO) test -run '^$$' -fuzz FuzzTraceParse -fuzztime 30s ./internal/workload

## check-fault: the fault-injection acceptance suite — masked-CDG acyclicity for every scheme, degraded routing, mid-run kill semantics, retry accounting, exact-vs-heuristic bounds on faulty meshes, and the mcfault parallel determinism contract
check-fault:
	$(GO) test ./internal/fault ./internal/wormsim ./internal/mcastsvc
	$(GO) test -run 'TestFaultFigures' ./internal/experiments
	$(GO) test -run 'TestKMBVsExactOnFaultyMeshes' ./internal/opt

## check-scale: the sharded-engine acceptance suite — serial/sharded
## byte-identity across schemes, topologies and fault plans, the dense
## CSR injection equivalence, the allocation-free steady state, the
## figure-level -shards contracts, and a quick end-to-end scale study
check-scale:
	$(GO) test -run 'TestSharded|TestFlatInjection|TestSetShardsGuards|TestSteadyStateAllocationFree' ./internal/wormsim
	$(GO) test -run 'TestScaleStudySmall|TestDynamicFigureShardsByteIdentical|TestFaultFiguresShardsByteIdentical' ./internal/experiments
	$(GO) run ./cmd/mcscale -quick -out $$(mktemp -d)

## check-churn: the incremental-topology acceptance suite — churn
## equivalence (live delta-driven router vs static rebuild at every
## epoch), targeted cache invalidation, the delta-driven simulator
## bridge, the reduced churn study, and byte-identity of every
## deterministic mcchurn output across -parallel/-shards
check-churn:
	$(GO) test -run 'TestChurnEquivalence|TestLiveRouterTargetedInvalidation|TestMaskedStateMemo|TestPlanDeltas|TestSimSchedule' ./internal/fault
	$(GO) test -run 'TestChurnStudySmall' ./internal/experiments
	@a=$$(mktemp -d); b=$$(mktemp -d); \
	$(GO) run ./cmd/mcchurn -quick -parallel 1 -out $$a >/dev/null; \
	$(GO) run ./cmd/mcchurn -quick -parallel 4 -shards 4 -out $$b >/dev/null; \
	for f in churn_hitrate.txt churn_hitrate.csv churn_evictions.txt churn_evictions.csv churn_sim.txt; do \
		cmp $$a/$$f $$b/$$f || { echo "check-churn: $$f differs across -parallel/-shards"; exit 1; }; \
	done; \
	echo "check-churn: deterministic mcchurn outputs byte-identical across -parallel/-shards"

## check-serve: the scheduling-service acceptance suite — window packing,
## worker-count invariance, the allocation-free steady state, the reduced
## serving study, and byte-identity of every mcserve output across
## -parallel/-shards
check-serve:
	$(GO) test ./internal/sched
	$(GO) test -run 'TestServeStudySmall' ./internal/experiments
	@a=$$(mktemp -d); b=$$(mktemp -d); \
	$(GO) run ./cmd/mcserve -quick -parallel 1 -shards 1 -out $$a >/dev/null; \
	$(GO) run ./cmd/mcserve -quick -parallel 4 -shards 4 -out $$b >/dev/null; \
	for f in serve_throughput.txt serve_throughput.csv serve_p99.txt serve_p99.csv \
		serve_window_throughput.txt serve_window_throughput.csv \
		serve_window_p99.txt serve_window_p99.csv serve_study.txt; do \
		cmp $$a/$$f $$b/$$f || { echo "check-serve: $$f differs across -parallel/-shards"; exit 1; }; \
	done; \
	echo "check-serve: mcserve outputs byte-identical across -parallel/-shards"

## check-workload: the workload-engine acceptance suite — statistical
## property tests and golden streams for every model, the trace
## round-trip contract, the workload-driven simulator/service paths, the
## reduced workload study, and byte-identity of every mcworkload output
## across -parallel/-shards
check-workload:
	$(GO) test ./internal/workload
	$(GO) test -run 'TestRunWorkload' ./internal/wormsim
	$(GO) test -run 'TestServeWorkload|TestForceAdmit' ./internal/sched
	$(GO) test -run 'TestWorkloadStudySmall|TestServeStudyWorkloadOption' ./internal/experiments
	@a=$$(mktemp -d); b=$$(mktemp -d); \
	$(GO) run ./cmd/mcworkload -quick -parallel 1 -shards 1 -out $$a >/dev/null; \
	$(GO) run ./cmd/mcworkload -quick -parallel 4 -shards 4 -out $$b >/dev/null; \
	for f in workload_scheme_mesh.txt workload_scheme_mesh.csv \
		workload_scheme_cube.txt workload_scheme_cube.csv \
		workload_packer_throughput.txt workload_packer_throughput.csv \
		workload_packer_p99.txt workload_packer_p99.csv workload_study.txt; do \
		cmp $$a/$$f $$b/$$f || { echo "check-workload: $$f differs across -parallel/-shards"; exit 1; }; \
	done; \
	$(GO) run ./cmd/mcworkload -quick -record bursty -o $$a/bursty.trace >/dev/null; \
	$(GO) run ./cmd/mcworkload -quick -replay $$a/bursty.trace >/dev/null || \
		{ echo "check-workload: trace record/replay failed"; exit 1; }; \
	echo "check-workload: mcworkload outputs byte-identical across -parallel/-shards"

## results: regenerate every table and figure at full fidelity
results:
	$(GO) run ./cmd/mcfigures -out results
	$(GO) run ./cmd/mcfault -out results
	$(GO) run ./cmd/mcscale -out results
	$(GO) run ./cmd/mcchurn -out results
	$(GO) run ./cmd/mcserve -out results
	$(GO) run ./cmd/mcworkload -out results
