package heuristics

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// benchWorkload builds a deterministic pool of multicast sets.
func benchWorkload(tb testing.TB, t topology.Topology, dests, count int) []core.MulticastSet {
	rng := stats.NewRand(1990)
	sets := make([]core.MulticastSet, count)
	for i := range sets {
		src := topology.NodeID(rng.Intn(t.Nodes()))
		raw := rng.Sample(t.Nodes(), dests, int(src))
		ds := make([]topology.NodeID, dests)
		for j, v := range raw {
			ds[j] = topology.NodeID(v)
		}
		var err error
		sets[i], err = core.NewMulticastSet(t, src, ds)
		if err != nil {
			tb.Fatal(err)
		}
	}
	return sets
}

// The kernel benchmarks drive the Workspace methods the way the static
// study does: one warm workspace, reused across calls. After the first
// call on a topology the arrays are sized, so allocs/op must be 0 —
// TestWriteHeuristicsBenchBaseline enforces that on the committed
// baseline.

func BenchmarkGreedyST(b *testing.B) {
	b.Run("mesh16x16", func(b *testing.B) {
		m := topology.NewMesh2D(16, 16)
		sets := benchWorkload(b, m, 10, 64)
		ws := NewWorkspace()
		ws.GreedyST(m, sets[0])
		b.ReportAllocs()
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += ws.GreedyST(m, sets[i%len(sets)])
		}
		_ = total
	})
	b.Run("cube10", func(b *testing.B) {
		h := topology.NewHypercube(10)
		sets := benchWorkload(b, h, 10, 64)
		ws := NewWorkspace()
		ws.GreedyST(h, sets[0])
		b.ReportAllocs()
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += ws.GreedyST(h, sets[i%len(sets)])
		}
		_ = total
	})
}

func BenchmarkGreedySTCarried(b *testing.B) {
	m := topology.NewMesh2D(16, 16)
	sets := benchWorkload(b, m, 10, 64)
	ws := NewWorkspace()
	ws.GreedySTCarried(m, sets[0])
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += ws.GreedySTCarried(m, sets[i%len(sets)])
	}
	_ = total
}

func BenchmarkKMB(b *testing.B) {
	m := topology.NewMesh2D(16, 16)
	g := TopologyGraph(m)
	rng := stats.NewRand(1990)
	terms := make([][]int, 64)
	for i := range terms {
		terms[i] = rng.Sample(m.Nodes(), 11)
	}
	ws := NewWorkspace()
	ws.KMB(g, terms[0])
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += ws.KMB(g, terms[i%len(terms)])
	}
	_ = total
}

func BenchmarkSortedMP(b *testing.B) {
	b.Run("mesh16x16", func(b *testing.B) {
		m := topology.NewMesh2D(16, 16)
		c, err := labeling.MeshHamiltonCycle(m)
		if err != nil {
			b.Fatal(err)
		}
		sets := benchWorkload(b, m, 10, 64)
		ws := NewWorkspace()
		ws.SortedMP(m, c, sets[0])
		b.ReportAllocs()
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += ws.SortedMP(m, c, sets[i%len(sets)])
		}
		_ = total
	})
	b.Run("cube10", func(b *testing.B) {
		h := topology.NewHypercube(10)
		c, err := labeling.CubeHamiltonCycle(h)
		if err != nil {
			b.Fatal(err)
		}
		sets := benchWorkload(b, h, 10, 64)
		ws := NewWorkspace()
		ws.SortedMP(h, c, sets[0])
		b.ReportAllocs()
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += ws.SortedMP(h, c, sets[i%len(sets)])
		}
		_ = total
	})
}
