package routing

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// TestFlattenLayout flattens a hand-built plan and checks every CSR
// invariant: offsets bound the packed arrays, node/class/level/dest rows
// reproduce the source routes in order, and degenerate routes are dropped
// from the arrays but kept in TotalDests.
func TestFlattenLayout(t *testing.T) {
	p := Plan{
		Paths: []dfr.PathRoute{
			{Nodes: []topology.NodeID{0, 1, 2, 3}, Class: 1, Dests: []topology.NodeID{3, 2}},
			{Nodes: []topology.NodeID{0}, Dests: []topology.NodeID{5}}, // degenerate
			{Nodes: []topology.NodeID{0, 4}, Classes: []int{2}, Dests: []topology.NodeID{4}},
		},
		Trees: []dfr.TreeRoute{
			{
				Root: 4,
				Edges: []dfr.Channel{
					{From: 4, To: 3}, {From: 4, To: 5, Class: 1}, {From: 3, To: 0},
				},
				Dests: []topology.NodeID{5, 0},
			},
			{Root: 9, Dests: []topology.NodeID{7}}, // degenerate
		},
	}
	f := Flatten(p)
	if f.Paths() != 2 || f.Trees() != 1 {
		t.Fatalf("Paths=%d Trees=%d, want 2 and 1", f.Paths(), f.Trees())
	}
	if f.TotalDests != 7 {
		t.Fatalf("TotalDests=%d, want 7 (degenerate dests included)", f.TotalDests)
	}
	wantNodes := []int32{0, 1, 2, 3, 0, 4}
	for i, v := range wantNodes {
		if f.PathNodes[i] != v {
			t.Fatalf("PathNodes=%v, want %v", f.PathNodes, wantNodes)
		}
	}
	wantClass := []int32{1, 1, 1, 2}
	for i, v := range wantClass {
		if f.PathClass[i] != v {
			t.Fatalf("PathClass=%v, want %v", f.PathClass, wantClass)
		}
	}
	// Path 0 deliveries: dest 3 at position 3, dest 2 at position 2 — in
	// listed order.
	if f.PathDest[0] != 3 || f.PathDestPos[0] != 3 || f.PathDest[1] != 2 || f.PathDestPos[1] != 2 {
		t.Fatalf("path 0 deliveries wrong: dest=%v pos=%v", f.PathDest, f.PathDestPos)
	}
	// Tree 0: two levels — level 0 has channels (4,3) and (4,5)#1 in edge
	// order, level 1 has (3,0).
	llo, lhi := f.TreeOff[0], f.TreeOff[1]
	if lhi-llo != 2 {
		t.Fatalf("tree levels = %d, want 2", lhi-llo)
	}
	l0lo, l0hi := f.TreeLevelOff[llo], f.TreeLevelOff[llo+1]
	if l0hi-l0lo != 2 || f.TreeFrom[l0lo] != 4 || f.TreeTo[l0lo] != 3 ||
		f.TreeFrom[l0lo+1] != 4 || f.TreeTo[l0lo+1] != 5 || f.TreeClass[l0lo+1] != 1 {
		t.Fatalf("tree level 0 wrong: from=%v to=%v class=%v", f.TreeFrom, f.TreeTo, f.TreeClass)
	}
	l1lo, l1hi := f.TreeLevelOff[llo+1], f.TreeLevelOff[llo+2]
	if l1hi-l1lo != 1 || f.TreeFrom[l1lo] != 3 || f.TreeTo[l1lo] != 0 {
		t.Fatalf("tree level 1 wrong: from=%v to=%v", f.TreeFrom, f.TreeTo)
	}
	if f.TreeDest[0] != 5 || f.TreeDestDepth[0] != 1 || f.TreeDest[1] != 0 || f.TreeDestDepth[1] != 2 {
		t.Fatalf("tree deliveries wrong: dest=%v depth=%v", f.TreeDest, f.TreeDestDepth)
	}
}

// TestCacheKeysSeparateRepresentations is the regression test for the
// representation-tag bugfix: one shared cache, one router identity, one
// multicast set — priming the route form must not serve the CSR request
// (or vice versa), because the shapes are incompatible for their
// consumers.
func TestCacheKeysSeparateRepresentations(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	st := NewStateWithLabeling(m, labeling.NewMeshBoustrophedon(m))
	r, err := New("dual-path", st)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache(0)
	k, err := core.NewMulticastSet(m, 0, []topology.NodeID{5, 10, 15})
	if err != nil {
		t.Fatal(err)
	}

	// Prime the cache with the route form.
	plain := Cached(r, cache).PlanSet(k)
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d after route-form prime, want 1", cache.Len())
	}

	// The CSR request must miss the route-form entry and create its own.
	fr := Flat(r, cache)
	flat := fr.FlatSet(k)
	if flat == nil || flat.Paths() == 0 {
		t.Fatal("flat plan empty")
	}
	if cache.Len() != 2 {
		t.Fatalf("cache len = %d, want 2 distinct representation entries", cache.Len())
	}
	if got := Flatten(plain); got.TotalDests != flat.TotalDests || got.Paths() != flat.Paths() {
		t.Fatalf("representations disagree: %+v vs %+v", got, flat)
	}

	// Both representations must now hit.
	m0 := cache.Stats().Misses
	Cached(r, cache).PlanSet(k)
	fr.FlatSet(k)
	if m1 := cache.Stats().Misses; m1 != m0 {
		t.Fatalf("warm representations missed: misses %d -> %d", m0, m1)
	}
}

// TestFlatSetBuf pins the buffered lookup's contract: it shares cache
// entries with FlatSet (same key bytes, same plan pointer on a hit),
// falls back cleanly on unsorted destinations, and a warm hit with a
// reused buffer allocates nothing.
func TestFlatSetBuf(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	st := NewStateWithLabeling(m, labeling.NewMeshBoustrophedon(m))
	r, err := New("dual-path", st)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache(0)
	fr := Flat(r, cache)

	sorted := core.MustMulticastSet(m, 3, []topology.NodeID{9, 18, 27, 40})
	via := fr.FlatSet(sorted)
	got, buf := fr.FlatSetBuf(sorted, nil)
	if got != via {
		t.Fatal("FlatSetBuf did not hit the FlatSet entry for sorted dests")
	}

	// Unsorted destinations fall back to the canonicalizing path — and
	// still share the same entry.
	unsorted := core.MustMulticastSet(m, 3, []topology.NodeID{40, 9, 27, 18})
	if got, _ := fr.FlatSetBuf(unsorted, buf); got != via {
		t.Fatal("unsorted fallback did not share the canonical entry")
	}

	// A miss through the buffered path populates the cache for FlatSet.
	fresh := core.MustMulticastSet(m, 5, []topology.NodeID{2, 13, 44})
	first, buf := fr.FlatSetBuf(fresh, buf)
	if fr.FlatSet(fresh) != first {
		t.Fatal("FlatSet did not hit the FlatSetBuf-populated entry")
	}

	// Warm hits with a reused buffer are allocation-free.
	if avg := testing.AllocsPerRun(100, func() {
		var p *FlatPlan
		p, buf = fr.FlatSetBuf(sorted, buf)
		if p != via {
			t.Fatal("hit returned a different plan")
		}
	}); avg > 0 {
		t.Errorf("warm FlatSetBuf hit allocates %.1f objects, want 0", avg)
	}
}
