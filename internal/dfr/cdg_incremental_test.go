package dfr

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// TestIncrementalCDGMatchesFullCheck churns an IncrementalCDG with a
// seeded interleaving of tree additions and removals and requires Check
// (dirty-frontier DFS) to agree with FullCheck (whole-graph pass) on
// acyclic-vs-cyclic at every step. Naive X-first trees develop real
// cycles under opposing multicasts, so both verdicts get exercised.
func TestIncrementalCDGMatchesFullCheck(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	rng := stats.NewRand(0x1CD6)
	g := NewIncrementalCDG()
	ref := func() bool {
		// FullCheck resets the dirty frontier on success, which would
		// erase the very state Check is being tested on — probe a clone.
		clone := NewIncrementalCDG()
		for u := range g.out {
			for v, n := range g.out[u] {
				for i := 0; i < n; i++ {
					clone.addEdge(clone.id(g.idx.Channel(u)), clone.id(g.idx.Channel(v)))
				}
			}
		}
		return clone.FullCheck() == nil
	}

	var live []TreeRoute
	for step := 0; step < 200; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			var dests []topology.NodeID
			for _, d := range rng.Perm(m.Nodes())[:1+rng.Intn(5)] {
				if topology.NodeID(d) != src {
					dests = append(dests, topology.NodeID(d))
				}
			}
			if len(dests) == 0 {
				continue
			}
			k := core.MustMulticastSet(m, src, dests)
			for _, tr := range XFirstTrees(m, k) {
				g.AddTree(tr)
				live = append(live, tr)
			}
		} else {
			i := rng.Intn(len(live))
			g.RemoveTree(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		gotAcyclic := g.Check() == nil
		wantAcyclic := ref()
		if gotAcyclic != wantAcyclic {
			t.Fatalf("step %d: incremental Check acyclic=%v, full recheck acyclic=%v (%d channels, %d edges)",
				step, gotAcyclic, wantAcyclic, g.Channels(), g.Edges())
		}
	}
}

// TestIncrementalCDGRemovalNeedsNoRecheck: removals alone leave a
// verified graph verified — the dirty frontier stays empty and Check is
// O(1).
func TestIncrementalCDGRemovalNeedsNoRecheck(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	g := NewIncrementalCDG()
	k := core.MustMulticastSet(m, 0, []topology.NodeID{5, 10, 15})
	trees := XFirstTrees(m, k)
	for _, tr := range trees {
		g.AddTree(tr)
	}
	if g.Check() != nil {
		t.Fatal("single multicast tree should be acyclic")
	}
	if g.DirtyClasses() != 0 {
		t.Fatalf("clean Check left %d dirty classes", g.DirtyClasses())
	}
	for _, tr := range trees {
		g.RemoveTree(tr)
	}
	if g.DirtyClasses() != 0 {
		t.Fatalf("removals dirtied %d classes", g.DirtyClasses())
	}
	if g.Edges() != 0 {
		t.Fatalf("%d edges survived removing every contributor", g.Edges())
	}
	if g.Check() != nil {
		t.Fatal("empty graph reported a cycle")
	}
}

// TestIncrementalCDGRefCount: duplicate contributions keep an edge alive
// until the last one retracts.
func TestIncrementalCDGRefCount(t *testing.T) {
	g := NewIncrementalCDG()
	p := PathRoute{Nodes: []topology.NodeID{0, 1, 2}}
	g.AddPath(p)
	g.AddPath(p)
	if g.Edges() != 1 {
		t.Fatalf("duplicate path produced %d distinct edges, want 1", g.Edges())
	}
	g.RemovePath(p)
	if g.Edges() != 1 {
		t.Fatal("edge died while a contributor remained")
	}
	g.RemovePath(p)
	if g.Edges() != 0 {
		t.Fatal("edge survived its last contributor")
	}
	// Retracting beyond zero is a no-op, not an underflow.
	g.RemovePath(p)
	if g.Edges() != 0 {
		t.Fatal("over-retraction corrupted the edge count")
	}
}

// TestIncrementalCDGCycleLeavesFrontier: a detected cycle must keep the
// dirty frontier so retract-and-recheck works.
func TestIncrementalCDGCycleLeavesFrontier(t *testing.T) {
	g := NewIncrementalCDG()
	a := PathRoute{Nodes: []topology.NodeID{0, 1, 0}} // dep (0→1) -> (1→0)
	b := PathRoute{Nodes: []topology.NodeID{1, 0, 1}} // dep (1→0) -> (0→1): closes the 2-cycle
	g.AddPath(a)
	if g.Check() != nil {
		t.Fatal("a single U-turn path is acyclic")
	}
	g.AddPath(b)
	if g.Check() == nil {
		t.Fatal("missed the 2-cycle")
	}
	if g.DirtyClasses() == 0 {
		t.Fatal("cycle verdict cleared the dirty frontier")
	}
	g.RemovePath(b)
	if g.Check() != nil {
		t.Fatal("cycle survived retracting its closing path")
	}
}
