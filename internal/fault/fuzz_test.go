package fault

import (
	"errors"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// FuzzFaultMaskCDG fuzzes random fault masks across every registry
// scheme: degraded planning must always yield a plan that validates over
// the masked topology with an acyclic channel dependency graph, or a
// typed ErrPartitioned — never a panic and never an untyped error.
//
// The fuzz input additionally drives a repair interleaving (repairBits
// selects which drawn faults get repaired, one delta at a time) through a
// LiveRouter, asserting at every intermediate epoch that the incremental
// CDG verdict (dirty-frontier re-check) agrees with a full recheck of the
// same dependency set.
func FuzzFaultMaskCDG(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(0), uint8(0), uint8(0), uint16(0x00F0), uint16(0))
	f.Add(uint64(7), uint8(6), uint8(1), uint8(3), uint8(5), uint16(0x8421), uint16(0x0003))
	f.Add(uint64(99), uint8(12), uint8(2), uint8(8), uint8(15), uint16(0x7FFF), uint16(0xFFFF))
	m := topology.NewMesh2D(4, 4)
	st, err := routing.NewState(m)
	if err != nil {
		f.Fatal(err)
	}
	schemes := routing.Names()
	f.Fuzz(func(t *testing.T, seed uint64, links, nodes, vcs, src uint8, destBits, repairBits uint16) {
		fp := NewPlan(m, Spec{
			Links: int(links) % 16,
			Nodes: int(nodes) % 4,
			VCs:   int(vcs) % 8,
			Seed:  seed,
		})
		mask := fp.FullMask()
		source := topology.NodeID(src) % 16
		var dests []topology.NodeID
		for v := 0; v < 16; v++ {
			if destBits>>v&1 == 1 && topology.NodeID(v) != source {
				dests = append(dests, topology.NodeID(v))
			}
		}
		k, err := core.NewMulticastSet(m, source, dests)
		if err != nil {
			t.Skip()
		}
		masked := mask.MaskTopology()
		for _, name := range schemes {
			dr, err := NewRouter(name, st, mask)
			if err != nil {
				t.Fatalf("%s: router build: %v", name, err)
			}
			plan, _, err := dr.PlanDegraded(k)
			if err != nil && !errors.Is(err, ErrPartitioned) {
				t.Fatalf("%s: untyped degraded error: %v", name, err)
			}
			if live, ok := liveSubset(m, masked, k); ok && !mask.NodeDead(source) {
				if err := plan.Validate(masked, live); err != nil {
					t.Fatalf("%s: degraded plan invalid: %v", name, err)
				}
			}
			rec := dfr.NewDependencyRecorder()
			for _, p := range plan.Paths {
				rec.AddPath(p)
			}
			for _, tr := range plan.Trees {
				rec.AddTree(tr)
			}
			if cyc := rec.FindCycle(); cyc != nil {
				t.Fatalf("%s: dependency cycle under mask: %v", name, cyc)
			}
		}

		// Repair-delta interleaving: drive a dual-path LiveRouter through
		// fail-then-selective-repair deltas, accumulating every produced
		// plan's dependencies in an IncrementalCDG; the incremental
		// verdict must agree with a full recheck at every epoch.
		lr, err := NewLiveRouter("dual-path", st, routing.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g := dfr.NewIncrementalCDG()
		checkAgreement := func(epoch uint64) {
			inc := g.Check() == nil
			full := g.FullCheck() == nil
			if inc != full {
				t.Fatalf("epoch %d: incremental CDG verdict %v, full recheck %v", epoch, inc, full)
			}
		}
		planInto := func() {
			if lr.Mask().NodeDead(k.Source) {
				return
			}
			plan, _, err := lr.PlanDegraded(k)
			if err != nil && !errors.Is(err, ErrPartitioned) {
				t.Fatalf("live: untyped degraded error: %v", err)
			}
			for _, p := range plan.Paths {
				g.AddPath(p)
			}
			for _, tr := range plan.Trees {
				g.AddTree(tr)
			}
		}
		events := fp.Events()
		for _, e := range events {
			lr.ApplyDelta(Delta{Fail: []Event{e}})
			planInto()
			checkAgreement(lr.Epoch())
		}
		for i, e := range events {
			if repairBits>>(uint(i)%16)&1 == 0 {
				continue
			}
			lr.ApplyDelta(Delta{Repair: []Event{e}})
			planInto()
			checkAgreement(lr.Epoch())
		}
	})
}
