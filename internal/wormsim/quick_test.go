package wormsim

import (
	"testing"
	"testing/quick"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// TestQuickSingleWormLatencyFormula property-checks the contention-free
// pipeline model over arbitrary routes: a lone worm of L flits over D
// channels always delivers its final destination in exactly D + L - 1
// cycles, and the network fully drains.
func TestQuickSingleWormLatencyFormula(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	f := func(rawSrc, rawDst uint8, rawLen uint8) bool {
		src := topology.NodeID(int(rawSrc) % m.Nodes())
		dst := topology.NodeID(int(rawDst) % m.Nodes())
		if src == dst {
			return true
		}
		length := 1 + int(rawLen)%200
		nodes := core.RoutePath(m, l, src, dst)
		n := NewNetwork(m)
		var got int64 = -1
		n.OnDelivery(func(_ topology.NodeID, c int64) { got = c })
		n.InjectMulticast([]dfr.PathRoute{{Nodes: nodes, Dests: []topology.NodeID{dst}}}, nil, length)
		for n.ActiveWorms() > 0 {
			if !n.Step() {
				return false // a lone worm never stalls
			}
		}
		return got == int64(len(nodes)-1+length-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSerialWormsFIFO property-checks FIFO arbitration: two worms
// over the same route complete in injection order, with the second
// delayed by at least the first's channel-holding time on the shared
// first channel.
func TestQuickSerialWormsFIFO(t *testing.T) {
	m := topology.NewMesh2D(8, 1)
	f := func(rawLen uint8) bool {
		length := 2 + int(rawLen)%100
		route := []topology.NodeID{0, 1, 2, 3}
		n := NewNetwork(m)
		var order []topology.NodeID
		n.OnDelivery(func(d topology.NodeID, _ int64) { order = append(order, d) })
		n.InjectMulticast([]dfr.PathRoute{{Nodes: route, Dests: []topology.NodeID{3}}}, nil, length)
		n.InjectMulticast([]dfr.PathRoute{{Nodes: route[:3], Dests: []topology.NodeID{2}}}, nil, length)
		for n.ActiveWorms() > 0 {
			if !n.Step() {
				return false
			}
		}
		// First-injected worm delivers first despite its longer route.
		return len(order) == 2 && order[0] == 3 && order[1] == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestThroughputReported checks the throughput metric is populated and
// consistent with the delivery count.
func TestThroughputReported(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	res, err := Run(Config{
		Topology:               m,
		Route:                  DualPathScheme(m, l),
		MeanInterarrivalMicros: 500,
		AvgDests:               5,
		Seed:                   2,
		BatchSize:              200,
		MinBatches:             5,
		MaxCycles:              200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputPerMs <= 0 {
		t.Errorf("throughput not reported: %+v", res)
	}
	// Offered rate: 64 nodes x (1/500us) multicasts x ~5 dests = ~0.64
	// deliveries/us = 640/ms. The measured rate must be the same order.
	if res.ThroughputPerMs < 100 || res.ThroughputPerMs > 2000 {
		t.Errorf("throughput %.1f/ms implausible", res.ThroughputPerMs)
	}
}
