package labeling

import (
	"testing"

	"multicastnet/internal/topology"
)

func TestKAryNCubeSerpentineIsHamiltonPath(t *testing.T) {
	for _, kn := range [][2]int{{3, 2}, {4, 2}, {3, 3}, {5, 2}, {2, 4}, {4, 3}, {7, 1}} {
		c := topology.NewKAryNCube(kn[0], kn[1])
		if err := Verify(NewKAryNCubeSerpentine(c), c); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestKAryNCubeSerpentineMatchesGrayForK2(t *testing.T) {
	// For radix 2 the mixed-radix reflected code IS the binary-reflected
	// Gray decode, so the serpentine labeling must coincide with the
	// hypercube labeling of Section 6.3.
	c := topology.NewKAryNCube(2, 5)
	h := topology.NewHypercube(5)
	ls := NewKAryNCubeSerpentine(c)
	lg := NewHypercubeGray(h)
	for v := topology.NodeID(0); int(v) < c.Nodes(); v++ {
		if ls.Label(v) != lg.Label(v) {
			t.Fatalf("labels differ at node %05b: serpentine %d, gray %d",
				v, ls.Label(v), lg.Label(v))
		}
	}
}

func TestKAryNCubeSerpentineRoundtrip(t *testing.T) {
	c := topology.NewKAryNCube(5, 3)
	l := NewKAryNCubeSerpentine(c)
	for lab := 0; lab < c.Nodes(); lab++ {
		if got := l.Label(l.At(lab)); got != lab {
			t.Fatalf("roundtrip %d -> node %d -> %d", lab, l.At(lab), got)
		}
	}
}
