package routing

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/topology"
)

// FlatPlan is the dense CSR (compressed sparse row) form of a Plan: every
// path, tree level, channel and delivery packed into flat []int32 arrays
// instead of pointer-chasing per-route slices and per-injection maps. The
// simulator consumes it directly (wormsim.InjectFlat): path positions and
// tree depths are resolved once at flattening time, so the injection hot
// path allocates no maps and walks contiguous memory.
//
// Layout. Paths are CSR over the path index: path p's node sequence is
// PathNodes[PathOff[p]:PathOff[p+1]] and hop h's channel class is
// PathClass[PathOff[p]-int32(p)+h] (one fewer class than nodes per path).
// Its deliveries are the parallel PathDest/PathDestPos rows of
// [PathDestOff[p], PathDestOff[p+1]). Trees are a two-level CSR: tree t
// owns level boundaries TreeLevelOff[TreeOff[t]:TreeOff[t+1]+1], each
// consecutive pair bounding one lock-step frontier's rows in
// TreeFrom/TreeTo/TreeClass; its deliveries are TreeDest/TreeDestDepth
// rows of [TreeDestOff[t], TreeDestOff[t+1]).
//
// Degenerate routes (paths with fewer than two nodes, trees with no
// edges) are dropped from the arrays but their destination counts are
// retained in TotalDests, preserving the multicast-size accounting of the
// route-based injection path exactly.
//
// A FlatPlan is immutable after Flatten and safe to share across
// goroutines and cache entries.
type FlatPlan struct {
	// Paths.
	PathOff     []int32 // len nPaths+1: node-row bounds per path
	PathNodes   []int32 // packed node sequences
	PathClass   []int32 // packed per-hop channel classes
	PathDestOff []int32 // len nPaths+1: delivery-row bounds per path
	PathDest    []int32 // destination node ids
	PathDestPos []int32 // 1-based path position of each destination

	// Trees.
	TreeOff       []int32 // len nTrees+1: level-boundary index per tree
	TreeLevelOff  []int32 // channel-row bounds; level l of tree t is [TreeLevelOff[TreeOff[t]+l], TreeLevelOff[TreeOff[t]+l+1])
	TreeFrom      []int32 // packed frontier channels, level by level
	TreeTo        []int32
	TreeClass     []int32
	TreeDestOff   []int32 // len nTrees+1: delivery-row bounds per tree
	TreeDest      []int32 // destination node ids
	TreeDestDepth []int32 // tree depth of each destination

	// TotalDests is the destination count of the whole multicast,
	// including destinations of degenerate routes dropped from the arrays.
	TotalDests int32
}

// Paths returns the number of flattened paths.
func (f *FlatPlan) Paths() int { return len(f.PathOff) - 1 }

// Trees returns the number of flattened trees.
func (f *FlatPlan) Trees() int { return len(f.TreeOff) - 1 }

// Flatten converts a routed plan into its dense CSR form, resolving
// destination path positions and tree depths once. It panics on a plan
// whose destinations are not on its routes — the same contract the
// route-based injection path enforces per injection.
func Flatten(p Plan) *FlatPlan {
	f := &FlatPlan{
		PathOff:      make([]int32, 1, len(p.Paths)+1),
		PathDestOff:  make([]int32, 1, len(p.Paths)+1),
		TreeOff:      make([]int32, 1, len(p.Trees)+1),
		TreeLevelOff: []int32{0},
		TreeDestOff:  make([]int32, 1, len(p.Trees)+1),
	}
	for _, pr := range p.Paths {
		f.TotalDests += int32(len(pr.Dests))
		if len(pr.Nodes) < 2 {
			continue
		}
		for i, node := range pr.Nodes {
			f.PathNodes = append(f.PathNodes, int32(node))
			if i > 0 {
				f.PathClass = append(f.PathClass, int32(pr.HopClass(i-1)))
			}
		}
		f.PathOff = append(f.PathOff, int32(len(f.PathNodes)))
		// First-occurrence positions, as the injector's position map
		// resolves them.
		for _, d := range pr.Dests {
			pos := -1
			for i, node := range pr.Nodes {
				if node == d {
					pos = i
					break
				}
			}
			if pos <= 0 {
				panic(fmt.Sprintf("routing: path does not visit destination %d", d))
			}
			f.PathDest = append(f.PathDest, int32(d))
			f.PathDestPos = append(f.PathDestPos, int32(pos))
		}
		f.PathDestOff = append(f.PathDestOff, int32(len(f.PathDest)))
	}
	for _, tr := range p.Trees {
		f.TotalDests += int32(len(tr.Dests))
		if len(tr.Edges) == 0 {
			continue
		}
		depths := tr.Depths()
		maxd := 0
		for _, e := range tr.Edges {
			if depths[e.To] > maxd {
				maxd = depths[e.To]
			}
		}
		// Bucket channels by level, preserving edge order within each
		// level (the lock-step frontier order the simulator arbitrates
		// in).
		counts := make([]int32, maxd)
		for _, e := range tr.Edges {
			counts[depths[e.To]-1]++
		}
		base := int32(len(f.TreeFrom))
		starts := make([]int32, maxd+1)
		starts[0] = base
		for l := 0; l < maxd; l++ {
			starts[l+1] = starts[l] + counts[l]
		}
		grow := int(starts[maxd] - base)
		for i := 0; i < grow; i++ {
			f.TreeFrom = append(f.TreeFrom, 0)
			f.TreeTo = append(f.TreeTo, 0)
			f.TreeClass = append(f.TreeClass, 0)
		}
		cursor := make([]int32, maxd)
		copy(cursor, starts[:maxd])
		for _, e := range tr.Edges {
			l := depths[e.To] - 1
			at := cursor[l]
			cursor[l]++
			f.TreeFrom[at] = int32(e.From)
			f.TreeTo[at] = int32(e.To)
			f.TreeClass[at] = int32(e.Class)
		}
		for l := 1; l <= maxd; l++ {
			f.TreeLevelOff = append(f.TreeLevelOff, starts[l])
		}
		f.TreeOff = append(f.TreeOff, int32(len(f.TreeLevelOff)-1))
		for _, d := range tr.Dests {
			dep, ok := depths[d]
			if !ok || dep == 0 {
				panic(fmt.Sprintf("routing: tree does not reach destination %d", d))
			}
			f.TreeDest = append(f.TreeDest, int32(d))
			f.TreeDestDepth = append(f.TreeDestDepth, int32(dep))
		}
		f.TreeDestOff = append(f.TreeDestOff, int32(len(f.TreeDest)))
	}
	return f
}

// FlatRouter plans multicasts in dense CSR form, memoizing flattened
// plans in an optional PlanCache under representation-distinct keys (see
// planKey): a cache shared with route-form consumers never serves one
// representation where the other was requested.
type FlatRouter struct {
	Router
	cache *PlanCache
}

// Flat wraps a router with CSR flattening. c may be nil (no memoization);
// a non-nil cache may be shared freely with Cached route-form wrappers.
func Flat(r Router, c *PlanCache) *FlatRouter {
	return &FlatRouter{Router: r, cache: c}
}

// FlatSet routes an already-validated multicast set and returns the
// dense form.
func (r *FlatRouter) FlatSet(k core.MulticastSet) *FlatPlan {
	if r.cache == nil {
		return Flatten(r.Router.PlanSet(k))
	}
	key := planKey(r.Router.ID(), k, reprFlat)
	if e, ok := r.cache.get(key); ok && e.flat != nil {
		return e.flat
	}
	f := Flatten(r.Router.PlanSet(k))
	r.cache.put(key, cacheEntry{flat: f})
	return f
}

// FlatSetBuf is FlatSet with a caller-owned reusable key buffer — the
// zero-allocation lookup of the scheduling service's steady state. When
// k.Dests is sorted ascending (the scheduler canonicalizes at ingestion)
// and the plan is cached, the call allocates nothing: the key is built
// into buf and the map lookup converts it without copying. It returns
// the plan and the (possibly grown) buffer for reuse. A nil cache or
// unsorted destinations fall back to FlatSet.
func (r *FlatRouter) FlatSetBuf(k core.MulticastSet, buf []byte) (*FlatPlan, []byte) {
	if r.cache == nil || !destsSorted(k.Dests) {
		return r.FlatSet(k), buf
	}
	buf = appendPlanKeySorted(buf[:0], r.Router.ID(), k, reprFlat)
	if e, ok := r.cache.getBytes(buf); ok && e.flat != nil {
		return e.flat, buf
	}
	f := Flatten(r.Router.PlanSet(k))
	r.cache.put(string(buf), cacheEntry{flat: f})
	return f, buf
}

// FlatProbeBuf splits FlatSetBuf's lookup from its planning: it probes
// the cache for an already-canonicalized set (sorted dests) and reports
// a miss instead of planning, so a scheduler can collect misses and
// compute them on a worker pool. Like FlatSetBuf it counts exactly one
// cache lookup, and a hit with a reused buffer allocates nothing.
// Callers must complete a miss with FlatCompute + FlatInstallBuf.
func (r *FlatRouter) FlatProbeBuf(k core.MulticastSet, buf []byte) (*FlatPlan, []byte, bool) {
	if r.cache == nil || !destsSorted(k.Dests) {
		return r.FlatSet(k), buf, true
	}
	buf = appendPlanKeySorted(buf[:0], r.Router.ID(), k, reprFlat)
	if e, ok := r.cache.getBytes(buf); ok && e.flat != nil {
		return e.flat, buf, true
	}
	return nil, buf, false
}

// FlatCompute plans and flattens without touching the cache — the
// compute half of a FlatProbeBuf miss, safe to run concurrently.
func (r *FlatRouter) FlatCompute(k core.MulticastSet) *FlatPlan {
	return Flatten(r.Router.PlanSet(k))
}

// FlatInstallBuf stores a FlatCompute result under the canonical key of
// an already-sorted set. Install order is the caller's, keeping FIFO
// eviction deterministic however the misses were computed.
func (r *FlatRouter) FlatInstallBuf(k core.MulticastSet, f *FlatPlan, buf []byte) []byte {
	if r.cache == nil || !destsSorted(k.Dests) {
		return buf
	}
	buf = appendPlanKeySorted(buf[:0], r.Router.ID(), k, reprFlat)
	r.cache.put(string(buf), cacheEntry{flat: f})
	return buf
}

// FlatPlanOf validates (source, dests) as a multicast set and returns the
// dense form.
func (r *FlatRouter) FlatPlanOf(src topology.NodeID, dests []topology.NodeID) (*FlatPlan, error) {
	k, err := core.NewMulticastSet(r.State().Topology(), src, dests)
	if err != nil {
		return nil, err
	}
	return r.FlatSet(k), nil
}
