package wormsim

// Sharded parallel stepping: the interned channel id space is partitioned
// into regions owned by worker goroutines, and one simulation cycle runs
// as a parallel scan over the active worms followed by a serial
// commit-in-order fold — the same run/commit discipline the sweep layer
// (experiments.RunSweep) uses across runs, applied inside one run.
//
// Determinism argument (see DESIGN.md, "Sharded parallel stepping"):
// the serial engine's observable behaviour is fixed by the order of
// operations applied to each channel, and that order is always ascending
// worm id within a cycle. Every channel belongs to exactly one region, a
// region is scanned by exactly one worker in ascending id order, and
// everything a worker may not decide alone — releases, deliveries,
// completion callbacks, kills, whole-frontier moves of trees that span
// regions — is buffered and committed by the fold, which walks the worms
// in the exact order the serial scan would (ascending id, merged with
// same-cycle wakeups). A worker that misses an acquisition because the
// releasing worm's commit is still buffered simply enqueues on the
// channel; the fold's release then wakes it into this very cycle, exactly
// as the serial engine would have, so the end-of-cycle state — owners,
// queues, statistics, RNG-visible event order — is byte-identical at any
// shard count.
//
// Workers only ever mutate state they exclusively own during the round:
// the channel-state array slots of their region, and fields of worms
// whose whole footprint (the region mask) lies in their region. The worm
// arena never grows during a round (injection happens between cycles), so
// workers may hold *worm pointers into slots for the round. Tree worms
// whose frontier spans regions are advanced cooperatively: every involved
// worker enqueues/claims only its region's frontier channels (writing
// disjoint l.taken slots), the lowest-region worker doubles as primary
// and records the outcome, and the fold aggregates the claims and decides
// the lock-step move.

import (
	"math/bits"
	"sync"

	"multicastnet/internal/topology"
)

// regionBlockShift groups 2^regionBlockShift consecutive interned channel
// ids into one region block. Blocking improves locality (channels of one
// neighbourhood intern together); the mapping is correctness-free — any
// id→region function yields identical results.
const regionBlockShift = 5

// maxShards bounds the shard count so a region set fits one uint64 mask.
const maxShards = 64

// shardRec is the per-worm outcome of the parallel round, written by the
// worm's primary worker and consumed by the fold.
const (
	recNone   uint8 = iota // not worker-processed: fold advances serially
	recMoved               // head advanced; events/releases buffered
	recParked              // blocked in place (enqueued as needed)
	recKilled              // head touched dead hardware; fold runs killWorm
	recSplit               // cross-region tree frontier; fold folds claims
)

type shardRec struct {
	state   uint8
	worker  uint8 // worker owning the buffered event/release ranges
	retired bool  // recMoved: worm fully drained, fold retires it
	claims  int32 // recSplit: frontier channels claimed by the primary
	evLo    int32 // buffered delivery range in the worker's event list
	evHi    int32
	relLo   int32 // buffered release range in the worker's release list
	relHi   int32
}

// shardEvent is one buffered destination delivery; mc indexes
// Network.mcSlots.
type shardEvent struct {
	dest    topology.NodeID
	latency int64
	mc      int32
}

// splitClaim reports frontier channels a non-primary worker claimed for a
// cross-region tree worm at round position pos.
type splitClaim struct {
	pos    int32
	claims int32
}

// roundEntry snapshots one active worm and its region mask for the cycle;
// masks are snapshotted so workers never read a mask another worker is
// updating after a move.
type roundEntry struct {
	wi   wormRef
	mask uint64
}

type shardWorker struct {
	n      *Network
	idx    int
	events []shardEvent
	rels   []int32
	splits []splitClaim
	start  chan struct{}
}

// shardState is the Network's parallel-stepping state; the zero value
// selects the serial engine.
type shardState struct {
	n           int // shard count; < 2 = serial
	workers     []*shardWorker
	round       []roundEntry
	records     []shardRec
	splitCursor []int
	wg          sync.WaitGroup
	closed      bool
}

// SetShards enables sharded stepping across s worker goroutines. It must
// be called on a fresh network, before any injection. s < 2 leaves the
// serial engine in place; s is capped at 64. Callers that enable shards
// must Close the network to stop the workers.
func (n *Network) SetShards(s int) {
	if n.shard.workers != nil {
		panic("wormsim: SetShards called twice")
	}
	if len(n.worms) > 0 || n.cycle != 0 {
		panic("wormsim: SetShards must be called before any injection")
	}
	if s > maxShards {
		s = maxShards
	}
	if s < 2 {
		return
	}
	n.shard.n = s
	n.shard.workers = make([]*shardWorker, s)
	n.shard.splitCursor = make([]int, s)
	for i := range n.shard.workers {
		wk := &shardWorker{n: n, idx: i, start: make(chan struct{}, 1)}
		n.shard.workers[i] = wk
		go wk.loop()
	}
}

// Shards returns the effective shard count (1 = serial engine).
func (n *Network) Shards() int {
	if n.shard.n < 2 {
		return 1
	}
	return n.shard.n
}

// Close stops the shard worker goroutines. It is a no-op for serial
// networks and idempotent.
func (n *Network) Close() {
	if n.shard.closed || n.shard.workers == nil {
		return
	}
	n.shard.closed = true
	for _, wk := range n.shard.workers {
		close(wk.start)
	}
}

// region maps an interned channel id to its owning shard.
func (n *Network) region(id int32) int {
	return int(uint32(id)>>regionBlockShift) % n.shard.n
}

// regionMask returns the set of regions the worm's next advance touches:
// the head channel's region (path), the whole frontier's regions (tree),
// or an arbitrary stable region for draining worms that touch no channel.
func (n *Network) regionMask(w *worm) uint64 {
	if w.kind == pathWorm {
		if w.headIdx < len(w.chans) {
			return 1 << uint(n.region(w.chans[w.headIdx]))
		}
	} else if w.headIdx < len(w.levels) {
		var m uint64
		for _, id := range w.levels[w.headIdx].channels {
			m |= 1 << uint(n.region(id))
		}
		return m
	}
	return 1 << (uint(w.id) % uint(n.shard.n))
}

// stepSharded is Step for shard.n > 1: snapshot the round, run the
// parallel scan when it pays, then fold the outcomes in serial id order.
func (n *Network) stepSharded() bool {
	n.cycle++
	n.progress = false
	n.mergeWokenNext()

	s := &n.shard
	s.round = s.round[:0]
	for _, wi := range n.active {
		w := &n.slots[wi]
		if w.done {
			continue // killed by a fault while on the active list
		}
		s.round = append(s.round, roundEntry{wi: wi, mask: w.mask})
	}
	// Below one worm per worker the dispatch overhead cannot pay; the
	// fold then advances every worm itself (recNone), which is exactly
	// the serial engine.
	dispatched := len(s.round) >= s.n
	if dispatched {
		if cap(s.records) < len(s.round) {
			s.records = make([]shardRec, len(s.round))
		}
		s.records = s.records[:len(s.round)]
		for i := range s.records {
			s.records[i] = shardRec{}
		}
		for _, wk := range s.workers {
			wk.events = wk.events[:0]
			wk.rels = wk.rels[:0]
			wk.splits = wk.splits[:0]
		}
		s.wg.Add(s.n)
		for _, wk := range s.workers {
			wk.start <- struct{}{}
		}
		s.wg.Wait()
	}
	n.fold(dispatched)
	return n.progress
}

// fold commits the round in ascending worm-id order, merged with worms
// woken mid-fold by committed releases — the exact scan order of the
// serial engine, so every callback, wake and state change lands in the
// serial position.
func (n *Network) fold(dispatched bool) {
	s := &n.shard
	for i := range s.splitCursor {
		s.splitCursor[i] = 0
	}
	n.inStep = true
	next := n.nextBuf[:0]
	i := 0
	for {
		var wi wormRef
		pos := -1
		if len(n.wokenNow) > 0 && (i >= len(s.round) || n.slots[n.wokenNow[0]].id < n.slots[s.round[i].wi].id) {
			wi = n.wokenPop()
			w := &n.slots[wi]
			w.wakePending = false
			if w.done || !w.parked {
				// A worm woken by a fold release before its own round
				// record was committed may have moved (or died) at that
				// record; the wake is then already served.
				continue
			}
			w.parked = false
		} else if i < len(s.round) {
			pos = i
			wi = s.round[i].wi
			i++
			if n.slots[wi].done {
				continue
			}
		} else {
			break
		}
		w := &n.slots[wi]
		n.scanID = w.id
		if pos >= 0 && dispatched && s.records[pos].state != recNone {
			n.foldRecord(pos, wi, &next)
			continue
		}
		// No worker record (undispatched round, or a mid-fold wake): the
		// fold position is the serial scan position, so the serial
		// advance applies verbatim.
		var live bool
		if w.kind == pathWorm {
			live = n.advancePath(wi, w)
		} else {
			live = n.advanceTree(wi, w)
		}
		if !live {
			n.retire(wi)
		} else if !w.parked {
			w.mask = n.regionMask(w)
			next = append(next, wi)
		}
	}
	n.inStep = false
	n.nextBuf = n.active[:0]
	n.active = next
}

// foldRecord commits one worker-produced round outcome at the worm's
// serial scan position.
func (n *Network) foldRecord(pos int, wi wormRef, next *[]wormRef) {
	s := &n.shard
	rec := &s.records[pos]
	w := &n.slots[wi]
	switch rec.state {
	case recParked:
		// Blocked in place. A later fold release may still wake it into
		// this cycle through the heap, as in the serial engine.
	case recMoved:
		n.progress = true
		wk := s.workers[rec.worker]
		for _, ev := range wk.events[rec.evLo:rec.evHi] {
			n.emitDelivery(ev)
		}
		for _, id := range wk.rels[rec.relLo:rec.relHi] {
			n.release(id, wi)
		}
		if rec.retired {
			n.retire(wi)
		} else {
			*next = append(*next, wi)
		}
	case recKilled:
		n.killWorm(wi)
	case recSplit:
		// Aggregate the frontier channels every involved worker claimed,
		// then rerun the serial tree advance: it skips the already-queued
		// and already-taken channels, picks up any frontier channel a
		// fold release just freed (exactly what the serial scan would see
		// at this position), and performs the lock-step move with its
		// deliveries and releases inline.
		l := &w.levels[w.headIdx]
		taken := int(rec.claims)
		for m := s.round[pos].mask &^ (1 << uint(rec.worker)); m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			wk := s.workers[k]
			for s.splitCursor[k] < len(wk.splits) && wk.splits[s.splitCursor[k]].pos < int32(pos) {
				s.splitCursor[k]++
			}
			if s.splitCursor[k] < len(wk.splits) && wk.splits[s.splitCursor[k]].pos == int32(pos) {
				taken += int(wk.splits[s.splitCursor[k]].claims)
				s.splitCursor[k]++
			}
		}
		l.missing -= taken
		l.queued = true
		w.parked = false
		if live := n.advanceTree(wi, w); !live {
			n.retire(wi)
		} else if !w.parked {
			w.mask = n.regionMask(w)
			*next = append(*next, wi)
		}
	}
}

// emitDelivery fires the delivery observers and multicast accounting for
// one buffered delivery — deliver() with the worm-side bookkeeping
// already done by the worker.
func (n *Network) emitDelivery(ev shardEvent) {
	if n.onDelivery != nil {
		n.onDelivery(ev.dest, ev.latency)
	}
	if n.onDeliveryDetail != nil {
		n.onDeliveryDetail(ev.dest, ev.latency, n.mcSlots[ev.mc].size)
	}
	mc := &n.mcSlots[ev.mc]
	mc.remaining--
	if mc.remaining == 0 && mc.lost == 0 {
		if n.onComplete != nil {
			n.onComplete(n.cycle - mc.spawned)
		}
		if n.onCompleteTag != nil {
			n.onCompleteTag(mc.tag, n.cycle-mc.spawned)
		}
	}
}

func (wk *shardWorker) loop() {
	for range wk.start {
		wk.scan()
		wk.n.shard.wg.Done()
	}
}

// scan is one worker's parallel round: advance every round worm whose
// mask intersects this region — alone for single-region worms,
// cooperatively for trees whose frontier spans regions. Slots never grows
// during a round, so the *worm taken per entry stays valid.
func (wk *shardWorker) scan() {
	n := wk.n
	round := n.shard.round
	bit := uint64(1) << uint(wk.idx)
	for i := range round {
		e := &round[i]
		if e.mask&bit == 0 {
			continue
		}
		w := &n.slots[e.wi]
		if e.mask&(e.mask-1) == 0 {
			if w.kind == pathWorm {
				wk.advancePath(i, e.wi, w)
			} else {
				wk.advanceTree(i, e.wi, w)
			}
		} else {
			wk.advanceSplit(i, e.wi, w, e.mask)
		}
	}
}

// advancePath is advancePath for a worker: identical state transitions on
// region-local channels, with deliveries, releases and kills buffered for
// the fold.
func (wk *shardWorker) advancePath(pos int, wi wormRef, w *worm) {
	n := wk.n
	rec := shardRec{worker: uint8(wk.idx), evLo: int32(len(wk.events)), relLo: int32(len(wk.rels))}
	if w.headIdx < len(w.chans) {
		id := w.chans[w.headIdx]
		owner := n.chanOwner[id]
		if owner == deadChan {
			rec.state = recKilled
			n.shard.records[pos] = rec
			return
		}
		if owner == noWorm && n.chanFreeFor(id, wi) {
			n.chanTake(id, wi)
			w.headIdx++
			w.progress++
		} else {
			if w.queuedAt != w.headIdx {
				n.chanEnqueue(id, wi)
				w.queuedAt = w.headIdx
			}
			w.parked = true
			rec.state = recParked
			n.shard.records[pos] = rec
			return
		}
	} else {
		w.progress++
	}
	for i := range w.deliveries {
		d := &w.deliveries[i]
		if !d.done && w.progress >= d.idx+w.length-1 {
			d.done = true
			w.undeliv--
			wk.events = append(wk.events, shardEvent{dest: d.dest, latency: n.cycle - w.spawned, mc: w.mcast})
		}
	}
	for w.released < len(w.chans) && w.progress >= w.released+w.length {
		wk.rels = append(wk.rels, w.chans[w.released])
		w.released++
	}
	rec.state = recMoved
	rec.evHi = int32(len(wk.events))
	rec.relHi = int32(len(wk.rels))
	if w.released < len(w.chans) || w.undeliv > 0 {
		w.mask = n.regionMask(w)
	} else {
		rec.retired = true
	}
	n.shard.records[pos] = rec
}

// advanceTree is advanceTree for a worker whose region covers the whole
// frontier.
func (wk *shardWorker) advanceTree(pos int, wi wormRef, w *worm) {
	n := wk.n
	rec := shardRec{worker: uint8(wk.idx), evLo: int32(len(wk.events)), relLo: int32(len(wk.rels))}
	if w.headIdx < len(w.levels) {
		l := &w.levels[w.headIdx]
		for _, id := range l.channels {
			if n.chanOwner[id] == deadChan {
				rec.state = recKilled
				n.shard.records[pos] = rec
				return
			}
		}
		if !l.queued {
			for _, id := range l.channels {
				n.chanEnqueue(id, wi)
			}
			l.queued = true
		}
		for i, id := range l.channels {
			if l.taken[i] {
				continue
			}
			if n.chanAvailableToQueued(id, wi) {
				n.chanTake(id, wi)
				l.taken[i] = true
				l.missing--
			}
		}
		if l.missing > 0 {
			w.parked = true
			rec.state = recParked
			n.shard.records[pos] = rec
			return
		}
		w.headIdx++
		w.progress++
	} else {
		w.progress++
	}
	for i := range w.deliveries {
		d := &w.deliveries[i]
		if !d.done && w.progress >= d.idx+w.length-1 {
			d.done = true
			w.undeliv--
			wk.events = append(wk.events, shardEvent{dest: d.dest, latency: n.cycle - w.spawned, mc: w.mcast})
		}
	}
	for w.released < len(w.levels) && w.progress >= w.released+w.length {
		for _, id := range w.levels[w.released].channels {
			wk.rels = append(wk.rels, id)
		}
		w.released++
	}
	rec.state = recMoved
	rec.evHi = int32(len(wk.events))
	rec.relHi = int32(len(wk.rels))
	if w.released < len(w.levels) || w.undeliv > 0 {
		w.mask = n.regionMask(w)
	} else {
		rec.retired = true
	}
	n.shard.records[pos] = rec
}

// advanceSplit handles this worker's share of a tree frontier that spans
// regions: enqueue and claim only the region-local frontier channels (in
// frontier order, matching the serial engine's per-channel op order). The
// primary (lowest-region) worker records the outcome; others report their
// claims through a side list the fold aggregates. Writes are disjoint by
// construction: each worker touches only its region's channel-state
// slots and its region's l.taken elements, and only the primary writes
// w.parked.
func (wk *shardWorker) advanceSplit(pos int, wi wormRef, w *worm, mask uint64) {
	n := wk.n
	primary := bits.TrailingZeros64(mask) == wk.idx
	l := &w.levels[w.headIdx]
	for _, id := range l.channels {
		// chanDead, not the owner word: frontier channels of other regions
		// have owners being written by their workers right now.
		if n.chanDead[id] {
			// Unanimous verdict: dead flags are stable within a cycle, so
			// every involved worker returns here without touching state.
			if primary {
				n.shard.records[pos] = shardRec{state: recKilled, worker: uint8(wk.idx)}
			}
			return
		}
	}
	claims := int32(0)
	for i, id := range l.channels {
		if n.region(id) != wk.idx || l.taken[i] {
			continue
		}
		if !l.queued {
			n.chanEnqueue(id, wi)
		}
		if n.chanAvailableToQueued(id, wi) {
			n.chanTake(id, wi)
			l.taken[i] = true
			claims++
		}
	}
	if primary {
		// Parked pre-emptively so fold releases can wake the worm; the
		// fold unparks it if the aggregated claims complete the frontier.
		w.parked = true
		n.shard.records[pos] = shardRec{state: recSplit, worker: uint8(wk.idx), claims: claims}
	} else if claims > 0 {
		wk.splits = append(wk.splits, splitClaim{pos: int32(pos), claims: claims})
	}
}
