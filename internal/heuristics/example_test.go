package heuristics_test

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// ExampleSortedMP reproduces Fig. 5.7.
func ExampleSortedMP() {
	m := topology.NewMesh2D(4, 4)
	c, _ := labeling.MeshHamiltonCycle(m)
	k := core.MustMulticastSet(m, 9, []topology.NodeID{0, 1, 6, 12})
	fmt.Println(heuristics.SortedMP(m, c, k).Nodes)
	// Output: [9 13 12 8 4 0 1 2 6]
}

// ExampleGreedyST reproduces the Fig. 5.9 Steiner tree traffic.
func ExampleGreedyST() {
	m := topology.NewMesh2D(8, 8)
	k := core.MustMulticastSet(m, m.ID(2, 7), []topology.NodeID{
		m.ID(0, 5), m.ID(2, 3), m.ID(4, 1), m.ID(6, 3), m.ID(7, 4)})
	res := heuristics.GreedyST(m, k)
	fmt.Printf("%d channels (one-to-one would use %d)\n",
		res.Links, heuristics.MultiUnicastTraffic(m, k))
	// Output: 14 channels (one-to-one would use 32)
}

// ExampleDividedGreedyMT contrasts the two multicast tree algorithms on
// the Section 5.4 worked example.
func ExampleDividedGreedyMT() {
	m := topology.NewMesh2D(6, 6)
	k := core.MustMulticastSet(m, m.ID(3, 2), []topology.NodeID{
		m.ID(2, 0), m.ID(3, 0), m.ID(4, 0), m.ID(1, 1), m.ID(5, 1),
		m.ID(0, 2), m.ID(1, 3), m.ID(2, 5), m.ID(3, 5), m.ID(5, 5)})
	fmt.Printf("X-first: %d channels, divided greedy: %d channels\n",
		heuristics.XFirstMT(m, k).Links, heuristics.DividedGreedyMT(m, k).Links)
	// Output: X-first: 23 channels, divided greedy: 17 channels
}
