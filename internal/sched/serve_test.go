package sched

import (
	"testing"

	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

func serveConfig(t *testing.T, budget int32, workers, shards int) ServeConfig {
	m := topology.NewMesh2D(16, 16)
	cache := routing.NewPlanCache(0)
	return ServeConfig{
		Service: Config{
			Router:  newRouter(t, m, cache),
			Budget:  budget,
			Workers: workers,
		},
		Requests:         400,
		Groups:           24,
		AvgDests:         4,
		MeanInterarrival: 40,
		WindowCycles:     256,
		Flits:            16,
		Shards:           shards,
		Seed:             3,
		MaxCycles:        2_000_000,
		Cache:            cache,
	}
}

// TestServeCompletesAll pins the end-to-end loop: every offered request
// is planned, admitted, simulated, and completed, with sane latency
// ordering and a warm cache.
func TestServeCompletesAll(t *testing.T) {
	res := Serve(serveConfig(t, 40, 1, 0))
	if res.Completed != res.Requests {
		t.Fatalf("completed %d of %d (deadlocked=%v)", res.Completed, res.Requests, res.Deadlocked)
	}
	if res.Deadlocked {
		t.Fatal("network reported deadlock")
	}
	if res.P50Latency <= 0 || res.P99Latency < res.P50Latency || res.MeanLatency <= 0 {
		t.Fatalf("latency stats implausible: %+v", res)
	}
	if res.ThroughputPerKCycle <= 0 {
		t.Fatalf("throughput %v, want > 0", res.ThroughputPerKCycle)
	}
	if res.CacheHitRate <= 0.5 {
		t.Fatalf("cache hit rate %.3f over a 24-group pool, want > 0.5", res.CacheHitRate)
	}
	if res.Windows == 0 || res.CacheLookups == 0 {
		t.Fatalf("counters empty: %+v", res)
	}
}

// TestServeDeterministic pins the determinism protocol end to end: the
// full ServeResult is identical at any simulator shard count and any
// planning worker count.
func TestServeDeterministic(t *testing.T) {
	want := Serve(serveConfig(t, 40, 1, 0))
	for _, tc := range []struct{ workers, shards int }{{4, 0}, {1, 4}, {4, 4}} {
		got := Serve(serveConfig(t, 40, tc.workers, tc.shards))
		if got != want {
			t.Fatalf("workers=%d shards=%d diverged:\nwant %+v\ngot  %+v",
				tc.workers, tc.shards, want, got)
		}
	}
}

// TestServeFIFOBaseline pins the unbudgeted baseline: it also completes
// and never defers.
func TestServeFIFOBaseline(t *testing.T) {
	res := Serve(serveConfig(t, 0, 1, 0))
	if res.Completed != res.Requests {
		t.Fatalf("completed %d of %d", res.Completed, res.Requests)
	}
	if res.Deferrals != 0 || res.ForceAdmits != 0 {
		t.Fatalf("FIFO baseline deferred: %+v", res)
	}
}
