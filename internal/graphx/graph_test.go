package graphx

import (
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i)
	}
	return g
}

func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	g.AddEdge(n-1, 0)
	return g
}

func gridRect(w, h int) *GridGraph {
	var pts []Point
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pts = append(pts, Point{x, y})
		}
	}
	return NewGridGraph(pts)
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.Edges() != 2 {
		t.Fatalf("Edges()=%d, want 2", g.Edges())
	}
	if !g.HasEdge(1, 0) {
		t.Error("HasEdge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge (0,2)")
	}
	if g.Connected() {
		t.Error("graph with isolated vertex 3 reported connected")
	}
	g.AddEdge(2, 3)
	if !g.Connected() {
		t.Error("path graph reported disconnected")
	}
	if !g.IsTree() {
		t.Error("path graph is a tree")
	}
	g.AddEdge(3, 0)
	if g.IsTree() {
		t.Error("cycle reported as tree")
	}
}

func TestGraphRejectsBadEdges(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	for i, fn := range []func(){
		func() { g.AddEdge(0, 0) },
		func() { g.AddEdge(0, 1) },
		func() { g.AddEdge(1, 0) },
		func() { g.AddEdge(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBFSDistancesAndShortestPath(t *testing.T) {
	g := gridRect(4, 3).Graph()
	dist := g.BFSDistances(0)
	// Vertex order in gridRect is row-major, so index = y*4 + x.
	if dist[11] != 5 {
		t.Errorf("dist to far corner = %d, want 5", dist[11])
	}
	p := g.ShortestPath(0, 11)
	if len(p) != 6 || p[0] != 0 || p[5] != 11 {
		t.Fatalf("bad shortest path %v", p)
	}
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			t.Fatalf("path uses non-edge (%d,%d)", p[i-1], p[i])
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if p := g.ShortestPath(0, 3); p != nil {
		t.Errorf("expected nil path, got %v", p)
	}
}

func TestBFSLayers(t *testing.T) {
	g := gridRect(3, 3).Graph()
	layers := g.BFSLayers(0)
	wantSizes := []int{1, 2, 3, 2, 1}
	if len(layers) != len(wantSizes) {
		t.Fatalf("got %d layers, want %d", len(layers), len(wantSizes))
	}
	for i, want := range wantSizes {
		if len(layers[i]) != want {
			t.Errorf("layer %d has %d vertices, want %d", i, len(layers[i]), want)
		}
	}
}

func TestDigraphCycleDetection(t *testing.T) {
	d := NewDigraph(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	if !d.Acyclic() {
		t.Error("DAG reported cyclic")
	}
	if d.TopoOrder() == nil {
		t.Error("DAG has no topo order")
	}
	d.AddEdge(3, 1)
	cyc := d.FindCycle()
	if cyc == nil {
		t.Fatal("cycle not found")
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Errorf("cycle %v not closed", cyc)
	}
	for i := 1; i < len(cyc); i++ {
		found := false
		for _, s := range d.Successors(cyc[i-1]) {
			if s == cyc[i] {
				found = true
			}
		}
		if !found {
			t.Errorf("cycle uses non-edge (%d,%d)", cyc[i-1], cyc[i])
		}
	}
	if d.TopoOrder() != nil {
		t.Error("cyclic digraph has topo order")
	}
}

func TestDigraphDuplicateEdgesIgnored(t *testing.T) {
	d := NewDigraph(2)
	d.AddEdge(0, 1)
	d.AddEdge(0, 1)
	if d.Edges() != 1 {
		t.Errorf("Edges()=%d, want 1", d.Edges())
	}
}

func TestDigraphRandomAcyclicityProperty(t *testing.T) {
	// A digraph whose edges all go from lower to higher vertex is a DAG.
	f := func(edges []uint16) bool {
		const n = 32
		d := NewDigraph(n)
		for _, e := range edges {
			u := int(e>>8) % n
			v := int(e&0xff) % n
			if u < v {
				d.AddEdge(u, v)
			}
		}
		return d.Acyclic() && d.TopoOrder() != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridGraph(t *testing.T) {
	g := NewGridGraph([]Point{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {2, 1}})
	gr := g.Graph()
	if gr.Edges() != 4 {
		t.Errorf("Edges()=%d, want 4", gr.Edges())
	}
	i00, _ := g.Index(Point{0, 0})
	i20, _ := g.Index(Point{2, 0})
	if !gr.Connected() {
		t.Error("grid should be connected")
	}
	if d := gr.BFSDistances(i00)[i20]; d != 2 {
		t.Errorf("distance (0,0)-(2,0) = %d, want 2", d)
	}
	minX, minY, maxX, maxY := g.Bounds()
	if minX != 0 || minY != 0 || maxX != 2 || maxY != 1 {
		t.Errorf("bad bounds %d %d %d %d", minX, minY, maxX, maxY)
	}
}

func TestGridCornerVertex(t *testing.T) {
	g := NewGridGraph([]Point{{2, 5}, {1, 3}, {1, 1}, {3, 0}})
	c := g.CornerVertex()
	if g.Point(c) != (Point{1, 1}) {
		t.Errorf("corner = %v, want (1,1)", g.Point(c))
	}
}

func TestGridDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate point")
		}
	}()
	NewGridGraph([]Point{{0, 0}, {0, 0}})
}

func TestHamiltonPathAndCycle(t *testing.T) {
	// 3x3 grid: Hamilton path exists, Hamilton cycle does not (odd
	// bipartite imbalance).
	g := gridRect(3, 3).Graph()
	p := g.HamiltonPathFrom(0)
	if p == nil {
		t.Fatal("3x3 grid has a Hamilton path from a corner")
	}
	if !g.IsHamiltonPath(p) {
		t.Fatalf("returned sequence %v is not a Hamilton path", p)
	}
	if c := g.HamiltonCycle(); c != nil {
		t.Errorf("3x3 grid should have no Hamilton cycle, got %v", c)
	}

	// 4x3 grid: cycle exists.
	g2 := gridRect(4, 3).Graph()
	c := g2.HamiltonCycle()
	if c == nil {
		t.Fatal("4x3 grid has a Hamilton cycle")
	}
	if !g2.IsHamiltonCycle(c) {
		t.Fatalf("returned sequence %v is not a Hamilton cycle", c)
	}
}

func TestHamiltonPathBetween(t *testing.T) {
	g := pathGraph(5)
	if p := g.HamiltonPathBetween(0, 4); p == nil {
		t.Error("path graph has Hamilton path end to end")
	}
	if p := g.HamiltonPathBetween(0, 2); p != nil {
		t.Errorf("no Hamilton path 0->2 in path graph, got %v", p)
	}
	c := cycleGraph(6)
	if p := c.HamiltonPathBetween(2, 3); p == nil {
		t.Error("cycle graph has Hamilton path between adjacent nodes")
	}
}

func TestHamiltonValidators(t *testing.T) {
	g := cycleGraph(4)
	if g.IsHamiltonPath([]int{0, 1, 2}) {
		t.Error("short sequence accepted")
	}
	if g.IsHamiltonPath([]int{0, 1, 1, 2}) {
		t.Error("repeated vertex accepted")
	}
	if g.IsHamiltonCycle([]int{0, 1, 2, 3}) {
		t.Error("unclosed cycle accepted")
	}
	if !g.IsHamiltonCycle([]int{0, 1, 2, 3, 0}) {
		t.Error("valid cycle rejected")
	}
}

// TestShortestPathOptimalProperty quick-checks ShortestPath length against
// BFS distances on random connected grids.
func TestShortestPathOptimalProperty(t *testing.T) {
	g := gridRect(6, 5).Graph()
	f := func(a, b uint8) bool {
		src := int(a) % g.N()
		dst := int(b) % g.N()
		p := g.ShortestPath(src, dst)
		d := g.BFSDistances(src)[dst]
		if d < 0 {
			return p == nil
		}
		if len(p)-1 != d {
			return false
		}
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				return false
			}
		}
		return p[0] == src && p[len(p)-1] == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
