package topology

import "testing"

// TestMaskedHealthy checks that an empty mask is transparent: same
// adjacency and distances as the base mesh.
func TestMaskedHealthy(t *testing.T) {
	base := NewMesh2D(4, 3)
	m := NewMasked(base, nil, nil)
	if m.Nodes() != base.Nodes() || m.MaxDegree() != base.MaxDegree() {
		t.Fatalf("masked changed node count or degree")
	}
	for u := NodeID(0); int(u) < base.Nodes(); u++ {
		for v := NodeID(0); int(v) < base.Nodes(); v++ {
			if m.Adjacent(u, v) != base.Adjacent(u, v) {
				t.Fatalf("adjacency differs at (%d,%d)", u, v)
			}
			if m.Distance(u, v) != base.Distance(u, v) {
				t.Fatalf("distance differs at (%d,%d): %d vs %d",
					u, v, m.Distance(u, v), base.Distance(u, v))
			}
			if !m.Reachable(u, v) {
				t.Fatalf("(%d,%d) unreachable in healthy mask", u, v)
			}
		}
	}
	if m.Diameter() != base.Diameter() {
		t.Fatalf("diameter %d, want %d", m.Diameter(), base.Diameter())
	}
}

// TestMaskedDeadLink kills one link of a 1xN path mesh, which must
// partition it.
func TestMaskedDeadLink(t *testing.T) {
	base := NewMesh2D(5, 1) // a path 0-1-2-3-4
	m := NewMasked(base, nil, []Link{NormLink(1, 2)})
	if m.Adjacent(1, 2) || m.Adjacent(2, 1) {
		t.Fatalf("dead link still adjacent")
	}
	if !m.Adjacent(0, 1) || !m.Adjacent(2, 3) {
		t.Fatalf("live links lost")
	}
	if m.Reachable(0, 4) {
		t.Fatalf("severed path still reachable")
	}
	if got := m.Distance(0, 4); got != m.Nodes() {
		t.Fatalf("unreachable distance sentinel: got %d, want %d", got, m.Nodes())
	}
	if got := m.Distance(2, 4); got != 2 {
		t.Fatalf("live-side distance: got %d, want 2", got)
	}
	if !m.LinkDead(2, 1) {
		t.Fatalf("LinkDead not symmetric")
	}
}

// TestMaskedDeadNode kills a cut vertex: its links disappear and routes
// must detour or fail.
func TestMaskedDeadNode(t *testing.T) {
	base := NewMesh2D(3, 3)
	center := base.ID(1, 1)
	m := NewMasked(base, []NodeID{center}, nil)
	if !m.NodeDead(center) {
		t.Fatalf("center not dead")
	}
	if m.Adjacent(center, base.ID(0, 1)) {
		t.Fatalf("dead node still adjacent")
	}
	if got := len(m.Neighbors(center, nil)); got != 0 {
		t.Fatalf("dead node has %d neighbors", got)
	}
	// (0,1) to (2,1) used to be distance 2 through the center; now the
	// detour around it is length 4.
	if got := m.Distance(base.ID(0, 1), base.ID(2, 1)); got != 4 {
		t.Fatalf("detour distance: got %d, want 4", got)
	}
	if m.Reachable(center, 0) || m.Reachable(0, center) {
		t.Fatalf("dead node reachable")
	}
}

// TestMaskedNameFingerprint checks distinct masks get distinct names and
// the base topology is recoverable.
func TestMaskedNameFingerprint(t *testing.T) {
	base := NewMesh2D(4, 4)
	a := NewMasked(base, nil, []Link{NormLink(0, 1)})
	b := NewMasked(base, nil, []Link{NormLink(1, 2)})
	c := NewMasked(base, nil, []Link{NormLink(0, 1)})
	if a.Name() == b.Name() {
		t.Fatalf("different masks share name %q", a.Name())
	}
	if a.Name() != c.Name() {
		t.Fatalf("equal masks differ: %q vs %q", a.Name(), c.Name())
	}
	if a.Base() != Topology(base) {
		t.Fatalf("Base() lost the wrapped topology")
	}
}
