package render

import (
	"strings"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// TestMeshSmallGolden pins the exact drawing of a tiny pattern: source 0
// to destination 5 on a 3x2 mesh via 0 -> 1 -> 4 -> 5... (one explicit
// channel list).
func TestMeshSmallGolden(t *testing.T) {
	m := topology.NewMesh2D(3, 2)
	k := core.MustMulticastSet(m, 0, []topology.NodeID{5})
	chans := []dfr.Channel{
		{From: 0, To: 1},
		{From: 1, To: 4},
		{From: 4, To: 5},
	}
	got := Mesh(m, k, chans)
	want := "" +
		".   +---D\n" +
		"    |    \n" +
		"S---+   .\n"
	if got != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMeshStarFig613 renders the Fig. 6.13 dual-path example and checks
// structural facts: the source and all nine destinations are marked and
// exactly 33 links are drawn.
func TestMeshStarFig613(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	l := labeling.NewMeshBoustrophedon(m)
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	k := core.MustMulticastSet(m, id(3, 2), []topology.NodeID{
		id(0, 0), id(0, 2), id(0, 5), id(1, 3), id(4, 5),
		id(5, 0), id(5, 1), id(5, 3), id(5, 4)})
	out := MeshStar(m, k, dfr.DualPath(m, l, k))
	if strings.Count(out, "S") != 1 {
		t.Errorf("expected one source marker:\n%s", out)
	}
	if strings.Count(out, "D") != 9 {
		t.Errorf("expected nine destination markers:\n%s", out)
	}
	links := strings.Count(out, "---") + strings.Count(out, "|")
	if links != 33 {
		t.Errorf("drawing shows %d links, want 33:\n%s", links, out)
	}
}

// TestMeshTreesCoverAllSubnetworks renders the double-channel X-first
// trees of the same example.
func TestMeshTreesCoverAllSubnetworks(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	k := core.MustMulticastSet(m, id(3, 2), []topology.NodeID{
		id(0, 0), id(0, 5), id(5, 0), id(5, 5)})
	out := MeshTrees(m, k, dfr.DoubleChannelXFirst(m, k))
	if strings.Count(out, "D") != 4 || strings.Count(out, "S") != 1 {
		t.Errorf("markers wrong:\n%s", out)
	}
}

// TestMeshEdgesRendersSTResult renders a greedy ST pattern.
func TestMeshEdgesRendersSTResult(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	k := core.MustMulticastSet(m, m.ID(2, 7), []topology.NodeID{
		m.ID(0, 5), m.ID(2, 3), m.ID(4, 1), m.ID(6, 3), m.ID(7, 4)})
	res := heuristics.GreedyST(m, k)
	out := MeshEdges(m, k, res.Edges)
	links := strings.Count(out, "---") + strings.Count(out, "|")
	if links != res.Links {
		t.Errorf("drawing shows %d links, traffic is %d:\n%s", links, res.Links, out)
	}
}

// TestMeshIgnoresNonLinks checks that non-mesh channels are skipped, not
// fatal.
func TestMeshIgnoresNonLinks(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	k := core.MustMulticastSet(m, 0, []topology.NodeID{3})
	out := Mesh(m, k, []dfr.Channel{{From: 0, To: 5}}) // diagonal: not a link
	if !strings.Contains(out, "S") {
		t.Error("source missing")
	}
	if strings.Contains(out, "---") || strings.Contains(out, "|") {
		t.Error("non-link drawn")
	}
}
