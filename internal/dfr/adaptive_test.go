package dfr

import (
	"testing"

	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// randomOracle marks a random subset of channels busy.
type randomOracle struct {
	rng  *stats.Rand
	prob float64
	mem  map[Channel]bool
}

func (o *randomOracle) Busy(c Channel) bool {
	if o.mem == nil {
		o.mem = make(map[Channel]bool)
	}
	if v, ok := o.mem[c]; ok {
		return v
	}
	v := o.rng.Float64() < o.prob
	o.mem[c] = v
	return v
}

// TestAdaptiveDualPathIdleEqualsDeterministic pins the degenerate case:
// with every channel free, adaptive dual-path produces exactly the
// deterministic dual-path routes.
func TestAdaptiveDualPathIdleEqualsDeterministic(t *testing.T) {
	topos := []struct {
		t topology.Topology
		l labeling.Labeling
	}{
		{topology.NewMesh2D(8, 8), labeling.NewMeshBoustrophedon(topology.NewMesh2D(8, 8))},
		{topology.NewHypercube(5), labeling.NewHypercubeGray(topology.NewHypercube(5))},
	}
	rng := stats.NewRand(7)
	for _, tc := range topos {
		for trial := 0; trial < 100; trial++ {
			k := randomSet(tc.t, rng, 1+rng.Intn(10))
			det := DualPath(tc.t, tc.l, k)
			ada := AdaptiveDualPath(tc.t, tc.l, k, IdleOracle())
			if len(det.Paths) != len(ada.Paths) {
				t.Fatalf("%s trial %d: path counts differ", tc.t.Name(), trial)
			}
			for i := range det.Paths {
				if len(det.Paths[i].Nodes) != len(ada.Paths[i].Nodes) {
					t.Fatalf("%s trial %d: path %d lengths differ", tc.t.Name(), trial, i)
				}
				for j := range det.Paths[i].Nodes {
					if det.Paths[i].Nodes[j] != ada.Paths[i].Nodes[j] {
						t.Fatalf("%s trial %d: path %d diverges at hop %d", tc.t.Name(), trial, i, j)
					}
				}
			}
		}
	}
}

// TestAdaptiveDualPathUnderCongestion checks the extension's core
// properties under random congestion: routes stay valid, stay
// label-monotone (hence deadlock-free), keep shortest legs, and the
// combined dependency graph over many adaptive routings stays acyclic.
func TestAdaptiveDualPathUnderCongestion(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	rng := stats.NewRand(19)
	rec := NewDependencyRecorder()
	for trial := 0; trial < 300; trial++ {
		k := randomSet(m, rng, 1+rng.Intn(12))
		oracle := &randomOracle{rng: rng, prob: 0.4}
		s := AdaptiveDualPath(m, l, k, oracle)
		if err := s.Validate(m, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Per-leg shortest and whole-path monotone.
		det := DualPath(m, l, k)
		if s.Traffic() != det.Traffic() {
			t.Fatalf("trial %d: adaptive traffic %d differs from deterministic %d (legs must stay shortest)",
				trial, s.Traffic(), det.Traffic())
		}
		for _, p := range s.Paths {
			up := l.Label(p.Nodes[len(p.Nodes)-1]) > l.Label(p.Nodes[0])
			for i := 1; i < len(p.Nodes); i++ {
				a, b := l.Label(p.Nodes[i-1]), l.Label(p.Nodes[i])
				if up && a >= b || !up && a <= b {
					t.Fatalf("trial %d: adaptive path not label-monotone", trial)
				}
			}
		}
		rec.AddStar(s)
	}
	if cyc := rec.FindCycle(); cyc != nil {
		t.Errorf("adaptive dual-path CDG has cycle %v", cyc)
	}
}

// TestAdaptiveNextHopAvoidsBusy pins the adaptive choice: on a 4-cube,
// from 1100 (label 8) toward 1011 (label 13), the distance-reducing
// in-window candidates are 1110 (label 11) and 1101 (label 9); R picks
// 1110. With [1100,1110] busy the adaptive hop takes 1101, and with both
// candidates busy it falls back to R's choice (stalling there rather
// than leaving the window).
func TestAdaptiveNextHopAvoidsBusy(t *testing.T) {
	h := topology.NewHypercube(4)
	lh := labeling.NewHypercubeGray(h)
	src, dst := topology.NodeID(0b1100), topology.NodeID(0b1011)

	det := AdaptiveNextHop(h, lh, src, dst, 0, IdleOracle())
	if det != 0b1110 {
		t.Fatalf("deterministic hop = %04b, expected 1110", det)
	}
	oracle := &fixedOracle{busy: map[Channel]bool{{From: src, To: 0b1110}: true}}
	if got := AdaptiveNextHop(h, lh, src, dst, 0, oracle); got != 0b1101 {
		t.Errorf("adaptive hop = %04b, want 1101 (the free in-window alternative)", got)
	}
	allBusy := &fixedOracle{busy: map[Channel]bool{
		{From: src, To: 0b1110}: true,
		{From: src, To: 0b1101}: true,
	}}
	if got := AdaptiveNextHop(h, lh, src, dst, 0, allBusy); got != det {
		t.Errorf("all-busy hop = %04b, want R's %04b", got, det)
	}
}

type fixedOracle struct{ busy map[Channel]bool }

func (o *fixedOracle) Busy(c Channel) bool { return o.busy[c] }
