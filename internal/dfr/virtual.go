package dfr

import (
	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// VirtualChannelPath implements the Section 8.2 extension the
// dissertation leaves as future work: "the network may be partitioned
// into many sub-networks [using virtual channels]. The set of destination
// nodes then may be distributed to different sub-networks to support
// multiple multicast paths."
//
// With v channel copies per direction the network splits into v
// independent high/low subnetwork pairs. The high destinations, sorted by
// label, are divided into v contiguous label blocks, one per copy, and
// likewise the low destinations; each block is routed as a label-monotone
// path in its own copy. Every copy network carries only monotone paths,
// so each copy's channel dependency graph is acyclic and the scheme is
// deadlock-free for any v. v = 1 is exactly dual-path routing; growing v
// trades extra startup legs for shorter per-path visit sequences without
// concentrating all paths on the source's physical out-channels of a
// single copy.
//
// Channel classes are assigned as 2*copy for high paths and 2*copy+1 for
// low paths, so all 2v subnetworks are disjoint even on topologies where
// a physical link could carry both a high and a low path of different
// source pairs.
func VirtualChannelPath(t topology.Topology, l labeling.Labeling, k core.MulticastSet, v int) Star {
	if v < 1 {
		panic("dfr: virtual channel count must be at least 1")
	}
	dh, dl := HighLowPartition(l, k)
	s := Star{Source: k.Source}
	for copyIdx, block := range splitBlocks(dh, v) {
		s.Paths = append(s.Paths, PathRoute{
			Nodes: routeThrough(t, l, k.Source, block),
			Dests: block,
			Class: 2 * copyIdx,
		})
	}
	for copyIdx, block := range splitBlocks(dl, v) {
		s.Paths = append(s.Paths, PathRoute{
			Nodes: routeThrough(t, l, k.Source, block),
			Dests: block,
			Class: 2*copyIdx + 1,
		})
	}
	return s
}

// splitBlocks divides an ordered destination list into at most v
// contiguous, non-empty, nearly equal blocks.
func splitBlocks(dests []topology.NodeID, v int) [][]topology.NodeID {
	if len(dests) == 0 {
		return nil
	}
	if v > len(dests) {
		v = len(dests)
	}
	out := make([][]topology.NodeID, 0, v)
	base := len(dests) / v
	extra := len(dests) % v
	start := 0
	for i := 0; i < v; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, dests[start:start+size])
		start += size
	}
	return out
}
