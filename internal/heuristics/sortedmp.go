// Package heuristics implements the basic heuristic multicast routing
// algorithms of Chapter 5 — sorted MP/MC (Section 5.1), greedy ST
// (Section 5.2), and the X-first and divided-greedy MT algorithms
// (Section 5.3) — together with the baselines of the performance study:
// multiple one-to-one, broadcast, the LEN hypercube heuristic [20], and
// the KMB Steiner heuristic [55].
//
// Each algorithm is written in the paper's hybrid distributed style: a
// message-preparation step at the source computes the routing control
// field carried in the message header, and a message-routing step executed
// at every forward node decides the next hop(s). The package drives the
// per-node steps to completion and returns the resulting route object.
package heuristics

import (
	"sort"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// SortedMPPrepare is the message-preparation part of the sorted MP
// algorithm (Fig. 5.1): it returns the destination list sorted in
// ascending order of the cycle key f.
func SortedMPPrepare(c *labeling.HamiltonCycle, k core.MulticastSet) []topology.NodeID {
	d := make([]topology.NodeID, len(k.Dests))
	copy(d, k.Dests)
	sort.Slice(d, func(i, j int) bool {
		return c.SortKey(k.Source, d[i]) < c.SortKey(k.Source, d[j])
	})
	return d
}

// sortedMPStep is the message-routing part (Fig. 5.2) executed at node w:
// given the remaining sorted destination list, it pops w if w is the next
// destination, then selects the neighbor with the greatest key f not
// exceeding f(d) for the next destination d. It returns the (possibly
// shortened) list and the next hop; done is true when the list is empty.
func sortedMPStep(t topology.Topology, c *labeling.HamiltonCycle, u0 topology.NodeID,
	w topology.NodeID, dests []topology.NodeID) (next topology.NodeID, rest []topology.NodeID, done bool) {

	rest = dests
	if len(rest) > 0 && rest[0] == w {
		rest = rest[1:] // deliver to the local node
	}
	if len(rest) == 0 {
		return 0, nil, true
	}
	fd := c.SortKey(u0, rest[0])
	var (
		best  topology.NodeID
		bestF = -1
	)
	var buf [32]topology.NodeID
	for _, p := range t.Neighbors(w, buf[:0]) {
		if fp := c.SortKey(u0, p); fp <= fd && fp > bestF {
			best, bestF = p, fp
		}
	}
	if bestF < 0 {
		// Impossible by Fact 2 of Theorem 5.1 (the cycle successor of w
		// always qualifies); guard against a corrupted cycle.
		panic("heuristics: sorted MP routing stuck")
	}
	return best, rest, false
}

// SortedMP runs the sorted MP algorithm of Section 5.1 and returns the
// multicast path. By Theorem 5.1 the visited edges induce an MP for k:
// the key f strictly increases along the route, so the path is simple and
// visits the destinations in sorted order.
func SortedMP(t topology.Topology, c *labeling.HamiltonCycle, k core.MulticastSet) core.Path {
	dests := SortedMPPrepare(c, k)
	w := k.Source
	path := core.Path{Nodes: []topology.NodeID{w}}
	for {
		next, rest, done := sortedMPStep(t, c, k.Source, w, dests)
		if done {
			return path
		}
		dests = rest
		w = next
		path.Nodes = append(path.Nodes, w)
	}
}

// SortedMC runs the sorted MC variant of Section 5.1: after the last
// destination the message continues around the Hamilton cycle back to the
// source, giving the source a collective acknowledgement (Definition 3.2).
// The source is treated as a final destination with key m + h(u0).
func SortedMC(t topology.Topology, c *labeling.HamiltonCycle, k core.MulticastSet) core.Cycle {
	p := SortedMP(t, c, k)
	m := c.Len()
	u0 := k.Source
	keyBound := m + c.H(u0)
	key := func(x topology.NodeID) int {
		if x == u0 {
			return keyBound
		}
		return c.SortKey(u0, x)
	}
	w := p.Nodes[len(p.Nodes)-1]
	nodes := p.Nodes
	guard := 0
	for w != u0 {
		var (
			best  topology.NodeID
			bestF = -1
		)
		var buf [32]topology.NodeID
		for _, q := range t.Neighbors(w, buf[:0]) {
			if fq := key(q); fq <= keyBound && fq > bestF {
				best, bestF = q, fq
			}
		}
		w = best
		if w != u0 {
			nodes = append(nodes, w)
		}
		if guard++; guard > m+1 {
			panic("heuristics: sorted MC failed to close")
		}
	}
	return core.Cycle{Nodes: nodes}
}
