package graphx

// Scratch is reusable epoch-marked BFS state. A zero Scratch is ready to
// use; after the first call on a graph of n vertices the arrays are warm
// and subsequent traversals allocate nothing. Visited marks are epoch
// counters, so resetting between traversals is O(1) instead of O(V).
//
// A Scratch is owned by one goroutine. Graphs are safely shared between
// goroutines (their query methods are read-only); each goroutine brings
// its own Scratch.
type Scratch struct {
	epoch   uint32
	mark    []uint32
	dist    []int
	queue   []int
	reached int
}

// grow sizes the arrays for n vertices.
func (s *Scratch) grow(n int) {
	if len(s.mark) < n {
		s.mark = make([]uint32, n)
		s.dist = make([]int, n)
		s.epoch = 0
	}
}

// BFS runs a breadth-first traversal from src, leaving distances
// readable through Dist until the next traversal on this Scratch.
func (s *Scratch) BFS(g *Graph, src int) {
	g.check(src)
	s.grow(g.N())
	s.epoch++
	if s.epoch == 0 { // wrapped: all marks look fresh, so wipe them
		clear(s.mark)
		s.epoch = 1
	}
	s.mark[src] = s.epoch
	s.dist[src] = 0
	s.queue = append(s.queue[:0], src)
	s.reached = 1
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		for _, v := range g.adj[u] {
			if s.mark[v] != s.epoch {
				s.mark[v] = s.epoch
				s.dist[v] = s.dist[u] + 1
				s.queue = append(s.queue, v)
				s.reached++
			}
		}
	}
}

// Dist returns the distance of v from the last BFS source, or -1 when v
// was not reached.
func (s *Scratch) Dist(v int) int {
	if v < 0 || v >= len(s.mark) || s.mark[v] != s.epoch || s.epoch == 0 {
		return -1
	}
	return s.dist[v]
}

// Reached returns the number of vertices the last BFS visited.
func (s *Scratch) Reached() int { return s.reached }

// Connected reports whether g is connected, reusing the scratch arrays.
func (s *Scratch) Connected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	s.BFS(g, 0)
	return s.reached == g.N()
}
