package dfr

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/topology"
)

// Subnetwork identifies one of the four acyclic subnetworks of the
// double-channel X-first scheme (Fig. 6.5).
type Subnetwork int

// The four subnetworks of Section 6.2.1.
const (
	NetPlusXPlusY Subnetwork = iota
	NetMinusXPlusY
	NetMinusXMinusY
	NetPlusXMinusY
)

// String implements fmt.Stringer.
func (s Subnetwork) String() string {
	switch s {
	case NetPlusXPlusY:
		return "N+X+Y"
	case NetMinusXPlusY:
		return "N-X+Y"
	case NetMinusXMinusY:
		return "N-X-Y"
	case NetPlusXMinusY:
		return "N+X-Y"
	default:
		return fmt.Sprintf("Subnetwork(%d)", int(s))
	}
}

// channelClass returns the channel class used by a hop in the given
// subnetwork. Doubling each physical channel yields two copies (classes 0
// and 1); each of the four subnetworks takes a unique (direction, class)
// pair, so the subnetworks are channel-disjoint: +X channels are split
// between N+X+Y (0) and N+X-Y (1), +Y channels between N+X+Y (0) and
// N-X+Y (1), and symmetrically for -X and -Y.
func (s Subnetwork) channelClass(dx, dy int) int {
	switch s {
	case NetPlusXPlusY:
		return 0 // +X copy 0, +Y copy 0
	case NetMinusXPlusY:
		if dx != 0 {
			return 0 // -X copy 0
		}
		return 1 // +Y copy 1
	case NetMinusXMinusY:
		if dx != 0 {
			return 1 // -X copy 1
		}
		return 0 // -Y copy 0
	default: // NetPlusXMinusY
		return 1 // +X copy 1, -Y copy 1
	}
}

// TreeRoute is a tree-shaped wormhole multicast route: the structure
// produced by tree-like routing, in which the message is replicated at
// branch nodes and all branches advance in lock-step (Section 6.1).
type TreeRoute struct {
	Root topology.NodeID
	// Edges lists the tree's channels in a parent-before-child order.
	Edges []Channel
	// Dests are the destinations the tree must deliver.
	Dests []topology.NodeID
}

// Traffic returns the number of channels used.
func (t TreeRoute) Traffic() int { return len(t.Edges) }

// Depths returns the hop depth of every node of the tree.
func (t TreeRoute) Depths() map[topology.NodeID]int {
	depth := map[topology.NodeID]int{t.Root: 0}
	for _, e := range t.Edges {
		depth[e.To] = depth[e.From] + 1
	}
	return depth
}

// MaxDistance returns the deepest destination depth.
func (t TreeRoute) MaxDistance() int {
	depth := t.Depths()
	maxd := 0
	for _, d := range t.Dests {
		if depth[d] > maxd {
			maxd = depth[d]
		}
	}
	return maxd
}

// Validate checks tree well-formedness and that every destination is a
// tree node reached along host-graph channels.
func (t TreeRoute) Validate(topo topology.Topology, k core.MulticastSet) error {
	if t.Root != k.Source {
		return fmt.Errorf("dfr: tree rooted at %d, source %d", t.Root, k.Source)
	}
	inTree := map[topology.NodeID]bool{t.Root: true}
	for _, e := range t.Edges {
		if !inTree[e.From] {
			return fmt.Errorf("dfr: tree edge %v from unattached node", e)
		}
		if inTree[e.To] {
			return fmt.Errorf("dfr: tree edge %v reattaches node %d", e, e.To)
		}
		if !topo.Adjacent(e.From, e.To) {
			return fmt.Errorf("dfr: tree edge %v is not a host channel", e)
		}
		inTree[e.To] = true
	}
	for _, d := range k.Dests {
		if !inTree[d] {
			return fmt.Errorf("dfr: destination %d not in tree", d)
		}
	}
	return nil
}

// PartitionQuadrants splits the destination set among the four
// subnetworks according to the relative position of each destination and
// the source (Section 6.2.1):
//
//	D+X+Y: x > x0, y >= y0    D-X+Y: x <= x0, y > y0
//	D-X-Y: x < x0, y <= y0    D+X-Y: x >= x0, y < y0
//
// The half-open quadrants tile the mesh minus the source, so each
// destination lands in exactly one subnetwork.
func PartitionQuadrants(m *topology.Mesh2D, k core.MulticastSet) [4][]topology.NodeID {
	x0, y0 := m.XY(k.Source)
	var out [4][]topology.NodeID
	for _, d := range k.Dests {
		x, y := m.XY(d)
		switch {
		case x > x0 && y >= y0:
			out[NetPlusXPlusY] = append(out[NetPlusXPlusY], d)
		case x <= x0 && y > y0:
			out[NetMinusXPlusY] = append(out[NetMinusXPlusY], d)
		case x < x0 && y <= y0:
			out[NetMinusXMinusY] = append(out[NetMinusXMinusY], d)
		default:
			out[NetPlusXMinusY] = append(out[NetPlusXMinusY], d)
		}
	}
	return out
}

// DoubleChannelXFirst runs the double-channel X-first multicast routing
// algorithm (Fig. 6.6) and returns one tree route per non-empty
// subnetwork. Within each subnetwork the message first advances along X
// to the nearest destination column, then repeatedly delivers, branches
// along Y for same-column destinations, and continues along X (X-first
// Y-next). Each subnetwork is acyclic, so the scheme is deadlock-free
// (Assertion 1).
func DoubleChannelXFirst(m *topology.Mesh2D, k core.MulticastSet) []TreeRoute {
	quads := PartitionQuadrants(m, k)
	var out []TreeRoute
	for q := Subnetwork(0); q < 4; q++ {
		dests := quads[q]
		if len(dests) == 0 {
			continue
		}
		tr := TreeRoute{Root: k.Source, Dests: dests}
		xdir, ydir := +1, +1
		switch q {
		case NetMinusXPlusY:
			xdir = -1
		case NetMinusXMinusY:
			xdir, ydir = -1, -1
		case NetPlusXMinusY:
			ydir = -1
		}
		type msg struct {
			at    topology.NodeID
			dests []topology.NodeID
		}
		queue := []msg{{at: k.Source, dests: dests}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			x, y := m.XY(cur.at)
			// Step 1: keep moving along X until some destination's
			// column is reached (in the movement direction, the
			// "nearest" column is the extreme one on our side).
			needX := false
			for _, d := range cur.dests {
				dx, _ := m.XY(d)
				if xdir > 0 && dx > x || xdir < 0 && dx < x {
					needX = true
				}
			}
			colHasDest := false
			for _, d := range cur.dests {
				if dx, _ := m.XY(d); dx == x {
					colHasDest = true
				}
			}
			if needX && !colHasDest {
				next := m.ID(x+xdir, y)
				tr.Edges = append(tr.Edges, Channel{From: cur.at, To: next, Class: q.channelClass(xdir, 0)})
				queue = append(queue, msg{at: next, dests: cur.dests})
				continue
			}
			// Steps 2-3: deliver here, branch Y for this column, send
			// the rest along X.
			var dy, rest []topology.NodeID
			for _, d := range cur.dests {
				dx, ddy := m.XY(d)
				switch {
				case dx == x && ddy == y:
					// Delivered to the local node.
				case dx == x:
					dy = append(dy, d)
				default:
					rest = append(rest, d)
				}
			}
			if len(dy) > 0 {
				next := m.ID(x, y+ydir)
				tr.Edges = append(tr.Edges, Channel{From: cur.at, To: next, Class: q.channelClass(0, ydir)})
				queue = append(queue, msg{at: next, dests: dy})
			}
			if len(rest) > 0 {
				next := m.ID(x+xdir, y)
				tr.Edges = append(tr.Edges, Channel{From: cur.at, To: next, Class: q.channelClass(xdir, 0)})
				queue = append(queue, msg{at: next, dests: rest})
			}
		}
		out = append(out, tr)
	}
	return out
}
