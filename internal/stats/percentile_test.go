package stats

import (
	"math"
	"sort"
	"testing"
)

// TestPercentileEdgeCases pins the quantile estimator's contract at the
// boundaries: empty input panics (callers guard), a single element is
// every quantile, p <= 0 and p >= 1 clamp to the extremes, and interior
// quantiles interpolate linearly.
func TestPercentileEdgeCases(t *testing.T) {
	t.Run("empty panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("Percentile(nil, 0.5) returned, want panic")
			}
		}()
		Percentile(nil, 0.5)
	})

	t.Run("single element", func(t *testing.T) {
		one := []float64{7.25}
		for _, p := range []float64{-1, 0, 0.01, 0.5, 0.99, 1, 2} {
			if got := Percentile(one, p); got != 7.25 {
				t.Errorf("Percentile([7.25], %g) = %g, want 7.25", p, got)
			}
		}
	})

	t.Run("p0 and p100 clamp", func(t *testing.T) {
		s := []float64{1, 2, 3, 4, 5}
		cases := []struct{ p, want float64 }{
			{-0.5, 1}, {0, 1}, {1, 5}, {1.5, 5},
		}
		for _, c := range cases {
			if got := Percentile(s, c.p); got != c.want {
				t.Errorf("Percentile(1..5, %g) = %g, want %g", c.p, got, c.want)
			}
		}
	})

	t.Run("linear interpolation", func(t *testing.T) {
		s := []float64{10, 20, 30, 40}
		cases := []struct{ p, want float64 }{
			{0.5, 25},       // rank 1.5: midway between 20 and 30
			{0.25, 17.5},    // rank 0.75
			{1.0 / 3.0, 20}, // rank exactly 1
			{0.99, 39.7},    // rank 2.97
		}
		for _, c := range cases {
			if got := Percentile(s, c.p); math.Abs(got-c.want) > 1e-9 {
				t.Errorf("Percentile(10..40, %g) = %g, want %g", c.p, got, c.want)
			}
		}
	})

	t.Run("requires sorted input", func(t *testing.T) {
		// The contract is caller-sorts: an unsorted slice interpolates
		// positions, not values. Sorting first restores the quantile.
		unsorted := []float64{40, 10, 30, 20}
		if got := Percentile(unsorted, 0.5); got == 25 {
			t.Skip("position interpolation happened to match; contract not observable")
		}
		s := append([]float64(nil), unsorted...)
		sort.Float64s(s)
		if got := Percentile(s, 0.5); got != 25 {
			t.Errorf("Percentile(sorted, 0.5) = %g, want 25", got)
		}
	})

	t.Run("duplicates", func(t *testing.T) {
		s := []float64{5, 5, 5, 5, 9}
		if got := Percentile(s, 0.5); got != 5 {
			t.Errorf("median of {5,5,5,5,9} = %g, want 5", got)
		}
		if got := Percentile(s, 1); got != 9 {
			t.Errorf("max of {5,5,5,5,9} = %g, want 9", got)
		}
	})
}
