package experiments

import (
	"testing"
)

func TestExtVirtualChannelsStaticShape(t *testing.T) {
	fig := ExtVirtualChannelsStatic(Quick())
	// More copies cut the worst source-to-destination distance...
	shapeAboveRange(t, fig, "v=1 (dual-path) max-dist", "v=4 max-dist", 5, 60)
	// ...and never reduce traffic (extra startup legs).
	v1 := fig.Get("v=1 (dual-path) traffic")
	v4 := fig.Get("v=4 traffic")
	for i, x := range v1.X {
		if y4, ok := v4.At(x); ok && y4 < v1.Y[i]-1e-9 {
			t.Errorf("v=4 traffic %.1f below v=1 %.1f at k=%g", y4, v1.Y[i], x)
		}
	}
}

func TestExtDualPath3DShape(t *testing.T) {
	fig := ExtDualPath3D(Quick())
	shapeAboveRange(t, fig, "one-to-one", "dual-path", 10, 60)
	shapeAboveRange(t, fig, "fixed-path", "dual-path", 2, 30)
}

func TestExtDynamicFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation in -short mode")
	}
	o := DynamicQuick()

	vd := ExtVirtualChannelsDynamic(o)
	for _, name := range []string{"v=1 (dual-path)", "v=2", "v=4"} {
		s := vd.Get(name)
		if s == nil || len(s.X) == 0 {
			t.Fatalf("Ext V-dyn: series %q empty", name)
		}
	}
	// At the heaviest quick load, more copies cannot be slower than the
	// single-copy baseline by any meaningful margin.
	v1 := vd.Get("v=1 (dual-path)")
	v4 := vd.Get("v=4")
	if len(v1.Y) > 0 && len(v4.Y) > 0 {
		last1, last4 := v1.Y[len(v1.Y)-1], v4.Y[len(v4.Y)-1]
		if last4 > 1.2*last1 {
			t.Errorf("v=4 latency %.1f much worse than v=1 %.1f under load", last4, last1)
		}
	}

	adaptive := ExtAdaptive(o)
	det := adaptive.Get("deterministic")
	ada := adaptive.Get("adaptive")
	if det == nil || ada == nil || len(det.X) == 0 || len(ada.X) == 0 {
		t.Fatal("Ext A: series empty")
	}
	// Adaptive routing never deadlocks and should not be grossly worse
	// than deterministic at the heaviest measured load.
	if last := len(ada.Y) - 1; ada.Y[last] > 1.5*det.Y[len(det.Y)-1] {
		t.Errorf("adaptive latency %.1f much worse than deterministic %.1f",
			ada.Y[last], det.Y[len(det.Y)-1])
	}

	um := ExtUnicastMix(o)
	all := um.Get("overall latency")
	if all == nil || len(all.X) < 3 {
		t.Fatal("Ext U: overall series too short")
	}
	uni := um.Get("unicast latency")
	mc := um.Get("multicast latency")
	if len(uni.X) == 0 || len(mc.X) == 0 {
		t.Fatal("Ext U: split series empty")
	}
	// Unicasts are single short messages: their latency should undercut
	// the multicast per-destination latency at every measured mix.
	for i, x := range uni.X {
		if y, ok := mc.At(x); ok && uni.Y[i] >= y {
			t.Errorf("unicast latency %.1f not below multicast %.1f at %g%% mix", uni.Y[i], y, x)
		}
	}
	// Replacing multicasts with unicasts lowers offered traffic, so the
	// overall latency should not increase with the unicast fraction.
	if all.Y[len(all.Y)-1] > all.Y[0]*1.1 {
		t.Errorf("overall latency rose with unicast fraction: %.1f -> %.1f",
			all.Y[0], all.Y[len(all.Y)-1])
	}
}
