package multicastnet_test

import (
	"fmt"
	"log"

	"multicastnet"
)

// ExampleSystem_SortedMP reproduces the dissertation's Fig. 5.7: the
// sorted multicast path on a 4x4 mesh from node 9.
func ExampleSystem_SortedMP() {
	sys, err := multicastnet.NewMeshSystem(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	k, err := sys.Set(9, 0, 1, 6, 12)
	if err != nil {
		log.Fatal(err)
	}
	p, err := sys.SortedMP(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Nodes, "traffic:", p.Traffic())
	// Output: [9 13 12 8 4 0 1 2 6] traffic: 8
}

// ExampleSystem_DualPath reproduces Fig. 6.13: deadlock-free dual-path
// routing on a 6x6 mesh uses 33 channels (18 high, 15 low).
func ExampleSystem_DualPath() {
	sys, err := multicastnet.NewMeshSystem(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	mesh := sys.Topology().(*multicastnet.Mesh2D)
	id := func(x, y int) multicastnet.NodeID { return mesh.ID(x, y) }
	k, err := sys.Set(id(3, 2),
		id(0, 0), id(0, 2), id(0, 5), id(1, 3), id(4, 5),
		id(5, 0), id(5, 1), id(5, 3), id(5, 4))
	if err != nil {
		log.Fatal(err)
	}
	star := sys.DualPath(k)
	fmt.Printf("%d paths, %d channels, max distance %d\n",
		len(star.Paths), star.Traffic(), star.MaxDistance())
	// Output: 2 paths, 33 channels, max distance 18
}

// ExampleSystem_VerifyDeadlockFree shows the checkable deadlock-freedom
// property: the routing function's complete channel dependency graph is
// acyclic.
func ExampleSystem_VerifyDeadlockFree() {
	sys, err := multicastnet.NewCubeSystem(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.VerifyDeadlockFree() == nil)
	// Output: true
}

// ExampleNewService prices a barrier on the Section 8.2 multicast
// service.
func ExampleNewService() {
	svc, err := multicastnet.NewService(multicastnet.ServiceConfig{
		Topology: multicastnet.NewMesh2D(8, 8),
		Scheme:   multicastnet.ServiceDualPath,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := svc.NewGroup([]multicastnet.NodeID{0, 7, 56, 63})
	if err != nil {
		log.Fatal(err)
	}
	cost, err := svc.Barrier(0, g, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("barrier: %d messages, %d channel transmissions\n",
		cost.Messages, cost.TrafficChannels)
	// Output: barrier: 4 messages, 49 channel transmissions
}
