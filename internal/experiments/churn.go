package experiments

import (
	"fmt"
	"runtime"
	"time"

	"multicastnet/internal/core"
	"multicastnet/internal/fault"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// The churn study: online re-planning under a continuous fault/repair
// stream on networks far beyond the dissertation's 8x8 mesh. Each
// workload keeps a fixed working set of multicast flows planned through a
// delta-driven fault.LiveRouter while seeded deltas kill and resurrect
// hardware; the study measures
//
//   - cache hit rate and evictions per churn step under targeted
//     invalidation (only plans touching dead channels are evicted)
//     versus the pre-refactor nuke-everything policy — deterministic
//     counts, committed as figures;
//   - re-plan latency per delta for the incremental path (LiveRouter:
//     O(|delta|) state patch + replanning only evicted flows) versus a
//     full rebuild (fresh masked topology + routing state + every flow
//     re-planned) — wall-clock timings, recorded in churn_study.txt;
//   - a full dynamic wormhole simulation whose mid-run fault epochs
//     re-plan through the same delta path (fault.SimSchedule) — the
//     delivery accounting is byte-identical at any shard count and is
//     committed in churn_sim.txt.

// ChurnWorkload is one topology/scheme/stream configuration.
type ChurnWorkload struct {
	Name string
	// Build constructs the topology (deferred; the big states are only
	// computed when the workload runs).
	Build func() topology.Topology
	// Scheme is the registry scheme under churn.
	Scheme string
	// Steps is the churn stream length (deltas applied).
	Steps int
	// WorkingSet is the number of concurrent multicast flows re-planned
	// every epoch; Dests is each flow's destination count.
	WorkingSet, Dests int
	// SimFaults is the fail-only event budget of the simulator run.
	SimFaults int
}

// ChurnOptions configure the study.
type ChurnOptions struct {
	Seed uint64
	// Parallel is the sweep worker count for the deterministic counting
	// passes; figures are byte-identical for every value.
	Parallel int
	// Shards steps the simulator runs with the sharded parallel engine;
	// 0 or 1 selects serial. All committed outputs except wall-clock
	// timings are byte-identical either way.
	Shards int
	// SimCycles is the cycle budget of each delta-driven simulator run.
	SimCycles int64
	// StepFrac scales every workload's Steps (0 = 1.0) — the -quick knob.
	StepFrac float64
	// Check runs the wormsim invariant audit inside the simulator runs.
	Check bool
	// Workloads overrides the workload set; nil selects ChurnWorkloads.
	Workloads []ChurnWorkload
}

func (o ChurnOptions) workloads() []ChurnWorkload {
	if o.Workloads != nil {
		return o.Workloads
	}
	return ChurnWorkloads()
}

func (o ChurnOptions) steps(w ChurnWorkload) int {
	if o.StepFrac <= 0 {
		return w.Steps
	}
	s := int(float64(w.Steps) * o.StepFrac)
	if s < 4 {
		s = 4
	}
	return s
}

// ChurnDefaults are the committed-figure settings.
func ChurnDefaults() ChurnOptions { return ChurnOptions{Seed: 1990, SimCycles: 40_000} }

// ChurnQuick shrinks the stream and cycle budgets for smoke runs.
func ChurnQuick() ChurnOptions {
	return ChurnOptions{Seed: 1990, StepFrac: 0.25, SimCycles: 8_000}
}

// ChurnWorkloads returns the default workload set: the 64x64 mesh under
// dual-path and the 4096-node hypercube under multi-path.
func ChurnWorkloads() []ChurnWorkload {
	return []ChurnWorkload{
		{
			Name:       "mesh64x64",
			Build:      func() topology.Topology { return topology.NewMesh2D(64, 64) },
			Scheme:     "dual-path",
			Steps:      64,
			WorkingSet: 48,
			Dests:      10,
			SimFaults:  24,
		},
		{
			Name:       "hypercube4k",
			Build:      func() topology.Topology { return topology.NewHypercube(12) },
			Scheme:     "multi-path",
			Steps:      64,
			WorkingSet: 48,
			Dests:      10,
			SimFaults:  24,
		},
	}
}

// churnStream draws the deterministic delta sequence: roughly one third
// of the draws repair a currently active fault, the rest kill fresh
// hardware (mostly links, with node and virtual-channel faults mixed in).
// The stream is a pure function of (topology, steps, seed).
func churnStream(topo topology.Topology, steps int, seed uint64) []fault.Delta {
	links := fault.EnumerateLinks(topo)
	rng := stats.NewRand(seed)
	var active []fault.Event
	out := make([]fault.Delta, 0, steps)
	for i := 0; i < steps; i++ {
		var d fault.Delta
		if len(active) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(active))
			d.Repair = append(d.Repair, active[j])
			active = append(active[:j], active[j+1:]...)
			out = append(out, d)
			continue
		}
		var e fault.Event
		switch rng.Intn(8) {
		case 0:
			e = fault.Event{Kind: fault.NodeFault, A: topology.NodeID(rng.Intn(topo.Nodes()))}
		case 1:
			l := links[rng.Intn(len(links))]
			e = fault.Event{Kind: fault.VCFault, A: l.U, B: l.V, Class: rng.Intn(2)}
		default:
			l := links[rng.Intn(len(links))]
			e = fault.Event{Kind: fault.LinkFault, A: l.U, B: l.V}
		}
		d.Fail = append(d.Fail, e)
		dup := false
		for _, a := range active {
			if a == e {
				dup = true
				break
			}
		}
		if !dup {
			active = append(active, e)
		}
		out = append(out, d)
	}
	return out
}

// churnWorkingSet draws the fixed multicast flows re-planned every epoch.
func churnWorkingSet(topo topology.Topology, n, dests int, seed uint64) []core.MulticastSet {
	rng := stats.NewRand(seed)
	out := make([]core.MulticastSet, 0, n)
	for i := 0; i < n; i++ {
		ids := rng.Sample(topo.Nodes(), dests+1)
		members := make([]topology.NodeID, len(ids)-1)
		for j, v := range ids[1:] {
			members[j] = topology.NodeID(v)
		}
		out = append(out, core.MustMulticastSet(topo, topology.NodeID(ids[0]), members))
	}
	return out
}

// churnCounts is the deterministic per-step accounting of one policy run.
type churnCounts struct {
	// hitRate[i] and evicted[i] are the cumulative cache hit rate and
	// invalidation count after churn step i.
	hitRate []float64
	evicted []float64
	final   routing.CacheStats
}

// churnPolicyRun replays the stream over a cached LiveRouter under one
// invalidation policy. nuke selects the pre-refactor baseline: any mask
// change flushes the whole cache (the old per-mask router identity made
// every cached plan unreachable). The counts are pure functions of the
// seeded configuration — wall time never feeds a figure.
func churnPolicyRun(w ChurnWorkload, st *routing.State, stream []fault.Delta,
	working []core.MulticastSet, nuke bool) churnCounts {
	lr, err := fault.NewLiveRouter(w.Scheme, st, routing.Options{})
	if err != nil {
		panic(err)
	}
	cache := routing.NewPlanCache(4096)
	lr.AttachCache(cache)
	for _, k := range working {
		lr.PlanDegradedCached(k)
	}
	out := churnCounts{
		hitRate: make([]float64, 0, len(stream)),
		evicted: make([]float64, 0, len(stream)),
	}
	for _, d := range stream {
		lr.ApplyDelta(d)
		if nuke && !d.Empty() {
			cache.InvalidateAll()
		}
		for _, k := range working {
			if lr.Mask().NodeDead(k.Source) {
				continue
			}
			lr.PlanDegradedCached(k)
		}
		s := cache.Stats()
		out.hitRate = append(out.hitRate, s.HitRate())
		out.evicted = append(out.evicted, float64(s.Invalidations))
	}
	out.final = cache.Stats()
	return out
}

// ChurnTiming is the sequential wall-clock comparison for one workload:
// per-delta service restoration time, incremental versus full rebuild.
type ChurnTiming struct {
	Workload   string
	Steps      int
	WorkingSet int
	// IncrementalMs and RebuildMs are the total wall milliseconds spent
	// restoring full working-set service after each delta: the
	// incremental path applies the delta in O(|delta|) and re-plans only
	// evicted flows through the cache; the rebuild path constructs a
	// fresh masked topology and routing state (memo bypassed) and
	// re-plans every flow, which is what every mask change cost before
	// the refactor.
	IncrementalMs, RebuildMs float64
	// Speedup is RebuildMs over IncrementalMs.
	Speedup float64
	// TargetedHitRate and NukeHitRate are the final cumulative cache hit
	// rates of the two invalidation policies (deterministic).
	TargetedHitRate, NukeHitRate float64
}

// churnTimingRun measures both paths over the identical stream and
// working set. Runs execute sequentially so the wall times are
// comparable.
func churnTimingRun(w ChurnWorkload, st *routing.State, stream []fault.Delta,
	working []core.MulticastSet) (incMs, rebMs float64) {
	lr, err := fault.NewLiveRouter(w.Scheme, st, routing.Options{})
	if err != nil {
		panic(err)
	}
	lr.AttachCache(routing.NewPlanCache(4096))
	for _, k := range working {
		lr.PlanDegradedCached(k) // untimed warmup: epoch-0 plans
	}
	start := time.Now()
	for _, d := range stream {
		lr.ApplyDelta(d)
		for _, k := range working {
			if lr.Mask().NodeDead(k.Source) {
				continue
			}
			lr.PlanDegradedCached(k)
		}
	}
	incMs = float64(time.Since(start).Microseconds()) / 1e3

	mask := fault.NewMask(st.Topology())
	start = time.Now()
	for _, d := range stream {
		mask.ApplyDelta(d)
		r, err := fault.NewRouterRebuild(w.Scheme, st, mask, routing.Options{})
		if err != nil {
			panic(err)
		}
		for _, k := range working {
			if mask.NodeDead(k.Source) {
				continue
			}
			r.PlanDegraded(k)
		}
	}
	rebMs = float64(time.Since(start).Microseconds()) / 1e3
	return incMs, rebMs
}

// ChurnSimResult is one delta-driven simulator run: a dynamic wormhole
// workload whose mid-run fault epochs kill channels and re-plan through
// the same LiveRouter delta path (fault.SimSchedule). Every field except
// wall time is byte-identical at any shard count.
type ChurnSimResult struct {
	Workload string
	// Epochs is the number of scheduled fault deltas.
	Epochs int
	wormsim.Result
}

func churnSim(w ChurnWorkload, topo topology.Topology, st *routing.State,
	o ChurnOptions) ChurnSimResult {
	fp := fault.NewPlan(topo, fault.Spec{
		Links:   w.SimFaults,
		Nodes:   2,
		Horizon: o.SimCycles / 2,
		Seed:    stats.DeriveSeed(o.Seed, "churn/sim/"+w.Name),
	})
	deltas := fault.PlanDeltas(fp)
	lr, err := fault.NewLiveRouter(w.Scheme, st, routing.Options{})
	if err != nil {
		panic(err)
	}
	sched, err := fault.SimSchedule(lr, deltas)
	if err != nil {
		panic(err)
	}
	res, err := wormsim.Run(wormsim.Config{
		Topology:               topo,
		Route:                  fault.SimInitialRoute(lr),
		MeanInterarrivalMicros: 10_000,
		AvgDests:               w.Dests,
		Seed:                   stats.DeriveSeed(o.Seed, "churn/run/"+w.Name),
		WarmupDeliveries:       50,
		BatchSize:              100,
		MinBatches:             1 << 30, // fixed cycle budget
		MaxCycles:              o.SimCycles,
		Shards:                 o.Shards,
		Check:                  o.Check,
		Faults:                 sched,
	})
	if err != nil {
		panic(fmt.Sprintf("churn sim %s: %v", w.Name, err))
	}
	return ChurnSimResult{Workload: w.Name, Epochs: len(deltas), Result: res}
}

// ChurnResult is the full study output. HitRate and Evictions are
// deterministic figures; Timings carry wall-clock measurements and the
// sim results' accounting is deterministic.
type ChurnResult struct {
	GOMAXPROCS int
	HitRate    *stats.Figure
	Evictions  *stats.Figure
	Timings    []ChurnTiming
	Sims       []ChurnSimResult
}

// ChurnStudy runs every workload: the two counting passes (targeted and
// nuke-everything invalidation) run under the sweep worker pool — the
// figures are byte-identical for every Parallel value — then the timing
// comparisons and simulator runs execute sequentially.
func ChurnStudy(o ChurnOptions) ChurnResult {
	out := ChurnResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		HitRate: &stats.Figure{ID: "Churn hitrate",
			Title:  "Plan-cache hit rate under fault/repair churn (targeted vs nuke-everything invalidation)",
			XLabel: "churn step", YLabel: "cumulative hit rate"},
		Evictions: &stats.Figure{ID: "Churn evictions",
			Title:  "Cumulative cache evictions under churn (targeted vs nuke-everything invalidation)",
			XLabel: "churn step", YLabel: "plans evicted"},
	}
	type prep struct {
		w       ChurnWorkload
		topo    topology.Topology
		st      *routing.State
		stream  []fault.Delta
		working []core.MulticastSet
	}
	var preps []prep
	var points []SweepPoint
	finals := make(map[string]routing.CacheStats)
	for _, w := range o.workloads() {
		topo := w.Build()
		st, err := routing.SharedState(topo)
		if err != nil {
			panic(err)
		}
		stream := churnStream(topo, o.steps(w), stats.DeriveSeed(o.Seed, "churn/stream/"+w.Name))
		working := churnWorkingSet(topo, w.WorkingSet, w.Dests,
			stats.DeriveSeed(o.Seed, "churn/flows/"+w.Name))
		preps = append(preps, prep{w, topo, st, stream, working})
		for _, policy := range []struct {
			label string
			nuke  bool
		}{{"targeted", false}, {"nuke-all", true}} {
			w, policy := w, policy
			hs := out.HitRate.AddSeries(w.Name + "/" + policy.label)
			es := out.Evictions.AddSeries(w.Name + "/" + policy.label)
			points = append(points, SweepPoint{
				Run: func() any {
					return churnPolicyRun(w, st, stream, working, policy.nuke)
				},
				Commit: func(v any) {
					c := v.(churnCounts)
					for i := range c.hitRate {
						hs.Add(float64(i+1), c.hitRate[i])
						es.Add(float64(i+1), c.evicted[i])
					}
					finals[w.Name+"/"+policy.label] = c.final
				},
			})
		}
	}
	RunSweep(points, o.Parallel)
	for _, p := range preps {
		incMs, rebMs := churnTimingRun(p.w, p.st, p.stream, p.working)
		t := ChurnTiming{
			Workload:        p.w.Name,
			Steps:           len(p.stream),
			WorkingSet:      len(p.working),
			IncrementalMs:   incMs,
			RebuildMs:       rebMs,
			TargetedHitRate: finals[p.w.Name+"/targeted"].HitRate(),
			NukeHitRate:     finals[p.w.Name+"/nuke-all"].HitRate(),
		}
		if incMs > 0 {
			t.Speedup = rebMs / incMs
		}
		out.Timings = append(out.Timings, t)
		out.Sims = append(out.Sims, churnSim(p.w, p.topo, p.st, o))
	}
	return out
}
