package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"multicastnet/internal/core"
	"multicastnet/internal/routing"
	"multicastnet/internal/sched"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
	"multicastnet/internal/workload"
	"multicastnet/internal/wormsim"
)

// The workload study: how scheme and packer rankings shift when the
// paper's uniform-random fixed-rate traffic is replaced by realistic
// models (internal/workload). Two sweeps share one deterministic,
// parallel harness:
//
//   - scheme sweep: every routing scheme carries the identical request
//     stream of every workload model on every topology, measured to
//     stream-drain in wormsim (mean completion latency per model);
//   - packer sweep: the scheduling service's fifo and sched policies
//     serve the identical stream of every model on the first topology
//     (delivered throughput and p99 completion latency per model).
//
// Every figure and point is a pure function of the seed — byte-identical
// at any -parallel and -shards value.

// WorkloadModelNames are the study's workload profiles: the five
// destination models at Poisson arrivals plus "bursty", the Zipf pool
// under ON/OFF arrivals.
func WorkloadModelNames() []string {
	return append(workload.Models(), "bursty")
}

// workloadStudySpec maps a study model name to its workload spec.
// "bursty" is zipf popularity with ON/OFF arrivals; every other name is
// the same-named destination model with Poisson arrivals.
func workloadStudySpec(model string, requests, groups, avgDests int,
	meanGap, zipfS float64) (workload.Spec, error) {
	sp := workload.Spec{
		Arrivals: workload.ArrivalsPoisson,
		Requests: requests,
		Groups:   groups,
		AvgDests: avgDests,
		MeanGap:  meanGap,
		ZipfS:    zipfS,
	}
	switch model {
	case "bursty":
		sp.Model = workload.ModelZipf
		sp.Arrivals = workload.ArrivalsOnOff
	case workload.ModelUniform, workload.ModelZipf, workload.ModelHotspot,
		workload.ModelTranspose, workload.ModelCollective:
		sp.Model = model
	default:
		return sp, fmt.Errorf("experiments: unknown workload model %q (valid: %v)",
			model, WorkloadModelNames())
	}
	return sp, nil
}

// WorkloadTopo is one topology of the scheme sweep. Name is the stable
// figure/file key (the committed study and its -quick smoke share it
// even though the quick topologies are smaller).
type WorkloadTopo struct {
	Name    string
	Build   func() topology.Topology
	Schemes []string
}

// WorkloadOptions configure the workload study.
type WorkloadOptions struct {
	Seed uint64
	// Parallel is the sweep worker count (also the packer's planner
	// workers); Shards the simulator shard count. Outputs are
	// byte-identical for every value of either.
	Parallel int
	Shards   int

	Requests  int     // requests per stream
	Groups    int     // group pool size
	AvgDests  int     // mean destination count
	Flits     int     // message length
	ZipfS     float64 // zipf/bursty popularity exponent
	MeanGap   float64 // global mean inter-arrival gap, cycles
	Budget    int32   // sched policy congestion+dilation budget
	Window    int64   // packer admission window, cycles
	MaxCycles int64

	// Models overrides the workload profile list; nil selects
	// WorkloadModelNames().
	Models []string
	// Topos overrides the scheme-sweep topologies; nil selects the
	// committed 64x64 mesh and 4096-node hypercube. The packer sweep
	// runs on Topos[0].
	Topos []WorkloadTopo
}

func (o WorkloadOptions) models() []string {
	if o.Models != nil {
		return o.Models
	}
	return WorkloadModelNames()
}

func (o WorkloadOptions) topos() []WorkloadTopo {
	if o.Topos != nil {
		return o.Topos
	}
	schemes := []string{"dual-path", "multi-path", "fixed-path"}
	return []WorkloadTopo{
		{Name: "mesh", Build: func() topology.Topology { return topology.NewMesh2D(64, 64) }, Schemes: schemes},
		{Name: "cube", Build: func() topology.Topology { return topology.NewHypercube(12) }, Schemes: schemes},
	}
}

// WorkloadDefaults are the committed-figure settings: 4096-node
// topologies under a high offered load (mean gap 1 cycle across the
// machine) where scheme and packer rankings visibly shift between
// workload models.
func WorkloadDefaults() WorkloadOptions {
	return WorkloadOptions{
		Seed:      1990,
		Requests:  1500,
		Groups:    256,
		AvgDests:  4,
		Flits:     32,
		ZipfS:     1.2,
		MeanGap:   1,
		Budget:    220,
		Window:    256,
		MaxCycles: 4_000_000,
	}
}

// WorkloadQuick shrinks streams and topologies for smoke runs; figure
// and file keys are unchanged.
func WorkloadQuick() WorkloadOptions {
	o := WorkloadDefaults()
	o.Requests = 400
	o.Groups = 64
	o.MeanGap = 6
	o.Budget = 60 // the 16x16 mesh's dilation is ~4x below the 64x64's
	o.MaxCycles = 1_500_000
	schemes := []string{"dual-path", "multi-path", "fixed-path"}
	o.Topos = []WorkloadTopo{
		{Name: "mesh", Build: func() topology.Topology { return topology.NewMesh2D(16, 16) }, Schemes: schemes},
		{Name: "cube", Build: func() topology.Topology { return topology.NewHypercube(8) }, Schemes: schemes},
	}
	return o
}

// WorkloadPoint is one (topology, model, scheme) run of the scheme
// sweep.
type WorkloadPoint struct {
	Topo                string
	Model               string
	Scheme              string
	Requests            int
	Delivered           int
	Cycles              int64
	AvgLatencyMicros    float64
	AvgCompletionMicros float64
	ThroughputPerMs     float64
	Deadlocked          bool
}

// WorkloadPackerPoint is one (model, policy) run of the packer sweep.
type WorkloadPackerPoint struct {
	Model  string
	Policy string
	sched.ServeResult
}

// WorkloadStudyResult is the full study output; every field except
// GOMAXPROCS is deterministic.
type WorkloadStudyResult struct {
	GOMAXPROCS int
	Models     []string
	// SchemeFigs has one figure per topology: x = 1-based model index
	// (the study table carries the legend), one series per scheme,
	// y = mean completion latency in microseconds.
	SchemeFigs []*stats.Figure
	// Packer figures: x = model index, series fifo/sched.
	PackerThroughput *stats.Figure
	PackerP99        *stats.Figure
	Points           []WorkloadPoint
	PackerPoints     []WorkloadPackerPoint
}

// simSource adapts a workload source to the simulator's injection hook,
// skipping re-validation: generated and parsed streams are valid by
// construction.
func simSource(src workload.Source) wormsim.WorkloadFunc {
	return func() (int64, core.MulticastSet, bool) {
		r, ok := src.Next()
		if !ok {
			return 0, core.MulticastSet{}, false
		}
		return r.At, core.MulticastSet{Source: r.Src, Dests: r.Dests}, true
	}
}

// workloadStream builds the model's stream over topo. The seed is
// derived from the topology key only — every scheme and policy carries
// the identical paired request stream.
func workloadStream(topo topology.Topology, model, topoKey string, o WorkloadOptions) *workload.Stream {
	spec, err := workloadStudySpec(model, o.Requests, o.Groups, o.AvgDests, o.MeanGap, o.ZipfS)
	if err != nil {
		panic(err)
	}
	src, err := workload.New(topo, spec, stats.DeriveSeed(o.Seed, "workload/"+topoKey+"/"+model))
	if err != nil {
		panic(err)
	}
	return src
}

// workloadSimRun carries one model's stream under one scheme to drain.
func workloadSimRun(topo topology.Topology, st *routing.State, scheme, model, topoKey string,
	o WorkloadOptions) wormsim.Result {
	route := wormsim.FlatRouteFuncOf(routing.Flat(mustRouter(scheme, st, routing.Options{}),
		routing.NewPlanCache(0)))
	res, err := wormsim.Run(wormsim.Config{
		Topology:     topo,
		Route:        route,
		MessageBytes: o.Flits,
		Workload:     simSource(workloadStream(topo, model, topoKey, o)),
		Seed:         o.Seed, // unused by generation; kept for provenance
		BatchSize:    200,
		MinBatches:   1 << 30, // never converge early: drain the stream
		MaxCycles:    o.MaxCycles,
		Shards:       o.Shards,
	})
	if err != nil {
		panic(err)
	}
	return res
}

// workloadServeRun serves one model's stream under one packer policy.
func workloadServeRun(topo topology.Topology, st *routing.State, budget int32, model, topoKey string,
	o WorkloadOptions) sched.ServeResult {
	cache := routing.NewPlanCache(0)
	r, err := routing.New("dual-path", st)
	if err != nil {
		panic(err)
	}
	return sched.Serve(sched.ServeConfig{
		Service: sched.Config{
			Router:  routing.Flat(r, cache),
			Budget:  budget,
			Workers: o.Parallel,
		},
		Requests:     o.Requests,
		WindowCycles: o.Window,
		Flits:        o.Flits,
		Shards:       o.Shards,
		MaxCycles:    o.MaxCycles,
		Cache:        cache,
		Workload:     workloadStream(topo, model, topoKey, o),
	})
}

// WorkloadStudy runs the scheme and packer sweeps over one worker pool.
func WorkloadStudy(o WorkloadOptions) WorkloadStudyResult {
	models := o.models()
	topos := o.topos()
	out := WorkloadStudyResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Models:     models,
		PackerThroughput: &stats.Figure{ID: "Workload packer throughput",
			Title:  "Delivered throughput per workload model (fifo vs congestion-aware packing)",
			XLabel: "workload model index", YLabel: "completed multicasts per 1000 cycles"},
		PackerP99: &stats.Figure{ID: "Workload packer p99",
			Title:  "P99 request-to-completion latency per workload model (queueing included)",
			XLabel: "workload model index", YLabel: "p99 completion latency (cycles)"},
	}

	var points []SweepPoint
	for _, wt := range topos {
		wt := wt
		topo := wt.Build()
		st := mustState(topo)
		fig := &stats.Figure{ID: "Workload scheme " + wt.Name,
			Title: fmt.Sprintf("Mean multicast completion latency per workload model on the %s",
				topo.Name()),
			XLabel: "workload model index", YLabel: "mean completion latency (us)"}
		out.SchemeFigs = append(out.SchemeFigs, fig)
		for _, scheme := range wt.Schemes {
			scheme := scheme
			series := fig.AddSeries(scheme)
			for mi, model := range models {
				mi, model := mi, model
				slot := len(out.Points)
				out.Points = append(out.Points, WorkloadPoint{})
				points = append(points, SweepPoint{
					Run: func() any { return workloadSimRun(topo, st, scheme, model, wt.Name, o) },
					Commit: func(v any) {
						res := v.(wormsim.Result)
						out.Points[slot] = WorkloadPoint{
							Topo: wt.Name, Model: model, Scheme: scheme,
							Requests: o.Requests, Delivered: res.Delivered,
							Cycles:              res.Cycles,
							AvgLatencyMicros:    res.AvgLatencyMicros,
							AvgCompletionMicros: res.AvgCompletionMicros,
							ThroughputPerMs:     res.ThroughputPerMs,
							Deadlocked:          res.Deadlocked,
						}
						series.Add(float64(mi+1), res.AvgCompletionMicros)
					},
				})
			}
		}
	}

	// Packer sweep on the first topology.
	pt := topos[0]
	ptopo := pt.Build()
	pst := mustState(ptopo)
	for _, policy := range []servePolicy{{"fifo", 0}, {"sched", o.Budget}} {
		policy := policy
		ts := out.PackerThroughput.AddSeries(policy.name)
		ls := out.PackerP99.AddSeries(policy.name)
		for mi, model := range models {
			mi, model := mi, model
			slot := len(out.PackerPoints)
			out.PackerPoints = append(out.PackerPoints, WorkloadPackerPoint{})
			points = append(points, SweepPoint{
				Run: func() any { return workloadServeRun(ptopo, pst, policy.budget, model, pt.Name, o) },
				Commit: func(v any) {
					res := v.(sched.ServeResult)
					out.PackerPoints[slot] = WorkloadPackerPoint{Model: model, Policy: policy.name, ServeResult: res}
					ts.Add(float64(mi+1), res.ThroughputPerKCycle)
					ls.Add(float64(mi+1), res.P99Latency)
				},
			})
		}
	}

	RunSweep(points, o.Parallel)
	return out
}

// RecordWorkload records the named model's stream over the study's
// first topology into a replayable trace.
func RecordWorkload(model string, o WorkloadOptions) (*workload.Trace, error) {
	spec, err := workloadStudySpec(model, o.Requests, o.Groups, o.AvgDests, o.MeanGap, o.ZipfS)
	if err != nil {
		return nil, err
	}
	wt := o.topos()[0]
	return workload.Record(wt.Build(), spec,
		stats.DeriveSeed(o.Seed, "workload/"+wt.Name+"/"+model))
}

// SchemeRanking returns the topology's schemes ordered by ascending
// mean completion latency under the given model (ties broken by name).
func (r *WorkloadStudyResult) SchemeRanking(topoKey, model string) []string {
	type entry struct {
		scheme  string
		latency float64
	}
	var es []entry
	for _, p := range r.Points {
		if p.Topo == topoKey && p.Model == model {
			es = append(es, entry{p.Scheme, p.AvgCompletionMicros})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].latency != es[j].latency {
			return es[i].latency < es[j].latency
		}
		return es[i].scheme < es[j].scheme
	})
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.scheme
	}
	return out
}

// PackerComparison returns the fifo and sched points for a model, in
// that order (zero points if the model was not run).
func (r *WorkloadStudyResult) PackerComparison(model string) (fifo, sched WorkloadPackerPoint) {
	for _, p := range r.PackerPoints {
		if p.Model != model {
			continue
		}
		switch p.Policy {
		case "fifo":
			fifo = p
		case "sched":
			sched = p
		}
	}
	return fifo, sched
}
