package heuristics

import (
	"sync"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// TestWorkspacePoolConcurrent hammers the sync.Pool-backed exported
// wrappers from many goroutines, mixing topologies so recycled
// workspaces are constantly resized and retargeted. Every call is
// checked against a serially precomputed answer; run under -race this
// also proves the pool hands no workspace to two goroutines at once.
func TestWorkspacePoolConcurrent(t *testing.T) {
	m := topology.NewMesh2D(16, 16)
	h := topology.NewHypercube(8)
	m3 := topology.NewMesh3D(4, 4, 4)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	g := TopologyGraph(topology.NewMesh2D(8, 8))

	rng := stats.NewRand(29)
	const trials = 64
	meshSets := make([]core.MulticastSet, trials)
	cubeSets := make([]core.MulticastSet, trials)
	mesh3Sets := make([]core.MulticastSet, trials)
	terms := make([][]int, trials)
	type expect struct{ mp, st, carried, xf, dg, xyz, len, kmb int }
	want := make([]expect, trials)
	for i := 0; i < trials; i++ {
		meshSets[i] = randomGolden(t, rng, m, 24)
		cubeSets[i] = randomGolden(t, rng, h, 24)
		mesh3Sets[i] = randomGolden(t, rng, m3, 16)
		terms[i] = rng.Sample(64, 2+rng.Intn(10))
		want[i] = expect{
			mp:      SortedMP(m, c, meshSets[i]).Traffic(),
			st:      GreedyST(m, meshSets[i]).Links,
			carried: GreedySTCarried(m, meshSets[i]).Links,
			xf:      XFirstMT(m, meshSets[i]).Links,
			dg:      DividedGreedyMT(m, meshSets[i]).Links,
			xyz:     XYZFirstMT(m3, mesh3Sets[i]).Links,
			len:     LEN(h, cubeSets[i]).Links,
			kmb:     len(KMB(g, terms[i])),
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 16; rep++ {
				i := (w*17 + rep*5) % trials
				checks := []struct {
					name string
					got  int
					want int
				}{
					{"sorted MP", SortedMP(m, c, meshSets[i]).Traffic(), want[i].mp},
					{"greedy ST", GreedyST(m, meshSets[i]).Links, want[i].st},
					{"greedy ST carried", GreedySTCarried(m, meshSets[i]).Links, want[i].carried},
					{"X-first", XFirstMT(m, meshSets[i]).Links, want[i].xf},
					{"divided greedy", DividedGreedyMT(m, meshSets[i]).Links, want[i].dg},
					{"XYZ-first", XYZFirstMT(m3, mesh3Sets[i]).Links, want[i].xyz},
					{"LEN", LEN(h, cubeSets[i]).Links, want[i].len},
					{"KMB", len(KMB(g, terms[i])), want[i].kmb},
				}
				for _, c := range checks {
					if c.got != c.want {
						t.Errorf("worker %d trial %d: %s = %d, want %d", w, i, c.name, c.got, c.want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
