package routing

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

var updateRoutingBench = flag.Bool("update-routing-bench", false,
	"rewrite ../../BENCH_routing.json from this machine's measurements")

// benchSets builds a deterministic pool of 10-destination multicast sets
// on a 16x16 mesh — the BenchmarkRouting_* workload of the repo root.
func benchSets(tb testing.TB) (*State, []core.MulticastSet) {
	m := topology.NewMesh2D(16, 16)
	st, err := NewState(m)
	if err != nil {
		tb.Fatal(err)
	}
	rng := stats.NewRand(1)
	sets := make([]core.MulticastSet, 64)
	for i := range sets {
		sets[i] = randomSet(m, rng, 10)
	}
	return st, sets
}

// BenchmarkRoutingPlan measures cold plan construction: every call runs
// the dual-path algorithm.
func BenchmarkRoutingPlan(b *testing.B) {
	st, sets := benchSets(b)
	r, err := New("dual-path", st)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += r.PlanSet(sets[i%len(sets)]).Traffic()
	}
	_ = total
}

// BenchmarkRoutingPlanCached measures the steady-state cost once the
// plan cache has absorbed the working set.
func BenchmarkRoutingPlanCached(b *testing.B) {
	st, sets := benchSets(b)
	r, err := New("dual-path", st)
	if err != nil {
		b.Fatal(err)
	}
	cr := Cached(r, NewPlanCache(1024))
	for _, k := range sets {
		cr.PlanSet(k) // warm the cache
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += cr.PlanSet(sets[i%len(sets)]).Traffic()
	}
	_ = total
}

// TestWriteRoutingBenchBaseline regenerates the committed
// BENCH_routing.json when run with -update-routing-bench (see the
// Makefile's bench-routing-baseline target). Without the flag it only
// checks that the committed baseline parses.
func TestWriteRoutingBenchBaseline(t *testing.T) {
	const path = "../../BENCH_routing.json"
	type baseline struct {
		Gomaxprocs       int     `json:"gomaxprocs"`
		PlanNsPerOp      float64 `json:"plan_ns_per_op"`
		CachedNsPerOp    float64 `json:"cached_ns_per_op"`
		CachedSpeedup    float64 `json:"cached_speedup"`
		WorkloadMesh     string  `json:"workload_mesh"`
		WorkloadDests    int     `json:"workload_dests"`
		WorkloadSetCount int     `json:"workload_set_count"`
	}
	if !*updateRoutingBench {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing baseline (run make bench-routing-baseline): %v", err)
		}
		var b baseline
		if err := json.Unmarshal(data, &b); err != nil {
			t.Fatalf("baseline does not parse: %v", err)
		}
		if b.PlanNsPerOp <= 0 || b.CachedNsPerOp <= 0 {
			t.Fatalf("baseline has non-positive timings: %+v", b)
		}
		return
	}
	cold := testing.Benchmark(BenchmarkRoutingPlan)
	cached := testing.Benchmark(BenchmarkRoutingPlanCached)
	b := baseline{
		Gomaxprocs:       runtime.GOMAXPROCS(0),
		PlanNsPerOp:      float64(cold.NsPerOp()),
		CachedNsPerOp:    float64(cached.NsPerOp()),
		CachedSpeedup:    float64(cold.NsPerOp()) / float64(cached.NsPerOp()),
		WorkloadMesh:     "16x16",
		WorkloadDests:    10,
		WorkloadSetCount: 64,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %+v", path, b)
}
