// Quickstart: route one multicast with every algorithm of the library on
// an 8x8 mesh, compare traffic and distance, and run a short dynamic
// wormhole simulation.
package main

import (
	"fmt"
	"log"

	"multicastnet"
)

func main() {
	// An 8x8 wormhole-routed mesh multicomputer with its canonical
	// boustrophedon Hamiltonian labeling.
	sys, err := multicastnet.NewMeshSystem(8, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Node 27 multicasts to five destinations.
	k, err := sys.Set(27, 4, 18, 35, 49, 62)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multicast: source %d -> %v on %s\n\n", k.Source, k.Dests, sys.Topology().Name())

	// Chapter 5 heuristics: one path, or a Steiner/multicast tree.
	mp, err := sys.SortedMP(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted MP       %2d channels  path %v\n", mp.Traffic(), mp.Nodes)

	st, err := sys.GreedyST(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy ST       %2d channels  max depth %d\n", st.Links, st.MaxDepth())

	xf, err := sys.XFirstMT(k)
	if err != nil {
		log.Fatal(err)
	}
	dg, err := sys.DividedGreedyMT(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("X-first MT      %2d channels\n", xf.Links)
	fmt.Printf("divided greedy  %2d channels\n", dg.Links)

	// Chapter 6 deadlock-free wormhole schemes.
	dual := sys.DualPath(k)
	multi, err := sys.MultiPath(k)
	if err != nil {
		log.Fatal(err)
	}
	fixed := sys.FixedPath(k)
	fmt.Printf("dual-path       %2d channels  max distance %2d  (deadlock-free)\n",
		dual.Traffic(), dual.MaxDistance())
	fmt.Printf("multi-path      %2d channels  max distance %2d  (deadlock-free)\n",
		multi.Traffic(), multi.MaxDistance())
	fmt.Printf("fixed-path      %2d channels  max distance %2d  (deadlock-free)\n",
		fixed.Traffic(), fixed.MaxDistance())
	fmt.Printf("baseline        %2d channels  (multiple one-to-one)\n\n",
		sys.MultiUnicastTraffic(k))

	// Deadlock freedom is checkable, not just asserted: the routing
	// function's complete channel dependency graph is acyclic.
	if err := sys.VerifyDeadlockFree(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("channel dependency graph: acyclic (deadlock-free)")

	// A short dynamic simulation: every node multicasts to 10 average
	// destinations every ~300 us; dual-path routing carries the traffic.
	res, err := multicastnet.Simulate(multicastnet.SimConfig{
		Topology:               sys.Topology(),
		Route:                  sys.DualPathRouteFunc(),
		MeanInterarrivalMicros: 300,
		AvgDests:               10,
		Seed:                   42,
		WarmupDeliveries:       500,
		BatchSize:              500,
		MaxCycles:              500_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic run: %d multicasts, %d deliveries, avg latency %.1f us (±%.1f), deadlocked=%v\n",
		res.MulticastsSent, res.Deliveries, res.AvgLatencyMicros, res.CIHalfWidthMicros, res.Deadlocked)
}
