package fault

import (
	"errors"
	"fmt"
	"sync"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// ErrPartitioned is the sentinel matched by errors.Is when a fault mask
// severs destinations from the source. Plans returned alongside it still
// cover every reachable destination and are still deadlock-free; only
// the listed unreachable destinations are undeliverable.
var ErrPartitioned = errors.New("fault: network partitioned")

// PartitionError reports the destinations a fault mask severed from the
// source. It wraps ErrPartitioned for errors.Is.
type PartitionError struct {
	Scheme      string
	Source      topology.NodeID
	Unreachable []topology.NodeID
}

// Error implements error.
func (e *PartitionError) Error() string {
	return fmt.Sprintf("fault: %s from node %d: %d destination(s) unreachable %v",
		e.Scheme, e.Source, len(e.Unreachable), e.Unreachable)
}

// Is reports ErrPartitioned identity for errors.Is.
func (e *PartitionError) Is(target error) bool { return target == ErrPartitioned }

// PlanStats describes how hard the degraded router had to work for one
// plan — the per-operation degraded-mode accounting surfaced through
// mcastsvc.
type PlanStats struct {
	// FellBack reports the original scheme failed over the masked state
	// and a fallback path scheme produced the plan.
	FellBack bool
	// Repaired reports escape-segment repair was needed for at least one
	// destination.
	Repaired bool
	// Unreachable counts destinations severed from the source.
	Unreachable int
}

// Degraded reports whether the plan needed any degraded-mode treatment.
func (s PlanStats) Degraded() bool { return s.FellBack || s.Repaired || s.Unreachable > 0 }

// Router wraps one registry scheme with degraded-mode routing over a
// fault mask. It implements routing.Router (PlanSet silently drops
// unreachable destinations; use PlanDegraded for the typed partition
// error and accounting).
//
// Plan derivation tries, in order:
//
//  1. The original scheme over the masked State (same labeling, masked
//     adjacency). Most fault patterns are absorbed here: the routing
//     function R simply steers around the dead hardware.
//  2. The masked dual-path and multi-path schemes — the path schemes
//     degrade gracefully because any label-monotone masked walk stays
//     inside the scheme's acyclic subnetworks.
//  3. Escape-segment repair: deterministic BFS legs over the masked
//     graph, split into label-monotone segments with the channel class
//     escalated at every direction reversal (see repair.go). This always
//     succeeds for reachable destinations.
//
// Every accepted plan is re-validated against the mask: channels must be
// alive and every path must keep a non-decreasing class sequence that is
// label-monotone within each equal-class run — the invariant that keeps
// the union channel dependency graph acyclic (verified in the tests via
// internal/dfr).
//
// Tree schemes keep their intact (fully alive) quadrant trees and repair
// the destinations of broken trees with escape segments starting above
// the tree's channel classes, so tree dependencies and repair
// dependencies can never form a mixed cycle.
type Router struct {
	scheme     string
	id         string
	healthy    *routing.State
	mask       *Mask
	masked     maskedView
	mstate     *routing.State
	inner      routing.Router
	fallbacks  []routing.Router
	repairBase int
	treeFamily bool
}

// maskedView is the masked-graph surface degraded routing needs: both
// the immutable topology.Masked snapshot of the static path and the
// delta-patched topology.LiveMasked of the live path satisfy it.
type maskedView interface {
	topology.Topology
	Reachable(u, v topology.NodeID) bool
}

// NewRouter builds degraded-mode routing for the named registry scheme
// over the healthy state and the given mask (nil or empty mask routes
// exactly like the plain scheme).
func NewRouter(scheme string, healthy *routing.State, mask *Mask) (*Router, error) {
	return NewRouterWithOptions(scheme, healthy, mask, routing.Options{})
}

// NewRouterWithOptions is NewRouter with registry options (e.g. the
// virtual-channel copy count).
func NewRouterWithOptions(scheme string, healthy *routing.State, mask *Mask,
	opts routing.Options) (*Router, error) {
	return newRouterWithState(scheme, healthy, mask, opts, maskedStateFor)
}

// NewRouterRebuild is NewRouterWithOptions with the masked-state memo
// bypassed: the masked topology and routing state are always recomputed
// from scratch. It exists as the full-rebuild baseline for the churn
// study and benchmarks — production callers want the memoized
// constructor (or a LiveRouter).
func NewRouterRebuild(scheme string, healthy *routing.State, mask *Mask,
	opts routing.Options) (*Router, error) {
	return newRouterWithState(scheme, healthy, mask, opts,
		func(h *routing.State, m *Mask) (*topology.Masked, *routing.State) {
			masked := m.MaskTopology()
			return masked, routing.NewStateWithLabeling(masked, h.Labeling())
		})
}

func newRouterWithState(scheme string, healthy *routing.State, mask *Mask,
	opts routing.Options,
	stateFor func(*routing.State, *Mask) (*topology.Masked, *routing.State)) (*Router, error) {
	hr, err := routing.NewWithOptions(scheme, healthy, opts)
	if err != nil {
		return nil, err
	}
	base, treeFam := repairBaseFor(scheme, opts)
	r := &Router{
		scheme:     scheme,
		id:         hr.ID(),
		healthy:    healthy,
		mask:       mask,
		repairBase: base,
		treeFamily: treeFam,
	}
	if mask == nil || mask.Empty() {
		r.mask = nil
		r.mstate = healthy
		r.inner = hr
		return r, nil
	}
	masked, mstate := stateFor(healthy, mask)
	r.masked = masked
	r.mstate = mstate
	r.id = hr.ID() + "@" + masked.Name()
	if inner, err := routing.NewWithOptions(scheme, r.mstate, opts); err == nil {
		r.inner = inner
	}
	for _, fb := range []string{"dual-path", "multi-path"} {
		if fb == scheme {
			continue
		}
		if fr, err := routing.New(fb, r.mstate); err == nil {
			r.fallbacks = append(r.fallbacks, fr)
		}
	}
	return r, nil
}

// maskedStateMemo caches (Masked, masked State) pairs across routers so
// building several scheme routers — or rebuilding one — over the same
// mask reuses the all-pairs distance table and labeling tables instead of
// recomputing them per call. Keyed by the healthy state identity plus the
// masked topology's fingerprinted name; bounded by wholesale reset.
var maskedStateMemo struct {
	sync.Mutex
	entries map[maskedStateKey]maskedStateVal
}

type maskedStateKey struct {
	healthy *routing.State
	deadSet string
}

type maskedStateVal struct {
	masked *topology.Masked
	mstate *routing.State
}

// maskedStateMemoCap bounds the memo; on overflow the map resets rather
// than tracking recency (mask churn workloads revisit few distinct masks,
// and a reset only costs rebuilds, never correctness).
const maskedStateMemoCap = 128

// maskedStateFor returns the masked topology and masked routing state
// for (healthy, mask), memoized across identical masks. The key is the
// mask's canonical dead-set encoding, computed without building the
// Masked view — the all-pairs distance table (the expensive part of
// MaskTopology) is only ever computed once per distinct mask.
func maskedStateFor(healthy *routing.State, mask *Mask) (*topology.Masked, *routing.State) {
	key := maskedStateKey{healthy: healthy, deadSet: mask.deadSetKey()}
	m := &maskedStateMemo
	m.Lock()
	if v, ok := m.entries[key]; ok {
		m.Unlock()
		return v.masked, v.mstate
	}
	m.Unlock()
	masked := mask.MaskTopology()
	mstate := routing.NewStateWithLabeling(masked, healthy.Labeling())
	m.Lock()
	if m.entries == nil || len(m.entries) >= maskedStateMemoCap {
		m.entries = make(map[maskedStateKey]maskedStateVal)
	}
	m.entries[key] = maskedStateVal{masked: masked, mstate: mstate}
	m.Unlock()
	return masked, mstate
}

// repairBaseFor returns the first channel class free for escape-segment
// repair under the named scheme — one above every class the scheme's own
// monotone paths use — and whether the scheme routes trees.
func repairBaseFor(scheme string, opts routing.Options) (base int, tree bool) {
	switch scheme {
	case "dual-path", "multi-path", "fixed-path", "adaptive-dual-path":
		return 1, false
	case "dual-path-double", "multi-path-double":
		return 2, false
	case "virtual-channel":
		v := opts.VirtualChannels
		if v == 0 {
			v = 2
		}
		return 2 * v, false
	case "tree":
		return 2, true
	case "naive-tree":
		return 1, true
	default:
		// Unknown future scheme: leave generous headroom; validation
		// still gates every plan.
		return 8, false
	}
}

// Scheme implements routing.Router.
func (r *Router) Scheme() string { return r.scheme }

// ID implements routing.Router; it includes the mask fingerprint, so
// cached plans never leak across fault epochs.
func (r *Router) ID() string { return r.id }

// State implements routing.Router: the masked state plans are derived
// over (the healthy state when the mask is empty).
func (r *Router) State() *routing.State { return r.mstate }

// Masked returns the immutable masked topology snapshot, or nil for an
// empty mask or a live (delta-driven) view.
func (r *Router) Masked() *topology.Masked {
	if mk, ok := r.masked.(*topology.Masked); ok {
		return mk
	}
	return nil
}

// Plan implements routing.Router. Unreachable destinations yield a
// PartitionError (errors.Is ErrPartitioned) alongside a plan covering
// the reachable ones.
func (r *Router) Plan(src topology.NodeID, dests []topology.NodeID) (routing.Plan, error) {
	k, err := core.NewMulticastSet(r.healthy.Topology(), src, dests)
	if err != nil {
		return routing.Plan{}, err
	}
	plan, _, err := r.PlanDegraded(k)
	return plan, err
}

// PlanSet implements routing.Router: the hot path for the simulator.
// Unreachable destinations are silently dropped from the plan; callers
// needing the typed error use PlanDegraded.
func (r *Router) PlanSet(k core.MulticastSet) routing.Plan {
	plan, _, _ := r.PlanDegraded(k)
	return plan
}

// PlanDegraded routes k around the mask. The returned plan covers every
// destination still reachable from the source; severed destinations are
// reported via a *PartitionError (matching errors.Is(err,
// ErrPartitioned)). The plan and stats are valid even when err != nil.
func (r *Router) PlanDegraded(k core.MulticastSet) (routing.Plan, PlanStats, error) {
	// Empty() re-checks dynamically for the live path: when repairs have
	// drained the mask, planning bypasses the degraded machinery entirely
	// and is byte-identical to the healthy scheme, exactly like a router
	// built with no mask.
	if r.mask == nil || (r.mask.Empty() && r.inner != nil) {
		return r.inner.PlanSet(k), PlanStats{}, nil
	}
	if r.mask.NodeDead(k.Source) {
		lost := append([]topology.NodeID(nil), k.Dests...)
		return routing.Plan{}, PlanStats{Unreachable: len(lost)},
			&PartitionError{Scheme: r.scheme, Source: k.Source, Unreachable: lost}
	}
	var live, lost []topology.NodeID
	for _, d := range k.Dests {
		if r.masked.Reachable(k.Source, d) {
			live = append(live, d)
		} else {
			lost = append(lost, d)
		}
	}
	st := PlanStats{Unreachable: len(lost)}
	var perr error
	if len(lost) > 0 {
		perr = &PartitionError{Scheme: r.scheme, Source: k.Source, Unreachable: lost}
	}
	if len(live) == 0 {
		return routing.Plan{}, st, perr
	}
	lk := core.MulticastSet{Source: k.Source, Dests: live}

	if r.treeFamily {
		plan, repaired := r.planTrees(lk)
		st.Repaired = repaired
		return plan, st, perr
	}
	if r.inner != nil {
		if plan, ok := attemptPlan(r.inner, lk); ok && r.planValid(plan, lk) {
			return plan, st, perr
		}
	}
	for _, fb := range r.fallbacks {
		if plan, ok := attemptPlan(fb, lk); ok && r.planValid(plan, lk) {
			st.FellBack = true
			return plan, st, perr
		}
	}
	st.Repaired = true
	return routing.Plan{Paths: r.repairPaths(lk, 0)}, st, perr
}

// planTrees routes a tree-family multicast: quadrant trees untouched by
// the mask are kept; destinations of broken trees are served by escape
// paths whose classes start above the tree classes, keeping the two
// dependency families disjoint.
func (r *Router) planTrees(k core.MulticastSet) (routing.Plan, bool) {
	var out routing.Plan
	var broken []topology.NodeID
	plan, ok := routing.Plan{}, false
	if r.inner != nil {
		plan, ok = attemptPlan(r.inner, k)
	}
	if !ok {
		broken = k.Dests
	} else {
		for _, tr := range plan.Trees {
			if r.treeAlive(tr) {
				out.Trees = append(out.Trees, tr)
			} else {
				broken = append(broken, tr.Dests...)
			}
		}
	}
	if len(broken) == 0 {
		return out, false
	}
	bk := core.MulticastSet{Source: k.Source, Dests: broken}
	out.Paths = r.repairPaths(bk, r.repairBase)
	return out, true
}

// treeAlive reports whether a tree route survives the mask intact:
// well-formed over the masked graph with every channel copy alive.
func (r *Router) treeAlive(tr dfr.TreeRoute) bool {
	if err := tr.Validate(r.masked, core.MulticastSet{Source: tr.Root, Dests: tr.Dests}); err != nil {
		return false
	}
	for _, e := range tr.Edges {
		if r.mask.ChannelDead(e) {
			return false
		}
	}
	return true
}

// attemptPlan runs a routing attempt, absorbing panics: the healthy
// routing kernels fail loudly when a masked graph strands them
// (core.NextHopLiteral "stuck", core.RoutePath non-convergence), which
// the degraded router treats as "this scheme cannot serve this mask".
func attemptPlan(rt routing.Router, k core.MulticastSet) (plan routing.Plan, ok bool) {
	defer func() {
		if recover() != nil {
			plan, ok = routing.Plan{}, false
		}
	}()
	return rt.PlanSet(k), true
}

// planValid gates every scheme- or fallback-produced plan: it must
// deliver k over the masked graph, use only live channel copies, and
// every path must satisfy the class-run invariant — non-decreasing
// classes, strictly label-monotone inside each equal-class run — that
// keeps the union channel dependency graph acyclic.
func (r *Router) planValid(p routing.Plan, k core.MulticastSet) bool {
	if p.Validate(r.masked, k) != nil {
		return false
	}
	for _, pr := range p.Paths {
		if !r.pathSafe(pr) {
			return false
		}
		for i := 1; i < len(pr.Nodes); i++ {
			c := dfr.Channel{From: pr.Nodes[i-1], To: pr.Nodes[i], Class: pr.HopClass(i - 1)}
			if r.mask.ChannelDead(c) {
				return false
			}
		}
	}
	for _, tr := range p.Trees {
		for _, e := range tr.Edges {
			if r.mask.ChannelDead(e) {
				return false
			}
		}
	}
	return true
}

// pathSafe checks the class-run invariant on one path: the class
// sequence never decreases, and within one class the labels move
// strictly in one direction. A masked-graph walk that lost monotonicity
// (the routing function R can wander when the Hamiltonian sub-path is
// severed) is rejected here and repaired instead.
func (r *Router) pathSafe(pr dfr.PathRoute) bool {
	prevClass := -1
	dir := 0
	for i := 0; i+1 < len(pr.Nodes); i++ {
		c := pr.HopClass(i)
		if c < prevClass {
			return false
		}
		if c != prevClass {
			dir = 0
		}
		lu := r.healthy.Label(pr.Nodes[i])
		lv := r.healthy.Label(pr.Nodes[i+1])
		d := 1
		if lv < lu {
			d = -1
		} else if lv == lu {
			return false
		}
		if dir == 0 {
			dir = d
		} else if d != dir {
			return false
		}
		prevClass = c
	}
	return true
}
