package routing

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
)

// cacheShards is the shard count of every PlanCache: a power of two so
// shard selection is a mask, large enough that parallel sweeps rarely
// contend on one mutex.
const cacheShards = 16

// PlanCache is a bounded, sharded, concurrency-safe cache of routed
// plans. Keys combine the router identity with the canonicalized
// multicast set (source plus sorted destinations), so routers for
// different schemes — or the same scheme with different options — can
// share one cache without collisions. Each shard evicts in FIFO order
// once full, bounding memory under adversarial key streams.
//
// Cached plans are shared: callers must treat them as immutable.
type PlanCache struct {
	shards   [cacheShards]cacheShard
	perShard int
	hits     atomic.Uint64
	misses   atomic.Uint64
}

// cacheEntry is one cached plan in the representation its key encodes:
// route form (plan) or dense CSR form (flat). Exactly one field is set.
type cacheEntry struct {
	plan Plan
	flat *FlatPlan
}

type cacheShard struct {
	mu    sync.Mutex
	plans map[string]cacheEntry
	fifo  []string // insertion order, for eviction
}

// Plan representation tags, appended to every cache key so a cache
// populated with one representation never serves the other shape: a
// pre-flattening consumer asking for the route form must not receive a
// CSR entry, and vice versa.
const (
	reprPlan byte = 'p'
	reprFlat byte = 'f'
)

// NewPlanCache returns a cache holding at most capacity plans (rounded
// up to a multiple of the shard count). capacity <= 0 selects a default
// of 4096.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 4096
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	c := &PlanCache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].plans = make(map[string]cacheEntry)
	}
	return c
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.plans)
		s.mu.Unlock()
	}
	return total
}

// Stats returns the cumulative hit and miss counts.
func (c *PlanCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// shardFor selects a shard by FNV-1a over the key.
func (c *PlanCache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

func (c *PlanCache) get(key string) (cacheEntry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.plans[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *PlanCache) put(key string, e cacheEntry) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.plans[key]; dup {
		// A concurrent planner beat us to it; the plans are identical
		// (deterministic routing), keep the incumbent.
		return
	}
	if len(s.plans) >= c.perShard {
		oldest := s.fifo[0]
		s.fifo = s.fifo[1:]
		delete(s.plans, oldest)
	}
	s.plans[key] = e
	s.fifo = append(s.fifo, key)
}

// planKey canonicalizes a multicast set into a cache key: the plan
// representation tag, the router identity, the source, and the
// destinations in sorted order, all varint-encoded. Destination order
// never changes a scheme's routes (every scheme re-sorts by label), so
// sets that differ only in listing order share one entry. The
// representation tag keeps route-form and CSR entries for the same
// (router, set) distinct.
func planKey(id string, k core.MulticastSet, repr byte) string {
	buf := make([]byte, 0, len(id)+2+(len(k.Dests)+1)*3)
	buf = append(buf, repr)
	buf = append(buf, id...)
	buf = append(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(k.Source))
	dests := make([]topology.NodeID, len(k.Dests))
	copy(dests, k.Dests)
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, d := range dests {
		buf = binary.AppendUvarint(buf, uint64(d))
	}
	return string(buf)
}

// cachedRouter memoizes PlanSet through a PlanCache.
type cachedRouter struct {
	Router
	cache *PlanCache
}

// PlanSet implements Router, consulting the cache first.
func (r *cachedRouter) PlanSet(k core.MulticastSet) Plan {
	key := planKey(r.Router.ID(), k, reprPlan)
	if e, ok := r.cache.get(key); ok {
		return e.plan
	}
	p := r.Router.PlanSet(k)
	r.cache.put(key, cacheEntry{plan: p})
	return p
}

// Plan implements Router through the cached PlanSet.
func (r *cachedRouter) Plan(src topology.NodeID, dests []topology.NodeID) (Plan, error) {
	k, err := core.NewMulticastSet(r.State().Topology(), src, dests)
	if err != nil {
		return Plan{}, err
	}
	return r.PlanSet(k), nil
}

// cachedLiveRouter is cachedRouter for adaptive schemes: deterministic
// plans are cached, live (oracle-dependent) plans never are.
type cachedLiveRouter struct {
	cachedRouter
	live LiveRouter
}

// PlanLive implements LiveRouter, bypassing the cache.
func (r *cachedLiveRouter) PlanLive(k core.MulticastSet, oracle dfr.ChannelOracle) Plan {
	return r.live.PlanLive(k, oracle)
}

// Cached wraps a router with a plan cache. Multiple routers — of any
// scheme — may share one cache; keys are namespaced by router identity.
// Live (adaptive) plans are never cached: wrapping a LiveRouter returns
// a LiveRouter whose PlanLive passes straight through.
func Cached(r Router, c *PlanCache) Router {
	if lr, ok := r.(LiveRouter); ok {
		return &cachedLiveRouter{cachedRouter: cachedRouter{Router: r, cache: c}, live: lr}
	}
	return &cachedRouter{Router: r, cache: c}
}
