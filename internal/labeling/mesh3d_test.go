package labeling

import (
	"testing"

	"multicastnet/internal/topology"
)

func TestMesh3DBoustrophedonIsHamiltonPath(t *testing.T) {
	for _, dims := range [][3]int{
		{2, 2, 2}, {3, 3, 3}, {4, 3, 2}, {2, 4, 5}, {1, 4, 3}, {4, 1, 3}, {5, 5, 1},
	} {
		m := topology.NewMesh3D(dims[0], dims[1], dims[2])
		if err := Verify(NewMesh3DBoustrophedon(m), m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestMesh3DLabelPlaneStructure(t *testing.T) {
	m := topology.NewMesh3D(3, 2, 3)
	l := NewMesh3DBoustrophedon(m)
	plane := 3 * 2
	// Plane z holds exactly the labels [z*plane, (z+1)*plane).
	for z := 0; z < 3; z++ {
		for lab := z * plane; lab < (z+1)*plane; lab++ {
			_, _, gz := m.XYZ(l.At(lab))
			if gz != z {
				t.Fatalf("label %d lands in plane %d, want %d", lab, gz, z)
			}
		}
	}
	// Plane 0 starts at the origin; plane 1 starts directly above plane
	// 0's last node.
	if l.At(0) != m.ID(0, 0, 0) {
		t.Errorf("label 0 at node %d, want origin", l.At(0))
	}
	x0, y0, _ := m.XYZ(l.At(plane - 1))
	x1, y1, _ := m.XYZ(l.At(plane))
	if x0 != x1 || y0 != y1 {
		t.Errorf("plane transition not vertical: (%d,%d) -> (%d,%d)", x0, y0, x1, y1)
	}
}

func TestMesh3DDegeneratesTo2D(t *testing.T) {
	// With depth 1 the 3D labeling must coincide with the 2D
	// boustrophedon.
	m3 := topology.NewMesh3D(4, 3, 1)
	m2 := topology.NewMesh2D(4, 3)
	l3 := NewMesh3DBoustrophedon(m3)
	l2 := NewMeshBoustrophedon(m2)
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			if l3.Label(m3.ID(x, y, 0)) != l2.Label(m2.ID(x, y)) {
				t.Fatalf("labels disagree at (%d,%d)", x, y)
			}
		}
	}
}
