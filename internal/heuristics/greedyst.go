package heuristics

import (
	"fmt"
	"sort"

	"multicastnet/internal/core"
	"multicastnet/internal/topology"
)

// RegionTopology is the topology contract of the greedy ST algorithm: it
// needs constant-time location of the node nearest to a target among all
// nodes on shortest paths between two ends (Section 5.2).
type RegionTopology interface {
	topology.Topology
	topology.ShortestRegion
}

// STResult is the routing pattern produced by a multicast tree/subgraph
// algorithm under distributed execution: the multiset of link
// transmissions and per-destination delivery depths.
type STResult struct {
	// Links counts message transmissions over links — the traffic metric
	// of Chapter 7.
	Links int
	// Edges maps each directed link (from, to) to the number of message
	// copies sent over it.
	Edges map[[2]topology.NodeID]int
	// Delivered maps each destination to the hop count at which its copy
	// arrived.
	Delivered map[topology.NodeID]int
}

func newSTResult() *STResult {
	return &STResult{
		Edges:     make(map[[2]topology.NodeID]int),
		Delivered: make(map[topology.NodeID]int),
	}
}

func (r *STResult) send(from, to topology.NodeID) {
	r.Edges[[2]topology.NodeID{from, to}]++
	r.Links++
}

// MaxDepth returns the largest delivery depth.
func (r *STResult) MaxDepth() int {
	maxd := 0
	for _, d := range r.Delivered {
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Validate checks that every destination received the message and that
// every used link is a host-graph edge.
func (r *STResult) Validate(t topology.Topology, k core.MulticastSet) error {
	for _, d := range k.Dests {
		if _, ok := r.Delivered[d]; !ok {
			return fmt.Errorf("heuristics: destination %d never delivered", d)
		}
	}
	for e := range r.Edges {
		if !t.Adjacent(e[0], e[1]) {
			return fmt.Errorf("heuristics: transmission over non-edge (%d,%d)", e[0], e[1])
		}
	}
	return nil
}

// IsTreePattern reports whether the used links, viewed as undirected
// edges, form a tree (each link used once, connected, acyclic).
func (r *STResult) IsTreePattern() bool {
	und := make(map[[2]topology.NodeID]bool)
	nodes := make(map[topology.NodeID]int)
	nextIdx := 0
	idx := func(v topology.NodeID) int {
		if i, ok := nodes[v]; ok {
			return i
		}
		nodes[v] = nextIdx
		nextIdx++
		return nodes[v]
	}
	type edge struct{ a, b int }
	var edges []edge
	for e, n := range r.Edges {
		if n != 1 {
			return false
		}
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		key := [2]topology.NodeID{a, b}
		if und[key] {
			return false // link used in both directions
		}
		und[key] = true
		edges = append(edges, edge{idx(a), idx(b)})
	}
	if len(edges) != len(nodes)-1 {
		return false
	}
	// Union-find connectivity check.
	parent := make([]int, len(nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			return false
		}
		parent[ra] = rb
	}
	return true
}

// stTree is the contracted Steiner tree built by the greedy ST message
// routing (Step 3-4 of Fig. 5.4): edges connect tree nodes along shortest
// path regions of the host graph.
type stTree struct {
	edges [][2]topology.NodeID // insertion-ordered for determinism
	nodes map[topology.NodeID]bool
}

func (tr *stTree) addEdge(a, b topology.NodeID) {
	if tr.nodes == nil {
		tr.nodes = make(map[topology.NodeID]bool)
	}
	tr.edges = append(tr.edges, [2]topology.NodeID{a, b})
	tr.nodes[a] = true
	tr.nodes[b] = true
}

func (tr *stTree) contains(v topology.NodeID) bool { return tr.nodes[v] }

// adjacency returns the contracted-tree neighbors of v.
func (tr *stTree) adjacency(v topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	for _, e := range tr.edges {
		if e[0] == v {
			out = append(out, e[1])
		} else if e[1] == v {
			out = append(out, e[0])
		}
	}
	return out
}

// subtreeNodes returns all nodes in the subtree containing start when the
// edge back to parent is removed.
func (tr *stTree) subtreeNodes(start, parent topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	var rec func(v, from topology.NodeID)
	rec = func(v, from topology.NodeID) {
		out = append(out, v)
		for _, w := range tr.adjacency(v) {
			if w != from {
				rec(w, v)
			}
		}
	}
	rec(start, parent)
	return out
}

// GreedySTPrepare is the message-preparation part (Fig. 5.3): sort the
// destinations in ascending order of distance from the source.
func GreedySTPrepare(t topology.Topology, k core.MulticastSet) []topology.NodeID {
	d := make([]topology.NodeID, len(k.Dests))
	copy(d, k.Dests)
	sort.SliceStable(d, func(i, j int) bool {
		di := t.Distance(k.Source, d[i])
		dj := t.Distance(k.Source, d[j])
		if di != dj {
			return di < dj
		}
		return d[i] < d[j] // deterministic tie-break; paper allows any order
	})
	return d
}

// greedySTSplit is the replicate-node computation (Steps 3-5 of Fig. 5.4)
// at node u with remaining destinations dests (u excluded): it builds the
// local greedy Steiner tree and returns, for each son r of u, the sublist
// (r, destinations in r's subtree).
func greedySTSplit(t RegionTopology, u topology.NodeID, dests []topology.NodeID) [][]topology.NodeID {
	tr := &stTree{}
	tr.addEdge(u, dests[0])
	for i := 1; i < len(dests); i++ {
		ui := dests[i]
		if tr.contains(ui) {
			continue // already a tree node (e.g. a Steiner point that is also a destination)
		}
		// Step 4(a)-(b): the nearest node to ui over all shortest-path
		// regions of current tree edges.
		var (
			bestV    topology.NodeID
			bestEdge int
			bestD    = -1
		)
		for ei, e := range tr.edges {
			v := t.NearestOnShortestPaths(e[0], e[1], ui)
			if d := t.Distance(ui, v); bestD < 0 || d < bestD {
				bestV, bestEdge, bestD = v, ei, d
			}
		}
		e := tr.edges[bestEdge]
		if bestV != e[0] && bestV != e[1] {
			// Step 4(c): split edge (s,t) at v.
			tr.edges[bestEdge] = [2]topology.NodeID{e[0], bestV}
			tr.addEdge(bestV, e[1])
		}
		if ui != bestV {
			// Step 4(d).
			tr.addEdge(bestV, ui)
		}
	}
	// Step 5: one sublist per son of u.
	destSet := make(map[topology.NodeID]bool, len(dests))
	for _, d := range dests {
		destSet[d] = true
	}
	var out [][]topology.NodeID
	for _, r := range tr.adjacency(u) {
		sub := tr.subtreeNodes(r, u)
		list := []topology.NodeID{r}
		// Keep the original sorted order for the carried destinations.
		inSub := make(map[topology.NodeID]bool, len(sub))
		for _, v := range sub {
			inSub[v] = true
		}
		for _, d := range dests {
			if d != r && inSub[d] {
				list = append(list, d)
			}
		}
		out = append(out, list)
	}
	return out
}

// GreedySTCarried runs the greedy ST algorithm in the paper's alternative
// implementation (end of Section 5.2): the source computes the complete
// greedy Steiner tree once and passes it in the message, so replicate
// nodes need no recomputation. The tree construction is identical
// (Steps 3–4 of Fig. 5.4 over the whole sorted destination list); each
// contracted tree edge is realized by a shortest path, so the total
// traffic is the sum of the contracted edge lengths. This is the variant
// used for the large Fig. 7.3/7.4 sweeps, where per-hop recomputation
// (O(k^2) at every replicate node) would dominate.
func GreedySTCarried(t RegionTopology, k core.MulticastSet) *STResult {
	res := newSTResult()
	dests := GreedySTPrepare(t, k)
	destSet := k.DestSet()

	// Build the complete contracted tree at the source.
	tr := &stTree{}
	tr.addEdge(k.Source, dests[0])
	for i := 1; i < len(dests); i++ {
		ui := dests[i]
		if tr.contains(ui) {
			continue
		}
		var (
			bestV    topology.NodeID
			bestEdge int
			bestD    = -1
		)
		for ei, e := range tr.edges {
			v := t.NearestOnShortestPaths(e[0], e[1], ui)
			if d := t.Distance(ui, v); bestD < 0 || d < bestD {
				bestV, bestEdge, bestD = v, ei, d
			}
		}
		e := tr.edges[bestEdge]
		if bestV != e[0] && bestV != e[1] {
			tr.edges[bestEdge] = [2]topology.NodeID{e[0], bestV}
			tr.addEdge(bestV, e[1])
		}
		if ui != bestV {
			tr.addEdge(bestV, ui)
		}
	}

	// Walk the contracted tree from the source, realizing each edge by a
	// shortest path and accounting traffic and delivery depths.
	if destSet[k.Source] {
		res.Delivered[k.Source] = 0
	}
	type visit struct {
		node   topology.NodeID
		parent topology.NodeID
		depth  int
	}
	router, err := core.RouterFor(t)
	if err != nil {
		panic(err)
	}
	stack := []visit{{node: k.Source, parent: k.Source, depth: 0}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if destSet[cur.node] {
			if _, seen := res.Delivered[cur.node]; !seen {
				res.Delivered[cur.node] = cur.depth
			}
		}
		for _, next := range tr.adjacency(cur.node) {
			if next == cur.parent {
				continue // the root's sentinel parent is itself, never adjacent
			}
			p := core.UnicastPath(router, cur.node, next)
			for i := 1; i < len(p); i++ {
				res.send(p[i-1], p[i])
			}
			stack = append(stack, visit{node: next, parent: cur.node, depth: cur.depth + len(p) - 1})
		}
	}
	return res
}

// GreedyST runs the greedy ST algorithm of Section 5.2 under distributed
// execution and returns the delivered routing pattern. Bypass nodes
// forward the message one hop along a shortest path toward the sublist
// head using the topology's deterministic unicast router; replicate nodes
// rebuild the greedy Steiner subtree over their sublist and split it among
// their sons (Fig. 5.4).
func GreedyST(t RegionTopology, k core.MulticastSet) *STResult {
	router, err := core.RouterFor(t)
	if err != nil {
		panic(err)
	}
	res := newSTResult()
	destSet := k.DestSet()

	// A message is (current node, hop depth, list) with list[0] the
	// replicate target.
	type message struct {
		at    topology.NodeID
		depth int
		list  []topology.NodeID
	}
	queue := []message{{at: k.Source, depth: 0, list: append([]topology.NodeID{k.Source}, GreedySTPrepare(t, k)...)}}
	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		u := msg.list[0]
		if msg.at != u {
			// Step 1: bypass node; forward toward u.
			next := router.NextHopUnicast(msg.at, u)
			res.send(msg.at, next)
			queue = append(queue, message{at: next, depth: msg.depth + 1, list: msg.list})
			continue
		}
		// Arrived at the replicate target: deliver if it is a
		// destination.
		if destSet[u] {
			if _, seen := res.Delivered[u]; !seen {
				res.Delivered[u] = msg.depth
			}
		}
		rest := msg.list[1:]
		if len(rest) == 0 {
			continue // Step 2
		}
		for _, sub := range greedySTSplit(t, u, rest) {
			r := sub[0]
			next := router.NextHopUnicast(u, r)
			res.send(u, next)
			queue = append(queue, message{at: next, depth: msg.depth + 1, list: sub})
		}
	}
	return res
}
