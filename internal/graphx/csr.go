package graphx

import "slices"

// CSR is a compressed-sparse-row snapshot of a Graph, built once and
// then traversed with no per-call allocation. Row i spans
// Col[RowStart[i]:RowStart[i+1]]. Col preserves the Graph's adjacency
// insertion order (so "first neighbor" walks match Graph.ShortestPath);
// SortedCol holds the same rows sorted ascending, for algorithms that
// need numerically ordered neighbor iteration. The snapshot does not
// track later AddEdge calls — rebuild after mutating the graph.
type CSR struct {
	RowStart  []int32
	Col       []int32
	SortedCol []int32
}

// NewCSR snapshots g.
func NewCSR(g *Graph) *CSR {
	n := g.N()
	c := &CSR{RowStart: make([]int32, n+1)}
	total := 0
	for v := 0; v < n; v++ {
		total += len(g.adj[v])
		c.RowStart[v+1] = int32(total)
	}
	c.Col = make([]int32, total)
	c.SortedCol = make([]int32, total)
	for v := 0; v < n; v++ {
		row := c.Col[c.RowStart[v]:c.RowStart[v+1]]
		for i, w := range g.adj[v] {
			row[i] = int32(w)
		}
		srow := c.SortedCol[c.RowStart[v]:c.RowStart[v+1]]
		copy(srow, row)
		slices.Sort(srow)
	}
	return c
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.RowStart) - 1 }

// Arcs returns the number of directed adjacency entries (2x edges).
func (c *CSR) Arcs() int { return len(c.Col) }

// Row returns the insertion-order neighbors of v.
func (c *CSR) Row(v int32) []int32 { return c.Col[c.RowStart[v]:c.RowStart[v+1]] }

// SortedRow returns the neighbors of v in ascending order.
func (c *CSR) SortedRow(v int32) []int32 { return c.SortedCol[c.RowStart[v]:c.RowStart[v+1]] }

// SortedPos returns the index into Arcs-space of neighbor w within v's
// sorted row, or -1 when (v, w) is not an edge. Arc positions are the
// key space for per-edge epoch marks.
func (c *CSR) SortedPos(v, w int32) int32 {
	for i := c.RowStart[v]; i < c.RowStart[v+1]; i++ {
		if c.SortedCol[i] == w {
			return i
		}
	}
	return -1
}
