// Command mcroute computes a multicast route with any of the
// dissertation's algorithms and prints the route, its traffic, and its
// maximum source-to-destination distance.
//
// Usage:
//
//	mcroute -topo mesh:8x8  -algo dual-path  -src 12 -dests 3,40,63
//	mcroute -topo cube:6    -algo sorted-mp  -src 9  -dests 1,17,33
//	mcroute -topo mesh:8x8  -scheme multi-path -src 12 -dests 3,40,63
//	mcroute -list-schemes
//
// Algorithms (-algo): sorted-mp, sorted-mc, greedy-st, x-first,
// divided-greedy, len, dual-path, multi-path, fixed-path, tree
// (double-channel X-first).
//
// -scheme selects a routing-engine scheme by registry name instead
// (overriding -algo); -list-schemes prints the registry.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"multicastnet"
	"multicastnet/internal/render"
	"multicastnet/internal/routing"
)

func main() {
	topoFlag := flag.String("topo", "mesh:8x8", "topology: mesh:WxH or cube:N")
	algoFlag := flag.String("algo", "dual-path", "routing algorithm")
	schemeFlag := flag.String("scheme", "", "routing-engine scheme name (overrides -algo; see -list-schemes)")
	listSchemes := flag.Bool("list-schemes", false, "list the routing-engine schemes and exit")
	vcFlag := flag.Int("vc", 0, "virtual-channel copies for -scheme virtual-channel (0 = scheme default)")
	srcFlag := flag.Int("src", 0, "source node id")
	destsFlag := flag.String("dests", "", "comma-separated destination node ids")
	draw := flag.Bool("draw", true, "draw the routing pattern (mesh topologies)")
	flag.Parse()

	if *listSchemes {
		printSchemes()
		return
	}

	sys, err := parseSystem(*topoFlag)
	if err != nil {
		fatal(err)
	}
	dests, err := parseDests(*destsFlag)
	if err != nil {
		fatal(err)
	}
	k, err := sys.Set(multicastnet.NodeID(*srcFlag), dests...)
	if err != nil {
		fatal(err)
	}

	mesh, isMesh := sys.Topology().(*multicastnet.Mesh2D)
	drawPattern := func(chans []multicastnet.Channel) {
		if *draw && isMesh {
			fmt.Print(render.Mesh(mesh, k, chans))
		}
	}
	drawStar := func(s multicastnet.Star) {
		if *draw && isMesh {
			fmt.Print(render.MeshStar(mesh, k, s))
		}
	}

	if *schemeFlag != "" {
		st, err := routing.SharedState(sys.Topology())
		if err != nil {
			fatal(err)
		}
		r, err := routing.NewWithOptions(*schemeFlag, st, routing.Options{VirtualChannels: *vcFlag})
		if err != nil {
			fatal(err)
		}
		plan := r.PlanSet(k)
		for i, p := range plan.Paths {
			fmt.Printf("path %d:  %v -> dests %v\n", i, p.Nodes, p.Dests)
		}
		var chans []multicastnet.Channel
		for i, tr := range plan.Trees {
			fmt.Printf("subnetwork %d: %d channels, destinations %v\n", i, tr.Traffic(), tr.Dests)
			chans = append(chans, tr.Edges...)
		}
		fmt.Printf("traffic: %d channels, max distance %d hops\n", plan.Traffic(), plan.MaxDistance())
		if len(plan.Paths) > 0 {
			drawStar(multicastnet.Star{Source: k.Source, Paths: plan.Paths})
		} else {
			drawPattern(chans)
		}
		fmt.Printf("multi-unicast baseline: %d channels\n", sys.MultiUnicastTraffic(k))
		return
	}

	switch *algoFlag {
	case "sorted-mp":
		p, err := sys.SortedMP(k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("path:    %v\n", p.Nodes)
		fmt.Printf("traffic: %d channels\n", p.Traffic())
	case "sorted-mc":
		c, err := sys.SortedMC(k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle:   %v (closes back to %d)\n", c.Nodes, c.Nodes[0])
		fmt.Printf("traffic: %d channels\n", c.Traffic())
	case "greedy-st":
		r, err := sys.GreedyST(k)
		if err != nil {
			fatal(err)
		}
		printTreePattern(r)
		if *draw && isMesh {
			fmt.Print(render.MeshEdges(mesh, k, r.Edges))
		}
	case "x-first":
		r, err := sys.XFirstMT(k)
		if err != nil {
			fatal(err)
		}
		printTreePattern(r)
		if *draw && isMesh {
			fmt.Print(render.MeshEdges(mesh, k, r.Edges))
		}
	case "divided-greedy":
		r, err := sys.DividedGreedyMT(k)
		if err != nil {
			fatal(err)
		}
		printTreePattern(r)
		if *draw && isMesh {
			fmt.Print(render.MeshEdges(mesh, k, r.Edges))
		}
	case "len":
		r, err := sys.LEN(k)
		if err != nil {
			fatal(err)
		}
		printTreePattern(r)
	case "dual-path":
		s := sys.DualPath(k)
		printStar(s)
		drawStar(s)
	case "multi-path":
		s, err := sys.MultiPath(k)
		if err != nil {
			fatal(err)
		}
		printStar(s)
		drawStar(s)
	case "fixed-path":
		s := sys.FixedPath(k)
		printStar(s)
		drawStar(s)
	case "tree":
		trees, err := sys.DoubleChannelXFirst(k)
		if err != nil {
			fatal(err)
		}
		total := 0
		var chans []multicastnet.Channel
		for i, tr := range trees {
			fmt.Printf("subnetwork %d: %d channels, destinations %v\n", i, tr.Traffic(), tr.Dests)
			total += tr.Traffic()
			chans = append(chans, tr.Edges...)
		}
		fmt.Printf("traffic: %d channels\n", total)
		drawPattern(chans)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algoFlag))
	}
	fmt.Printf("multi-unicast baseline: %d channels\n", sys.MultiUnicastTraffic(k))
}

func parseSystem(spec string) (*multicastnet.System, error) {
	switch {
	case strings.HasPrefix(spec, "mesh:"):
		dims := strings.Split(strings.TrimPrefix(spec, "mesh:"), "x")
		if len(dims) != 2 {
			return nil, fmt.Errorf("mesh spec must be mesh:WxH")
		}
		w, err1 := strconv.Atoi(dims[0])
		h, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad mesh dimensions %q", spec)
		}
		return multicastnet.NewMeshSystem(w, h)
	case strings.HasPrefix(spec, "cube:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "cube:"))
		if err != nil {
			return nil, fmt.Errorf("bad cube dimension %q", spec)
		}
		return multicastnet.NewCubeSystem(n)
	default:
		return nil, fmt.Errorf("topology must be mesh:WxH or cube:N")
	}
}

func parseDests(s string) ([]multicastnet.NodeID, error) {
	if s == "" {
		return nil, fmt.Errorf("-dests is required")
	}
	var out []multicastnet.NodeID
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad destination %q", part)
		}
		out = append(out, multicastnet.NodeID(v))
	}
	return out, nil
}

func printStar(s multicastnet.Star) {
	for i, p := range s.Paths {
		fmt.Printf("path %d:  %v -> dests %v\n", i, p.Nodes, p.Dests)
	}
	fmt.Printf("traffic: %d channels, max distance %d hops\n", s.Traffic(), s.MaxDistance())
}

func printTreePattern(r *multicastnet.STResult) {
	fmt.Printf("traffic: %d channels (tree pattern: %v)\n", r.Links, r.IsTreePattern())
	fmt.Printf("deliveries:\n")
	for d, depth := range r.Delivered {
		fmt.Printf("  node %d at %d hops\n", d, depth)
	}
}

func printSchemes() {
	for _, info := range routing.Schemes() {
		safety := "deadlock-free"
		if !info.DeadlockFree {
			safety = "NOT deadlock-free"
		}
		fmt.Printf("%-18s %-18s %s\n", info.Name, safety, info.Description)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcroute:", err)
	os.Exit(1)
}
