package main

import "testing"

func TestParseSystem(t *testing.T) {
	good := []string{"mesh:8x8", "mesh:4x3", "cube:5"}
	for _, spec := range good {
		if _, err := parseSystem(spec); err != nil {
			t.Errorf("%q rejected: %v", spec, err)
		}
	}
	bad := []string{"", "mesh:8", "mesh:axb", "cube:x", "torus:4", "mesh:8x8x8"}
	for _, spec := range bad {
		if _, err := parseSystem(spec); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
}

func TestParseDests(t *testing.T) {
	d, err := parseDests("1, 2,3")
	if err != nil || len(d) != 3 || d[0] != 1 || d[2] != 3 {
		t.Errorf("parseDests: %v %v", d, err)
	}
	for _, bad := range []string{"", "1,,2", "a"} {
		if _, err := parseDests(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
