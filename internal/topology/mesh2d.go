package topology

import "fmt"

// Mesh2D is the non-wraparound two-dimensional mesh of Definition 4.1: a
// rectangular grid of Width columns by Height rows. Node (x, y) has
// neighbors (x±1, y) and (x, y±1) when they exist. The node with
// coordinates (x, y) has NodeID y*Width + x, matching the integer
// addressing used throughout Chapter 5 (e.g. the 4x4 mesh of Fig. 5.7).
type Mesh2D struct {
	Width  int // number of columns (x ranges over 0..Width-1)
	Height int // number of rows (y ranges over 0..Height-1)
}

// NewMesh2D returns a Width x Height mesh. It panics when either dimension
// is not positive.
func NewMesh2D(width, height int) *Mesh2D {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh dimensions %dx%d", width, height))
	}
	return &Mesh2D{Width: width, Height: height}
}

// Name implements Topology.
func (m *Mesh2D) Name() string { return fmt.Sprintf("%dx%d mesh", m.Width, m.Height) }

// Nodes implements Topology.
func (m *Mesh2D) Nodes() int { return m.Width * m.Height }

// MaxDegree implements Topology.
func (m *Mesh2D) MaxDegree() int {
	d := 0
	if m.Width > 1 {
		d += 2
	}
	if m.Height > 1 {
		d += 2
	}
	if d == 0 {
		d = 1
	}
	return d
}

// ID converts (x, y) coordinates to a NodeID.
func (m *Mesh2D) ID(x, y int) NodeID {
	if x < 0 || x >= m.Width || y < 0 || y >= m.Height {
		panic(fmt.Sprintf("topology: coordinates (%d,%d) out of range for %s", x, y, m.Name()))
	}
	return NodeID(y*m.Width + x)
}

// XY converts a NodeID to (x, y) coordinates.
func (m *Mesh2D) XY(v NodeID) (x, y int) {
	checkNode(v, m.Nodes(), m)
	return int(v) % m.Width, int(v) / m.Width
}

// Neighbors implements Topology.
func (m *Mesh2D) Neighbors(v NodeID, buf []NodeID) []NodeID {
	x, y := m.XY(v)
	if x > 0 {
		buf = append(buf, v-1)
	}
	if x < m.Width-1 {
		buf = append(buf, v+1)
	}
	if y > 0 {
		buf = append(buf, v-NodeID(m.Width))
	}
	if y < m.Height-1 {
		buf = append(buf, v+NodeID(m.Width))
	}
	return buf
}

// Adjacent implements Topology.
func (m *Mesh2D) Adjacent(u, v NodeID) bool {
	ux, uy := m.XY(u)
	vx, vy := m.XY(v)
	return abs(ux-vx)+abs(uy-vy) == 1
}

// Distance implements Topology: the Manhattan distance.
func (m *Mesh2D) Distance(u, v NodeID) int {
	ux, uy := m.XY(u)
	vx, vy := m.XY(v)
	return abs(ux-vx) + abs(uy-vy)
}

// Diameter implements Topology.
func (m *Mesh2D) Diameter() int { return m.Width - 1 + m.Height - 1 }

// NearestOnShortestPaths implements ShortestRegion by clamping u's
// coordinates into the rectangle spanned by s and t (the formula of
// Section 5.2).
func (m *Mesh2D) NearestOnShortestPaths(s, t, u NodeID) NodeID {
	sx, sy := m.XY(s)
	tx, ty := m.XY(t)
	ux, uy := m.XY(u)
	x1, x2 := min(sx, tx), max(sx, tx)
	y1, y2 := min(sy, ty), max(sy, ty)
	vx := clamp(ux, x1, x2)
	vy := clamp(uy, y1, y2)
	return m.ID(vx, vy)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
