// Command mcfault runs the fault-injection study: delivery ratio and
// operation latency vs link fault rate on an 8x8 mesh, one series per
// deadlock-free multicast scheme. Every operation executes the full
// degraded-mode stack — masked routing with fallback and escape-segment
// repair, mid-flight fault activation killing in-flight worms, and
// service-level retry with backoff.
//
// Usage:
//
//	mcfault -out results            # write fault_delivery/fault_latency (txt+csv)
//	mcfault -quick                  # reduced trial counts
//	mcfault -csv                    # emit CSV on stdout instead of files
//	mcfault -simcheck               # run wormsim invariant checks throughout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"multicastnet/internal/experiments"
	"multicastnet/internal/profiling"
	"multicastnet/internal/stats"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced trial counts and rate sweep")
	seed := flag.Uint64("seed", 1990, "study seed")
	csv := flag.Bool("csv", false, "emit CSV on stdout instead of writing files")
	parallel := flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = sequential)")
	shards := flag.Int("shards", 0, "step each attempt with the sharded engine (0/1 = serial; figures are byte-identical)")
	simcheck := flag.Bool("simcheck", false, "run wormsim invariant checks inside every attempt")
	prof := profiling.AddFlags()
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	opts := experiments.FaultDefaults()
	if *quick {
		opts = experiments.FaultQuick()
	}
	opts.Seed = *seed
	opts.Parallel = *parallel
	opts.Shards = *shards
	opts.Check = *simcheck

	delivery, latency, cacheStats := experiments.FaultFiguresStats(opts)

	if *csv {
		for _, fig := range []*stats.Figure{delivery, latency} {
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, fig := range []*stats.Figure{delivery, latency} {
		base := strings.ReplaceAll(strings.ToLower(fig.ID), " ", "_")
		writeFigure(*out, base+".txt", fig, false)
		writeFigure(*out, base+".csv", fig, true)
		fmt.Printf("wrote %s\n", base)
	}
	printCacheStats(cacheStats)
}

// printCacheStats reports the retry path's plan-cache accounting: hits
// are attempts served by a surviving cached plan, invalidations are
// entries evicted by fault deltas (targeted: only plans touching dead
// channels). The sums are deterministic for any -parallel/-shards.
func printCacheStats(cs []experiments.SchemeCacheStats) {
	fmt.Printf("\nplan cache (summed over all fault points):\n")
	fmt.Printf("%-12s %8s %8s %10s %13s %9s\n",
		"scheme", "hits", "misses", "evictions", "invalidations", "hit_rate")
	for _, c := range cs {
		fmt.Printf("%-12s %8d %8d %10d %13d %9.3f\n",
			c.Scheme, c.Stats.Hits, c.Stats.Misses, c.Stats.Evictions,
			c.Stats.Invalidations, c.Stats.HitRate())
	}
}

func writeFigure(dir, name string, fig *stats.Figure, csv bool) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if csv {
		err = fig.WriteCSV(f)
	} else {
		err = fig.WriteTable(f)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfault:", err)
	os.Exit(1)
}
