package heuristics

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

var updateHeuristicsBench = flag.Bool("update-heuristics-bench", false,
	"rewrite ../../BENCH_heuristics.json from this machine's measurements")

type kernelBaseline struct {
	BeforeNsPerOp     float64 `json:"before_ns_per_op"`
	BeforeAllocsPerOp int64   `json:"before_allocs_per_op"`
	AfterNsPerOp      float64 `json:"after_ns_per_op"`
	AfterAllocsPerOp  int64   `json:"after_allocs_per_op"`
	Speedup           float64 `json:"speedup"`
}

type heuristicsBaseline struct {
	Gomaxprocs       int                       `json:"gomaxprocs"`
	WorkloadDests    int                       `json:"workload_dests"`
	WorkloadSetCount int                       `json:"workload_set_count"`
	Kernels          map[string]kernelBaseline `json:"kernels"`
}

// TestWriteHeuristicsBenchBaseline regenerates the committed
// BENCH_heuristics.json when run with -update-heuristics-bench (see the
// Makefile's bench-heuristics-baseline target). The "before" column
// reruns the pre-workspace reference implementations kept in
// golden_ref_test.go, so before and after always come from the same
// machine. Without the flag it checks that the committed baseline parses
// and that the zero-allocation claim it records still holds.
func TestWriteHeuristicsBenchBaseline(t *testing.T) {
	const path = "../../BENCH_heuristics.json"
	if !*updateHeuristicsBench {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing baseline (run make bench-heuristics-baseline): %v", err)
		}
		var b heuristicsBaseline
		if err := json.Unmarshal(data, &b); err != nil {
			t.Fatalf("baseline does not parse: %v", err)
		}
		if len(b.Kernels) == 0 {
			t.Fatal("baseline records no kernels")
		}
		for name, k := range b.Kernels {
			if k.BeforeNsPerOp <= 0 || k.AfterNsPerOp <= 0 {
				t.Errorf("%s: non-positive timings: %+v", name, k)
			}
			if k.AfterAllocsPerOp != 0 {
				t.Errorf("%s: committed baseline records %d allocs/op; workspace kernels must be zero-alloc",
					name, k.AfterAllocsPerOp)
			}
		}
		return
	}

	m := topology.NewMesh2D(16, 16)
	h := topology.NewHypercube(10)
	mc, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := labeling.CubeHamiltonCycle(h)
	if err != nil {
		t.Fatal(err)
	}
	meshSets := benchWorkload(t, m, 10, 64)
	cubeSets := benchWorkload(t, h, 10, 64)
	g := TopologyGraph(m)
	rng := stats.NewRand(1990)
	terms := make([][]int, 64)
	for i := range terms {
		terms[i] = rng.Sample(m.Nodes(), 11)
	}

	// Each pair below drives the reference and the workspace kernel over
	// the identical workload; the workspace side warms up before timing.
	pairs := map[string][2]func(b *testing.B){
		"greedy_st_mesh16x16": {
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					refGreedyST(m, meshSets[i%len(meshSets)])
				}
			},
			func(b *testing.B) {
				ws := NewWorkspace()
				ws.GreedyST(m, meshSets[0])
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ws.GreedyST(m, meshSets[i%len(meshSets)])
				}
			},
		},
		"greedy_st_cube10": {
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					refGreedyST(h, cubeSets[i%len(cubeSets)])
				}
			},
			func(b *testing.B) {
				ws := NewWorkspace()
				ws.GreedyST(h, cubeSets[0])
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ws.GreedyST(h, cubeSets[i%len(cubeSets)])
				}
			},
		},
		"greedy_st_carried_mesh16x16": {
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					refGreedySTCarried(m, meshSets[i%len(meshSets)])
				}
			},
			func(b *testing.B) {
				ws := NewWorkspace()
				ws.GreedySTCarried(m, meshSets[0])
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ws.GreedySTCarried(m, meshSets[i%len(meshSets)])
				}
			},
		},
		"kmb_mesh16x16": {
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					refKMB(g, terms[i%len(terms)])
				}
			},
			func(b *testing.B) {
				ws := NewWorkspace()
				ws.KMB(g, terms[0])
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ws.KMB(g, terms[i%len(terms)])
				}
			},
		},
		"sorted_mp_mesh16x16": {
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					refSortedMP(m, mc, meshSets[i%len(meshSets)])
				}
			},
			func(b *testing.B) {
				ws := NewWorkspace()
				ws.SortedMP(m, mc, meshSets[0])
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ws.SortedMP(m, mc, meshSets[i%len(meshSets)])
				}
			},
		},
		"sorted_mp_cube10": {
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					refSortedMP(h, hc, cubeSets[i%len(cubeSets)])
				}
			},
			func(b *testing.B) {
				ws := NewWorkspace()
				ws.SortedMP(h, hc, cubeSets[0])
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ws.SortedMP(h, hc, cubeSets[i%len(cubeSets)])
				}
			},
		},
	}

	out := heuristicsBaseline{
		Gomaxprocs:       runtime.GOMAXPROCS(0),
		WorkloadDests:    10,
		WorkloadSetCount: 64,
		Kernels:          make(map[string]kernelBaseline, len(pairs)),
	}
	for name, p := range pairs {
		before := testing.Benchmark(p[0])
		after := testing.Benchmark(p[1])
		out.Kernels[name] = kernelBaseline{
			BeforeNsPerOp:     float64(before.NsPerOp()),
			BeforeAllocsPerOp: before.AllocsPerOp(),
			AfterNsPerOp:      float64(after.NsPerOp()),
			AfterAllocsPerOp:  after.AllocsPerOp(),
			Speedup:           float64(before.NsPerOp()) / float64(after.NsPerOp()),
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
