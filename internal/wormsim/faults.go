package wormsim

import (
	"sort"

	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
)

// Mid-run fault injection. A failed channel is hardware that stops
// moving flits: the worm holding it loses its pipeline (wormhole flow
// control cannot back flits out of acquired channels, Section 2.3.4), so
// the whole message is dropped and every channel it held is flushed and
// released. Worms that later request a failed channel are dropped at the
// point of request. Lost destination deliveries are reported through
// OnLost so drivers can account delivery ratios and trigger retries.

// OnLost registers a callback invoked once per destination that a
// fault-killed worm will never deliver, with the destination count of
// the owning multicast.
func (n *Network) OnLost(fn func(dest topology.NodeID, mcastSize int)) { n.onLost = fn }

// KilledWorms returns the number of worms killed by channel failures so
// far.
func (n *Network) KilledWorms() int { return n.killed }

// FailWhere fails every channel matching pred — both channels already
// interned and channels interned later (routes injected after the fault
// that still reference dead hardware lose their worms on contact). Worms
// currently holding or queued on a failing channel are killed
// immediately, in ascending id order. It returns the number of worms
// killed.
func (n *Network) FailWhere(pred func(c dfr.Channel) bool) int {
	n.deadPreds = append(n.deadPreds, pred)
	var victims []*worm
	seen := make(map[*worm]bool)
	collect := func(w *worm) {
		if w != nil && !w.done && !seen[w] {
			seen[w] = true
			victims = append(victims, w)
		}
	}
	for c, id := range n.chanIDs {
		st := &n.chans[id]
		if st.dead || !pred(c) {
			continue
		}
		st.dead = true
		collect(st.owner)
		for _, q := range st.waiters() {
			collect(q)
		}
	}
	// Kill in ascending id order: chanIDs is a map, so the collection
	// order above is not deterministic, but the kill order — and with it
	// the OnLost callback order and all downstream wakes — must be.
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, w := range victims {
		n.killWorm(w)
	}
	return len(victims)
}

// killWorm drops an in-flight worm: it leaves every wait queue, releases
// every channel it holds (waking their FIFO heads), reports its
// undelivered destinations through OnLost, and retires. The multicast is
// marked lossy so OnComplete never fires for it.
func (n *Network) killWorm(w *worm) {
	if w.done {
		return
	}
	n.killed++
	if w.kind == pathWorm {
		if w.queuedAt >= 0 && w.queuedAt == w.headIdx && w.headIdx < len(w.chans) {
			n.dequeue(w.chans[w.headIdx], w)
		}
		for i := w.released; i < w.headIdx; i++ {
			n.release(w.chans[i], w)
		}
	} else {
		if w.headIdx < len(w.levels) {
			l := &w.levels[w.headIdx]
			for i, id := range l.channels {
				switch {
				case l.taken[i]:
					n.release(id, w)
				case l.queued:
					n.dequeue(id, w)
				}
			}
		}
		for li := w.released; li < w.headIdx && li < len(w.levels); li++ {
			for _, id := range w.levels[li].channels {
				n.release(id, w)
			}
		}
	}
	for i := range w.deliveries {
		d := &w.deliveries[i]
		if d.done {
			continue
		}
		d.done = true
		w.mcast.remaining--
		w.mcast.lost++
		if n.onLost != nil {
			n.onLost(d.dest, w.mcast.size)
		}
	}
	w.undeliv = 0
	n.retire(w)
}

// dequeue removes w from one channel's wait queue; if the channel is
// free and a new head emerges, that head is woken (it may have been
// waiting behind w).
func (n *Network) dequeue(id int32, w *worm) {
	st := &n.chans[id]
	live := st.waiters()
	for i, x := range live {
		if x == w {
			st.queue = append(st.queue[:st.qhead+i], live[i+1:]...)
			break
		}
	}
	if st.qhead == len(st.queue) {
		st.queue = st.queue[:0]
		st.qhead = 0
	}
	if !st.dead && st.owner == nil {
		if head := st.front(); head != nil {
			n.wake(head)
		}
	}
}
