package heuristics

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// TestFig57SortedMPExample reproduces Fig. 5.7: on the 4x4 mesh with
// source 9 and K = {0, 1, 6, 12}, the sorted MP algorithm yields the
// multicast path (9, 13, 12, 8, 4, 0, 1, 2, 6).
func TestFig57SortedMPExample(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	k := core.MustMulticastSet(m, 9, []topology.NodeID{0, 1, 6, 12})
	sorted := SortedMPPrepare(c, k)
	wantSorted := []topology.NodeID{12, 0, 1, 6}
	for i, v := range wantSorted {
		if sorted[i] != v {
			t.Fatalf("sorted dests %v, want %v", sorted, wantSorted)
		}
	}
	p := SortedMP(m, c, k)
	want := []topology.NodeID{9, 13, 12, 8, 4, 0, 1, 2, 6}
	if len(p.Nodes) != len(want) {
		t.Fatalf("path %v, want %v", p.Nodes, want)
	}
	for i := range want {
		if p.Nodes[i] != want[i] {
			t.Fatalf("path %v, want %v", p.Nodes, want)
		}
	}
	if err := p.Validate(m, k, true); err != nil {
		t.Error(err)
	}
}

// TestFig58SortedMPCubeExample reproduces the 4-cube example of Fig. 5.8
// (source 0011, Table 5.4 keys): the sorted destination list is
// (0111, 0100, 1100, 1111, 1010) and the route follows the keys.
func TestFig58SortedMPCubeExample(t *testing.T) {
	h := topology.NewHypercube(4)
	c, err := labeling.CubeHamiltonCycle(h)
	if err != nil {
		t.Fatal(err)
	}
	k := core.MustMulticastSet(h, 0b0011,
		[]topology.NodeID{0b0100, 0b0111, 0b1100, 0b1010, 0b1111})
	sorted := SortedMPPrepare(c, k)
	wantSorted := []topology.NodeID{0b0111, 0b0100, 0b1100, 0b1111, 0b1010}
	for i, v := range wantSorted {
		if sorted[i] != v {
			t.Fatalf("sorted dests %v, want %v", sorted, wantSorted)
		}
	}
	p := SortedMP(h, c, k)
	want := []topology.NodeID{0b0011, 0b0111, 0b0101, 0b0100, 0b1100, 0b1101, 0b1111, 0b1110, 0b1010}
	if len(p.Nodes) != len(want) {
		t.Fatalf("path length %d, want %d (%v)", len(p.Nodes), len(want), p.Nodes)
	}
	for i := range want {
		if p.Nodes[i] != want[i] {
			t.Fatalf("path %v, want %v", p.Nodes, want)
		}
	}
	if err := p.Validate(h, k, true); err != nil {
		t.Error(err)
	}
}

// TestSortedMPProperty checks Theorem 5.1 on random multicast sets: the
// sorted MP route is a simple path covering every destination, with
// strictly increasing keys.
func TestSortedMPProperty(t *testing.T) {
	rng := stats.NewRand(7)
	topos := []struct {
		t topology.Topology
		c func() (*labeling.HamiltonCycle, error)
	}{
		{topology.NewMesh2D(8, 8), func() (*labeling.HamiltonCycle, error) {
			return labeling.MeshHamiltonCycle(topology.NewMesh2D(8, 8))
		}},
		{topology.NewHypercube(6), func() (*labeling.HamiltonCycle, error) {
			return labeling.CubeHamiltonCycle(topology.NewHypercube(6))
		}},
	}
	for _, tc := range topos {
		c, err := tc.c()
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			src := topology.NodeID(rng.Intn(tc.t.Nodes()))
			kcount := 1 + rng.Intn(12)
			raw := rng.Sample(tc.t.Nodes(), kcount, int(src))
			dests := make([]topology.NodeID, kcount)
			for i, v := range raw {
				dests[i] = topology.NodeID(v)
			}
			k := core.MustMulticastSet(tc.t, src, dests)
			p := SortedMP(tc.t, c, k)
			if err := p.Validate(tc.t, k, true); err != nil {
				t.Fatalf("%s trial %d: %v", tc.t.Name(), trial, err)
			}
			for i := 1; i < len(p.Nodes); i++ {
				if c.SortKey(src, p.Nodes[i]) <= c.SortKey(src, p.Nodes[i-1]) {
					t.Fatalf("%s: keys not increasing along %v", tc.t.Name(), p.Nodes)
				}
			}
			// The path can never exceed the Hamilton cycle length.
			if p.Traffic() >= tc.t.Nodes() {
				t.Fatalf("%s: path longer than Hamilton cycle", tc.t.Name())
			}
		}
	}
}

// TestSortedMCProperty checks the MC variant: the route closes back at the
// source and is a valid multicast cycle.
func TestSortedMCProperty(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(13)
	for trial := 0; trial < 200; trial++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		kcount := 1 + rng.Intn(10)
		raw := rng.Sample(m.Nodes(), kcount, int(src))
		dests := make([]topology.NodeID, kcount)
		for i, v := range raw {
			dests[i] = topology.NodeID(v)
		}
		k := core.MustMulticastSet(m, src, dests)
		cyc := SortedMC(m, c, k)
		if err := cyc.Validate(m, k, true); err != nil {
			t.Fatalf("trial %d: %v (cycle %v)", trial, err, cyc.Nodes)
		}
		// The cycle contains the MP and costs at least one more link.
		p := SortedMP(m, c, k)
		if cyc.Traffic() <= p.Traffic() {
			t.Fatalf("cycle traffic %d not greater than path traffic %d", cyc.Traffic(), p.Traffic())
		}
	}
}

// TestFig59GreedySTMeshExample reproduces the 8x8 mesh example of
// Section 5.4 / Fig. 5.9: source [2,7], five destinations, a 14-link
// Steiner tree whose first sublist is rooted at replicate node [2,5].
func TestFig59GreedySTMeshExample(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	k := core.MustMulticastSet(m, id(2, 7),
		[]topology.NodeID{id(0, 5), id(2, 3), id(4, 1), id(6, 3), id(7, 4)})

	// The source's replicate computation must identify [2,5] as the
	// single son carrying all five destinations.
	subs := greedySTSplit(m, k.Source, GreedySTPrepare(m, k))
	if len(subs) != 1 {
		t.Fatalf("source has %d sons, want 1 (%v)", len(subs), subs)
	}
	if subs[0][0] != id(2, 5) {
		t.Fatalf("son is %d, want node [2,5]=%d", subs[0][0], id(2, 5))
	}
	if len(subs[0]) != 6 {
		t.Fatalf("sublist %v should carry all 5 destinations", subs[0])
	}

	res := GreedyST(m, k)
	if err := res.Validate(m, k); err != nil {
		t.Fatal(err)
	}
	if !res.IsTreePattern() {
		t.Error("greedy ST pattern is not a tree")
	}
	if res.Links != 14 {
		t.Errorf("traffic %d, want 14 (Fig. 5.9 pattern)", res.Links)
	}
}

// TestFig510GreedySTCubeExample runs the 6-cube example of Section 5.4 /
// Fig. 5.10 and checks the documented structure: the source is itself a
// replicate node whose local tree hangs everything under 000101.
func TestFig510GreedySTCubeExample(t *testing.T) {
	h := topology.NewHypercube(6)
	src := topology.NodeID(0b000110)
	dests := []topology.NodeID{0b010101, 0b000001, 0b001101, 0b101001, 0b110001}
	k := core.MustMulticastSet(h, src, dests)
	res := GreedyST(h, k)
	if err := res.Validate(h, k); err != nil {
		t.Fatal(err)
	}
	if !res.IsTreePattern() {
		t.Error("greedy ST pattern is not a tree")
	}
	// The tree must be no worse than multi-unicast and cover 5 dests at
	// distances 3,3,3,5,5.
	if res.Links >= MultiUnicastTraffic(h, k) {
		t.Errorf("ST traffic %d not better than multi-unicast %d",
			res.Links, MultiUnicastTraffic(h, k))
	}
}

// TestGreedySTProperty checks the greedy ST algorithm on random sets:
// valid delivery, tree pattern, and traffic never worse than
// multi-unicast.
func TestGreedySTProperty(t *testing.T) {
	rng := stats.NewRand(21)
	topos := []RegionTopology{topology.NewMesh2D(8, 8), topology.NewHypercube(6)}
	for _, topo := range topos {
		for trial := 0; trial < 200; trial++ {
			src := topology.NodeID(rng.Intn(topo.Nodes()))
			kcount := 1 + rng.Intn(15)
			raw := rng.Sample(topo.Nodes(), kcount, int(src))
			dests := make([]topology.NodeID, kcount)
			for i, v := range raw {
				dests[i] = topology.NodeID(v)
			}
			k := core.MustMulticastSet(topo, src, dests)
			res := GreedyST(topo, k)
			if err := res.Validate(topo, k); err != nil {
				t.Fatalf("%s trial %d: %v", topo.Name(), trial, err)
			}
			if res.Links > MultiUnicastTraffic(topo, k) {
				t.Errorf("%s trial %d: ST traffic %d worse than multi-unicast %d",
					topo.Name(), trial, res.Links, MultiUnicastTraffic(topo, k))
			}
		}
	}
}

// TestGreedySTCarriedMatchesDistributed compares the two implementations
// of Section 5.2 — recompute-at-replicate-nodes vs complete-tree-carried
// — on random workloads: both deliver every destination, and their
// traffic agrees closely (the paper states the generated traffic is the
// same; ties in the greedy insertion can differ, so we allow a small
// per-instance divergence and require near-identical totals).
func TestGreedySTCarriedMatchesDistributed(t *testing.T) {
	rng := stats.NewRand(71)
	topos := []RegionTopology{topology.NewMesh2D(8, 8), topology.NewHypercube(6)}
	for _, topo := range topos {
		var distTotal, carryTotal int
		for trial := 0; trial < 150; trial++ {
			src := topology.NodeID(rng.Intn(topo.Nodes()))
			kcount := 1 + rng.Intn(12)
			raw := rng.Sample(topo.Nodes(), kcount, int(src))
			dests := make([]topology.NodeID, kcount)
			for i, v := range raw {
				dests[i] = topology.NodeID(v)
			}
			k := core.MustMulticastSet(topo, src, dests)
			carried := GreedySTCarried(topo, k)
			if err := carried.Validate(topo, k); err != nil {
				t.Fatalf("%s trial %d: %v", topo.Name(), trial, err)
			}
			distTotal += GreedyST(topo, k).Links
			carryTotal += carried.Links
		}
		diff := distTotal - carryTotal
		if diff < 0 {
			diff = -diff
		}
		if diff*20 > distTotal {
			t.Errorf("%s: implementations diverge: distributed %d vs carried %d",
				topo.Name(), distTotal, carryTotal)
		}
	}
}

// TestFig511XFirstExample reproduces the 6x6 mesh example of Section 5.4:
// X-first routing from (3,2) to the ten listed destinations generates
// exactly 24 units of traffic (Fig. 5.11).
func TestFig511XFirstExample(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	k := core.MustMulticastSet(m, id(3, 2), []topology.NodeID{
		id(2, 0), id(3, 0), id(4, 0), id(1, 1), id(5, 1),
		id(0, 2), id(1, 3), id(2, 5), id(3, 5), id(5, 5),
	})
	res := XFirstMT(m, k)
	if err := res.Validate(m, k); err != nil {
		t.Fatal(err)
	}
	// The dissertation text says 24, but an exact recount of the X-first
	// pattern for this example yields 23 channels (+Y stem 3, -Y stem 2,
	// +X branch 8, -X branch 10); we pin the recounted value and note the
	// one-unit discrepancy in EXPERIMENTS.md.
	if res.Links != 23 {
		t.Errorf("X-first traffic %d, want 23", res.Links)
	}
	// MT model: every destination at graph distance.
	for _, d := range k.Dests {
		if res.Delivered[d] != m.Distance(k.Source, d) {
			t.Errorf("dest %d delivered at depth %d, distance %d",
				d, res.Delivered[d], m.Distance(k.Source, d))
		}
	}
}

// TestFig512DividedGreedyExample runs the divided greedy algorithm on the
// same example (Fig. 5.12): still a shortest-path multicast tree, with
// less traffic than X-first.
func TestFig512DividedGreedyExample(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	k := core.MustMulticastSet(m, id(3, 2), []topology.NodeID{
		id(2, 0), id(3, 0), id(4, 0), id(1, 1), id(5, 1),
		id(0, 2), id(1, 3), id(2, 5), id(3, 5), id(5, 5),
	})
	res := DividedGreedyMT(m, k)
	if err := res.Validate(m, k); err != nil {
		t.Fatal(err)
	}
	for _, d := range k.Dests {
		if res.Delivered[d] != m.Distance(k.Source, d) {
			t.Errorf("dest %d delivered at depth %d, distance %d",
				d, res.Delivered[d], m.Distance(k.Source, d))
		}
	}
	xf := XFirstMT(m, k)
	if res.Links >= xf.Links {
		t.Errorf("divided greedy traffic %d not better than X-first %d", res.Links, xf.Links)
	}
}

// TestMTShortestProperty checks Theorems 5.3/5.4 on random sets: both MT
// algorithms deliver every destination along a shortest path.
func TestMTShortestProperty(t *testing.T) {
	m := topology.NewMesh2D(16, 16)
	rng := stats.NewRand(31)
	var xfTotal, dgTotal int
	for trial := 0; trial < 300; trial++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		kcount := 1 + rng.Intn(20)
		raw := rng.Sample(m.Nodes(), kcount, int(src))
		dests := make([]topology.NodeID, kcount)
		for i, v := range raw {
			dests[i] = topology.NodeID(v)
		}
		k := core.MustMulticastSet(m, src, dests)
		for _, algo := range []func(*topology.Mesh2D, core.MulticastSet) *STResult{XFirstMT, DividedGreedyMT} {
			res := algo(m, k)
			if err := res.Validate(m, k); err != nil {
				t.Fatal(err)
			}
			for _, d := range k.Dests {
				if res.Delivered[d] != m.Distance(src, d) {
					t.Fatalf("trial %d: destination %d not on shortest path", trial, d)
				}
			}
		}
		xfTotal += XFirstMT(m, k).Links
		dgTotal += DividedGreedyMT(m, k).Links
	}
	// Fig. 7.5: divided greedy generates less traffic on average.
	if dgTotal >= xfTotal {
		t.Errorf("divided greedy average traffic %d not below X-first %d", dgTotal, xfTotal)
	}
}

// TestLENProperty checks the LEN baseline: shortest-path delivery, tree
// pattern, traffic at most multi-unicast.
func TestLENProperty(t *testing.T) {
	h := topology.NewHypercube(6)
	rng := stats.NewRand(41)
	for trial := 0; trial < 200; trial++ {
		src := topology.NodeID(rng.Intn(h.Nodes()))
		kcount := 1 + rng.Intn(15)
		raw := rng.Sample(h.Nodes(), kcount, int(src))
		dests := make([]topology.NodeID, kcount)
		for i, v := range raw {
			dests[i] = topology.NodeID(v)
		}
		k := core.MustMulticastSet(h, src, dests)
		res := LEN(h, k)
		if err := res.Validate(h, k); err != nil {
			t.Fatal(err)
		}
		if !res.IsTreePattern() {
			t.Error("LEN pattern is not a tree")
		}
		for _, d := range k.Dests {
			if res.Delivered[d] != h.Distance(src, d) {
				t.Fatalf("LEN destination %d not on shortest path", d)
			}
		}
		if res.Links > MultiUnicastTraffic(h, k) {
			t.Errorf("LEN traffic %d worse than multi-unicast %d", res.Links, MultiUnicastTraffic(h, k))
		}
	}
}

// TestKMBSteiner checks the KMB baseline on meshes: the result is a tree
// spanning the terminals.
func TestKMBSteiner(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	g := TopologyGraph(m)
	rng := stats.NewRand(51)
	for trial := 0; trial < 100; trial++ {
		raw := rng.Sample(m.Nodes(), 2+rng.Intn(8))
		edges := KMB(g, raw)
		// Build adjacency and check connectivity over terminals.
		adj := make(map[int][]int)
		for _, e := range edges {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		visited := map[int]bool{raw[0]: true}
		stack := []int{raw[0]}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		for _, term := range raw {
			if !visited[term] {
				t.Fatalf("trial %d: terminal %d not connected by KMB tree", trial, term)
			}
		}
		// Tree: edges = nodes - 1.
		if len(edges) != len(visited)-1 {
			t.Fatalf("trial %d: %d edges over %d nodes is not a tree", trial, len(edges), len(visited))
		}
	}
}

func TestKMBTrivialCases(t *testing.T) {
	g := TopologyGraph(topology.NewMesh2D(3, 3))
	if KMB(g, nil) != nil {
		t.Error("empty terminal set should give nil")
	}
	if e := KMB(g, []int{4}); len(e) != 0 {
		t.Error("single terminal should give empty tree")
	}
}

func TestBaselineTraffic(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	k := core.MustMulticastSet(m, 0, []topology.NodeID{3, 12, 15})
	if got := MultiUnicastTraffic(m, k); got != 3+3+6 {
		t.Errorf("multi-unicast traffic %d, want 12", got)
	}
	if got := BroadcastTraffic(m); got != 15 {
		t.Errorf("broadcast traffic %d, want 15", got)
	}
}

// TestGreedySTBeatsLENOnAverage pins the Fig. 7.4 comparison result: over
// random workloads on a hypercube, greedy ST generates less traffic than
// LEN on average.
func TestGreedySTBeatsLENOnAverage(t *testing.T) {
	h := topology.NewHypercube(8)
	rng := stats.NewRand(61)
	var st, lenT int
	for trial := 0; trial < 200; trial++ {
		src := topology.NodeID(rng.Intn(h.Nodes()))
		raw := rng.Sample(h.Nodes(), 20, int(src))
		dests := make([]topology.NodeID, len(raw))
		for i, v := range raw {
			dests[i] = topology.NodeID(v)
		}
		k := core.MustMulticastSet(h, src, dests)
		st += GreedyST(h, k).Links
		lenT += LEN(h, k).Links
	}
	if st >= lenT {
		t.Errorf("greedy ST average traffic %d not below LEN %d", st, lenT)
	}
}

// TestXYZFirstMT3D checks the 3D extension of the X-first tree: valid
// delivery at shortest distance on random workloads, and traffic no worse
// than multi-unicast.
func TestXYZFirstMT3D(t *testing.T) {
	m := topology.NewMesh3D(4, 4, 4)
	rng := stats.NewRand(73)
	for trial := 0; trial < 200; trial++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		kcount := 1 + rng.Intn(12)
		raw := rng.Sample(m.Nodes(), kcount, int(src))
		dests := make([]topology.NodeID, kcount)
		for i, v := range raw {
			dests[i] = topology.NodeID(v)
		}
		k := core.MustMulticastSet(m, src, dests)
		res := XYZFirstMT(m, k)
		if err := res.Validate(m, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, d := range k.Dests {
			if res.Delivered[d] != m.Distance(src, d) {
				t.Fatalf("trial %d: destination %d not on shortest path", trial, d)
			}
		}
		if res.Links > MultiUnicastTraffic(m, k) {
			t.Errorf("trial %d: 3D tree traffic %d worse than multi-unicast %d",
				trial, res.Links, MultiUnicastTraffic(m, k))
		}
	}
}

// TestGreedySTVersusKMB checks the Section 5.2 comparison claim: by
// considering the nodes on shortest paths between Steiner nodes (not just
// the Steiner nodes themselves), the greedy ST algorithm is no worse than
// the KMB heuristic [55] on average over random mesh workloads.
func TestGreedySTVersusKMB(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	g := TopologyGraph(m)
	rng := stats.NewRand(83)
	var greedyTotal, kmbTotal int
	for trial := 0; trial < 150; trial++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		kcount := 2 + rng.Intn(10)
		raw := rng.Sample(m.Nodes(), kcount, int(src))
		dests := make([]topology.NodeID, kcount)
		terminals := []int{int(src)}
		for i, v := range raw {
			dests[i] = topology.NodeID(v)
			terminals = append(terminals, v)
		}
		k := core.MustMulticastSet(m, src, dests)
		greedyTotal += GreedyST(m, k).Links
		kmbTotal += len(KMB(g, terminals))
	}
	if greedyTotal > kmbTotal {
		t.Errorf("greedy ST average traffic %d exceeds KMB %d", greedyTotal, kmbTotal)
	}
}
