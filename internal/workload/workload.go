// Package workload generates deterministic multicast request streams for
// the simulator (internal/wormsim) and the scheduling service
// (internal/sched). The paper's Chapter-7 setup drives every figure with
// uniform-random destination sets at fixed Poisson rates; production
// fabrics are skewed, bursty, and spatially structured. This package
// supplies composable models of that traffic:
//
//   - destination models: a uniform group pool, a Zipf-popularity group
//     pool (a few hot groups receive most traffic — the
//     millions-of-users profile), hotspot destinations (a fraction of
//     every destination set lands in a small fixed region), transpose
//     destinations (sets clustered around each source's transpose
//     partner), and collective rounds (barrier/allreduce: a convergecast
//     of unicasts into a coordinator followed by a release multicast);
//   - arrival models: an open-loop Poisson process (the paper's fixed
//     rate) and a bursty two-state ON/OFF Markov process with
//     geometric burst sizes.
//
// Every stream is a pure function of (topology, Spec, seed): the same
// inputs yield byte-identical request sequences on every platform and at
// every consumer concurrency level. Streams can be recorded into a
// versioned trace file and replayed byte-identically (trace.go).
package workload

import (
	"fmt"
	"math"

	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// Request is one multicast request of a stream: at cycle At, node Src
// sends to Dests. Destination sets are valid by construction (non-empty,
// distinct, in range, never containing Src). The Dests slice may be
// shared with the generator's internal pool; callers must not mutate it.
type Request struct {
	At    int64
	Src   topology.NodeID
	Dests []topology.NodeID
}

// Source yields a time-ordered (nondecreasing At) request stream.
// Sources are not safe for concurrent use; each consumer owns its own.
type Source interface {
	// Next returns the next request, or ok == false when the stream is
	// exhausted.
	Next() (r Request, ok bool)
}

// Destination-model names.
const (
	ModelUniform    = "uniform"    // uniform group pool, uniform popularity
	ModelZipf       = "zipf"       // same pool, Zipf(s) popularity by rank
	ModelHotspot    = "hotspot"    // destinations concentrated in a fixed region
	ModelTranspose  = "transpose"  // destinations clustered at the transpose partner
	ModelCollective = "collective" // barrier/allreduce rounds over pinned groups
)

// Arrival-process names.
const (
	ArrivalsPoisson = "poisson" // open-loop exponential gaps (the paper's model)
	ArrivalsOnOff   = "onoff"   // two-state Markov: geometric bursts, idle gaps
)

// Models returns the destination-model names, in canonical order.
func Models() []string {
	return []string{ModelUniform, ModelZipf, ModelHotspot, ModelTranspose, ModelCollective}
}

// Arrivals returns the arrival-process names, in canonical order.
func Arrivals() []string { return []string{ArrivalsPoisson, ArrivalsOnOff} }

// Spec declares a workload. The zero value of every optional field
// selects a documented default (see normalize); Model and Requests are
// required. Specs are fully serializable into trace headers, so a
// recorded stream carries its own provenance.
type Spec struct {
	Model    string // destination model, one of Models()
	Arrivals string // arrival process, one of Arrivals(); "" = poisson
	Requests int    // stream length in requests

	// Groups is the pinned pool size of the uniform/zipf models and the
	// process-group count of the collective model (default 256).
	Groups int
	// GroupSize is the collective model's process-group size, release
	// multicast included (default 2*AvgDests).
	GroupSize int
	// AvgDests is the mean destination count: sets draw a uniform count
	// in [1, 2*AvgDests-1] (default 4). Collective rounds instead use
	// GroupSize.
	AvgDests int
	// ZipfS is the zipf model's exponent: group rank r is chosen with
	// probability proportional to r^-s (default 1.2).
	ZipfS float64
	// HotFrac is the hotspot model's per-destination probability of
	// drawing from the hot region (default 0.8).
	HotFrac float64
	// HotNodes is the hot region size: nodes [0, HotNodes) (default
	// Nodes/16, minimum 2).
	HotNodes int

	// MeanGap is the mean inter-arrival gap in cycles of the poisson
	// process (default 4). The onoff process derives its defaults from
	// it so both offer the same average load.
	MeanGap float64
	// BurstMean is the onoff process's mean burst size in requests,
	// geometrically distributed (default 16).
	BurstMean float64
	// BurstGap is the onoff in-burst mean inter-arrival gap in cycles
	// (default MeanGap/4).
	BurstGap float64
	// IdleGap is the onoff mean OFF-period length in cycles (default
	// sized so the average rate matches the poisson process at MeanGap:
	// BurstMean*(MeanGap-BurstGap)).
	IdleGap float64

	// PhaseGap is the collective model's cycle offset between a round's
	// gather unicasts and its release multicast (default 64).
	PhaseGap int64
}

// normalize fills defaults and validates against the topology. It
// returns the canonical spec a Stream reports (and a trace records).
func (sp Spec) normalize(t topology.Topology) (Spec, error) {
	switch sp.Model {
	case ModelUniform, ModelZipf, ModelHotspot, ModelTranspose, ModelCollective:
	default:
		return sp, fmt.Errorf("workload: unknown model %q", sp.Model)
	}
	if sp.Arrivals == "" {
		sp.Arrivals = ArrivalsPoisson
	}
	switch sp.Arrivals {
	case ArrivalsPoisson, ArrivalsOnOff:
	default:
		return sp, fmt.Errorf("workload: unknown arrival process %q", sp.Arrivals)
	}
	if sp.Requests <= 0 {
		return sp, fmt.Errorf("workload: Requests must be positive, got %d", sp.Requests)
	}
	n := t.Nodes()
	if n < 2 {
		return sp, fmt.Errorf("workload: topology %s has fewer than 2 nodes", t.Name())
	}
	if sp.Groups == 0 {
		sp.Groups = 256
	}
	if sp.Groups < 1 {
		return sp, fmt.Errorf("workload: Groups must be positive, got %d", sp.Groups)
	}
	if sp.AvgDests == 0 {
		sp.AvgDests = 4
	}
	if sp.AvgDests < 1 {
		return sp, fmt.Errorf("workload: AvgDests must be positive, got %d", sp.AvgDests)
	}
	if sp.GroupSize == 0 {
		sp.GroupSize = 2 * sp.AvgDests
	}
	if sp.GroupSize < 2 {
		return sp, fmt.Errorf("workload: GroupSize must be at least 2, got %d", sp.GroupSize)
	}
	if sp.GroupSize > n {
		sp.GroupSize = n
	}
	if sp.ZipfS == 0 {
		sp.ZipfS = 1.2
	}
	if sp.ZipfS < 0 {
		return sp, fmt.Errorf("workload: ZipfS must be non-negative, got %g", sp.ZipfS)
	}
	if sp.HotFrac == 0 {
		sp.HotFrac = 0.8
	}
	if sp.HotFrac < 0 || sp.HotFrac > 1 {
		return sp, fmt.Errorf("workload: HotFrac must be in [0,1], got %g", sp.HotFrac)
	}
	if sp.HotNodes == 0 {
		sp.HotNodes = n / 16
		if sp.HotNodes < 2 {
			sp.HotNodes = 2
		}
	}
	if sp.HotNodes < 2 || sp.HotNodes > n {
		return sp, fmt.Errorf("workload: HotNodes must be in [2,%d], got %d", n, sp.HotNodes)
	}
	if sp.MeanGap == 0 {
		sp.MeanGap = 4
	}
	if sp.MeanGap < 0 {
		return sp, fmt.Errorf("workload: MeanGap must be positive, got %g", sp.MeanGap)
	}
	if sp.BurstMean == 0 {
		sp.BurstMean = 16
	}
	if sp.BurstMean < 1 {
		return sp, fmt.Errorf("workload: BurstMean must be at least 1, got %g", sp.BurstMean)
	}
	if sp.BurstGap == 0 {
		sp.BurstGap = sp.MeanGap / 4
	}
	if sp.BurstGap < 0 {
		return sp, fmt.Errorf("workload: BurstGap must be positive, got %g", sp.BurstGap)
	}
	if sp.IdleGap == 0 {
		// Load-match the poisson process: one burst of BurstMean requests
		// spans BurstMean*BurstGap + IdleGap cycles, so the average gap
		// equals MeanGap.
		sp.IdleGap = sp.BurstMean * (sp.MeanGap - sp.BurstGap)
		if sp.IdleGap <= 0 {
			sp.IdleGap = sp.MeanGap
		}
	}
	if sp.IdleGap < 0 {
		return sp, fmt.Errorf("workload: IdleGap must be positive, got %g", sp.IdleGap)
	}
	if sp.PhaseGap == 0 {
		sp.PhaseGap = 64
	}
	if sp.PhaseGap < 0 {
		return sp, fmt.Errorf("workload: PhaseGap must be non-negative, got %d", sp.PhaseGap)
	}
	return sp, nil
}

// Stream is a live generator: a deterministic Source over (topology,
// Spec, seed). The group pool (when the model has one) is drawn from a
// seed stream derived with label "workload/pool" and the arrivals from
// "workload/stream", so two specs sharing a seed share their pool.
type Stream struct {
	topo topology.Topology
	spec Spec
	rng  *stats.Rand

	clock     float64
	burstLeft int // onoff: arrivals remaining in the current burst
	emitted   int

	// Pinned pools. uniform/zipf: srcs[g] multicasts to dests[g].
	// collective: groups[g] is a process group, coordinator first.
	srcs   []topology.NodeID
	dests  [][]topology.NodeID
	groups [][]topology.NodeID
	cum    []float64 // zipf cumulative rank weights

	stage []Request // collective: generated, not yet emitted (sorted by At)
}

// New builds a stream over t. The spec is normalized (defaults filled)
// and validated; the normalized form is available via Spec().
func New(t topology.Topology, spec Spec, seed uint64) (*Stream, error) {
	sp, err := spec.normalize(t)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		topo: t,
		spec: sp,
		rng:  stats.NewRand(stats.DeriveSeed(seed, "workload/stream")),
	}
	poolRng := stats.NewRand(stats.DeriveSeed(seed, "workload/pool"))
	switch sp.Model {
	case ModelUniform, ModelZipf:
		s.srcs = make([]topology.NodeID, sp.Groups)
		s.dests = make([][]topology.NodeID, sp.Groups)
		for g := range s.srcs {
			src := topology.NodeID(poolRng.Intn(t.Nodes()))
			k := drawK(poolRng, sp.AvgDests, t.Nodes()-1)
			s.srcs[g] = src
			s.dests[g] = sampleNodes(poolRng, t.Nodes(), k, src)
		}
		if sp.Model == ModelZipf {
			s.cum = make([]float64, sp.Groups)
			total := 0.0
			for r := 0; r < sp.Groups; r++ {
				total += math.Pow(float64(r+1), -sp.ZipfS)
				s.cum[r] = total
			}
		}
	case ModelCollective:
		s.groups = make([][]topology.NodeID, sp.Groups)
		for g := range s.groups {
			raw := poolRng.Sample(t.Nodes(), sp.GroupSize)
			members := make([]topology.NodeID, len(raw))
			for i, v := range raw {
				members[i] = topology.NodeID(v)
			}
			s.groups[g] = members
		}
	}
	return s, nil
}

// Spec returns the normalized spec the stream runs.
func (s *Stream) Spec() Spec { return s.spec }

// Topology returns the stream's topology.
func (s *Stream) Topology() topology.Topology { return s.topo }

// Next implements Source.
func (s *Stream) Next() (Request, bool) {
	if s.emitted >= s.spec.Requests {
		return Request{}, false
	}
	if s.spec.Model == ModelCollective {
		return s.nextCollective()
	}
	at := s.arrive()
	s.emitted++
	switch s.spec.Model {
	case ModelUniform:
		g := s.rng.Intn(s.spec.Groups)
		return Request{At: at, Src: s.srcs[g], Dests: s.dests[g]}, true
	case ModelZipf:
		g := s.zipfGroup()
		return Request{At: at, Src: s.srcs[g], Dests: s.dests[g]}, true
	case ModelHotspot:
		return s.hotspotRequest(at), true
	case ModelTranspose:
		return s.transposeRequest(at), true
	}
	panic("workload: unreachable model " + s.spec.Model)
}

// arrive advances the arrival clock by one event and returns its cycle.
func (s *Stream) arrive() int64 {
	switch s.spec.Arrivals {
	case ArrivalsPoisson:
		s.clock += s.rng.ExpFloat64(s.spec.MeanGap)
	case ArrivalsOnOff:
		if s.burstLeft == 0 {
			// OFF period, then a new geometric burst.
			s.clock += s.rng.ExpFloat64(s.spec.IdleGap)
			s.burstLeft = geometric(s.rng, s.spec.BurstMean)
		} else {
			s.clock += s.rng.ExpFloat64(s.spec.BurstGap)
		}
		s.burstLeft--
	}
	return int64(s.clock)
}

// geometric draws a geometric burst size B >= 1 with the given mean:
// P(B = b) = p(1-p)^(b-1), p = 1/mean.
func geometric(rng *stats.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return 1 + int(math.Log(u)/math.Log(1-p))
}

// zipfGroup draws a group index with P(rank r) proportional to r^-s by
// inverse-CDF binary search over the precomputed cumulative weights.
func (s *Stream) zipfGroup() int {
	u := s.rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// hotspotRequest draws a set whose destinations each land in the hot
// region [0, HotNodes) with probability HotFrac, uniformly elsewhere
// otherwise.
func (s *Stream) hotspotRequest(at int64) Request {
	n := s.topo.Nodes()
	src := topology.NodeID(s.rng.Intn(n))
	maxK := n - 1
	if s.spec.HotFrac >= 1 && s.spec.HotNodes-1 < maxK {
		// Every destination is a hot node; at most HotNodes-1 are
		// distinct and distinct from a hot source.
		maxK = s.spec.HotNodes - 1
	}
	k := drawK(s.rng, s.spec.AvgDests, maxK)
	dests := make([]topology.NodeID, 0, k)
	for len(dests) < k {
		var d topology.NodeID
		if s.rng.Float64() < s.spec.HotFrac {
			d = topology.NodeID(s.rng.Intn(s.spec.HotNodes))
		} else {
			d = topology.NodeID(s.rng.Intn(n))
		}
		if d == src || containsNode(dests, d) {
			continue
		}
		dests = append(dests, d)
	}
	return Request{At: at, Src: src, Dests: dests}
}

// transposeRequest draws a set clustered around the source's transpose
// partner: the partner plus its nearest neighbors in deterministic BFS
// order — the structured counterpart of the uniform model.
func (s *Stream) transposeRequest(at int64) Request {
	n := s.topo.Nodes()
	src := topology.NodeID(s.rng.Intn(n))
	k := drawK(s.rng, s.spec.AvgDests, n-1)
	center := TransposePartner(s.topo, src)
	return Request{At: at, Src: src, Dests: nearestSet(s.topo, center, src, k)}
}

// nextCollective emits the staged requests of collective rounds in
// global At order. A round at cycle T is GroupSize-1 gather unicasts
// (member -> coordinator) at T plus one release multicast
// (coordinator -> members) at T+PhaseGap; rounds are staged until no
// earlier round can still be generated, then popped front-first.
func (s *Stream) nextCollective() (Request, bool) {
	// Generate rounds while the next round could precede the staged head.
	for s.generated() < s.spec.Requests &&
		(len(s.stage) == 0 || int64(s.clock) <= s.stage[0].At) {
		at := s.arrive()
		g := s.rng.Intn(s.spec.Groups)
		members := s.groups[g]
		coord := members[0]
		for _, m := range members[1:] {
			s.push(Request{At: at, Src: m, Dests: []topology.NodeID{coord}})
		}
		release := make([]topology.NodeID, len(members)-1)
		copy(release, members[1:])
		s.push(Request{At: at + s.spec.PhaseGap, Src: coord, Dests: release})
	}
	if len(s.stage) == 0 {
		return Request{}, false
	}
	r := s.stage[0]
	copy(s.stage, s.stage[1:])
	s.stage = s.stage[:len(s.stage)-1]
	s.emitted++
	return r, true
}

// generated counts requests already produced by rounds, emitted or
// staged — the budget the round generator charges against.
func (s *Stream) generated() int { return s.emitted + len(s.stage) }

// push inserts r into the stage keeping it sorted by At, stable: equal
// cycles preserve generation order (gathers before their release).
func (s *Stream) push(r Request) {
	s.stage = append(s.stage, r)
	for i := len(s.stage) - 1; i > 0 && s.stage[i].At < s.stage[i-1].At; i-- {
		s.stage[i], s.stage[i-1] = s.stage[i-1], s.stage[i]
	}
}

// TransposePartner returns the spatial transpose of v: (x,y) -> (y,x)
// on a 2D mesh (coordinates clamped for non-square meshes), the
// bit-reversed address on a hypercube, and the complement address
// N-1-v on other topologies.
func TransposePartner(t topology.Topology, v topology.NodeID) topology.NodeID {
	switch tt := t.(type) {
	case *topology.Mesh2D:
		x, y := tt.XY(v)
		px, py := y, x
		if px > tt.Width-1 {
			px = tt.Width - 1
		}
		if py > tt.Height-1 {
			py = tt.Height - 1
		}
		return tt.ID(px, py)
	case *topology.Hypercube:
		var r topology.NodeID
		for b := 0; b < tt.Dim; b++ {
			if v&(1<<b) != 0 {
				r |= 1 << (tt.Dim - 1 - b)
			}
		}
		return r
	default:
		return topology.NodeID(t.Nodes()-1) - v
	}
}

// nearestSet returns the k nodes nearest to center (center first) in
// deterministic BFS order, excluding excl.
func nearestSet(t topology.Topology, center, excl topology.NodeID, k int) []topology.NodeID {
	out := make([]topology.NodeID, 0, k)
	visited := map[topology.NodeID]bool{center: true}
	frontier := []topology.NodeID{center}
	if center != excl {
		out = append(out, center)
	}
	var buf []topology.NodeID
	for len(out) < k && len(frontier) > 0 {
		var next []topology.NodeID
		for _, v := range frontier {
			buf = t.Neighbors(v, buf[:0])
			for _, w := range buf {
				if visited[w] {
					continue
				}
				visited[w] = true
				next = append(next, w)
				if w != excl {
					out = append(out, w)
					if len(out) == k {
						return out
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// drawK draws a destination count uniform in [1, min(2*avg-1, maxK)].
func drawK(rng *stats.Rand, avg, maxK int) int {
	m := 2*avg - 1
	if m > maxK {
		m = maxK
	}
	if m <= 1 {
		return 1
	}
	return 1 + rng.Intn(m)
}

// sampleNodes draws k distinct uniform nodes excluding excl.
func sampleNodes(rng *stats.Rand, n, k int, excl topology.NodeID) []topology.NodeID {
	raw := rng.Sample(n, k, int(excl))
	out := make([]topology.NodeID, k)
	for i, v := range raw {
		out[i] = topology.NodeID(v)
	}
	return out
}

func containsNode(s []topology.NodeID, v topology.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
