package dfr

import (
	"multicastnet/internal/graphx"
)

// IncrementalCDG is a channel dependency graph that supports removing
// route dependencies as well as adding them, and re-verifies acyclicity
// incrementally: a Check after a batch of changes explores only the
// dependency classes reachable from the channels whose edges changed,
// instead of re-walking the whole union CDG.
//
// The soundness argument is the standard one for dynamic cycle checking:
// if the graph was acyclic at the last verified state, any cycle in the
// new graph must traverse at least one edge added since then, so a DFS
// from the tail of every added edge visits every candidate cycle.
// Removing edges can only break cycles, never create them, so removals
// alone leave a verified graph verified.
//
// Edges are reference-counted: two plans inducing the same dependency
// contribute count 2, and the edge leaves the graph only when the last
// contributor is removed. This is what lets a delta retract exactly the
// dependencies of evicted plans while every other plan's dependencies
// stay live.
type IncrementalCDG struct {
	idx   *ChannelIndexer
	out   []map[int]int // out[u][v] = contributor count of the dependency u -> v
	dirty map[int]bool  // tails of edges added since the last clean Check
	edges int           // live (distinct) edge count
}

// NewIncrementalCDG returns an empty, trivially verified CDG.
func NewIncrementalCDG() *IncrementalCDG {
	return &IncrementalCDG{idx: NewChannelIndexer(), dirty: make(map[int]bool)}
}

// Channels returns the number of channels seen so far.
func (g *IncrementalCDG) Channels() int { return g.idx.Len() }

// Edges returns the number of distinct live dependency edges.
func (g *IncrementalCDG) Edges() int { return g.edges }

// DirtyClasses returns the number of channels whose outgoing dependencies
// changed since the last clean Check — the frontier the next Check will
// explore from.
func (g *IncrementalCDG) DirtyClasses() int { return len(g.dirty) }

func (g *IncrementalCDG) id(c Channel) int {
	id := g.idx.ID(c)
	for len(g.out) <= id {
		g.out = append(g.out, nil)
	}
	return id
}

func (g *IncrementalCDG) addEdge(u, v int) {
	if g.out[u] == nil {
		g.out[u] = make(map[int]int)
	}
	if g.out[u][v] == 0 {
		g.edges++
		g.dirty[u] = true
	}
	g.out[u][v]++
}

func (g *IncrementalCDG) removeEdge(u, v int) {
	if g.out[u] == nil || g.out[u][v] == 0 {
		return // retracting a dependency that was never recorded is a no-op
	}
	g.out[u][v]--
	if g.out[u][v] == 0 {
		delete(g.out[u], v)
		g.edges--
	}
}

// AddPath records the wormhole dependencies along one path, as
// DependencyRecorder.AddPath.
func (g *IncrementalCDG) AddPath(p PathRoute) { g.pathEdges(p, g.addEdge) }

// RemovePath retracts one previously added path's dependencies.
func (g *IncrementalCDG) RemovePath(p PathRoute) { g.pathEdges(p, g.removeEdge) }

func (g *IncrementalCDG) pathEdges(p PathRoute, apply func(u, v int)) {
	chans := p.Channels()
	for i := 1; i < len(chans); i++ {
		apply(g.id(chans[i-1]), g.id(chans[i]))
	}
}

// AddStar records all paths of a star.
func (g *IncrementalCDG) AddStar(s Star) {
	for _, p := range s.Paths {
		g.AddPath(p)
	}
}

// RemoveStar retracts all paths of a previously added star.
func (g *IncrementalCDG) RemoveStar(s Star) {
	for _, p := range s.Paths {
		g.RemovePath(p)
	}
}

// AddTree records a lock-step tree's dependencies, as
// DependencyRecorder.AddTree: every channel at a shallower depth depends
// on every tree channel strictly deeper.
func (g *IncrementalCDG) AddTree(t TreeRoute) { g.treeEdges(t, g.addEdge) }

// RemoveTree retracts one previously added tree's dependencies.
func (g *IncrementalCDG) RemoveTree(t TreeRoute) { g.treeEdges(t, g.removeEdge) }

func (g *IncrementalCDG) treeEdges(t TreeRoute, apply func(u, v int)) {
	depth := t.Depths()
	for _, c1 := range t.Edges {
		for _, c2 := range t.Edges {
			if depth[c1.To] < depth[c2.To] {
				apply(g.id(c1), g.id(c2))
			}
		}
	}
}

// Check verifies acyclicity incrementally: it DFS-walks only from the
// channels whose outgoing dependencies gained edges since the last clean
// Check and returns a dependency cycle, or nil when the graph is acyclic.
// A nil return marks the state verified and resets the dirty frontier; a
// cycle leaves the frontier intact so the caller can retract routes and
// re-Check.
func (g *IncrementalCDG) Check() []Channel {
	if len(g.dirty) == 0 {
		return nil
	}
	const (
		white = 0 // unvisited this Check
		gray  = 1 // on the DFS stack
		black = 2 // fully explored, cycle-free below
	)
	color := make([]byte, len(g.out))
	// Iterative DFS with an explicit parent trail for cycle extraction.
	type frame struct {
		node int
		next []int
	}
	neighbors := func(u int) []int {
		ns := make([]int, 0, len(g.out[u]))
		for v := range g.out[u] {
			ns = append(ns, v)
		}
		return ns
	}
	for src := range g.dirty {
		if color[src] != white {
			continue
		}
		stack := []frame{{node: src, next: neighbors(src)}}
		color[src] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if len(top.next) == 0 {
				color[top.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			v := top.next[0]
			top.next = top.next[1:]
			switch color[v] {
			case white:
				color[v] = gray
				stack = append(stack, frame{node: v, next: neighbors(v)})
			case gray:
				// v is on the stack: the frames from v's position down
				// to the top are the cycle.
				var cyc []Channel
				start := 0
				for i := range stack {
					if stack[i].node == v {
						start = i
						break
					}
				}
				for _, f := range stack[start:] {
					cyc = append(cyc, g.idx.Channel(f.node))
				}
				return cyc
			}
		}
	}
	g.dirty = make(map[int]bool)
	return nil
}

// FullCheck re-verifies the whole graph from scratch — the reference
// Check is measured and tested against. A nil return also resets the
// dirty frontier (the state is verified by the stronger pass).
func (g *IncrementalCDG) FullCheck() []Channel {
	dg := graphx.NewDigraph(len(g.out))
	for u := range g.out {
		for v := range g.out[u] {
			dg.AddEdge(u, v)
		}
	}
	cyc := dg.FindCycle()
	if cyc == nil {
		g.dirty = make(map[int]bool)
		return nil
	}
	out := make([]Channel, len(cyc))
	for i, id := range cyc {
		out[i] = g.idx.Channel(id)
	}
	return out
}
