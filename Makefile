GO ?= go

.PHONY: check fmt vet build test race bench bench-baseline bench-routing-baseline bench-heuristics-baseline results fuzz check-fault

## check: everything CI runs — format, vet, build, race tests, quick benchmarks
check: fmt vet build race bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: quick performance smoke — core throughput, figure pipeline, routing engine, heuristic kernels, static sweep scaling
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkWormsimCyclesPerSec|BenchmarkDynamicFigures|BenchmarkSimulator' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkRoutingPlan' -benchtime 100x ./internal/routing
	$(GO) test -run '^$$' -bench 'BenchmarkGreedyST|BenchmarkKMB|BenchmarkSortedMP' -benchmem -benchtime 100x ./internal/heuristics
	$(GO) test -run '^$$' -bench 'BenchmarkStaticTable' -benchmem -benchtime 1x ./internal/experiments

## bench-baseline: regenerate the committed BENCH_wormsim.json
bench-baseline:
	$(GO) run ./cmd/mcfigures -bench -quick -parallel 1 -out .

## bench-routing-baseline: regenerate the committed BENCH_routing.json
bench-routing-baseline:
	$(GO) test -run TestWriteRoutingBenchBaseline -update-routing-bench ./internal/routing

## bench-heuristics-baseline: regenerate the committed BENCH_heuristics.json (before/after kernel comparison)
bench-heuristics-baseline:
	$(GO) test -run TestWriteHeuristicsBenchBaseline -update-heuristics-bench ./internal/heuristics

## fuzz: 30-second smoke of every fuzz target (healthy routing invariants + fault-mask CDG acyclicity)
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzPlan -fuzztime 30s ./internal/routing
	$(GO) test -run '^$$' -fuzz FuzzFaultMaskCDG -fuzztime 30s ./internal/fault

## check-fault: the fault-injection acceptance suite — masked-CDG acyclicity for every scheme, degraded routing, mid-run kill semantics, retry accounting, exact-vs-heuristic bounds on faulty meshes, and the mcfault parallel determinism contract
check-fault:
	$(GO) test ./internal/fault ./internal/wormsim ./internal/mcastsvc
	$(GO) test -run 'TestFaultFigures' ./internal/experiments
	$(GO) test -run 'TestKMBVsExactOnFaultyMeshes' ./internal/opt

## results: regenerate every table and figure at full fidelity
results:
	$(GO) run ./cmd/mcfigures -out results
	$(GO) run ./cmd/mcfault -out results
