package labeling

import (
	"testing"
	"testing/quick"

	"multicastnet/internal/topology"
)

func TestMeshBoustrophedonIsHamiltonPath(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {4, 3}, {3, 4}, {6, 6}, {1, 5}, {5, 1}, {32, 32}} {
		m := topology.NewMesh2D(dims[0], dims[1])
		if err := Verify(NewMeshBoustrophedon(m), m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestMeshColumnMajorIsHamiltonPath(t *testing.T) {
	for _, dims := range [][2]int{{4, 3}, {3, 4}, {6, 6}} {
		m := topology.NewMesh2D(dims[0], dims[1])
		if err := Verify(NewMeshColumnMajor(m), m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestHypercubeGrayIsHamiltonPath(t *testing.T) {
	for n := 1; n <= 8; n++ {
		h := topology.NewHypercube(n)
		if err := Verify(NewHypercubeGray(h), h); err != nil {
			t.Errorf("%d-cube: %v", n, err)
		}
	}
}

// TestMeshLabelFormula pins the labeling to the closed form of
// Section 6.2.2 and to Fig. 6.9's 4x3 example (width 4): the second row is
// labeled right to left.
func TestMeshLabelFormula(t *testing.T) {
	m := topology.NewMesh2D(4, 3)
	l := NewMeshBoustrophedon(m)
	cases := []struct {
		x, y, want int
	}{
		{0, 0, 0}, {1, 0, 1}, {2, 0, 2}, {3, 0, 3},
		{3, 1, 4}, {2, 1, 5}, {1, 1, 6}, {0, 1, 7},
		{0, 2, 8}, {1, 2, 9}, {2, 2, 10}, {3, 2, 11},
	}
	for _, c := range cases {
		if got := l.Label(m.ID(c.x, c.y)); got != c.want {
			t.Errorf("l(%d,%d)=%d, want %d", c.x, c.y, got, c.want)
		}
	}
}

// TestHypercubeLabelFormula checks the Gray labeling against the paper's
// closed form computed independently: bit i of l is the XOR of address
// bits n-1..i.
func TestHypercubeLabelFormula(t *testing.T) {
	h := topology.NewHypercube(6)
	l := NewHypercubeGray(h)
	n := h.Dim
	for v := 0; v < h.Nodes(); v++ {
		want := 0
		for i := 0; i < n; i++ {
			// c_i = parity of bits above i; label bit i = c_i XOR d_i.
			ci := 0
			for j := i + 1; j < n; j++ {
				ci ^= (v >> j) & 1
			}
			di := (v >> i) & 1
			want |= (ci ^ di) << i
		}
		if got := l.Label(topology.NodeID(v)); got != want {
			t.Fatalf("l(%06b)=%d, want %d", v, got, want)
		}
	}
}

func TestGrayRoundtrip(t *testing.T) {
	f := func(x uint16) bool { return GrayDecode(GrayEncode(uint(x))) == uint(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(x uint16) bool { return GrayEncode(GrayDecode(uint(x))) == uint(x) }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayAdjacent(t *testing.T) {
	// Consecutive Gray codewords differ in exactly one bit.
	prev := GrayEncode(0)
	for i := uint(1); i < 1024; i++ {
		cur := GrayEncode(i)
		if d := prev ^ cur; d&(d-1) != 0 || d == 0 {
			t.Fatalf("Gray(%d)=%b and Gray(%d)=%b differ in more than one bit", i-1, prev, i, cur)
		}
		prev = cur
	}
}

// TestTable51 reproduces Table 5.1: the Hamilton cycle and h mapping of
// the 4x4 mesh.
func TestTable51(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	c, err := MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	wantH := map[topology.NodeID]int{
		0: 1, 1: 2, 2: 3, 3: 4,
		7: 5, 6: 6, 5: 7, 9: 8,
		10: 9, 11: 10, 15: 11, 14: 12,
		13: 13, 12: 14, 8: 15, 4: 16,
	}
	for v, want := range wantH {
		if got := c.H(v); got != want {
			t.Errorf("h(%d)=%d, want %d", v, got, want)
		}
		if c.At(want) != v {
			t.Errorf("At(%d)=%d, want %d", want, c.At(want), v)
		}
	}
}

// TestTable52 reproduces Table 5.2: the sorting key f with source u0 = 9
// on the 4x4 mesh.
func TestTable52(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	c, err := MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	u0 := topology.NodeID(9)
	wantF := []int{17, 18, 19, 20, 16, 23, 22, 21, 15, 8, 9, 10, 14, 13, 12, 11}
	for v, want := range wantF {
		if got := c.SortKey(u0, topology.NodeID(v)); got != want {
			t.Errorf("f(%d)=%d, want %d", v, got, want)
		}
	}
}

// TestTable53 reproduces Table 5.3: the Gray-code Hamilton cycle of the
// 4-cube.
func TestTable53(t *testing.T) {
	h := topology.NewHypercube(4)
	c, err := CubeHamiltonCycle(h)
	if err != nil {
		t.Fatal(err)
	}
	wantSeq := []topology.NodeID{
		0b0000, 0b0001, 0b0011, 0b0010, 0b0110, 0b0111, 0b0101, 0b0100,
		0b1100, 0b1101, 0b1111, 0b1110, 0b1010, 0b1011, 0b1001, 0b1000,
	}
	for i, v := range wantSeq {
		if got := c.At(i + 1); got != v {
			t.Errorf("cycle position %d = %04b, want %04b", i+1, got, v)
		}
		if got := c.H(v); got != i+1 {
			t.Errorf("h(%04b)=%d, want %d", v, got, i+1)
		}
	}
}

// TestTable54 reproduces Table 5.4: sorting keys on the 4-cube with
// u0 = 0011.
func TestTable54(t *testing.T) {
	h := topology.NewHypercube(4)
	c, err := CubeHamiltonCycle(h)
	if err != nil {
		t.Fatal(err)
	}
	u0 := topology.NodeID(0b0011)
	wantF := map[topology.NodeID]int{
		0b0000: 17, 0b0001: 18, 0b0010: 4, 0b0011: 3,
		0b0100: 8, 0b0101: 7, 0b0110: 5, 0b0111: 6,
		0b1000: 16, 0b1001: 15, 0b1010: 13, 0b1011: 14,
		0b1100: 9, 0b1101: 10, 0b1110: 12, 0b1111: 11,
	}
	for v, want := range wantF {
		if got := c.SortKey(u0, v); got != want {
			t.Errorf("f(%04b)=%d, want %d", v, got, want)
		}
	}
}

func TestMeshHamiltonCycleVariousDims(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {2, 2}, {2, 6}, {6, 2}, {5, 4}, {4, 5}, {3, 8}, {8, 3}, {32, 32}} {
		m := topology.NewMesh2D(dims[0], dims[1])
		c, err := MeshHamiltonCycle(m)
		if err != nil {
			t.Errorf("%s: %v", m.Name(), err)
			continue
		}
		if c.Len() != m.Nodes() {
			t.Errorf("%s: cycle length %d", m.Name(), c.Len())
		}
	}
}

func TestMeshHamiltonCycleOddOdd(t *testing.T) {
	if _, err := MeshHamiltonCycle(topology.NewMesh2D(3, 3)); err == nil {
		t.Error("3x3 mesh should have no Hamilton cycle")
	}
	if _, err := MeshHamiltonCycle(topology.NewMesh2D(1, 4)); err == nil {
		t.Error("1x4 mesh should have no Hamilton cycle")
	}
}

func TestCubeHamiltonCycleAllDims(t *testing.T) {
	for n := 1; n <= 10; n++ {
		h := topology.NewHypercube(n)
		if n == 1 {
			// 1-cube is a single edge: NewHamiltonCycle requires
			// adjacency both ways, which holds (0-1-0 uses the same
			// edge twice but the validation is positional).
			continue
		}
		c, err := CubeHamiltonCycle(h)
		if err != nil {
			t.Errorf("%d-cube: %v", n, err)
			continue
		}
		if c.Len() != h.Nodes() {
			t.Errorf("%d-cube: cycle length %d", n, c.Len())
		}
	}
}

func TestSortKeyOrderIsCyclic(t *testing.T) {
	// Sorting all nodes by f(u0, .) must visit the cycle starting at u0.
	m := topology.NewMesh2D(4, 4)
	c, _ := MeshHamiltonCycle(m)
	u0 := topology.NodeID(9)
	// f(u0) must be minimal.
	f0 := c.SortKey(u0, u0)
	for v := topology.NodeID(0); int(v) < m.Nodes(); v++ {
		if v != u0 && c.SortKey(u0, v) <= f0 {
			t.Errorf("f(%d)=%d not greater than f(u0)=%d", v, c.SortKey(u0, v), f0)
		}
	}
}

func TestPathLabelingRoundtrip(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	c, err := MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	l := PathLabeling{Cycle: c}
	for lab := 0; lab < l.N(); lab++ {
		if got := l.Label(l.At(lab)); got != lab {
			t.Fatalf("roundtrip %d -> %d", lab, got)
		}
	}
	if l.Label(c.At(1)) != 0 {
		t.Error("first cycle node should have label 0")
	}
}
