package wormsim

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// runUntilQuiet steps the network until no worms remain or a stall
// persists for limit cycles; it returns true if the network drained.
func runUntilQuiet(n *Network, limit int64) bool {
	var lastProgress int64
	for n.ActiveWorms() > 0 {
		if n.Step() {
			lastProgress = n.Cycle()
		} else if n.Cycle()-lastProgress > limit {
			return false
		}
	}
	return true
}

// pathTo builds a simple path route along given nodes delivering to the
// last one.
func pathTo(nodes ...topology.NodeID) dfr.PathRoute {
	return dfr.PathRoute{Nodes: nodes, Dests: []topology.NodeID{nodes[len(nodes)-1]}}
}

// TestSingleWormLatency pins the contention-free pipeline model: a worm
// over D channels carrying L flits delivers in D + L - 1 cycles.
func TestSingleWormLatency(t *testing.T) {
	m := topology.NewMesh2D(8, 1)
	n := NewNetwork(m)
	var got int64 = -1
	n.OnDelivery(func(_ topology.NodeID, cycles int64) { got = cycles })
	const L = 16
	n.InjectMulticast([]dfr.PathRoute{pathTo(0, 1, 2, 3, 4, 5)}, nil, L)
	if !runUntilQuiet(n, 1000) {
		t.Fatal("network did not drain")
	}
	want := int64(5 + L - 1)
	if got != want {
		t.Errorf("latency %d cycles, want %d", got, want)
	}
}

// TestSingleFlitLatency checks the L=1 corner: latency equals the hop
// count.
func TestSingleFlitLatency(t *testing.T) {
	m := topology.NewMesh2D(8, 1)
	n := NewNetwork(m)
	var got int64 = -1
	n.OnDelivery(func(_ topology.NodeID, c int64) { got = c })
	n.InjectMulticast([]dfr.PathRoute{pathTo(0, 1, 2, 3)}, nil, 1)
	if !runUntilQuiet(n, 1000) {
		t.Fatal("did not drain")
	}
	if got != 3 {
		t.Errorf("latency %d, want 3", got)
	}
}

// TestPathWormMultiDestination checks per-destination delivery along one
// path: nearer destinations receive the message earlier.
func TestPathWormMultiDestination(t *testing.T) {
	m := topology.NewMesh2D(8, 1)
	n := NewNetwork(m)
	lat := map[topology.NodeID]int64{}
	n.OnDelivery(func(d topology.NodeID, c int64) { lat[d] = c })
	completed := int64(-1)
	n.OnComplete(func(c int64) { completed = c })
	p := dfr.PathRoute{Nodes: []topology.NodeID{0, 1, 2, 3, 4}, Dests: []topology.NodeID{2, 4}}
	const L = 8
	n.InjectMulticast([]dfr.PathRoute{p}, nil, L)
	if !runUntilQuiet(n, 1000) {
		t.Fatal("did not drain")
	}
	if lat[2] != 2+L-1 || lat[4] != 4+L-1 {
		t.Errorf("latencies %v, want 2->%d 4->%d", lat, 2+L-1, 4+L-1)
	}
	if completed != lat[4] {
		t.Errorf("completion %d, want %d", completed, lat[4])
	}
}

// TestChannelContention checks FIFO blocking: a second worm wanting the
// same channel waits until the first worm's tail releases it.
func TestChannelContention(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	n := NewNetwork(m)
	lat := map[topology.NodeID]int64{}
	n.OnDelivery(func(d topology.NodeID, c int64) { lat[d] = c })
	const L = 10
	// Worm A: 0 -> 1 -> 2; worm B: 4 -> 0 -> 1 -> 5 shares channel (0,1)
	// but must wait for A's tail.
	n.InjectMulticast([]dfr.PathRoute{pathTo(0, 1, 2)}, nil, L)
	n.InjectMulticast([]dfr.PathRoute{pathTo(4, 0, 1, 5)}, nil, L)
	if !runUntilQuiet(n, 1000) {
		t.Fatal("did not drain")
	}
	if lat[2] != 2+L-1 {
		t.Errorf("worm A latency %d, want %d", lat[2], 2+L-1)
	}
	// Channel (0,1) is released when A's tail crosses it: progress 1+L,
	// i.e. cycle 1+L. B acquired (4,0) at cycle 1, then stalls; it can
	// take (0,1) at the cycle after release.
	if lat[5] <= int64(3+L-1) {
		t.Errorf("worm B latency %d should exceed its contention-free %d", lat[5], 3+L-1)
	}
}

// TestPathDeadlockDetected builds the classic cyclic wait with two long
// worms on a 2x2 mesh and checks that the stall is detected rather than
// spinning forever.
func TestPathDeadlockDetected(t *testing.T) {
	m := topology.NewMesh2D(2, 2)
	n := NewNetwork(m)
	const L = 64
	// Worm A: 0 -> 1 -> 3 -> 2; worm B: 3 -> 2 -> 0 -> 1. After two
	// cycles A holds (0,1),(1,3) and wants (3,2) while B holds
	// (3,2),(2,0) and wants (0,1): a cycle.
	n.InjectMulticast([]dfr.PathRoute{pathTo(0, 1, 3, 2)}, nil, L)
	n.InjectMulticast([]dfr.PathRoute{pathTo(3, 2, 0, 1)}, nil, L)
	if runUntilQuiet(n, 500) {
		t.Fatal("expected deadlock, network drained")
	}
	if n.ActiveWorms() != 2 {
		t.Errorf("both worms should be stuck, %d active", n.ActiveWorms())
	}
}

// TestFig61TreeDeadlockInSimulator reproduces the Fig. 6.1/6.2 deadlock
// dynamically: simultaneous lock-step broadcast trees from nodes 000 and
// 001 of a 3-cube block forever.
func TestFig61TreeDeadlockInSimulator(t *testing.T) {
	h := topology.NewHypercube(3)
	n := NewNetwork(h)
	const L = 32
	n.InjectMulticast(nil, []dfr.TreeRoute{dfr.ECubeBroadcastTree(h, 0)}, L)
	n.InjectMulticast(nil, []dfr.TreeRoute{dfr.ECubeBroadcastTree(h, 1)}, L)
	if runUntilQuiet(n, 500) {
		t.Fatal("expected the Fig. 6.1 deadlock, network drained")
	}
}

// TestTreeWormAloneDelivers checks that a single lock-step tree on an
// idle network delivers every destination at depth + L - 1 cycles.
func TestTreeWormAloneDelivers(t *testing.T) {
	h := topology.NewHypercube(3)
	n := NewNetwork(h)
	lat := map[topology.NodeID]int64{}
	n.OnDelivery(func(d topology.NodeID, c int64) { lat[d] = c })
	const L = 16
	tree := dfr.ECubeBroadcastTree(h, 0)
	n.InjectMulticast(nil, []dfr.TreeRoute{tree}, L)
	if !runUntilQuiet(n, 1000) {
		t.Fatal("did not drain")
	}
	for v := topology.NodeID(1); int(v) < h.Nodes(); v++ {
		want := int64(h.Distance(0, v) + L - 1)
		if lat[v] != want {
			t.Errorf("node %d latency %d, want %d", v, lat[v], want)
		}
	}
}

// TestFig64NaiveTreesDeadlockDynamic reproduces the Fig. 6.4 mesh
// deadlock in the simulator, then shows the double-channel X-first
// routing of the SAME two multicasts drains fine (Assertion 1).
func TestFig64NaiveTreesDeadlockDynamic(t *testing.T) {
	m := topology.NewMesh2D(4, 3)
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	m0 := core.MustMulticastSet(m, id(1, 1), []topology.NodeID{id(0, 2), id(3, 1)})
	m1 := core.MustMulticastSet(m, id(2, 1), []topology.NodeID{id(0, 1), id(3, 0)})
	const L = 64

	naive := NewNetwork(m)
	naive.InjectMulticast(nil, dfr.XFirstTrees(m, m0), L)
	naive.InjectMulticast(nil, dfr.XFirstTrees(m, m1), L)
	if runUntilQuiet(naive, 500) {
		t.Fatal("expected the Fig. 6.4 deadlock with naive trees")
	}

	safe := NewNetwork(m)
	safe.InjectMulticast(nil, dfr.DoubleChannelXFirst(m, m0), L)
	safe.InjectMulticast(nil, dfr.DoubleChannelXFirst(m, m1), L)
	if !runUntilQuiet(safe, 2000) {
		t.Fatal("double-channel X-first should not deadlock")
	}
}

// TestRunDualPathConverges smoke-tests the full dynamic driver at light
// load: it converges, nothing deadlocks, and the latency is at least the
// contention-free floor L/B.
func TestRunDualPathConverges(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	res, err := Run(Config{
		Topology:               m,
		Route:                  DualPathScheme(m, l),
		MeanInterarrivalMicros: 2000,
		AvgDests:               5,
		Seed:                   1,
		WarmupDeliveries:       200,
		BatchSize:              200,
		MinBatches:             6,
		MaxCycles:              2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("dual-path deadlocked")
	}
	if res.Deliveries == 0 {
		t.Fatal("no deliveries measured")
	}
	floor := 128.0 / 20.0 // L/B in microseconds
	if res.AvgLatencyMicros < floor {
		t.Errorf("latency %.2f below serialization floor %.2f", res.AvgLatencyMicros, floor)
	}
	if res.AvgLatencyMicros > 40 {
		t.Errorf("latency %.2f implausibly high at light load", res.AvgLatencyMicros)
	}
	if res.AvgCompletionMicros < res.AvgLatencyMicros {
		t.Errorf("completion %.2f below per-destination %.2f",
			res.AvgCompletionMicros, res.AvgLatencyMicros)
	}
}

// TestRunSchemesNoDeadlockUnderLoad runs every deadlock-free scheme at a
// heavy load long enough for channel conflicts to be pervasive and checks
// that none of them deadlocks — the dynamic counterpart of the CDG
// acyclicity proofs.
func TestRunSchemesNoDeadlockUnderLoad(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	h := topology.NewHypercube(6)
	lh := labeling.NewHypercubeGray(h)
	schemes := []struct {
		name  string
		topo  topology.Topology
		route RouteFunc
	}{
		{"dual-path mesh", m, DualPathScheme(m, l)},
		{"multi-path mesh", m, MultiPathMeshScheme(m, l)},
		{"fixed-path mesh", m, FixedPathScheme(m, l)},
		{"double-channel tree", m, DoubleChannelTreeScheme(m)},
		{"dual-path cube", h, DualPathScheme(h, lh)},
		{"multi-path cube", h, MultiPathCubeScheme(h, lh)},
	}
	for _, s := range schemes {
		res, err := Run(Config{
			Topology:               s.topo,
			Route:                  s.route,
			MeanInterarrivalMicros: 400,
			AvgDests:               6,
			Seed:                   7,
			WarmupDeliveries:       100,
			BatchSize:              300,
			MinBatches:             4,
			MaxCycles:              150_000,
		})
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if res.Deadlocked {
			t.Errorf("%s deadlocked", s.name)
		}
		if res.Deliveries == 0 {
			t.Errorf("%s made no deliveries", s.name)
		}
	}
}

// TestRunNaiveTreeDeadlocksUnderLoad demonstrates dynamically that the
// naive single-channel tree scheme deadlocks under load (Section 6.1).
func TestRunNaiveTreeDeadlocksUnderLoad(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	res, err := Run(Config{
		Topology:               m,
		Route:                  NaiveTreeScheme(m),
		MeanInterarrivalMicros: 100,
		AvgDests:               10,
		Seed:                   3,
		BatchSize:              1000,
		MinBatches:             1000, // never converge; run until deadlock or cap
		MaxCycles:              2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Error("naive tree multicast should deadlock under load")
	}
}

// TestInjectValidation checks the injection guards.
func TestInjectValidation(t *testing.T) {
	m := topology.NewMesh2D(3, 3)
	n := NewNetwork(m)
	for i, fn := range []func(){
		func() { n.InjectMulticast([]dfr.PathRoute{pathTo(0, 1)}, nil, 0) },
		func() {
			n.InjectMulticast([]dfr.PathRoute{{Nodes: []topology.NodeID{0, 1},
				Dests: []topology.NodeID{5}}}, nil, 4)
		},
		func() {
			n.InjectMulticast([]dfr.PathRoute{{Nodes: []topology.NodeID{0, 5},
				Dests: []topology.NodeID{5}}}, nil, 4)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestDoubleChannelClassesAreDistinct checks that two worms on the same
// physical link but different classes do not contend.
func TestDoubleChannelClassesAreDistinct(t *testing.T) {
	m := topology.NewMesh2D(3, 2)
	n := NewNetwork(m)
	lat := map[topology.NodeID]int64{}
	n.OnDelivery(func(d topology.NodeID, c int64) {
		if _, ok := lat[d]; !ok {
			lat[d] = c
		}
	})
	const L = 10
	// Both worms cross the physical link 0 -> 1, on different channel
	// copies: neither should wait.
	a := dfr.PathRoute{Nodes: []topology.NodeID{0, 1, 2}, Class: 0, Dests: []topology.NodeID{2}}
	b := dfr.PathRoute{Nodes: []topology.NodeID{0, 1, 4}, Class: 1, Dests: []topology.NodeID{4}}
	n.InjectMulticast([]dfr.PathRoute{a}, nil, L)
	n.InjectMulticast([]dfr.PathRoute{b}, nil, L)
	if !runUntilQuiet(n, 1000) {
		t.Fatal("did not drain")
	}
	if lat[2] != 2+L-1 || lat[4] != 2+L-1 {
		t.Errorf("class-separated worms should not contend: %v", lat)
	}
}

// TestDeadlockedWormIDs exercises the diagnostic id report on the classic
// two-worm cycle.
func TestDeadlockedWormIDs(t *testing.T) {
	m := topology.NewMesh2D(2, 2)
	n := NewNetwork(m)
	const L = 64
	n.InjectMulticast([]dfr.PathRoute{pathTo(0, 1, 3, 2)}, nil, L)
	n.InjectMulticast([]dfr.PathRoute{pathTo(3, 2, 0, 1)}, nil, L)
	if ids := n.DeadlockedWormIDs(); ids != nil {
		t.Fatalf("no deadlock before any cycle: %v", ids)
	}
	runUntilQuiet(n, 200)
	ids := n.DeadlockedWormIDs()
	if len(ids) != 2 {
		t.Fatalf("expected the two stuck worms, got %v", ids)
	}
}
