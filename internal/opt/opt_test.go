package opt

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// dualPathTraffic routes k with the dual-path scheme and returns its
// channel count.
func dualPathTraffic(m *topology.Mesh2D, l labeling.Labeling, k core.MulticastSet) int {
	return dfr.DualPath(m, l, k).Traffic()
}

func randomSet(t topology.Topology, rng *stats.Rand, k int) core.MulticastSet {
	src := topology.NodeID(rng.Intn(t.Nodes()))
	raw := rng.Sample(t.Nodes(), k, int(src))
	dests := make([]topology.NodeID, k)
	for i, v := range raw {
		dests[i] = topology.NodeID(v)
	}
	return core.MustMulticastSet(t, src, dests)
}

func TestOptimalPathSingleDest(t *testing.T) {
	m := topology.NewMesh2D(5, 5)
	k := core.MustMulticastSet(m, 0, []topology.NodeID{24})
	length, order := OptimalPathLength(m, k)
	if length != 8 {
		t.Errorf("length %d, want 8", length)
	}
	if len(order) != 1 || order[0] != 24 {
		t.Errorf("order %v", order)
	}
}

func TestOptimalPathKnownInstance(t *testing.T) {
	// On a 4x4 mesh from corner 0, visiting 3 and 15: best is
	// 0 -> 3 (3 hops) -> 15 (3 hops) = 6.
	m := topology.NewMesh2D(4, 4)
	k := core.MustMulticastSet(m, 0, []topology.NodeID{15, 3})
	length, order := OptimalPathLength(m, k)
	if length != 6 {
		t.Errorf("length %d, want 6", length)
	}
	if order[0] != 3 || order[1] != 15 {
		t.Errorf("order %v, want [3 15]", order)
	}
}

// TestOptimalPathBruteForce cross-checks Held–Karp against permutation
// enumeration on random small instances.
func TestOptimalPathBruteForce(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	rng := stats.NewRand(3)
	for trial := 0; trial < 50; trial++ {
		k := randomSet(m, rng, 2+rng.Intn(4))
		want := bruteForcePath(m, k)
		got, _ := OptimalPathLength(m, k)
		if got != want {
			t.Fatalf("trial %d: Held-Karp %d, brute force %d", trial, got, want)
		}
	}
}

func bruteForcePath(t topology.Topology, k core.MulticastSet) int {
	best := 1 << 30
	var perm func(remaining []topology.NodeID, at topology.NodeID, cost int)
	perm = func(remaining []topology.NodeID, at topology.NodeID, cost int) {
		if cost >= best {
			return
		}
		if len(remaining) == 0 {
			best = cost
			return
		}
		for i := range remaining {
			next := remaining[i]
			rest := make([]topology.NodeID, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			perm(rest, next, cost+t.Distance(at, next))
		}
	}
	perm(k.Dests, k.Source, 0)
	return best
}

func TestOptimalCycle(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	// Cycle through opposite corner: out and back = 12.
	k := core.MustMulticastSet(m, 0, []topology.NodeID{15})
	if got := OptimalCycleLength(m, k); got != 12 {
		t.Errorf("cycle length %d, want 12", got)
	}
	// The cycle is never shorter than the path.
	rng := stats.NewRand(11)
	for trial := 0; trial < 40; trial++ {
		k := randomSet(m, rng, 1+rng.Intn(5))
		p, _ := OptimalPathLength(m, k)
		c := OptimalCycleLength(m, k)
		if c < p {
			t.Fatalf("trial %d: cycle %d shorter than path %d", trial, c, p)
		}
	}
}

// TestSortedMPAgainstOptimal calibrates the sorted MP heuristic: it is
// never better than the exact bound and stays within a moderate factor on
// small random instances.
func TestSortedMPAgainstOptimal(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(17)
	var heurTotal, optTotal int
	for trial := 0; trial < 60; trial++ {
		k := randomSet(m, rng, 2+rng.Intn(6))
		heur := heuristics.SortedMP(m, c, k).Traffic()
		optv, _ := OptimalPathLength(m, k)
		if heur < optv {
			t.Fatalf("trial %d: heuristic %d beats the lower bound %d", trial, heur, optv)
		}
		heurTotal += heur
		optTotal += optv
	}
	if heurTotal > 6*optTotal {
		t.Errorf("sorted MP average %d is more than 6x optimal %d", heurTotal, optTotal)
	}
}

func TestSteinerTreeExactSmall(t *testing.T) {
	// A 3x3 mesh; terminals at the four corners: minimal Steiner tree
	// has 6 edges (a plus-shape through the center is 8; better is two
	// L-shapes sharing the middle row: corners (0,0),(2,0),(0,2),(2,2):
	// tree edges: row 0 across (2) + column down from (0,0) to (0,2)
	// (2) + (2,0)-(2,1)-(2,2) (2) = 6).
	m := topology.NewMesh2D(3, 3)
	g := heuristics.TopologyGraph(m)
	got := SteinerTreeLength(g, []int{0, 2, 6, 8})
	if got != 6 {
		t.Errorf("Steiner length %d, want 6", got)
	}
}

func TestSteinerTreeMatchesPathForTwoTerminals(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	g := heuristics.TopologyGraph(m)
	rng := stats.NewRand(23)
	for trial := 0; trial < 30; trial++ {
		raw := rng.Sample(m.Nodes(), 2)
		want := m.Distance(topology.NodeID(raw[0]), topology.NodeID(raw[1]))
		if got := SteinerTreeLength(g, raw); got != want {
			t.Fatalf("trial %d: Steiner %d, distance %d", trial, got, want)
		}
	}
}

// TestGreedySTAgainstExact calibrates the greedy ST heuristic against
// Dreyfus–Wagner: never below the optimum, and within 2x (the KMB bound)
// on average.
func TestGreedySTAgainstExact(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	g := heuristics.TopologyGraph(m)
	rng := stats.NewRand(29)
	var heurTotal, optTotal int
	for trial := 0; trial < 40; trial++ {
		k := randomSet(m, rng, 2+rng.Intn(5))
		terminals := []int{int(k.Source)}
		for _, d := range k.Dests {
			terminals = append(terminals, int(d))
		}
		optv := SteinerTreeLength(g, terminals)
		heur := heuristics.GreedyST(m, k).Links
		if heur < optv {
			t.Fatalf("trial %d: greedy ST %d beats exact %d", trial, heur, optv)
		}
		heurTotal += heur
		optTotal += optv
	}
	if heurTotal > 2*optTotal {
		t.Errorf("greedy ST average %d more than 2x exact %d", heurTotal, optTotal)
	}
}

// TestKMBWithinBound checks the classical 2-approximation bound of KMB
// against the exact Steiner solution.
func TestKMBWithinBound(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	g := heuristics.TopologyGraph(m)
	rng := stats.NewRand(31)
	for trial := 0; trial < 40; trial++ {
		raw := rng.Sample(m.Nodes(), 2+rng.Intn(5))
		exact := SteinerTreeLength(g, raw)
		kmb := len(heuristics.KMB(g, raw))
		if kmb < exact {
			t.Fatalf("trial %d: KMB %d beats exact %d", trial, kmb, exact)
		}
		if kmb > 2*exact {
			t.Fatalf("trial %d: KMB %d exceeds 2x exact %d", trial, kmb, exact)
		}
	}
}

func TestOptimalMTSmall(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	// Destinations 5 and 10 from source 0: dist 2 and 4; a shared
	// prefix 0-1-5-6-10 gives 4 edges.
	k := core.MustMulticastSet(m, 0, []topology.NodeID{5, 10})
	if got := OptimalMTLength(m, k); got != 4 {
		t.Errorf("optimal MT %d, want 4", got)
	}
}

// TestMTHeuristicsAgainstExact calibrates X-first and divided greedy
// against the exhaustive optimal multicast tree.
func TestMTHeuristicsAgainstExact(t *testing.T) {
	m := topology.NewMesh2D(5, 5)
	rng := stats.NewRand(37)
	for trial := 0; trial < 25; trial++ {
		k := randomSet(m, rng, 2+rng.Intn(3))
		optv := OptimalMTLength(m, k)
		xf := heuristics.XFirstMT(m, k).Links
		dg := heuristics.DividedGreedyMT(m, k).Links
		if xf < optv || dg < optv {
			t.Fatalf("trial %d: heuristic beats exhaustive optimum (xf=%d dg=%d opt=%d)",
				trial, xf, dg, optv)
		}
	}
}

func TestOptimalStar(t *testing.T) {
	m := topology.NewMesh2D(6, 6)
	// One path allowed: the star optimum equals the path optimum.
	rng := stats.NewRand(41)
	for trial := 0; trial < 40; trial++ {
		k := randomSet(m, rng, 2+rng.Intn(5))
		p, _ := OptimalPathLength(m, k)
		if got := OptimalStarLength(m, k, 1); got != p {
			t.Fatalf("trial %d: star(1) = %d, path optimum %d", trial, got, p)
		}
		// More paths can only help, and k paths reach the multi-unicast
		// optimum (each destination served directly).
		s2 := OptimalStarLength(m, k, 2)
		s4 := OptimalStarLength(m, k, 4)
		if s2 > p || s4 > s2 {
			t.Fatalf("trial %d: star costs not monotone: path %d, star2 %d, star4 %d", trial, p, s2, s4)
		}
		direct := 0
		for _, d := range k.Dests {
			direct += m.Distance(k.Source, d)
		}
		if sk := OptimalStarLength(m, k, k.K()); sk > direct {
			t.Fatalf("trial %d: star(k) = %d exceeds direct service %d", trial, sk, direct)
		}
	}
}

// TestDualPathAgainstOptimalStar calibrates the heuristic against the
// exact two-path star optimum: never better, within a moderate factor.
func TestDualPathAgainstOptimalStar(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	rng := stats.NewRand(47)
	var heur, optv int
	for trial := 0; trial < 40; trial++ {
		k := randomSet(m, rng, 2+rng.Intn(5))
		h := dualPathTraffic(m, l, k)
		o := OptimalStarLength(m, k, 2)
		if h < o {
			t.Fatalf("trial %d: dual-path %d beats exact star(2) %d", trial, h, o)
		}
		heur += h
		optv += o
	}
	if heur > 4*optv {
		t.Errorf("dual-path average %d more than 4x exact %d", heur, optv)
	}
}

func TestExactSolverBounds(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	big := randomSet(m, stats.NewRand(1), 20)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for oversized instance")
		}
	}()
	OptimalPathLength(m, big)
}
