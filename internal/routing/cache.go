package routing

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
)

// cacheShards is the shard count of every PlanCache: a power of two so
// shard selection is a mask, large enough that parallel sweeps rarely
// contend on one mutex.
const cacheShards = 16

// PlanCache is a bounded, sharded, concurrency-safe cache of routed
// plans. Keys combine the router identity with the canonicalized
// multicast set (source plus sorted destinations), so routers for
// different schemes — or the same scheme with different options — can
// share one cache without collisions. Each shard evicts in FIFO order
// once full, bounding memory under adversarial key streams.
//
// Every entry is tagged with the set of directed links its plan
// traverses, so a fault delta can evict exactly the plans that touch
// dead hardware (Invalidate) instead of nuking the whole cache; entries
// for unaffected traffic — and their ~25x cached speedup — survive the
// epoch change.
//
// Cached plans are shared: callers must treat them as immutable.
type PlanCache struct {
	shards        [cacheShards]cacheShard
	perShard      int
	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

// CacheStats is the cumulative counter snapshot of a PlanCache.
type CacheStats struct {
	// Hits and Misses count lookups.
	Hits, Misses uint64
	// Evictions counts entries dropped by the FIFO capacity bound.
	Evictions uint64
	// Invalidations counts entries evicted by Invalidate/InvalidateAll —
	// plans whose channels a fault delta killed (or, for InvalidateAll,
	// the nuke-everything baseline).
	Invalidations uint64
}

// HitRate returns Hits / (Hits + Misses), or 1 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cacheEntry is one cached plan in the representation its key encodes:
// route form (plan) or dense CSR form (flat). Exactly one of plan/flat is
// set. pairs is the sorted, deduplicated set of directed links the plan
// traverses (see ChannelPair), the index targeted invalidation matches
// fault deltas against.
type cacheEntry struct {
	plan Plan
	flat *FlatPlan
	// aux is an opaque caller word stored with the entry (see PutPlanAux)
	// — e.g. the fault router's per-plan degraded accounting, so a cache
	// hit reproduces the accounting of the original planning byte for
	// byte.
	aux   uint64
	pairs []uint64
}

// touchesAny reports whether the entry's plan traverses any of the given
// directed links (both inputs sorted ascending).
func (e *cacheEntry) touchesAny(pairs []uint64) bool {
	a, b := e.pairs, pairs
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

type cacheShard struct {
	mu    sync.Mutex
	plans map[string]cacheEntry
	fifo  []string // insertion order, for eviction
}

// Plan representation tags, appended to every cache key so a cache
// populated with one representation never serves the other shape: a
// pre-flattening consumer asking for the route form must not receive a
// CSR entry, and vice versa.
const (
	reprPlan byte = 'p'
	reprFlat byte = 'f'
)

// NewPlanCache returns a cache holding at most capacity plans (rounded
// up to a multiple of the shard count). capacity <= 0 selects a default
// of 4096.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 4096
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	c := &PlanCache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].plans = make(map[string]cacheEntry)
	}
	return c
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.plans)
		s.mu.Unlock()
	}
	return total
}

// Stats returns the cumulative counter snapshot.
func (c *PlanCache) Stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// ChannelPair encodes the directed link from -> to as the uint64 entries
// of an entry's channel tag. Channel classes are deliberately folded
// away: a link fault kills every class of both directions and a node
// fault every incident link, so matching on the directed link is exact
// for them; for a single virtual-channel fault it over-invalidates the
// other classes of that direction — conservative, never unsafe.
func ChannelPair(from, to topology.NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// planPairs collects the sorted, deduplicated directed links of a plan.
func planPairs(p Plan) []uint64 {
	var pairs []uint64
	for _, pr := range p.Paths {
		for i := 1; i < len(pr.Nodes); i++ {
			pairs = append(pairs, ChannelPair(pr.Nodes[i-1], pr.Nodes[i]))
		}
	}
	for _, tr := range p.Trees {
		for _, e := range tr.Edges {
			pairs = append(pairs, ChannelPair(e.From, e.To))
		}
	}
	return sortedUniq(pairs)
}

// flatPairs collects the sorted, deduplicated directed links of a dense
// CSR plan.
func flatPairs(f *FlatPlan) []uint64 {
	var pairs []uint64
	for p := 0; p < f.Paths(); p++ {
		row := f.PathNodes[f.PathOff[p]:f.PathOff[p+1]]
		for i := 1; i < len(row); i++ {
			pairs = append(pairs, ChannelPair(topology.NodeID(row[i-1]), topology.NodeID(row[i])))
		}
	}
	for i := range f.TreeFrom {
		pairs = append(pairs, ChannelPair(topology.NodeID(f.TreeFrom[i]), topology.NodeID(f.TreeTo[i])))
	}
	return sortedUniq(pairs)
}

// sortedUniq sorts pairs ascending and removes duplicates in place.
func sortedUniq(pairs []uint64) []uint64 {
	if len(pairs) == 0 {
		return nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	out := pairs[:1]
	for _, p := range pairs[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// Invalidate evicts every cached plan that traverses any of the given
// directed links (as ChannelPair values, any order) and returns the
// number evicted. This is the targeted eviction a fault delta triggers:
// plans over surviving hardware keep their entries. Repairs need no
// invalidation at all — a plan that avoided a link stays valid when the
// link returns — so delta consumers call this only with killed channels.
func (c *PlanCache) Invalidate(pairs []uint64) int {
	if len(pairs) == 0 {
		return 0
	}
	sorted := sortedUniq(append([]uint64(nil), pairs...))
	evicted := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, e := range s.plans {
			if e.touchesAny(sorted) {
				delete(s.plans, key)
				evicted++
			}
		}
		s.mu.Unlock()
	}
	c.invalidations.Add(uint64(evicted))
	return evicted
}

// InvalidateAll evicts every cached plan and returns the number evicted —
// the nuke-everything baseline targeted invalidation is measured against.
func (c *PlanCache) InvalidateAll() int {
	evicted := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		evicted += len(s.plans)
		s.plans = make(map[string]cacheEntry)
		s.fifo = s.fifo[:0]
		s.mu.Unlock()
	}
	c.invalidations.Add(uint64(evicted))
	return evicted
}

// shardFor selects a shard by FNV-1a over the key.
func (c *PlanCache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// shardForBytes is shardFor over a byte-buffer key (same FNV-1a).
func (c *PlanCache) shardForBytes(key []byte) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// getBytes is get for a key held in a reusable byte buffer. The map
// access converts the buffer without allocating (the compiler's
// map[string(b)] special case), so a cache hit on the scheduling hot
// path costs no allocation.
func (c *PlanCache) getBytes(key []byte) (cacheEntry, bool) {
	s := c.shardForBytes(key)
	s.mu.Lock()
	e, ok := s.plans[string(key)]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *PlanCache) get(key string) (cacheEntry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.plans[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *PlanCache) put(key string, e cacheEntry) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.plans[key]; dup {
		// A concurrent planner beat us to it; the plans are identical
		// (deterministic routing), keep the incumbent.
		return
	}
	for len(s.plans) >= c.perShard {
		oldest := s.fifo[0]
		s.fifo = s.fifo[1:]
		// Invalidation removes entries without rewriting the FIFO; skip
		// keys it already evicted.
		if _, live := s.plans[oldest]; live {
			delete(s.plans, oldest)
			c.evictions.Add(1)
		}
	}
	s.plans[key] = e
	s.fifo = append(s.fifo, key)
}

// planKey canonicalizes a multicast set into a cache key: the plan
// representation tag, the router identity, the source, and the
// destinations in sorted order, all varint-encoded. Destination order
// never changes a scheme's routes (every scheme re-sorts by label), so
// sets that differ only in listing order share one entry. The
// representation tag keeps route-form and CSR entries for the same
// (router, set) distinct.
func planKey(id string, k core.MulticastSet, repr byte) string {
	buf := make([]byte, 0, len(id)+2+(len(k.Dests)+1)*3)
	buf = append(buf, repr)
	buf = append(buf, id...)
	buf = append(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(k.Source))
	dests := make([]topology.NodeID, len(k.Dests))
	copy(dests, k.Dests)
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, d := range dests {
		buf = binary.AppendUvarint(buf, uint64(d))
	}
	return string(buf)
}

// appendPlanKeySorted appends the cache key of (repr, id, k) to dst and
// returns the grown buffer. It requires k.Dests already sorted ascending
// and then produces exactly the bytes of planKey, so entries built
// through either path share one cache slot. Unlike planKey it copies and
// sorts nothing: with a reused buffer the key build is allocation-free.
func appendPlanKeySorted(dst []byte, id string, k core.MulticastSet, repr byte) []byte {
	dst = append(dst, repr)
	dst = append(dst, id...)
	dst = append(dst, 0)
	dst = binary.AppendUvarint(dst, uint64(k.Source))
	for _, d := range k.Dests {
		dst = binary.AppendUvarint(dst, uint64(d))
	}
	return dst
}

// destsSorted reports whether dests is sorted ascending — the
// precondition of appendPlanKeySorted.
func destsSorted(dests []topology.NodeID) bool {
	for i := 1; i < len(dests); i++ {
		if dests[i-1] > dests[i] {
			return false
		}
	}
	return true
}

// GetPlan looks up the route-form plan cached under (id, k). It is the
// exported lookup for callers that manage caching themselves — the
// degraded-mode fault router caches only fully-served plans, a policy the
// generic Cached wrapper cannot express.
func (c *PlanCache) GetPlan(id string, k core.MulticastSet) (Plan, bool) {
	p, _, ok := c.GetPlanAux(id, k)
	return p, ok
}

// PutPlan caches a route-form plan under (id, k), tagging it with the
// directed links it traverses for targeted invalidation.
func (c *PlanCache) PutPlan(id string, k core.MulticastSet, p Plan) {
	c.PutPlanAux(id, k, p, 0)
}

// GetPlanAux is GetPlan returning the opaque aux word stored with the
// entry (0 when none was recorded).
func (c *PlanCache) GetPlanAux(id string, k core.MulticastSet) (Plan, uint64, bool) {
	e, ok := c.get(planKey(id, k, reprPlan))
	if !ok {
		return Plan{}, 0, false
	}
	return e.plan, e.aux, true
}

// PutPlanAux is PutPlan with an opaque aux word stored alongside the
// plan — the degraded fault router records each plan's accounting flags
// here, so a later cache hit reports the same stats the original
// planning did.
func (c *PlanCache) PutPlanAux(id string, k core.MulticastSet, p Plan, aux uint64) {
	c.put(planKey(id, k, reprPlan), cacheEntry{plan: p, aux: aux, pairs: planPairs(p)})
}

// cachedRouter memoizes PlanSet through a PlanCache.
type cachedRouter struct {
	Router
	cache *PlanCache
}

// PlanSet implements Router, consulting the cache first.
func (r *cachedRouter) PlanSet(k core.MulticastSet) Plan {
	key := planKey(r.Router.ID(), k, reprPlan)
	if e, ok := r.cache.get(key); ok {
		return e.plan
	}
	p := r.Router.PlanSet(k)
	r.cache.put(key, cacheEntry{plan: p, pairs: planPairs(p)})
	return p
}

// Plan implements Router through the cached PlanSet.
func (r *cachedRouter) Plan(src topology.NodeID, dests []topology.NodeID) (Plan, error) {
	k, err := core.NewMulticastSet(r.State().Topology(), src, dests)
	if err != nil {
		return Plan{}, err
	}
	return r.PlanSet(k), nil
}

// cachedLiveRouter is cachedRouter for adaptive schemes: deterministic
// plans are cached, live (oracle-dependent) plans never are.
type cachedLiveRouter struct {
	cachedRouter
	live LiveRouter
}

// PlanLive implements LiveRouter, bypassing the cache.
func (r *cachedLiveRouter) PlanLive(k core.MulticastSet, oracle dfr.ChannelOracle) Plan {
	return r.live.PlanLive(k, oracle)
}

// Cached wraps a router with a plan cache. Multiple routers — of any
// scheme — may share one cache; keys are namespaced by router identity.
// Live (adaptive) plans are never cached: wrapping a LiveRouter returns
// a LiveRouter whose PlanLive passes straight through.
func Cached(r Router, c *PlanCache) Router {
	if lr, ok := r.(LiveRouter); ok {
		return &cachedLiveRouter{cachedRouter: cachedRouter{Router: r, cache: c}, live: lr}
	}
	return &cachedRouter{Router: r, cache: c}
}
