package experiments

import (
	"strings"
	"testing"

	"multicastnet/internal/stats"
)

// TestStaticParallelDeterminism is the static-study counterpart of
// TestSweepParallelDeterminism: every static figure, the extension
// sweeps, and the parallelized text reports must render byte-identically
// at any worker count. The static sweeps guarantee this by construction —
// workloads are pregenerated from one sequential RNG stream, workers only
// fill disjoint integer slices, and the float fold runs serially in the
// original replicate order.
func TestStaticParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		o := Options{Reps: 25, Seed: 1990, Parallel: workers}
		var sb strings.Builder
		for _, fig := range []*stats.Figure{
			Fig71SortedMPMesh(o),
			Fig74GreedySTCube(o),
			Fig75MTMesh(o),
			ExtVirtualChannelsStatic(o),
		} {
			if err := fig.WriteTable(&sb); err != nil {
				t.Fatal(err)
			}
			if err := fig.WriteCSV(&sb); err != nil {
				t.Fatal(err)
			}
		}
		if err := ExampleRoutes(&sb, workers); err != nil {
			t.Fatal(err)
		}
		if err := DeadlockDemos(&sb, workers); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	seq := render(1)
	for _, workers := range []int{4, 8} {
		if par := render(workers); par != seq {
			t.Fatalf("static output at %d workers diverged from sequential", workers)
		}
	}
	if !strings.Contains(seq, "greedy") {
		t.Fatalf("rendered output looks empty:\n%s", seq[:min(400, len(seq))])
	}
}
