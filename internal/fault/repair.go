package fault

import (
	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
)

// Escape-segment repair: the last-resort plan construction that works on
// any connected masked graph.
//
// A repair worm visits its destinations in label order (high group
// ascending, low group descending, exactly like dual-path), but each leg
// is a deterministic BFS shortest path over the masked graph, which is
// generally not label-monotone. The leg is therefore split into maximal
// label-monotone segments, and the channel class is escalated at every
// direction reversal (and past every failed virtual-channel copy). The
// resulting worm has a non-decreasing class sequence whose equal-class
// runs are each strictly label-monotone.
//
// That invariant is what keeps the union channel dependency graph
// acyclic: a dependency cycle can never descend in class, so it must
// live inside a single class; within one class every worm contributes a
// single-direction monotone run, and the ascending-label and
// descending-label channels are disjoint channel sets with no dependency
// edges between them, each acyclic under the label potential. Path
// schemes place only label-monotone paths in their own classes, so
// repair segments sharing class 0 with them preserve the argument; tree
// schemes get repair classes strictly above the tree classes instead
// (base = repairBase), because quadrant-tree dependencies are structured
// by geometry, not labels.
//
// A worm must never wait on a channel it already holds (self-deadlock in
// the wormhole pipeline), so a leg that would reuse one of the worm's
// own (channel, class) pairs closes the worm and starts a fresh one from
// the source.

// pathBuilder accumulates one repair worm.
type pathBuilder struct {
	nodes   []topology.NodeID
	classes []int
	dests   []topology.NodeID
	used    map[dfr.Channel]bool
	class   int // current (highest) class
	dir     int // label direction of the current class run; 0 unknown
}

// extend appends a BFS leg to the worm, assigning per-hop classes. It
// returns false — leaving the builder untouched — when the leg would
// reuse a channel the worm already holds.
func (b *pathBuilder) extend(r *Router, leg []topology.NodeID) bool {
	cls := make([]int, 0, len(leg)-1)
	class, dir := b.class, b.dir
	for i := 1; i < len(leg); i++ {
		u, v := leg[i-1], leg[i]
		d := 1
		if r.healthy.Label(v) < r.healthy.Label(u) {
			d = -1
		}
		if dir != 0 && d != dir {
			class++ // direction reversal: escalate into a fresh class
		}
		dir = d
		for r.mask.VCDead(dfr.Channel{From: u, To: v, Class: class}) {
			class++ // dead virtual-channel copy: next copy up
		}
		if b.used[dfr.Channel{From: u, To: v, Class: class}] {
			return false
		}
		cls = append(cls, class)
	}
	for i, c := range cls {
		b.used[dfr.Channel{From: leg[i], To: leg[i+1], Class: c}] = true
		b.nodes = append(b.nodes, leg[i+1])
		b.classes = append(b.classes, c)
	}
	b.class, b.dir = class, dir
	return true
}

// repairPaths builds escape-segment repair paths for every destination
// of k (all assumed reachable over the masked graph), starting class
// assignment at base.
func (r *Router) repairPaths(k core.MulticastSet, base int) []dfr.PathRoute {
	dh, dl := dfr.HighLowPartition(r.healthy.Labeling(), k)
	var out []dfr.PathRoute
	for _, group := range [2][]topology.NodeID{dh, dl} {
		if len(group) > 0 {
			out = append(out, r.repairGroup(k.Source, group, base)...)
		}
	}
	return out
}

// repairGroup chains BFS legs through one label-ordered destination
// group, starting a new worm from the source whenever a leg would make
// the current worm wait on itself.
func (r *Router) repairGroup(src topology.NodeID, dests []topology.NodeID, base int) []dfr.PathRoute {
	var out []dfr.PathRoute
	var b *pathBuilder
	reset := func() {
		b = &pathBuilder{
			nodes: []topology.NodeID{src},
			used:  make(map[dfr.Channel]bool),
			class: base,
		}
	}
	flush := func() {
		if len(b.dests) > 0 {
			out = append(out, dfr.PathRoute{
				Nodes: b.nodes, Class: base, Classes: b.classes, Dests: b.dests,
			})
		}
		reset()
	}
	reset()
	for _, d := range dests {
		cur := b.nodes[len(b.nodes)-1]
		if cur == d {
			b.dests = append(b.dests, d)
			continue
		}
		leg := r.bfsPath(cur, d)
		if leg == nil {
			continue // caller guarantees reachability; defensive
		}
		if !b.extend(r, leg) {
			flush()
			leg = r.bfsPath(src, d)
			if leg == nil || !b.extend(r, leg) {
				continue // a fresh builder over a simple path cannot collide
			}
		}
		b.dests = append(b.dests, d)
	}
	flush()
	return out
}

// bfsPath returns the deterministic shortest path from u to v over the
// masked graph — BFS visiting neighbors in the masked topology's
// precomputed order, parent-first — or nil when v is unreachable.
func (r *Router) bfsPath(u, v topology.NodeID) []topology.NodeID {
	n := r.masked.Nodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[u] = int32(u)
	queue := make([]topology.NodeID, 0, n)
	queue = append(queue, u)
	var buf []topology.NodeID
	for len(queue) > 0 && parent[v] < 0 {
		cur := queue[0]
		queue = queue[1:]
		buf = r.masked.Neighbors(cur, buf[:0])
		for _, w := range buf {
			if parent[w] < 0 {
				parent[w] = int32(cur)
				queue = append(queue, w)
			}
		}
	}
	if parent[v] < 0 {
		return nil
	}
	var rev []topology.NodeID
	for x := v; x != u; x = topology.NodeID(parent[x]) {
		rev = append(rev, x)
	}
	rev = append(rev, u)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
