// Package graphx provides the general graph machinery underlying the
// dissertation's constructions: undirected adjacency-list graphs, BFS,
// connectivity and tree checks, directed-cycle detection (used for channel
// dependency graphs, Section 2.3.4), grid graphs (Section 4.1), and
// exhaustive Hamilton path/cycle search for small instances (the
// NP-complete source problems of Chapter 4).
package graphx

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..N-1.
type Graph struct {
	adj [][]int
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("graphx: negative vertex count")
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// AddEdge inserts the undirected edge (u, v). Duplicate edges and
// self-loops are rejected with a panic: the host graphs of the paper are
// simple graphs, and a duplicate insertion indicates a construction bug.
// The duplicate scan costs O(deg); constructors that guarantee
// uniqueness by enumeration (lattices, topology converters) should use
// AddEdgeUnchecked, which keeps dense-graph construction O(V+E).
func (g *Graph) AddEdge(u, v int) {
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("graphx: duplicate edge (%d,%d)", u, v))
	}
	g.AddEdgeUnchecked(u, v)
}

// AddEdgeUnchecked inserts (u, v) in O(1), skipping the duplicate-edge
// scan of AddEdge. Self-loops and out-of-range vertices still panic.
// Callers are responsible for never inserting an edge twice: each edge
// of a simple graph must be added exactly once.
func (g *Graph) AddEdgeUnchecked(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graphx: self-loop at %d", u))
	}
	g.check(u)
	g.check(v)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of v. The slice is owned by the
// graph and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.Neighbors(v)) }

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// EdgeList returns all edges (u < v), sorted, for deterministic iteration.
func (g *Graph) EdgeList() [][2]int {
	var edges [][2]int
	for u, a := range g.adj {
		for _, v := range a {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

func (g *Graph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graphx: vertex %d out of range [0,%d)", v, len(g.adj)))
	}
}

// BFSDistances returns the distance from src to every vertex, with -1 for
// unreachable vertices. Hot paths that traverse repeatedly should hold a
// Scratch and call its BFS method instead; this convenience wrapper
// allocates the result slice per call.
func (g *Graph) BFSDistances(src int) []int {
	var s Scratch
	s.BFS(g, src)
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = s.Dist(i)
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst as a vertex
// sequence (inclusive), or nil when dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	g.check(dst)
	dist := g.BFSDistances(src)
	if dist[dst] < 0 {
		return nil
	}
	path := make([]int, dist[dst]+1)
	path[dist[dst]] = dst
	cur := dst
	for d := dist[dst]; d > 0; d-- {
		for _, w := range g.adj[cur] {
			if dist[w] == d-1 {
				cur = w
				break
			}
		}
		path[d-1] = cur
	}
	return path
}

// Connected reports whether the graph is connected (vacuously true for
// n <= 1). Repeated connectivity checks should reuse a Scratch.
func (g *Graph) Connected() bool {
	var s Scratch
	return s.Connected(g)
}

// IsTree reports whether the graph is connected and acyclic.
func (g *Graph) IsTree() bool {
	return g.Connected() && g.Edges() == g.N()-1
}

// BFSLayers partitions the vertices reachable from src into layers
// A_0, A_1, ... where A_i holds the vertices at distance i (the
// breadth-first partition used by the Theorem 4.5 reduction).
func (g *Graph) BFSLayers(src int) [][]int {
	dist := g.BFSDistances(src)
	maxd := 0
	for _, d := range dist {
		if d > maxd {
			maxd = d
		}
	}
	layers := make([][]int, maxd+1)
	for v, d := range dist {
		if d >= 0 {
			layers[d] = append(layers[d], v)
		}
	}
	for _, l := range layers {
		sort.Ints(l)
	}
	return layers
}
