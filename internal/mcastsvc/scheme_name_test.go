package mcastsvc

import (
	"strings"
	"testing"

	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// TestSchemeNameRoundTrip pins the deprecated-alias contract: every
// legacy Scheme constant's String() is a registry name that resolves
// through routing.Lookup, and a Service built from either selector
// reports the same name.
func TestSchemeNameRoundTrip(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	for _, s := range []Scheme{DualPathScheme, MultiPathScheme, FixedPathScheme} {
		name := s.String()
		if _, err := routing.Lookup(name); err != nil {
			t.Errorf("%v.String() = %q does not resolve in the registry: %v", s, name, err)
		}
		viaEnum, err := New(Config{Topology: m, Scheme: s})
		if err != nil {
			t.Fatalf("New(Scheme: %v): %v", s, err)
		}
		viaName, err := New(Config{Topology: m, SchemeName: name})
		if err != nil {
			t.Fatalf("New(SchemeName: %q): %v", name, err)
		}
		if viaEnum.SchemeName() != name || viaName.SchemeName() != name {
			t.Errorf("SchemeName() = %q / %q, want %q",
				viaEnum.SchemeName(), viaName.SchemeName(), name)
		}
	}
}

// TestSchemeAliasNameRoundTrip pins the documented alias table directly:
// Name() yields exactly the promised registry name, String() agrees with
// Name() for every defined constant, and a Service built through the
// alias produces plans identical to one built through the name.
func TestSchemeAliasNameRoundTrip(t *testing.T) {
	want := map[Scheme]string{
		DualPathScheme:  "dual-path",
		MultiPathScheme: "multi-path",
		FixedPathScheme: "fixed-path",
	}
	m := topology.NewMesh2D(4, 4)
	for s, name := range want {
		got, err := s.Name()
		if err != nil {
			t.Fatalf("%v.Name(): %v", s, err)
		}
		if got != name {
			t.Errorf("%v.Name() = %q, want %q", s, got, name)
		}
		if s.String() != got {
			t.Errorf("%v.String() = %q disagrees with Name() %q", s, s.String(), got)
		}
		viaEnum, err := New(Config{Topology: m, Scheme: s})
		if err != nil {
			t.Fatal(err)
		}
		viaName, err := New(Config{Topology: m, SchemeName: name})
		if err != nil {
			t.Fatal(err)
		}
		g, err := viaEnum.NewGroup([]topology.NodeID{2, 7, 11})
		if err != nil {
			t.Fatal(err)
		}
		a, err := viaEnum.Multicast(2, g, 64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := viaName.Multicast(2, g, 64)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%v: enum-built and name-built services disagree: %+v vs %+v", s, a, b)
		}
	}
}

func TestUnknownSchemeEnumErrors(t *testing.T) {
	if _, err := Scheme(9).Name(); err == nil {
		t.Error("Scheme(9).Name() succeeded")
	}
	if got := Scheme(9).String(); got != "Scheme(9)" {
		t.Errorf("Scheme(9).String() = %q", got)
	}
	if _, err := New(Config{Topology: topology.NewMesh2D(4, 4), Scheme: Scheme(9)}); err == nil {
		t.Error("New accepted an undefined enum value")
	}
}

// TestUnknownSchemeNameListsValidNames checks the helpful-error
// satellite: a typo'd SchemeName surfaces the registry's valid names.
func TestUnknownSchemeNameListsValidNames(t *testing.T) {
	_, err := New(Config{Topology: topology.NewMesh2D(4, 4), SchemeName: "dual-psth"})
	if err == nil {
		t.Fatal("New accepted an unknown scheme name")
	}
	for _, name := range routing.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid name %q", err, name)
		}
	}
}

// TestSchemeNamePrecedence: a non-empty SchemeName wins over the enum.
func TestSchemeNamePrecedence(t *testing.T) {
	svc, err := New(Config{
		Topology:   topology.NewMesh2D(4, 4),
		Scheme:     MultiPathScheme,
		SchemeName: "fixed-path",
	})
	if err != nil {
		t.Fatal(err)
	}
	if svc.SchemeName() != "fixed-path" {
		t.Errorf("SchemeName() = %q, want fixed-path", svc.SchemeName())
	}
}

// TestServiceRefusesDeadlockProneScheme: the service only accepts
// deadlock-free registry schemes.
func TestServiceRefusesDeadlockProneScheme(t *testing.T) {
	_, err := New(Config{Topology: topology.NewMesh2D(4, 4), SchemeName: "naive-tree"})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("New(naive-tree) = %v, want a deadlock-freedom refusal", err)
	}
}

// TestServiceAcceptsAnyDeadlockFreeRegistryScheme: schemes beyond the
// legacy enum (e.g. the tree scheme) are reachable via SchemeName.
func TestServiceAcceptsAnyDeadlockFreeRegistryScheme(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	svc, err := New(Config{Topology: m, SchemeName: "tree"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := svc.NewGroup([]topology.NodeID{1, 5, 9, 13})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := svc.Multicast(1, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost.TrafficChannels <= 0 {
		t.Errorf("tree multicast traffic = %d", cost.TrafficChannels)
	}
}
