package wormsim

// Worm arena: worms live by value in Network.slots and retired slots —
// with their chans/levels/deliveries backing arrays — are recycled
// through a freelist instead of being dropped to the garbage collector,
// mirroring the heuristics.Workspace approach of the static kernels.
// Together with the epoch-stamped node scratch (which replaces the
// per-injection position and depth maps) the steady-state inject/step
// loop allocates nothing once slice capacities and the freelist have
// warmed up.
//
// Recycling safety: a retired worm's slot may still be referenced by the
// wake lists for one cycle (a release can wake a worm in the same cycle
// it retires, and wokenNext is consumed at the next cycle's merge), and
// by n.worms until the lazy compaction drops it. Slots therefore enter
// the freelist only at compaction, and leave it only when at least two
// cycles have passed since they retired — past every possible stale
// reference.

// allocWorm returns the index of a zeroed worm slot, reusing a retired
// one (and its slice capacities) when the freelist has one old enough,
// and growing the arena otherwise. Growing may move the slots backing
// array: callers never hold a *worm across an allocWorm call.
func (n *Network) allocWorm() wormRef {
	if n.freeHead < len(n.free) {
		wi := n.free[n.freeHead]
		w := &n.slots[wi]
		if w.doneCycle+2 <= n.cycle {
			n.freeHead++
			if n.freeHead > 64 && n.freeHead*2 > len(n.free) {
				n.free = append(n.free[:0], n.free[n.freeHead:]...)
				n.freeHead = 0
			}
			chans, levels, deliveries := w.chans[:0], w.levels[:0], w.deliveries[:0]
			*w = worm{chans: chans, levels: levels, deliveries: deliveries, mcast: -1}
			return wi
		}
	}
	n.slots = append(n.slots, worm{mcast: -1})
	return wormRef(len(n.slots) - 1)
}

// allocMcast returns the index of a zeroed multicast record, reusing one
// whose worms have all been recycled.
func (n *Network) allocMcast() int32 {
	if len(n.mcFree) > 0 {
		mci := n.mcFree[len(n.mcFree)-1]
		n.mcFree = n.mcFree[:len(n.mcFree)-1]
		n.mcSlots[mci] = mcastState{}
		return mci
	}
	n.mcSlots = append(n.mcSlots, mcastState{})
	return int32(len(n.mcSlots) - 1)
}

// recycleWorm moves a compacted-out worm's slot to the freelist and
// releases its multicast record once the last referencing worm is gone.
func (n *Network) recycleWorm(wi wormRef) {
	w := &n.slots[wi]
	if mci := w.mcast; mci >= 0 {
		w.mcast = -1
		mc := &n.mcSlots[mci]
		mc.worms--
		if mc.worms == 0 {
			n.mcFree = append(n.mcFree, mci)
		}
	}
	n.free = append(n.free, wi)
}

// growLevels resizes a recycled levels slice to maxd frontiers, reusing
// every level's channel and taken arrays.
func growLevels(levels []treeLevel, maxd int) []treeLevel {
	if cap(levels) < maxd {
		levels = append(levels[:cap(levels)], make([]treeLevel, maxd-cap(levels))...)
	}
	levels = levels[:maxd]
	for i := range levels {
		levels[i].channels = levels[i].channels[:0]
		levels[i].taken = levels[i].taken[:0]
		levels[i].missing = 0
		levels[i].queued = false
	}
	return levels
}

// sortRefsByID sorts a wake list in place by ascending worm id. Wake
// lists are short and nearly sorted (releases fire in scan order), so an
// insertion sort beats sort.Slice — and unlike sort.Slice it does not
// allocate, keeping the steady-state step loop allocation-free.
func (n *Network) sortRefsByID(ws []wormRef) {
	s := n.slots
	for i := 1; i < len(ws); i++ {
		w := ws[i]
		id := s[w].id
		j := i - 1
		for j >= 0 && s[ws[j]].id > id {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = w
	}
}

// nodeMark stamps node as seen in the current scratch epoch with value v,
// keeping the first value per epoch — the array-backed replacement for
// the injector's first-occurrence position map and the tree-depth map.
// It returns false when the node was already stamped this epoch.
func (n *Network) nodeMark(node int, v int32) bool {
	if n.scratchStamp[node] == n.scratchEpoch {
		return false
	}
	n.scratchStamp[node] = n.scratchEpoch
	n.scratchVal[node] = v
	return true
}

// nodeVal returns the stamped value of node this epoch, or -1.
func (n *Network) nodeVal(node int) int32 {
	if n.scratchStamp[node] != n.scratchEpoch {
		return -1
	}
	return n.scratchVal[node]
}

// beginScratch opens a fresh scratch epoch over the topology's nodes.
func (n *Network) beginScratch() {
	if n.scratchStamp == nil {
		nodes := n.topo.Nodes()
		n.scratchStamp = make([]int64, nodes)
		n.scratchVal = make([]int32, nodes)
	}
	n.scratchEpoch++
}
