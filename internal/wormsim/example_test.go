package wormsim_test

import (
	"fmt"
	"log"

	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// ExampleRun shows a Section 7.2 style dynamic simulation: an 8x8 mesh
// under dual-path multicast at a light load converges without deadlock.
func ExampleRun() {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	res, err := wormsim.Run(wormsim.Config{
		Topology:               m,
		Route:                  wormsim.DualPathScheme(m, l),
		MeanInterarrivalMicros: 2000,
		AvgDests:               5,
		Seed:                   1,
		WarmupDeliveries:       200,
		BatchSize:              200,
		MinBatches:             6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadlocked=%v, latency above serialization floor: %v\n",
		res.Deadlocked, res.AvgLatencyMicros >= 128.0/20)
	// Output: deadlocked=false, latency above serialization floor: true
}
