package experiments

import (
	"strings"
	"testing"

	"multicastnet/internal/stats"
)

// shapeAbove asserts series a stays strictly above series b at every
// shared x >= from.
func shapeAbove(t *testing.T, fig *stats.Figure, a, b string, from float64) {
	t.Helper()
	shapeAboveRange(t, fig, a, b, from, 1e18)
}

// shapeAboveRange asserts series a stays strictly above series b at every
// shared x in [from, to]; outside the range the curves may cross or
// coincide (e.g. dual- and fixed-path converging once the destination set
// approaches the whole network).
func shapeAboveRange(t *testing.T, fig *stats.Figure, a, b string, from, to float64) {
	t.Helper()
	sa, sb := fig.Get(a), fig.Get(b)
	if sa == nil || sb == nil {
		t.Fatalf("%s: missing series %q or %q", fig.ID, a, b)
	}
	checked := 0
	for i, x := range sa.X {
		if x < from || x > to {
			continue
		}
		if yb, ok := sb.At(x); ok {
			if sa.Y[i] <= yb {
				t.Errorf("%s: %s (%.1f) not above %s (%.1f) at x=%g", fig.ID, a, sa.Y[i], b, yb, x)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("%s: no shared x values between %q and %q", fig.ID, a, b)
	}
}

func TestFig71Shape(t *testing.T) {
	fig := Fig71SortedMPMesh(Quick())
	// One-to-one additional traffic grows with k and dwarfs sorted MP at
	// large k; broadcast is the constant 1023-k line.
	shapeAbove(t, fig, "one-to-one", "sorted MP", 100)
	bc := fig.Get("broadcast")
	for i, x := range bc.X {
		want := 1023 - x
		if bc.Y[i] != want {
			t.Errorf("broadcast additional traffic at k=%g is %.1f, want %.1f", x, bc.Y[i], want)
		}
	}
	// Sorted MP additional traffic is bounded by the Hamilton cycle
	// length.
	mp := fig.Get("sorted MP")
	for i := range mp.X {
		if mp.Y[i] >= 1024 {
			t.Errorf("sorted MP additional traffic %.1f exceeds cycle bound", mp.Y[i])
		}
	}
}

func TestFig72Shape(t *testing.T) {
	fig := Fig72SortedMPCube(Quick())
	shapeAbove(t, fig, "one-to-one", "sorted MP", 100)
}

func TestFig73Shape(t *testing.T) {
	fig := Fig73GreedySTMesh(Quick())
	// Greedy ST beats one-to-one everywhere (trees share channels) and
	// broadcast for moderate k.
	shapeAbove(t, fig, "one-to-one", "greedy ST", 2)
	shapeAbove(t, fig, "broadcast", "greedy ST", 2)
}

func TestFig74Shape(t *testing.T) {
	fig := Fig74GreedySTCube(Quick())
	// The published result: greedy ST improves on LEN.
	shapeAbove(t, fig, "LEN", "greedy ST", 5)
}

func TestFig75Shape(t *testing.T) {
	fig := Fig75MTMesh(Quick())
	shapeAbove(t, fig, "one-to-one", "X-first", 2)
	shapeAbove(t, fig, "X-first", "divided greedy", 5)
}

func TestFig76Fig77Shapes(t *testing.T) {
	// Fixed-path pays for visiting every intermediate label until the
	// destination set covers most of the network, where the paper notes
	// dual- and fixed-path become effectively identical.
	cube := Fig76PathTrafficCube(Quick())
	shapeAboveRange(t, cube, "fixed-path", "dual-path", 2, 30)
	mesh := Fig77PathTrafficMesh(Quick())
	shapeAboveRange(t, mesh, "fixed-path", "dual-path", 2, 30)
	shapeAboveRange(t, mesh, "dual-path", "multi-path", 5, 30)
}

func TestAblations(t *testing.T) {
	lab := AblationLabeling(Quick())
	// The paper's boustrophedon labeling beats the comb cycle labeling in
	// the mid range; with very large destination sets all labelings
	// produce near-spanning paths and the difference washes out.
	shapeAboveRange(t, lab, "comb cycle", "boustrophedon", 5, 20)
	// For tiny sets the orders coincide; from ~10 destinations the
	// unsorted path pays for its zigzags.
	order := AblationDestinationOrder(Quick())
	shapeAbove(t, order, "unsorted path", "sorted MP", 15)
}

func TestFig23Switching(t *testing.T) {
	fig := Fig23Switching()
	shapeAbove(t, fig, "store-and-forward", "wormhole", 1)
	var sb strings.Builder
	if err := fig.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "store-and-forward") {
		t.Error("table rendering incomplete")
	}
}

func TestTables(t *testing.T) {
	for i, fn := range []func(w *strings.Builder) error{
		func(w *strings.Builder) error { return WriteTable51(w) },
		func(w *strings.Builder) error { return WriteTable52(w) },
		func(w *strings.Builder) error { return WriteTable53(w) },
		func(w *strings.Builder) error { return WriteTable54(w) },
		func(w *strings.Builder) error { return ExampleRoutes(w, 0) },
		func(w *strings.Builder) error { return DeadlockDemos(w, 0) },
	} {
		var sb strings.Builder
		if err := fn(&sb); err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("table %d produced no output", i)
		}
	}
}

func TestTable52Values(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable52(&sb); err != nil {
		t.Fatal(err)
	}
	// Spot-check two rows against Table 5.2: f(0)=17, f(5)=23.
	out := sb.String()
	if !strings.Contains(out, "   0     1    17") {
		t.Errorf("missing row for node 0:\n%s", out)
	}
	if !strings.Contains(out, "   5     7    23") {
		t.Errorf("missing row for node 5:\n%s", out)
	}
}

func TestExampleRouteValues(t *testing.T) {
	var sb strings.Builder
	if err := ExampleRoutes(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"traffic 8",  // Fig 5.7 path (9..6) uses 8 channels
		"traffic 23", // Fig 5.11 X-first recount
		"Fig 6.13 dual-path, 6x6 mesh: traffic 33, max distance 18",
		"Fig 6.16 multi-path, 6x6 mesh: traffic 21, max distance 6",
		"Fig 6.17 fixed-path, 6x6 mesh: traffic 35, max distance 20",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("example output missing %q:\n%s", want, out)
		}
	}
}

// TestDynamicFigsQuick runs reduced versions of the dynamic figures and
// checks the headline shapes: the tree algorithm saturates before the
// path algorithms as destinations grow, and latency rises with load.
func TestDynamicFigsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation in -short mode")
	}
	o := DynamicQuick()

	f78 := Fig78LatencyVsLoadDouble(o)
	for _, name := range []string{"tree", "dual-path", "multi-path"} {
		s := f78.Get(name)
		if s == nil || len(s.X) == 0 {
			t.Fatalf("Fig 7.8: series %q empty", name)
		}
		if s.Y[0] < 6.4 {
			t.Errorf("Fig 7.8 %s: light-load latency %.2f below serialization floor", name, s.Y[0])
		}
	}
	// Latency grows (weakly) with load for each scheme.
	for _, s := range f78.Series {
		if len(s.Y) >= 2 && s.Y[len(s.Y)-1] < s.Y[0] {
			t.Errorf("Fig 7.8 %s: latency decreased under load (%.2f -> %.2f)",
				s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}

	f710 := Fig710LatencyVsLoadSingle(o)
	for _, s := range f710.Series {
		if len(s.X) == 0 {
			t.Fatalf("Fig 7.10: series %q empty", s.Name)
		}
	}
}
