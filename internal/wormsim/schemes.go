package wormsim

import (
	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// This file adapts the unified routing engine (internal/routing) to the
// simulator: a routing.Router plans each multicast and the adapter
// injects the plan. The named constructors below are retained for
// callers that start from a (topology, labeling) pair; new code should
// build routers through the routing registry and use RouteFuncOf.

// RouteFuncOf adapts a routing.Router to the simulator's RouteFunc.
// Wrap the router with routing.Cached to share plans across injections.
func RouteFuncOf(r routing.Router) RouteFunc {
	return func(k core.MulticastSet) Injection {
		p := r.PlanSet(k)
		return Injection{Paths: p.Paths, Trees: p.Trees}
	}
}

// FlatRouteFuncOf adapts a routing.FlatRouter to the simulator: plans are
// injected in dense CSR form (InjectFlat), skipping the per-injection
// position and depth maps of the route form. Behaviour is identical to
// RouteFuncOf over the same underlying router.
func FlatRouteFuncOf(r *routing.FlatRouter) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Flat: r.FlatSet(k)}
	}
}

// LiveRouteFuncOf adapts a routing.LiveRouter to the simulator's
// congestion-aware LiveRouteFunc.
func LiveRouteFuncOf(r routing.LiveRouter) LiveRouteFunc {
	return func(k core.MulticastSet, oracle dfr.ChannelOracle) Injection {
		p := r.PlanLive(k, oracle)
		return Injection{Paths: p.Paths, Trees: p.Trees}
	}
}

// schemeFunc builds the named registry scheme over (t, l) and adapts it;
// the constructors below only pair it with statically valid topologies,
// so a build error is a programming bug and panics.
func schemeFunc(name string, t topology.Topology, l labeling.Labeling, opts routing.Options) RouteFunc {
	r, err := routing.NewWithOptions(name, routing.NewStateWithLabeling(t, l), opts)
	if err != nil {
		panic(err)
	}
	return RouteFuncOf(r)
}

// DualPathScheme routes with the dual-path algorithm on single channels.
func DualPathScheme(t topology.Topology, l labeling.Labeling) RouteFunc {
	return schemeFunc("dual-path", t, l, routing.Options{})
}

// DualPathDoubleScheme is dual-path on the double-channel network.
func DualPathDoubleScheme(t topology.Topology, l labeling.Labeling) RouteFunc {
	return schemeFunc("dual-path-double", t, l, routing.Options{})
}

// MultiPathMeshScheme routes with the mesh multi-path algorithm on
// single channels.
func MultiPathMeshScheme(m *topology.Mesh2D, l labeling.Labeling) RouteFunc {
	return schemeFunc("multi-path", m, l, routing.Options{})
}

// MultiPathMeshDoubleScheme is mesh multi-path on double channels.
func MultiPathMeshDoubleScheme(m *topology.Mesh2D, l labeling.Labeling) RouteFunc {
	return schemeFunc("multi-path-double", m, l, routing.Options{})
}

// MultiPathCubeScheme routes with the hypercube multi-path algorithm.
func MultiPathCubeScheme(h *topology.Hypercube, l labeling.Labeling) RouteFunc {
	return schemeFunc("multi-path", h, l, routing.Options{})
}

// FixedPathScheme routes with the fixed-path algorithm on single
// channels.
func FixedPathScheme(t topology.Topology, l labeling.Labeling) RouteFunc {
	return schemeFunc("fixed-path", t, l, routing.Options{})
}

// DoubleChannelTreeScheme routes with the deadlock-free double-channel
// X-first tree algorithm (Section 6.2.1).
func DoubleChannelTreeScheme(m *topology.Mesh2D) RouteFunc {
	return schemeFunc("tree", m, labeling.NewMeshBoustrophedon(m), routing.Options{})
}

// NaiveTreeScheme routes with the single-channel X-first multicast tree —
// the deadlock-PRONE extension of Section 6.1, exposed so the simulator
// can demonstrate the deadlock the chapter opens with.
func NaiveTreeScheme(m *topology.Mesh2D) RouteFunc {
	return schemeFunc("naive-tree", m, labeling.NewMeshBoustrophedon(m), routing.Options{})
}

// AdaptiveDualPathScheme routes with congestion-adaptive dual-path
// routing (the Section 8.2 adaptive extension): hops avoid currently-busy
// channels while staying label-monotone, hence deadlock-free.
func AdaptiveDualPathScheme(t topology.Topology, l labeling.Labeling) LiveRouteFunc {
	r, err := routing.New("adaptive-dual-path", routing.NewStateWithLabeling(t, l))
	if err != nil {
		panic(err)
	}
	return LiveRouteFuncOf(r.(routing.LiveRouter))
}

// VirtualChannelScheme routes with the Section 8.2 virtual-channel
// extension: 2v label-monotone subnetworks over v channel copies per
// direction.
func VirtualChannelScheme(t topology.Topology, l labeling.Labeling, v int) RouteFunc {
	return schemeFunc("virtual-channel", t, l, routing.Options{VirtualChannels: v})
}
