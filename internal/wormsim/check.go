package wormsim

import "fmt"

// ckScratch is CheckInvariants' reusable state: the audit used to build
// maps of channel owners and multicast tallies on every call, which made
// -simcheck runs allocate per cycle and distorted profiles. All
// bookkeeping is now epoch-stamped slice scratch indexed by channel id,
// worm slot, and multicast slot; only an actual violation (which ends the
// run) allocates.
type ckScratch struct {
	ownerStamp []int64   // per channel: owner[] valid when == epoch
	owner      []wormRef // per channel: accounted holder this epoch
	wormStamp  []int64   // per worm slot: queue-membership marks
	mcStamp    []int64   // per multicast slot: tallied this epoch
	mcUndeliv  []int32   // per multicast slot: undelivered owed by live worms
	mcList     []int32   // multicasts tallied this epoch, first-seen order
	epoch      int64
}

// CheckInvariants audits the full simulator state and returns the first
// violation found, or nil. It is the safety net behind the -simcheck
// flag and the determinism tests: any bookkeeping drift between worms,
// channels, queues, and multicast accounting is caught at the cycle it
// happens instead of surfacing as silently wrong statistics.
//
// Invariants checked:
//
//   - accounting: the live-worm count matches inFlight;
//   - flit conservation: every worm's released/head/progress counters
//     are mutually consistent and within route bounds, so no flit is
//     created or destroyed by the pipeline arithmetic;
//   - channel ownership: every held channel is held by exactly the worm
//     whose state says it holds it (no double-occupancy, no orphans),
//     and failed channels are never owned;
//   - queue consistency: wait queues contain only live worms, at most
//     once each;
//   - delivery conservation: per-worm undelivered counts match the
//     delivery flags, and each multicast's remaining+lost+delivered
//     partitions its destination set.
func (n *Network) CheckInvariants() error {
	ck := &n.ck
	ck.epoch++
	base := ck.epoch
	if len(ck.ownerStamp) < len(n.chanOwner) {
		grow := len(n.chanOwner) - len(ck.ownerStamp)
		ck.ownerStamp = append(ck.ownerStamp, make([]int64, grow)...)
		ck.owner = append(ck.owner, make([]wormRef, grow)...)
	}
	if len(ck.wormStamp) < len(n.slots) {
		ck.wormStamp = append(ck.wormStamp, make([]int64, len(n.slots)-len(ck.wormStamp))...)
	}
	if len(ck.mcStamp) < len(n.mcSlots) {
		grow := len(n.mcSlots) - len(ck.mcStamp)
		ck.mcStamp = append(ck.mcStamp, make([]int64, grow)...)
		ck.mcUndeliv = append(ck.mcUndeliv, make([]int32, grow)...)
	}
	ck.mcList = ck.mcList[:0]
	live := 0
	for _, wi := range n.worms {
		w := &n.slots[wi]
		if w.done {
			continue
		}
		live++
		holds := func(id int32) error {
			if ck.ownerStamp[id] == base {
				return fmt.Errorf("wormsim: channel %d held by worms %d and %d", id, n.slots[ck.owner[id]].id, w.id)
			}
			ck.ownerStamp[id] = base
			ck.owner[id] = wi
			if n.chanOwner[id] == deadChan {
				return fmt.Errorf("wormsim: worm %d holds failed channel %d", w.id, id)
			}
			if n.chanOwner[id] != wi {
				return fmt.Errorf("wormsim: worm %d believes it holds channel %d owned by someone else", w.id, id)
			}
			return nil
		}
		if w.kind == pathWorm {
			if w.released < 0 || w.released > w.headIdx || w.headIdx > len(w.chans) {
				return fmt.Errorf("wormsim: worm %d counters out of order: released %d head %d len %d",
					w.id, w.released, w.headIdx, len(w.chans))
			}
			if w.progress < w.headIdx || w.progress > len(w.chans)+w.length {
				return fmt.Errorf("wormsim: worm %d flit miscount: progress %d head %d len %d length %d",
					w.id, w.progress, w.headIdx, len(w.chans), w.length)
			}
			for i := w.released; i < w.headIdx; i++ {
				if err := holds(w.chans[i]); err != nil {
					return err
				}
			}
		} else {
			if w.released < 0 || w.released > w.headIdx || w.headIdx > len(w.levels) {
				return fmt.Errorf("wormsim: tree worm %d counters out of order: released %d head %d levels %d",
					w.id, w.released, w.headIdx, len(w.levels))
			}
			if w.progress < w.headIdx || w.progress > len(w.levels)+w.length {
				return fmt.Errorf("wormsim: tree worm %d flit miscount: progress %d head %d levels %d length %d",
					w.id, w.progress, w.headIdx, len(w.levels), w.length)
			}
			for li := w.released; li < w.headIdx; li++ {
				for _, id := range w.levels[li].channels {
					if err := holds(id); err != nil {
						return err
					}
				}
			}
			if w.headIdx < len(w.levels) {
				l := &w.levels[w.headIdx]
				for i, id := range l.channels {
					if l.taken[i] {
						if err := holds(id); err != nil {
							return err
						}
					}
				}
			}
		}
		undeliv := 0
		for _, d := range w.deliveries {
			if !d.done {
				undeliv++
			}
		}
		if undeliv != w.undeliv {
			return fmt.Errorf("wormsim: worm %d undelivered count %d but %d deliveries pending",
				w.id, w.undeliv, undeliv)
		}
		if ck.mcStamp[w.mcast] != base {
			ck.mcStamp[w.mcast] = base
			ck.mcUndeliv[w.mcast] = 0
			ck.mcList = append(ck.mcList, w.mcast)
		}
		ck.mcUndeliv[w.mcast] += int32(undeliv)
	}
	if live != n.inFlight {
		return fmt.Errorf("wormsim: %d live worms but inFlight = %d", live, n.inFlight)
	}
	for id := range n.chanOwner {
		if o := n.chanOwner[id]; o >= 0 {
			if n.slots[o].done {
				return fmt.Errorf("wormsim: channel %d owned by retired worm %d", id, n.slots[o].id)
			}
			if ck.ownerStamp[id] != base || ck.owner[id] != o {
				return fmt.Errorf("wormsim: channel %d owner worm %d does not account for holding it",
					id, n.slots[o].id)
			}
		}
		// Queue-duplicate marks get a fresh epoch per channel (a worm may
		// legitimately wait on many channels at once).
		ck.epoch++
		for _, q := range n.chanWaiters(int32(id)) {
			if n.slots[q].done {
				return fmt.Errorf("wormsim: retired worm %d still queued on channel %d", n.slots[q].id, id)
			}
			if ck.wormStamp[q] == ck.epoch {
				return fmt.Errorf("wormsim: worm %d queued twice on channel %d", n.slots[q].id, id)
			}
			ck.wormStamp[q] = ck.epoch
		}
	}
	for _, mci := range ck.mcList {
		mc := &n.mcSlots[mci]
		if mc.remaining != int(ck.mcUndeliv[mci]) {
			return fmt.Errorf("wormsim: multicast remaining %d but live worms owe %d deliveries",
				mc.remaining, ck.mcUndeliv[mci])
		}
		if mc.remaining < 0 || mc.lost < 0 || mc.remaining+mc.lost > mc.size {
			return fmt.Errorf("wormsim: multicast accounting broken: size %d remaining %d lost %d",
				mc.size, mc.remaining, mc.lost)
		}
	}
	return nil
}
