// Package stats supplies the statistical plumbing of the performance study
// (Chapter 7): deterministic pseudo-random number generation for workload
// synthesis, running means, and the batch-means method with Student-t 95%
// confidence intervals used to decide when a dynamic simulation has run
// long enough ("all simulations were executed until the confidence
// interval was smaller than 5 percent of the mean, using 95 percent
// confidence intervals").
package stats

import (
	"math"
)

// Rand is a small, fast, deterministic PRNG (SplitMix64). The simulator
// and workload generators take an explicit *Rand so every experiment is
// reproducible from a seed; the standard library's global rand is never
// used.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed derives an independent stream seed from a base seed and a
// textual label (e.g. "Fig 7.8/dual-path/3"): FNV-1a over the label,
// mixed with the base through a SplitMix64 finalizer. Figure sweeps give
// every simulation point its own derived seed, so points are
// statistically decorrelated yet each remains a pure function of
// (base seed, label) — parallel and sequential sweep execution produce
// identical figures.
func DeriveSeed(base uint64, label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	z := base ^ h
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics for n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with the given
// mean (inter-arrival times of the multicast generators, Section 7.2).
func (r *Rand) ExpFloat64(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct uniform values from [0, n) excluding the
// values in excl. It panics when fewer than k values are available.
func (r *Rand) Sample(n, k int, excl ...int) []int {
	exclSet := make(map[int]bool, len(excl))
	for _, e := range excl {
		exclSet[e] = true
	}
	if n-len(exclSet) < k {
		panic("stats: sample larger than population")
	}
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if exclSet[v] || chosen[v] {
			continue
		}
		chosen[v] = true
		out = append(out, v)
	}
	return out
}

// Mean is a running mean/variance accumulator (Welford's algorithm).
type Mean struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Mean) N() int { return m.n }

// Value returns the sample mean (0 when empty).
func (m *Mean) Value() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// BatchMeans implements the batch-means method [58]: raw observations are
// grouped into fixed-size batches, each batch contributes one (roughly
// independent) batch mean, and a confidence interval is computed over the
// batch means.
type BatchMeans struct {
	batchSize int
	current   Mean
	batches   Mean
}

// NewBatchMeans returns an accumulator with the given batch size.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize < 1 {
		panic("stats: batch size must be positive")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one raw observation.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.N() == b.batchSize {
		b.batches.Add(b.current.Value())
		b.current = Mean{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return b.batches.N() }

// Observations returns the total number of raw observations recorded.
func (b *BatchMeans) Observations() int {
	return b.batches.N()*b.batchSize + b.current.N()
}

// Mean returns the grand mean over completed batches; if no batch has
// completed yet it falls back to the mean of the partial batch.
func (b *BatchMeans) Mean() float64 {
	if b.batches.N() == 0 {
		return b.current.Value()
	}
	return b.batches.Value()
}

// HalfWidth returns the 95% confidence half-interval over batch means, or
// +Inf when fewer than two batches are complete.
func (b *BatchMeans) HalfWidth() float64 {
	n := b.batches.N()
	if n < 2 {
		return math.Inf(1)
	}
	se := b.batches.StdDev() / math.Sqrt(float64(n))
	return tCritical95(n-1) * se
}

// Converged reports whether the 95% confidence interval is within frac of
// the mean (the paper uses frac = 0.05) and at least minBatches batches
// have completed.
func (b *BatchMeans) Converged(frac float64, minBatches int) bool {
	if b.batches.N() < minBatches || b.batches.N() < 2 {
		return false
	}
	m := b.Mean()
	if m == 0 {
		return true
	}
	return b.HalfWidth() <= frac*math.Abs(m)
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// sample by linear interpolation between closest ranks, the definition
// spreadsheet tools use. It panics on an empty sample; callers sort, so
// repeated quantiles of one sample cost one sort.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// tCritical95 returns the two-sided Student-t critical value at the 95%
// level for the given degrees of freedom, from a standard table with the
// normal limit beyond 120 dof.
func tCritical95(dof int) float64 {
	table := []float64{
		0,                                                             // dof 0 (unused)
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2-10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11-20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21-30
	}
	switch {
	case dof <= 0:
		return math.Inf(1)
	case dof < len(table):
		return table[dof]
	case dof <= 40:
		return 2.021
	case dof <= 60:
		return 2.000
	case dof <= 120:
		return 1.980
	default:
		return 1.960
	}
}
