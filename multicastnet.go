// Package multicastnet is a Go implementation of the multicast
// communication system of Xiaola Lin's dissertation "Multicast
// Communication in Multicomputer Networks" (Michigan State University,
// 1991; ICPP 1990): multicast routing models for wormhole-switched
// multicomputer networks, the Chapter 5 heuristic routing algorithms, the
// Chapter 6 deadlock-free multicast wormhole routing schemes, and the
// flit-level network simulator behind the Chapter 7 performance study.
//
// The package is a facade over the implementation packages:
//
//	topology    host graphs (2D/3D mesh, hypercube, k-ary n-cube)
//	labeling    Hamiltonian-path labelings and Hamilton cycles
//	core        multicast models (path/cycle/tree/star) and routing function R
//	heuristics  sorted MP/MC, greedy ST, X-first and divided-greedy MT, baselines
//	dfr         deadlock-free dual-path/multi-path/fixed-path/tree routing, CDG checks
//	wormsim     flit-clock wormhole network simulator
//	experiments the Chapter 7 tables and figures
//
// The System type bundles a topology with its canonical labeling and
// Hamilton cycle and exposes every routing scheme with one call; see
// examples/quickstart.
package multicastnet

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/labeling"
	"multicastnet/internal/mcastsvc"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// Re-exported fundamental types.
type (
	// NodeID identifies a node of a topology.
	NodeID = topology.NodeID
	// Topology is the host-graph interface.
	Topology = topology.Topology
	// Mesh2D is the two-dimensional mesh.
	Mesh2D = topology.Mesh2D
	// Mesh3D is the three-dimensional mesh.
	Mesh3D = topology.Mesh3D
	// Hypercube is the binary n-cube.
	Hypercube = topology.Hypercube
	// KAryNCube is the general k-ary n-cube.
	KAryNCube = topology.KAryNCube

	// MulticastSet is a source plus destination set.
	MulticastSet = core.MulticastSet
	// Path is a multicast path (Definition 3.1).
	Path = core.Path
	// Cycle is a multicast cycle (Definition 3.2).
	Cycle = core.Cycle
	// Star is the deadlock-free multicast star route.
	Star = dfr.Star
	// TreeRoute is a tree-shaped wormhole route.
	TreeRoute = dfr.TreeRoute
	// Channel is a unidirectional network channel.
	Channel = dfr.Channel
	// STResult is a multicast tree routing pattern with traffic and
	// delivery metrics.
	STResult = heuristics.STResult

	// Service is the system-supported multicast service of Section 8.2:
	// multicast, broadcast, barrier, and reduction primitives over the
	// deadlock-free routing layer.
	Service = mcastsvc.Service
	// ServiceConfig parameterizes NewService.
	ServiceConfig = mcastsvc.Config
	// Group is a process group for the service's primitives.
	Group = mcastsvc.Group
	// Cost is the routing-level cost of one service primitive.
	Cost = mcastsvc.Cost
	// Measured is a simulator-measured primitive execution.
	Measured = mcastsvc.Measured

	// SimConfig configures a dynamic wormhole simulation.
	SimConfig = wormsim.Config
	// SimResult is the outcome of a dynamic simulation.
	SimResult = wormsim.Result
	// RouteFunc routes multicast sets for the simulator.
	RouteFunc = wormsim.RouteFunc
	// LiveRouteFunc routes with sight of live channel occupancy.
	LiveRouteFunc = wormsim.LiveRouteFunc
	// Injection is a routed multicast handed to the simulator.
	Injection = wormsim.Injection
)

// NewMesh2D returns a width x height mesh topology.
func NewMesh2D(width, height int) *Mesh2D { return topology.NewMesh2D(width, height) }

// NewMesh3D returns a 3D mesh topology.
func NewMesh3D(w, h, d int) *Mesh3D { return topology.NewMesh3D(w, h, d) }

// NewHypercube returns an n-cube topology.
func NewHypercube(n int) *Hypercube { return topology.NewHypercube(n) }

// NewKAryNCube returns a k-ary n-cube topology.
func NewKAryNCube(k, n int) *KAryNCube { return topology.NewKAryNCube(k, n) }

// NewMulticastSet validates and builds a multicast set over t.
func NewMulticastSet(t Topology, source NodeID, dests []NodeID) (MulticastSet, error) {
	return core.NewMulticastSet(t, source, dests)
}

// Simulate runs a dynamic wormhole simulation (Section 7.2).
func Simulate(cfg SimConfig) (SimResult, error) { return wormsim.Run(cfg) }

// Service scheme selectors (see mcastsvc.Scheme).
const (
	ServiceDualPath  = mcastsvc.DualPathScheme
	ServiceMultiPath = mcastsvc.MultiPathScheme
	ServiceFixedPath = mcastsvc.FixedPathScheme
)

// NewService builds the multicast service over a topology.
func NewService(cfg ServiceConfig) (*Service, error) { return mcastsvc.New(cfg) }

// System bundles a topology with its canonical Hamiltonian labeling
// (Section 6.2.2 for meshes, 6.3 for hypercubes) and Hamilton cycle
// (Section 5.1), giving one handle on every routing algorithm of the
// dissertation. Meshes and hypercubes are supported.
type System struct {
	topo   topology.Topology
	mesh   *topology.Mesh2D    // nil unless a 2D mesh
	mesh3d *topology.Mesh3D    // nil unless a 3D mesh
	cube   *topology.Hypercube // nil unless a hypercube
	label  labeling.Labeling
	ham    *labeling.HamiltonCycle
}

// NewMeshSystem builds a System over a width x height mesh. The sorted
// MP/MC algorithms need a Hamilton cycle, which exists only when at least
// one dimension is even; for odd x odd meshes the System is still usable
// for every other algorithm and SortedMP returns an error.
func NewMeshSystem(width, height int) (*System, error) {
	m := topology.NewMesh2D(width, height)
	s := &System{topo: m, mesh: m, label: labeling.NewMeshBoustrophedon(m)}
	if c, err := labeling.MeshHamiltonCycle(m); err == nil {
		s.ham = c
	}
	return s, nil
}

// NewCubeSystem builds a System over an n-cube.
func NewCubeSystem(n int) (*System, error) {
	h := topology.NewHypercube(n)
	c, err := labeling.CubeHamiltonCycle(h)
	if err != nil {
		return nil, err
	}
	return &System{topo: h, cube: h, label: labeling.NewHypercubeGray(h), ham: c}, nil
}

// NewMesh3DSystem builds a System over a 3D mesh (the Section 4.3
// extension): the path-based deadlock-free schemes and the baselines are
// available; the mesh-specific tree algorithms and the sorted MP/MC
// algorithms (which need a Hamilton cycle construction) are not.
func NewMesh3DSystem(width, height, depth int) (*System, error) {
	m := topology.NewMesh3D(width, height, depth)
	return &System{topo: m, mesh3d: m, label: labeling.NewMesh3DBoustrophedon(m)}, nil
}

// Topology returns the underlying host graph.
func (s *System) Topology() Topology { return s.topo }

// Set builds a validated multicast set.
func (s *System) Set(source NodeID, dests ...NodeID) (MulticastSet, error) {
	return core.NewMulticastSet(s.topo, source, dests)
}

// SortedMP runs the sorted multicast path algorithm (Section 5.1).
func (s *System) SortedMP(k MulticastSet) (Path, error) {
	if s.ham == nil {
		return Path{}, fmt.Errorf("multicastnet: %s has no Hamilton cycle for sorted MP", s.topo.Name())
	}
	return heuristics.SortedMP(s.topo, s.ham, k), nil
}

// SortedMC runs the sorted multicast cycle algorithm (Section 5.1).
func (s *System) SortedMC(k MulticastSet) (Cycle, error) {
	if s.ham == nil {
		return Cycle{}, fmt.Errorf("multicastnet: %s has no Hamilton cycle for sorted MC", s.topo.Name())
	}
	return heuristics.SortedMC(s.topo, s.ham, k), nil
}

// GreedyST runs the greedy Steiner tree algorithm (Section 5.2). The
// constant-time shortest-path-region primitive it needs exists on 2D
// meshes, 3D meshes, and hypercubes.
func (s *System) GreedyST(k MulticastSet) (*STResult, error) {
	switch {
	case s.mesh != nil:
		return heuristics.GreedyST(s.mesh, k), nil
	case s.cube != nil:
		return heuristics.GreedyST(s.cube, k), nil
	case s.mesh3d != nil:
		return heuristics.GreedyST(s.mesh3d, k), nil
	default:
		return nil, fmt.Errorf("multicastnet: greedy ST unsupported on %s", s.topo.Name())
	}
}

// XFirstMT runs the X-first multicast tree algorithm (mesh only).
func (s *System) XFirstMT(k MulticastSet) (*STResult, error) {
	if s.mesh == nil {
		return nil, fmt.Errorf("multicastnet: X-first MT requires a mesh")
	}
	return heuristics.XFirstMT(s.mesh, k), nil
}

// DividedGreedyMT runs the divided greedy multicast tree algorithm (mesh
// only).
func (s *System) DividedGreedyMT(k MulticastSet) (*STResult, error) {
	if s.mesh == nil {
		return nil, fmt.Errorf("multicastnet: divided greedy MT requires a mesh")
	}
	return heuristics.DividedGreedyMT(s.mesh, k), nil
}

// XYZFirstMT runs the dimension-ordered multicast tree on a 3D mesh.
func (s *System) XYZFirstMT(k MulticastSet) (*STResult, error) {
	if s.mesh3d == nil {
		return nil, fmt.Errorf("multicastnet: XYZ-first MT requires a 3D mesh")
	}
	return heuristics.XYZFirstMT(s.mesh3d, k), nil
}

// LEN runs the Lan–Esfahanian–Ni multicast tree baseline (cube only).
func (s *System) LEN(k MulticastSet) (*STResult, error) {
	if s.cube == nil {
		return nil, fmt.Errorf("multicastnet: LEN requires a hypercube")
	}
	return heuristics.LEN(s.cube, k), nil
}

// DualPath runs the deadlock-free dual-path algorithm (Section 6.2.2/6.3).
func (s *System) DualPath(k MulticastSet) Star { return dfr.DualPath(s.topo, s.label, k) }

// MultiPath runs the deadlock-free multi-path algorithm.
func (s *System) MultiPath(k MulticastSet) (Star, error) {
	switch {
	case s.mesh != nil:
		return dfr.MultiPathMesh(s.mesh, s.label, k), nil
	case s.cube != nil:
		return dfr.MultiPathCube(s.cube, s.label, k), nil
	default:
		return Star{}, fmt.Errorf("multicastnet: multi-path unsupported on %s", s.topo.Name())
	}
}

// FixedPath runs the deadlock-free fixed-path algorithm.
func (s *System) FixedPath(k MulticastSet) Star { return dfr.FixedPath(s.topo, s.label, k) }

// DoubleChannelXFirst runs the deadlock-free tree scheme (mesh only).
func (s *System) DoubleChannelXFirst(k MulticastSet) ([]TreeRoute, error) {
	if s.mesh == nil {
		return nil, fmt.Errorf("multicastnet: double-channel X-first requires a mesh")
	}
	return dfr.DoubleChannelXFirst(s.mesh, k), nil
}

// MultiUnicastTraffic returns the traffic of the multiple one-to-one
// baseline.
func (s *System) MultiUnicastTraffic(k MulticastSet) int {
	return heuristics.MultiUnicastTraffic(s.topo, k)
}

// DualPathRouteFunc adapts the dual-path scheme for Simulate.
func (s *System) DualPathRouteFunc() RouteFunc {
	return wormsim.DualPathScheme(s.topo, s.label)
}

// MultiPathRouteFunc adapts the multi-path scheme for Simulate.
func (s *System) MultiPathRouteFunc() (RouteFunc, error) {
	switch {
	case s.mesh != nil:
		return wormsim.MultiPathMeshScheme(s.mesh, s.label), nil
	case s.cube != nil:
		return wormsim.MultiPathCubeScheme(s.cube, s.label), nil
	default:
		return nil, fmt.Errorf("multicastnet: multi-path unsupported on %s", s.topo.Name())
	}
}

// FixedPathRouteFunc adapts the fixed-path scheme for Simulate.
func (s *System) FixedPathRouteFunc() RouteFunc {
	return wormsim.FixedPathScheme(s.topo, s.label)
}

// AdaptiveDualPathRouteFunc adapts the congestion-adaptive dual-path
// extension for Simulate: assign the result to SimConfig.LiveRoute.
func (s *System) AdaptiveDualPathRouteFunc() LiveRouteFunc {
	return wormsim.AdaptiveDualPathScheme(s.topo, s.label)
}

// TreeRouteFunc adapts the double-channel X-first tree scheme for
// Simulate (mesh only).
func (s *System) TreeRouteFunc() (RouteFunc, error) {
	if s.mesh == nil {
		return nil, fmt.Errorf("multicastnet: tree scheme requires a mesh")
	}
	return wormsim.DoubleChannelTreeScheme(s.mesh), nil
}

// VirtualChannelPath runs the Section 8.2 virtual-channel extension:
// destinations are spread over v channel copies, giving up to 2v
// label-monotone paths. v = 1 is dual-path routing.
func (s *System) VirtualChannelPath(k MulticastSet, v int) Star {
	return dfr.VirtualChannelPath(s.topo, s.label, k, v)
}

// VirtualChannelRouteFunc adapts the virtual-channel scheme for Simulate.
func (s *System) VirtualChannelRouteFunc(v int) RouteFunc {
	return wormsim.VirtualChannelScheme(s.topo, s.label, v)
}

// VerifyDeadlockFree builds the complete unicast channel dependency graph
// of the system's routing function and returns an error naming a channel
// cycle if one exists (it never does for the canonical labelings; the
// check is exposed so users extending the library with new labelings can
// validate them).
func (s *System) VerifyDeadlockFree() error {
	if cyc := dfr.UnicastCDG(s.topo, s.label).FindCycle(); cyc != nil {
		return fmt.Errorf("multicastnet: channel dependency cycle %v", cyc)
	}
	return nil
}
