package labeling

import (
	"fmt"

	"multicastnet/internal/topology"
)

// KAryNCubeSerpentine is a Hamiltonian labeling for the general k-ary
// n-cube of Section 2.1.3: the mixed-radix generalization of the mesh
// boustrophedon. Digit d_0 sweeps up and down alternately as the higher
// digits advance through their own serpentine, so consecutive labels
// differ by one step in exactly one dimension. Wraparound links are
// simply not used by the label order (a mesh path is also a torus path),
// so the induced high/low channel networks are acyclic and the dual-path
// and fixed-path schemes of Chapter 6 carry over to tori unchanged.
type KAryNCubeSerpentine struct {
	Cube *topology.KAryNCube
}

// NewKAryNCubeSerpentine returns the serpentine labeling of c.
func NewKAryNCubeSerpentine(c *topology.KAryNCube) *KAryNCubeSerpentine {
	return &KAryNCubeSerpentine{Cube: c}
}

// N implements Labeling.
func (l *KAryNCubeSerpentine) N() int { return l.Cube.Nodes() }

// Label implements Labeling. Working from the most significant digit
// down, each digit is reflected when the (label-order) prefix above it is
// odd — the mixed-radix reflected code, the radix-k generalization of the
// binary-reflected Gray decode used for hypercubes.
func (l *KAryNCubeSerpentine) Label(v topology.NodeID) int {
	digits := l.Cube.Digits(v)
	k := l.Cube.K
	label := 0
	prefix := 0 // label-order value of the digits above the current one
	for i := l.Cube.N - 1; i >= 0; i-- {
		d := digits[i]
		if prefix%2 == 1 {
			d = k - 1 - d
		}
		label = label*k + d
		prefix = prefix*k + d
	}
	return label
}

// At implements Labeling: the inverse mixed-radix reflection.
func (l *KAryNCubeSerpentine) At(label int) topology.NodeID {
	if label < 0 || label >= l.N() {
		panic(fmt.Sprintf("labeling: label %d out of range [0,%d)", label, l.N()))
	}
	k := l.Cube.K
	n := l.Cube.N
	// Extract label digits, most significant first.
	labDigits := make([]int, n)
	rest := label
	for i := 0; i < n; i++ {
		labDigits[i] = rest % k
		rest /= k
	}
	digits := make([]int, n)
	prefix := 0
	for i := n - 1; i >= 0; i-- {
		d := labDigits[i]
		if prefix%2 == 1 {
			digits[i] = k - 1 - d
		} else {
			digits[i] = d
		}
		prefix = prefix*k + d
	}
	return l.Cube.FromDigits(digits)
}
