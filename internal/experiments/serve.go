package experiments

import (
	"fmt"
	"runtime"

	"multicastnet/internal/routing"
	"multicastnet/internal/sched"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
	"multicastnet/internal/workload"
)

// The serving study: aggregate multicast throughput and completion-latency
// percentiles of the window-batched scheduling service (internal/sched) on
// the 64x64 mesh under dual-path routing. A Poisson stream of requests
// drawn from a hot group pool is batched into admission windows, planned
// through a shared plan cache, congestion-packed, and simulated to
// completion in wormsim. Two policies run over identical request streams:
//
//   - fifo:  Budget 0 — every planned request is injected at the next
//     window close, no load accounting (the pre-scheduler baseline);
//   - sched: congestion+dilation-aware packing under a channel-load
//     budget — requests that would push the window past the budget are
//     deferred to a later window.
//
// The study sweeps offered load at a fixed window and window size at the
// highest load. Every figure and the points table are pure functions of
// the seed: byte-identical at any -parallel (sweep workers and planner
// workers) and -shards (simulator shard count) value.

// ServeOptions configure the serving study.
type ServeOptions struct {
	Seed uint64
	// Parallel is the sweep worker count; it also sets the planner worker
	// count inside each service. Figures are byte-identical for every
	// value.
	Parallel int
	// Shards runs each simulation with the sharded parallel engine; 0 or
	// 1 selects serial. Outputs are byte-identical either way.
	Shards int

	Requests  int       // requests offered per point
	Groups    int       // multicast group pool size
	AvgDests  int       // destination count is uniform in [1, 2*AvgDests-1]
	Flits     int       // message length
	Budget    int32     // sched policy channel-load budget
	Window    int64     // admission window of the load sweep, cycles
	Loads     []float64 // mean inter-arrival cycles, high to low load
	Windows   []int64   // window sweep values, run at the highest load
	MaxCycles int64

	// Workload, when non-empty, names a workload profile (see
	// WorkloadModelNames) that replaces the built-in group pool with a
	// generated stream at each point's inter-arrival gap. Empty keeps
	// the legacy pool — the committed serving figures.
	Workload string
}

// ServeDefaults are the committed-figure settings. Budget 220 sits ~70
// above the dual-path dilation of the 64x64 mesh (~150): most of a window
// admits, and the congestion tail is deferred rather than injected.
func ServeDefaults() ServeOptions {
	return ServeOptions{
		Seed:      1990,
		Requests:  3000,
		Groups:    512,
		AvgDests:  4,
		Flits:     32,
		Budget:    220,
		Window:    256,
		Loads:     []float64{8, 4, 2, 1, 0.5},
		Windows:   []int64{64, 256, 1024},
		MaxCycles: 5_000_000,
	}
}

// ServeQuick shrinks the request and point budgets for smoke runs.
func ServeQuick() ServeOptions {
	o := ServeDefaults()
	o.Requests = 600
	o.Groups = 128
	o.Loads = []float64{4, 1}
	o.Windows = []int64{64, 256}
	o.MaxCycles = 2_000_000
	return o
}

// ServePoint is one (policy, load, window) run.
type ServePoint struct {
	Policy           string
	MeanInterarrival float64
	WindowCycles     int64
	sched.ServeResult
}

// ServeStudyResult is the full study output; every field except
// GOMAXPROCS is deterministic.
type ServeStudyResult struct {
	GOMAXPROCS int
	// Load sweep, x = offered load (requests per 1000 cycles).
	Throughput *stats.Figure
	P99        *stats.Figure
	// Window sweep at the highest load, x = window cycles.
	WindowThroughput *stats.Figure
	WindowP99        *stats.Figure
	Points           []ServePoint
}

type servePolicy struct {
	name   string
	budget int32
}

// ServeStudy runs the full sweep. Each point builds its own plan cache
// and service over the shared routing state, so points are independent
// and safe to run on any sweep worker.
func ServeStudy(o ServeOptions) ServeStudyResult {
	topo := topology.NewMesh2D(64, 64)
	st, err := routing.SharedState(topo)
	if err != nil {
		panic(err)
	}
	out := ServeStudyResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Throughput: &stats.Figure{ID: "Serve throughput",
			Title:  "Delivered multicast throughput vs offered load (64x64 mesh, dual-path, window-batched service)",
			XLabel: "offered load (requests per 1000 cycles)", YLabel: "completed multicasts per 1000 cycles"},
		P99: &stats.Figure{ID: "Serve p99",
			Title:  "P99 request-to-completion latency vs offered load (queueing included)",
			XLabel: "offered load (requests per 1000 cycles)", YLabel: "p99 completion latency (cycles)"},
		WindowThroughput: &stats.Figure{ID: "Serve window throughput",
			Title:  "Delivered throughput vs admission window size (highest offered load)",
			XLabel: "admission window (cycles)", YLabel: "completed multicasts per 1000 cycles"},
		WindowP99: &stats.Figure{ID: "Serve window p99",
			Title:  "P99 completion latency vs admission window size (highest offered load)",
			XLabel: "admission window (cycles)", YLabel: "p99 completion latency (cycles)"},
	}

	policies := []servePolicy{{"fifo", 0}, {"sched", o.Budget}}
	run := func(p servePolicy, ia float64, window int64, label string) sched.ServeResult {
		cache := routing.NewPlanCache(0)
		r, err := routing.New("dual-path", st)
		if err != nil {
			panic(err)
		}
		scfg := sched.ServeConfig{
			Service: sched.Config{
				Router:  routing.Flat(r, cache),
				Budget:  p.budget,
				Workers: o.Parallel,
			},
			Requests:         o.Requests,
			Groups:           o.Groups,
			AvgDests:         o.AvgDests,
			MeanInterarrival: ia,
			WindowCycles:     window,
			Flits:            o.Flits,
			Shards:           o.Shards,
			Seed:             stats.DeriveSeed(o.Seed, label),
			PoolSeed:         stats.DeriveSeed(o.Seed, "serve/pool"),
			MaxCycles:        o.MaxCycles,
			Cache:            cache,
		}
		if o.Workload != "" {
			spec, err := workloadStudySpec(o.Workload, o.Requests, o.Groups,
				o.AvgDests, ia, 1.2)
			if err != nil {
				panic(err)
			}
			src, err := workload.New(topo, spec, stats.DeriveSeed(o.Seed, label))
			if err != nil {
				panic(err)
			}
			scfg.Workload = src
		}
		return sched.Serve(scfg)
	}

	var points []SweepPoint
	results := make([]ServePoint, 2*(len(o.Loads)+len(o.Windows)))
	n := 0
	for _, p := range policies {
		ts := out.Throughput.AddSeries(p.name)
		ls := out.P99.AddSeries(p.name)
		for _, ia := range o.Loads {
			p, ia, slot := p, ia, n
			// The label omits the policy: fifo and sched run over the
			// identical request stream, so each load is a paired
			// comparison.
			label := fmt.Sprintf("serve/load/%g", ia)
			points = append(points, SweepPoint{
				Run: func() any { return run(p, ia, o.Window, label) },
				Commit: func(v any) {
					res := v.(sched.ServeResult)
					results[slot] = ServePoint{p.name, ia, o.Window, res}
					ts.Add(1000/ia, res.ThroughputPerKCycle)
					ls.Add(1000/ia, res.P99Latency)
				},
			})
			n++
		}
	}
	// Seed labels use the highest offered load = smallest inter-arrival.
	peak := o.Loads[0]
	for _, ia := range o.Loads {
		if ia < peak {
			peak = ia
		}
	}
	for _, p := range policies {
		ts := out.WindowThroughput.AddSeries(p.name)
		ls := out.WindowP99.AddSeries(p.name)
		for _, w := range o.Windows {
			p, w, slot := p, w, n
			label := fmt.Sprintf("serve/window/%d", w)
			points = append(points, SweepPoint{
				Run: func() any { return run(p, peak, w, label) },
				Commit: func(v any) {
					res := v.(sched.ServeResult)
					results[slot] = ServePoint{p.name, peak, w, res}
					ts.Add(float64(w), res.ThroughputPerKCycle)
					ls.Add(float64(w), res.P99Latency)
				},
			})
			n++
		}
	}
	RunSweep(points, o.Parallel)
	out.Points = results
	return out
}
