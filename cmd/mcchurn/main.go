// Command mcchurn runs the churn study: online re-planning under a
// continuous fault/repair delta stream on a 64x64 mesh and a 4096-node
// hypercube. It measures plan-cache hit rate under targeted invalidation
// versus the nuke-everything baseline (committed figures), per-delta
// service-restoration latency for the incremental LiveRouter path versus
// a full masked-state rebuild (churn_study.txt), and drives a dynamic
// wormhole simulation whose mid-run fault epochs re-plan through the same
// delta path (churn_sim.txt).
//
// Every committed output except the wall-clock timings in churn_study.txt
// is byte-identical at any -parallel and -shards value.
//
// Usage:
//
//	mcchurn -out results            # write churn_hitrate/churn_evictions (txt+csv), churn_sim.txt, churn_study.txt
//	mcchurn -quick                  # reduced stream and cycle budgets
//	mcchurn -parallel 4 -shards 4   # worker/shard counts (figures unchanged)
//	mcchurn -csv                    # emit CSV on stdout instead of files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"multicastnet/internal/experiments"
	"multicastnet/internal/profiling"
	"multicastnet/internal/stats"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced stream and cycle budgets")
	seed := flag.Uint64("seed", 1990, "study seed")
	csv := flag.Bool("csv", false, "emit CSV on stdout instead of writing files")
	parallel := flag.Int("parallel", 0, "sweep workers for the counting passes (0 = GOMAXPROCS, 1 = sequential)")
	shards := flag.Int("shards", 0, "step the simulator runs with the sharded engine (0/1 = serial; outputs are byte-identical)")
	simcheck := flag.Bool("simcheck", false, "run wormsim invariant checks inside the simulator runs")
	prof := profiling.AddFlags()
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	opts := experiments.ChurnDefaults()
	if *quick {
		opts = experiments.ChurnQuick()
	}
	opts.Seed = *seed
	opts.Parallel = *parallel
	opts.Shards = *shards
	opts.Check = *simcheck

	res := experiments.ChurnStudy(opts)

	if *csv {
		for _, fig := range []*stats.Figure{res.HitRate, res.Evictions} {
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, fig := range []*stats.Figure{res.HitRate, res.Evictions} {
		base := strings.ReplaceAll(strings.ToLower(fig.ID), " ", "_")
		writeFigure(*out, base+".txt", fig, false)
		writeFigure(*out, base+".csv", fig, true)
		fmt.Printf("wrote %s\n", base)
	}
	writeSim(*out, res)
	fmt.Printf("wrote churn_sim.txt\n")
	writeSummary(*out, res)
	fmt.Printf("wrote churn_study.txt (gomaxprocs=%d)\n", res.GOMAXPROCS)
}

// writeSim records the delta-driven simulator runs' delivery accounting —
// deterministic fields only, so the file is byte-identical at any
// -parallel/-shards combination.
func writeSim(dir string, res experiments.ChurnResult) {
	f, err := os.Create(filepath.Join(dir, "churn_sim.txt"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "Delta-driven dynamic simulation under churn\n")
	fmt.Fprintf(f, "Mid-run fault epochs kill channels inside the wormhole engine and\n")
	fmt.Fprintf(f, "re-plan through one fault.LiveRouter advanced by the same deltas\n")
	fmt.Fprintf(f, "(fault.SimSchedule). Deterministic at any shard count.\n\n")
	fmt.Fprintf(f, "%-14s %7s %9s %10s %7s %7s %9s %10s\n",
		"workload", "epochs", "sent", "delivered", "lost", "killed", "cycles", "deadlock")
	for _, s := range res.Sims {
		fmt.Fprintf(f, "%-14s %7d %9d %10d %7d %7d %9d %10v\n",
			s.Workload, s.Epochs, s.MulticastsSent, s.Delivered, s.Lost,
			s.WormsKilled, s.Cycles, s.Deadlocked)
	}
}

// writeSummary records the wall-clock comparison; timings vary run to
// run, so this file is excluded from the byte-identity check.
func writeSummary(dir string, res experiments.ChurnResult) {
	f, err := os.Create(filepath.Join(dir, "churn_study.txt"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "Churn study: incremental delta application vs full rebuild\n")
	fmt.Fprintf(f, "gomaxprocs: %d\n", res.GOMAXPROCS)
	fmt.Fprintf(f, "cpus: %d\n\n", runtime.NumCPU())
	fmt.Fprintf(f, "Per delta, both paths restore full working-set service: the\n")
	fmt.Fprintf(f, "incremental path patches the live state in O(|delta|) and re-plans\n")
	fmt.Fprintf(f, "only the flows targeted invalidation evicted; the rebuild path\n")
	fmt.Fprintf(f, "reconstructs the masked topology and routing state from scratch\n")
	fmt.Fprintf(f, "(memo bypassed) and re-plans every flow — the pre-refactor cost of\n")
	fmt.Fprintf(f, "any mask change.\n\n")
	fmt.Fprintf(f, "%-14s %6s %6s %12s %12s %8s %10s %10s\n",
		"workload", "steps", "flows", "inc_ms", "rebuild_ms", "speedup", "hit_tgt", "hit_nuke")
	for _, t := range res.Timings {
		fmt.Fprintf(f, "%-14s %6d %6d %12.2f %12.2f %8.1f %10.3f %10.3f\n",
			t.Workload, t.Steps, t.WorkingSet, t.IncrementalMs, t.RebuildMs,
			t.Speedup, t.TargetedHitRate, t.NukeHitRate)
	}
	fmt.Fprintf(f, "\nhit_tgt/hit_nuke are the final cumulative cache hit rates under\n")
	fmt.Fprintf(f, "targeted and nuke-everything invalidation (also plotted step by step\n")
	fmt.Fprintf(f, "in churn_hitrate); they are deterministic, the millisecond columns\n")
	fmt.Fprintf(f, "are wall-clock and vary run to run.\n")
}

func writeFigure(dir, name string, fig *stats.Figure, csv bool) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if csv {
		err = fig.WriteCSV(f)
	} else {
		err = fig.WriteTable(f)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcchurn:", err)
	os.Exit(1)
}
