package fault

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
)

// LiveRouter is the delta-driven counterpart of Router: one degraded-mode
// router that absorbs fault AND repair deltas in O(|delta|) and keeps
// planning, instead of being rebuilt per mask. It is built once over the
// healthy state; ApplyDelta patches the live masked graph in place
// (routing.LiveState), updates the cumulative mask, and — when a plan
// cache is attached — evicts exactly the cached plans that traverse
// killed channels.
//
// Plans at any epoch are byte-identical to a static NewRouter built from
// scratch with the same active mask (the churn-equivalence tests pin
// this). When repairs drain the mask completely, planning bypasses the
// degraded machinery and is byte-identical to the healthy scheme.
//
// Concurrency follows the epoch protocol: ApplyDelta is a write and must
// be externally synchronized against planning; within an epoch any number
// of goroutines may plan concurrently.
type LiveRouter struct {
	Router
	ls    *routing.LiveState
	cache *routing.PlanCache
	cdg   *dfr.IncrementalCDG

	replans       uint64 // PlanDegradedCached calls that missed the cache
	cachedServes  uint64 // calls served straight from the cache
	lastEvicted   int    // entries evicted by the most recent delta
	totalEvicted  int
	auditMaxClass int
}

// NewLiveRouter builds delta-driven degraded routing for the named
// registry scheme over the healthy state. The router starts at epoch 0
// with no active faults.
func NewLiveRouter(scheme string, healthy *routing.State, opts routing.Options) (*LiveRouter, error) {
	hr, err := routing.NewWithOptions(scheme, healthy, opts)
	if err != nil {
		return nil, err
	}
	ls := routing.NewLiveState(healthy)
	base, treeFam := repairBaseFor(scheme, opts)
	lr := &LiveRouter{ls: ls}
	lr.Router = Router{
		scheme:  scheme,
		healthy: healthy,
		// The identity is epoch-independent on purpose: cached plans
		// survive deltas (targeted invalidation handles correctness), so
		// unaffected traffic keeps its cache hits across the churn.
		id:         hr.ID() + "@live",
		mask:       NewMask(healthy.Topology()),
		masked:     ls.Live(),
		mstate:     ls.State(),
		repairBase: base,
		treeFamily: treeFam,
	}
	// Inner scheme and fallbacks are built ONCE over the live state; the
	// scheme kernels read adjacency through it at plan time, so every
	// applied delta is visible to them without rebuild.
	if inner, err := routing.NewWithOptions(scheme, ls.State(), opts); err == nil {
		lr.inner = inner
	}
	for _, fb := range []string{"dual-path", "multi-path"} {
		if fb == scheme {
			continue
		}
		if fr, err := routing.New(fb, ls.State()); err == nil {
			lr.fallbacks = append(lr.fallbacks, fr)
		}
	}
	return lr, nil
}

// AttachCache gives the router a plan cache consulted by
// PlanDegradedCached and kept consistent by ApplyDelta via targeted
// invalidation. The cache may be shared with other routers.
func (lr *LiveRouter) AttachCache(c *routing.PlanCache) { lr.cache = c }

// Cache returns the attached plan cache, or nil.
func (lr *LiveRouter) Cache() *routing.PlanCache { return lr.cache }

// EnableCDGAudit turns on the incremental channel-dependency audit:
// every freshly planned multicast's dependencies are added to an
// IncrementalCDG and acyclicity is re-verified from the changed classes
// only. maxClass bounds the channel classes the scheme can emit (used to
// seed the dirty frontier from deltas). A detected cycle panics — it
// would mean the degraded-planning invariant is broken.
func (lr *LiveRouter) EnableCDGAudit(maxClass int) {
	lr.cdg = dfr.NewIncrementalCDG()
	lr.auditMaxClass = maxClass
}

// CDG returns the audit CDG, or nil when auditing is off.
func (lr *LiveRouter) CDG() *dfr.IncrementalCDG { return lr.cdg }

// LiveState returns the underlying incremental routing state.
func (lr *LiveRouter) LiveState() *routing.LiveState { return lr.ls }

// Epoch returns the number of deltas applied so far.
func (lr *LiveRouter) Epoch() uint64 { return lr.ls.Epoch() }

// Mask returns the cumulative active-fault mask. Callers must treat it
// as read-only; ApplyDelta is the only mutator.
func (lr *LiveRouter) Mask() *Mask { return lr.mask }

// DeltaReport summarizes one ApplyDelta.
type DeltaReport struct {
	// Epoch is the state's epoch after the delta.
	Epoch uint64
	// ChangedNodes is how many adjacency rows the delta patched.
	ChangedNodes int
	// Invalidated is how many cached plans the delta evicted (0 without
	// an attached cache, and always 0 for pure-repair deltas).
	Invalidated int
	// ActiveFaults is the mask's active event count after the delta.
	ActiveFaults int
}

// ApplyDelta absorbs one batch of fault/repair events: the cumulative
// mask is updated exactly, the live masked graph is patched in
// O(|delta|), and cached plans touching killed channels are evicted.
// Repair events never evict anything — a plan that avoided dead hardware
// stays valid when the hardware returns; re-optimization happens lazily
// as entries age out or their traffic replans.
func (lr *LiveRouter) ApplyDelta(d Delta) DeltaReport {
	lr.mask.ApplyDelta(d)
	changed := lr.ls.Apply(d.GraphDelta())
	evicted := 0
	if lr.cache != nil {
		if pairs := d.DeadChannelPairs(lr.healthy.Topology()); len(pairs) > 0 {
			evicted = lr.cache.Invalidate(pairs)
		}
	}
	lr.lastEvicted = evicted
	lr.totalEvicted += evicted
	return DeltaReport{
		Epoch:        lr.ls.Epoch(),
		ChangedNodes: len(changed),
		Invalidated:  evicted,
		ActiveFaults: lr.mask.Events(),
	}
}

// PlanDegradedCached is PlanDegraded through the attached cache. Only
// fully served plans (no unreachable destinations, no error) are cached,
// so a later repair can never surface a stale partial plan; a cache hit
// reports served=true and the PlanStats recorded when the plan was
// produced, so outcomes are byte-identical whether a plan comes fresh or
// from cache. Without an attached cache it is exactly PlanDegraded with
// served=false.
func (lr *LiveRouter) PlanDegradedCached(k core.MulticastSet) (routing.Plan, PlanStats, bool, error) {
	if lr.cache != nil {
		if p, aux, ok := lr.cache.GetPlanAux(lr.id, k); ok {
			lr.cachedServes++
			return p, statsFromAux(aux), true, nil
		}
	}
	plan, st, err := lr.PlanDegraded(k)
	lr.replans++
	if lr.cache != nil && err == nil && st.Unreachable == 0 {
		lr.cache.PutPlanAux(lr.id, k, plan, auxFromStats(st))
	}
	if lr.cdg != nil {
		lr.auditPlan(plan)
	}
	return plan, st, false, err
}

// auxFromStats and statsFromAux round-trip a fully-served plan's
// accounting flags through the cache's opaque aux word (Unreachable is
// always 0 for cached entries).
func auxFromStats(st PlanStats) uint64 {
	var aux uint64
	if st.FellBack {
		aux |= 1
	}
	if st.Repaired {
		aux |= 2
	}
	return aux
}

func statsFromAux(aux uint64) PlanStats {
	return PlanStats{FellBack: aux&1 != 0, Repaired: aux&2 != 0}
}

// Replans and CachedServes return the PlanDegradedCached miss/hit split.
func (lr *LiveRouter) Replans() uint64 { return lr.replans }

// CachedServes returns how many PlanDegradedCached calls were served
// straight from the cache.
func (lr *LiveRouter) CachedServes() uint64 { return lr.cachedServes }

// auditPlan folds a freshly produced plan into the incremental CDG and
// re-verifies acyclicity from the dirty classes only. The class-run
// invariant guarantees the union CDG over every plan ever produced stays
// acyclic, so a cycle here is a routing bug, not a workload property.
func (lr *LiveRouter) auditPlan(p routing.Plan) {
	for _, pr := range p.Paths {
		lr.cdg.AddPath(pr)
	}
	for _, tr := range p.Trees {
		lr.cdg.AddTree(tr)
	}
	if cyc := lr.cdg.Check(); cyc != nil {
		panic(fmt.Sprintf("fault: live CDG audit found a dependency cycle %v at epoch %d",
			cyc, lr.ls.Epoch()))
	}
}
