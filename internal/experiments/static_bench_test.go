package experiments

import (
	"fmt"
	"testing"
)

// BenchmarkStaticTable times a full static figure sweep (Fig. 7.5, 200
// replicates per point) at several worker counts. The sweep's
// determinism contract means every count computes identical bytes, so
// this measures pure scheduling: on a multicore machine the 8-worker run
// should approach linear speedup, while on a single-CPU box (GOMAXPROCS
// 1) the counts coincide and the benchmark documents that honestly.
func BenchmarkStaticTable(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := Options{Reps: 200, Seed: 1990, Parallel: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Fig75MTMesh(o)
			}
		})
	}
}
