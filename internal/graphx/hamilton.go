package graphx

// Exhaustive Hamilton path/cycle search. The Hamilton problems on grid
// graphs are the NP-complete sources of every Chapter 4 reduction; these
// brute-force solvers make the reductions executable and testable on small
// instances.

// HamiltonPathFrom returns a Hamilton path starting at src, or nil when
// none exists. Exponential time: intended for small graphs (n <= ~20).
func (g *Graph) HamiltonPathFrom(src int) []int {
	g.check(src)
	return g.hamiltonSearch(src, -1, false)
}

// HamiltonPath returns a Hamilton path with any endpoints, or nil.
func (g *Graph) HamiltonPath() []int {
	for s := 0; s < g.N(); s++ {
		if p := g.HamiltonPathFrom(s); p != nil {
			return p
		}
	}
	return nil
}

// HamiltonPathBetween returns a Hamilton path from src to dst (the
// (G, s, t) problem of result G2), or nil.
func (g *Graph) HamiltonPathBetween(src, dst int) []int {
	g.check(src)
	g.check(dst)
	if src == dst {
		if g.N() == 1 {
			return []int{src}
		}
		return nil
	}
	return g.hamiltonSearch(src, dst, false)
}

// HamiltonCycle returns a Hamilton cycle as a vertex sequence with the
// first vertex repeated at the end, or nil when none exists.
func (g *Graph) HamiltonCycle() []int {
	if g.N() == 0 {
		return nil
	}
	if g.N() == 1 {
		return nil // a single vertex has no cycle in a simple graph
	}
	if p := g.hamiltonSearch(0, -1, true); p != nil {
		return append(p, p[0])
	}
	return nil
}

// hamiltonSearch performs backtracking search for a Hamilton path from src.
// When dst >= 0 the path must end at dst; when cycle is true the last
// vertex must additionally be adjacent to src.
func (g *Graph) hamiltonSearch(src, dst int, cycle bool) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	visited := make([]bool, n)
	path := make([]int, 0, n)
	path = append(path, src)
	visited[src] = true

	var rec func() []int
	rec = func() []int {
		if len(path) == n {
			last := path[len(path)-1]
			if dst >= 0 && last != dst {
				return nil
			}
			if cycle && !g.HasEdge(last, src) {
				return nil
			}
			out := make([]int, n)
			copy(out, path)
			return out
		}
		u := path[len(path)-1]
		for _, v := range g.adj[u] {
			if visited[v] {
				continue
			}
			if dst >= 0 && v == dst && len(path) != n-1 {
				continue // reaching dst early strands the rest
			}
			visited[v] = true
			path = append(path, v)
			if out := rec(); out != nil {
				return out
			}
			path = path[:len(path)-1]
			visited[v] = false
		}
		return nil
	}
	return rec()
}

// IsHamiltonPath reports whether seq is a Hamilton path of g: it visits
// every vertex exactly once along edges of g.
func (g *Graph) IsHamiltonPath(seq []int) bool {
	if len(seq) != g.N() {
		return false
	}
	seen := make([]bool, g.N())
	for i, v := range seq {
		if v < 0 || v >= g.N() || seen[v] {
			return false
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(seq[i-1], v) {
			return false
		}
	}
	return true
}

// IsHamiltonCycle reports whether seq (with the first vertex repeated at
// the end) is a Hamilton cycle of g.
func (g *Graph) IsHamiltonCycle(seq []int) bool {
	if len(seq) != g.N()+1 || g.N() < 3 {
		return false
	}
	if seq[0] != seq[len(seq)-1] {
		return false
	}
	return g.IsHamiltonPath(seq[:len(seq)-1]) && g.HasEdge(seq[len(seq)-2], seq[0])
}
