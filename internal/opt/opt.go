// Package opt provides exact reference solvers for small instances of the
// Chapter 3 optimization problems — optimal multicast path/cycle orderings
// (Held–Karp dynamic programming over the destination set) and minimal
// Steiner trees (Dreyfus–Wagner) — plus brute-force optimal multicast
// trees. Chapter 4 proves all of these NP-complete, so exponential-time
// exact solvers for small k are the appropriate calibration references
// for the Chapter 5 heuristics.
package opt

import (
	"fmt"
	"math"

	"multicastnet/internal/core"
	"multicastnet/internal/graphx"
	"multicastnet/internal/topology"
)

// maxExactDests bounds the Held–Karp subset DP (2^k states).
const maxExactDests = 16

// OptimalPathLength returns the length of a shortest walk that starts at
// the source and visits every destination (the metric-closure relaxation
// of the OMP problem: node-disjointness is relaxed, so this is a lower
// bound on any OMP and equals the OMP length whenever the optimal visit
// order admits vertex-disjoint legs, which is typical on meshes and
// cubes). It returns the optimal visiting order alongside.
func OptimalPathLength(t topology.Topology, k core.MulticastSet) (int, []topology.NodeID) {
	n := len(k.Dests)
	if n == 0 {
		return 0, nil
	}
	if n > maxExactDests {
		panic(fmt.Sprintf("opt: %d destinations exceeds exact-solver bound %d", n, maxExactDests))
	}
	// dist[i][j]: graph distance between terminal i and j, with index n
	// for the source.
	dist := terminalDistances(t, k)

	// Held–Karp: dp[mask][i] = shortest walk from source covering mask,
	// ending at destination i.
	size := 1 << n
	dp := make([][]int, size)
	parent := make([][]int8, size)
	for m := range dp {
		dp[m] = make([]int, n)
		parent[m] = make([]int8, n)
		for i := range dp[m] {
			dp[m][i] = math.MaxInt32
			parent[m][i] = -1
		}
	}
	for i := 0; i < n; i++ {
		dp[1<<i][i] = dist[n][i]
	}
	for mask := 1; mask < size; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 || dp[mask][i] == math.MaxInt32 {
				continue
			}
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					continue
				}
				nm := mask | 1<<j
				if cand := dp[mask][i] + dist[i][j]; cand < dp[nm][j] {
					dp[nm][j] = cand
					parent[nm][j] = int8(i)
				}
			}
		}
	}
	best, bestEnd := math.MaxInt32, -1
	full := size - 1
	for i := 0; i < n; i++ {
		if dp[full][i] < best {
			best, bestEnd = dp[full][i], i
		}
	}
	order := make([]topology.NodeID, 0, n)
	for mask, i := full, bestEnd; i >= 0; {
		order = append(order, k.Dests[i])
		pi := parent[mask][i]
		mask &^= 1 << i
		i = int(pi)
	}
	// Reverse into visit order.
	for a, b := 0, len(order)-1; a < b; a, b = a+1, b-1 {
		order[a], order[b] = order[b], order[a]
	}
	return best, order
}

// OptimalCycleLength returns the length of a shortest closed walk from
// the source through every destination and back (the metric relaxation of
// the OMC problem).
func OptimalCycleLength(t topology.Topology, k core.MulticastSet) int {
	n := len(k.Dests)
	if n == 0 {
		return 0
	}
	if n > maxExactDests {
		panic(fmt.Sprintf("opt: %d destinations exceeds exact-solver bound %d", n, maxExactDests))
	}
	dist := terminalDistances(t, k)
	size := 1 << n
	dp := make([][]int, size)
	for m := range dp {
		dp[m] = make([]int, n)
		for i := range dp[m] {
			dp[m][i] = math.MaxInt32
		}
	}
	for i := 0; i < n; i++ {
		dp[1<<i][i] = dist[n][i]
	}
	for mask := 1; mask < size; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 || dp[mask][i] == math.MaxInt32 {
				continue
			}
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					continue
				}
				nm := mask | 1<<j
				if cand := dp[mask][i] + dist[i][j]; cand < dp[nm][j] {
					dp[nm][j] = cand
				}
			}
		}
	}
	best := math.MaxInt32
	for i := 0; i < n; i++ {
		if dp[size-1][i] != math.MaxInt32 {
			if cand := dp[size-1][i] + dist[i][n]; cand < best {
				best = cand
			}
		}
	}
	return best
}

// OptimalStarLength returns the minimal total length of a multicast star
// (Definition 3.5): the destinations are partitioned into at most
// maxPaths groups, each group is served by one walk from the source, and
// each walk's length is the optimal visiting order for its group
// (Held–Karp). Complexity O(3^k) over the subset lattice; small k only.
func OptimalStarLength(t topology.Topology, k core.MulticastSet, maxPaths int) int {
	n := len(k.Dests)
	if n == 0 {
		return 0
	}
	if n > maxExactDests {
		panic(fmt.Sprintf("opt: %d destinations exceeds exact-solver bound %d", n, maxExactDests))
	}
	if maxPaths < 1 {
		panic("opt: star needs at least one path")
	}
	dist := terminalDistances(t, k)
	size := 1 << n

	// pathCost[mask]: optimal single-walk cost from the source covering
	// exactly mask (Held–Karp per subset).
	const inf = math.MaxInt32
	dp := make([][]int, size)
	for m := range dp {
		dp[m] = make([]int, n)
		for i := range dp[m] {
			dp[m][i] = inf
		}
	}
	for i := 0; i < n; i++ {
		dp[1<<i][i] = dist[n][i]
	}
	for mask := 1; mask < size; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 || dp[mask][i] == inf {
				continue
			}
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					continue
				}
				nm := mask | 1<<j
				if cand := dp[mask][i] + dist[i][j]; cand < dp[nm][j] {
					dp[nm][j] = cand
				}
			}
		}
	}
	pathCost := make([]int, size)
	pathCost[0] = 0
	for mask := 1; mask < size; mask++ {
		best := inf
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 && dp[mask][i] < best {
				best = dp[mask][i]
			}
		}
		pathCost[mask] = best
	}

	// starCost[p][mask]: best cost covering mask with at most p paths.
	prev := pathCost
	for p := 2; p <= maxPaths; p++ {
		cur := make([]int, size)
		copy(cur, prev)
		for mask := 1; mask < size; mask++ {
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if pathCost[sub] == inf || prev[mask^sub] == inf {
					continue
				}
				if cand := pathCost[sub] + prev[mask^sub]; cand < cur[mask] {
					cur[mask] = cand
				}
			}
		}
		prev = cur
	}
	return prev[size-1]
}

// terminalDistances returns the pairwise graph distances among the
// destinations (indices 0..n-1) and the source (index n).
func terminalDistances(t topology.Topology, k core.MulticastSet) [][]int {
	n := len(k.Dests)
	nodes := make([]topology.NodeID, n+1)
	copy(nodes, k.Dests)
	nodes[n] = k.Source
	dist := make([][]int, n+1)
	for i := range dist {
		dist[i] = make([]int, n+1)
		for j := range dist[i] {
			dist[i][j] = t.Distance(nodes[i], nodes[j])
		}
	}
	return dist
}

// SteinerTreeLength computes the exact minimal Steiner tree length for
// the terminals (source plus destinations) with the Dreyfus–Wagner
// dynamic program: O(3^k n + 2^k n^2 + n^3-ish with BFS distances). It is
// the exact reference for the MST problem of Definition 3.3.
func SteinerTreeLength(g *graphx.Graph, terminals []int) int {
	k := len(terminals)
	if k <= 1 {
		return 0
	}
	if k > 12 {
		panic(fmt.Sprintf("opt: %d terminals exceeds Dreyfus–Wagner bound 12", k))
	}
	n := g.N()
	// All-terminal BFS distances, plus distances from every vertex.
	dist := make([][]int, n)
	for v := 0; v < n; v++ {
		dist[v] = g.BFSDistances(v)
	}
	// dp[mask][v]: minimal length of a tree spanning terminal subset
	// mask plus vertex v.
	full := 1 << (k - 1) // subsets of terminals[1:]; terminals[0] joined at the end
	const inf = math.MaxInt32
	dp := make([][]int, full)
	for m := range dp {
		dp[m] = make([]int, n)
		for v := range dp[m] {
			dp[m][v] = inf
		}
	}
	for i := 1; i < k; i++ {
		ti := terminals[i]
		for v := 0; v < n; v++ {
			if d := dist[ti][v]; d >= 0 {
				m := 1 << (i - 1)
				if d < dp[m][v] {
					dp[m][v] = d
				}
			}
		}
	}
	for mask := 1; mask < full; mask++ {
		if mask&(mask-1) == 0 {
			continue // singletons initialized above
		}
		// Merge: split mask into two non-empty subsets at v.
		for v := 0; v < n; v++ {
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if sub < mask-sub {
					continue // each split counted once
				}
				a, b := dp[sub][v], dp[mask^sub][v]
				if a < inf && b < inf && a+b < dp[mask][v] {
					dp[mask][v] = a + b
				}
			}
		}
		// Grow: attach v' via shortest path.
		type qv struct{ v, d int }
		// Dijkstra-like relaxation over unit edges = BFS from multiple
		// sources with initial costs dp[mask][v].
		dq := make([]int, n)
		copy(dq, dp[mask])
		// Bellman-Ford style relaxation (unit weights, n rounds worst
		// case; in practice a few).
		changed := true
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if dq[v] == inf {
					continue
				}
				for _, w := range g.Neighbors(v) {
					if dq[v]+1 < dq[w] {
						dq[w] = dq[v] + 1
						changed = true
					}
				}
			}
		}
		copy(dp[mask], dq)
		_ = qv{}
	}
	t0 := terminals[0]
	best := inf
	for v := 0; v < n; v++ {
		if dp[full-1][v] < inf && dist[t0][v] >= 0 {
			if cand := dp[full-1][v] + dist[t0][v]; cand < best {
				best = cand
			}
		}
	}
	return best
}

// OptimalMTLength returns the minimal edge count of a multicast tree
// (Definition 3.4: every destination at graph distance) by exhaustive
// search over predecessor choices. Exponential; small instances only.
func OptimalMTLength(t topology.Topology, k core.MulticastSet) int {
	// Build the shortest-path DAG union from the source: edges (u,v)
	// with dist(src,v) = dist(src,u)+1. An MT is a subtree of this DAG
	// covering the destinations; minimize its edge count via search over
	// destination attachment orders with memoized best.
	type state struct {
		nodes map[topology.NodeID]bool
		edges int
	}
	src := k.Source
	distFromSrc := make(map[topology.NodeID]int)
	for v := topology.NodeID(0); int(v) < t.Nodes(); v++ {
		distFromSrc[v] = t.Distance(src, v)
	}
	best := math.MaxInt32
	var rec func(st state, rest []topology.NodeID)
	rec = func(st state, rest []topology.NodeID) {
		if st.edges >= best {
			return
		}
		if len(rest) == 0 {
			best = st.edges
			return
		}
		d := rest[0]
		if st.nodes[d] {
			rec(st, rest[1:])
			return
		}
		// Attach d to the current tree by a shortest path from any tree
		// node u with dist(u)+d(u,d) == dist(d) (keeping d at graph
		// distance). Enumerate all monotone paths from tree to d.
		var attach func(cur topology.NodeID, added []topology.NodeID)
		attach = func(cur topology.NodeID, added []topology.NodeID) {
			if st.nodes[cur] {
				ns := state{nodes: st.nodes, edges: st.edges + len(added)}
				// Temporarily extend the node set.
				for _, a := range added {
					ns.nodes[a] = true
				}
				rec(ns, rest[1:])
				for _, a := range added {
					delete(ns.nodes, a)
				}
				return
			}
			var buf [32]topology.NodeID
			for _, p := range t.Neighbors(cur, buf[:0]) {
				if distFromSrc[p] == distFromSrc[cur]-1 {
					attach(p, append(added, cur))
				}
			}
		}
		attach(d, nil)
	}
	rec(state{nodes: map[topology.NodeID]bool{src: true}}, k.Dests)
	return best
}
