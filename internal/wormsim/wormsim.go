// Package wormsim is a flit-clock wormhole network simulator — the
// from-scratch replacement for the CSIM-based simulation program of
// Section 7.2. One simulation cycle equals one flit time on a channel.
// Worms (in-flight messages) acquire channels one hop per cycle; a
// blocked worm stalls in place holding everything it has acquired, which
// is exactly the wormhole behaviour that creates deadlock (Section 6.1).
//
// Path worms model the path-based multicast schemes: a single header
// acquires the route channel by channel and the body follows in a
// pipeline.
//
// Tree worms model tree-like multicast routing as Section 6.1 describes
// it: the header flit is replicated at branch nodes and all branches
// proceed forward in lock-step, so the whole frontier (one tree level)
// must be secured before any branch advances. The worm claims whatever
// frontier channels are free — holding them — while it waits for the
// busy ones ("all of the required channels must be available before
// transmission on any of them may take place"). Blockage of any branch
// therefore stalls the entire tree while it keeps channels occupied, the
// behaviour that makes naive tree multicast slow under contention and
// deadlock-prone (Figs. 6.1 and 6.4).
//
// Channel arbitration is first-come first-served: a worm that finds a
// channel busy enqueues on it and acquires it, in order, once free.
// Deadlock is detected via wait-for-graph cycles and reported rather than
// hidden.
package wormsim

import (
	"fmt"

	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
)

// wormKind distinguishes path worms from lock-step tree worms.
type wormKind int

const (
	pathWorm wormKind = iota
	treeWorm
)

// delivery marks a destination and where its router sits: the channel
// index along the path (path worms) or the depth of the arrival channel
// (tree worms).
type delivery struct {
	dest topology.NodeID
	idx  int // path: 1-based position; tree: depth of the arrival channel
	done bool
}

// treeLevel is one frontier of a tree worm: all channels at one depth.
// The lock-step header advances a full level at a time, claiming free
// channels immediately and waiting (while holding them) for the rest.
type treeLevel struct {
	channels []dfr.Channel
	taken    []bool
	missing  int
	queued   bool
}

// worm is one in-flight wormhole message. The id is stable across the
// worm's lifetime and identifies it in deadlock reports.
type worm struct {
	kind wormKind
	id   int

	// Path worms.
	chans    []dfr.Channel
	headIdx  int // next channel index to acquire
	queuedAt int // headIdx value already enqueued for (-1: none)
	progress int // total head advances, including drain into the final destination
	released int // leading channels already released

	// Tree worms.
	levels []treeLevel

	deliveries []delivery
	undeliv    int
	length     int   // message length in flits
	spawned    int64 // cycle at which the multicast was initiated

	mcast *mcastState
}

// mcastState tracks one multicast (possibly several worms) for
// whole-multicast latency.
type mcastState struct {
	spawned   int64
	size      int // destination count of the whole multicast
	remaining int // undelivered destinations across all worms
}

// chanState is the occupancy and FIFO wait queue of one channel.
type chanState struct {
	owner *worm
	queue []*worm
}

// enqueue appends w; callers guarantee at-most-once per wait episode via
// the worm-side queued markers, keeping stalls O(1) per cycle.
func (c *chanState) enqueue(w *worm) {
	c.queue = append(c.queue, w)
}

// availableTo reports whether w may take the channel now: free, and w is
// first in line (or the queue is empty because w never had to wait).
func (c *chanState) availableTo(w *worm) bool {
	return c.owner == nil && (len(c.queue) == 0 || c.queue[0] == w)
}

// availableToQueued is availableTo for a worm known to be enqueued.
func (c *chanState) availableToQueued(w *worm) bool {
	return c.owner == nil && len(c.queue) > 0 && c.queue[0] == w
}

func (c *chanState) take(w *worm) {
	if len(c.queue) > 0 && c.queue[0] == w {
		c.queue = c.queue[1:]
	}
	c.owner = w
}

func (c *chanState) release(w *worm) {
	if c.owner == w {
		c.owner = nil
	}
}

// Network is the simulated wormhole network.
type Network struct {
	topo     topology.Topology
	chans    map[dfr.Channel]*chanState
	worms    []*worm
	nextID   int
	cycle    int64
	progress bool // did any worm advance this cycle

	// Observers.
	onDelivery       func(dest topology.NodeID, latencyCycles int64)
	onDeliveryDetail func(dest topology.NodeID, latencyCycles int64, mcastSize int)
	onComplete       func(latencyCycles int64)
}

// NewNetwork returns an empty network over topo. Channels are created
// lazily, so any channel class used by the injected routes is accepted.
func NewNetwork(topo topology.Topology) *Network {
	return &Network{topo: topo, chans: make(map[dfr.Channel]*chanState)}
}

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// ActiveWorms returns the number of in-flight worms.
func (n *Network) ActiveWorms() int { return len(n.worms) }

// Busy implements dfr.ChannelOracle: it reports whether a channel is
// currently held by a worm, letting adaptive schemes route around live
// congestion at injection time.
func (n *Network) Busy(c dfr.Channel) bool {
	st, ok := n.chans[c]
	return ok && st.owner != nil
}

// OnDelivery registers a callback invoked for every destination delivery
// with the per-destination latency in cycles.
func (n *Network) OnDelivery(fn func(dest topology.NodeID, latencyCycles int64)) {
	n.onDelivery = fn
}

// OnDeliveryDetail registers a delivery callback that also receives the
// destination count of the delivering multicast, so unicast (size 1) and
// multicast traffic can be measured separately (the Section 8.2
// interaction study).
func (n *Network) OnDeliveryDetail(fn func(dest topology.NodeID, latencyCycles int64, mcastSize int)) {
	n.onDeliveryDetail = fn
}

// OnComplete registers a callback invoked when the last destination of a
// multicast is delivered, with the multicast's completion latency.
func (n *Network) OnComplete(fn func(latencyCycles int64)) { n.onComplete = fn }

func (n *Network) state(c dfr.Channel) *chanState {
	s, ok := n.chans[c]
	if !ok {
		s = &chanState{}
		n.chans[c] = s
	}
	return s
}

// InjectMulticast injects one multicast routed as a set of path routes
// and/or tree routes, all spawned at the current cycle. lengthFlits is
// the message length in flits.
func (n *Network) InjectMulticast(paths []dfr.PathRoute, trees []dfr.TreeRoute, lengthFlits int) {
	if lengthFlits < 1 {
		panic("wormsim: message must have at least one flit")
	}
	mc := &mcastState{spawned: n.cycle}
	for _, p := range paths {
		mc.size += len(p.Dests)
	}
	for _, t := range trees {
		mc.size += len(t.Dests)
	}
	for _, p := range paths {
		if len(p.Nodes) < 2 {
			// Degenerate: source-only path with no channels; its
			// destinations could only be the source, which MulticastSet
			// forbids.
			continue
		}
		chans := p.Channels()
		for _, c := range chans {
			if !n.topo.Adjacent(c.From, c.To) {
				panic(fmt.Sprintf("wormsim: route uses non-channel %v", c))
			}
		}
		w := &worm{
			kind:     pathWorm,
			id:       n.nextID,
			chans:    chans,
			length:   lengthFlits,
			spawned:  n.cycle,
			queuedAt: -1,
			mcast:    mc,
		}
		n.nextID++
		pos := make(map[topology.NodeID]int, len(p.Nodes))
		for i, node := range p.Nodes {
			if _, ok := pos[node]; !ok {
				pos[node] = i
			}
		}
		for _, d := range p.Dests {
			idx, ok := pos[d]
			if !ok || idx == 0 {
				panic(fmt.Sprintf("wormsim: path does not visit destination %d", d))
			}
			w.deliveries = append(w.deliveries, delivery{dest: d, idx: idx})
			w.undeliv++
			mc.remaining++
		}
		n.worms = append(n.worms, w)
	}
	for _, t := range trees {
		if len(t.Edges) == 0 {
			continue
		}
		w := n.buildTreeWorm(t, lengthFlits, mc)
		n.worms = append(n.worms, w)
	}
}

// buildTreeWorm converts a TreeRoute into a tree worm with per-depth
// frontier levels.
func (n *Network) buildTreeWorm(t dfr.TreeRoute, lengthFlits int, mc *mcastState) *worm {
	depths := t.Depths()
	maxd := 0
	for _, e := range t.Edges {
		if !n.topo.Adjacent(e.From, e.To) {
			panic(fmt.Sprintf("wormsim: tree uses non-channel %v", e))
		}
		if depths[e.To] > maxd {
			maxd = depths[e.To]
		}
	}
	levels := make([]treeLevel, maxd)
	for _, e := range t.Edges {
		l := &levels[depths[e.To]-1]
		l.channels = append(l.channels, e)
	}
	for i := range levels {
		levels[i].taken = make([]bool, len(levels[i].channels))
		levels[i].missing = len(levels[i].channels)
	}
	w := &worm{
		kind:     treeWorm,
		id:       n.nextID,
		levels:   levels,
		length:   lengthFlits,
		spawned:  n.cycle,
		queuedAt: -1,
		mcast:    mc,
	}
	n.nextID++
	for _, d := range t.Dests {
		dep, ok := depths[d]
		if !ok || dep == 0 {
			panic(fmt.Sprintf("wormsim: tree does not reach destination %d", d))
		}
		w.deliveries = append(w.deliveries, delivery{dest: d, idx: dep})
		w.undeliv++
		mc.remaining++
	}
	return w
}

// Step advances the simulation by one cycle. It returns true if any worm
// made progress.
func (n *Network) Step() bool {
	n.cycle++
	n.progress = false
	alive := n.worms[:0]
	for _, w := range n.worms {
		var live bool
		if w.kind == pathWorm {
			live = n.advancePath(w)
		} else {
			live = n.advanceTree(w)
		}
		if live {
			alive = append(alive, w)
		}
	}
	n.worms = alive
	return n.progress
}

// advancePath moves a path worm one cycle; false retires it.
func (n *Network) advancePath(w *worm) bool {
	moved := false
	if w.headIdx < len(w.chans) {
		c := w.chans[w.headIdx]
		st := n.state(c)
		if st.availableTo(w) {
			st.take(w)
			w.headIdx++
			w.progress++
			moved = true
		} else if w.queuedAt != w.headIdx {
			st.enqueue(w)
			w.queuedAt = w.headIdx
		}
	} else {
		// Fully routed; the body drains at one flit per cycle.
		w.progress++
		moved = true
	}
	if moved {
		n.progress = true
		// Deliveries: the last flit crosses the arrival channel at
		// progress idx + length - 1.
		for i := range w.deliveries {
			d := &w.deliveries[i]
			if !d.done && w.progress >= d.idx+w.length-1 {
				n.deliver(w, d)
			}
		}
		// Releases: the tail crosses channel index i at progress i + length.
		for w.released < len(w.chans) && w.progress >= w.released+w.length {
			n.state(w.chans[w.released]).release(w)
			w.released++
		}
	}
	return w.released < len(w.chans) || w.undeliv > 0
}

// advanceTree moves a tree worm one cycle; false retires it. The header
// frontier is the level at index w.headIdx: the worm claims whatever
// frontier channels are free (holding them) and crosses the level — one
// level per cycle, lock-step — only when the whole frontier is secured.
// w.progress counts crossed levels plus drain cycles, exactly like a path
// worm's channel count, so delivery and release timing share the path
// formulas with depth in place of path position.
func (n *Network) advanceTree(w *worm) bool {
	moved := false
	if w.headIdx < len(w.levels) {
		l := &w.levels[w.headIdx]
		if !l.queued {
			for _, c := range l.channels {
				n.state(c).enqueue(w)
			}
			l.queued = true
		}
		for i, c := range l.channels {
			if l.taken[i] {
				continue
			}
			if st := n.state(c); st.availableToQueued(w) {
				st.take(w)
				l.taken[i] = true
				l.missing--
			}
		}
		if l.missing == 0 {
			w.headIdx++
			w.progress++
			moved = true
		}
	} else {
		// Fully acquired; the replicated body drains one flit per cycle.
		w.progress++
		moved = true
	}
	if moved {
		n.progress = true
		for i := range w.deliveries {
			d := &w.deliveries[i]
			if !d.done && w.progress >= d.idx+w.length-1 {
				n.deliver(w, d)
			}
		}
		for w.released < len(w.levels) && w.progress >= w.released+w.length {
			for _, c := range w.levels[w.released].channels {
				n.state(c).release(w)
			}
			w.released++
		}
	}
	return w.released < len(w.levels) || w.undeliv > 0
}

// deliver records one destination delivery.
func (n *Network) deliver(w *worm, d *delivery) {
	d.done = true
	w.undeliv--
	if n.onDelivery != nil {
		n.onDelivery(d.dest, n.cycle-w.spawned)
	}
	if n.onDeliveryDetail != nil {
		n.onDeliveryDetail(d.dest, n.cycle-w.spawned, w.mcast.size)
	}
	w.mcast.remaining--
	if w.mcast.remaining == 0 && n.onComplete != nil {
		n.onComplete(n.cycle - w.mcast.spawned)
	}
}

// DeadlockedWormIDs returns the ids of the worms on one wait-for cycle,
// or nil; a diagnostic wrapper around DetectDeadlock.
func (n *Network) DeadlockedWormIDs() []int {
	cyc := n.DetectDeadlock()
	if cyc == nil {
		return nil
	}
	ids := make([]int, len(cyc))
	for i, w := range cyc {
		ids[i] = w.id
	}
	return ids
}

// DetectDeadlock searches the wait-for graph for a cycle: worm A waits
// for worm B when B owns a channel A's header needs, or when B is queued
// ahead of A on it. Because a blocked worm holds every channel it has
// acquired until its header advances (wormhole flow control,
// Section 2.3.4), a wait-for cycle is a permanent deadlock. It returns
// the worms on one such cycle, or nil.
func (n *Network) DetectDeadlock() []*worm {
	index := make(map[*worm]int, len(n.worms))
	for i, w := range n.worms {
		index[w] = i
	}
	adj := make([][]int, len(n.worms))
	addWait := func(from *worm, c dfr.Channel) {
		st := n.state(c)
		i := index[from]
		if st.owner != nil && st.owner != from {
			if j, ok := index[st.owner]; ok {
				adj[i] = append(adj[i], j)
			}
		}
		for _, q := range st.queue {
			if q == from {
				break
			}
			if j, ok := index[q]; ok {
				adj[i] = append(adj[i], j)
			}
		}
	}
	for _, w := range n.worms {
		if w.kind == pathWorm {
			if w.headIdx < len(w.chans) {
				addWait(w, w.chans[w.headIdx])
			}
			continue
		}
		if w.headIdx >= len(w.levels) {
			continue // draining; never blocks
		}
		l := &w.levels[w.headIdx]
		for i, c := range l.channels {
			if !l.taken[i] {
				addWait(w, c)
			}
		}
	}
	// DFS cycle detection.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(n.worms))
	parent := make([]int, len(n.worms))
	for i := range parent {
		parent[i] = -1
	}
	var cycle []*worm
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				cycle = []*worm{n.worms[v]}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, n.worms[x])
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for i := range n.worms {
		if color[i] == white && dfs(i) {
			return cycle
		}
	}
	return nil
}
