package routing

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"multicastnet/internal/topology"
)

// Options parameterize scheme construction. The zero value selects every
// scheme's defaults.
type Options struct {
	// VirtualChannels is the channel-copy count v of the virtual-channel
	// scheme (Section 8.2); 0 selects the scheme default of 2. Other
	// schemes ignore it.
	VirtualChannels int
}

// Builder constructs a Router for one scheme over a precomputed State.
// It errors when the scheme does not support the state's topology.
type Builder func(s *State, opts Options) (Router, error)

// Info describes one registered scheme.
type Info struct {
	// Name is the registry key, e.g. "dual-path".
	Name string
	// Description is a one-line summary for -list-schemes output.
	Description string
	// DeadlockFree reports whether the scheme is deadlock-free under
	// wormhole switching. The multicast service refuses schemes that are
	// not.
	DeadlockFree bool
	// Build constructs the scheme's router.
	Build Builder
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Info)
)

// Register adds a scheme to the registry. It errors on duplicate or
// empty names and nil builders.
func Register(info Info) error {
	if info.Name == "" {
		return fmt.Errorf("routing: scheme name must not be empty")
	}
	if info.Build == nil {
		return fmt.Errorf("routing: scheme %q has no builder", info.Name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		return fmt.Errorf("routing: scheme %q already registered", info.Name)
	}
	registry[info.Name] = info
	return nil
}

// MustRegister is Register that panics on error; for init-time use.
func MustRegister(info Info) {
	if err := Register(info); err != nil {
		panic(err)
	}
}

// Lookup returns the scheme registered under name. An unknown name
// errors with the sorted list of valid names, so callers can surface a
// helpful message directly.
func Lookup(name string) (Info, error) {
	registryMu.RLock()
	info, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return Info{}, fmt.Errorf("routing: unknown scheme %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	return info, nil
}

// Names returns the sorted names of every registered scheme.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Schemes returns the Info of every registered scheme, sorted by name.
func Schemes() []Info {
	names := Names()
	out := make([]Info, 0, len(names))
	for _, name := range names {
		info, _ := Lookup(name)
		out = append(out, info)
	}
	return out
}

// New builds the named scheme's router over s with default options.
func New(name string, s *State) (Router, error) {
	return NewWithOptions(name, s, Options{})
}

// NewWithOptions builds the named scheme's router over s.
func NewWithOptions(name string, s *State, opts Options) (Router, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return info.Build(s, opts)
}

// sharedStates caches one State per topology, keyed by the topology's
// canonical name (unique per shape for every built-in topology), so
// every consumer of the same machine shares one precomputed labeling.
var sharedStates sync.Map // string -> *State

// SharedState returns the process-wide shared State of t under its
// canonical labeling, precomputing it on first use. Concurrent callers
// for the same topology may race to build the state; exactly one wins
// and all receive the same (immutable) value.
func SharedState(t topology.Topology) (*State, error) {
	key := t.Name()
	if st, ok := sharedStates.Load(key); ok {
		return st.(*State), nil
	}
	st, err := NewState(t)
	if err != nil {
		return nil, err
	}
	actual, _ := sharedStates.LoadOrStore(key, st)
	return actual.(*State), nil
}
