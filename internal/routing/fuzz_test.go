package routing

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
)

// fuzzSchemes are the path-based schemes checked for label monotonicity
// (the Assertion 2 deadlock-freedom argument: every path stays inside
// either the high- or the low-channel subnetwork).
var fuzzSchemes = []string{
	"dual-path", "dual-path-double", "multi-path", "multi-path-double",
	"fixed-path", "adaptive-dual-path", "virtual-channel",
}

// fuzzTreeSchemes produce tree routes; they are checked for coverage and
// channel validity only.
var fuzzTreeSchemes = []string{"tree", "naive-tree"}

// checkMonotone asserts that a path's labels are strictly monotone — the
// property that keeps the high/low channel subnetworks acyclic.
func checkMonotone(t *testing.T, st *State, name string, p dfr.PathRoute) {
	t.Helper()
	if len(p.Nodes) < 2 {
		return
	}
	up := st.Label(p.Nodes[1]) > st.Label(p.Nodes[0])
	for i := 1; i < len(p.Nodes); i++ {
		prev, cur := st.Label(p.Nodes[i-1]), st.Label(p.Nodes[i])
		if up && cur <= prev {
			t.Fatalf("%s: path %v not label-increasing at hop %d (%d -> %d)",
				name, p.Nodes, i, prev, cur)
		}
		if !up && cur >= prev {
			t.Fatalf("%s: path %v not label-decreasing at hop %d (%d -> %d)",
				name, p.Nodes, i, prev, cur)
		}
	}
}

// FuzzPlan drives every registry scheme over fuzzer-chosen mesh sizes and
// destination sets and asserts the routing invariants: the plan covers
// each destination exactly once, uses only real channels, and (for the
// path schemes) every path is label-monotone.
func FuzzPlan(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint16(0), []byte{5, 10, 15})
	f.Add(uint8(8), uint8(8), uint16(27), []byte{0, 1, 2, 3, 60, 61, 62, 63})
	f.Add(uint8(2), uint8(3), uint16(5), []byte{0})
	f.Add(uint8(7), uint8(2), uint16(13), []byte{1, 1, 1, 12})
	f.Fuzz(func(t *testing.T, w, h uint8, src uint16, destBytes []byte) {
		width := 2 + int(w)%7  // 2..8
		height := 2 + int(h)%7 // 2..8
		m := topology.NewMesh2D(width, height)
		source := topology.NodeID(int(src) % m.Nodes())
		seen := map[topology.NodeID]bool{source: true}
		var dests []topology.NodeID
		for _, b := range destBytes {
			d := topology.NodeID(int(b) % m.Nodes())
			if !seen[d] {
				seen[d] = true
				dests = append(dests, d)
			}
		}
		if len(dests) == 0 {
			t.Skip("no destinations")
		}
		k, err := core.NewMulticastSet(m, source, dests)
		if err != nil {
			t.Fatalf("set construction: %v", err)
		}
		st, err := NewState(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range fuzzSchemes {
			r, err := New(name, st)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			plan := r.PlanSet(k)
			if err := plan.Validate(m, k); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, p := range plan.Paths {
				checkMonotone(t, st, name, p)
			}
		}
		for _, name := range fuzzTreeSchemes {
			r, err := New(name, st)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := r.PlanSet(k).Validate(m, k); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	})
}
