// Package npc makes the NP-completeness reductions of Chapter 4
// executable. The chapter reduces Hamilton cycle/path problems on grid
// graphs [51] to the optimal multicast problems on meshes and hypercubes;
// this package builds those reductions so the equivalences can be checked
// on small instances:
//
//   - MeshInstanceFromGrid embeds a grid graph in a 2D mesh and selects
//     the multicast set K = V(G) (Theorems 4.1–4.3).
//   - ExtendGridForPath is the G' corner construction of Lemma 4.1,
//     adding nodes p, q, t, s so that G has a Hamilton cycle iff G' has a
//     Hamilton path starting at s.
//   - CubeEmbedding is the 4-bit-block embedding of Theorem 4.5: grid
//     vertices become hypercube nodes with pairwise distance 6 when
//     adjacent and 8 when not, so G has a Hamilton cycle iff the n-cube
//     has a multicast cycle of length 6k.
package npc

import (
	"fmt"

	"multicastnet/internal/graphx"
	"multicastnet/internal/topology"
)

// MeshInstance is a multicast-problem instance on a 2D mesh produced from
// a grid graph.
type MeshInstance struct {
	Mesh *topology.Mesh2D
	// K is the multicast set (the embedded grid vertices); K[i]
	// corresponds to grid vertex i.
	K []topology.NodeID
}

// MeshInstanceFromGrid embeds the grid graph in the smallest enclosing 2D
// mesh (translating coordinates to non-negative) and returns the
// multicast set K = V(G). By Theorem 4.1, G has a Hamilton cycle iff the
// mesh has a multicast cycle for K of length |V(G)|.
func MeshInstanceFromGrid(g *graphx.GridGraph) MeshInstance {
	if g.N() == 0 {
		panic("npc: empty grid graph")
	}
	minX, minY, maxX, maxY := g.Bounds()
	m := topology.NewMesh2D(maxX-minX+1, maxY-minY+1)
	k := make([]topology.NodeID, g.N())
	for i := 0; i < g.N(); i++ {
		p := g.Point(i)
		k[i] = m.ID(p.X-minX, p.Y-minY)
	}
	return MeshInstance{Mesh: m, K: k}
}

// ExtendGridForPath performs the Lemma 4.1 construction: select the
// corner vertex u (minimum x, then minimum y), and add the four lattice
// points
//
//	p = (ux-1, uy)   q = (ux-1, uy+1)   t = (ux-2, uy+1)   s = (ux-1, uy-1)
//
// It returns G' and the indices of s and t in G'. G has a Hamilton cycle
// iff G' has a Hamilton path starting from s (which then necessarily ends
// at t, the degree-1 vertex).
func ExtendGridForPath(g *graphx.GridGraph) (gp *graphx.GridGraph, sIdx, tIdx int) {
	u := g.Point(g.CornerVertex())
	p := graphx.Point{X: u.X - 1, Y: u.Y}
	q := graphx.Point{X: u.X - 1, Y: u.Y + 1}
	tt := graphx.Point{X: u.X - 2, Y: u.Y + 1}
	s := graphx.Point{X: u.X - 1, Y: u.Y - 1}
	for _, pt := range []graphx.Point{p, q, tt, s} {
		if g.Contains(pt) {
			// Cannot happen: all four points are left of the minimum x
			// column (or below u in the minimum column).
			panic(fmt.Sprintf("npc: construction point %v already in grid", pt))
		}
	}
	pts := append(g.Points(), p, q, tt, s)
	gp = graphx.NewGridGraph(pts)
	sIdx, _ = gp.Index(s)
	tIdx, _ = gp.Index(tt)
	return gp, sIdx, tIdx
}

// CubeEmbedding is the Theorem 4.5 reduction output.
type CubeEmbedding struct {
	Cube *topology.Hypercube
	// K[i] is the hypercube node encoding grid vertex v_i (in the
	// breadth-first order used by the construction).
	K []topology.NodeID
	// Order[i] is the original grid-vertex index of v_i.
	Order []int
}

// CubeEmbedding builds the 4-bit-block hypercube embedding of
// Theorem 4.5 for a connected grid graph with k vertices: an n-cube with
// n = 4k and nodes u_0..u_{k-1} such that d_H(u_i, u_j) = 6 when
// (v_i, v_j) is a grid edge and 8 otherwise.
func NewCubeEmbedding(g *graphx.GridGraph) CubeEmbedding {
	k := g.N()
	if k == 0 {
		panic("npc: empty grid graph")
	}
	if 4*k > 62 {
		// NodeID is an int; 4k bits must fit. Instances beyond ~15
		// vertices are too large to materialize anyway.
		panic(fmt.Sprintf("npc: grid with %d vertices needs a %d-cube, too large", k, 4*k))
	}
	gr := g.Graph()
	if !gr.Connected() {
		panic("npc: grid graph must be connected")
	}
	// Breadth-first vertex ordering: v_0, v_1, ... with layer order
	// preserved (vertices in layer A_p precede those in A_h for p < h).
	var order []int
	for _, layer := range gr.BFSLayers(0) {
		order = append(order, layer...)
	}
	posOf := make([]int, k) // grid vertex -> position m in the ordering
	for m, v := range order {
		posOf[v] = m
	}

	h := topology.NewHypercube(4 * k)
	setBlock := func(addr *uint64, block int, val uint8) {
		// Block 0 occupies the most significant 4 bits of the address,
		// matching the paper's left-to-right block notation
		// b(q) = a_0(q) a_1(q) ... a_{k-1}(q).
		shift := uint(4 * (k - 1 - block))
		*addr |= uint64(val) << shift
	}
	K := make([]topology.NodeID, k)
	for m := 0; m < k; m++ {
		var addr uint64
		if m == 0 {
			setBlock(&addr, 0, 0b1111)
		} else {
			vm := order[m]
			// V_m: earlier-ordered grid neighbors of v_m.
			var vmEarlier []int
			for _, w := range gr.Neighbors(vm) {
				if posOf[w] < m {
					vmEarlier = append(vmEarlier, posOf[w])
				}
			}
			for _, p := range vmEarlier {
				// U_{p,m}: vertices v_q with p < q < m adjacent to v_p.
				count := 0
				for _, w := range gr.Neighbors(order[p]) {
					if q := posOf[w]; q > p && q < m {
						count++
					}
				}
				var val uint8
				switch count {
				case 0:
					val = 0b1000
				case 1:
					val = 0b0100
				case 2:
					val = 0b0010
				case 3:
					val = 0b0001
				default:
					panic("npc: grid degree exceeds 4")
				}
				setBlock(&addr, p, val)
			}
			switch len(vmEarlier) {
			case 1:
				setBlock(&addr, m, 0b1110)
			case 2:
				setBlock(&addr, m, 0b1100)
			default:
				panic(fmt.Sprintf("npc: BFS ordering gives %d earlier neighbors at m=%d", len(vmEarlier), m))
			}
		}
		K[m] = topology.NodeID(addr)
	}
	return CubeEmbedding{Cube: h, K: K, Order: order}
}

// VerifyDistances checks the Lemma 4.2/4.3 property on the embedding:
// d_H(u_i, u_j) is 6 exactly for grid edges and 8 otherwise. It returns a
// descriptive error on the first violation.
func (e CubeEmbedding) VerifyDistances(g *graphx.GridGraph) error {
	gr := g.Graph()
	posOf := make([]int, g.N())
	for m, v := range e.Order {
		posOf[v] = m
	}
	for i := 0; i < len(e.K); i++ {
		for j := i + 1; j < len(e.K); j++ {
			want := 8
			if gr.HasEdge(e.Order[i], e.Order[j]) {
				want = 6
			}
			if got := e.Cube.Distance(e.K[i], e.K[j]); got != want {
				return fmt.Errorf("npc: d_H(u_%d,u_%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	return nil
}

// MulticastCycleBound returns the Theorem 4.5 threshold 6k: the n-cube
// has a multicast cycle for K of length <= 6k iff the grid graph has a
// Hamilton cycle.
func (e CubeEmbedding) MulticastCycleBound() int { return 6 * len(e.K) }

// ShortestKCycle computes the exact shortest closed walk visiting all
// nodes of K in the hypercube metric (Held–Karp over K). With the
// Theorem 4.5 embedding this equals 6k exactly when the source grid graph
// is Hamiltonian.
func (e CubeEmbedding) ShortestKCycle() int {
	k := len(e.K)
	if k > 16 {
		panic("npc: instance too large for exact cycle")
	}
	size := 1 << k
	const inf = 1 << 30
	dist := make([][]int, k)
	for i := range dist {
		dist[i] = make([]int, k)
		for j := range dist[i] {
			dist[i][j] = e.Cube.Distance(e.K[i], e.K[j])
		}
	}
	dp := make([][]int, size)
	for m := range dp {
		dp[m] = make([]int, k)
		for i := range dp[m] {
			dp[m][i] = inf
		}
	}
	dp[1][0] = 0 // start the cycle at u_0
	for mask := 1; mask < size; mask++ {
		for i := 0; i < k; i++ {
			if mask&(1<<i) == 0 || dp[mask][i] == inf {
				continue
			}
			for j := 1; j < k; j++ {
				if mask&(1<<j) != 0 {
					continue
				}
				nm := mask | 1<<j
				if cand := dp[mask][i] + dist[i][j]; cand < dp[nm][j] {
					dp[nm][j] = cand
				}
			}
		}
	}
	best := inf
	for i := 1; i < k; i++ {
		if dp[size-1][i] != inf {
			if cand := dp[size-1][i] + dist[i][0]; cand < best {
				best = cand
			}
		}
	}
	if k == 1 {
		return 0
	}
	return best
}
