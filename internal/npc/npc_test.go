package npc

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/graphx"
	"multicastnet/internal/opt"
	"multicastnet/internal/topology"
)

// rectGrid builds the full w x h grid graph.
func rectGrid(w, h int) *graphx.GridGraph {
	var pts []graphx.Point
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pts = append(pts, graphx.Point{X: x, Y: y})
		}
	}
	return graphx.NewGridGraph(pts)
}

// lShape is a small non-Hamiltonian grid graph (a 3-vertex L tromino).
func lShape() *graphx.GridGraph {
	return graphx.NewGridGraph([]graphx.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})
}

// TestMeshInstanceEquivalence checks the Theorem 4.1 equivalence on small
// grids: the grid has a Hamilton cycle iff the mesh instance has a
// multicast cycle of length |V(G)|.
func TestMeshInstanceEquivalence(t *testing.T) {
	cases := []struct {
		name string
		g    *graphx.GridGraph
	}{
		{"2x2", rectGrid(2, 2)},
		{"4x3", rectGrid(4, 3)},
		{"3x3", rectGrid(3, 3)}, // no Hamilton cycle (odd bipartite)
		{"L", lShape()},
	}
	for _, c := range cases {
		hasHC := c.g.Graph().HamiltonCycle() != nil
		inst := MeshInstanceFromGrid(c.g)
		// Use the exact closed-walk solver with K[0] as source.
		k := core.MustMulticastSet(inst.Mesh, inst.K[0], inst.K[1:])
		cyc := opt.OptimalCycleLength(inst.Mesh, k)
		if hasHC && cyc != c.g.N() {
			t.Errorf("%s: Hamiltonian grid but OMC length %d != %d", c.name, cyc, c.g.N())
		}
		if !hasHC && cyc <= c.g.N() {
			t.Errorf("%s: non-Hamiltonian grid but OMC length %d <= %d", c.name, cyc, c.g.N())
		}
	}
}

// TestExtendGridForPath checks the Lemma 4.1 equivalence: G has a
// Hamilton cycle iff G' has a Hamilton path from s (ending at t).
func TestExtendGridForPath(t *testing.T) {
	cases := []struct {
		name string
		g    *graphx.GridGraph
	}{
		{"2x2", rectGrid(2, 2)},
		{"4x3", rectGrid(4, 3)},
		{"3x3", rectGrid(3, 3)},
		{"L", lShape()},
	}
	for _, c := range cases {
		hasHC := c.g.Graph().HamiltonCycle() != nil
		gp, s, tt := ExtendGridForPath(c.g)
		gpg := gp.Graph()
		if gpg.Degree(tt) != 1 {
			t.Errorf("%s: t has degree %d, want 1", c.name, gpg.Degree(tt))
		}
		path := gpg.HamiltonPathFrom(s)
		if hasHC && path == nil {
			t.Errorf("%s: Hamiltonian grid but G' has no Hamilton path from s", c.name)
		}
		if !hasHC && path != nil {
			t.Errorf("%s: non-Hamiltonian grid but G' has Hamilton path %v", c.name, path)
		}
		if path != nil && path[len(path)-1] != tt {
			t.Errorf("%s: Hamilton path must end at t", c.name)
		}
	}
}

// TestExample41Embedding reproduces Example 4.1: the 8-vertex grid of
// Fig. 4.2 (the 2x4 grid, whose BFS layers from the corner are
// {v0},{v1,v2},{v3,v4},{v5,v6},{v7}) embeds in a 32-cube with pairwise
// distances 6 on grid edges and 8 otherwise.
func TestExample41Embedding(t *testing.T) {
	g := rectGrid(4, 2)
	e := NewCubeEmbedding(g)
	if e.Cube.Dim != 32 {
		t.Fatalf("cube dimension %d, want 32", e.Cube.Dim)
	}
	layers := g.Graph().BFSLayers(0)
	wantSizes := []int{1, 2, 2, 2, 1}
	for i, w := range wantSizes {
		if len(layers[i]) != w {
			t.Fatalf("layer %d size %d, want %d", i, len(layers[i]), w)
		}
	}
	// u_0 must be 1111 followed by zeros (step 1 of the selection).
	if e.K[0] != topology.NodeID(0b1111)<<28 {
		t.Errorf("u_0 = %b, want 1111 in the leading block", e.K[0])
	}
	if err := e.VerifyDistances(g); err != nil {
		t.Error(err)
	}
}

// TestCubeEmbeddingDistances checks the Lemma 4.2/4.3 distance property
// on several grids.
func TestCubeEmbeddingDistances(t *testing.T) {
	for _, g := range []*graphx.GridGraph{rectGrid(2, 2), rectGrid(3, 3), rectGrid(5, 2), lShape()} {
		e := NewCubeEmbedding(g)
		if err := e.VerifyDistances(g); err != nil {
			t.Errorf("%d-vertex grid: %v", g.N(), err)
		}
	}
}

// TestTheorem45Equivalence checks the reduction's headline equivalence:
// the shortest cycle through K has length 6k iff the grid has a Hamilton
// cycle (and at least 6k+2 otherwise, since any non-edge hop costs 8).
func TestTheorem45Equivalence(t *testing.T) {
	cases := []struct {
		name string
		g    *graphx.GridGraph
	}{
		{"2x2", rectGrid(2, 2)},
		{"4x2", rectGrid(4, 2)},
		{"3x3", rectGrid(3, 3)},
		{"L", lShape()},
	}
	for _, c := range cases {
		hasHC := c.g.Graph().HamiltonCycle() != nil
		e := NewCubeEmbedding(c.g)
		cyc := e.ShortestKCycle()
		bound := e.MulticastCycleBound()
		if hasHC && cyc != bound {
			t.Errorf("%s: Hamiltonian but K-cycle %d != 6k = %d", c.name, cyc, bound)
		}
		if !hasHC && cyc <= bound {
			t.Errorf("%s: non-Hamiltonian but K-cycle %d <= 6k = %d", c.name, cyc, bound)
		}
	}
}

func TestConstructionGuards(t *testing.T) {
	for i, fn := range []func(){
		func() { MeshInstanceFromGrid(graphx.NewGridGraph(nil)) },
		func() { NewCubeEmbedding(rectGrid(8, 8)) }, // 256-bit cube: too large
		func() {
			// Disconnected grid.
			NewCubeEmbedding(graphx.NewGridGraph([]graphx.Point{{X: 0, Y: 0}, {X: 5, Y: 5}}))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestTheorem42OMPEquivalence makes the Theorem 4.2 reduction executable:
// embed G' (the Lemma 4.1 extension) in a mesh, take K = V(G') with
// source s, and check that the optimal multicast path for K has length
// |V(G')| - 1 exactly when the original grid has a Hamilton cycle.
func TestTheorem42OMPEquivalence(t *testing.T) {
	cases := []struct {
		name string
		g    *graphx.GridGraph
	}{
		{"2x2", rectGrid(2, 2)},
		{"4x3", rectGrid(4, 3)},
		{"3x3", rectGrid(3, 3)},
		{"L", lShape()},
	}
	for _, c := range cases {
		hasHC := c.g.Graph().HamiltonCycle() != nil
		gp, sIdx, _ := ExtendGridForPath(c.g)
		inst := MeshInstanceFromGrid(gp)
		src := inst.K[sIdx]
		var dests []topology.NodeID
		for i, v := range inst.K {
			if i != sIdx {
				dests = append(dests, v)
			}
		}
		k := core.MustMulticastSet(inst.Mesh, src, dests)
		length, _ := opt.OptimalPathLength(inst.Mesh, k)
		want := gp.N() - 1
		if hasHC && length != want {
			t.Errorf("%s: Hamiltonian grid but OMP length %d != %d", c.name, length, want)
		}
		if !hasHC && length <= want {
			t.Errorf("%s: non-Hamiltonian grid but OMP length %d <= %d", c.name, length, want)
		}
	}
}
