package dfr

import (
	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// This file implements the Section 8.2 adaptive-routing extension. The
// dissertation notes that "the main issue in providing adaptive routing
// is to avoid deadlock" and that existing adaptive unicast schemes "are
// not directly applicable to the case of multicast communication". The
// observation made executable here: the deadlock-freedom of the Chapter 6
// path schemes rests only on label monotonicity — every hop moves
// strictly toward the target label, so all dependencies point up (or all
// down) the label order. Any choice among the distance-reducing neighbors
// inside the label window therefore preserves the acyclic channel
// dependency graph. Routing may pick that hop adaptively — by channel
// occupancy — and remain deadlock-free.

// ChannelOracle reports live channel occupancy; the simulator implements
// it, letting routes adapt to current traffic at injection time.
type ChannelOracle interface {
	// Busy reports whether the channel is currently held by a worm.
	Busy(c Channel) bool
}

// neverBusy is the idle-network oracle: adaptive routing degenerates to
// the deterministic routing function R.
type neverBusy struct{}

// Busy implements ChannelOracle.
func (neverBusy) Busy(Channel) bool { return false }

// IdleOracle returns an oracle that reports every channel free.
func IdleOracle() ChannelOracle { return neverBusy{} }

// AdaptiveNextHop selects the next hop from u toward v like the routing
// function R, but among the distance-reducing neighbors inside the label
// window it prefers one whose outgoing channel is currently free,
// breaking ties toward the greatest (ascending) or least (descending)
// label exactly as R does. With an idle oracle it returns R's choice.
func AdaptiveNextHop(t topology.Topology, l labeling.Labeling, u, v topology.NodeID,
	class int, oracle ChannelOracle) topology.NodeID {
	if u == v {
		panic("dfr: AdaptiveNextHop with u == v")
	}
	lu, lv := l.Label(u), l.Label(v)
	du := t.Distance(u, v)
	var (
		bestFree, bestAny           topology.NodeID
		bestFreeLabel, bestAnyLabel int
		haveFree, haveAny           bool
	)
	better := func(lp, cur int, have bool) bool {
		if !have {
			return true
		}
		if lu < lv {
			return lp > cur
		}
		return lp < cur
	}
	var buf [32]topology.NodeID
	for _, p := range t.Neighbors(u, buf[:0]) {
		lp := l.Label(p)
		inWindow := (lu < lv && lp > lu && lp <= lv) || (lu > lv && lp < lu && lp >= lv)
		if !inWindow || t.Distance(p, v) != du-1 {
			continue
		}
		if better(lp, bestAnyLabel, haveAny) {
			bestAny, bestAnyLabel, haveAny = p, lp, true
		}
		if !oracle.Busy(Channel{From: u, To: p, Class: class}) && better(lp, bestFreeLabel, haveFree) {
			bestFree, bestFreeLabel, haveFree = p, lp, true
		}
	}
	if haveFree {
		return bestFree
	}
	if haveAny {
		return bestAny
	}
	// No distance-reducing neighbor in the window (possible only for
	// labelings other than the canonical ones): fall back to R.
	return core.NextHop(t, l, u, v)
}

// adaptiveRouteThrough extends a path through every destination in order
// using AdaptiveNextHop.
func adaptiveRouteThrough(t topology.Topology, l labeling.Labeling, start topology.NodeID,
	dests []topology.NodeID, class int, oracle ChannelOracle) []topology.NodeID {
	nodes := []topology.NodeID{start}
	cur := start
	for _, d := range dests {
		guard := 0
		for cur != d {
			next := AdaptiveNextHop(t, l, cur, d, class, oracle)
			nodes = append(nodes, next)
			cur = next
			if guard++; guard > t.Nodes()+1 {
				panic("dfr: adaptive routing failed to converge")
			}
		}
	}
	return nodes
}

// AdaptiveDualPath is dual-path routing with congestion-adaptive hop
// selection: the same high/low destination partition and visiting order
// as Fig. 6.11, but each hop avoids currently-busy channels when a free
// distance-reducing in-window alternative exists. Paths remain label-
// monotone, so the scheme is deadlock-free for exactly the Assertion 2
// reason; with an idle oracle it produces DualPath's routes.
func AdaptiveDualPath(t topology.Topology, l labeling.Labeling, k core.MulticastSet,
	oracle ChannelOracle) Star {
	dh, dl := HighLowPartition(l, k)
	s := Star{Source: k.Source}
	if len(dh) > 0 {
		s.Paths = append(s.Paths, PathRoute{
			Nodes: adaptiveRouteThrough(t, l, k.Source, dh, 0, oracle),
			Dests: dh,
		})
	}
	if len(dl) > 0 {
		s.Paths = append(s.Paths, PathRoute{
			Nodes: adaptiveRouteThrough(t, l, k.Source, dl, 0, oracle),
			Dests: dl,
		})
	}
	return s
}
