package dfr

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// TestVirtualChannelPathEqualsDualAtV1 pins the base case: one channel
// copy is exactly dual-path routing.
func TestVirtualChannelPathEqualsDualAtV1(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	rng := stats.NewRand(3)
	for trial := 0; trial < 100; trial++ {
		k := randomSet(m, rng, 1+rng.Intn(12))
		v1 := VirtualChannelPath(m, l, k, 1)
		dual := DualPath(m, l, k)
		if v1.Traffic() != dual.Traffic() || len(v1.Paths) != len(dual.Paths) {
			t.Fatalf("trial %d: V=1 differs from dual-path (%d/%d vs %d/%d)",
				trial, v1.Traffic(), len(v1.Paths), dual.Traffic(), len(dual.Paths))
		}
		for i := range v1.Paths {
			if len(v1.Paths[i].Nodes) != len(dual.Paths[i].Nodes) {
				t.Fatalf("trial %d: path %d differs", trial, i)
			}
		}
	}
}

// TestVirtualChannelPathProperty checks validity, per-copy label
// monotonicity, class disjointness, and the distance benefit of more
// copies.
func TestVirtualChannelPathProperty(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	rng := stats.NewRand(17)
	var dist1, dist4 int
	for trial := 0; trial < 150; trial++ {
		k := randomSet(m, rng, 2+rng.Intn(14))
		for _, v := range []int{1, 2, 4} {
			s := VirtualChannelPath(m, l, k, v)
			if err := s.Validate(m, k); err != nil {
				t.Fatalf("trial %d v=%d: %v", trial, v, err)
			}
			if len(s.Paths) > 2*v {
				t.Fatalf("trial %d: %d paths with v=%d", trial, len(s.Paths), v)
			}
			for _, p := range s.Paths {
				if p.Class < 0 || p.Class >= 2*v {
					t.Fatalf("trial %d: class %d out of range for v=%d", trial, p.Class, v)
				}
				up := l.Label(p.Nodes[len(p.Nodes)-1]) > l.Label(p.Nodes[0])
				if up != (p.Class%2 == 0) {
					t.Fatalf("trial %d: class parity does not match direction", trial)
				}
				for i := 1; i < len(p.Nodes); i++ {
					a, b := l.Label(p.Nodes[i-1]), l.Label(p.Nodes[i])
					if up && a >= b || !up && a <= b {
						t.Fatalf("trial %d: path not label-monotone", trial)
					}
				}
			}
		}
		dist1 += VirtualChannelPath(m, l, k, 1).MaxDistance()
		dist4 += VirtualChannelPath(m, l, k, 4).MaxDistance()
	}
	if dist4 >= dist1 {
		t.Errorf("4 copies should shorten the worst path: V=4 %d vs V=1 %d", dist4, dist1)
	}
}

// TestVirtualChannelPathCDGAcyclic verifies the extension stays
// deadlock-free: each copy network's dependency graph is acyclic across
// many interacting multicasts.
func TestVirtualChannelPathCDGAcyclic(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	rng := stats.NewRand(23)
	rec := NewDependencyRecorder()
	for trial := 0; trial < 200; trial++ {
		k := randomSet(m, rng, 1+rng.Intn(14))
		rec.AddStar(VirtualChannelPath(m, l, k, 4))
	}
	if cyc := rec.FindCycle(); cyc != nil {
		t.Errorf("virtual-channel CDG has cycle %v", cyc)
	}
}

func TestVirtualChannelPathPanicsOnBadV(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	l := labeling.NewMeshBoustrophedon(m)
	k := core.MustMulticastSet(m, 0, []topology.NodeID{5})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for v=0")
		}
	}()
	VirtualChannelPath(m, l, k, 0)
}

// TestDualPathOn3DMesh exercises the Section 4.3 extension: the generic
// dual-path and fixed-path routing over the plane-serpentine labeling of
// a 3D mesh, with validity, monotonicity, and an acyclic CDG.
func TestDualPathOn3DMesh(t *testing.T) {
	m := topology.NewMesh3D(4, 3, 3)
	l, err := core.LabelingFor(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(29)
	rec := NewDependencyRecorder()
	for trial := 0; trial < 150; trial++ {
		k := randomSet(m, rng, 1+rng.Intn(10))
		for _, s := range []Star{DualPath(m, l, k), FixedPath(m, l, k)} {
			if err := s.Validate(m, k); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for _, p := range s.Paths {
				up := l.Label(p.Nodes[len(p.Nodes)-1]) > l.Label(p.Nodes[0])
				for i := 1; i < len(p.Nodes); i++ {
					a, b := l.Label(p.Nodes[i-1]), l.Label(p.Nodes[i])
					if up && a >= b || !up && a <= b {
						t.Fatalf("trial %d: 3D path not label-monotone", trial)
					}
				}
			}
		}
		rec.AddStar(DualPath(m, l, k))
	}
	if cyc := rec.FindCycle(); cyc != nil {
		t.Errorf("3D dual-path CDG has cycle %v", cyc)
	}
}
