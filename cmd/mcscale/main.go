// Command mcscale runs the beyond-paper scale study: simulator throughput
// (simulated cycles per wall-clock second) on topologies far beyond the
// dissertation's 8x8 mesh — a 64x64 mesh, an 8-ary 4-cube and a
// 65536-node hypercube — under the serial engine and the sharded parallel
// engine at several shard counts. Every sharded run is verified
// field-for-field against its serial reference, so the study is also a
// large-topology determinism audit.
//
// Usage:
//
//	mcscale -out results            # write scale_throughput/scale_speedup (txt+csv) and scale_study.txt
//	mcscale -quick                  # reduced cycle budgets
//	mcscale -shards 2,4,8,16        # override the shard-count sweep
//	mcscale -csv                    # emit CSV on stdout instead of files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"multicastnet/internal/experiments"
	"multicastnet/internal/profiling"
	"multicastnet/internal/stats"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced cycle budgets")
	seed := flag.Uint64("seed", 1990, "study seed")
	shards := flag.String("shards", "", "comma-separated shard counts (default 2,4,8)")
	csv := flag.Bool("csv", false, "emit CSV on stdout instead of writing files")
	simcheck := flag.Bool("simcheck", false, "run wormsim invariant checks inside every run")
	prof := profiling.AddFlags()
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	opts := experiments.ScaleDefaults()
	if *quick {
		opts = experiments.ScaleQuick()
	}
	opts.Seed = *seed
	opts.Check = *simcheck
	if *shards != "" {
		for _, f := range strings.Split(*shards, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 2 {
				fatal(fmt.Errorf("bad -shards entry %q (want integers >= 2)", f))
			}
			opts.ShardCounts = append(opts.ShardCounts, v)
		}
	}

	if runtime.NumCPU() == 1 {
		fmt.Println("mcscale: warning: runtime.NumCPU() == 1 — the sharded engine has no parallelism to exploit; speedup columns measure coordination overhead only")
	}

	res := experiments.ScaleStudy(opts)

	if *csv {
		for _, fig := range []*stats.Figure{res.Throughput, res.Speedup} {
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, fig := range []*stats.Figure{res.Throughput, res.Speedup} {
		base := strings.ReplaceAll(strings.ToLower(fig.ID), " ", "_")
		writeFigure(*out, base+".txt", fig, false)
		writeFigure(*out, base+".csv", fig, true)
		fmt.Printf("wrote %s\n", base)
	}
	writeSummary(*out, res)
	fmt.Printf("wrote scale_study.txt (gomaxprocs=%d)\n", res.GOMAXPROCS)
}

// writeSummary records the study conditions next to the figures: shard
// speedups are only meaningful relative to the core count the study ran
// on, so GOMAXPROCS is part of the result.
func writeSummary(dir string, res experiments.ScaleResult) {
	f, err := os.Create(filepath.Join(dir, "scale_study.txt"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "Beyond-paper scale study\n")
	fmt.Fprintf(f, "gomaxprocs: %d (host cores available to the sharded engine)\n", res.GOMAXPROCS)
	fmt.Fprintf(f, "cpus: %d\n\n", runtime.NumCPU())
	fmt.Fprintf(f, "%-14s %7s %12s %10s %14s %8s %8s\n",
		"workload", "shards", "cycles", "wall_s", "cycles/sec", "speedup", "matched")
	for _, p := range res.Points {
		fmt.Fprintf(f, "%-14s %7d %12d %10.3f %14.0f %8.2f %8v\n",
			p.Workload, p.Shards, p.Cycles, p.WallSecs, p.CyclesPerSec, p.Speedup, p.Matched)
	}
	fmt.Fprintf(f, "\nEvery sharded run's Result was compared field-for-field against the\n")
	fmt.Fprintf(f, "serial engine's; the study aborts on any divergence, so a committed\n")
	fmt.Fprintf(f, "summary implies byte-identical simulation at every shard count.\n")
	fmt.Fprintf(f, "Speedup > 1 requires gomaxprocs > 1; on a single-core host the sharded\n")
	fmt.Fprintf(f, "engine only measures its coordination overhead.\n")
	if runtime.NumCPU() == 1 {
		fmt.Fprintf(f, "\nwarning: this run executed with runtime.NumCPU() == 1 — speedup\n")
		fmt.Fprintf(f, "columns reflect coordination overhead, not parallel scaling.\n")
	}
}

func writeFigure(dir, name string, fig *stats.Figure, csv bool) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if csv {
		err = fig.WriteCSV(f)
	} else {
		err = fig.WriteTable(f)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcscale:", err)
	os.Exit(1)
}
