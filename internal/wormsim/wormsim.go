// Package wormsim is a flit-clock wormhole network simulator — the
// from-scratch replacement for the CSIM-based simulation program of
// Section 7.2. One simulation cycle equals one flit time on a channel.
// Worms (in-flight messages) acquire channels one hop per cycle; a
// blocked worm stalls in place holding everything it has acquired, which
// is exactly the wormhole behaviour that creates deadlock (Section 6.1).
//
// Path worms model the path-based multicast schemes: a single header
// acquires the route channel by channel and the body follows in a
// pipeline.
//
// Tree worms model tree-like multicast routing as Section 6.1 describes
// it: the header flit is replicated at branch nodes and all branches
// proceed forward in lock-step, so the whole frontier (one tree level)
// must be secured before any branch advances. The worm claims whatever
// frontier channels are free — holding them — while it waits for the
// busy ones ("all of the required channels must be available before
// transmission on any of them may take place"). Blockage of any branch
// therefore stalls the entire tree while it keeps channels occupied, the
// behaviour that makes naive tree multicast slow under contention and
// deadlock-prone (Figs. 6.1 and 6.4).
//
// Channel arbitration is first-come first-served: a worm that finds a
// channel busy enqueues on it and acquires it, in order, once free.
// Deadlock is detected via wait-for-graph cycles and reported rather than
// hidden.
//
// # Performance architecture
//
// The simulator is indexed, event-driven and data-oriented (see
// DESIGN.md, "Simulator data layout"):
//
//   - Channels are interned to dense int32 ids at injection time, so the
//     per-cycle inner loop indexes flat parallel arrays instead of
//     hashing dfr.Channel map keys.
//   - Worms live in a slot arena (Network.slots) and are referenced by
//     dense int32 indices (wormRef) everywhere — the in-flight list, the
//     active list, wake queues, channel owner and FIFO state, shard round
//     entries. The scheduling hot loop therefore moves int32s, not
//     pointers: no GC write barriers on queue/list writes, 2-8x denser
//     queues, and nothing extra for the collector to trace.
//   - Per-channel state is struct-of-arrays: chanOwner / chanQHead /
//     chanQueue are parallel flat slices indexed by channel id. The
//     dead-channel flag is folded into the owner word (deadChan
//     sentinel), so the uncontended availability check is one int32 load.
//   - Blocked worms are parked: they leave the active list and are woken
//     only when a channel they wait on is released to them (FIFO heads
//     only), instead of being re-polled every cycle. Wakeups are merged
//     into the active scan in ascending worm-id order, which keeps the
//     cycle-level semantics bit-identical to the original every-worm scan
//     (worms were always processed in injection order).
//   - The cold audits reuse epoch-stamped scratch (DetectDeadlock,
//     CheckInvariants, FailWhere), so periodic checks neither allocate
//     nor distort profiles.
//
// Observer callbacks (OnDelivery, OnComplete, OnLost, ...) are
// notifications: they must not inject traffic or step the network.
package wormsim

import (
	"fmt"

	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// wormKind distinguishes path worms from lock-step tree worms.
type wormKind uint8

const (
	pathWorm wormKind = iota
	treeWorm
)

// wormRef is a dense index into the worm arena (Network.slots). Slots are
// recycled (arena.go), so a wormRef identifies a worm only while that
// worm is live or within the two-cycle retirement grace period; the
// stable diagnostic identity is worm.id.
type wormRef = int32

const (
	// noWorm is the empty reference: no owner, no waiter.
	noWorm wormRef = -1
	// deadChan is the channel-owner sentinel for failed hardware. Folding
	// the dead flag into the owner word keeps the hot-path availability
	// check a single int32 compare — a dead channel is never noWorm, so
	// it can never be granted.
	deadChan wormRef = -2
)

// delivery marks a destination and where its router sits: the channel
// index along the path (path worms) or the depth of the arrival channel
// (tree worms).
type delivery struct {
	dest topology.NodeID
	idx  int // path: 1-based position; tree: depth of the arrival channel
	done bool
}

// treeLevel is one frontier of a tree worm: all channels at one depth.
// The lock-step header advances a full level at a time, claiming free
// channels immediately and waiting (while holding them) for the rest.
type treeLevel struct {
	channels []int32 // interned channel ids
	taken    []bool
	missing  int
	queued   bool
}

// worm is one in-flight wormhole message, stored by value in the slot
// arena. The id is stable across the worm's lifetime and identifies it in
// deadlock reports; the slot index (wormRef) is the reference every other
// structure uses.
type worm struct {
	kind wormKind
	id   int

	// Path worms.
	chans    []int32 // interned channel ids along the route
	headIdx  int     // next channel index to acquire
	queuedAt int     // headIdx value already enqueued for (-1: none)
	progress int     // total head advances, including drain into the final destination
	released int     // leading channels already released

	// Tree worms.
	levels []treeLevel

	deliveries []delivery
	undeliv    int
	length     int   // message length in flits
	spawned    int64 // cycle at which the multicast was initiated

	// Scheduling state (see Step): a parked worm is blocked and off the
	// active list; waking is idempotent per cycle via wakePending.
	parked      bool
	wakePending bool
	done        bool  // retired; awaiting compaction out of n.worms
	doneCycle   int64 // cycle of retirement, gating freelist reuse (arena.go)

	// mask is the set of shard regions (bit per worker) the worm's next
	// advance touches; maintained only when sharded stepping is enabled
	// (see shard.go) and recomputed whenever the head moves.
	mask uint64

	mcast int32 // multicast record index (Network.mcSlots), -1 when unset
}

// mcastState tracks one multicast (possibly several worms) for
// whole-multicast latency. Records live in Network.mcSlots and are
// referenced by index.
type mcastState struct {
	spawned   int64
	size      int    // destination count of the whole multicast
	remaining int    // undelivered destinations across all worms
	lost      int    // destinations lost to fault-killed worms
	worms     int    // worms still referencing this record (arena recycling)
	tag       uint64 // caller-chosen id reported by OnCompleteTag
}

// Network is the simulated wormhole network.
type Network struct {
	topo topology.Topology

	// Channel interning: dfr.Channel keys are resolved to dense ids once
	// at injection time; every per-cycle access is a slice index.
	chanIDs map[dfr.Channel]int32

	// Channel state, struct-of-arrays: parallel flat slices indexed by
	// the interned channel id. chanOwner is the only array the
	// uncontended advance touches; the FIFO arrays join in only under
	// contention. Queues are head-indexed: dequeuing advances the cursor
	// instead of reslicing, so the backing arrays keep their capacity and
	// steady-state wait episodes allocate nothing.
	chanOwner []wormRef   // owning worm, noWorm, or deadChan
	chanQHead []int32     // FIFO cursor into chanQueue[id]
	chanQueue [][]wormRef // per-channel FIFO backing, front at chanQHead
	// chanDead mirrors the deadChan sentinel: it changes only between
	// cycles (FailWhere, intern), so sharded workers may read it for
	// channels outside their region — chanOwner words of foreign regions
	// are being written concurrently during a round.
	chanDead []bool

	// Worm arena: every worm lives in slots and is referenced by index.
	// Pointers into slots are taken locally only and never held across an
	// allocWorm call (appends may move the backing array).
	slots []worm

	worms    []wormRef // in-flight worms, ascending id, lazily compacted
	inFlight int       // live entries in worms
	nextID   int
	cycle    int64
	progress bool // did any worm advance this cycle

	// Event scheduling: active holds the worms that may move this cycle
	// (ascending id). Releases wake parked FIFO heads; a wake lands in
	// wokenNow when the target's id is still ahead of the scan position
	// (it moves this cycle, as it would under the full scan) or in
	// wokenNext otherwise (it moves next cycle).
	active    []wormRef
	nextBuf   []wormRef
	wokenNow  wormHeap
	wokenNext []wormRef
	scanID    int  // id of the worm being processed by Step
	inStep    bool // routes wakes between wokenNow and wokenNext

	// Fault state: predicates applied to every channel — existing and
	// future-interned — by FailWhere; killed counts fault-killed worms.
	deadPreds []func(dfr.Channel) bool
	killed    int

	// FailWhere victim dedup: epoch stamps over worm slots replace the
	// per-activation map (faults.go).
	victimStamp []int64
	victimEpoch int64
	victimBuf   []wormRef

	// Sharded parallel stepping (shard.go); the zero value is the serial
	// engine.
	shard shardState

	// Worm arena freelist (arena.go): retired slots and multicast records
	// are recycled; the epoch-stamped node scratch replaces per-injection
	// position/depth maps.
	free         []wormRef
	freeHead     int
	mcSlots      []mcastState
	mcFree       []int32
	scratchStamp []int64
	scratchVal   []int32
	scratchEpoch int64

	// Reusable audit scratch (allocation-free steady state).
	dd ddScratch // DetectDeadlock
	ck ckScratch // CheckInvariants (check.go)

	// Observers.
	onDelivery       func(dest topology.NodeID, latencyCycles int64)
	onDeliveryDetail func(dest topology.NodeID, latencyCycles int64, mcastSize int)
	onComplete       func(latencyCycles int64)
	onCompleteTag    func(tag uint64, latencyCycles int64)
	onLost           func(dest topology.NodeID, mcastSize int)
}

// NewNetwork returns an empty network over topo. Channels are created
// lazily, so any channel class used by the injected routes is accepted.
func NewNetwork(topo topology.Topology) *Network {
	return &Network{topo: topo, chanIDs: make(map[dfr.Channel]int32)}
}

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// ActiveWorms returns the number of in-flight worms.
func (n *Network) ActiveWorms() int { return n.inFlight }

// movable reports whether any worm can advance without external input:
// the active list, this cycle's residual wakes, and next cycle's wakes
// are all empty. With no movable worms and no pending injections the
// network state is frozen, which Run exploits to fast-forward idle
// cycles.
func (n *Network) movable() bool {
	return len(n.active) > 0 || len(n.wokenNow) > 0 || len(n.wokenNext) > 0
}

// Idle reports whether the network is frozen: no worm can advance until
// new traffic is injected. Note an idle network may still hold parked
// worms (ActiveWorms > 0 while Idle is a wait-for deadlock).
func (n *Network) Idle() bool { return !n.movable() }

// FastForward jumps the clock to target, the externally driven analogue
// of Run's idle fast-forward. It is a no-op unless the network is idle
// and target is ahead of the current cycle — a frozen network's state is
// invariant under clock advances, so results are identical to stepping
// cycle by cycle.
func (n *Network) FastForward(target int64) {
	if target > n.cycle && !n.movable() {
		n.cycle = target
	}
}

// Busy implements dfr.ChannelOracle: it reports whether a channel is
// currently held by a worm, letting adaptive schemes route around live
// congestion at injection time.
func (n *Network) Busy(c dfr.Channel) bool {
	id, ok := n.chanIDs[c]
	return ok && n.chanOwner[id] >= 0
}

// OnDelivery registers a callback invoked for every destination delivery
// with the per-destination latency in cycles.
func (n *Network) OnDelivery(fn func(dest topology.NodeID, latencyCycles int64)) {
	n.onDelivery = fn
}

// OnDeliveryDetail registers a delivery callback that also receives the
// destination count of the delivering multicast, so unicast (size 1) and
// multicast traffic can be measured separately (the Section 8.2
// interaction study).
func (n *Network) OnDeliveryDetail(fn func(dest topology.NodeID, latencyCycles int64, mcastSize int)) {
	n.onDeliveryDetail = fn
}

// OnComplete registers a callback invoked when the last destination of a
// multicast is delivered, with the multicast's completion latency.
func (n *Network) OnComplete(fn func(latencyCycles int64)) { n.onComplete = fn }

// OnCompleteTag registers a completion callback that also receives the
// caller-chosen tag of InjectFlatTag, letting a service correlate each
// completion with the request that produced it. Multicasts injected
// without a tag report tag 0.
func (n *Network) OnCompleteTag(fn func(tag uint64, latencyCycles int64)) { n.onCompleteTag = fn }

// intern resolves a channel key to its dense id, creating (and
// validating) the state slots on first use. Validation therefore happens
// once per distinct channel rather than once per injection.
func (n *Network) intern(c dfr.Channel) int32 {
	if id, ok := n.chanIDs[c]; ok {
		return id
	}
	if !n.topo.Adjacent(c.From, c.To) {
		panic(fmt.Sprintf("wormsim: route uses non-channel %v", c))
	}
	id := int32(len(n.chanOwner))
	n.chanIDs[c] = id
	owner := noWorm
	for _, pred := range n.deadPreds {
		if pred(c) {
			owner = deadChan
			break
		}
	}
	n.chanOwner = append(n.chanOwner, owner)
	n.chanQHead = append(n.chanQHead, 0)
	n.chanQueue = append(n.chanQueue, nil)
	n.chanDead = append(n.chanDead, owner == deadChan)
	return id
}

// chanEnqueue appends wi to channel id's FIFO; callers guarantee
// at-most-once per wait episode via the worm-side queued markers, keeping
// stalls O(1) per cycle.
func (n *Network) chanEnqueue(id int32, wi wormRef) {
	n.chanQueue[id] = append(n.chanQueue[id], wi)
}

// chanWaiters is the live FIFO content of channel id, front first.
func (n *Network) chanWaiters(id int32) []wormRef {
	return n.chanQueue[id][n.chanQHead[id]:]
}

// chanFront returns the first waiter of channel id, or noWorm.
func (n *Network) chanFront(id int32) wormRef {
	q := n.chanQueue[id]
	if h := n.chanQHead[id]; int(h) < len(q) {
		return q[h]
	}
	return noWorm
}

// chanFreeFor reports whether wi is first in line for channel id (or the
// queue is empty because wi never had to wait). The caller has already
// established the channel is unowned and alive (chanOwner == noWorm).
func (n *Network) chanFreeFor(id int32, wi wormRef) bool {
	q := n.chanQueue[id]
	h := n.chanQHead[id]
	return int(h) == len(q) || q[h] == wi
}

// chanAvailableTo reports whether wi may take channel id now: alive,
// free, and wi is first in line.
func (n *Network) chanAvailableTo(id int32, wi wormRef) bool {
	return n.chanOwner[id] == noWorm && n.chanFreeFor(id, wi)
}

// chanAvailableToQueued is chanAvailableTo for a worm known to be
// enqueued.
func (n *Network) chanAvailableToQueued(id int32, wi wormRef) bool {
	if n.chanOwner[id] != noWorm {
		return false
	}
	q := n.chanQueue[id]
	h := n.chanQHead[id]
	return int(h) < len(q) && q[h] == wi
}

// chanTake grants channel id to wi, popping it from the FIFO head if it
// was queued. The queue resets in place whenever it drains, keeping the
// backing array's capacity.
func (n *Network) chanTake(id int32, wi wormRef) {
	q := n.chanQueue[id]
	h := n.chanQHead[id]
	if int(h) < len(q) && q[h] == wi {
		h++
		if int(h) == len(q) {
			n.chanQueue[id] = q[:0]
			h = 0
		}
		n.chanQHead[id] = h
	}
	n.chanOwner[id] = wi
}

// addWorm registers a freshly injected worm: it joins both the in-flight
// list and the active list (ids are strictly increasing, so appends keep
// both sorted).
func (n *Network) addWorm(wi wormRef) {
	n.worms = append(n.worms, wi)
	n.inFlight++
	n.active = append(n.active, wi)
	w := &n.slots[wi]
	n.mcSlots[w.mcast].worms++
	if n.shard.n > 1 {
		w.mask = n.regionMask(w)
	}
}

// InjectMulticast injects one multicast routed as a set of path routes
// and/or tree routes, all spawned at the current cycle. lengthFlits is
// the message length in flits.
func (n *Network) InjectMulticast(paths []dfr.PathRoute, trees []dfr.TreeRoute, lengthFlits int) {
	if lengthFlits < 1 {
		panic("wormsim: message must have at least one flit")
	}
	mci := n.allocMcast()
	mc := &n.mcSlots[mci]
	mc.spawned = n.cycle
	for _, p := range paths {
		mc.size += len(p.Dests)
	}
	for _, t := range trees {
		mc.size += len(t.Dests)
	}
	for _, p := range paths {
		if len(p.Nodes) < 2 {
			// Degenerate: source-only path with no channels; its
			// destinations could only be the source, which MulticastSet
			// forbids.
			continue
		}
		wi := n.allocWorm()
		w := &n.slots[wi]
		w.kind = pathWorm
		w.id = n.nextID
		n.nextID++
		w.length = lengthFlits
		w.spawned = n.cycle
		w.queuedAt = -1
		w.mcast = mci
		for i := 1; i < len(p.Nodes); i++ {
			w.chans = append(w.chans, n.intern(dfr.Channel{From: p.Nodes[i-1], To: p.Nodes[i], Class: p.HopClass(i - 1)}))
		}
		// First-occurrence path positions via the epoch scratch.
		n.beginScratch()
		for i, node := range p.Nodes {
			n.nodeMark(int(node), int32(i))
		}
		for _, d := range p.Dests {
			idx := n.nodeVal(int(d))
			if idx <= 0 {
				panic(fmt.Sprintf("wormsim: path does not visit destination %d", d))
			}
			w.deliveries = append(w.deliveries, delivery{dest: d, idx: int(idx)})
			w.undeliv++
			mc.remaining++
		}
		n.addWorm(wi)
	}
	for _, t := range trees {
		if len(t.Edges) == 0 {
			continue
		}
		n.addWorm(n.buildTreeWorm(t, lengthFlits, mci))
	}
}

// InjectFlat injects one multicast from its dense CSR plan
// (routing.Flatten): positions and depths were resolved at flattening
// time, so injection walks packed arrays with no per-injection maps.
// Behaviour is identical to InjectMulticast of the originating plan.
func (n *Network) InjectFlat(fp *routing.FlatPlan, lengthFlits int) {
	n.InjectFlatTag(fp, lengthFlits, 0)
}

// InjectFlatTag is InjectFlat with a caller-chosen tag reported back by
// OnCompleteTag when the multicast's last destination is delivered.
func (n *Network) InjectFlatTag(fp *routing.FlatPlan, lengthFlits int, tag uint64) {
	if lengthFlits < 1 {
		panic("wormsim: message must have at least one flit")
	}
	mci := n.allocMcast()
	mc := &n.mcSlots[mci]
	mc.spawned = n.cycle
	mc.size = int(fp.TotalDests)
	mc.tag = tag
	for p := 0; p < fp.Paths(); p++ {
		wi := n.allocWorm()
		w := &n.slots[wi]
		w.kind = pathWorm
		w.id = n.nextID
		n.nextID++
		w.length = lengthFlits
		w.spawned = n.cycle
		w.queuedAt = -1
		w.mcast = mci
		lo, hi := fp.PathOff[p], fp.PathOff[p+1]
		clo := lo - int32(p)
		for i := lo + 1; i < hi; i++ {
			w.chans = append(w.chans, n.intern(dfr.Channel{
				From:  topology.NodeID(fp.PathNodes[i-1]),
				To:    topology.NodeID(fp.PathNodes[i]),
				Class: int(fp.PathClass[clo+i-lo-1]),
			}))
		}
		dlo, dhi := fp.PathDestOff[p], fp.PathDestOff[p+1]
		for d := dlo; d < dhi; d++ {
			w.deliveries = append(w.deliveries, delivery{
				dest: topology.NodeID(fp.PathDest[d]),
				idx:  int(fp.PathDestPos[d]),
			})
			w.undeliv++
			mc.remaining++
		}
		n.addWorm(wi)
	}
	for t := 0; t < fp.Trees(); t++ {
		wi := n.allocWorm()
		w := &n.slots[wi]
		w.kind = treeWorm
		w.id = n.nextID
		n.nextID++
		w.length = lengthFlits
		w.spawned = n.cycle
		w.queuedAt = -1
		w.mcast = mci
		llo, lhi := fp.TreeOff[t], fp.TreeOff[t+1]
		w.levels = growLevels(w.levels, int(lhi-llo))
		for l := llo; l < lhi; l++ {
			clo, chi := fp.TreeLevelOff[l], fp.TreeLevelOff[l+1]
			lv := &w.levels[l-llo]
			for c := clo; c < chi; c++ {
				lv.channels = append(lv.channels, n.intern(dfr.Channel{
					From:  topology.NodeID(fp.TreeFrom[c]),
					To:    topology.NodeID(fp.TreeTo[c]),
					Class: int(fp.TreeClass[c]),
				}))
			}
			for len(lv.taken) < len(lv.channels) {
				lv.taken = append(lv.taken, false)
			}
			lv.missing = len(lv.channels)
		}
		dlo, dhi := fp.TreeDestOff[t], fp.TreeDestOff[t+1]
		for d := dlo; d < dhi; d++ {
			w.deliveries = append(w.deliveries, delivery{
				dest: topology.NodeID(fp.TreeDest[d]),
				idx:  int(fp.TreeDestDepth[d]),
			})
			w.undeliv++
			mc.remaining++
		}
		n.addWorm(wi)
	}
}

// buildTreeWorm converts a TreeRoute into a tree worm with per-depth
// frontier levels. Node depths come from the epoch scratch (edges are
// parent-before-child, so one pass resolves them) and the worm's level
// and channel arrays are arena-recycled.
func (n *Network) buildTreeWorm(t dfr.TreeRoute, lengthFlits int, mci int32) wormRef {
	n.beginScratch()
	n.nodeMark(int(t.Root), 0)
	maxd := 0
	for _, e := range t.Edges {
		d := n.nodeVal(int(e.From)) + 1
		n.nodeMark(int(e.To), d)
		if int(d) > maxd {
			maxd = int(d)
		}
	}
	wi := n.allocWorm()
	w := &n.slots[wi]
	w.kind = treeWorm
	w.id = n.nextID
	n.nextID++
	w.length = lengthFlits
	w.spawned = n.cycle
	w.queuedAt = -1
	w.mcast = mci
	w.levels = growLevels(w.levels, maxd)
	for _, e := range t.Edges {
		l := &w.levels[n.nodeVal(int(e.To))-1]
		l.channels = append(l.channels, n.intern(e))
	}
	for i := range w.levels {
		l := &w.levels[i]
		for len(l.taken) < len(l.channels) {
			l.taken = append(l.taken, false)
		}
		l.missing = len(l.channels)
	}
	for _, d := range t.Dests {
		dep := n.nodeVal(int(d))
		if dep <= 0 {
			panic(fmt.Sprintf("wormsim: tree does not reach destination %d", d))
		}
		w.deliveries = append(w.deliveries, delivery{dest: d, idx: int(dep)})
		w.undeliv++
		n.mcSlots[mci].remaining++
	}
	return wi
}

// release frees channel id held by wi and wakes the FIFO head waiting on
// it, if any. Availability only ever arises at release time (a take sets
// an owner), so waking queue heads here is the complete wake condition.
// Dead channels are never released: their owner word is deadChan, which
// never matches wi.
func (n *Network) release(id int32, wi wormRef) {
	if n.chanOwner[id] != wi {
		return
	}
	n.chanOwner[id] = noWorm
	if f := n.chanFront(id); f != noWorm {
		n.wake(f)
	}
}

// wake schedules a parked worm to be processed again. If its id is still
// ahead of the current scan position it runs this very cycle — exactly
// when the full scan would have polled it — otherwise next cycle.
func (n *Network) wake(wi wormRef) {
	w := &n.slots[wi]
	if w.done || !w.parked || w.wakePending {
		return
	}
	w.wakePending = true
	if n.inStep && w.id > n.scanID {
		n.wokenPush(wi)
	} else {
		n.wokenNext = append(n.wokenNext, wi)
	}
}

// Step advances the simulation by one cycle. It returns true if any worm
// made progress.
//
// Only movable worms are visited: the active list (worms that advanced
// last cycle) merged, in ascending id order, with worms woken by channel
// releases. Parked worms cost nothing until a release reaches them.
func (n *Network) Step() bool {
	if n.shard.n > 1 {
		return n.stepSharded()
	}
	n.cycle++
	n.progress = false
	n.mergeWokenNext()

	n.inStep = true
	next := n.nextBuf[:0]
	i := 0
	for {
		var wi wormRef
		if len(n.wokenNow) > 0 && (i >= len(n.active) || n.slots[n.wokenNow[0]].id < n.slots[n.active[i]].id) {
			wi = n.wokenPop()
			w := &n.slots[wi]
			w.wakePending = false
			w.parked = false
		} else if i < len(n.active) {
			wi = n.active[i]
			i++
		} else {
			break
		}
		w := &n.slots[wi]
		if w.done {
			continue // killed by a fault while on the active list
		}
		n.scanID = w.id
		var live bool
		if w.kind == pathWorm {
			live = n.advancePath(wi, w)
		} else {
			live = n.advanceTree(wi, w)
		}
		if !live {
			n.retire(wi)
		} else if !w.parked {
			next = append(next, wi)
		}
	}
	n.inStep = false
	n.nextBuf = n.active[:0]
	n.active = next
	return n.progress
}

// mergeWokenNext folds last cycle's deferred wakes into the active list,
// preserving ascending id order. Shared by the serial and sharded step
// paths.
func (n *Network) mergeWokenNext() {
	if len(n.wokenNext) == 0 {
		return
	}
	n.sortRefsByID(n.wokenNext)
	merged := n.nextBuf[:0]
	i, j := 0, 0
	for i < len(n.active) && j < len(n.wokenNext) {
		if n.slots[n.active[i]].id < n.slots[n.wokenNext[j]].id {
			merged = append(merged, n.active[i])
			i++
		} else {
			wi := n.wokenNext[j]
			w := &n.slots[wi]
			w.wakePending = false
			w.parked = false
			merged = append(merged, wi)
			j++
		}
	}
	merged = append(merged, n.active[i:]...)
	for ; j < len(n.wokenNext); j++ {
		wi := n.wokenNext[j]
		w := &n.slots[wi]
		w.wakePending = false
		w.parked = false
		merged = append(merged, wi)
	}
	n.nextBuf = n.active[:0]
	n.active = merged
	n.wokenNext = n.wokenNext[:0]
}

// retire removes a drained worm from the in-flight accounting; the worms
// list is compacted lazily once half of it is dead. Idempotent: a worm
// killed by a fault mid-advance is already retired when Step sees it.
func (n *Network) retire(wi wormRef) {
	w := &n.slots[wi]
	if w.done {
		return
	}
	w.done = true
	w.doneCycle = n.cycle
	n.inFlight--
	if dead := len(n.worms) - n.inFlight; dead > 32 && dead > n.inFlight {
		live := n.worms[:0]
		for _, v := range n.worms {
			if !n.slots[v].done {
				live = append(live, v)
			} else {
				n.recycleWorm(v)
			}
		}
		n.worms = live
	}
}

// advancePath moves a path worm one cycle; false retires it.
func (n *Network) advancePath(wi wormRef, w *worm) bool {
	moved := false
	if w.headIdx < len(w.chans) {
		id := w.chans[w.headIdx]
		owner := n.chanOwner[id]
		if owner == deadChan {
			// The header reached failed hardware: the message is dropped
			// and its in-flight flits are flushed (Section 2.3.4 flow
			// control has no way to back up past an acquired channel).
			n.killWorm(wi)
			return false
		}
		if owner == noWorm && n.chanFreeFor(id, wi) {
			n.chanTake(id, wi)
			w.headIdx++
			w.progress++
			moved = true
		} else {
			if w.queuedAt != w.headIdx {
				n.chanEnqueue(id, wi)
				w.queuedAt = w.headIdx
			}
			w.parked = true
		}
	} else {
		// Fully routed; the body drains at one flit per cycle.
		w.progress++
		moved = true
	}
	if moved {
		n.progress = true
		// Deliveries: the last flit crosses the arrival channel at
		// progress idx + length - 1.
		for i := range w.deliveries {
			d := &w.deliveries[i]
			if !d.done && w.progress >= d.idx+w.length-1 {
				n.deliver(w, d)
			}
		}
		// Releases: the tail crosses channel index i at progress i + length.
		for w.released < len(w.chans) && w.progress >= w.released+w.length {
			n.release(w.chans[w.released], wi)
			w.released++
		}
	}
	return w.released < len(w.chans) || w.undeliv > 0
}

// advanceTree moves a tree worm one cycle; false retires it. The header
// frontier is the level at index w.headIdx: the worm claims whatever
// frontier channels are free (holding them) and crosses the level — one
// level per cycle, lock-step — only when the whole frontier is secured.
// w.progress counts crossed levels plus drain cycles, exactly like a path
// worm's channel count, so delivery and release timing share the path
// formulas with depth in place of path position.
func (n *Network) advanceTree(wi wormRef, w *worm) bool {
	moved := false
	if w.headIdx < len(w.levels) {
		l := &w.levels[w.headIdx]
		for _, id := range l.channels {
			if n.chanOwner[id] == deadChan {
				// Lock-step trees need the whole frontier; one dead
				// branch channel drops the whole message.
				n.killWorm(wi)
				return false
			}
		}
		if !l.queued {
			for _, id := range l.channels {
				n.chanEnqueue(id, wi)
			}
			l.queued = true
		}
		for i, id := range l.channels {
			if l.taken[i] {
				continue
			}
			if n.chanAvailableToQueued(id, wi) {
				n.chanTake(id, wi)
				l.taken[i] = true
				l.missing--
			}
		}
		if l.missing == 0 {
			w.headIdx++
			w.progress++
			moved = true
		} else {
			w.parked = true
		}
	} else {
		// Fully acquired; the replicated body drains one flit per cycle.
		w.progress++
		moved = true
	}
	if moved {
		n.progress = true
		for i := range w.deliveries {
			d := &w.deliveries[i]
			if !d.done && w.progress >= d.idx+w.length-1 {
				n.deliver(w, d)
			}
		}
		for w.released < len(w.levels) && w.progress >= w.released+w.length {
			for _, id := range w.levels[w.released].channels {
				n.release(id, wi)
			}
			w.released++
		}
	}
	return w.released < len(w.levels) || w.undeliv > 0
}

// deliver records one destination delivery.
func (n *Network) deliver(w *worm, d *delivery) {
	d.done = true
	w.undeliv--
	mci := w.mcast
	lat := n.cycle - w.spawned
	if n.onDelivery != nil {
		n.onDelivery(d.dest, lat)
	}
	if n.onDeliveryDetail != nil {
		n.onDeliveryDetail(d.dest, lat, n.mcSlots[mci].size)
	}
	mc := &n.mcSlots[mci]
	mc.remaining--
	// A multicast that lost any destination to a fault never completes;
	// completion latency is only defined for fully delivered multicasts.
	if mc.remaining == 0 && mc.lost == 0 {
		if n.onComplete != nil {
			n.onComplete(n.cycle - mc.spawned)
		}
		if n.onCompleteTag != nil {
			n.onCompleteTag(mc.tag, n.cycle-mc.spawned)
		}
	}
}

// DeadlockedWormIDs returns the ids of the worms on one wait-for cycle,
// or nil; a diagnostic alias of DetectDeadlock.
func (n *Network) DeadlockedWormIDs() []int {
	return n.DetectDeadlock()
}

// ddScratch is DetectDeadlock's reusable state: the periodic deadlock
// audit (every 64 cycles under Run) used to allocate maps and adjacency
// slices on every call — roughly a third of the serial hot-loop profile —
// and now reuses epoch-stamped slot-indexed scratch instead.
type ddScratch struct {
	live   []wormRef
	pos    []int32 // slot -> index into live, valid when stamp == epoch
	stamp  []int64
	epoch  int64
	adj    [][]int32 // wait-for edges, indexed by live position
	color  []uint8
	parent []int32
	stack  []ddFrame
}

// ddFrame is one explicit DFS frame: the iterative traversal keeps very
// large in-flight worm populations from overflowing the goroutine stack
// (the recursion depth equals the wait-for chain length).
type ddFrame struct {
	u    int32
	next int32 // index into adj[u] of the next edge to explore
}

// DetectDeadlock searches the wait-for graph for a cycle: worm A waits
// for worm B when B owns a channel A's header needs, or when B is queued
// ahead of A on it. Because a blocked worm holds every channel it has
// acquired until its header advances (wormhole flow control,
// Section 2.3.4), a wait-for cycle is a permanent deadlock. It returns
// the ids of the worms on one such cycle, or nil. Steady-state calls
// allocate nothing (a found cycle — which ends the run — is the only
// allocation).
func (n *Network) DetectDeadlock() []int {
	dd := &n.dd
	dd.epoch++
	if len(dd.stamp) < len(n.slots) {
		dd.stamp = append(dd.stamp, make([]int64, len(n.slots)-len(dd.stamp))...)
		dd.pos = append(dd.pos, make([]int32, len(n.slots)-len(dd.pos))...)
	}
	live := dd.live[:0]
	for _, wi := range n.worms {
		if !n.slots[wi].done {
			dd.stamp[wi] = dd.epoch
			dd.pos[wi] = int32(len(live))
			live = append(live, wi)
		}
	}
	dd.live = live
	for len(dd.adj) < len(live) {
		dd.adj = append(dd.adj, nil)
	}
	adj := dd.adj[:len(live)]
	for i := range adj {
		adj[i] = adj[i][:0]
	}
	for i, wi := range live {
		w := &n.slots[wi]
		if w.kind == pathWorm {
			if w.headIdx < len(w.chans) {
				n.ddAddWait(adj, int32(i), wi, w.chans[w.headIdx])
			}
			continue
		}
		if w.headIdx >= len(w.levels) {
			continue // draining; never blocks
		}
		l := &w.levels[w.headIdx]
		for ci, id := range l.channels {
			if !l.taken[ci] {
				n.ddAddWait(adj, int32(i), wi, id)
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	if cap(dd.color) < len(live) {
		dd.color = make([]uint8, len(live))
		dd.parent = make([]int32, len(live))
	}
	color := dd.color[:len(live)]
	parent := dd.parent[:len(live)]
	for i := range color {
		color[i] = white
		parent[i] = -1
	}
	stack := dd.stack[:0]
	defer func() { dd.stack = stack[:0] }()
	for start := range live {
		if color[start] != white {
			continue
		}
		color[start] = gray
		stack = append(stack[:0], ddFrame{u: int32(start)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if int(f.next) < len(adj[f.u]) {
				v := adj[f.u][f.next]
				f.next++
				switch color[v] {
				case white:
					parent[v] = f.u
					color[v] = gray
					stack = append(stack, ddFrame{u: v})
				case gray:
					cycle := []int{n.slots[live[v]].id}
					for x := f.u; x != v; x = parent[x] {
						cycle = append(cycle, n.slots[live[x]].id)
					}
					return cycle
				}
			} else {
				color[f.u] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// ddAddWait records the worms the worm at live position i (slot wi) waits
// for on channel id: the current owner, and every waiter queued ahead of
// it.
func (n *Network) ddAddWait(adj [][]int32, i int32, wi wormRef, id int32) {
	dd := &n.dd
	if o := n.chanOwner[id]; o >= 0 && o != wi && dd.stamp[o] == dd.epoch {
		adj[i] = append(adj[i], dd.pos[o])
	}
	for _, q := range n.chanWaiters(id) {
		if q == wi {
			break
		}
		if dd.stamp[q] == dd.epoch {
			adj[i] = append(adj[i], dd.pos[q])
		}
	}
}

// wormHeap is a binary min-heap of worm slot indices keyed by worm id,
// used to merge same-cycle wakeups into the ascending-id active scan.
// Push/pop live on Network (wokenPush/wokenPop) because the ordering key
// is slots[ref].id.
type wormHeap []wormRef

func (n *Network) wokenPush(wi wormRef) {
	h := append(n.wokenNow, wi)
	s := n.slots
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if s[h[p]].id <= s[h[i]].id {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	n.wokenNow = h
}

func (n *Network) wokenPop() wormRef {
	h := n.wokenNow
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	n.wokenNow = h
	s := n.slots
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && s[h[l]].id < s[h[min]].id {
			min = l
		}
		if r < len(h) && s[h[r]].id < s[h[min]].id {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
