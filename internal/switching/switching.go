// Package switching models the contention-free network latency of the four
// switching technologies compared in Section 2.2 and Fig. 2.3:
// store-and-forward, virtual cut-through, circuit switching, and wormhole
// routing. Latencies follow the closed forms of the dissertation:
//
//	store-and-forward:  (L/B)(D + 1)
//	virtual cut-through: (Lh/B)D + L/B
//	circuit switching:   (Lc/B)D + L/B
//	wormhole routing:    (Lf/B)D + L/B
//
// with L the message length, B the channel bandwidth, D the hop distance,
// and Lh/Lc/Lf the header, control-packet, and flit lengths.
package switching

import "fmt"

// Technology identifies a switching technology.
type Technology int

// The four switching technologies of Section 2.2.
const (
	StoreAndForward Technology = iota
	VirtualCutThrough
	CircuitSwitching
	Wormhole
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case StoreAndForward:
		return "store-and-forward"
	case VirtualCutThrough:
		return "virtual cut-through"
	case CircuitSwitching:
		return "circuit switching"
	case Wormhole:
		return "wormhole"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// Params holds the physical parameters of the latency models. All sizes
// are in bytes and the bandwidth in bytes per microsecond, so latencies
// come out in microseconds.
type Params struct {
	MessageBytes float64 // L: message length
	Bandwidth    float64 // B: channel bandwidth (bytes/us)
	HeaderBytes  float64 // Lh: header length (virtual cut-through)
	ControlBytes float64 // Lc: circuit-establishment control packet
	FlitBytes    float64 // Lf: flit length (wormhole)
}

// DefaultParams are the dissertation's simulation parameters: 128-byte
// messages on 20 Mbyte/s channels (Section 7.2), 1-byte flits, and small
// header/control packets.
func DefaultParams() Params {
	return Params{
		MessageBytes: 128,
		Bandwidth:    20, // 20 Mbytes/s = 20 bytes/us
		HeaderBytes:  2,
		ControlBytes: 2,
		FlitBytes:    1,
	}
}

func (p Params) validate() {
	if p.Bandwidth <= 0 {
		panic("switching: bandwidth must be positive")
	}
	if p.MessageBytes < 0 || p.HeaderBytes < 0 || p.ControlBytes < 0 || p.FlitBytes < 0 {
		panic("switching: negative size parameter")
	}
}

// Latency returns the contention-free network latency, in microseconds,
// for transmitting one message over a path of hops channels.
func Latency(t Technology, p Params, hops int) float64 {
	p.validate()
	if hops < 0 {
		panic("switching: negative hop count")
	}
	d := float64(hops)
	l := p.MessageBytes / p.Bandwidth
	switch t {
	case StoreAndForward:
		// Each intermediate node stores the full packet: D full
		// transmissions plus the final delivery.
		return l * (d + 1)
	case VirtualCutThrough:
		return p.HeaderBytes/p.Bandwidth*d + l
	case CircuitSwitching:
		return p.ControlBytes/p.Bandwidth*d + l
	case Wormhole:
		return p.FlitBytes/p.Bandwidth*d + l
	default:
		panic("switching: unknown technology " + t.String())
	}
}

// DistanceSensitivity returns the marginal latency per extra hop, a direct
// reading of why distance dominates store-and-forward but barely matters
// for the pipelined technologies.
func DistanceSensitivity(t Technology, p Params) float64 {
	return Latency(t, p, 1) - Latency(t, p, 0)
}
