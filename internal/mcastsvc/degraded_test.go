package mcastsvc

import (
	"testing"

	"multicastnet/internal/fault"
	"multicastnet/internal/topology"
)

func degradedService(t *testing.T, m topology.Topology) *Service {
	t.Helper()
	svc, err := New(Config{Topology: m, SchemeName: "dual-path"})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestMulticastUnderFaultsHealthy checks the zero-fault case: one
// attempt, everything delivered, no degraded-mode accounting.
func TestMulticastUnderFaultsHealthy(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	svc := degradedService(t, m)
	g, err := svc.NewGroup([]topology.NodeID{0, 3, 12, 15})
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.MulticastUnderFaults(0, g, 64, nil, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempts != 1 || out.Delivered != 3 || out.Lost != 0 || out.Unreachable != 0 {
		t.Fatalf("healthy outcome = %+v", out)
	}
	if out.Degraded() {
		t.Fatalf("healthy run reports degraded treatment: %+v", out)
	}
	if out.DeliveryRatio() != 1 {
		t.Fatalf("delivery ratio = %v", out.DeliveryRatio())
	}
	if out.CompletionMicros <= 0 {
		t.Fatalf("no completion time recorded")
	}
}

// TestMulticastUnderFaultsRoutesAround checks a static link fault on the
// natural route: everything is still delivered because degraded routing
// masks the dead link before the first attempt.
func TestMulticastUnderFaultsRoutesAround(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	svc := degradedService(t, m)
	g, err := svc.NewGroup([]topology.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	fp := fault.NewStaticPlan(m, []fault.Event{
		{Kind: fault.LinkFault, A: 1, B: 2},
	})
	out, err := svc.MulticastUnderFaults(0, g, 64, fp, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Delivered != 3 || out.Lost != 0 || out.Unreachable != 0 {
		t.Fatalf("outcome = %+v, want full delivery around the fault", out)
	}
	if out.Attempts != 1 {
		t.Fatalf("static fault needed %d attempts", out.Attempts)
	}
}

// TestMulticastUnderFaultsMidRunRetry activates a fault mid-flight so
// the first attempt loses worms, then verifies the retry (re-routed over
// the updated mask) completes the delivery.
func TestMulticastUnderFaultsMidRunRetry(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	svc := degradedService(t, m)
	var members []topology.NodeID
	for v := topology.NodeID(0); v < 64; v += 7 {
		members = append(members, v)
	}
	g, err := svc.NewGroup(members)
	if err != nil {
		t.Fatal(err)
	}
	// Activation at cycle 20: mid-worm for a 64-flit message crossing an
	// 8x8 mesh. Cut links near the source so in-flight worms die.
	fp := fault.NewStaticPlan(m, []fault.Event{
		{Kind: fault.LinkFault, Cycle: 20, A: 0, B: 1},
		{Kind: fault.LinkFault, Cycle: 20, A: 1, B: 2},
		{Kind: fault.LinkFault, Cycle: 20, A: 2, B: 3},
	})
	out, err := svc.MulticastUnderFaults(0, g, 64, fp, RetryPolicy{MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.WormsKilled == 0 {
		t.Fatalf("mid-run activation killed nothing: %+v", out)
	}
	if out.Attempts < 2 {
		t.Fatalf("lossy first attempt did not trigger a retry: %+v", out)
	}
	if out.Lost != 0 || out.Unreachable != 0 {
		t.Fatalf("mesh stayed connected, yet outcome = %+v", out)
	}
	if out.Delivered != len(members)-1 {
		t.Fatalf("delivered %d of %d", out.Delivered, len(members)-1)
	}
}

// TestMulticastUnderFaultsPartition severs a member and checks it is
// accounted unreachable without burning retry attempts on it.
func TestMulticastUnderFaultsPartition(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	svc := degradedService(t, m)
	g, err := svc.NewGroup([]topology.NodeID{0, 5, 15})
	if err != nil {
		t.Fatal(err)
	}
	fp := fault.NewStaticPlan(m, []fault.Event{
		{Kind: fault.LinkFault, A: 14, B: 15},
		{Kind: fault.LinkFault, A: 11, B: 15},
	})
	out, err := svc.MulticastUnderFaults(0, g, 64, fp, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Partitioned || out.Unreachable != 1 {
		t.Fatalf("outcome = %+v, want one unreachable member", out)
	}
	if out.Delivered != 1 || out.Lost != 0 {
		t.Fatalf("outcome = %+v, want the reachable member delivered", out)
	}
	if out.Attempts != 1 {
		t.Fatalf("unreachable member burned retries: %+v", out)
	}
}

// TestMulticastUnderFaultsDeterministic pins reproducibility: the same
// seeded plan gives byte-identical outcomes.
func TestMulticastUnderFaultsDeterministic(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	svc := degradedService(t, m)
	var members []topology.NodeID
	for v := topology.NodeID(0); v < 64; v += 5 {
		members = append(members, v)
	}
	g, err := svc.NewGroup(members)
	if err != nil {
		t.Fatal(err)
	}
	fp := fault.NewPlan(m, fault.Spec{Links: 6, VCs: 3, Horizon: 200, Seed: 99})
	a, err := svc.MulticastUnderFaults(1, g, 128, fp, RetryPolicy{MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.MulticastUnderFaults(1, g, 128, fp, RetryPolicy{MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("outcomes diverged:\na: %+v\nb: %+v", a, b)
	}
}
