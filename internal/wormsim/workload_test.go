package wormsim

import (
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// fixedWorkload returns a WorkloadFunc over a fixed request list.
func fixedWorkload(reqs []struct {
	at    int64
	src   topology.NodeID
	dests []topology.NodeID
}) WorkloadFunc {
	i := 0
	return func() (int64, core.MulticastSet, bool) {
		if i >= len(reqs) {
			return 0, core.MulticastSet{}, false
		}
		r := reqs[i]
		i++
		return r.at, core.MulticastSet{Source: r.src, Dests: r.dests}, true
	}
}

func workloadReqs(m *topology.Mesh2D) []struct {
	at    int64
	src   topology.NodeID
	dests []topology.NodeID
} {
	return []struct {
		at    int64
		src   topology.NodeID
		dests []topology.NodeID
	}{
		{0, 0, []topology.NodeID{9, 18, 27}},
		{5, 63, []topology.NodeID{0}},
		{5, 7, []topology.NodeID{56, 12}},
		{40, 21, []topology.NodeID{42, 43, 44}},
		{1000, 3, []topology.NodeID{60, 61}},
	}
}

// TestRunWorkloadInjection: a workload source replaces the per-node
// Poisson generators — every request is injected at its cycle, every
// destination delivers, and the run ends at stream drain, not MaxCycles.
func TestRunWorkloadInjection(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	reqs := workloadReqs(m)
	wantDests := 0
	for _, r := range reqs {
		wantDests += len(r.dests)
	}
	res, err := Run(Config{
		Topology:   m,
		Route:      DualPathScheme(m, l),
		Workload:   fixedWorkload(reqs),
		BatchSize:  10,
		MinBatches: 1 << 30, // never converge early: drain the stream
		MaxCycles:  100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MulticastsSent != len(reqs) {
		t.Errorf("sent %d multicasts, want %d", res.MulticastsSent, len(reqs))
	}
	if res.Delivered != wantDests {
		t.Errorf("delivered %d destinations, want %d", res.Delivered, wantDests)
	}
	if res.Deadlocked {
		t.Error("workload run deadlocked")
	}
	// The last request launches at cycle 1000; the run must end shortly
	// after its delivery, not at the 100k cap.
	if res.Cycles >= 100_000 || res.Cycles < 1000 {
		t.Errorf("run spanned %d cycles, want drain shortly after cycle 1000", res.Cycles)
	}
}

// TestRunWorkloadDeterministicAcrossShards: identical workload results
// at any shard count.
func TestRunWorkloadDeterministicAcrossShards(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	l := labeling.NewMeshBoustrophedon(m)
	run := func(shards int) Result {
		res, err := Run(Config{
			Topology:   m,
			Route:      DualPathScheme(m, l),
			Workload:   fixedWorkload(workloadReqs(m)),
			BatchSize:  10,
			MinBatches: 1 << 30,
			MaxCycles:  100_000,
			Shards:     shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, shards := range []int{2, 3} {
		if got := run(shards); got != serial {
			t.Errorf("shards=%d result differs:\n got %+v\nwant %+v", shards, got, serial)
		}
	}
}

// TestRunWorkloadValidation: a config with neither a rate nor a
// workload source is rejected.
func TestRunWorkloadValidation(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	l := labeling.NewMeshBoustrophedon(m)
	_, err := Run(Config{Topology: m, Route: DualPathScheme(m, l)})
	if err == nil {
		t.Fatal("config without rate or workload accepted, want error")
	}
}
