// Package wormsim is a flit-clock wormhole network simulator — the
// from-scratch replacement for the CSIM-based simulation program of
// Section 7.2. One simulation cycle equals one flit time on a channel.
// Worms (in-flight messages) acquire channels one hop per cycle; a
// blocked worm stalls in place holding everything it has acquired, which
// is exactly the wormhole behaviour that creates deadlock (Section 6.1).
//
// Path worms model the path-based multicast schemes: a single header
// acquires the route channel by channel and the body follows in a
// pipeline.
//
// Tree worms model tree-like multicast routing as Section 6.1 describes
// it: the header flit is replicated at branch nodes and all branches
// proceed forward in lock-step, so the whole frontier (one tree level)
// must be secured before any branch advances. The worm claims whatever
// frontier channels are free — holding them — while it waits for the
// busy ones ("all of the required channels must be available before
// transmission on any of them may take place"). Blockage of any branch
// therefore stalls the entire tree while it keeps channels occupied, the
// behaviour that makes naive tree multicast slow under contention and
// deadlock-prone (Figs. 6.1 and 6.4).
//
// Channel arbitration is first-come first-served: a worm that finds a
// channel busy enqueues on it and acquires it, in order, once free.
// Deadlock is detected via wait-for-graph cycles and reported rather than
// hidden.
//
// # Performance architecture
//
// The simulator is indexed and event-driven (see DESIGN.md, "Simulator
// performance architecture"):
//
//   - Channels are interned to dense int32 ids at injection time, so the
//     per-cycle inner loop indexes a flat []chanState slice instead of
//     hashing dfr.Channel map keys.
//   - Blocked worms are parked: they leave the active list and are woken
//     only when a channel they wait on is released to them (FIFO heads
//     only), instead of being re-polled every cycle. Wakeups are merged
//     into the active scan in ascending worm-id order, which keeps the
//     cycle-level semantics bit-identical to the original every-worm scan
//     (worms were always processed in injection order).
package wormsim

import (
	"fmt"

	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// wormKind distinguishes path worms from lock-step tree worms.
type wormKind int

const (
	pathWorm wormKind = iota
	treeWorm
)

// delivery marks a destination and where its router sits: the channel
// index along the path (path worms) or the depth of the arrival channel
// (tree worms).
type delivery struct {
	dest topology.NodeID
	idx  int // path: 1-based position; tree: depth of the arrival channel
	done bool
}

// treeLevel is one frontier of a tree worm: all channels at one depth.
// The lock-step header advances a full level at a time, claiming free
// channels immediately and waiting (while holding them) for the rest.
type treeLevel struct {
	channels []int32 // interned channel ids
	taken    []bool
	missing  int
	queued   bool
}

// worm is one in-flight wormhole message. The id is stable across the
// worm's lifetime and identifies it in deadlock reports.
type worm struct {
	kind wormKind
	id   int

	// Path worms.
	chans    []int32 // interned channel ids along the route
	headIdx  int     // next channel index to acquire
	queuedAt int     // headIdx value already enqueued for (-1: none)
	progress int     // total head advances, including drain into the final destination
	released int     // leading channels already released

	// Tree worms.
	levels []treeLevel

	deliveries []delivery
	undeliv    int
	length     int   // message length in flits
	spawned    int64 // cycle at which the multicast was initiated

	// Scheduling state (see Step): a parked worm is blocked and off the
	// active list; waking is idempotent per cycle via wakePending.
	parked      bool
	wakePending bool
	done        bool  // retired; awaiting compaction out of n.worms
	doneCycle   int64 // cycle of retirement, gating freelist reuse (arena.go)

	// mask is the set of shard regions (bit per worker) the worm's next
	// advance touches; maintained only when sharded stepping is enabled
	// (see shard.go) and recomputed whenever the head moves.
	mask uint64

	mcast *mcastState
}

// mcastState tracks one multicast (possibly several worms) for
// whole-multicast latency.
type mcastState struct {
	spawned   int64
	size      int    // destination count of the whole multicast
	remaining int    // undelivered destinations across all worms
	lost      int    // destinations lost to fault-killed worms
	worms     int    // worms still referencing this record (arena recycling)
	tag       uint64 // caller-chosen id reported by OnCompleteTag
}

// chanState is the occupancy and FIFO wait queue of one channel. The
// queue is head-indexed: dequeuing advances qhead instead of reslicing,
// so the backing array's capacity is kept and steady-state wait episodes
// allocate nothing (the array resets in place whenever the queue drains).
type chanState struct {
	owner *worm
	queue []*worm
	qhead int
	dead  bool // failed hardware: never grantable again
}

// enqueue appends w; callers guarantee at-most-once per wait episode via
// the worm-side queued markers, keeping stalls O(1) per cycle.
func (c *chanState) enqueue(w *worm) {
	c.queue = append(c.queue, w)
}

// waiters is the live FIFO content, front first.
func (c *chanState) waiters() []*worm {
	return c.queue[c.qhead:]
}

// front returns the first waiter, or nil.
func (c *chanState) front() *worm {
	if c.qhead < len(c.queue) {
		return c.queue[c.qhead]
	}
	return nil
}

// availableTo reports whether w may take the channel now: alive, free,
// and w is first in line (or the queue is empty because w never had to
// wait).
func (c *chanState) availableTo(w *worm) bool {
	return !c.dead && c.owner == nil && (c.qhead == len(c.queue) || c.queue[c.qhead] == w)
}

// availableToQueued is availableTo for a worm known to be enqueued.
func (c *chanState) availableToQueued(w *worm) bool {
	return !c.dead && c.owner == nil && c.qhead < len(c.queue) && c.queue[c.qhead] == w
}

func (c *chanState) take(w *worm) {
	if c.qhead < len(c.queue) && c.queue[c.qhead] == w {
		c.queue[c.qhead] = nil
		c.qhead++
		if c.qhead == len(c.queue) {
			c.queue = c.queue[:0]
			c.qhead = 0
		}
	}
	c.owner = w
}

// Network is the simulated wormhole network.
type Network struct {
	topo topology.Topology

	// Channel interning: dfr.Channel keys are resolved to dense ids once
	// at injection time; every per-cycle access is a slice index.
	chanIDs map[dfr.Channel]int32
	chans   []chanState

	worms    []*worm // all in-flight worms, ascending id, lazily compacted
	inFlight int     // live entries in worms
	nextID   int
	cycle    int64
	progress bool // did any worm advance this cycle

	// Event scheduling: active holds the worms that may move this cycle
	// (ascending id). Releases wake parked FIFO heads; a wake lands in
	// wokenNow when the target's id is still ahead of the scan position
	// (it moves this cycle, as it would under the full scan) or in
	// wokenNext otherwise (it moves next cycle).
	active    []*worm
	nextBuf   []*worm
	wokenNow  wormHeap
	wokenNext []*worm
	scanID    int  // id of the worm being processed by Step
	inStep    bool // routes wakes between wokenNow and wokenNext

	// Fault state: predicates applied to every channel — existing and
	// future-interned — by FailWhere; killed counts fault-killed worms.
	deadPreds []func(dfr.Channel) bool
	killed    int

	// Sharded parallel stepping (shard.go); the zero value is the serial
	// engine.
	shard shardState

	// Worm arena (arena.go): retired worms and multicast records are
	// recycled; the epoch-stamped node scratch replaces per-injection
	// position/depth maps.
	free         []*worm
	freeHead     int
	mcFree       []*mcastState
	scratchStamp []int64
	scratchVal   []int32
	scratchEpoch int64

	// Observers.
	onDelivery       func(dest topology.NodeID, latencyCycles int64)
	onDeliveryDetail func(dest topology.NodeID, latencyCycles int64, mcastSize int)
	onComplete       func(latencyCycles int64)
	onCompleteTag    func(tag uint64, latencyCycles int64)
	onLost           func(dest topology.NodeID, mcastSize int)
}

// NewNetwork returns an empty network over topo. Channels are created
// lazily, so any channel class used by the injected routes is accepted.
func NewNetwork(topo topology.Topology) *Network {
	return &Network{topo: topo, chanIDs: make(map[dfr.Channel]int32)}
}

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// ActiveWorms returns the number of in-flight worms.
func (n *Network) ActiveWorms() int { return n.inFlight }

// movable reports whether any worm can advance without external input:
// the active list, this cycle's residual wakes, and next cycle's wakes
// are all empty. With no movable worms and no pending injections the
// network state is frozen, which Run exploits to fast-forward idle
// cycles.
func (n *Network) movable() bool {
	return len(n.active) > 0 || len(n.wokenNow) > 0 || len(n.wokenNext) > 0
}

// Idle reports whether the network is frozen: no worm can advance until
// new traffic is injected. Note an idle network may still hold parked
// worms (ActiveWorms > 0 while Idle is a wait-for deadlock).
func (n *Network) Idle() bool { return !n.movable() }

// FastForward jumps the clock to target, the externally driven analogue
// of Run's idle fast-forward. It is a no-op unless the network is idle
// and target is ahead of the current cycle — a frozen network's state is
// invariant under clock advances, so results are identical to stepping
// cycle by cycle.
func (n *Network) FastForward(target int64) {
	if target > n.cycle && !n.movable() {
		n.cycle = target
	}
}

// Busy implements dfr.ChannelOracle: it reports whether a channel is
// currently held by a worm, letting adaptive schemes route around live
// congestion at injection time.
func (n *Network) Busy(c dfr.Channel) bool {
	id, ok := n.chanIDs[c]
	return ok && n.chans[id].owner != nil
}

// OnDelivery registers a callback invoked for every destination delivery
// with the per-destination latency in cycles.
func (n *Network) OnDelivery(fn func(dest topology.NodeID, latencyCycles int64)) {
	n.onDelivery = fn
}

// OnDeliveryDetail registers a delivery callback that also receives the
// destination count of the delivering multicast, so unicast (size 1) and
// multicast traffic can be measured separately (the Section 8.2
// interaction study).
func (n *Network) OnDeliveryDetail(fn func(dest topology.NodeID, latencyCycles int64, mcastSize int)) {
	n.onDeliveryDetail = fn
}

// OnComplete registers a callback invoked when the last destination of a
// multicast is delivered, with the multicast's completion latency.
func (n *Network) OnComplete(fn func(latencyCycles int64)) { n.onComplete = fn }

// OnCompleteTag registers a completion callback that also receives the
// caller-chosen tag of InjectFlatTag, letting a service correlate each
// completion with the request that produced it. Multicasts injected
// without a tag report tag 0.
func (n *Network) OnCompleteTag(fn func(tag uint64, latencyCycles int64)) { n.onCompleteTag = fn }

// intern resolves a channel key to its dense id, creating (and
// validating) the state slot on first use. Validation therefore happens
// once per distinct channel rather than once per injection.
func (n *Network) intern(c dfr.Channel) int32 {
	if id, ok := n.chanIDs[c]; ok {
		return id
	}
	if !n.topo.Adjacent(c.From, c.To) {
		panic(fmt.Sprintf("wormsim: route uses non-channel %v", c))
	}
	id := int32(len(n.chans))
	n.chanIDs[c] = id
	st := chanState{}
	for _, pred := range n.deadPreds {
		if pred(c) {
			st.dead = true
			break
		}
	}
	n.chans = append(n.chans, st)
	return id
}

// addWorm registers a freshly injected worm: it joins both the in-flight
// list and the active list (ids are strictly increasing, so appends keep
// both sorted).
func (n *Network) addWorm(w *worm) {
	n.worms = append(n.worms, w)
	n.inFlight++
	n.active = append(n.active, w)
	w.mcast.worms++
	if n.shard.n > 1 {
		w.mask = n.regionMask(w)
	}
}

// InjectMulticast injects one multicast routed as a set of path routes
// and/or tree routes, all spawned at the current cycle. lengthFlits is
// the message length in flits.
func (n *Network) InjectMulticast(paths []dfr.PathRoute, trees []dfr.TreeRoute, lengthFlits int) {
	if lengthFlits < 1 {
		panic("wormsim: message must have at least one flit")
	}
	mc := n.allocMcast()
	mc.spawned = n.cycle
	for _, p := range paths {
		mc.size += len(p.Dests)
	}
	for _, t := range trees {
		mc.size += len(t.Dests)
	}
	for _, p := range paths {
		if len(p.Nodes) < 2 {
			// Degenerate: source-only path with no channels; its
			// destinations could only be the source, which MulticastSet
			// forbids.
			continue
		}
		w := n.allocWorm()
		w.kind = pathWorm
		w.id = n.nextID
		n.nextID++
		w.length = lengthFlits
		w.spawned = n.cycle
		w.queuedAt = -1
		w.mcast = mc
		for i := 1; i < len(p.Nodes); i++ {
			w.chans = append(w.chans, n.intern(dfr.Channel{From: p.Nodes[i-1], To: p.Nodes[i], Class: p.HopClass(i - 1)}))
		}
		// First-occurrence path positions via the epoch scratch.
		n.beginScratch()
		for i, node := range p.Nodes {
			n.nodeMark(int(node), int32(i))
		}
		for _, d := range p.Dests {
			idx := n.nodeVal(int(d))
			if idx <= 0 {
				panic(fmt.Sprintf("wormsim: path does not visit destination %d", d))
			}
			w.deliveries = append(w.deliveries, delivery{dest: d, idx: int(idx)})
			w.undeliv++
			mc.remaining++
		}
		n.addWorm(w)
	}
	for _, t := range trees {
		if len(t.Edges) == 0 {
			continue
		}
		n.addWorm(n.buildTreeWorm(t, lengthFlits, mc))
	}
}

// InjectFlat injects one multicast from its dense CSR plan
// (routing.Flatten): positions and depths were resolved at flattening
// time, so injection walks packed arrays with no per-injection maps.
// Behaviour is identical to InjectMulticast of the originating plan.
func (n *Network) InjectFlat(fp *routing.FlatPlan, lengthFlits int) {
	n.InjectFlatTag(fp, lengthFlits, 0)
}

// InjectFlatTag is InjectFlat with a caller-chosen tag reported back by
// OnCompleteTag when the multicast's last destination is delivered.
func (n *Network) InjectFlatTag(fp *routing.FlatPlan, lengthFlits int, tag uint64) {
	if lengthFlits < 1 {
		panic("wormsim: message must have at least one flit")
	}
	mc := n.allocMcast()
	mc.spawned = n.cycle
	mc.size = int(fp.TotalDests)
	mc.tag = tag
	for p := 0; p < fp.Paths(); p++ {
		w := n.allocWorm()
		w.kind = pathWorm
		w.id = n.nextID
		n.nextID++
		w.length = lengthFlits
		w.spawned = n.cycle
		w.queuedAt = -1
		w.mcast = mc
		lo, hi := fp.PathOff[p], fp.PathOff[p+1]
		clo := lo - int32(p)
		for i := lo + 1; i < hi; i++ {
			w.chans = append(w.chans, n.intern(dfr.Channel{
				From:  topology.NodeID(fp.PathNodes[i-1]),
				To:    topology.NodeID(fp.PathNodes[i]),
				Class: int(fp.PathClass[clo+i-lo-1]),
			}))
		}
		dlo, dhi := fp.PathDestOff[p], fp.PathDestOff[p+1]
		for d := dlo; d < dhi; d++ {
			w.deliveries = append(w.deliveries, delivery{
				dest: topology.NodeID(fp.PathDest[d]),
				idx:  int(fp.PathDestPos[d]),
			})
			w.undeliv++
			mc.remaining++
		}
		n.addWorm(w)
	}
	for t := 0; t < fp.Trees(); t++ {
		w := n.allocWorm()
		w.kind = treeWorm
		w.id = n.nextID
		n.nextID++
		w.length = lengthFlits
		w.spawned = n.cycle
		w.queuedAt = -1
		w.mcast = mc
		llo, lhi := fp.TreeOff[t], fp.TreeOff[t+1]
		w.levels = growLevels(w.levels, int(lhi-llo))
		for l := llo; l < lhi; l++ {
			clo, chi := fp.TreeLevelOff[l], fp.TreeLevelOff[l+1]
			lv := &w.levels[l-llo]
			for c := clo; c < chi; c++ {
				lv.channels = append(lv.channels, n.intern(dfr.Channel{
					From:  topology.NodeID(fp.TreeFrom[c]),
					To:    topology.NodeID(fp.TreeTo[c]),
					Class: int(fp.TreeClass[c]),
				}))
			}
			for len(lv.taken) < len(lv.channels) {
				lv.taken = append(lv.taken, false)
			}
			lv.missing = len(lv.channels)
		}
		dlo, dhi := fp.TreeDestOff[t], fp.TreeDestOff[t+1]
		for d := dlo; d < dhi; d++ {
			w.deliveries = append(w.deliveries, delivery{
				dest: topology.NodeID(fp.TreeDest[d]),
				idx:  int(fp.TreeDestDepth[d]),
			})
			w.undeliv++
			mc.remaining++
		}
		n.addWorm(w)
	}
}

// buildTreeWorm converts a TreeRoute into a tree worm with per-depth
// frontier levels. Node depths come from the epoch scratch (edges are
// parent-before-child, so one pass resolves them) and the worm's level
// and channel arrays are arena-recycled.
func (n *Network) buildTreeWorm(t dfr.TreeRoute, lengthFlits int, mc *mcastState) *worm {
	n.beginScratch()
	n.nodeMark(int(t.Root), 0)
	maxd := 0
	for _, e := range t.Edges {
		d := n.nodeVal(int(e.From)) + 1
		n.nodeMark(int(e.To), d)
		if int(d) > maxd {
			maxd = int(d)
		}
	}
	w := n.allocWorm()
	w.kind = treeWorm
	w.id = n.nextID
	n.nextID++
	w.length = lengthFlits
	w.spawned = n.cycle
	w.queuedAt = -1
	w.mcast = mc
	w.levels = growLevels(w.levels, maxd)
	for _, e := range t.Edges {
		l := &w.levels[n.nodeVal(int(e.To))-1]
		l.channels = append(l.channels, n.intern(e))
	}
	for i := range w.levels {
		l := &w.levels[i]
		for len(l.taken) < len(l.channels) {
			l.taken = append(l.taken, false)
		}
		l.missing = len(l.channels)
	}
	for _, d := range t.Dests {
		dep := n.nodeVal(int(d))
		if dep <= 0 {
			panic(fmt.Sprintf("wormsim: tree does not reach destination %d", d))
		}
		w.deliveries = append(w.deliveries, delivery{dest: d, idx: int(dep)})
		w.undeliv++
		mc.remaining++
	}
	return w
}

// release frees channel id held by w and wakes the FIFO head waiting on
// it, if any. Availability only ever arises at release time (a take sets
// an owner), so waking queue heads here is the complete wake condition.
func (n *Network) release(id int32, w *worm) {
	st := &n.chans[id]
	if st.owner != w {
		return
	}
	st.owner = nil
	if w := st.front(); w != nil {
		n.wake(w)
	}
}

// wake schedules a parked worm to be processed again. If its id is still
// ahead of the current scan position it runs this very cycle — exactly
// when the full scan would have polled it — otherwise next cycle.
func (n *Network) wake(w *worm) {
	if w.done || !w.parked || w.wakePending {
		return
	}
	w.wakePending = true
	if n.inStep && w.id > n.scanID {
		n.wokenNow.push(w)
	} else {
		n.wokenNext = append(n.wokenNext, w)
	}
}

// Step advances the simulation by one cycle. It returns true if any worm
// made progress.
//
// Only movable worms are visited: the active list (worms that advanced
// last cycle) merged, in ascending id order, with worms woken by channel
// releases. Parked worms cost nothing until a release reaches them.
func (n *Network) Step() bool {
	if n.shard.n > 1 {
		return n.stepSharded()
	}
	n.cycle++
	n.progress = false
	n.mergeWokenNext()

	n.inStep = true
	next := n.nextBuf[:0]
	i := 0
	for {
		var w *worm
		if len(n.wokenNow) > 0 && (i >= len(n.active) || n.wokenNow[0].id < n.active[i].id) {
			w = n.wokenNow.pop()
			w.wakePending = false
			w.parked = false
		} else if i < len(n.active) {
			w = n.active[i]
			i++
		} else {
			break
		}
		if w.done {
			continue // killed by a fault while on the active list
		}
		n.scanID = w.id
		var live bool
		if w.kind == pathWorm {
			live = n.advancePath(w)
		} else {
			live = n.advanceTree(w)
		}
		if !live {
			n.retire(w)
		} else if !w.parked {
			next = append(next, w)
		}
	}
	n.inStep = false
	n.nextBuf = n.active[:0]
	n.active = next
	return n.progress
}

// mergeWokenNext folds last cycle's deferred wakes into the active list,
// preserving ascending id order. Shared by the serial and sharded step
// paths.
func (n *Network) mergeWokenNext() {
	if len(n.wokenNext) == 0 {
		return
	}
	sortWormsByID(n.wokenNext)
	merged := n.nextBuf[:0]
	i, j := 0, 0
	for i < len(n.active) && j < len(n.wokenNext) {
		if n.active[i].id < n.wokenNext[j].id {
			merged = append(merged, n.active[i])
			i++
		} else {
			w := n.wokenNext[j]
			w.wakePending = false
			w.parked = false
			merged = append(merged, w)
			j++
		}
	}
	merged = append(merged, n.active[i:]...)
	for ; j < len(n.wokenNext); j++ {
		w := n.wokenNext[j]
		w.wakePending = false
		w.parked = false
		merged = append(merged, w)
	}
	n.nextBuf = n.active[:0]
	n.active = merged
	n.wokenNext = n.wokenNext[:0]
}

// retire removes a drained worm from the in-flight accounting; the worms
// list is compacted lazily once half of it is dead. Idempotent: a worm
// killed by a fault mid-advance is already retired when Step sees it.
func (n *Network) retire(w *worm) {
	if w.done {
		return
	}
	w.done = true
	w.doneCycle = n.cycle
	n.inFlight--
	if dead := len(n.worms) - n.inFlight; dead > 32 && dead > n.inFlight {
		live := n.worms[:0]
		for _, v := range n.worms {
			if !v.done {
				live = append(live, v)
			} else {
				n.recycleWorm(v)
			}
		}
		for i := len(live); i < len(n.worms); i++ {
			n.worms[i] = nil
		}
		n.worms = live
	}
}

// advancePath moves a path worm one cycle; false retires it.
func (n *Network) advancePath(w *worm) bool {
	moved := false
	if w.headIdx < len(w.chans) {
		id := w.chans[w.headIdx]
		st := &n.chans[id]
		if st.dead {
			// The header reached failed hardware: the message is dropped
			// and its in-flight flits are flushed (Section 2.3.4 flow
			// control has no way to back up past an acquired channel).
			n.killWorm(w)
			return false
		}
		if st.availableTo(w) {
			st.take(w)
			w.headIdx++
			w.progress++
			moved = true
		} else {
			if w.queuedAt != w.headIdx {
				st.enqueue(w)
				w.queuedAt = w.headIdx
			}
			w.parked = true
		}
	} else {
		// Fully routed; the body drains at one flit per cycle.
		w.progress++
		moved = true
	}
	if moved {
		n.progress = true
		// Deliveries: the last flit crosses the arrival channel at
		// progress idx + length - 1.
		for i := range w.deliveries {
			d := &w.deliveries[i]
			if !d.done && w.progress >= d.idx+w.length-1 {
				n.deliver(w, d)
			}
		}
		// Releases: the tail crosses channel index i at progress i + length.
		for w.released < len(w.chans) && w.progress >= w.released+w.length {
			n.release(w.chans[w.released], w)
			w.released++
		}
	}
	return w.released < len(w.chans) || w.undeliv > 0
}

// advanceTree moves a tree worm one cycle; false retires it. The header
// frontier is the level at index w.headIdx: the worm claims whatever
// frontier channels are free (holding them) and crosses the level — one
// level per cycle, lock-step — only when the whole frontier is secured.
// w.progress counts crossed levels plus drain cycles, exactly like a path
// worm's channel count, so delivery and release timing share the path
// formulas with depth in place of path position.
func (n *Network) advanceTree(w *worm) bool {
	moved := false
	if w.headIdx < len(w.levels) {
		l := &w.levels[w.headIdx]
		for _, id := range l.channels {
			if n.chans[id].dead {
				// Lock-step trees need the whole frontier; one dead
				// branch channel drops the whole message.
				n.killWorm(w)
				return false
			}
		}
		if !l.queued {
			for _, id := range l.channels {
				n.chans[id].enqueue(w)
			}
			l.queued = true
		}
		for i, id := range l.channels {
			if l.taken[i] {
				continue
			}
			if st := &n.chans[id]; st.availableToQueued(w) {
				st.take(w)
				l.taken[i] = true
				l.missing--
			}
		}
		if l.missing == 0 {
			w.headIdx++
			w.progress++
			moved = true
		} else {
			w.parked = true
		}
	} else {
		// Fully acquired; the replicated body drains one flit per cycle.
		w.progress++
		moved = true
	}
	if moved {
		n.progress = true
		for i := range w.deliveries {
			d := &w.deliveries[i]
			if !d.done && w.progress >= d.idx+w.length-1 {
				n.deliver(w, d)
			}
		}
		for w.released < len(w.levels) && w.progress >= w.released+w.length {
			for _, id := range w.levels[w.released].channels {
				n.release(id, w)
			}
			w.released++
		}
	}
	return w.released < len(w.levels) || w.undeliv > 0
}

// deliver records one destination delivery.
func (n *Network) deliver(w *worm, d *delivery) {
	d.done = true
	w.undeliv--
	if n.onDelivery != nil {
		n.onDelivery(d.dest, n.cycle-w.spawned)
	}
	if n.onDeliveryDetail != nil {
		n.onDeliveryDetail(d.dest, n.cycle-w.spawned, w.mcast.size)
	}
	w.mcast.remaining--
	// A multicast that lost any destination to a fault never completes;
	// completion latency is only defined for fully delivered multicasts.
	if w.mcast.remaining == 0 && w.mcast.lost == 0 {
		if n.onComplete != nil {
			n.onComplete(n.cycle - w.mcast.spawned)
		}
		if n.onCompleteTag != nil {
			n.onCompleteTag(w.mcast.tag, n.cycle-w.mcast.spawned)
		}
	}
}

// DeadlockedWormIDs returns the ids of the worms on one wait-for cycle,
// or nil; a diagnostic wrapper around DetectDeadlock.
func (n *Network) DeadlockedWormIDs() []int {
	cyc := n.DetectDeadlock()
	if cyc == nil {
		return nil
	}
	ids := make([]int, len(cyc))
	for i, w := range cyc {
		ids[i] = w.id
	}
	return ids
}

// DetectDeadlock searches the wait-for graph for a cycle: worm A waits
// for worm B when B owns a channel A's header needs, or when B is queued
// ahead of A on it. Because a blocked worm holds every channel it has
// acquired until its header advances (wormhole flow control,
// Section 2.3.4), a wait-for cycle is a permanent deadlock. It returns
// the worms on one such cycle, or nil.
func (n *Network) DetectDeadlock() []*worm {
	live := make([]*worm, 0, n.inFlight)
	index := make(map[*worm]int, n.inFlight)
	for _, w := range n.worms {
		if !w.done {
			index[w] = len(live)
			live = append(live, w)
		}
	}
	adj := make([][]int, len(live))
	addWait := func(from *worm, id int32) {
		st := &n.chans[id]
		i := index[from]
		if st.owner != nil && st.owner != from {
			if j, ok := index[st.owner]; ok {
				adj[i] = append(adj[i], j)
			}
		}
		for _, q := range st.waiters() {
			if q == from {
				break
			}
			if j, ok := index[q]; ok {
				adj[i] = append(adj[i], j)
			}
		}
	}
	for _, w := range live {
		if w.kind == pathWorm {
			if w.headIdx < len(w.chans) {
				addWait(w, w.chans[w.headIdx])
			}
			continue
		}
		if w.headIdx >= len(w.levels) {
			continue // draining; never blocks
		}
		l := &w.levels[w.headIdx]
		for i, id := range l.channels {
			if !l.taken[i] {
				addWait(w, id)
			}
		}
	}
	// Iterative DFS cycle detection: the explicit frame stack keeps very
	// large in-flight worm populations from overflowing the goroutine
	// stack (the recursion depth equals the wait-for chain length).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(live))
	parent := make([]int, len(live))
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		u    int
		next int // index into adj[u] of the next edge to explore
	}
	var stack []frame
	for start := range live {
		if color[start] != white {
			continue
		}
		color[start] = gray
		stack = append(stack[:0], frame{u: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.u]) {
				v := adj[f.u][f.next]
				f.next++
				switch color[v] {
				case white:
					parent[v] = f.u
					color[v] = gray
					stack = append(stack, frame{u: v})
				case gray:
					cycle := []*worm{live[v]}
					for x := f.u; x != v; x = parent[x] {
						cycle = append(cycle, live[x])
					}
					return cycle
				}
			} else {
				color[f.u] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// wormHeap is a binary min-heap of worms keyed by id, used to merge
// same-cycle wakeups into the ascending-id active scan.
type wormHeap []*worm

func (h *wormHeap) push(w *worm) {
	*h = append(*h, w)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p].id <= s[i].id {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *wormHeap) pop() *worm {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = nil
	s = s[:last]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].id < s[min].id {
			min = l
		}
		if r < len(s) && s[r].id < s[min].id {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
