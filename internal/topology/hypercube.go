package topology

import "fmt"

// Hypercube is the n-dimensional binary cube of Definition 4.2: 2^n nodes,
// each with a unique n-bit address; two nodes are adjacent exactly when
// their addresses differ in one bit. The NodeID of a node is its binary
// address interpreted as an integer.
type Hypercube struct {
	Dim int // n, the number of dimensions
}

// NewHypercube returns an n-cube. Dimensions up to 62 are accepted so
// that the Theorem 4.5 reductions (which need a 4k-cube for a k-vertex
// grid) can be materialized; Nodes() stays within int range.
func NewHypercube(n int) *Hypercube {
	if n < 1 || n > 62 {
		panic(fmt.Sprintf("topology: invalid hypercube dimension %d", n))
	}
	return &Hypercube{Dim: n}
}

// Name implements Topology.
func (h *Hypercube) Name() string { return fmt.Sprintf("%d-cube", h.Dim) }

// Nodes implements Topology.
func (h *Hypercube) Nodes() int { return 1 << h.Dim }

// MaxDegree implements Topology.
func (h *Hypercube) MaxDegree() int { return h.Dim }

// Neighbors implements Topology. Neighbors are produced from dimension 0
// (least-significant bit) upward.
func (h *Hypercube) Neighbors(v NodeID, buf []NodeID) []NodeID {
	checkNode(v, h.Nodes(), h)
	for i := 0; i < h.Dim; i++ {
		buf = append(buf, v^NodeID(1<<i))
	}
	return buf
}

// Adjacent implements Topology.
func (h *Hypercube) Adjacent(u, v NodeID) bool {
	return popcount(uint(u^v)) == 1
}

// Distance implements Topology: the Hamming distance ||b(u) XOR b(v)||.
func (h *Hypercube) Distance(u, v NodeID) int {
	checkNode(u, h.Nodes(), h)
	checkNode(v, h.Nodes(), h)
	return popcount(uint(u ^ v))
}

// Diameter implements Topology.
func (h *Hypercube) Diameter() int { return h.Dim }

// NearestOnShortestPaths implements ShortestRegion using the bitwise rule
// of Section 5.2: for each bit position j, the region node takes u's bit
// where s and t differ and the common bit where they agree.
func (h *Hypercube) NearestOnShortestPaths(s, t, u NodeID) NodeID {
	checkNode(s, h.Nodes(), h)
	checkNode(t, h.Nodes(), h)
	checkNode(u, h.Nodes(), h)
	differ := s ^ t // bits free to vary along shortest s-t paths
	return (u & differ) | (s &^ differ)
}

func popcount(x uint) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
