package experiments

import (
	"fmt"
	"runtime"
	"time"

	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// The beyond-paper scale study: the dissertation's simulations stop at an
// 8x8 mesh; this study drives the sharded simulator across networks two
// orders of magnitude larger — a 64x64 mesh, an 8-ary 4-cube and a
// 65536-node hypercube — at shard counts {1, 2, 4, 8}, measuring
// simulated cycles per wall-clock second. Every sharded run is also
// checked field-for-field against its serial Result, so the study doubles
// as a large-topology determinism audit.

// ScaleWorkload is one fixed simulation workload of the study.
type ScaleWorkload struct {
	Name string
	// Build constructs the topology (deferred: the 2^16-node hypercube
	// state is only precomputed when the workload actually runs).
	Build func() topology.Topology
	// Scheme is the registry scheme routing the workload; plans are
	// injected in dense CSR form through a shared plan cache.
	Scheme string
	// InterarrivalMicros is the per-node mean inter-arrival time, scaled
	// with node count so the in-flight population stays comparable.
	InterarrivalMicros float64
	AvgDests           int
	// MaxCycles is the fixed cycle budget; runs never converge early, so
	// every engine simulates exactly the same workload.
	MaxCycles int64
}

// ScaleOptions configure the study.
type ScaleOptions struct {
	Seed uint64
	// ShardCounts are the sharded engine configurations measured against
	// serial; nil selects {2, 4, 8}.
	ShardCounts []int
	// Workloads overrides the workload set; nil selects ScaleWorkloads.
	Workloads []ScaleWorkload
	// CycleFrac scales every workload's cycle budget (0 = 1.0) — the
	// -quick knob.
	CycleFrac float64
	// Check runs the wormsim invariant audit inside every run.
	Check bool
}

func (o ScaleOptions) shardCounts() []int {
	if o.ShardCounts != nil {
		return o.ShardCounts
	}
	return []int{2, 4, 8}
}

func (o ScaleOptions) workloads() []ScaleWorkload {
	if o.Workloads != nil {
		return o.Workloads
	}
	return ScaleWorkloads()
}

// ScaleDefaults are the committed-figure settings.
func ScaleDefaults() ScaleOptions { return ScaleOptions{Seed: 1990} }

// ScaleQuick shrinks the cycle budgets for smoke runs.
func ScaleQuick() ScaleOptions { return ScaleOptions{Seed: 1990, CycleFrac: 0.15} }

// ScaleWorkloads returns the default workload set. Budgets are sized so
// the full study runs in minutes on one core.
func ScaleWorkloads() []ScaleWorkload {
	return []ScaleWorkload{
		{
			Name:               "mesh64x64",
			Build:              func() topology.Topology { return topology.NewMesh2D(64, 64) },
			Scheme:             "dual-path",
			InterarrivalMicros: 10_000, // 4096 nodes: ~64x the 8x8 per-node load spacing
			AvgDests:           10,
			MaxCycles:          200_000,
		},
		{
			Name:               "cube8ary4",
			Build:              func() topology.Topology { return topology.NewKAryNCube(8, 4) },
			Scheme:             "dual-path",
			InterarrivalMicros: 10_000,
			AvgDests:           10,
			MaxCycles:          200_000,
		},
		{
			Name:               "hypercube64k",
			Build:              func() topology.Topology { return topology.NewHypercube(16) },
			Scheme:             "multi-path",
			InterarrivalMicros: 160_000, // 65536 nodes
			AvgDests:           10,
			MaxCycles:          40_000,
		},
	}
}

// ScalePoint is one measured (workload, shard-count) coordinate.
type ScalePoint struct {
	Workload string
	// Shards is the engine configuration: 1 is the serial engine.
	Shards       int
	Cycles       int64
	WallSecs     float64
	CyclesPerSec float64
	// Speedup is CyclesPerSec over the workload's serial CyclesPerSec.
	Speedup float64
	// Matched reports that the run's Result was field-for-field identical
	// to the serial run (always true for the serial point itself).
	Matched bool
}

// ScaleResult is the full study output.
type ScaleResult struct {
	GOMAXPROCS int
	Points     []ScalePoint
	Throughput *stats.Figure
	Speedup    *stats.Figure
}

// scaleRun executes one workload under one engine configuration.
func scaleRun(w ScaleWorkload, topo topology.Topology, route wormsim.RouteFunc,
	shards int, o ScaleOptions) (wormsim.Result, int64, float64) {
	budget := w.MaxCycles
	if o.CycleFrac > 0 {
		budget = int64(float64(budget) * o.CycleFrac)
	}
	cfg := wormsim.Config{
		Topology:               topo,
		Route:                  route,
		MeanInterarrivalMicros: w.InterarrivalMicros,
		AvgDests:               w.AvgDests,
		Seed:                   stats.DeriveSeed(o.Seed, "scale/"+w.Name),
		WarmupDeliveries:       50,
		BatchSize:              100,
		MinBatches:             1 << 30, // never converge: fixed cycle budget
		MaxCycles:              budget,
		Shards:                 shards,
		Check:                  o.Check,
	}
	start := time.Now()
	res, err := wormsim.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("scale %s shards=%d: %v", w.Name, shards, err))
	}
	return res, res.Cycles, time.Since(start).Seconds()
}

// ScaleStudy measures every workload at every shard count, serial first.
// Runs execute sequentially — each one owns the machine, so the wall
// times are comparable. A sharded run whose Result diverges from serial
// panics: the study's timings are only meaningful for an engine that is
// byte-identical to the reference.
func ScaleStudy(o ScaleOptions) ScaleResult {
	out := ScaleResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Throughput: &stats.Figure{ID: "Scale throughput",
			Title:  "Simulator throughput vs shard count (beyond-paper topologies)",
			XLabel: "shards", YLabel: "simulated cycles/sec"},
		Speedup: &stats.Figure{ID: "Scale speedup",
			Title:  "Sharded-engine speedup over serial (1.0 = serial)",
			XLabel: "shards", YLabel: "speedup vs serial"},
	}
	for _, w := range o.workloads() {
		topo := w.Build()
		st, err := routing.SharedState(topo)
		if err != nil {
			panic(err)
		}
		r, err := routing.New(w.Scheme, st)
		if err != nil {
			panic(err)
		}
		route := wormsim.FlatRouteFuncOf(routing.Flat(r, routing.NewPlanCache(0)))

		ts := out.Throughput.AddSeries(w.Name)
		ss := out.Speedup.AddSeries(w.Name)
		// Untimed warmup: populates the shared plan cache (and the
		// allocator) so the timed serial run is not charged for one-time
		// costs the sharded runs then inherit.
		scaleRun(w, topo, route, 0, o)
		serial, cycles, secs := scaleRun(w, topo, route, 0, o)
		if serial.Delivered == 0 {
			panic(fmt.Sprintf("scale %s: workload delivered nothing", w.Name))
		}
		base := float64(cycles) / secs
		out.Points = append(out.Points, ScalePoint{
			Workload: w.Name, Shards: 1, Cycles: cycles, WallSecs: secs,
			CyclesPerSec: base, Speedup: 1, Matched: true,
		})
		ts.Add(1, base)
		ss.Add(1, 1)
		for _, shards := range o.shardCounts() {
			res, cycles, secs := scaleRun(w, topo, route, shards, o)
			if res != serial {
				panic(fmt.Sprintf("scale %s shards=%d diverged from serial:\nserial:  %+v\nsharded: %+v",
					w.Name, shards, serial, res))
			}
			cps := float64(cycles) / secs
			out.Points = append(out.Points, ScalePoint{
				Workload: w.Name, Shards: shards, Cycles: cycles, WallSecs: secs,
				CyclesPerSec: cps, Speedup: cps / base, Matched: true,
			})
			ts.Add(float64(shards), cps)
			ss.Add(float64(shards), cps/base)
		}
	}
	return out
}

// SimThroughputSharded is SimThroughput under the sharded engine: the
// identical 8x8-mesh workload stepped with the given shard count (0 or 1
// is the serial engine). The simulated cycle count — and every statistic —
// matches the serial run exactly; only the wall time may differ.
func SimThroughputSharded(seed uint64, maxCycles int64, shards int) (cycles int64, secs float64) {
	m := topology.NewMesh2D(8, 8)
	route := wormsim.RouteFuncOf(mustRouter("dual-path", mustState(m), routing.Options{}))
	start := time.Now()
	res, err := wormsim.Run(wormsim.Config{
		Topology:               m,
		Route:                  route,
		MeanInterarrivalMicros: 300,
		AvgDests:               10,
		Seed:                   seed,
		WarmupDeliveries:       100,
		BatchSize:              100,
		MinBatches:             1 << 30, // never converge: run the full cycle budget
		MaxCycles:              maxCycles,
		Shards:                 shards,
	})
	if err != nil {
		panic(err)
	}
	return res.Cycles, time.Since(start).Seconds()
}
