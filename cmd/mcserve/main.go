// Command mcserve runs the serving study: the window-batched multicast
// scheduling service (internal/sched) against a naive FIFO baseline on
// the 64x64 mesh under dual-path routing. A Poisson request stream drawn
// from a hot group pool is batched into admission windows, planned
// through a shared plan cache, congestion-packed, injected into wormsim,
// and measured to completion. It writes delivered-throughput and p99
// completion-latency figures versus offered load and versus admission
// window size, plus a per-point table (serve_study.txt).
//
// Every committed output is byte-identical at any -parallel (sweep and
// planner workers) and -shards (simulator shard count) value.
//
// Usage:
//
//	mcserve -out results            # write serve_* figures (txt+csv) and serve_study.txt
//	mcserve -quick                  # reduced request and point budgets
//	mcserve -parallel 4 -shards 4   # worker/shard counts (outputs unchanged)
//	mcserve -csv                    # emit CSV on stdout instead of files
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"multicastnet/internal/experiments"
	"multicastnet/internal/profiling"
	"multicastnet/internal/stats"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced request and point budgets")
	seed := flag.Uint64("seed", 1990, "study seed")
	csv := flag.Bool("csv", false, "emit CSV on stdout instead of writing files")
	parallel := flag.Int("parallel", 0, "sweep and planner workers (0 = GOMAXPROCS, 1 = sequential; outputs are byte-identical)")
	shards := flag.Int("shards", 0, "simulator shard count (0/1 = serial; outputs are byte-identical)")
	workloadModel := flag.String("workload", "", "workload profile replacing the built-in group pool ("+strings.Join(experiments.WorkloadModelNames(), ", ")+"; empty = built-in pool)")
	prof := profiling.AddFlags()
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	opts := experiments.ServeDefaults()
	if *quick {
		opts = experiments.ServeQuick()
	}
	opts.Seed = *seed
	opts.Parallel = *parallel
	opts.Shards = *shards
	if *workloadModel != "" {
		valid := false
		for _, m := range experiments.WorkloadModelNames() {
			if m == *workloadModel {
				valid = true
			}
		}
		if !valid {
			fatal(fmt.Errorf("unknown -workload %q (valid: %s)",
				*workloadModel, strings.Join(experiments.WorkloadModelNames(), ", ")))
		}
		opts.Workload = *workloadModel
	}

	res := experiments.ServeStudy(opts)

	figs := []*stats.Figure{res.Throughput, res.P99, res.WindowThroughput, res.WindowP99}
	if *csv {
		for _, fig := range figs {
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, fig := range figs {
		base := strings.ReplaceAll(strings.ToLower(fig.ID), " ", "_")
		writeFigure(*out, base+".txt", fig, false)
		writeFigure(*out, base+".csv", fig, true)
		fmt.Printf("wrote %s\n", base)
	}
	writeSummary(*out, opts, res)
	fmt.Printf("wrote serve_study.txt (gomaxprocs=%d)\n", res.GOMAXPROCS)
}

// writeSummary records every point of the sweep. All fields are
// deterministic, so the file participates in the byte-identity check
// (make check-serve).
func writeSummary(dir string, opts experiments.ServeOptions, res experiments.ServeStudyResult) {
	f, err := os.Create(filepath.Join(dir, "serve_study.txt"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "Serving study: window-batched multicast scheduling vs naive FIFO\n")
	if opts.Workload != "" {
		fmt.Fprintf(f, "64x64 mesh, dual-path routing, %d requests per point from the %q\n", opts.Requests, opts.Workload)
		fmt.Fprintf(f, "workload profile (%d groups), %d-flit messages, sched budget %d.\n\n", opts.Groups, opts.Flits, opts.Budget)
	} else {
		fmt.Fprintf(f, "64x64 mesh, dual-path routing, %d requests per point from a pool of\n", opts.Requests)
		fmt.Fprintf(f, "%d multicast groups, %d-flit messages, sched budget %d.\n\n", opts.Groups, opts.Flits, opts.Budget)
	}
	fmt.Fprintf(f, "Latencies are full request-to-completion cycles, queueing included.\n")
	fmt.Fprintf(f, "Deterministic at any -parallel and -shards value.\n\n")
	fmt.Fprintf(f, "%-6s %9s %7s %9s %9s %9s %7s %8s %7s %6s %6s %5s\n",
		"policy", "interarr", "window", "thr/kcyc", "p50", "p99", "maxIF", "defer", "force", "peakL", "dil", "hit")
	for _, p := range res.Points {
		fmt.Fprintf(f, "%-6s %9.2f %7d %9.2f %9.0f %9.0f %7d %8d %7d %6d %6d %5.2f\n",
			p.Policy, p.MeanInterarrival, p.WindowCycles, p.ThroughputPerKCycle,
			p.P50Latency, p.P99Latency, p.MaxInFlight, p.Deferrals, p.ForceAdmits,
			p.PeakLoad, p.PeakDilation, p.CacheHitRate)
	}
	// The load sweep occupies the first 2*len(Loads) points.
	writeHeadline(f, res.Points[:2*len(opts.Loads)])
}

// writeHeadline compares the two policies at the highest offered load of
// the load sweep — the regime with thousands of requests in flight.
func writeHeadline(w io.Writer, points []experiments.ServePoint) {
	var fifo, sched *experiments.ServePoint
	for i := range points {
		p := &points[i]
		switch p.Policy {
		case "fifo":
			if fifo == nil || p.MeanInterarrival < fifo.MeanInterarrival {
				fifo = p
			}
		case "sched":
			if sched == nil || p.MeanInterarrival < sched.MeanInterarrival {
				sched = p
			}
		}
	}
	if fifo == nil || sched == nil {
		return
	}
	fmt.Fprintf(w, "\nAt the highest offered load (mean inter-arrival %.2f cycles,\n", fifo.MeanInterarrival)
	fmt.Fprintf(w, "%d requests in flight at peak) congestion-aware packing delivers\n", sched.MaxInFlight)
	fmt.Fprintf(w, "%.2f completed multicasts per 1000 cycles vs FIFO's %.2f (%+.1f%%)\n",
		sched.ThroughputPerKCycle, fifo.ThroughputPerKCycle,
		100*(sched.ThroughputPerKCycle/fifo.ThroughputPerKCycle-1))
	fmt.Fprintf(w, "at p99 completion latency %.0f vs %.0f cycles (%+.1f%%).\n",
		sched.P99Latency, fifo.P99Latency, 100*(sched.P99Latency/fifo.P99Latency-1))
}

func writeFigure(dir, name string, fig *stats.Figure, csv bool) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if csv {
		err = fig.WriteCSV(f)
	} else {
		err = fig.WriteTable(f)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcserve:", err)
	os.Exit(1)
}
