GO ?= go

.PHONY: check fmt vet build test race bench bench-baseline results

## check: everything CI runs — format, vet, build, race tests, quick benchmarks
check: fmt vet build race bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: quick performance smoke — core throughput and figure pipeline
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkWormsimCyclesPerSec|BenchmarkDynamicFigures|BenchmarkSimulator' -benchtime 1x .

## bench-baseline: regenerate the committed BENCH_wormsim.json
bench-baseline:
	$(GO) run ./cmd/mcfigures -bench -quick -parallel 1 -out .

## results: regenerate every table and figure at full fidelity
results:
	$(GO) run ./cmd/mcfigures -out results
