package topology

import (
	"fmt"
	"sort"
)

// Link is an undirected host-graph link, stored in canonical (low, high)
// endpoint order so a link and its reverse compare equal.
type Link struct {
	U, V NodeID
}

// NormLink returns the canonical form of the link between u and v.
func NormLink(u, v NodeID) Link {
	if u > v {
		u, v = v, u
	}
	return Link{U: u, V: v}
}

// Masked wraps a base topology with a set of failed links and nodes — the
// host graph as degraded-mode routing sees it. A dead node loses all its
// incident links; a dead link is removed in both directions. The node-id
// space is unchanged (dead nodes remain addressable but isolated), so
// labelings and routing tables built over the base topology keep their
// indices.
//
// Distance is precomputed by BFS over the masked graph. For unreachable
// pairs it returns Nodes() — one more than any real path length — so
// distance-guided routing simply finds no distance-reducing neighbor;
// use Reachable to test connectivity explicitly.
type Masked struct {
	base      Topology
	name      string
	deadNode  []bool
	deadLink  map[Link]bool
	neighbors [][]NodeID
	dist      []int16
	diameter  int
}

// NewMasked builds the masked view of base with the given dead nodes and
// dead links. Out-of-range dead nodes panic; dead links between
// non-adjacent nodes are ignored. The inputs are copied.
func NewMasked(base Topology, deadNodes []NodeID, deadLinks []Link) *Masked {
	n := base.Nodes()
	m := &Masked{
		base:     base,
		deadNode: make([]bool, n),
		deadLink: make(map[Link]bool, len(deadLinks)),
	}
	for _, v := range deadNodes {
		checkNode(v, n, base)
		m.deadNode[v] = true
	}
	for _, l := range deadLinks {
		l = NormLink(l.U, l.V)
		checkNode(l.U, n, base)
		checkNode(l.V, n, base)
		if base.Adjacent(l.U, l.V) {
			m.deadLink[l] = true
		}
	}
	m.neighbors = make([][]NodeID, n)
	for v := 0; v < n; v++ {
		if m.deadNode[v] {
			continue
		}
		for _, p := range base.Neighbors(NodeID(v), nil) {
			if m.deadNode[p] || m.deadLink[NormLink(NodeID(v), p)] {
				continue
			}
			m.neighbors[v] = append(m.neighbors[v], p)
		}
	}
	m.computeDistances()
	m.name = fmt.Sprintf("%s/masked[%dL,%dN,%08x]",
		base.Name(), len(m.deadLink), len(deadNodes), m.fingerprint())
	return m
}

// computeDistances fills the all-pairs table by BFS from every node.
func (m *Masked) computeDistances() {
	n := m.base.Nodes()
	unreach := int16(n)
	m.dist = make([]int16, n*n)
	for i := range m.dist {
		m.dist[i] = unreach
	}
	queue := make([]NodeID, 0, n)
	for s := 0; s < n; s++ {
		row := m.dist[s*n : (s+1)*n]
		if m.deadNode[s] {
			continue
		}
		row[s] = 0
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			du := row[u]
			for _, v := range m.neighbors[u] {
				if row[v] == unreach {
					row[v] = du + 1
					queue = append(queue, v)
				}
			}
		}
		for _, d := range row {
			if d != unreach && int(d) > m.diameter {
				m.diameter = int(d)
			}
		}
	}
}

// fingerprint hashes the dead sets (FNV-1a over a sorted encoding) so
// masked topologies with different faults get distinct names.
func (m *Masked) fingerprint() uint32 {
	links := make([]Link, 0, len(m.deadLink))
	for l := range m.deadLink {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].U != links[j].U {
			return links[i].U < links[j].U
		}
		return links[i].V < links[j].V
	})
	h := uint32(2166136261)
	mix := func(x int) {
		for i := 0; i < 4; i++ {
			h ^= uint32(x >> (8 * i) & 0xff)
			h *= 16777619
		}
	}
	for v, dead := range m.deadNode {
		if dead {
			mix(v)
		}
	}
	mix(-1)
	for _, l := range links {
		mix(int(l.U))
		mix(int(l.V))
	}
	return h
}

// Base returns the underlying healthy topology.
func (m *Masked) Base() Topology { return m.base }

// Name implements Topology.
func (m *Masked) Name() string { return m.name }

// Nodes implements Topology: the id space of the base topology, dead
// nodes included.
func (m *Masked) Nodes() int { return m.base.Nodes() }

// MaxDegree implements Topology (the base bound; masking only removes
// links).
func (m *Masked) MaxDegree() int { return m.base.MaxDegree() }

// Neighbors implements Topology over the masked graph.
func (m *Masked) Neighbors(v NodeID, buf []NodeID) []NodeID {
	checkNode(v, len(m.deadNode), m)
	return append(buf, m.neighbors[v]...)
}

// Adjacent implements Topology over the masked graph.
func (m *Masked) Adjacent(u, v NodeID) bool {
	checkNode(u, len(m.deadNode), m)
	checkNode(v, len(m.deadNode), m)
	return !m.deadNode[u] && !m.deadNode[v] &&
		!m.deadLink[NormLink(u, v)] && m.base.Adjacent(u, v)
}

// Distance implements Topology over the masked graph; unreachable pairs
// return Nodes() (see the type comment).
func (m *Masked) Distance(u, v NodeID) int {
	n := len(m.deadNode)
	checkNode(u, n, m)
	checkNode(v, n, m)
	return int(m.dist[int(u)*n+int(v)])
}

// Reachable reports whether a path exists between u and v in the masked
// graph.
func (m *Masked) Reachable(u, v NodeID) bool {
	return m.Distance(u, v) < len(m.deadNode)
}

// Diameter implements Topology: the maximum distance over reachable
// pairs (0 when nothing is reachable).
func (m *Masked) Diameter() int { return m.diameter }

// NodeDead reports whether v was masked out.
func (m *Masked) NodeDead(v NodeID) bool {
	checkNode(v, len(m.deadNode), m)
	return m.deadNode[v]
}

// LinkDead reports whether the (undirected) link between u and v was
// masked out, either directly or via a dead endpoint.
func (m *Masked) LinkDead(u, v NodeID) bool {
	checkNode(u, len(m.deadNode), m)
	checkNode(v, len(m.deadNode), m)
	return m.deadNode[u] || m.deadNode[v] || m.deadLink[NormLink(u, v)]
}
