package workload

import (
	"fmt"
	"math"
	"testing"

	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// collect drains up to n requests from a fresh stream, deep-copying the
// destination slices (the generator may share them with its pool).
func collect(t *testing.T, topo topology.Topology, spec Spec, seed uint64, n int) []Request {
	t.Helper()
	s, err := New(topo, spec, seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var out []Request
	for len(out) < n {
		r, ok := s.Next()
		if !ok {
			break
		}
		cp := r
		cp.Dests = append([]topology.NodeID(nil), r.Dests...)
		out = append(out, cp)
	}
	return out
}

// checkValid asserts the Source contract over a request sequence:
// nondecreasing times and valid destination sets.
func checkValid(t *testing.T, topo topology.Topology, reqs []Request) {
	t.Helper()
	n := topo.Nodes()
	var prev int64
	for i, r := range reqs {
		if r.At < prev {
			t.Fatalf("request %d: time %d regresses below %d", i, r.At, prev)
		}
		prev = r.At
		if r.Src < 0 || int(r.Src) >= n {
			t.Fatalf("request %d: source %d out of range", i, r.Src)
		}
		if len(r.Dests) == 0 {
			t.Fatalf("request %d: empty destination set", i)
		}
		seen := make(map[topology.NodeID]bool, len(r.Dests))
		for _, d := range r.Dests {
			if d < 0 || int(d) >= n {
				t.Fatalf("request %d: destination %d out of range", i, d)
			}
			if d == r.Src {
				t.Fatalf("request %d: source %d in destination set", i, r.Src)
			}
			if seen[d] {
				t.Fatalf("request %d: duplicate destination %d", i, d)
			}
			seen[d] = true
		}
	}
}

// TestStreamContract runs every (model, arrivals) combination and checks
// the Source contract plus the exact request count.
func TestStreamContract(t *testing.T) {
	topo := topology.NewMesh2D(8, 8)
	for _, model := range Models() {
		for _, arr := range Arrivals() {
			t.Run(model+"/"+arr, func(t *testing.T) {
				spec := Spec{Model: model, Arrivals: arr, Requests: 500, Groups: 16}
				reqs := collect(t, topo, spec, 7, 600)
				if len(reqs) != 500 {
					t.Fatalf("got %d requests, want 500", len(reqs))
				}
				checkValid(t, topo, reqs)
			})
		}
	}
}

// TestStreamDeterminism: identical inputs replay identically; a
// different seed diverges.
func TestStreamDeterminism(t *testing.T) {
	topo := topology.NewHypercube(6)
	for _, model := range Models() {
		spec := Spec{Model: model, Arrivals: ArrivalsOnOff, Requests: 300}
		a := collect(t, topo, spec, 11, 300)
		b := collect(t, topo, spec, 11, 300)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", model, len(a), len(b))
		}
		for i := range a {
			if !requestsEqual(a[i], b[i]) {
				t.Fatalf("%s: request %d differs: %v vs %v", model, i, a[i], b[i])
			}
		}
		c := collect(t, topo, spec, 12, 300)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if !requestsEqual(a[i], c[i]) {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: seeds 11 and 12 produced identical streams", model)
		}
	}
}

func requestsEqual(a, b Request) bool {
	if a.At != b.At || a.Src != b.Src || len(a.Dests) != len(b.Dests) {
		return false
	}
	for i := range a.Dests {
		if a.Dests[i] != b.Dests[i] {
			return false
		}
	}
	return true
}

// TestZipfRanking checks the zipf model's empirical group frequencies
// against the closed form: group rank r is drawn with probability
// (r+1)^-s / H(groups, s), so counts must descend by rank and the top
// ranks must match theory within tolerance.
func TestZipfRanking(t *testing.T) {
	const (
		groups = 32
		n      = 200_000
		s      = 1.2
	)
	topo := topology.NewMesh2D(16, 16)
	st, err := New(topo, Spec{Model: ModelZipf, Requests: n, Groups: groups, ZipfS: s}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The pool's dests slices are shared with emitted requests, so slice
	// identity recovers each request's group rank.
	rank := make(map[*topology.NodeID]int, groups)
	for g := range st.dests {
		rank[&st.dests[g][0]] = g
	}
	counts := make([]int, groups)
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		g, known := rank[&r.Dests[0]]
		if !known {
			t.Fatalf("request destinations not from the pinned pool")
		}
		counts[g]++
	}
	h := 0.0
	for r := 0; r < groups; r++ {
		h += math.Pow(float64(r+1), -s)
	}
	for r := 0; r < 5; r++ {
		want := math.Pow(float64(r+1), -s) / h
		got := float64(counts[r]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical frequency %.4f, closed form %.4f", r, got, want)
		}
	}
	// Descending by rank over the head (sampling noise can reorder the
	// near-equal tail; ranks 0..7 are separated by >9% relative gaps).
	for r := 1; r < 8; r++ {
		if counts[r] >= counts[r-1] {
			t.Errorf("rank %d count %d not below rank %d count %d",
				r, counts[r], r-1, counts[r-1])
		}
	}
}

// TestGeometricDistribution checks the burst-size sampler against the
// geometric closed form: mean and P(B=1) = p = 1/mean.
func TestGeometricDistribution(t *testing.T) {
	const (
		mean = 16.0
		n    = 200_000
	)
	rng := stats.NewRand(9)
	sum, ones := 0, 0
	for i := 0; i < n; i++ {
		b := geometric(rng, mean)
		if b < 1 {
			t.Fatalf("burst size %d below 1", b)
		}
		sum += b
		if b == 1 {
			ones++
		}
	}
	if got := float64(sum) / n; math.Abs(got-mean) > 0.25 {
		t.Errorf("empirical mean burst %.3f, want %.1f", got, mean)
	}
	if got, want := float64(ones)/n, 1/mean; math.Abs(got-want) > 0.005 {
		t.Errorf("empirical P(B=1) %.4f, closed form %.4f", got, want)
	}
	// Degenerate mean: always a single request.
	for i := 0; i < 100; i++ {
		if b := geometric(rng, 1); b != 1 {
			t.Fatalf("geometric(1) returned %d", b)
		}
	}
}

// TestOnOffLoadMatching: with defaults the ON/OFF process offers the
// same average load as the poisson process at MeanGap — the mean gap
// over a long stream approaches MeanGap.
func TestOnOffLoadMatching(t *testing.T) {
	const meanGap = 8.0
	topo := topology.NewMesh2D(16, 16)
	spec := Spec{Model: ModelUniform, Arrivals: ArrivalsOnOff,
		Requests: 100_000, MeanGap: meanGap}
	reqs := collect(t, topo, spec, 3, spec.Requests)
	span := float64(reqs[len(reqs)-1].At - reqs[0].At)
	got := span / float64(len(reqs)-1)
	if math.Abs(got-meanGap)/meanGap > 0.1 {
		t.Errorf("ON/OFF mean gap %.3f cycles, want %.1f within 10%%", got, meanGap)
	}
	// Burstiness: the gap variance must far exceed the poisson process's
	// (exponential gaps have CV = 1; the ON/OFF mixture is much wider).
	mean, m2 := 0.0, 0.0
	for i := 1; i < len(reqs); i++ {
		g := float64(reqs[i].At - reqs[i-1].At)
		mean += g
		m2 += g * g
	}
	k := float64(len(reqs) - 1)
	mean /= k
	cv2 := (m2/k - mean*mean) / (mean * mean)
	if cv2 < 2 {
		t.Errorf("ON/OFF squared coefficient of variation %.2f, want >= 2 (bursty)", cv2)
	}
}

// TestPoissonGapMean: the open-loop process's empirical mean gap matches
// MeanGap.
func TestPoissonGapMean(t *testing.T) {
	const meanGap = 5.0
	topo := topology.NewMesh2D(16, 16)
	spec := Spec{Model: ModelUniform, Requests: 100_000, MeanGap: meanGap}
	reqs := collect(t, topo, spec, 21, spec.Requests)
	span := float64(reqs[len(reqs)-1].At - reqs[0].At)
	got := span / float64(len(reqs)-1)
	if math.Abs(got-meanGap)/meanGap > 0.05 {
		t.Errorf("poisson mean gap %.3f cycles, want %.1f within 5%%", got, meanGap)
	}
}

// TestHotspotConcentration checks the hotspot model against its closed
// form: each destination lands in [0, HotNodes) with probability
// HotFrac + (1-HotFrac)*HotNodes/Nodes (the uniform branch can also
// land hot).
func TestHotspotConcentration(t *testing.T) {
	const (
		hotFrac  = 0.8
		hotNodes = 64
	)
	topo := topology.NewMesh2D(32, 32)
	spec := Spec{Model: ModelHotspot, Requests: 50_000,
		HotFrac: hotFrac, HotNodes: hotNodes}
	reqs := collect(t, topo, spec, 17, spec.Requests)
	checkValid(t, topo, reqs)
	hot, total := 0, 0
	for _, r := range reqs {
		for _, d := range r.Dests {
			total++
			if int(d) < hotNodes {
				hot++
			}
		}
	}
	want := hotFrac + (1-hotFrac)*float64(hotNodes)/float64(topo.Nodes())
	// Rejection of duplicate/self draws slightly perturbs the marginal;
	// 2% absolute tolerance covers it at this sample size.
	if got := float64(hot) / float64(total); math.Abs(got-want) > 0.02 {
		t.Errorf("hot-region destination fraction %.4f, closed form %.4f", got, want)
	}
}

// TestHotspotFullConcentration: HotFrac 1 must not stall (destination
// counts clamp to the hot region size) and every destination is hot.
func TestHotspotFullConcentration(t *testing.T) {
	topo := topology.NewMesh2D(16, 16)
	spec := Spec{Model: ModelHotspot, Requests: 2_000, HotFrac: 1, HotNodes: 4, AvgDests: 8}
	reqs := collect(t, topo, spec, 1, spec.Requests)
	if len(reqs) != spec.Requests {
		t.Fatalf("got %d requests, want %d", len(reqs), spec.Requests)
	}
	checkValid(t, topo, reqs)
	for i, r := range reqs {
		if len(r.Dests) > 3 {
			t.Fatalf("request %d: %d destinations exceed the 3 hot non-source nodes", i, len(r.Dests))
		}
		for _, d := range r.Dests {
			if int(d) >= 4 {
				t.Fatalf("request %d: destination %d outside the hot region", i, d)
			}
		}
	}
}

// TestTransposePartner pins the partner mapping on each topology class.
func TestTransposePartner(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	if got := TransposePartner(mesh, mesh.ID(1, 2)); got != mesh.ID(2, 1) {
		t.Errorf("mesh (1,2) partner = %d, want %d", got, mesh.ID(2, 1))
	}
	if got := TransposePartner(mesh, mesh.ID(3, 3)); got != mesh.ID(3, 3) {
		t.Errorf("mesh diagonal (3,3) partner = %d, want itself", got)
	}
	wide := topology.NewMesh2D(8, 2) // non-square: coordinates clamp
	if got, want := TransposePartner(wide, wide.ID(6, 1)), wide.ID(1, 1); got != want {
		t.Errorf("wide mesh (6,1) partner = %d, want %d (y clamped)", got, want)
	}
	cube := topology.NewHypercube(3)
	if got := TransposePartner(cube, 0b001); got != 0b100 {
		t.Errorf("cube 001 partner = %03b, want 100", got)
	}
	if got := TransposePartner(cube, 0b101); got != 0b101 {
		t.Errorf("cube palindrome 101 partner = %03b, want itself", got)
	}
}

// TestTransposeClustering: every destination set contains the source's
// transpose partner (unless the partner is the source itself) and stays
// within a tight BFS radius of it.
func TestTransposeClustering(t *testing.T) {
	topo := topology.NewMesh2D(8, 8)
	spec := Spec{Model: ModelTranspose, Requests: 2_000, AvgDests: 4}
	reqs := collect(t, topo, spec, 13, spec.Requests)
	checkValid(t, topo, reqs)
	for i, r := range reqs {
		partner := TransposePartner(topo, r.Src)
		if partner != r.Src && r.Dests[0] != partner {
			t.Fatalf("request %d: first destination %d is not the partner %d", i, r.Dests[0], partner)
		}
		px, py := topo.XY(partner)
		for _, d := range r.Dests {
			dx, dy := topo.XY(d)
			dist := abs(dx-px) + abs(dy-py)
			// 7 destinations max fit within BFS radius 3 of the partner
			// even when the partner sits in a corner.
			if dist > 3 {
				t.Fatalf("request %d: destination %d at distance %d from partner", i, d, dist)
			}
		}
	}
}

// TestCollectiveShape: every round is GroupSize-1 gather unicasts into
// the coordinator followed PhaseGap cycles later by the release
// multicast back over the members, interleaved in global time order.
func TestCollectiveShape(t *testing.T) {
	topo := topology.NewMesh2D(8, 8)
	const groupSize = 5
	spec := Spec{Model: ModelCollective, Requests: 200, Groups: 4,
		GroupSize: groupSize, PhaseGap: 32}
	reqs := collect(t, topo, spec, 19, spec.Requests)
	if len(reqs) != spec.Requests {
		t.Fatalf("got %d requests, want %d", len(reqs), spec.Requests)
	}
	checkValid(t, topo, reqs)
	gathers, releases := 0, 0
	coordOf := make(map[topology.NodeID]bool)
	for _, r := range reqs {
		if len(r.Dests) == 1 {
			gathers++
			coordOf[r.Dests[0]] = true
		} else {
			releases++
			if len(r.Dests) != groupSize-1 {
				t.Fatalf("release carries %d destinations, want %d", len(r.Dests), groupSize-1)
			}
			if !coordOf[r.Src] {
				t.Fatalf("release source %d never received a gather", r.Src)
			}
		}
	}
	if gathers == 0 || releases == 0 {
		t.Fatalf("collective stream has %d gathers, %d releases; want both", gathers, releases)
	}
	// Rounds emit GroupSize-1 gathers per release; the stream truncates
	// at Requests so the ratio holds within one round.
	if lo, hi := (gathers-groupSize)/(groupSize-1), (gathers+groupSize)/(groupSize-1); releases < lo || releases > hi {
		t.Errorf("%d releases for %d gathers, want about %d", releases, gathers, gathers/(groupSize-1))
	}
}

// TestSpecErrors: invalid specs are rejected with errors, not panics.
func TestSpecErrors(t *testing.T) {
	topo := topology.NewMesh2D(4, 4)
	cases := []Spec{
		{Model: "warp", Requests: 10},
		{Model: ModelUniform, Arrivals: "sometimes", Requests: 10},
		{Model: ModelUniform, Requests: 0},
		{Model: ModelUniform, Requests: -3},
		{Model: ModelUniform, Requests: 10, Groups: -1},
		{Model: ModelUniform, Requests: 10, AvgDests: -2},
		{Model: ModelZipf, Requests: 10, ZipfS: -1},
		{Model: ModelHotspot, Requests: 10, HotFrac: 1.5},
		{Model: ModelHotspot, Requests: 10, HotNodes: 1},
		{Model: ModelHotspot, Requests: 10, HotNodes: 99},
		{Model: ModelUniform, Requests: 10, MeanGap: -4},
		{Model: ModelUniform, Arrivals: ArrivalsOnOff, Requests: 10, BurstMean: 0.5},
		{Model: ModelCollective, Requests: 10, GroupSize: 1},
		{Model: ModelCollective, Requests: 10, PhaseGap: -1},
	}
	for _, spec := range cases {
		if _, err := New(topo, spec, 1); err == nil {
			t.Errorf("spec %+v accepted, want error", spec)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

var _ = fmt.Sprintf // keep fmt for the golden generator below
