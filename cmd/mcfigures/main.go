// Command mcfigures regenerates every table and figure of the
// dissertation into a results directory: Tables 5.1–5.4, the worked route
// examples of Chapters 5 and 6, the deadlock demonstrations, Fig. 2.3,
// the static figures 7.1–7.7 (plus ablations), and the dynamic figures
// 7.8–7.11. Each artifact is written both as an aligned text table and as
// CSV.
//
// Usage:
//
//	mcfigures -out results          # full fidelity (minutes)
//	mcfigures -out results -quick   # reduced workloads (seconds)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"multicastnet/internal/experiments"
	"multicastnet/internal/stats"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced workloads")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	sopts := experiments.Defaults()
	dopts := experiments.DynamicDefaults()
	if *quick {
		sopts = experiments.Quick()
		dopts = experiments.DynamicQuick()
	}

	// Chapter 5 tables and worked examples.
	writeText(*out, "table_5_1.txt", experiments.WriteTable51)
	writeText(*out, "table_5_2.txt", experiments.WriteTable52)
	writeText(*out, "table_5_3.txt", experiments.WriteTable53)
	writeText(*out, "table_5_4.txt", experiments.WriteTable54)
	writeText(*out, "examples.txt", experiments.ExampleRoutes)
	writeText(*out, "deadlocks.txt", experiments.DeadlockDemos)

	// Figures.
	figures := []*stats.Figure{
		experiments.Fig23Switching(),
		experiments.Fig71SortedMPMesh(sopts),
		experiments.Fig72SortedMPCube(sopts),
		experiments.Fig73GreedySTMesh(sopts),
		experiments.Fig74GreedySTCube(sopts),
		experiments.Fig75MTMesh(sopts),
		experiments.Fig76PathTrafficCube(sopts),
		experiments.Fig77PathTrafficMesh(sopts),
		experiments.AblationLabeling(sopts),
		experiments.AblationDestinationOrder(sopts),
		experiments.ExtVirtualChannelsStatic(sopts),
		experiments.ExtDualPath3D(sopts),
		experiments.Fig78LatencyVsLoadDouble(dopts),
		experiments.Fig79LatencyVsDestsDouble(dopts),
		experiments.Fig710LatencyVsLoadSingle(dopts),
		experiments.Fig711LatencyVsDestsSingle(dopts),
		experiments.ExtVirtualChannelsDynamic(dopts),
		experiments.ExtUnicastMix(dopts),
		experiments.ExtAdaptive(dopts),
	}
	for _, fig := range figures {
		base := figBase(fig.ID)
		writeFigure(*out, base+".txt", fig, false)
		writeFigure(*out, base+".csv", fig, true)
		fmt.Printf("wrote %s\n", base)
	}
}

func figBase(id string) string {
	s := strings.ToLower(id)
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, ".", "_")
	return s
}

func writeFigure(dir, name string, fig *stats.Figure, csv bool) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if csv {
		err = fig.WriteCSV(f)
	} else {
		err = fig.WriteTable(f)
	}
	if err != nil {
		fatal(err)
	}
}

func writeText(dir, name string, fn func(w io.Writer) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfigures:", err)
	os.Exit(1)
}
