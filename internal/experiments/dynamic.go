package experiments

import (
	"fmt"

	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/switching"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// DynamicOptions scale the Chapter 7.2 simulations. MaxCycles bounds each
// run; the paper's stopping rule (95% CI within 5% of the mean) applies
// within the bound.
type DynamicOptions struct {
	Seed      uint64
	MaxCycles int64
	Warmup    int
	BatchSize int
	// Parallel is the sweep worker count: each figure point is an
	// independent simulation, fanned out over this many goroutines.
	// 0 selects GOMAXPROCS; 1 runs sequentially. Figures are
	// byte-identical for every value (see RunSweep).
	Parallel int
	// Loads overrides the inter-arrival sweep (mean microseconds between
	// multicasts per node); nil selects the full sweep.
	Loads []float64
	// Dests overrides the destination-count sweep; nil selects the full
	// sweep.
	Dests []int
	// Check runs the wormsim invariant checker inside every simulation —
	// a testing aid (see `mcdynamic -simcheck`), slower; violations
	// panic.
	Check bool
	// Shards steps every simulation with the sharded parallel engine
	// (wormsim.Config.Shards); 0 or 1 selects the serial engine. Figures
	// are byte-identical for every value.
	Shards int
}

func (o DynamicOptions) loads() []float64 {
	if o.Loads != nil {
		return o.Loads
	}
	return Loads
}

func (o DynamicOptions) dests() []int {
	if o.Dests != nil {
		return o.Dests
	}
	return DestCounts
}

// DynamicDefaults are full-fidelity settings. The cycle budget bounds the
// runs that never meet the CI stopping rule — the saturated points, whose
// in-flight worm backlog also makes each cycle progressively more
// expensive; past ~1M cycles they only get slower, not tighter.
func DynamicDefaults() DynamicOptions {
	return DynamicOptions{Seed: 1990, MaxCycles: 1_000_000, Warmup: 2000, BatchSize: 1000}
}

// DynamicQuick keeps runs short for benchmarks.
func DynamicQuick() DynamicOptions {
	return DynamicOptions{
		Seed: 1990, MaxCycles: 60_000, Warmup: 200, BatchSize: 200,
		Loads: []float64{1500, 500, 300},
		Dests: []int{1, 10, 25, 45},
	}
}

// Loads is the inter-arrival sweep of Figures 7.8/7.10, in mean
// microseconds between multicasts per node, from light to heavy.
var Loads = []float64{1500, 1000, 700, 500, 400, 300, 250}

// DestCounts is the destination sweep of Figures 7.9/7.11 (1 to 45
// average destinations, 300 us inter-arrival).
var DestCounts = []int{1, 5, 10, 15, 20, 25, 30, 35, 40, 45}

// pointSeed derives the seed of one figure point from the sweep base
// seed and the point's coordinates, so every simulation runs a
// decorrelated workload that is independent of execution order.
func pointSeed(o DynamicOptions, figID, series string, idx int) uint64 {
	return stats.DeriveSeed(o.Seed, fmt.Sprintf("%s/%s/%d", figID, series, idx))
}

// dynamicPoint runs one simulation and returns the mean per-destination
// latency in microseconds. Deadlocked or empty runs return a NaN-free
// sentinel of 0, which the figures render as a gap.
func dynamicPoint(topo topology.Topology, route wormsim.RouteFunc, interUs float64,
	avgDests int, seed uint64, o DynamicOptions) (float64, bool) {
	res, err := wormsim.Run(wormsim.Config{
		Topology:               topo,
		Route:                  route,
		MeanInterarrivalMicros: interUs,
		AvgDests:               avgDests,
		Seed:                   seed,
		WarmupDeliveries:       o.Warmup,
		BatchSize:              o.BatchSize,
		MinBatches:             5,
		MaxCycles:              o.MaxCycles,
		Shards:                 o.Shards,
		Check:                  o.Check,
	})
	if err != nil {
		panic(err)
	}
	if res.Deadlocked || res.Deliveries == 0 {
		return 0, false
	}
	return res.AvgLatencyMicros, true
}

// loadAxis converts an inter-arrival time to the load value plotted on
// the x axis: multicasts per millisecond per node.
func loadAxis(interUs float64) float64 { return 1000 / interUs }

// namedScheme pairs a series name with its routing scheme.
type namedScheme struct {
	name  string
	route wormsim.RouteFunc
}

// mustState returns the process-wide shared precomputed routing state of
// t (one Hamiltonian labeling per topology, shared by every figure).
func mustState(t topology.Topology) *routing.State {
	st, err := routing.SharedState(t)
	if err != nil {
		panic(err)
	}
	return st
}

// mustRouter builds the named registry scheme over st.
func mustRouter(name string, st *routing.State, opts routing.Options) routing.Router {
	r, err := routing.NewWithOptions(name, st, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// FigureCacheStats, when non-nil, receives each cached figure sweep's
// final plan-cache accounting (figure ID plus counters) after the sweep
// completes. `mcdynamic` installs it to surface hit/miss/eviction
// counts. The counts depend on sweep scheduling — workers racing to plan
// the same multicast both miss — so they are reported to the operator,
// never committed into figure bytes.
var FigureCacheStats func(figure string, s routing.CacheStats)

// reportFigureCache forwards the sweep's final cache counters to the
// FigureCacheStats hook, if installed.
func reportFigureCache(fig *stats.Figure, cache *routing.PlanCache) *stats.Figure {
	if FigureCacheStats != nil {
		FigureCacheStats(fig.ID, cache.Stats())
	}
	return fig
}

// cachedScheme builds the named registry scheme over st, memoizes its
// plans in the figure's shared cache, and adapts it to the simulator.
// The cache is concurrency-safe, so the sweep workers of RunSweep hit it
// in parallel.
func cachedScheme(name string, st *routing.State, cache *routing.PlanCache,
	opts routing.Options) wormsim.RouteFunc {
	return wormsim.RouteFuncOf(routing.Cached(mustRouter(name, st, opts), cache))
}

// loadSweep builds the points of a latency-vs-load figure: one
// simulation per (scheme, inter-arrival) pair at avgDests destinations.
func loadSweep(fig *stats.Figure, topo topology.Topology, schemes []namedScheme,
	avgDests int, o DynamicOptions) []SweepPoint {
	var points []SweepPoint
	for _, s := range schemes {
		series := fig.AddSeries(s.name)
		for i, inter := range o.loads() {
			route, inter := s.route, inter
			seed := pointSeed(o, fig.ID, s.name, i)
			points = append(points, seriesPoint(series, loadAxis(inter), func() (float64, bool) {
				return dynamicPoint(topo, route, inter, avgDests, seed, o)
			}))
		}
	}
	return points
}

// destSweep builds the points of a latency-vs-destination-count figure at
// a fixed inter-arrival time.
func destSweep(fig *stats.Figure, topo topology.Topology, schemes []namedScheme,
	interUs float64, o DynamicOptions) []SweepPoint {
	var points []SweepPoint
	for _, s := range schemes {
		series := fig.AddSeries(s.name)
		for i, d := range o.dests() {
			route, d := s.route, d
			seed := pointSeed(o, fig.ID, s.name, i)
			points = append(points, seriesPoint(series, float64(d), func() (float64, bool) {
				return dynamicPoint(topo, route, interUs, d, seed, o)
			}))
		}
	}
	return points
}

// Fig78LatencyVsLoadDouble reproduces Fig. 7.8: average network latency
// vs load on a double-channel 8x8 mesh for the tree, dual-path, and
// multi-path algorithms (10 average destinations, 128-byte messages,
// 20 Mbytes/s channels).
func Fig78LatencyVsLoadDouble(o DynamicOptions) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	st, cache := mustState(m), routing.NewPlanCache(0)
	fig := &stats.Figure{ID: "Fig 7.8", Title: "Latency under load, double-channel 8x8 mesh",
		XLabel: "load (multicasts/ms/node)", YLabel: "latency (us)"}
	schemes := []namedScheme{
		{"tree", cachedScheme("tree", st, cache, routing.Options{})},
		{"dual-path", cachedScheme("dual-path-double", st, cache, routing.Options{})},
		{"multi-path", cachedScheme("multi-path-double", st, cache, routing.Options{})},
	}
	RunSweep(loadSweep(fig, m, schemes, 10, o), o.Parallel)
	return reportFigureCache(fig, cache)
}

// Fig79LatencyVsDestsDouble reproduces Fig. 7.9: latency vs destination
// count on the double-channel mesh at 300 us inter-arrival.
func Fig79LatencyVsDestsDouble(o DynamicOptions) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	st, cache := mustState(m), routing.NewPlanCache(0)
	fig := &stats.Figure{ID: "Fig 7.9", Title: "Latency vs destinations, double-channel 8x8 mesh",
		XLabel: "average destinations", YLabel: "latency (us)"}
	schemes := []namedScheme{
		{"tree", cachedScheme("tree", st, cache, routing.Options{})},
		{"dual-path", cachedScheme("dual-path-double", st, cache, routing.Options{})},
		{"multi-path", cachedScheme("multi-path-double", st, cache, routing.Options{})},
	}
	RunSweep(destSweep(fig, m, schemes, 300, o), o.Parallel)
	return reportFigureCache(fig, cache)
}

// Fig710LatencyVsLoadSingle reproduces Fig. 7.10: dual- vs multi-path on
// single channels across loads (10 average destinations).
func Fig710LatencyVsLoadSingle(o DynamicOptions) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	st, cache := mustState(m), routing.NewPlanCache(0)
	fig := &stats.Figure{ID: "Fig 7.10", Title: "Latency under load, single-channel 8x8 mesh",
		XLabel: "load (multicasts/ms/node)", YLabel: "latency (us)"}
	schemes := []namedScheme{
		{"dual-path", cachedScheme("dual-path", st, cache, routing.Options{})},
		{"multi-path", cachedScheme("multi-path", st, cache, routing.Options{})},
	}
	RunSweep(loadSweep(fig, m, schemes, 10, o), o.Parallel)
	return reportFigureCache(fig, cache)
}

// Fig711LatencyVsDestsSingle reproduces Fig. 7.11: dual-, multi-, and
// fixed-path on single channels across destination counts under high
// load (300 us inter-arrival), where the multi-path hot-spot effect and
// the dual/fixed convergence appear.
func Fig711LatencyVsDestsSingle(o DynamicOptions) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	st, cache := mustState(m), routing.NewPlanCache(0)
	fig := &stats.Figure{ID: "Fig 7.11", Title: "Latency vs destinations, single-channel 8x8 mesh",
		XLabel: "average destinations", YLabel: "latency (us)"}
	schemes := []namedScheme{
		{"dual-path", cachedScheme("dual-path", st, cache, routing.Options{})},
		{"multi-path", cachedScheme("multi-path", st, cache, routing.Options{})},
		{"fixed-path", cachedScheme("fixed-path", st, cache, routing.Options{})},
	}
	RunSweep(destSweep(fig, m, schemes, 300, o), o.Parallel)
	return reportFigureCache(fig, cache)
}

// FigSchemeLoad builds a latency-vs-load figure for one registry scheme
// on the single-channel 8x8 mesh — the `mcdynamic -scheme <name>` entry
// point. Any scheme name from routing.Names() is accepted.
func FigSchemeLoad(name string, o DynamicOptions) (*stats.Figure, error) {
	if _, err := routing.Lookup(name); err != nil {
		return nil, err
	}
	m := topology.NewMesh2D(8, 8)
	st, cache := mustState(m), routing.NewPlanCache(0)
	fig := &stats.Figure{ID: "Scheme " + name,
		Title:  fmt.Sprintf("Latency under load, %s on an 8x8 mesh", name),
		XLabel: "load (multicasts/ms/node)", YLabel: "latency (us)"}
	r, err := routing.New(name, st)
	if err != nil {
		return nil, err
	}
	schemes := []namedScheme{{name, wormsim.RouteFuncOf(routing.Cached(r, cache))}}
	RunSweep(loadSweep(fig, m, schemes, 10, o), o.Parallel)
	return reportFigureCache(fig, cache), nil
}

// Fig23Switching reproduces the Fig. 2.3 comparison: contention-free
// latency vs distance for the four switching technologies with the
// paper's parameters.
func Fig23Switching() *stats.Figure {
	p := switching.DefaultParams()
	fig := &stats.Figure{ID: "Fig 2.3", Title: "Switching technology latency (128-byte message)",
		XLabel: "distance (hops)", YLabel: "latency (us)"}
	techs := []switching.Technology{
		switching.StoreAndForward, switching.VirtualCutThrough,
		switching.CircuitSwitching, switching.Wormhole,
	}
	for _, tech := range techs {
		series := fig.AddSeries(tech.String())
		for d := 0; d <= 20; d += 2 {
			series.Add(float64(d), switching.Latency(tech, p, d))
		}
	}
	return fig
}
