package heuristics

import (
	"multicastnet/internal/core"
	"multicastnet/internal/topology"
)

// dispatch copies bucket bi to the arena tail and enqueues it one hop
// away at next, logging the transmission. Empty buckets are skipped
// before any coordinate conversion, exactly as the original forward
// helpers returned early.
func (ws *Workspace) dispatch(from topology.NodeID, depth int32, axis trunkAxis, bi int, next topology.NodeID) {
	b := ws.dir[bi]
	if len(b) == 0 {
		return
	}
	off := int32(len(ws.arena))
	ws.arena = append(ws.arena, b...)
	ws.send(from, next)
	ws.msgs = append(ws.msgs, stMsg{at: next, depth: depth + 1, off: off, n: int32(len(b)), axis: axis})
}

// XFirstMT runs the X-first multicast algorithm of Fig. 5.5 on a 2D
// mesh: the natural multicast extension of XY unicast routing. Every
// destination is reached along its X-first shortest path; paths sharing
// a prefix share channels, so the pattern is a multicast tree
// (Theorem 5.3). Returns the link traffic; the pattern stays in the
// workspace run log.
func (ws *Workspace) XFirstMT(m *topology.Mesh2D, k core.MulticastSet) int {
	ws.begin(m, k)
	ws.arena = append(ws.arena[:0], k.Dests...)
	ws.msgs = append(ws.msgs[:0], stMsg{at: k.Source, off: 0, n: int32(len(ws.arena))})
	for head := 0; head < len(ws.msgs); head++ {
		msg := ws.msgs[head]
		x0, y0 := m.XY(msg.at)
		// Buckets 0..3 = +X, -X, +Y, -Y.
		dPlusX, dMinusX := ws.dir[0][:0], ws.dir[1][:0]
		dPlusY, dMinusY := ws.dir[2][:0], ws.dir[3][:0]
		for _, d := range ws.arena[msg.off : msg.off+msg.n] {
			x, y := m.XY(d)
			switch {
			case x > x0:
				dPlusX = append(dPlusX, d)
			case x < x0:
				dMinusX = append(dMinusX, d)
			case y > y0:
				dPlusY = append(dPlusY, d)
			case y < y0:
				dMinusY = append(dMinusY, d)
			default:
				ws.deliver(d, msg.depth)
			}
		}
		ws.dir[0], ws.dir[1], ws.dir[2], ws.dir[3] = dPlusX, dMinusX, dPlusY, dMinusY
		if len(dPlusX) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkX, 0, m.ID(x0+1, y0))
		}
		if len(dMinusX) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkX, 1, m.ID(x0-1, y0))
		}
		if len(dPlusY) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkY, 2, m.ID(x0, y0+1))
		}
		if len(dMinusY) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkY, 3, m.ID(x0, y0-1))
		}
	}
	return len(ws.edges)
}

// XFirstMT runs the X-first multicast algorithm of Fig. 5.5 on a 2D mesh
// and returns the delivered routing pattern. See Workspace.XFirstMT for
// the allocation-free form.
func XFirstMT(m *topology.Mesh2D, k core.MulticastSet) *STResult {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.XFirstMT(m, k)
	return ws.stResult()
}

// trunkAxis is the one-bit routing control field a divided-greedy message
// carries: which dimension its group travels first.
type trunkAxis uint8

const (
	trunkX trunkAxis = iota // advance along X; peel same-column destinations off as Y groups
	trunkY                  // advance along Y; peel same-row destinations off as X groups
)

// DividedGreedyMT runs the divided greedy multicast algorithm of Fig. 5.6
// on a 2D mesh. The source divides the destinations into the four axis
// directions and four quadrant sets P_0 (NE), P_1 (NW), P_2 (SW), P_3
// (SE); each quadrant set is divided into an x-leaning subset S_ix and a
// y-leaning subset S_iy by which axis has the larger remaining distance,
// and subsets are paired onto the outgoing directions (S_0x and S_3x feed
// +X, S_0y and S_1y feed +Y, and so on). When one of the two candidate
// subsets of an X direction is empty, its partner is rerouted through its
// quadrant's Y direction instead of opening an extra branch — the
// behaviour of the Section 5.4 worked example. Each dispatched group then
// routes dimension-ordered with its assigned trunk dimension first (the
// one-bit routing control field of the hybrid scheme), so groups share a
// trunk and peel off one destination set per crossing row/column; every
// delivery is via a shortest path, giving the multicast tree of
// Theorem 5.4. Returns the link traffic; pattern in the run log.
func (ws *Workspace) DividedGreedyMT(m *topology.Mesh2D, k core.MulticastSet) int {
	ws.begin(m, k)
	ws.arena = ws.arena[:0]
	ws.msgs = ws.msgs[:0]

	// Source-node division (Steps 3-5 of Fig. 5.6). Buckets 0..3 are the
	// four axis directions, 4..7 the quadrant subsets S_ix, 8..11 S_iy
	// (quadrants 0=NE 1=NW 2=SW 3=SE).
	x0, y0 := m.XY(k.Source)
	for i := range ws.dir {
		ws.dir[i] = ws.dir[i][:0]
	}
	for _, d := range k.Dests {
		x, y := m.XY(d)
		dx, dy := x-x0, y-y0
		switch {
		case dx == 0 && dy == 0:
			ws.deliver(d, 0)
		case dy == 0 && dx > 0:
			ws.dir[0] = append(ws.dir[0], d)
		case dy == 0 && dx < 0:
			ws.dir[1] = append(ws.dir[1], d)
		case dx == 0 && dy > 0:
			ws.dir[2] = append(ws.dir[2], d)
		case dx == 0 && dy < 0:
			ws.dir[3] = append(ws.dir[3], d)
		default:
			var q int
			switch {
			case dx > 0 && dy > 0:
				q = 0
			case dx < 0 && dy > 0:
				q = 1
			case dx < 0 && dy < 0:
				q = 2
			default:
				q = 3
			}
			if abs(dx) >= abs(dy) {
				ws.dir[4+q] = append(ws.dir[4+q], d)
			} else {
				ws.dir[8+q] = append(ws.dir[8+q], d)
			}
		}
	}
	// pairX: feed both x-leaning quadrant subsets to the X direction when
	// both are nonempty; otherwise reroute the lone one through its
	// quadrant's Y direction.
	pairX := func(dst, a, b int) {
		switch {
		case len(ws.dir[4+a]) > 0 && len(ws.dir[4+b]) > 0:
			ws.dir[dst] = append(ws.dir[dst], ws.dir[4+a]...)
			ws.dir[dst] = append(ws.dir[dst], ws.dir[4+b]...)
		case len(ws.dir[4+a]) > 0:
			ws.dir[8+a] = append(ws.dir[8+a], ws.dir[4+a]...)
		case len(ws.dir[4+b]) > 0:
			ws.dir[8+b] = append(ws.dir[8+b], ws.dir[4+b]...)
		}
	}
	pairX(0, 0, 3)
	pairX(1, 1, 2)
	ws.dir[2] = append(ws.dir[2], ws.dir[8]...)
	ws.dir[2] = append(ws.dir[2], ws.dir[9]...)
	ws.dir[3] = append(ws.dir[3], ws.dir[10]...)
	ws.dir[3] = append(ws.dir[3], ws.dir[11]...)
	if len(ws.dir[0]) > 0 {
		ws.dispatch(k.Source, 0, trunkX, 0, m.ID(x0+1, y0))
	}
	if len(ws.dir[1]) > 0 {
		ws.dispatch(k.Source, 0, trunkX, 1, m.ID(x0-1, y0))
	}
	if len(ws.dir[2]) > 0 {
		ws.dispatch(k.Source, 0, trunkY, 2, m.ID(x0, y0+1))
	}
	if len(ws.dir[3]) > 0 {
		ws.dispatch(k.Source, 0, trunkY, 3, m.ID(x0, y0-1))
	}

	// Trunk routing at forward nodes: advance the trunk dimension, peel
	// destinations whose trunk coordinate matches into cross groups.
	// Buckets 0..2 = onward, crossPlus, crossMinus.
	for head := 0; head < len(ws.msgs); head++ {
		msg := ws.msgs[head]
		cx, cy := m.XY(msg.at)
		onward, crossPlus, crossMinus := ws.dir[0][:0], ws.dir[1][:0], ws.dir[2][:0]
		for _, d := range ws.arena[msg.off : msg.off+msg.n] {
			x, y := m.XY(d)
			if msg.axis == trunkX {
				switch {
				case x == cx && y == cy:
					ws.deliver(d, msg.depth)
				case x == cx && y > cy:
					crossPlus = append(crossPlus, d)
				case x == cx && y < cy:
					crossMinus = append(crossMinus, d)
				default:
					onward = append(onward, d)
				}
			} else {
				switch {
				case x == cx && y == cy:
					ws.deliver(d, msg.depth)
				case y == cy && x > cx:
					crossPlus = append(crossPlus, d)
				case y == cy && x < cx:
					crossMinus = append(crossMinus, d)
				default:
					onward = append(onward, d)
				}
			}
		}
		ws.dir[0], ws.dir[1], ws.dir[2] = onward, crossPlus, crossMinus
		if msg.axis == trunkX {
			if len(crossPlus) > 0 {
				ws.dispatch(msg.at, msg.depth, trunkY, 1, m.ID(cx, cy+1))
			}
			if len(crossMinus) > 0 {
				ws.dispatch(msg.at, msg.depth, trunkY, 2, m.ID(cx, cy-1))
			}
			if len(onward) > 0 {
				// All onward destinations lie strictly on one side of
				// this column: the trunk was dispatched toward them.
				ox, _ := m.XY(onward[0])
				if ox > cx {
					ws.dispatch(msg.at, msg.depth, trunkX, 0, m.ID(cx+1, cy))
				} else {
					ws.dispatch(msg.at, msg.depth, trunkX, 0, m.ID(cx-1, cy))
				}
			}
		} else {
			if len(crossPlus) > 0 {
				ws.dispatch(msg.at, msg.depth, trunkX, 1, m.ID(cx+1, cy))
			}
			if len(crossMinus) > 0 {
				ws.dispatch(msg.at, msg.depth, trunkX, 2, m.ID(cx-1, cy))
			}
			if len(onward) > 0 {
				_, oy := m.XY(onward[0])
				if oy > cy {
					ws.dispatch(msg.at, msg.depth, trunkY, 0, m.ID(cx, cy+1))
				} else {
					ws.dispatch(msg.at, msg.depth, trunkY, 0, m.ID(cx, cy-1))
				}
			}
		}
	}
	return len(ws.edges)
}

// DividedGreedyMT runs the divided greedy multicast algorithm of
// Fig. 5.6 on a 2D mesh and returns the delivered routing pattern. See
// Workspace.DividedGreedyMT for the allocation-free form.
func DividedGreedyMT(m *topology.Mesh2D, k core.MulticastSet) *STResult {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.DividedGreedyMT(m, k)
	return ws.stResult()
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// XYZFirstMT extends the X-first multicast tree to the 3D mesh of
// Section 4.3: destinations are resolved dimension by dimension (X, then
// Y, then Z), sharing channel prefixes, so every destination is reached
// along its dimension-ordered shortest path. Returns the link traffic;
// pattern in the run log.
func (ws *Workspace) XYZFirstMT(m *topology.Mesh3D, k core.MulticastSet) int {
	ws.begin(m, k)
	ws.arena = append(ws.arena[:0], k.Dests...)
	ws.msgs = append(ws.msgs[:0], stMsg{at: k.Source, off: 0, n: int32(len(ws.arena))})
	for head := 0; head < len(ws.msgs); head++ {
		msg := ws.msgs[head]
		x0, y0, z0 := m.XYZ(msg.at)
		// Six direction buckets 0..5 = +X, -X, +Y, -Y, +Z, -Z, resolved
		// in fixed X, Y, Z order for deterministic patterns.
		for i := 0; i < 6; i++ {
			ws.dir[i] = ws.dir[i][:0]
		}
		for _, d := range ws.arena[msg.off : msg.off+msg.n] {
			x, y, z := m.XYZ(d)
			switch {
			case x > x0:
				ws.dir[0] = append(ws.dir[0], d)
			case x < x0:
				ws.dir[1] = append(ws.dir[1], d)
			case y > y0:
				ws.dir[2] = append(ws.dir[2], d)
			case y < y0:
				ws.dir[3] = append(ws.dir[3], d)
			case z > z0:
				ws.dir[4] = append(ws.dir[4], d)
			case z < z0:
				ws.dir[5] = append(ws.dir[5], d)
			default:
				ws.deliver(d, msg.depth)
			}
		}
		if len(ws.dir[0]) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkX, 0, m.ID(x0+1, y0, z0))
		}
		if len(ws.dir[1]) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkX, 1, m.ID(x0-1, y0, z0))
		}
		if len(ws.dir[2]) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkX, 2, m.ID(x0, y0+1, z0))
		}
		if len(ws.dir[3]) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkX, 3, m.ID(x0, y0-1, z0))
		}
		if len(ws.dir[4]) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkX, 4, m.ID(x0, y0, z0+1))
		}
		if len(ws.dir[5]) > 0 {
			ws.dispatch(msg.at, msg.depth, trunkX, 5, m.ID(x0, y0, z0-1))
		}
	}
	return len(ws.edges)
}

// XYZFirstMT extends the X-first multicast tree to the 3D mesh of
// Section 4.3 and returns the delivered routing pattern. See
// Workspace.XYZFirstMT for the allocation-free form.
func XYZFirstMT(m *topology.Mesh3D, k core.MulticastSet) *STResult {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.XYZFirstMT(m, k)
	return ws.stResult()
}
